// apiary_lint: a repo-native static analyzer for the Apiary codebase.
//
// The simulator's core guarantees — byte-identical replay from a seed,
// Monitor-interposed accelerator isolation, and a fully-handled stable
// service ABI — are invariants the C++ compiler cannot see. This analyzer
// enforces them mechanically:
//
//   apiary-determinism     no ambient randomness / wall-clock / hash-order
//                          dependence in simulation state
//   apiary-layering        the allowed include DAG between src/ subsystems
//   apiary-opcode-coverage every kOp* constant has a handler and a test
//   apiary-include-guard   SRC_PATH_H_ include-guard convention
//   apiary-debug-name      Clocked subclasses override DebugName()
//   apiary-nodiscard       capability/segment-minting APIs are [[nodiscard]]
//   apiary-hot-path        packets come from PacketPool, payloads ride in
//                          PayloadBuf (no per-message heap allocation)
//
// Any finding is suppressible in-line with clang-tidy style markers:
//   // NOLINT(apiary-<check>)          suppress on this line
//   // NOLINTNEXTLINE(apiary-<check>)  suppress on the next line
// A bare NOLINT (no parenthesized list) suppresses every apiary check on
// the line.
//
// Implementation: a hand-rolled lexer strips comments and string/char
// literals (so commented-out code never fires) and records NOLINT markers,
// then per-file line scans plus one corpus-wide include-graph/opcode pass
// produce findings. No libclang dependency.
#ifndef TOOLS_APIARY_LINT_LINT_H_
#define TOOLS_APIARY_LINT_LINT_H_

#include <map>
#include <string>
#include <vector>

namespace apiary {
namespace lint {

struct Finding {
  std::string file;   // Repo-relative path, '/'-separated.
  int line = 0;       // 1-based; 0 for whole-file findings.
  std::string check;  // e.g. "apiary-determinism".
  std::string message;

  std::string ToString() const;
};

// A lexed source file: raw lines (for include parsing and NOLINT markers)
// plus "code" lines with comments and string/char literals blanked out.
struct SourceFile {
  std::string path;  // Repo-relative, '/'-separated.
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  // Per-line suppression lists; "*" suppresses every apiary check.
  std::vector<std::vector<std::string>> nolint;

  bool IsSuppressed(int line, const std::string& check) const;
};

// Lexes `content` as C++ source: strips // and /* */ comments and string
// and character literals from the code view, records NOLINT markers.
SourceFile LexSource(std::string path, const std::string& content);

// Reads and lexes a file from disk. Returns false on I/O failure.
bool LoadSource(const std::string& absolute_path, const std::string& repo_relative_path,
                SourceFile* out);

struct LintConfig {
  // --- apiary-determinism ---
  // Fully-qualified identifiers banned outright (leading+trailing
  // identifier boundary).
  std::vector<std::string> banned_identifiers;
  // Function names banned when called: identifier boundary before, '(' after.
  std::vector<std::string> banned_calls;
  // Banned substrings (trailing boundary only), e.g. "_clock::now" which
  // catches every std::chrono clock.
  std::vector<std::string> banned_suffixes;
  // Hash-ordered containers banned in simulation state (src/ only).
  std::vector<std::string> banned_containers;
  // Path prefixes exempt from the determinism check (the seeded RNG itself,
  // and stats/ which only aggregates).
  std::vector<std::string> determinism_exempt_prefixes;
  // Where randomness is supposed to come from (for the finding message).
  std::string randomness_home;

  // --- apiary-layering ---
  // Allowed include edges: src/<dir>/ may include src/<d>/ for each d in
  // layering[dir]. A src/ subdirectory absent from the map is itself a
  // violation (every layer must be declared).
  std::map<std::string, std::vector<std::string>> layering;
  // Exact include targets allowed from anywhere (the stable wire-ABI
  // headers; analogous to a syscall-number header visible to userland).
  std::vector<std::string> layering_exempt_includes;

  // --- apiary-hot-path ---
  // Path prefixes where the hot-path memory discipline does not apply: the
  // pool/serialization layer itself, which is the one place allowed to
  // allocate packets and touch raw wire vectors.
  std::vector<std::string> hot_path_exempt_prefixes;

  // --- apiary-opcode-coverage ---
  // Path suffixes of the headers that define the opcode ABI.
  std::vector<std::string> opcode_def_files;

  // --- apiary-nodiscard ---
  // Path suffixes of headers whose minting APIs must be [[nodiscard]].
  std::vector<std::string> nodiscard_files;
  // Return types that mint capabilities/segments.
  std::vector<std::string> nodiscard_types;
};

// The Apiary repo policy (see tools/apiary_lint/README.md for rationale).
LintConfig DefaultConfig();

// Per-file checks. Findings are appended unfiltered; RunAllChecks applies
// NOLINT suppression.
void CheckDeterminism(const SourceFile& file, const LintConfig& config,
                      std::vector<Finding>* findings);
void CheckLayering(const SourceFile& file, const LintConfig& config,
                   std::vector<Finding>* findings);
void CheckIncludeGuard(const SourceFile& file, const LintConfig& config,
                       std::vector<Finding>* findings);
void CheckDebugName(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings);
void CheckNodiscard(const SourceFile& file, const LintConfig& config,
                    std::vector<Finding>* findings);
// Hot-path memory discipline (DESIGN.md): under src/, NocPackets must come
// from PacketPool::Acquire() — never std::make_shared<NocPacket> or a bare
// new NocPacket — and message payloads ride in PayloadBuf, so a
// std::vector<uint8_t> touching a payload reintroduces per-message heap
// allocation. The pool/serialization layer itself is exempt.
void CheckHotPath(const SourceFile& file, const LintConfig& config,
                  std::vector<Finding>* findings);

// Corpus-wide: every kOp* constant in an opcode-ABI header must be
// referenced by a handler under src/ and by at least one file under tests/.
// The tests/ requirement is enforced only when the corpus includes tests/
// (so `apiary_lint src` alone stays meaningful).
void CheckOpcodeCoverage(const std::vector<SourceFile>& files, const LintConfig& config,
                         std::vector<Finding>* findings);

// Runs every check over the corpus, drops NOLINT-suppressed findings, and
// returns the rest sorted by (file, line, check).
std::vector<Finding> RunAllChecks(const std::vector<SourceFile>& files,
                                  const LintConfig& config);

}  // namespace lint
}  // namespace apiary

#endif  // TOOLS_APIARY_LINT_LINT_H_
