// Ethernet MAC models and the external (datacenter) network fabric.
//
// The paper's portability complaint (Section 2): "the interface and reset
// process for Xilinx's 10 Gbit Ethernet IP core and 100 Gbit Ethernet IP
// core are different, so additional infrastructure is needed to support both".
// We reproduce that situation deliberately: EthMac10G and EthMac100G have
// different initialization handshakes and differently-shaped TX/RX APIs.
// The Apiary network service hides both behind one portable interface.
#ifndef SRC_FPGA_ETHERNET_H_
#define SRC_FPGA_ETHERNET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/clocked.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/summary.h"

namespace apiary {

struct EthFrame {
  uint32_t src_endpoint = 0;
  uint32_t dst_endpoint = 0;
  std::vector<uint8_t> payload;
  Cycle sent_cycle = 0;
};

// Anything that can terminate frames on the external fabric: a board MAC or
// a simulated client host.
class ExternalEndpoint {
 public:
  virtual ~ExternalEndpoint() = default;
  virtual void OnFrame(EthFrame frame, Cycle now) = 0;
};

// Datacenter fabric between endpoints: fixed propagation latency, unlimited
// aggregate bandwidth (per-port bandwidth is enforced by the MACs).
// Optionally lossy, for exercising the reliable transport layer.
class ExternalNetwork : public Clocked {
 public:
  explicit ExternalNetwork(Cycle latency_cycles) : latency_cycles_(latency_cycles) {}

  // Drops each frame independently with probability `rate` (deterministic
  // for a given seed).
  void SetLossRate(double rate, uint64_t seed = 99);

  // Fault injection: until `now + duration`, additionally drops frames with
  // probability `rate` — a transient uplink brown-out (flapping optics,
  // congested ToR). Deterministic for a given seed.
  void StartLossBurst(Cycle now, Cycle duration, double rate, uint64_t seed);
  bool InLossBurst(Cycle now) const { return now < burst_until_; }

  // Registers an endpoint and returns its address.
  uint32_t RegisterEndpoint(ExternalEndpoint* endpoint);

  // Sends a frame; it is delivered to frame.dst_endpoint after the fabric
  // latency. Unknown destinations are dropped (counted).
  void Send(EthFrame frame, Cycle now);

  void Tick(Cycle now) override;
  // In-flight frames sit in deliver-time order (constant latency), so the
  // fabric sleeps until the front frame's delivery cycle.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (in_flight_.empty()) {
      return kNoActivity;
    }
    return in_flight_.front().deliver_at > now ? in_flight_.front().deliver_at : now;
  }
  std::string DebugName() const override { return "extnet"; }

  const CounterSet& counters() const { return counters_; }
  Cycle latency_cycles() const { return latency_cycles_; }

 private:
  struct InFlight {
    Cycle deliver_at;
    EthFrame frame;
  };

  Cycle latency_cycles_;
  double loss_rate_ = 0.0;
  std::unique_ptr<Rng> loss_rng_;
  Cycle burst_until_ = 0;
  double burst_rate_ = 0.0;
  std::unique_ptr<Rng> burst_rng_;
  std::vector<ExternalEndpoint*> endpoints_;
  std::deque<InFlight> in_flight_;
  CounterSet counters_;
};

// Common MAC internals: TX serialization at line rate, RX queue.
class EthernetMacBase : public Clocked, public ExternalEndpoint {
 public:
  EthernetMacBase(double link_gbps, double clock_mhz);

  // ExternalEndpoint: frame arriving from the fabric.
  void OnFrame(EthFrame frame, Cycle now) override;

  void AttachNetwork(ExternalNetwork* network, uint32_t my_address) {
    network_ = network;
    address_ = my_address;
  }

  void Tick(Cycle now) override;
  // TX is the MAC's only tick-driven work: sleep until the in-flight frame
  // finishes serializing, stay awake while queued frames can launch. A
  // queued frame behind a down link makes no progress cycle-to-cycle (the
  // bring-up pollers re-arm the MAC by flipping the link during an executed
  // cycle), and RX is entirely caller-driven.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (tx_in_flight_) {
      return tx_busy_until_ > now ? tx_busy_until_ : now;
    }
    if (!tx_queue_.empty() && link_up()) {
      return now;
    }
    return kNoActivity;
  }
  std::string DebugName() const override { return "eth_mac"; }
  // TX enqueues come from service ticks and link state flips inside const
  // bring-up polls (mutable locked_/aligned_) — neither is a schedule-visible
  // wake path, so the MAC is re-polled at every executed-cycle boundary.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }

  uint32_t address() const { return address_; }
  double link_gbps() const { return link_gbps_; }
  const CounterSet& counters() const { return counters_; }
  virtual uint32_t LogicCellCost() const = 0;

 protected:
  bool QueueTx(EthFrame frame);
  bool RxAvailable() const { return !rx_queue_.empty(); }
  EthFrame PopRx();
  virtual bool link_up() const = 0;

  CounterSet counters_;

 private:
  Cycle SerializationCycles(size_t bytes) const;

  double link_gbps_;
  double bytes_per_cycle_;
  ExternalNetwork* network_ = nullptr;
  uint32_t address_ = 0;
  std::deque<EthFrame> tx_queue_;
  Cycle tx_busy_until_ = 0;
  bool tx_in_flight_ = false;
  EthFrame tx_current_;
  std::deque<EthFrame> rx_queue_;
};

// "Xilinx 10G-style" MAC: must go through an explicit two-step reset
// handshake before the link comes up; frame-at-a-time 64-bit-word API.
class EthMac10G : public EthernetMacBase {
 public:
  explicit EthMac10G(double clock_mhz) : EthernetMacBase(10.0, clock_mhz) {}

  // Step 1: assert the core reset.
  void AssertCoreReset();
  // Step 2: release it; the core locks after kLockCycles.
  void ReleaseCoreReset(Cycle now);
  bool RxBlockLock(Cycle now) const;

  // TX/RX in this core's idiom.
  bool TxFrame(EthFrame frame, Cycle now);
  bool RxFrameValid() const { return RxAvailable(); }
  EthFrame RxFrame() { return PopRx(); }

  uint32_t LogicCellCost() const override { return 9000; }
  std::string DebugName() const override { return "eth10g"; }

 private:
  static constexpr Cycle kLockCycles = 500;

  bool link_up() const override { return locked_; }

  bool reset_asserted_ = false;
  bool released_ = false;
  mutable bool locked_ = false;
  Cycle release_cycle_ = 0;
};

// "Xilinx 100G CMAC-style" MAC: different bring-up (init + wait for RX
// alignment), requires flow-control enable before TX, and a differently
// named queue API.
class EthMac100G : public EthernetMacBase {
 public:
  explicit EthMac100G(double clock_mhz) : EthernetMacBase(100.0, clock_mhz) {}

  void InitCmac(Cycle now);
  bool RxAligned(Cycle now) const;
  void EnableTxFlowControl() { flow_control_enabled_ = true; }

  bool EnqueueTxSegment(EthFrame frame, Cycle now);
  bool HasRxSegment() const { return RxAvailable(); }
  EthFrame DequeueRxSegment() { return PopRx(); }

  uint32_t LogicCellCost() const override { return 55000; }
  std::string DebugName() const override { return "eth100g"; }

 private:
  static constexpr Cycle kAlignCycles = 2000;

  bool link_up() const override { return aligned_ && flow_control_enabled_; }

  bool init_done_ = false;
  mutable bool aligned_ = false;
  bool flow_control_enabled_ = false;
  Cycle init_cycle_ = 0;
};

}  // namespace apiary

#endif  // SRC_FPGA_ETHERNET_H_
