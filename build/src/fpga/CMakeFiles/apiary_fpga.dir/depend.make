# Empty dependencies file for apiary_fpga.
# This may be replaced when dependencies are built.
