# Empty dependencies file for accel_test.
# This may be replaced when dependencies are built.
