// The Apiary network service: terminates the board's Ethernet MAC and
// bridges external frames onto the NoC as capability-checked messages.
//
// The MacAdapter hierarchy demonstrates the paper's portability point
// (Section 2): the 10G and 100G MAC cores have different bring-up handshakes
// and APIs; accelerators never see either — they program against the
// network service's stable message interface on every board.
#ifndef SRC_SERVICES_NETWORK_SERVICE_H_
#define SRC_SERVICES_NETWORK_SERVICE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "src/core/accelerator.h"
#include "src/core/kernel.h"
#include "src/fpga/ethernet.h"
#include "src/services/opcodes.h"
#include "src/services/transport.h"
#include "src/stats/summary.h"

namespace apiary {

// Board-portable facade over one vendor MAC core.
class MacAdapter {
 public:
  virtual ~MacAdapter() = default;

  // Drives the device-specific initialization sequence; called every cycle
  // until Ready() holds.
  virtual void Bringup(Cycle now) = 0;
  virtual bool Ready(Cycle now) const = 0;

  virtual bool TrySend(EthFrame frame, Cycle now) = 0;
  virtual std::optional<EthFrame> TryRecv() = 0;
  // Frames waiting in the RX FIFO — the quiescence query behind the network
  // service's NextActivity; must not dequeue or mutate.
  virtual bool HasRx() const = 0;
  virtual double link_gbps() const = 0;
};

// Adapter for the 10G core: assert/release reset, wait for RX block lock.
class Mac10GAdapter : public MacAdapter {
 public:
  explicit Mac10GAdapter(EthMac10G* mac) : mac_(mac) {}

  void Bringup(Cycle now) override;
  bool Ready(Cycle now) const override { return mac_->RxBlockLock(now); }
  bool TrySend(EthFrame frame, Cycle now) override { return mac_->TxFrame(std::move(frame), now); }
  std::optional<EthFrame> TryRecv() override;
  bool HasRx() const override { return mac_->RxFrameValid(); }
  double link_gbps() const override { return 10.0; }

 private:
  EthMac10G* mac_;
  bool reset_done_ = false;
};

// Adapter for the 100G CMAC core: init, wait for alignment, enable flow
// control — a different dance with differently named knobs.
class Mac100GAdapter : public MacAdapter {
 public:
  explicit Mac100GAdapter(EthMac100G* mac) : mac_(mac) {}

  void Bringup(Cycle now) override;
  bool Ready(Cycle now) const override { return mac_->RxAligned(now) && flow_control_on_; }
  bool TrySend(EthFrame frame, Cycle now) override {
    return mac_->EnqueueTxSegment(std::move(frame), now);
  }
  std::optional<EthFrame> TryRecv() override;
  bool HasRx() const override { return mac_->HasRxSegment(); }
  double link_gbps() const override { return 100.0; }

 private:
  EthMac100G* mac_;
  bool init_started_ = false;
  bool flow_control_on_ = false;
};

// External frame layout understood by the service: the first 4 bytes of a
// frame payload name the destination logical service; the rest is data.
//
// With `reliable` set, frames are carried by the sliding-window ARQ in
// src/services/transport.h: accelerators get in-order exactly-once frame
// delivery across a lossy fabric with zero changes to their code — the
// "reliable network protocols" of Section 2, built once in the OS.
class NetworkService : public Accelerator {
 public:
  NetworkService(ApiaryOs* os, std::unique_ptr<MacAdapter> mac, bool reliable = false,
                 TransportConfig transport_config = TransportConfig{})
      : os_(os),
        mac_(std::move(mac)),
        reliable_(reliable),
        transport_(transport_config) {}

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  // Active while bringing the link up (Ready is time-dependent and polled
  // per cycle), while any backlog or RX frame is pending, and always in
  // reliable mode (the ARQ transport's timers advance every cycle).
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (!mac_->Ready(now) || reliable_) {
      return now;
    }
    if (!tx_backlog_.empty() || !inbound_backlog_.empty() || mac_->HasRx()) {
      return now;
    }
    return kNoActivity;
  }
  // HasRx() flips when the external fabric delivers into the MAC's RX FIFO —
  // a mutation outside this tile with no wake path into it. Boundary polling
  // re-reads the declaration at every executed-cycle boundary, so a frame
  // delivered at cycle T is served at T+1: exactly when a tick-everything
  // run serves it, since the fabric is registered after the board's tiles.
  [[nodiscard]] Clocked::SchedPolicy SchedulingPolicy() const override {
    return Clocked::SchedPolicy::kBoundaryPoll;
  }

  std::string name() const override { return "network_service"; }
  uint32_t LogicCellCost() const override { return 18000; }

  const CounterSet& counters() const { return counters_; }
  const ReliableTransport& transport() const { return transport_; }

 private:
  void HandleRegister(const Message& msg, TileApi& api);
  void HandleNetSend(const Message& msg, TileApi& api);
  void PumpInbound(TileApi& api);
  void PumpOutbound(TileApi& api);
  // Routes one application-level payload (u32 dst_service | data) inward.
  void DeliverAppPayload(uint32_t src_endpoint, const std::vector<uint8_t>& app,
                         TileApi& api);

  ApiaryOs* os_;
  std::unique_ptr<MacAdapter> mac_;
  bool reliable_;
  ReliableTransport transport_;
  // Inbound delivery: registered logical service -> endpoint cap we hold.
  std::map<ServiceId, CapRef> inbound_routes_;
  std::deque<EthFrame> tx_backlog_;
  // Inbound messages that hit NoC backpressure, retried in order.
  std::deque<std::pair<ServiceId, Message>> inbound_backlog_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_NETWORK_SERVICE_H_
