// Energy proxy model used by experiment E1.
//
// The paper's Section 1 claim: direct-attached FPGAs reduce energy versus
// CPU-mediated communication. We account energy as activity counts times
// per-event costs. Constants are order-of-magnitude figures from the NoC and
// datacenter-accounting literature (flit-hop energies in the low pJ on-chip;
// a mediating host CPU core burns tens of watts while busy) — the experiment
// only relies on the relative gap, not the absolute values.
#ifndef SRC_CORE_ENERGY_H_
#define SRC_CORE_ENERGY_H_

#include <cstdint>

namespace apiary {

struct EnergyModel {
  // On-chip NoC: energy per flit per hop (router traversal + link).
  double pj_per_flit_hop = 6.0;
  // Monitor capability check per message.
  double pj_per_monitor_check = 15.0;
  // DRAM access energy per 64B burst.
  double pj_per_dram_burst = 2000.0;
  // Accelerator compute proxy: per active cycle of a tile.
  double pj_per_accel_cycle = 50.0;
  // PCIe transfer energy per byte (both directions combined, link+PHY).
  double pj_per_pcie_byte = 25.0;
  // Host CPU mediation: joules per second while a core is busy mediating.
  double host_cpu_watts = 15.0;

  // Convenience: microjoules consumed by `busy_cycles` of host CPU time at
  // `clock_mhz`.
  double HostCpuMicrojoules(uint64_t busy_cycles, double clock_mhz) const {
    const double seconds = static_cast<double>(busy_cycles) / (clock_mhz * 1e6);
    return host_cpu_watts * seconds * 1e6;
  }
};

}  // namespace apiary

#endif  // SRC_CORE_ENERGY_H_
