file(REMOVE_RECURSE
  "CMakeFiles/e9_unauthorized_access.dir/e9_unauthorized_access.cc.o"
  "CMakeFiles/e9_unauthorized_access.dir/e9_unauthorized_access.cc.o.d"
  "e9_unauthorized_access"
  "e9_unauthorized_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_unauthorized_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
