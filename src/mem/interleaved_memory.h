// Multi-channel interleaved memory (HBM-style): N independent DRAM channels
// striped at a fixed granularity, presented to the memory/DMA services as
// one flat address space.
//
// Modern boards ship HBM with many pseudo-channels (Section 2's "HBM
// memory" among the new I/O); the win is bandwidth through channel-level
// parallelism, which the A7 ablation quantifies.
#ifndef SRC_MEM_INTERLEAVED_MEMORY_H_
#define SRC_MEM_INTERLEAVED_MEMORY_H_

#include <deque>
#include <memory>

#include "src/mem/memory_backend.h"
#include "src/mem/memory_controller.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

class InterleavedMemory : public Clocked, public MemoryBackend {
 public:
  // Total capacity = channels x per_channel.capacity_bytes. Stripes of
  // `stripe_bytes` rotate across channels.
  InterleavedMemory(DramConfig per_channel, uint32_t channels,
                    uint64_t stripe_bytes = 4096);

  bool SubmitRead(uint64_t addr, std::span<uint8_t> out,
                  std::function<void(Cycle)> done) override;
  bool SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                   std::function<void(Cycle)> done) override;
  void DebugWrite(uint64_t addr, std::span<const uint8_t> data) override;
  std::vector<uint8_t> DebugRead(uint64_t addr, uint64_t len) const override;
  uint64_t capacity() const override { return capacity_; }

  BitFlipResult InjectBitFlip(uint64_t addr, uint32_t bit) override;
  void SetEccEnabled(bool enabled) override;

  void Tick(Cycle now) override;
  // Active while any operation still has chunks to issue; otherwise defers
  // to the earliest channel completion.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (!pending_.empty()) {
      return now;
    }
    Cycle next = kNoActivity;
    for (const auto& channel : channels_) {
      const Cycle c = channel->NextActivity(now);
      next = c < next ? c : next;
    }
    return next;
  }
  std::string DebugName() const override { return "hbm"; }
  // Same as MemoryController: fed by service/accelerator ticks with no
  // schedule-visible wake path — boundary-polled, never parked.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }

  uint32_t num_channels() const { return static_cast<uint32_t>(channels_.size()); }
  const CounterSet& counters() const { return counters_; }

 private:
  struct Chunk {
    uint32_t channel;
    uint64_t local_addr;
    uint64_t global_offset;  // Offset within the operation's buffer.
    uint64_t len;
  };
  struct Op {
    bool is_write = false;
    uint64_t addr = 0;
    // Read target (caller-owned) or write source (copied).
    std::span<uint8_t> out;
    std::vector<uint8_t> data;
    std::function<void(Cycle)> done;
    std::vector<Chunk> chunks;
    size_t next_chunk = 0;           // Submission progress.
    std::shared_ptr<size_t> remaining;  // Completion countdown.
  };

  // Maps a global address to (channel, local address) and splits [addr,
  // addr+len) at stripe boundaries.
  std::vector<Chunk> Split(uint64_t addr, uint64_t len) const;
  bool InBounds(uint64_t addr, uint64_t len) const {
    return addr <= capacity_ && len <= capacity_ - addr;
  }

  uint64_t stripe_bytes_;
  uint64_t capacity_;
  std::vector<std::unique_ptr<MemoryController>> channels_;
  std::deque<std::shared_ptr<Op>> pending_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_MEM_INTERLEAVED_MEMORY_H_
