#include "src/accel/faulty.h"

#include "src/core/service_ids.h"

namespace apiary {

void WedgeAccelerator::OnBoot(TileApi& api) {
  if (mgmt_cap_ == kInvalidCapRef) {
    mgmt_cap_ = api.LookupService(kMgmtService);
  }
  if (mgmt_cap_ != kInvalidCapRef) {
    // Register with the watchdog: if we stop heartbeating, fail-stop us.
    Message watch;
    watch.opcode = kOpMgmtWatch;
    PutU64(watch.payload, heartbeat_period_ * 4);
    api.Send(std::move(watch), mgmt_cap_);
  }
}

void WedgeAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (wedged()) {
    return;  // Livelocked: requests pile up and are never answered.
  }
  ++served_;
  Message reply;
  reply.opcode = msg.opcode;
  reply.payload = msg.payload;
  api.Reply(msg, std::move(reply));
}

void WedgeAccelerator::Tick(TileApi& api) {
  if (wedged() || mgmt_cap_ == kInvalidCapRef) {
    return;  // A wedged accelerator stops heartbeating too.
  }
  if (api.now() >= last_heartbeat_ + heartbeat_period_) {
    Message hb;
    hb.opcode = kOpMgmtHeartbeat;
    if (api.Send(std::move(hb), mgmt_cap_).ok()) {
      last_heartbeat_ = api.now();
    }
  }
}

void CrashAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (served_ >= healthy_requests_) {
    api.RaiseFault("internal assertion failed");
    return;
  }
  ++served_;
  Message reply;
  reply.opcode = msg.opcode;
  reply.payload = msg.payload;
  api.Reply(msg, std::move(reply));
}

void FlooderAccelerator::OnMessage(const Message& msg, TileApi& api) {
  (void)msg;
  (void)api;  // Responses and errors are ignored; the flood continues.
}

void FlooderAccelerator::Tick(TileApi& api) {
  if (victim_ == kInvalidCapRef) {
    return;
  }
  // Saturate: keep sending until the monitor or NI refuses.
  while (true) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(message_bytes_, 0xab);
    const SendResult r = api.Send(std::move(msg), victim_);
    if (r.ok()) {
      ++sent_;
      continue;
    }
    if (r.status == MsgStatus::kRateLimited) {
      ++rate_limited_;
    } else if (r.status == MsgStatus::kBackpressure) {
      ++backpressured_;
    }
    break;
  }
}

void SnooperAccelerator::OnMessage(const Message& msg, TileApi& api) {
  (void)api;
  if (msg.kind != MsgKind::kResponse) {
    return;
  }
  // Any successful data-bearing response to a snoop is a leak.
  if (msg.status == MsgStatus::kOk && !msg.payload.empty()) {
    ++leaked_;
  } else {
    ++denied_remote_;
  }
}

void SnooperAccelerator::Tick(TileApi& api) {
  if (api.now() < next_attempt_) {
    return;
  }
  next_attempt_ = api.now() + period_;

  // Attempt 1: forge endpoint capability references and try to message a
  // tile we were never granted (cycling through slots and generations).
  ++attempts_;
  Message probe;
  probe.opcode = kOpEcho;
  probe.payload = {0xde, 0xad};
  const CapRef forged = MakeCapRef(probe_tile_ % 64, (probe_tile_ / 64) % 16);
  probe_tile_ = (probe_tile_ + 1) % (num_tiles_ * 64);
  if (!api.Send(std::move(probe), forged).ok()) {
    ++denied_local_;
  }

  // Attempt 2: forge a memory grant in the message body and ask the memory
  // service to read someone else's segment. The monitor scrubs untrusted
  // grant fields, so the service must see grant.valid == false.
  const CapRef memsvc = api.LookupService(kMemoryService);
  if (memsvc != kInvalidCapRef) {
    ++attempts_;
    Message forged_read;
    forged_read.opcode = kOpMemRead;
    PutU64(forged_read.payload, 0);
    PutU32(forged_read.payload, 64);
    forged_read.grant.valid = true;  // Forged: not backed by any capability.
    forged_read.grant.can_read = true;
    forged_read.grant.segment = Segment{0, 1ull << 30};
    // Deliberately present no memory capability.
    api.Send(std::move(forged_read), memsvc);
  }
}

void WildWriterAccelerator::OnBoot(TileApi& api) {
  memsvc_cap_ = api.LookupService(kMemoryService);
  if (memsvc_cap_ != kInvalidCapRef && !alloc_requested_) {
    Message alloc;
    alloc.opcode = kOpMemAlloc;
    PutU64(alloc.payload, segment_bytes_);
    PutU32(alloc.payload, kRightRead | kRightWrite);
    if (api.Send(std::move(alloc), memsvc_cap_).ok()) {
      alloc_requested_ = true;
    }
  }
}

void WildWriterAccelerator::OnMessage(const Message& msg, TileApi& api) {
  (void)api;
  if (msg.kind != MsgKind::kResponse) {
    return;
  }
  if (msg.opcode == kOpMemAlloc && msg.status == MsgStatus::kOk && msg.payload.size() >= 4) {
    mem_cap_ = GetU32(msg.payload, 0);
    return;
  }
  if (msg.opcode == kOpMemWrite || msg.opcode == kOpMemRead) {
    if (msg.status == MsgStatus::kSegFault) {
      ++seg_faults_;
    } else if (msg.status == MsgStatus::kOk) {
      ++in_bounds_ok_;
    }
  }
}

void WildWriterAccelerator::Tick(TileApi& api) {
  if (mem_cap_ == kInvalidCapRef || api.now() < next_attempt_) {
    return;
  }
  next_attempt_ = api.now() + period_;
  ++attempts_;
  Message write;
  write.opcode = kOpMemWrite;
  // Alternate a legitimate in-bounds write with a far out-of-bounds one; the
  // latter must bounce with kSegFault and never corrupt a neighbour.
  const uint64_t offset = wild_phase_ ? segment_bytes_ * 16 : 0;
  wild_phase_ = !wild_phase_;
  PutU64(write.payload, offset);
  write.payload.insert(write.payload.end(), 32, 0x5a);
  api.Send(std::move(write), memsvc_cap_, mem_cap_);
}

}  // namespace apiary
