// Message-level tracing: a bounded ring buffer of send/receive/deny events
// kept by each monitor (design goal: "debugging and tracing support at the
// message passing layer", Section 3).
#ifndef SRC_CORE_TRACE_H_
#define SRC_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/message.h"
#include "src/sim/types.h"

namespace apiary {

enum class TraceEvent : uint8_t {
  kSend = 0,
  kDeliver = 1,
  kDenySend = 2,
  kDenyReceive = 3,
  kFault = 4,
};

struct TraceRecord {
  Cycle cycle = 0;
  TraceEvent event = TraceEvent::kSend;
  TileId local_tile = kInvalidTile;
  TileId peer_tile = kInvalidTile;
  ServiceId service = kInvalidService;
  uint16_t opcode = 0;
  MsgStatus status = MsgStatus::kOk;
};

std::string TraceRecordToString(const TraceRecord& record);

class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 256) : capacity_(capacity) {}

  void Record(const TraceRecord& record);

  // Oldest-first snapshot of retained records.
  std::vector<TraceRecord> Snapshot() const;

  uint64_t total_recorded() const { return total_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

inline void TraceRing::Record(const TraceRecord& record) {
  if (capacity_ == 0) {
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

inline std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

inline std::string TraceRecordToString(const TraceRecord& record) {
  const char* names[] = {"send", "deliver", "deny_send", "deny_recv", "fault"};
  std::string out = "c=" + std::to_string(record.cycle);
  out += " ev=";
  out += names[static_cast<int>(record.event)];
  out += " tile=" + std::to_string(record.local_tile);
  out += " peer=" + std::to_string(record.peer_tile);
  out += " svc=" + std::to_string(record.service);
  out += " op=" + std::to_string(record.opcode);
  out += " st=";
  out += MsgStatusName(record.status);
  return out;
}

}  // namespace apiary

#endif  // SRC_CORE_TRACE_H_
