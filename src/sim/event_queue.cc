#include "src/sim/event_queue.h"

#include <utility>

namespace apiary {

void EventQueue::ScheduleAt(Cycle when, Callback cb) {
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::RunUntil(Cycle now) {
  while (!heap_.empty() && heap_.top().when <= now) {
    // Copy out before pop so the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    ev.cb(ev.when);
  }
}

}  // namespace apiary
