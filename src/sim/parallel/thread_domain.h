// ThreadDomain: which simulation domain the current thread belongs to.
//
// This directory (src/sim/parallel/) is the one place in the tree allowed
// to hold synchronization and thread-affine state — apiary-sync-discipline
// enforces it. The rest of the simulator stays single-threaded code that
// merely *asks* for its current domain; the sharded engine (ROADMAP item 1)
// will pin one SimContext per worker thread through this same API.
//
// Install is scoped and nestable: Simulator::Run()/RunUntil() install the
// simulator's own context automatically, and threaded harnesses (e.g.
// tests/parallel_smoke_test.cc) install one around an entire build+run so
// construction-time allocations land in the right domain too.
#ifndef SRC_SIM_PARALLEL_THREAD_DOMAIN_H_
#define SRC_SIM_PARALLEL_THREAD_DOMAIN_H_

namespace apiary {

class SimContext;

class ThreadDomain {
 public:
  // The context installed on this thread, or nullptr outside any domain
  // (then PayloadBuf falls back to the process arena).
  static SimContext* Current();

  // RAII install; restores the previous context on destruction.
  class ScopedInstall {
   public:
    explicit ScopedInstall(SimContext* context);
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;
    ~ScopedInstall();

   private:
    SimContext* previous_;
  };
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_THREAD_DOMAIN_H_
