file(REMOVE_RECURSE
  "CMakeFiles/a7_memory_channels.dir/a7_memory_channels.cc.o"
  "CMakeFiles/a7_memory_channels.dir/a7_memory_channels.cc.o.d"
  "a7_memory_channels"
  "a7_memory_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a7_memory_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
