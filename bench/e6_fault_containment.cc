// Experiment E6: fault containment — fail-stop semantics, watchdog
// detection, and memory isolation under fault injection.
//
// Paper basis (Section 4.4): "if an accelerator encounters an error ... it
// should not be able to affect other Apiary services or other unrelated
// accelerators. [The monitor] can prevent it from further interacting with
// the rest of the system by draining all outgoing or incoming messages and
// returning an error to any accelerator that tries to communicate with it."
// And Section 4.6: a buggy accelerator "cannot corrupt the memory of
// unassociated accelerators."
//
// Four injected faults, each run alongside a healthy co-tenant:
//   crash      — accelerator raises an internal fault (cooperative detect)
//   wedge      — accelerator silently livelocks (watchdog detect)
//   wild-write — in-segment accelerator scribbles out of bounds (contained)
//   wild-write with a whole-DRAM grant — the "no isolation" counterfactual
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/kv_store.h"
#include "src/accel/probe.h"
#include "src/services/mgmt_service.h"
#include "src/stats/table.h"
#include "src/workload/kv_workload.h"

using namespace apiary;

namespace {

// Closed-loop client accelerator that tolerates errors and keeps counting.
class CountingClient : public Accelerator {
 public:
  explicit CountingClient(ServiceId svc) : svc_(svc) {}
  void Tick(TileApi& api) override {
    if (in_flight_ && api.now() < timeout_at_) {
      return;
    }
    if (in_flight_) {
      ++hangs;  // Request never answered (no fail-stop bounce arrived).
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(16, 1);
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      in_flight_ = true;
      timeout_at_ = api.now() + 20000;
    }
  }
  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind != MsgKind::kResponse) {
      return;
    }
    in_flight_ = false;
    if (msg.status == MsgStatus::kOk) {
      ++ok;
    } else {
      ++errors;
    }
  }
  std::string name() const override { return "counting_client"; }
  uint32_t LogicCellCost() const override { return 1000; }
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t hangs = 0;

 private:
  ServiceId svc_;
  bool in_flight_ = false;
  Cycle timeout_at_ = 0;
};

struct Row {
  std::string scenario;
  uint64_t cotenant_ok;
  uint64_t victim_ok;
  uint64_t victim_errors;
  uint64_t victim_hangs;
  std::string detection;
  std::string corruption;
};

constexpr Cycle kRunCycles = 400000;

// Runs a co-tenant echo pair plus a faulty app; returns the row.
Row RunMessagingFault(bool wedge) {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  auto* mgmt = new MgmtService(&os);
  os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));

  AppId good = os.CreateApp("good");
  ServiceId good_svc = 0;
  os.Deploy(good, std::make_unique<EchoAccelerator>(20), &good_svc);
  auto* good_client = new CountingClient(good_svc);
  const TileId gct = os.Deploy(good, std::unique_ptr<Accelerator>(good_client));
  (void)os.GrantSendToService(gct, good_svc);

  AppId bad = os.CreateApp("bad");
  ServiceId bad_svc = 0;
  TileId bad_tile = kInvalidTile;
  if (wedge) {
    bad_tile = os.Deploy(bad, std::make_unique<WedgeAccelerator>(50, kInvalidCapRef, 2000),
                         &bad_svc);
    (void)os.GrantSendToService(bad_tile, kMgmtService);
  } else {
    bad_tile = os.Deploy(bad, std::make_unique<CrashAccelerator>(50), &bad_svc);
  }
  auto* bad_client = new CountingClient(bad_svc);
  const TileId bct = os.Deploy(bad, std::unique_ptr<Accelerator>(bad_client));
  (void)os.GrantSendToService(bct, bad_svc);

  Cycle detected_at = 0;
  bb.sim.RunUntil(
      [&] {
        if (detected_at == 0 &&
            os.monitor(bad_tile).fault_state() == TileFaultState::kStopped) {
          detected_at = bb.sim.now();
        }
        return false;
      },
      kRunCycles);

  Row row;
  row.scenario = wedge ? "wedge (watchdog)" : "crash (RaiseFault)";
  row.cotenant_ok = good_client->ok;
  row.victim_ok = bad_client->ok;
  row.victim_errors = bad_client->errors;
  row.victim_hangs = bad_client->hangs;
  row.detection = detected_at == 0 ? "NOT DETECTED" : Table::Int(detected_at) + " cyc";
  row.corruption = "-";
  return row;
}

// KV integrity under a wild writer; `isolated` selects segment caps versus
// a whole-DRAM grant (the no-isolation counterfactual).
Row RunWildWrite(bool isolated) {
  BenchBoard bb;
  ApiaryOs& os = bb.os;

  AppId kv_app = os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 20, 1 << 16);
  ServiceId kv_svc = 0;
  const TileId kv_tile = os.Deploy(kv_app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  (void)os.GrantSendToService(kv_tile, kMemoryService);

  AppId bad_app = os.CreateApp("bad");
  auto* wild = new WildWriterAccelerator(4096, 50);
  const TileId wt = os.Deploy(bad_app, std::unique_ptr<Accelerator>(wild));
  (void)os.GrantSendToService(wt, kMemoryService);

  bb.sim.RunUntil([&] { return kv->ready(); }, 50000);

  // Load 50 keys with known values via a driver probe.
  auto* probe = new ProbeAccelerator();
  const TileId pt = os.Deploy(kv_app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = os.GrantSendToService(pt, kv_svc);
  for (uint64_t i = 0; i < 50; ++i) {
    Message put;
    put.opcode = kOpKvPut;
    put.payload = MakeKvPutPayload(KvKeyForIndex(i), KvValueForIndex(i, 64));
    probe->EnqueueSend(put, cap);
  }
  bb.sim.RunUntil([&] { return probe->received.size() >= 50; }, 500000);
  probe->received.clear();

  // Let the wild writer rampage.
  if (!isolated) {
    // Unchecked AXI master: a wild pointer walk over low DRAM — which is
    // where the (unsuspecting) KV store's value log happens to live.
    for (uint64_t addr = 0; addr < (16 << 10); addr += 512) {
      std::vector<uint8_t> garbage(256, 0xee);
      bb.board.memory().DebugWrite(addr, garbage);
    }
  }
  bb.sim.Run(100000);

  // Integrity audit: read every key back and compare.
  uint64_t corrupted = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    Message get;
    get.opcode = kOpKvGet;
    get.payload = MakeKvGetPayload(KvKeyForIndex(i));
    probe->EnqueueSend(get, cap);
    const size_t want = probe->received.size() + 1;
    bb.sim.RunUntil([&] { return probe->received.size() >= want; }, 200000);
    const Message& reply = probe->received.back();
    if (reply.status != MsgStatus::kOk || reply.payload != KvValueForIndex(i, 64)) {
      ++corrupted;
    }
  }

  Row row;
  row.scenario = isolated ? "wild write, segment caps" : "wild write, NO isolation";
  row.cotenant_ok = 50 - corrupted;
  row.victim_ok = wild->in_bounds_ok();
  row.victim_errors = wild->seg_faults();
  row.victim_hangs = 0;
  row.detection = isolated ? Table::Int(wild->seg_faults()) + " segfaults" : "none (trusted)";
  row.corruption = Table::Int(corrupted) + "/50 values";
  return row;
}

}  // namespace

int main() {
  std::printf("E6: fault containment under injected faults (co-tenant must not notice)\n");

  Table table("E6: fault injection matrix");
  table.SetHeader({"fault scenario", "co-tenant ok ops", "victim ok", "victim errors",
                   "victim hangs", "detection", "corruption"});
  for (const Row& row :
       {RunMessagingFault(false), RunMessagingFault(true), RunWildWrite(true),
        RunWildWrite(false)}) {
    table.AddRow({row.scenario, Table::Int(row.cotenant_ok), Table::Int(row.victim_ok),
                  Table::Int(row.victim_errors), Table::Int(row.victim_hangs), row.detection,
                  row.corruption});
  }
  table.Print();
  std::printf(
      "\nexpected shape: in both messaging faults the co-tenant's throughput is\n"
      "unaffected and the faulty tile's clients get fail-stop *errors*, not silent\n"
      "hangs (a handful of hangs appear before detection for the wedge case — that\n"
      "window is the watchdog deadline). With segment capabilities the wild writer\n"
      "corrupts nothing and collects segfault errors; with the no-isolation\n"
      "counterfactual the same bug destroys a neighbour's data.\n");
  return 0;
}
