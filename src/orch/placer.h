// Resource-aware placement: picks which free tile region should host the
// next accelerator image.
//
// The placer is the spatial half of elastic orchestration. It bin-packs
// logic-cell demand into the board's fixed tile regions and scores the
// eligible candidates by mesh topology:
//   * co-place ("near"): minimize hop distance to nominated tiles, e.g. the
//     next pipeline stage or the load balancer a replica will serve;
//   * spread ("apart"): maximize hop distance from nominated tiles, e.g.
//     existing replicas, so one router or region fault cannot take the whole
//     replica set down.
// Reservations bridge the gap between choosing a tile and the (slow,
// ICAP-serialized) reconfiguration actually claiming it, so two concurrent
// placement decisions can never target one region.
#ifndef SRC_ORCH_PLACER_H_
#define SRC_ORCH_PLACER_H_

#include <set>
#include <vector>

#include "src/core/kernel.h"
#include "src/services/supervisor.h"
#include "src/stats/summary.h"

namespace apiary {

struct PlacementRequest {
  // Logic cells the image needs; must fit one tile region.
  uint32_t logic_cells = 0;
  // Tiles to sit close to (sum of hop distances is minimized).
  std::vector<TileId> near;
  // Tiles to sit far from (minimum hop distance is maximized).
  std::vector<TileId> apart;
};

class Placer {
 public:
  // `supervisor` may be null; when set, tiles the supervisor is mid-way
  // through healing (or has quarantined) are never placement candidates —
  // the "scaling and recovery never race" half that lives on this side.
  explicit Placer(ApiaryOs* os, const Supervisor* supervisor = nullptr)
      : os_(os), supervisor_(supervisor) {}

  // True if `tile` can host `logic_cells` right now: vacant, healthy, not
  // reserved, not under supervisor recovery, and big enough.
  bool Eligible(TileId tile, uint32_t logic_cells) const;

  // Best eligible tile for `req`, or kInvalidTile if none fits. Does not
  // reserve; callers that will reconfigure later must Reserve() the result.
  TileId Pick(const PlacementRequest& req) const;

  // Marks `tile` claimed until Release() — excluded from Eligible/Pick.
  void Reserve(TileId tile);
  void Release(TileId tile);
  bool reserved(TileId tile) const { return reserved_.count(tile) > 0; }

  const CounterSet& counters() const { return counters_; }

 private:
  ApiaryOs* os_;
  const Supervisor* supervisor_;
  std::set<TileId> reserved_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ORCH_PLACER_H_
