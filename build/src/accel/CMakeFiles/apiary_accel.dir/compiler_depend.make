# Empty compiler generated dependencies file for apiary_accel.
# This may be replaced when dependencies are built.
