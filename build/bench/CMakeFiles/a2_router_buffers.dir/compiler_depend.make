# Empty compiler generated dependencies file for a2_router_buffers.
# This may be replaced when dependencies are built.
