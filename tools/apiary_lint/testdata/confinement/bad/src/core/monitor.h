// Bad: a core-layer member holds a raw pointer into the noc domain.
#ifndef SRC_CORE_MONITOR_H_
#define SRC_CORE_MONITOR_H_

namespace apiary {

class Router;

class Monitor {
 private:
  Router* router_ = nullptr;
};

}  // namespace apiary

#endif  // SRC_CORE_MONITOR_H_
