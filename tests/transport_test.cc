// Tests for the reliable transport (ARQ) layer: unit tests against manual
// loss/reorder/duplication, plus end-to-end KV over a lossy fabric.
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/accel/kv_store.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/services/transport.h"
#include "src/workload/client.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Ferry frames between two transports with scripted mutations.
struct Pipe {
  ReliableTransport a;
  ReliableTransport b;
  std::vector<std::vector<uint8_t>> delivered_at_b;
  std::vector<std::vector<uint8_t>> delivered_at_a;

  // Moves all pending frames in both directions; `drop` decides per frame.
  void Exchange(Cycle now, const std::function<bool(int)>& drop = nullptr) {
    int idx = 0;
    for (auto& f : a.Poll(now)) {
      if (drop && drop(idx++)) {
        continue;
      }
      for (auto& payload : b.OnFrame(0, f.bytes, now)) {
        delivered_at_b.push_back(std::move(payload));
      }
    }
    for (auto& f : b.Poll(now)) {
      if (drop && drop(idx++)) {
        continue;
      }
      for (auto& payload : a.OnFrame(0, f.bytes, now)) {
        delivered_at_a.push_back(std::move(payload));
      }
    }
  }
};

TEST(TransportTest, InOrderDeliveryNoLoss) {
  Pipe pipe;
  for (uint8_t i = 0; i < 10; ++i) {
    pipe.a.SendData(0, {i}, 0);
  }
  for (Cycle t = 0; t < 10; ++t) {
    pipe.Exchange(t);
  }
  ASSERT_EQ(pipe.delivered_at_b.size(), 10u);
  for (uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(pipe.delivered_at_b[i][0], i);
  }
  EXPECT_EQ(pipe.a.retransmissions(), 0u);
}

TEST(TransportTest, RecoversFromLoss) {
  Pipe pipe;
  TransportConfig cfg;
  cfg.rto_cycles = 100;
  pipe.a = ReliableTransport(cfg);
  for (uint8_t i = 0; i < 5; ++i) {
    pipe.a.SendData(0, {i}, 0);
  }
  // First exchange: drop frames 1 and 3.
  pipe.Exchange(0, [](int idx) { return idx == 1 || idx == 3; });
  EXPECT_LT(pipe.delivered_at_b.size(), 5u);
  // After the RTO, retransmissions close the gaps.
  for (Cycle t = 100; t < 500; t += 100) {
    pipe.Exchange(t);
  }
  ASSERT_EQ(pipe.delivered_at_b.size(), 5u);
  for (uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pipe.delivered_at_b[i][0], i);  // Order preserved despite loss.
  }
  EXPECT_GT(pipe.a.retransmissions(), 0u);
}

TEST(TransportTest, DuplicatesDropped) {
  ReliableTransport rx;
  ReliableTransport tx;
  tx.SendData(0, {42}, 0);
  auto frames = tx.Poll(0);
  ASSERT_EQ(frames.size(), 1u);
  auto first = rx.OnFrame(0, frames[0].bytes, 0);
  ASSERT_EQ(first.size(), 1u);
  auto second = rx.OnFrame(0, frames[0].bytes, 1);  // Replayed frame.
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(rx.duplicates_dropped(), 1u);
}

TEST(TransportTest, ReorderingHealed) {
  ReliableTransport rx;
  ReliableTransport tx;
  for (uint8_t i = 0; i < 3; ++i) {
    tx.SendData(0, {i}, 0);
  }
  auto frames = tx.Poll(0);
  ASSERT_EQ(frames.size(), 3u);
  // Deliver 2, 0, 1.
  EXPECT_TRUE(rx.OnFrame(0, frames[2].bytes, 0).empty());  // Gap: buffered.
  auto after0 = rx.OnFrame(0, frames[0].bytes, 1);
  ASSERT_EQ(after0.size(), 1u);
  EXPECT_EQ(after0[0][0], 0);
  auto after1 = rx.OnFrame(0, frames[1].bytes, 2);  // Closes the gap: 1 and 2.
  ASSERT_EQ(after1.size(), 2u);
  EXPECT_EQ(after1[0][0], 1);
  EXPECT_EQ(after1[1][0], 2);
}

TEST(TransportTest, WindowLimitsOutstanding) {
  TransportConfig cfg;
  cfg.window = 4;
  ReliableTransport tx(cfg);
  for (uint8_t i = 0; i < 10; ++i) {
    tx.SendData(0, {i}, 0);
  }
  EXPECT_EQ(tx.Poll(0).size(), 4u);  // Only a window's worth leaves.
  EXPECT_TRUE(tx.Poll(1).empty());   // Nothing more until ACKs arrive.
}

TEST(TransportTest, AcksOpenTheWindow) {
  TransportConfig cfg;
  cfg.window = 2;
  Pipe pipe;
  pipe.a = ReliableTransport(cfg);
  for (uint8_t i = 0; i < 6; ++i) {
    pipe.a.SendData(0, {i}, 0);
  }
  for (Cycle t = 0; t < 10; ++t) {
    pipe.Exchange(t);
  }
  EXPECT_EQ(pipe.delivered_at_b.size(), 6u);
}

TEST(TransportTest, NonTransportFramesIgnored) {
  ReliableTransport rx;
  EXPECT_FALSE(ReliableTransport::IsTransportFrame({1, 2, 3}));
  EXPECT_TRUE(rx.OnFrame(0, {1, 2, 3}, 0).empty());
  EXPECT_EQ(rx.counters().Get("rt.non_transport"), 1u);
}

TEST(TransportTest, PerPeerSequencesIndependent) {
  ReliableTransport tx;
  tx.SendData(5, {1}, 0);
  tx.SendData(9, {2}, 0);
  auto frames = tx.Poll(0);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_NE(frames[0].peer, frames[1].peer);
  // Both carry seq 1 for their own peer, deliverable independently.
  ReliableTransport rx;
  EXPECT_EQ(rx.OnFrame(5, frames[0].peer == 5 ? frames[0].bytes : frames[1].bytes, 0).size(),
            1u);
  EXPECT_EQ(rx.OnFrame(9, frames[0].peer == 9 ? frames[0].bytes : frames[1].bytes, 0).size(),
            1u);
}

// End to end: the full KV-over-network chain on a 10%-lossy fabric, with
// the reliable transport at both ends — zero application errors.
TEST(TransportIntegrationTest, KvWorkloadSurvivesLossyFabric) {
  TestBoard tb;
  tb.net.SetLossRate(0.10, 1234);
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  TransportConfig tcfg;
  tcfg.rto_cycles = 8000;
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g()),
                                       /*reliable=*/true, tcfg));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId kv_svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gt, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gt, kv_svc));

  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 2;
  ccfg.max_requests = 40;
  ccfg.reliable = true;
  ccfg.transport = tcfg;
  ClientHost client(ccfg, &tb.net, [&](uint64_t index, Rng&) {
    ClientRequest req;
    const std::string key = KvKeyForIndex(index % 10);
    if (index < 10) {
      req.opcode = kOpKvPut;
      req.payload = MakeKvPutPayload(key, KvValueForIndex(index % 10, 32));
    } else {
      req.opcode = kOpKvGet;
      req.payload = MakeKvGetPayload(key);
    }
    return req;
  });
  tb.sim.Register(&client);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return client.received() >= 40; }, 20'000'000))
      << "recv=" << client.received() << " losses="
      << tb.net.counters().Get("extnet.dropped_loss");
  EXPECT_EQ(client.errors(), 0u);
  EXPECT_EQ(client.last_response(), KvValueForIndex(9, 32));
  // The fabric really did lose traffic; the transport really did recover it.
  EXPECT_GT(tb.net.counters().Get("extnet.dropped_loss"), 0u);
}

// Control: the same lossy fabric WITHOUT the reliable transport loses
// requests for good (the client's own coarse timer has to re-issue).
TEST(TransportIntegrationTest, LossVisibleWithoutTransport) {
  TestBoard tb;
  tb.net.SetLossRate(0.10, 77);
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g()),
                                       /*reliable=*/false));
  AppId app = tb.os.CreateApp("svc");
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gt, kNetworkService);
  ServiceId echo_svc = 0;
  tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &echo_svc);
  gw->SetBackend(tb.os.GrantSendToService(gt, echo_svc));

  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 4;
  ccfg.max_requests = 60;
  ccfg.retry_timeout_cycles = 10000;
  ClientHost client(ccfg, &tb.net, [](uint64_t, Rng&) {
    return ClientRequest{kOpEcho, {1, 2, 3}};
  });
  tb.sim.Register(&client);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return client.received() >= 60; }, 20'000'000));
  // Losses forced application-level timeouts — visible, unlike above.
  EXPECT_GT(client.timeouts(), 0u);
}

}  // namespace
}  // namespace apiary
