# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for a7_memory_channels.
