// Misbehaving accelerators for the isolation and fault-containment
// experiments (E4, E6, E9): buggy, wedged, flooding, snooping and
// wild-writing tiles. Each models a failure mode the paper's Sections 2 and
// 4.4 argue an FPGA OS must contain.
#ifndef SRC_ACCEL_FAULTY_H_
#define SRC_ACCEL_FAULTY_H_

#include <deque>
#include <string>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

// Serves requests normally for `healthy_requests`, then silently stops
// responding (an infinite loop / livelock — it will "never yield", 4.4).
class WedgeAccelerator : public Accelerator {
 public:
  WedgeAccelerator(uint64_t healthy_requests, CapRef mgmt_cap = kInvalidCapRef,
                   Cycle heartbeat_period = 5000)
      : healthy_requests_(healthy_requests),
        mgmt_cap_(mgmt_cap),
        heartbeat_period_(heartbeat_period) {}

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  // Sleeps between heartbeats; wedged (or unwatched) accelerators do nothing
  // in Tick and never wake on their own. A failed heartbeat send leaves
  // last_heartbeat_ in the past, which keeps the block active for the retry.
  // APIARY-WAKE(tile): hosted accelerator — the owning Tile's NI sink wake
  // ends the park on message delivery (wedged blocks stay idle by design).
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (wedged() || mgmt_cap_ == kInvalidCapRef) {
      return kNoActivity;
    }
    const Cycle hb_at = last_heartbeat_ + heartbeat_period_;
    return hb_at > now ? hb_at : now;
  }

  std::string name() const override { return "wedge"; }
  uint32_t LogicCellCost() const override { return 3000; }
  bool wedged() const { return served_ >= healthy_requests_; }

 private:
  uint64_t healthy_requests_;
  CapRef mgmt_cap_;
  Cycle heartbeat_period_;
  uint64_t served_ = 0;
  Cycle last_heartbeat_ = 0;
};

// Self-detecting bug: raises a fault (RaiseFault) after N requests, the
// cooperative error path of Section 4.4.
class CrashAccelerator : public Accelerator {
 public:
  explicit CrashAccelerator(uint64_t healthy_requests)
      : healthy_requests_(healthy_requests) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  // Purely message-driven: no tick work at all.
  // APIARY-WAKE(tile): hosted accelerator — the owning Tile's NI sink wake
  // ends the park on message delivery.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    (void)now;
    return kNoActivity;
  }

  std::string name() const override { return "crash"; }
  uint32_t LogicCellCost() const override { return 3000; }

 private:
  uint64_t healthy_requests_;
  uint64_t served_ = 0;
};

// Floods a victim endpoint with back-to-back maximum-size messages — the
// resource-exhaustion attacker of Section 4.5. Tracks how often the monitor
// said no.
class FlooderAccelerator : public Accelerator {
 public:
  FlooderAccelerator(CapRef victim, uint32_t message_bytes = 256)
      : victim_(victim), message_bytes_(message_bytes) {}

  void SetVictim(CapRef victim) { victim_ = victim; }
  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "flooder"; }
  uint32_t LogicCellCost() const override { return 3000; }

  uint64_t sent() const { return sent_; }
  uint64_t rate_limited() const { return rate_limited_; }
  uint64_t backpressured() const { return backpressured_; }

 private:
  CapRef victim_;
  uint32_t message_bytes_;
  uint64_t sent_ = 0;
  uint64_t rate_limited_ = 0;
  uint64_t backpressured_ = 0;
};

// Attempts unauthorized operations every `period` cycles: sends to tiles it
// holds no capability for and memory accesses with forged/absent grants —
// the snooping KV store of Section 2. Records every denial it collects.
class SnooperAccelerator : public Accelerator {
 public:
  explicit SnooperAccelerator(uint32_t num_tiles, Cycle period = 100)
      : num_tiles_(num_tiles), period_(period) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "snooper"; }
  uint32_t LogicCellCost() const override { return 3000; }

  uint64_t attempts() const { return attempts_; }
  uint64_t denied_local() const { return denied_local_; }    // Monitor said no.
  uint64_t denied_remote() const { return denied_remote_; }  // Peer/service said no.
  uint64_t leaked() const { return leaked_; }                 // Data it should not have.

 private:
  uint32_t num_tiles_;
  Cycle period_;
  Cycle next_attempt_ = 0;
  uint32_t probe_tile_ = 0;
  uint64_t attempts_ = 0;
  uint64_t denied_local_ = 0;
  uint64_t denied_remote_ = 0;
  uint64_t leaked_ = 0;
};

// Holds a legitimate (small) segment but keeps issuing reads/writes beyond
// its bounds through the memory service — the bug the segment bounds check
// must contain (Section 4.6).
class WildWriterAccelerator : public Accelerator {
 public:
  explicit WildWriterAccelerator(uint64_t segment_bytes = 4096, Cycle period = 200)
      : segment_bytes_(segment_bytes), period_(period) {}

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "wild_writer"; }
  uint32_t LogicCellCost() const override { return 3000; }

  uint64_t attempts() const { return attempts_; }
  uint64_t seg_faults() const { return seg_faults_; }
  uint64_t in_bounds_ok() const { return in_bounds_ok_; }

 private:
  uint64_t segment_bytes_;
  Cycle period_;
  Cycle next_attempt_ = 0;
  CapRef memsvc_cap_ = kInvalidCapRef;
  CapRef mem_cap_ = kInvalidCapRef;
  bool alloc_requested_ = false;
  bool wild_phase_ = false;
  uint64_t attempts_ = 0;
  uint64_t seg_faults_ = 0;
  uint64_t in_bounds_ok_ = 0;
};

}  // namespace apiary

#endif  // SRC_ACCEL_FAULTY_H_
