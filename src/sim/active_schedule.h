// Active-set scheduler: the executed-cycle engine behind Simulator.
//
// A tick-everything loop pays O(all blocks) per executed cycle even when most
// blocks are quiescent. This schedule keeps an insertion-stable *active list*
// (iterated in registration order, so trace ordering is byte-identical to the
// tick-everything loop) plus a bucketed timer wheel keyed by
// Clocked::NextActivity, making an executed cycle O(active + woken) and the
// skip-decision poll O(1) when any block is busy.
//
// Correctness rests on the PR 4 quiescence contract: Tick() of a quiescent
// block is a no-op (including its trace), so conservatively ticking a block
// is always byte-safe — only a *missed* tick (a late wake) can change
// behavior. Every transition out of parked quiescence therefore goes through
// one of:
//   * the timer wheel (the block's own declared deadline),
//   * Clocked::RequestWake()/WakeHint (input delivered by another block),
//   * a per-boundary re-poll (SchedPolicy::kBoundaryPoll, for blocks whose
//     inputs arrive outside any schedule-visible wake path),
// and SchedPolicy::kEveryCycle opts a block out entirely (ticked on every
// executed cycle, exactly as the legacy loop would).
#ifndef SRC_SIM_ACTIVE_SCHEDULE_H_
#define SRC_SIM_ACTIVE_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "src/sim/clocked.h"
#include "src/sim/types.h"

namespace apiary {

class ActiveSchedule final : public WakeSink {
 public:
  ActiveSchedule() = default;
  ActiveSchedule(const ActiveSchedule&) = delete;
  ActiveSchedule& operator=(const ActiveSchedule&) = delete;

  // Adds a block; returns its stable slot id (never reshuffled by other
  // blocks' removal — the fix for the old index-remap in
  // Simulator::ApplyPendingRemovals). The block starts active (conservative:
  // a spurious tick is a no-op). When called while ExecuteTicks is running,
  // the block's first tick is deferred to the next cycle, matching the legacy
  // loop's count snapshot (blocks registered mid-tick start next cycle, while
  // blocks registered by event callbacks — before the loop — tick same-cycle).
  // `defer_first_tick` forces the next-cycle start regardless (the parallel
  // engine classifies new blocks at the top of the next cycle, so even
  // event-registered blocks start one cycle later there).
  uint32_t Add(Clocked* block, Cycle now, bool defer_first_tick = false);

  // Removes a block; its slot id is recycled (generation-checked, so stale
  // wheel entries and stale hot-slot caches can never alias the new tenant).
  void Remove(uint32_t slot);

  // The block at `slot` iff the slot still holds the same registration
  // (generation match); nullptr otherwise. For stable hot-block caches.
  Clocked* BlockAt(uint32_t slot, uint32_t gen) const;
  uint32_t GenOf(uint32_t slot) const {
    return slot < slots_.size() ? slots_[slot].gen : 0;
  }

  // WakeSink: ends `slot`'s parked quiescence. Insertion keeps registration
  // order; a wake issued mid-ExecuteTicks by an *earlier*-order block is
  // deferred to next cycle (the legacy loop had already ticked the sleeper
  // this cycle), while one from a *later*-order block ticks this cycle (the
  // legacy loop had not reached the sleeper yet) — byte-identical visibility.
  void Wake(uint32_t slot) override;

  // WakeSink: re-reads the block's SchedulingPolicy() (a tile's policy
  // follows the service loaded onto it, which reconfiguration changes
  // mid-run) and conservatively re-activates the block.
  void RefreshPolicy(uint32_t slot) override;

  // Ticks the active list for cycle `now`, in registration order.
  void ExecuteTicks(Cycle now);

  // Establishes the active set for cycle `now` (call after advancing the
  // clock, including across skip jumps): pops due timer-wheel entries, then
  // re-polls active and boundary-poll blocks, parking the quiescent ones.
  void AdvanceBoundary(Cycle now);

  // The earliest cycle >= `now` at which this schedule needs an executed
  // cycle: `now` itself while any block is active (O(1) when a kActiveSet
  // block is busy), else the earliest wheel deadline / pinned / boundary-poll
  // declaration; kNoActivity when fully idle. Pure (safe to call repeatedly).
  Cycle EarliestWork(Cycle now) const;

  // Conservatively re-activates every block and drops all wheel state. Used
  // when blocks migrate between schedules (parallel engine rebinding) and
  // when active-set mode is (re)enabled mid-run with stale state.
  void RebuildAllActive();

  size_t size() const { return live_count_; }
  bool ticking() const { return ticking_; }

  // Executed-cycle breakdown (monotonic).
  uint64_t ticked_blocks() const { return ticked_blocks_; }
  uint64_t wheel_wakes() const { return wheel_wakes_; }
  uint64_t wake_calls() const { return wake_calls_; }

 private:
  enum class State : uint8_t { kFree, kActive, kTimed, kParked };

  struct Slot {
    Clocked* block = nullptr;
    uint64_t order = 0;         // Registration order; the global tick order.
    Cycle deadline = 0;         // Valid while kTimed (wheel entry validation).
    Cycle no_tick_before = 0;   // Defers the first tick of a mid-loop Add.
    uint32_t gen = 0;
    State state = State::kFree;
    Clocked::SchedPolicy policy = Clocked::SchedPolicy::kActiveSet;
    bool timed_far = false;  // Valid while kTimed: entry lives in far_, not a bucket.
  };

  struct WheelEntry {
    uint32_t slot;
    uint32_t gen;
    Cycle deadline;
  };

  static constexpr Cycle kWheelBuckets = 256;

  bool EntryLive(const WheelEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.gen == e.gen && s.state == State::kTimed && s.deadline == e.deadline;
  }

  // Inserts `slot` into active_ keeping registration order; fixes up the
  // tick cursor so in-progress iteration neither revisits nor misses blocks.
  void InsertActive(uint32_t slot);
  void ScheduleTimed(uint32_t slot, Cycle now, Cycle deadline);
  void Activate(uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_order_ = 0;
  size_t live_count_ = 0;

  // Slots to tick, sorted by registration order. Pinned (kEveryCycle) slots
  // are permanent members; others come and go with their quiescence.
  std::vector<uint32_t> active_;
  // Number of active_ entries with kActiveSet policy: the O(1) busy signal.
  size_t transient_active_ = 0;
  // kEveryCycle / kBoundaryPoll membership (small; polled for skip targets).
  std::vector<uint32_t> pinned_;
  std::vector<uint32_t> polled_;

  // Bucketed wheel for near deadlines (< now + kWheelBuckets) and an
  // unsorted far list (with a cached lower bound) for the rest. Entries are
  // validated lazily against their slot (generation + state + deadline), so
  // wakes and removals never have to search the wheel.
  std::vector<WheelEntry> buckets_[kWheelBuckets];
  std::vector<WheelEntry> far_;
  Cycle far_min_ = kNoActivity;
  Cycle last_boundary_ = 0;
  // Number of kTimed slots whose entry is in a near bucket (exact; lets the
  // boundary pop and the EarliestWork bucket walk short-circuit when zero).
  size_t near_timed_ = 0;
  // Lower bound on the earliest live wheel deadline (exact value would need
  // a scan; the bound keeps EarliestWork's bucket walk short).
  Cycle wheel_min_ = kNoActivity;

  bool ticking_ = false;
  size_t cursor_ = 0;

  uint64_t ticked_blocks_ = 0;
  uint64_t wheel_wakes_ = 0;
  uint64_t wake_calls_ = 0;
};

}  // namespace apiary

#endif  // SRC_SIM_ACTIVE_SCHEDULE_H_
