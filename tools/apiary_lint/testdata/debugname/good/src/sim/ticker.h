// Good: a Clocked subclass naming itself for traces.
#ifndef SRC_SIM_TICKER_H_
#define SRC_SIM_TICKER_H_

#include <string>

#include "src/sim/clocked.h"

namespace apiary {

class Ticker : public Clocked {
 public:
  void Tick(Cycle now) override;
  std::string DebugName() const override { return "ticker"; }
};

}  // namespace apiary

#endif  // SRC_SIM_TICKER_H_
