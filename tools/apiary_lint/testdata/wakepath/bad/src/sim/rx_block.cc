// A queue that buffers input in Tick-visible state but never wakes the
// block: under active-set scheduling the delivery lands behind a parked
// block's back and the drain never runs — missed work, not a perf loss.
namespace apiary {

class RxQueue : public Clocked {
 public:
  void Deliver(int item) { pending_.push_back(item); }
  void Tick(Cycle now) override { Drain(now); }
  Cycle NextActivity(Cycle now) const override {
    return pending_.empty() ? kNoActivity : now;
  }
  std::string DebugName() const override { return "rx_queue"; }

 private:
  void Drain(Cycle now);
  std::vector<int> pending_;
};

}  // namespace apiary
