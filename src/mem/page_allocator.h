// Page-based allocation — the CPU-style baseline Apiary argues against for
// FPGA memory isolation (Section 4.6). Used by experiment E5.
#ifndef SRC_MEM_PAGE_ALLOCATOR_H_
#define SRC_MEM_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/stats/summary.h"

namespace apiary {

// Allocates fixed-size physical pages from a frame pool. Pages backing one
// logical allocation need not be contiguous (that is the point of paging);
// the allocator reports internal fragmentation: bytes granted minus bytes
// requested, rounded up to whole pages.
class PageAllocator {
 public:
  PageAllocator(uint64_t capacity_bytes, uint64_t page_bytes);

  // Allocates enough pages to hold `bytes`. Returns the physical frame
  // numbers, or nullopt if the pool is exhausted.
  std::optional<std::vector<uint64_t>> Allocate(uint64_t bytes);

  void Free(const std::vector<uint64_t>& frames);

  uint64_t page_bytes() const { return page_bytes_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t free_pages() const { return free_list_.size(); }
  uint64_t bytes_requested() const { return bytes_requested_; }
  uint64_t bytes_granted() const { return bytes_granted_; }

  // Internal fragmentation across live allocations: granted - requested.
  uint64_t InternalFragmentationBytes() const { return bytes_granted_ - bytes_requested_; }

  const CounterSet& counters() const { return counters_; }

 private:
  uint64_t page_bytes_;
  uint64_t total_pages_;
  std::vector<uint64_t> free_list_;
  // Parallel bookkeeping so Free() can subtract the right request size:
  // per-frame share of the original request, in bytes (the first frame of an
  // allocation absorbs the rounding remainder).
  std::vector<uint64_t> frame_requested_share_;
  uint64_t bytes_requested_ = 0;
  uint64_t bytes_granted_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_MEM_PAGE_ALLOCATOR_H_
