#include "src/core/message.h"

namespace apiary {
namespace {

// Fixed header layout (little-endian):
//   u32 dst_service, u8 kind, u16 opcode, u8 status, u64 request_id,
//   u32 dst_process, u32 src_tile, u32 src_service, u32 src_app,
//   2 x (u64 grant.base, u64 grant.length, u8 grant flags), u32 payload_len
static_assert(kMessageHeaderBytes <= kPacketHeadBytes,
              "message header must fit the packet head-flit region");

// Benchmark ablation toggle (bench/b2 --legacy-alloc): set once before a
// run starts, never written while any simulator is running.
// APIARY-SHARED(process): read-only during runs; per-domain copies would change the ablation's meaning.
bool g_legacy_alloc_mode = false;

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// Writes the fixed header (everything but the payload bytes) into `out`,
// which must hold kMessageHeaderBytes.
void WriteHeader(const Message& msg, uint8_t* out) {
  size_t off = 0;
  StoreU32(out + off, msg.dst_service);
  off += 4;
  out[off++] = static_cast<uint8_t>(msg.kind);
  StoreU16(out + off, msg.opcode);
  off += 2;
  out[off++] = static_cast<uint8_t>(msg.status);
  StoreU64(out + off, msg.request_id);
  off += 8;
  StoreU32(out + off, msg.dst_process);
  off += 4;
  StoreU32(out + off, msg.src_tile);
  off += 4;
  StoreU32(out + off, msg.src_service);
  off += 4;
  StoreU32(out + off, msg.src_app);
  off += 4;
  for (const SegmentGrant* grant : {&msg.grant, &msg.grant2}) {
    StoreU64(out + off, grant->segment.base);
    off += 8;
    StoreU64(out + off, grant->segment.length);
    off += 8;
    out[off++] = static_cast<uint8_t>(
        (grant->valid ? 1 : 0) | (grant->can_read ? 2 : 0) | (grant->can_write ? 4 : 0) |
        (grant->can_grant ? 8 : 0));
  }
  StoreU32(out + off, static_cast<uint32_t>(msg.payload.size()));
}

// Parses the fixed header from `bytes` (at least kMessageHeaderBytes).
// Returns the payload length the header declares.
uint32_t ParseHeader(const uint8_t* bytes, Message* msg) {
  size_t off = 0;
  msg->dst_service = LoadU32(bytes + off);
  off += 4;
  msg->kind = static_cast<MsgKind>(bytes[off++]);
  msg->opcode = LoadU16(bytes + off);
  off += 2;
  msg->status = static_cast<MsgStatus>(bytes[off++]);
  msg->request_id = LoadU64(bytes + off);
  off += 8;
  msg->dst_process = LoadU32(bytes + off);
  off += 4;
  msg->src_tile = LoadU32(bytes + off);
  off += 4;
  msg->src_service = LoadU32(bytes + off);
  off += 4;
  msg->src_app = LoadU32(bytes + off);
  off += 4;
  for (SegmentGrant* grant : {&msg->grant, &msg->grant2}) {
    grant->segment.base = LoadU64(bytes + off);
    off += 8;
    grant->segment.length = LoadU64(bytes + off);
    off += 8;
    const uint8_t flags = bytes[off++];
    grant->valid = (flags & 1) != 0;
    grant->can_read = (flags & 2) != 0;
    grant->can_write = (flags & 4) != 0;
    grant->can_grant = (flags & 8) != 0;
  }
  return LoadU32(bytes + off);
}

}  // namespace

void PutU32(PayloadBuf& buf, uint32_t v) {
  buf.reserve(buf.size() + 4);
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(PayloadBuf& buf, uint64_t v) {
  buf.reserve(buf.size() + 8);
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const PayloadBuf& buf, size_t offset) { return LoadU32(buf.data() + offset); }

uint64_t GetU64(const PayloadBuf& buf, size_t offset) { return LoadU64(buf.data() + offset); }

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const std::vector<uint8_t>& buf, size_t offset) {
  return LoadU32(buf.data() + offset);
}

uint64_t GetU64(const std::vector<uint8_t>& buf, size_t offset) {
  return LoadU64(buf.data() + offset);
}

const char* MsgStatusName(MsgStatus status) {
  switch (status) {
    case MsgStatus::kOk:
      return "ok";
    case MsgStatus::kNoCapability:
      return "no_capability";
    case MsgStatus::kRateLimited:
      return "rate_limited";
    case MsgStatus::kBackpressure:
      return "backpressure";
    case MsgStatus::kNoSuchService:
      return "no_such_service";
    case MsgStatus::kDestFailed:
      return "dest_failed";
    case MsgStatus::kDenied:
      return "denied";
    case MsgStatus::kBadRequest:
      return "bad_request";
    case MsgStatus::kSegFault:
      return "seg_fault";
    case MsgStatus::kNoMemory:
      return "no_memory";
    case MsgStatus::kRevoked:
      return "revoked";
    case MsgStatus::kTileStopped:
      return "tile_stopped";
    case MsgStatus::kNotFound:
      return "not_found";
  }
  return "unknown";
}

size_t Message::WireBytes() const { return kMessageHeaderBytes + payload.size(); }

void SetMessageLegacyAllocMode(bool legacy) { g_legacy_alloc_mode = legacy; }

bool MessageLegacyAllocMode() { return g_legacy_alloc_mode; }

void SerializeMessageInto(Message&& msg, NocPacket& packet) {
  if (g_legacy_alloc_mode) {
    // Ablation path: materialize the contiguous wire copy (heap vector +
    // full payload memcpy) and hash it in a second pass, like the pre-pool
    // implementation did.
    const std::vector<uint8_t> wire = SerializeMessage(msg);
    packet.head_len = static_cast<uint16_t>(kMessageHeaderBytes);
    std::memcpy(packet.head.data(), wire.data(), kMessageHeaderBytes);
    packet.payload.assign(wire.data() + kMessageHeaderBytes,
                          wire.size() - kMessageHeaderBytes);
    packet.checksum = PacketChecksum(wire);
    return;
  }
  packet.head_len = static_cast<uint16_t>(kMessageHeaderBytes);
  WriteHeader(msg, packet.head.data());
  packet.payload = std::move(msg.payload);
  // Checksum folded into the serialize pass: head region then payload,
  // byte-identical to hashing the contiguous copy.
  packet.checksum = PacketWireChecksum(packet);
}

std::optional<Message> DeserializeMessage(NocPacket& packet) {
  if (g_legacy_alloc_mode) {
    std::vector<uint8_t> wire(packet.wire_bytes());
    std::memcpy(wire.data(), packet.head.data(), packet.head_len);
    std::memcpy(wire.data() + packet.head_len, packet.payload.data(),
                packet.payload.size());
    return DeserializeMessage(wire);
  }
  if (packet.head_len == 0) {
    // Hand-built packet (tests, raw injectors): the whole contiguous wire
    // image lives in the payload.
    return DeserializeMessage(packet.payload.ToVector());
  }
  if (packet.head_len != kMessageHeaderBytes) {
    return std::nullopt;
  }
  Message msg;
  const uint32_t payload_len = ParseHeader(packet.head.data(), &msg);
  if (payload_len != packet.payload.size()) {
    return std::nullopt;
  }
  msg.payload = std::move(packet.payload);
  return msg;
}

std::vector<uint8_t> SerializeMessage(const Message& msg) {
  std::vector<uint8_t> out(msg.WireBytes());
  WriteHeader(msg, out.data());
  std::memcpy(out.data() + kMessageHeaderBytes, msg.payload.data(), msg.payload.size());
  return out;
}

std::optional<Message> DeserializeMessage(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kMessageHeaderBytes) {
    return std::nullopt;
  }
  Message msg;
  const uint32_t payload_len = ParseHeader(bytes.data(), &msg);
  if (bytes.size() != kMessageHeaderBytes + payload_len) {
    return std::nullopt;
  }
  msg.payload.assign(bytes.data() + kMessageHeaderBytes, payload_len);
  return msg;
}

}  // namespace apiary
