// Simulated client hosts driving request/response workloads over the
// external network against a board's NetGateway protocol (or a hosted
// baseline system, which speaks the same frame format).
//
// Frame to board:    u32 dst_service | u64 client_id | u16 opcode | payload
// Frame from board:  u64 client_id | u8 status | payload
//
// Two arrival disciplines: open-loop Poisson (offered load in requests per
// kilocycle) and closed-loop (fixed concurrency window).
#ifndef SRC_WORKLOAD_CLIENT_H_
#define SRC_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/fpga/ethernet.h"
#include "src/sim/payload_buf.h"
#include "src/services/transport.h"
#include "src/sim/random.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

struct ClientRequest {
  uint16_t opcode = 0;
  PayloadBuf payload;
};

struct ClientConfig {
  // Destination on the external fabric (the board MAC or hosted system).
  uint32_t server_endpoint = 0;
  // Logical service id written into the frame header (the gateway's id).
  // Hosted baselines ignore it but the bytes are still carried.
  uint32_t dst_service = 0;
  bool open_loop = true;
  // Open loop: mean offered load, requests per 1000 cycles.
  double requests_per_1k_cycles = 1.0;
  // Closed loop: outstanding-request window.
  uint32_t concurrency = 1;
  // Stop issuing after this many requests (0 = unlimited).
  uint64_t max_requests = 0;
  // A request unanswered for this long is declared lost and (in closed-loop
  // mode) re-issued — covering startup frames dropped before link-up.
  Cycle retry_timeout_cycles = 20000;
  // Speak the reliable ARQ transport (must match the server's network
  // service). Application-level retry should then be disabled or slow.
  bool reliable = false;
  TransportConfig transport;
  uint64_t seed = 1;
};

class ClientHost : public Clocked, public ExternalEndpoint {
 public:
  using RequestFactory = std::function<ClientRequest(uint64_t index, Rng& rng)>;

  ClientHost(ClientConfig config, ExternalNetwork* network, RequestFactory factory);

  void OnFrame(EthFrame frame, Cycle now) override;
  void Tick(Cycle now) override;
  // Quiescent between the open-loop arrival clock, closed-loop window
  // openings, and per-request retry timers; reliable mode stays active so
  // the ARQ transport's internal timers keep their cycle-exact cadence.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "client"; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }
  uint64_t errors() const { return errors_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t outstanding() const { return outstanding_.size(); }
  const Histogram& latency() const { return latency_; }
  const std::map<uint8_t, uint64_t>& status_counts() const { return status_counts_; }

  // Last successful response payload (for functional checks in examples).
  const std::vector<uint8_t>& last_response() const { return last_response_; }

 private:
  struct Outstanding {
    Cycle issued;        // Last transmission (drives the retry timer).
    Cycle first_issued;  // Original submission (drives latency accounting).
    uint16_t opcode;
    PayloadBuf payload;
  };

  void SendOne(Cycle now);
  void Transmit(uint64_t id, uint16_t opcode, const PayloadBuf& payload, Cycle now);
  // NOLINTNEXTLINE(apiary-hot-path): external-fabric frame bytes, not a NoC message payload
  void HandleResponsePayload(const std::vector<uint8_t>& payload, Cycle now);
  bool DoneIssuing() const {
    return config_.max_requests != 0 && issued_ >= config_.max_requests;
  }

  ClientConfig config_;
  ExternalNetwork* network_;
  RequestFactory factory_;
  ReliableTransport transport_;
  Rng rng_;
  uint32_t my_endpoint_ = 0;
  Cycle next_send_at_ = 0;
  uint64_t next_id_ = 1;
  uint64_t issued_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t errors_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t stray_responses_ = 0;
  std::map<uint64_t, Outstanding> outstanding_;
  std::map<uint8_t, uint64_t> status_counts_;
  Histogram latency_;
  std::vector<uint8_t> last_response_;
};

}  // namespace apiary

#endif  // SRC_WORKLOAD_CLIENT_H_
