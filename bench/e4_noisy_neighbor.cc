// Experiment E4: noisy-neighbor containment via monitor rate limiting.
//
// Paper basis (Section 4.5): "With untrusted accelerators, having
// permissioned access and rate limiting are necessary to prevent malicious
// accelerators from either accessing unauthorized resources or causing
// resource exhaustion. Even in the case where all accelerators trust each
// other, rate limiting or access control can help mitigate unintentional
// behavior that degrades performance."
//
// A victim KV-style echo service serves a well-behaved client while a
// flooder on another tile of the same app blasts maximum-rate traffic at it.
// We sweep the flooder's monitor-configured token-bucket rate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  double victim_p50;
  double victim_p99;
  uint64_t victim_done;
  uint64_t flood_delivered;
};

// A polite closed-loop client accelerator measuring its own latencies.
class PoliteClient : public Accelerator {
 public:
  explicit PoliteClient(ServiceId svc) : svc_(svc) {}
  void Tick(TileApi& api) override {
    if (in_flight_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(32, 7);
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      sent_at_ = api.now();
      in_flight_ = true;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind == MsgKind::kResponse) {
      latency.Record(api.now() - sent_at_);
      in_flight_ = false;
    }
  }
  std::string name() const override { return "polite_client"; }
  uint32_t LogicCellCost() const override { return 1000; }
  Histogram latency;

 private:
  ServiceId svc_;
  bool in_flight_ = false;
  Cycle sent_at_ = 0;
};

Result Run(bool with_flooder, uint64_t limit_flits_per_1k) {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("shared");

  auto* victim = new EchoAccelerator(20);
  ServiceId vsvc = 0;
  const TileId vt = os.Deploy(app, std::unique_ptr<Accelerator>(victim), &vsvc);
  auto* client = new PoliteClient(vsvc);
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(ct, vsvc);

  FlooderAccelerator* flooder = nullptr;
  if (with_flooder) {
    flooder = new FlooderAccelerator(kInvalidCapRef, 256);
    const TileId ft = os.Deploy(app, std::unique_ptr<Accelerator>(flooder));
    flooder->SetVictim(os.GrantSendToService(ft, vsvc));
    if (limit_flits_per_1k != 0) {
      os.SetRateLimit(ft, limit_flits_per_1k, /*burst=*/32);
    }
  }
  (void)vt;
  bb.sim.Run(300000);

  Result r;
  r.victim_p50 = static_cast<double>(client->latency.P50());
  r.victim_p99 = static_cast<double>(client->latency.P99());
  r.victim_done = client->latency.count();
  r.flood_delivered = flooder == nullptr ? 0 : flooder->sent();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E4: noisy neighbor vs monitor rate limiting (300k-cycle runs)\n");
  std::printf("victim: echo service + closed-loop client; flooder: 256B blasts at the victim\n");

  BenchJson json("e4_noisy_neighbor");
  json.Param("run_cycles", static_cast<uint64_t>(300000));
  auto emit = [&json](const std::string& scenario, uint64_t limit, const Result& r) {
    json.BeginRow();
    json.Metric("scenario", scenario);
    json.Metric("limit_flits_per_1k", limit);
    json.Metric("flood_delivered", r.flood_delivered);
    json.Metric("victim_ops", r.victim_done);
    json.Metric("victim_p50_cycles", static_cast<uint64_t>(r.victim_p50));
    json.Metric("victim_p99_cycles", static_cast<uint64_t>(r.victim_p99));
  };

  Table table("E4: victim latency under flood, by flooder rate limit");
  table.SetHeader({"scenario", "flood msgs delivered", "victim ops", "victim p50 (cyc)",
                   "victim p99 (cyc)"});
  const Result baseline = Run(false, 0);
  table.AddRow({"no flooder", "-", Table::Int(baseline.victim_done),
                Table::Num(baseline.victim_p50, 0), Table::Num(baseline.victim_p99, 0)});
  emit("no flooder", 0, baseline);
  const Result unlimited = Run(true, 0);
  table.AddRow({"flood, no limit", Table::Int(unlimited.flood_delivered),
                Table::Int(unlimited.victim_done), Table::Num(unlimited.victim_p50, 0),
                Table::Num(unlimited.victim_p99, 0)});
  emit("flood, no limit", 0, unlimited);
  for (uint64_t limit : {2000u, 500u, 100u}) {
    const Result r = Run(true, limit);
    char label[64];
    std::snprintf(label, sizeof(label), "flood, limit %llu fl/1k",
                  static_cast<unsigned long long>(limit));
    table.AddRow({label, Table::Int(r.flood_delivered), Table::Int(r.victim_done),
                  Table::Num(r.victim_p50, 0), Table::Num(r.victim_p99, 0)});
    emit(label, limit, r);
  }
  table.Print();

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    json.WriteFile(json_path);
  }
  std::printf(
      "\nexpected shape: with no limit the flooder monopolizes the victim's inbox and\n"
      "NoC path, inflating the polite client's p99 and collapsing its throughput; as\n"
      "the kernel tightens the flooder's token bucket the victim recovers to within a\n"
      "few percent of the flood-free baseline — without touching the victim's code.\n");
  return 0;
}
