// Suppressed: legacy globals pending migration, waived with reasoned NOLINTs.
namespace apiary {

int g_legacy = 0;  // NOLINT(apiary-global-state): migration tracked in ROADMAP item 1

// NOLINTNEXTLINE(apiary-global-state): torn down before any worker thread starts
int g_registry_refs = 0;

}  // namespace apiary
