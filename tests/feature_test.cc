// Tests for the second wave of extensions: XTEA crypto accelerator,
// capability delegation (kOpMemShare), and multi-channel interleaved memory.
#include <gtest/gtest.h>

#include "src/accel/crypto.h"
#include "src/core/service_ids.h"
#include "src/mem/interleaved_memory.h"
#include "src/services/memory_service.h"
#include "src/sim/random.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// ---------------------------------------------------------------------
// XTEA primitives.
// ---------------------------------------------------------------------

TEST(XteaTest, KnownVector) {
  // Canonical XTEA test vector: key 00010203 04050607 08090a0b 0c0d0e0f,
  // plaintext 41424344 45464748 -> ciphertext 497df3d0 72612cb5.
  const std::array<uint32_t, 4> key = {0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f};
  uint32_t v[2] = {0x41424344, 0x45464748};
  XteaEncryptBlock(key, v);
  EXPECT_EQ(v[0], 0x497df3d0u);
  EXPECT_EQ(v[1], 0x72612cb5u);
}

TEST(XteaTest, CtrIsItsOwnInverse) {
  const std::array<uint32_t, 4> key = {1, 2, 3, 4};
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> plain(rng.NextBelow(500) + 1);
    for (auto& b : plain) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    const auto cipher = XteaCtr(key, 0xdeadbeef, plain);
    EXPECT_NE(cipher, plain);
    EXPECT_EQ(XteaCtr(key, 0xdeadbeef, cipher), plain);
  }
}

TEST(XteaTest, DifferentNoncesDifferentStreams) {
  const std::array<uint32_t, 4> key = {1, 2, 3, 4};
  const std::vector<uint8_t> plain(64, 0);
  EXPECT_NE(XteaCtr(key, 1, plain), XteaCtr(key, 2, plain));
}

TEST(XteaTest, DifferentKeysDifferentStreams) {
  const std::vector<uint8_t> plain(64, 0);
  EXPECT_NE(XteaCtr({1, 2, 3, 4}, 7, plain), XteaCtr({1, 2, 3, 5}, 7, plain));
}

TEST(CryptoAcceleratorTest, EncryptDecryptOverMessages) {
  TestBoard tb;
  const std::array<uint32_t, 4> key = {9, 9, 9, 9};
  AppId app = tb.os.CreateApp("sec");
  ServiceId svc = 0;
  tb.os.Deploy(app, std::make_unique<CryptoAccelerator>(key), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);

  const std::vector<uint8_t> secret = {'t', 'o', 'p', ' ', 's', 'e', 'c', 'r', 'e', 't'};
  Message enc;
  enc.opcode = kOpEncrypt;
  PutU64(enc.payload, 42);  // nonce
  enc.payload.insert(enc.payload.end(), secret.begin(), secret.end());
  probe->EnqueueSend(enc, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 50000));
  const auto cipher = probe->received[0].payload;
  EXPECT_NE(cipher, secret);
  EXPECT_EQ(cipher, XteaCtr(key, 42, secret));
  probe->received.clear();

  // Same nonce through the accelerator decrypts.
  Message dec;
  dec.opcode = kOpEncrypt;
  PutU64(dec.payload, 42);
  dec.payload.insert(dec.payload.end(), cipher.begin(), cipher.end());
  probe->EnqueueSend(dec, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 50000));
  EXPECT_EQ(probe->received[0].payload, secret);
}

// ---------------------------------------------------------------------
// Capability delegation through the memory service.
// ---------------------------------------------------------------------

struct ShareFixture {
  explicit ShareFixture(TestBoard& tb) {
    tb.os.DeployService(kMemoryService,
                        std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
    app = tb.os.CreateApp("sharing");
    owner = new ProbeAccelerator();
    owner_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(owner), &owner_svc);
    peer = new ProbeAccelerator();
    peer_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(peer), &peer_svc);
    owner_to_mem = tb.os.GrantSendToService(owner_tile, kMemoryService);
    peer_to_mem = tb.os.GrantSendToService(peer_tile, kMemoryService);
    // The owner holds a grant-right capability over 8KiB.
    owner_cap = *tb.os.GrantMemory(owner_tile, 8192,
                                   kRightRead | kRightWrite | kRightGrant);
  }

  AppId app = kInvalidApp;
  ProbeAccelerator* owner = nullptr;
  ProbeAccelerator* peer = nullptr;
  ServiceId owner_svc = 0;
  ServiceId peer_svc = 0;
  TileId owner_tile = kInvalidTile;
  TileId peer_tile = kInvalidTile;
  CapRef owner_to_mem = kInvalidCapRef;
  CapRef peer_to_mem = kInvalidCapRef;
  CapRef owner_cap = kInvalidCapRef;
};

TEST(DelegationTest, SharedSubRangeReadableByPeer) {
  TestBoard tb;
  ShareFixture fx(tb);
  // Owner writes a pattern at offset 1000.
  Message write;
  write.opcode = kOpMemWrite;
  PutU64(write.payload, 1000);
  const std::vector<uint8_t> pattern = {5, 6, 7, 8};
  write.payload.insert(write.payload.end(), pattern.begin(), pattern.end());
  fx.owner->EnqueueSend(write, fx.owner_to_mem, fx.owner_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.owner->received.empty(); }, 50000));
  fx.owner->received.clear();

  // Owner delegates a read-only view of [1000, 1000+64) to the peer.
  Message share;
  share.opcode = kOpMemShare;
  PutU64(share.payload, 1000);
  PutU64(share.payload, 64);
  PutU32(share.payload, fx.peer_svc);
  PutU32(share.payload, kRightRead);
  fx.owner->EnqueueSend(share, fx.owner_to_mem, fx.owner_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.owner->received.empty(); }, 50000));
  ASSERT_EQ(fx.owner->received[0].status, MsgStatus::kOk);
  const CapRef peer_cap = GetU32(fx.owner->received[0].payload, 0);

  // Peer reads through the delegated capability: offset is relative to the
  // shared sub-range.
  Message read;
  read.opcode = kOpMemRead;
  PutU64(read.payload, 0);
  PutU32(read.payload, 4);
  fx.peer->EnqueueSend(read, fx.peer_to_mem, peer_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.peer->received.empty(); }, 50000));
  EXPECT_EQ(fx.peer->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(fx.peer->received[0].payload, pattern);
}

TEST(DelegationTest, AttenuationEnforced) {
  TestBoard tb;
  ShareFixture fx(tb);
  // Delegate read-only, then the peer tries to write: kNoCapability.
  Message share;
  share.opcode = kOpMemShare;
  PutU64(share.payload, 0);
  PutU64(share.payload, 4096);
  PutU32(share.payload, fx.peer_svc);
  PutU32(share.payload, kRightRead | kRightWrite | kRightGrant);  // Asks too much...
  fx.owner->EnqueueSend(share, fx.owner_to_mem, fx.owner_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.owner->received.empty(); }, 50000));
  const CapRef peer_cap = GetU32(fx.owner->received[0].payload, 0);
  // ...but grant-right is never re-delegated through kOpMemShare: a further
  // share by the peer must fail.
  Message reshare;
  reshare.opcode = kOpMemShare;
  PutU64(reshare.payload, 0);
  PutU64(reshare.payload, 64);
  PutU32(reshare.payload, fx.owner_svc);
  PutU32(reshare.payload, kRightRead);
  fx.peer->EnqueueSend(reshare, fx.peer_to_mem, peer_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.peer->received.empty(); }, 50000));
  EXPECT_EQ(fx.peer->received[0].status, MsgStatus::kNoCapability);
}

TEST(DelegationTest, OutOfRangeShareRefused) {
  TestBoard tb;
  ShareFixture fx(tb);
  Message share;
  share.opcode = kOpMemShare;
  PutU64(share.payload, 8000);
  PutU64(share.payload, 1000);  // 8000+1000 > 8192.
  PutU32(share.payload, fx.peer_svc);
  PutU32(share.payload, kRightRead);
  fx.owner->EnqueueSend(share, fx.owner_to_mem, fx.owner_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.owner->received.empty(); }, 50000));
  EXPECT_EQ(fx.owner->received[0].status, MsgStatus::kSegFault);
}

TEST(DelegationTest, ShareWithoutGrantRightRefused) {
  TestBoard tb;
  ShareFixture fx(tb);
  // A capability without kRightGrant cannot delegate.
  const CapRef plain = *tb.os.GrantMemory(fx.owner_tile, 4096, kRightRead | kRightWrite);
  Message share;
  share.opcode = kOpMemShare;
  PutU64(share.payload, 0);
  PutU64(share.payload, 64);
  PutU32(share.payload, fx.peer_svc);
  PutU32(share.payload, kRightRead);
  fx.owner->EnqueueSend(share, fx.owner_to_mem, plain);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.owner->received.empty(); }, 50000));
  EXPECT_EQ(fx.owner->received[0].status, MsgStatus::kNoCapability);
}

// ---------------------------------------------------------------------
// Interleaved (multi-channel) memory.
// ---------------------------------------------------------------------

TEST(InterleavedMemoryTest, ReadBackAcrossStripes) {
  Simulator sim;
  DramConfig per_channel;
  per_channel.capacity_bytes = 1 << 20;
  InterleavedMemory mem(per_channel, 4, /*stripe=*/256);
  sim.Register(&mem);
  EXPECT_EQ(mem.capacity(), 4u << 20);

  // A write spanning several stripes (and thus several channels).
  std::vector<uint8_t> data(2000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  bool wrote = false;
  ASSERT_TRUE(mem.SubmitWrite(100, data, [&](Cycle) { wrote = true; }));
  ASSERT_TRUE(sim.RunUntil([&] { return wrote; }, 10000));
  std::vector<uint8_t> out(2000);
  bool read = false;
  ASSERT_TRUE(mem.SubmitRead(100, out, [&](Cycle) { read = true; }));
  ASSERT_TRUE(sim.RunUntil([&] { return read; }, 10000));
  EXPECT_EQ(out, data);
}

TEST(InterleavedMemoryTest, DebugPathMatchesTimedPath) {
  Simulator sim;
  DramConfig per_channel;
  per_channel.capacity_bytes = 1 << 20;
  InterleavedMemory mem(per_channel, 3, 512);
  sim.Register(&mem);
  std::vector<uint8_t> data(5000, 0);
  Rng rng(3);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  mem.DebugWrite(777, data);
  EXPECT_EQ(mem.DebugRead(777, data.size()), data);
  std::vector<uint8_t> out(5000);
  bool read = false;
  ASSERT_TRUE(mem.SubmitRead(777, out, [&](Cycle) { read = true; }));
  ASSERT_TRUE(sim.RunUntil([&] { return read; }, 10000));
  EXPECT_EQ(out, data);
}

TEST(InterleavedMemoryTest, OutOfBoundsRejected) {
  DramConfig per_channel;
  per_channel.capacity_bytes = 1 << 20;
  InterleavedMemory mem(per_channel, 2, 4096);
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE(mem.SubmitRead((2u << 20) - 32, buf, nullptr));
  EXPECT_TRUE(mem.DebugRead(3u << 20, 4).empty());
}

TEST(InterleavedMemoryTest, MoreChannelsMoreBandwidth) {
  // Stream many independent 4KiB reads; wall-clock cycles to drain should
  // drop substantially with channel count.
  auto run = [](uint32_t channels) {
    Simulator sim;
    DramConfig per_channel;
    per_channel.capacity_bytes = 8 << 20;
    InterleavedMemory mem(per_channel, channels, 4096);
    sim.Register(&mem);
    int done = 0;
    std::vector<std::vector<uint8_t>> bufs(64, std::vector<uint8_t>(4096));
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(mem.SubmitRead(static_cast<uint64_t>(i) * 4096,
                                 std::span<uint8_t>(bufs[i]), [&](Cycle) { ++done; }));
    }
    sim.RunUntil([&] { return done == 64; }, 1'000'000);
    return sim.now();
  };
  const Cycle one = run(1);
  const Cycle four = run(4);
  EXPECT_LT(four * 2, one);  // At least 2x faster with 4 channels.
}

TEST(InterleavedBoardTest, BoardWithHbmServesKv) {
  Simulator sim(250.0);
  BoardConfig cfg;
  cfg.part_number = "VU29P";
  cfg.mesh = MeshConfig{2, 2, 8, 512};
  cfg.dram.capacity_bytes = 8 << 20;
  cfg.memory_channels = 8;
  cfg.mac_kind = MacKind::kNone;
  Board board(cfg, sim, nullptr);
  ASSERT_TRUE(board.ok()) << board.build_error();
  EXPECT_EQ(board.memory().capacity(), 64u << 20);
  ApiaryOs os(board);
  auto* probe = new ProbeAccelerator();
  os.DeployService(kMemoryService, std::make_unique<MemoryService>(&os, &board.memory()));
  AppId app = os.CreateApp("a");
  const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = os.GrantSendToService(pt, kMemoryService);
  const CapRef mem = *os.GrantMemory(pt, 1 << 20, kRightRead | kRightWrite);
  Message write;
  write.opcode = kOpMemWrite;
  PutU64(write.payload, 12345);
  write.payload.insert(write.payload.end(), {1, 2, 3});
  probe->EnqueueSend(write, cap, mem);
  ASSERT_TRUE(sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

}  // namespace
}  // namespace apiary
