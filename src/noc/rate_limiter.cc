#include "src/noc/rate_limiter.h"

#include <algorithm>

namespace apiary {

TokenBucket::TokenBucket(uint64_t tokens_per_1k_cycles, uint64_t burst_tokens)
    : unlimited_(false),
      rate_per_1k_(tokens_per_1k_cycles),
      burst_(burst_tokens),
      milli_tokens_(burst_tokens * 1000) {}

void TokenBucket::Refill(Cycle now) {
  if (now <= last_refill_) {
    return;
  }
  const Cycle elapsed = now - last_refill_;
  last_refill_ = now;
  milli_tokens_ = std::min(burst_ * 1000, milli_tokens_ + elapsed * rate_per_1k_);
}

bool TokenBucket::TryConsume(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Refill(now);
  if (milli_tokens_ >= cost * 1000) {
    milli_tokens_ -= cost * 1000;
    return true;
  }
  return false;
}

bool TokenBucket::WouldAllow(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Refill(now);
  return milli_tokens_ >= cost * 1000;
}

}  // namespace apiary
