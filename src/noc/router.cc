#include "src/noc/router.h"

#include "src/noc/boundary_link.h"
#include "src/noc/network_interface.h"

namespace apiary {

Router::Router(uint32_t x, uint32_t y, uint32_t mesh_width, uint32_t mesh_height,
               uint32_t buffer_depth)
    : x_(x), y_(y), mesh_width_(mesh_width), mesh_height_(mesh_height),
      buffer_depth_(buffer_depth) {
  // flits + staged together never exceed buffer_depth (FreeSlots counts
  // both), but either side alone may briefly hold the full depth.
  for (auto& port_bufs : inputs_) {
    for (auto& buf : port_bufs) {
      buf.flits.Init(buffer_depth_);
      buf.staged.Init(buffer_depth_);
    }
  }
}

uint32_t Router::LogicCellCost(uint32_t buffer_depth) {
  // Calibrated against published soft-NoC routers (e.g. CONNECT-style 5-port,
  // 2-VC, 32B links land around 4-8k LUTs depending on buffering). Base
  // crossbar+allocators plus per-flit-slot buffer cost.
  return 4500 + 150 * buffer_depth * kNumVcs;
}

void Router::SetClassWeight(uint8_t cls, uint32_t weight) {
  if (cls >= kNumArbClasses) {
    return;
  }
  class_weights_[cls] = weight;
  weighted_ = false;
  for (const uint32_t w : class_weights_) {
    if (w != 0) {
      weighted_ = true;
    }
  }
  // (Re)configuring weights starts a fresh contest: no stale debt, no
  // banked bursts.
  for (auto& per_out : class_deficit_) {
    per_out.fill(0);
  }
}

void Router::ExpressCatchUp(RouterPort out, RouterPort in, int vc, uint32_t departed,
                            uint32_t flits) {
  if (departed == 0) {
    return;  // The lead flit never left this router: nothing was observable.
  }
  flits_routed_ += departed;
  // Each departure cycle sent exactly one flit through `out`, advancing the
  // VC pointer once; the head's acquisition (sole candidate — the corridor
  // invariant) moved the input pointer past `in` and reset this output's
  // deficits, and body flits rode the wormhole owner without touching either.
  rr_vc_[out] = static_cast<int>((static_cast<uint32_t>(rr_vc_[out]) + departed) % kNumVcs);
  rr_input_[out] = (static_cast<int>(in) + 1) % kNumPorts;
  if (weighted_) {
    class_deficit_[out].fill(0);
  }
  outputs_[out][vc].owner_port =
      departed < flits ? static_cast<int>(in) : -1;
}

RouterPort Router::RoutePort(TileId dst) const {
  const uint32_t dx = dst % mesh_width_;
  const uint32_t dy = dst / mesh_width_;
  if (dx > x_) {
    return kPortEast;
  }
  if (dx < x_) {
    return kPortWest;
  }
  if (dy > y_) {
    return kPortSouth;
  }
  if (dy < y_) {
    return kPortNorth;
  }
  return kPortLocal;
}

uint32_t Router::FreeSlots(RouterPort in_port, Vc vc) const {
  const InputBuffer& buf = inputs_[in_port][static_cast<int>(vc)];
  const uint32_t used = static_cast<uint32_t>(buf.flits.size() + buf.staged.size());
  return used >= buffer_depth_ ? 0 : buffer_depth_ - used;
}

bool Router::AcceptFlit(RouterPort in_port, const Flit& flit) {
  if (FreeSlots(in_port, flit.vc()) == 0) {
    return false;
  }
  inputs_[in_port][static_cast<int>(flit.vc())].staged.push_back(flit);
  ++occupancy_;
  // Idle-to-busy transition: publish this router into the mesh's live set.
  if (!live_marked_ && live_out_ != nullptr) {
    live_out_->push_back(tile());
    live_marked_ = true;
  }
  return true;
}

void Router::CommitStaged() {
  for (auto& port_bufs : inputs_) {
    for (auto& buf : port_bufs) {
      while (!buf.staged.empty()) {
        buf.flits.push_back(buf.staged.take_front());
      }
    }
  }
}

bool Router::DownstreamHasSpace(RouterPort out, Vc vc) const {
  if (out == kPortLocal) {
    // Ejection is always accepted: the NI reassembly buffer is sized for the
    // maximum packet and delivery queues are modeled at the monitor level.
    return true;
  }
  if (out_boundary_[out] != nullptr) {
    // Cut link: credit flow control stands in for the neighbor's FreeSlots —
    // a credit is a guaranteed slot in the receiving input buffer, reflecting
    // its end-of-previous-cycle occupancy (never reading the other shard).
    return out_boundary_[out]->HasCredit(vc);
  }
  Router* next = neighbors_[out];
  if (next == nullptr) {
    return false;
  }
  // The flit will arrive on the neighbor's opposite port.
  static constexpr RouterPort kOpposite[4] = {kPortSouth, kPortNorth, kPortWest, kPortEast};
  return next->FreeSlots(kOpposite[out], vc) > 0;
}

void Router::SendDownstream(RouterPort out, const Flit& flit, Cycle now) {
  if (out == kPortLocal) {
    if (ni_ != nullptr) {
      ni_->EjectFlit(flit, now);
    }
    return;
  }
  if (out_boundary_[out] != nullptr) {
    out_boundary_[out]->Send(flit, now);
    return;
  }
  static constexpr RouterPort kOpposite[4] = {kPortSouth, kPortNorth, kPortWest, kPortEast};
  neighbors_[out]->AcceptFlit(kOpposite[out], flit);
}

bool Router::TryForward(RouterPort out, int in, int vc, Cycle now) {
  InputBuffer& buf = inputs_[in][vc];
  if (buf.flits.empty()) {
    return false;
  }
  const Flit& flit = buf.flits.front();
  if (RoutePort(flit.dst()) != out || static_cast<int>(flit.vc()) != vc) {
    return false;
  }
  if (!DownstreamHasSpace(out, flit.vc())) {
    counters_.Add("router.stalls");
    return false;
  }
  OutputVcState& state = outputs_[out][vc];
  if (state.owner_port == -1) {
    if (!flit.is_head()) {
      // Body flit whose ownership was released by an earlier tail: cannot
      // happen within one packet, but guard against interleaving bugs.
      return false;
    }
    state.owner_port = in;
  } else if (state.owner_port != in) {
    // Output vc is held by another packet (wormhole).
    counters_.Add("router.vc_blocked");
    return false;
  }
  // Link fault injection: consulted once per packet per link (on the head
  // flit). The remaining flits keep flowing so wormhole state stays sane;
  // the ejecting NI discards packets marked dropped.
  if (fault_model_ != nullptr && out != kPortLocal && flit.is_head() &&
      fault_model_->OnLinkTraverse(tile(), flit, now)) {
    flit.packet->dropped = true;
    counters_.Add("router.fault_dropped_packets");
  }
  SendDownstream(out, flit, now);
  if (flit.is_tail()) {
    state.owner_port = -1;
  }
  buf.flits.pop_front();
  --occupancy_;
  ++flits_routed_;
  // Boundary-fed input buffer: report the freed slot to the upstream shard
  // (flushed as a credit at the end of this shard's route phase).
  if (in != kPortLocal && in_boundary_[in] != nullptr) {
    in_boundary_[in]->NotifyPop(static_cast<Vc>(vc));
  }
  return true;
}

bool Router::AcquireWeighted(RouterPort out, int vc, Cycle now) {
  // Scan the candidate head flits for this free (out, vc): per class, the
  // first candidate in input round-robin priority order.
  struct Candidate {
    int in = -1;
    uint32_t flits = 0;
  };
  std::array<Candidate, kNumArbClasses> cand;
  int num_classes = 0;
  bool stalled = false;
  for (int pi = 0; pi < kNumPorts; ++pi) {
    const int in = (rr_input_[out] + pi) % kNumPorts;
    const InputBuffer& buf = inputs_[in][vc];
    if (buf.flits.empty()) {
      continue;
    }
    const Flit& flit = buf.flits.front();
    if (RoutePort(flit.dst()) != out || static_cast<int>(flit.vc()) != vc ||
        !flit.is_head()) {
      continue;
    }
    if (!DownstreamHasSpace(out, flit.vc())) {
      stalled = true;  // Applies to every candidate: space is per (out, vc).
      break;
    }
    const int cls = flit.packet->arb_class % kNumArbClasses;
    if (cand[cls].in == -1) {
      cand[cls].in = in;
      cand[cls].flits = flit.packet->flit_count;
      ++num_classes;
    }
  }
  if (stalled) {
    counters_.Add("router.stalls");
    return false;
  }
  if (num_classes == 0) {
    return false;
  }
  if (num_classes == 1) {
    // No contention: pass free of charge, and restart the contest — weights
    // divide contended bandwidth only.
    class_deficit_[out].fill(0);
    for (int cls = 0; cls < kNumArbClasses; ++cls) {
      if (cand[cls].in != -1) {
        if (TryForward(out, cand[cls].in, vc, now)) {
          rr_input_[out] = (cand[cls].in + 1) % kNumPorts;
          return true;
        }
        return false;
      }
    }
    return false;
  }
  // Contested: every competing class banks its weight, idle classes reset,
  // and the largest deficit wins (ties to the lowest class id — fixed and
  // deterministic). The winner pays its packet's flit count, so over time
  // each class's grant share converges to weight / sum(weights).
  int winner = -1;
  for (int cls = 0; cls < kNumArbClasses; ++cls) {
    if (cand[cls].in == -1) {
      class_deficit_[out][cls] = 0;
      continue;
    }
    const int64_t weight = class_weights_[cls] == 0 ? 1 : class_weights_[cls];
    class_deficit_[out][cls] += weight;
    if (winner == -1 || class_deficit_[out][cls] > class_deficit_[out][winner]) {
      winner = cls;
    }
  }
  if (TryForward(out, cand[winner].in, vc, now)) {
    class_deficit_[out][winner] -= static_cast<int64_t>(cand[winner].flits);
    rr_input_[out] = (cand[winner].in + 1) % kNumPorts;
    counters_.Add("router.weighted_grants");
    return true;
  }
  return false;
}

void Router::RouteCycle(Cycle now) {
  if (fault_model_ != nullptr && fault_model_->RouterStalled(tile(), now)) {
    counters_.Add("router.fault_stalled_cycles");
    return;  // Wedged crossbar: buffers fill, upstream backpressure builds.
  }
  // One flit per output port per cycle (the physical link constraint).
  // VC-level round robin, then input-port round robin within a vc. When
  // weights are configured, acquisition of a free output vc goes through the
  // deficit arbiter instead of plain input round robin.
  for (int out = 0; out < kNumPorts; ++out) {
    bool sent = false;
    for (int vci = 0; vci < kNumVcs && !sent; ++vci) {
      const int vc = (rr_vc_[out] + vci) % kNumVcs;
      const OutputVcState& state = outputs_[out][vc];
      if (state.owner_port != -1) {
        // Continue the packet that owns this output vc.
        sent = TryForward(static_cast<RouterPort>(out), state.owner_port, vc, now);
        continue;
      }
      if (weighted_) {
        sent = AcquireWeighted(static_cast<RouterPort>(out), vc, now);
        continue;
      }
      for (int pi = 0; pi < kNumPorts && !sent; ++pi) {
        const int in = (rr_input_[out] + pi) % kNumPorts;
        sent = TryForward(static_cast<RouterPort>(out), in, vc, now);
        if (sent) {
          rr_input_[out] = (in + 1) % kNumPorts;
        }
      }
    }
    if (sent) {
      rr_vc_[out] = (rr_vc_[out] + 1) % kNumVcs;
    }
  }
}

}  // namespace apiary
