// Differential determinism for express corridors (ISSUE 10): the analytic
// fast-forward must be invisible. Every scenario runs with express enabled
// and with the `--no-express` escape hatch (SetExpressEnabled(false)), and
// every observable — end cycles, debug traces, mesh/monitor/injector
// counters, fault records, tenant billing digests — must match byte for
// byte. Express runs must also actually use corridors, so a regression that
// quietly refuses every launch cannot pass.
//
// The parallel scenario reuses the engine differential workload (8x8 board,
// 4 column-band shards, tenants + chaos + supervisor) plus a column-aligned
// flow that qualifies for shard-interior corridors, and checks express
// on-vs-off at threads 1/2/4 AND express-on across thread counts. Run under
// TSan in the sanitize CI job, this is also the data-race proof for the
// per-shard express lanes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/accel/echo.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/services/supervisor.h"
#include "src/sim/logging.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/tenant/tenant.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

void StringSink(LogLevel level, const std::string& line, void* user) {
  auto* out = static_cast<std::string*>(user);
  *out += std::to_string(static_cast<int>(level));
  *out += ' ';
  *out += line;
  *out += '\n';
}

// Self-driving periodic echo client (see parallel_differential_test.cc: every
// send originates inside a Tick so packets are born in the owning domain).
class PeriodicClient : public Accelerator {
 public:
  PeriodicClient(ServiceId svc, Cycle period, uint64_t limit)
      : svc_(svc), period_(period), limit_(limit) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_ || sent >= limit_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {1, 2, 3, 4};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++sent;
    }
    next_ = api.now() + period_;
  }
  void OnMessage(const Message& msg, TileApi&) override {
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (sent >= limit_) {
      return kNoActivity;
    }
    return next_ > now ? next_ : now;
  }
  std::string name() const override { return "periodic_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId svc_;
  Cycle period_;
  uint64_t limit_;
  Cycle next_ = 0;
};

struct DiffResult {
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t flits = 0;
  uint64_t handed_off = 0;
  uint64_t cloned = 0;
  uint64_t client_sent = 0;
  uint64_t client_ok = 0;
  uint64_t client_errors = 0;
  std::string mesh_counters;
  std::string latency;
  std::string monitor_counters;
  std::string injector_counters;
  std::string fault_trace;
  std::string supervisor_counters;
  std::string tenant_counters;
  std::string billing_a;
  std::string billing_b;
  uint32_t digest_a = 0;
  uint32_t digest_b = 0;
  std::string trace;  // Root trace + shard traces, in shard order.
  // Express lane stats, OUTSIDE operator== — they differ between the express
  // and no-express runs by construction, but must match across thread counts.
  ExpressStats express;

  bool operator==(const DiffResult& o) const {
    return end_cycle == o.end_cycle && skipped_cycles == o.skipped_cycles && flits == o.flits &&
           handed_off == o.handed_off && cloned == o.cloned && client_sent == o.client_sent &&
           client_ok == o.client_ok && client_errors == o.client_errors &&
           mesh_counters == o.mesh_counters && latency == o.latency &&
           monitor_counters == o.monitor_counters && injector_counters == o.injector_counters &&
           fault_trace == o.fault_trace && supervisor_counters == o.supervisor_counters &&
           tenant_counters == o.tenant_counters && billing_a == o.billing_a &&
           billing_b == o.billing_b && digest_a == o.digest_a && digest_b == o.digest_b &&
           trace == o.trace;
  }
};

// 8x8 board, 4 column-band shards; tenants + cross-shard IPC + chaos (the
// engine differential workload) plus a column-0 vertical echo pair whose
// whole route (and zone) stays inside shard 0 — the corridor-eligible flow.
DiffResult RunParallelWorkload(uint32_t threads, bool express) {
  constexpr uint32_t kShards = 4;
  constexpr Cycle kCycles = 60'000;

  TestBoardOptions options;
  options.width = 8;
  options.height = 8;
  options.reconfig_cycles = 2'000;
  options.tile_region_cells = 25'000;
  TestBoard tb(options);
  tb.board.mesh().SetExpressEnabled(express);

  std::string root_trace;
  std::vector<std::string> shard_traces(kShards);
  const LogLevel prev_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  SetLogSink(StringSink, &root_trace);
  tb.sim.context().SetLogSink(StringSink, &root_trace);

  TenantManager tenants(&tb.os, /*meter_period=*/10'000);
  TenantQuota quota;
  quota.max_tiles = 4;
  quota.noc_flits_per_1k = 4'000;
  quota.noc_burst_flits = 256;
  const TenantId tenant_a = tenants.CreateTenant("alpha", quota);
  const TenantId tenant_b = tenants.CreateTenant("beta", quota);
  const AppId app_a = tenants.CreateApp(tenant_a, "alpha_app");
  const AppId app_b = tenants.CreateApp(tenant_b, "beta_app");

  auto pin = [](TileId tile) {
    DeployOptions o;
    o.tile = tile;
    return o;
  };

  ServiceId svc_a = 0;
  EXPECT_NE(tenants.Deploy(tenant_a, app_a, std::make_unique<EchoAccelerator>(5), &svc_a,
                           pin(/*x=1,y=1*/ 9)),
            kInvalidTile);
  auto* client_a = new PeriodicClient(svc_a, /*period=*/120, /*limit=*/1'000'000);
  const TileId ct_a = tenants.Deploy(tenant_a, app_a, std::unique_ptr<Accelerator>(client_a),
                                     nullptr, pin(/*x=0,y=1*/ 8));
  EXPECT_NE(ct_a, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_a, ct_a, svc_a);

  ServiceId svc_b = 0;
  EXPECT_NE(tenants.Deploy(tenant_b, app_b, std::make_unique<EchoAccelerator>(5), &svc_b,
                           pin(/*x=6,y=6*/ 54)),
            kInvalidTile);
  auto* client_b = new PeriodicClient(svc_b, /*period=*/150, /*limit=*/1'000'000);
  const TileId ct_b = tenants.Deploy(tenant_b, app_b, std::unique_ptr<Accelerator>(client_b),
                                     nullptr, pin(/*x=7,y=6*/ 55));
  EXPECT_NE(ct_b, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_b, ct_b, svc_b);

  const AppId app_x = tb.os.CreateApp("crossers");

  ServiceId svc_far = 0;
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_far, pin(/*x=7,y=3*/ 31)),
      kInvalidTile);
  auto* client_far = new PeriodicClient(svc_far, /*period=*/40, /*limit=*/1'000'000);
  const TileId ct_far =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_far), nullptr, pin(/*x=0,y=3*/ 24));
  EXPECT_NE(ct_far, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_far, svc_far);

  ServiceId svc_near = 0;
  const TileId crash_tile = /*x=4,y=5*/ 44;
  EXPECT_NE(tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_near, pin(crash_tile)),
            kInvalidTile);
  auto* client_near = new PeriodicClient(svc_near, /*period=*/25, /*limit=*/1'000'000);
  const TileId ct_near =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_near), nullptr, pin(/*x=3,y=5*/ 43));
  EXPECT_NE(ct_near, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_near, svc_near);

  ServiceId svc_burst = 0;
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(2), &svc_burst, pin(/*x=5,y=0*/ 5)),
      kInvalidTile);
  auto* burst = new PeriodicClient(svc_burst, /*period=*/2, /*limit=*/4'000);
  const TileId ct_burst =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(burst), nullptr, pin(/*x=2,y=0*/ 2));
  EXPECT_NE(ct_burst, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_burst, svc_burst);

  // The corridor-eligible flow: column 0, y=7 -> y=4. Path tiles and their
  // whole zone stencils sit inside shard 0 (x in {0,1}), so the shard lane
  // can cover the route end to end; request and reply both qualify whenever
  // the x<=1 neighborhood is quiet.
  ServiceId svc_col = 0;
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(8), &svc_col, pin(/*x=0,y=4*/ 32)),
      kInvalidTile);
  auto* client_col = new PeriodicClient(svc_col, /*period=*/180, /*limit=*/1'000'000);
  const TileId ct_col =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_col), nullptr, pin(/*x=0,y=7*/ 56));
  EXPECT_NE(ct_col, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_col, svc_col);

  Supervisor sup(&tb.os);
  sup.Manage(crash_tile, [] { return std::make_unique<EchoAccelerator>(10); });

  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDrop(8'000, 6'000, 0.2)
      .LinkCorrupt(16'000, 6'000, 0.2)
      .AccelCrash(25'000, crash_tile)
      .DramBitFlips(30'000, 4)
      .LinkDrop(35'000, 5'000, 0.25);
  FaultInjector injector(plan, FaultHooks{.os = &tb.os,
                                          .mesh = &tb.board.mesh(),
                                          .memory = &tb.board.memory()});
  injector.EnableShardedLinkFaults(tb.board.mesh().num_tiles());

  ParallelSimulator psim(&tb.sim, &tb.board.mesh(), ParallelConfig{kShards, threads});
  EXPECT_EQ(psim.shards(), kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(StringSink, &shard_traces[s]);
  }

  psim.Run(kCycles);

  DiffResult r;
  r.end_cycle = tb.sim.now();
  r.skipped_cycles = tb.sim.skipped_cycles();
  r.flits = tb.board.mesh().TotalFlitsRouted();
  r.handed_off = tb.board.mesh().BoundaryFlitsHandedOff();
  r.cloned = tb.board.mesh().BoundaryPacketsCloned();
  r.client_sent = client_a->sent + client_b->sent + client_far->sent + client_near->sent +
                  burst->sent + client_col->sent;
  r.client_ok = client_a->ok + client_b->ok + client_far->ok + client_near->ok + burst->ok +
                client_col->ok;
  r.client_errors = client_a->errors + client_b->errors + client_far->errors +
                    client_near->errors + burst->errors + client_col->errors;
  r.mesh_counters = tb.board.mesh().AggregateCounters().ToString();
  r.latency = tb.board.mesh().AggregateLatency().Summary();
  r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
  r.injector_counters = injector.counters().ToString();
  r.fault_trace = injector.TraceString();
  r.supervisor_counters = sup.counters().ToString();
  r.tenant_counters = tenants.counters().ToString();
  r.billing_a = tenants.BillingRecords(tenant_a);
  r.billing_b = tenants.BillingRecords(tenant_b);
  r.digest_a = tenants.BillingDigest(tenant_a);
  r.digest_b = tenants.BillingDigest(tenant_b);
  r.express = tb.board.mesh().AggregateExpressStats();
  r.trace = root_trace;
  for (const std::string& t : shard_traces) {
    r.trace += t;
  }

  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(nullptr, nullptr);
  }
  tb.sim.context().SetLogSink(nullptr, nullptr);
  SetLogSink(nullptr, nullptr);
  SetLogLevel(prev_level);
  return r;
}

TEST(ExpressDifferentialTest, ParallelWorkloadByteIdenticalAcrossExpressAndThreads) {
  const DiffResult on1 = RunParallelWorkload(1, true);
  const DiffResult off1 = RunParallelWorkload(1, false);

  // The workload is real, and express really engaged: shard-interior
  // corridors launched and delivered analytically.
  EXPECT_EQ(on1.end_cycle, 60'000u);
  EXPECT_GT(on1.client_sent, 2'000u);
  EXPECT_GT(on1.client_ok, 2'000u);
  EXPECT_GT(on1.handed_off, 1'000u);
  EXPECT_NE(on1.injector_counters.find("fault.accel_crash=1"), std::string::npos);
  EXPECT_GT(on1.digest_a, 0u);
  EXPECT_GT(on1.digest_b, 0u);
  EXPECT_GT(on1.express.launches, 50u);
  EXPECT_GT(on1.express.delivered, 50u);
  EXPECT_EQ(off1.express.launches, 0u);

  // Express on vs off: byte-identical, field by field for readable diffs.
  EXPECT_EQ(on1.end_cycle, off1.end_cycle);
  EXPECT_EQ(on1.skipped_cycles, off1.skipped_cycles);
  EXPECT_EQ(on1.flits, off1.flits);
  EXPECT_EQ(on1.mesh_counters, off1.mesh_counters);
  EXPECT_EQ(on1.latency, off1.latency);
  EXPECT_EQ(on1.monitor_counters, off1.monitor_counters);
  EXPECT_EQ(on1.fault_trace, off1.fault_trace);
  EXPECT_EQ(on1.billing_a, off1.billing_a);
  EXPECT_EQ(on1.billing_b, off1.billing_b);
  EXPECT_EQ(on1.trace, off1.trace);
  EXPECT_TRUE(on1 == off1) << "express diverged from --no-express at threads=1";

  // Express on across thread counts: identical, including lane stats.
  const DiffResult on2 = RunParallelWorkload(2, true);
  const DiffResult on4 = RunParallelWorkload(4, true);
  EXPECT_TRUE(on2 == on1) << "express threads=2 diverged from threads=1";
  EXPECT_TRUE(on4 == on1) << "express threads=4 diverged from threads=1";
  EXPECT_EQ(on2.express.launches, on1.express.launches);
  EXPECT_EQ(on2.express.delivered, on1.express.delivered);
  EXPECT_EQ(on2.express.materializations, on1.express.materializations);
  EXPECT_EQ(on4.express.launches, on1.express.launches);
  EXPECT_EQ(on4.express.delivered, on1.express.delivered);
  EXPECT_EQ(on4.express.materializations, on1.express.materializations);

  // And off stays thread-identical too (the engine differential, re-proved
  // with the ShardCommit signature carrying `now`).
  const DiffResult off4 = RunParallelWorkload(4, false);
  EXPECT_TRUE(off4 == off1) << "--no-express threads=4 diverged from threads=1";
}

// Serial chaos scenario (4x4 board, supervisor-healed crash, link fault
// windows): express corridors launch in the quiet stretches, the injector's
// Fire hook materializes them when windows open, and everything matches the
// no-express run byte for byte.
struct SerialResult {
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t flits = 0;
  std::string mesh_counters;
  std::string latency;
  std::string monitor_counters;
  std::string injector_counters;
  std::string fault_trace;
  std::string supervisor_counters;
  uint64_t client_ok = 0;
  uint64_t client_errors = 0;
  std::string trace;
  ExpressStats express;

  bool operator==(const SerialResult& o) const {
    return end_cycle == o.end_cycle && skipped_cycles == o.skipped_cycles && flits == o.flits &&
           mesh_counters == o.mesh_counters && latency == o.latency &&
           monitor_counters == o.monitor_counters && injector_counters == o.injector_counters &&
           fault_trace == o.fault_trace && supervisor_counters == o.supervisor_counters &&
           client_ok == o.client_ok && client_errors == o.client_errors && trace == o.trace;
  }
};

SerialResult RunSerialChaos(bool express) {
  SerialResult r;
  std::string trace;
  SetLogSink(StringSink, &trace);
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  {
    TestBoardOptions options;
    options.reconfig_cycles = 20'000;
    TestBoard tb(options);
    tb.board.mesh().SetExpressEnabled(express);

    AppId app = tb.os.CreateApp("chaos");
    ServiceId svc = 0;
    const TileId st = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(5), &svc);
    auto* client = new PeriodicClient(svc, /*period=*/200, /*limit=*/1'000'000);
    const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(client));
    (void)tb.os.GrantSendToService(ct, svc);

    Supervisor sup(&tb.os);
    sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(5); });

    FaultPlan plan;
    plan.seed = 9;
    plan.LinkDrop(10'000, 15'000, 0.3)
        .LinkCorrupt(30'000, 15'000, 0.25)
        .DramBitFlips(40'000, 4)
        .AccelCrash(50'000, st)
        .LinkDrop(90'000, 10'000, 0.3)
        .DramBitFlips(100'000, 4);
    FaultInjector injector(plan, FaultHooks{.os = &tb.os,
                                            .mesh = &tb.board.mesh(),
                                            .memory = &tb.board.memory()});

    tb.sim.Run(150'000);

    r.end_cycle = tb.sim.now();
    r.skipped_cycles = tb.sim.skipped_cycles();
    r.flits = tb.board.mesh().TotalFlitsRouted();
    r.mesh_counters = tb.board.mesh().AggregateCounters().ToString();
    r.latency = tb.board.mesh().AggregateLatency().Summary();
    r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
    r.injector_counters = injector.counters().ToString();
    r.fault_trace = injector.TraceString();
    r.supervisor_counters = sup.counters().ToString();
    r.client_ok = client->ok;
    r.client_errors = client->errors;
    r.express = tb.board.mesh().AggregateExpressStats();
  }
  SetLogLevel(prev);
  SetLogSink(nullptr, nullptr);
  r.trace = std::move(trace);
  return r;
}

TEST(ExpressDifferentialTest, SerialChaosMatchesNoExpressByteForByte) {
  const SerialResult on = RunSerialChaos(true);
  const SerialResult off = RunSerialChaos(false);
  EXPECT_EQ(on.fault_trace, off.fault_trace);
  EXPECT_EQ(on.mesh_counters, off.mesh_counters);
  EXPECT_EQ(on.monitor_counters, off.monitor_counters);
  EXPECT_EQ(on.trace, off.trace);
  EXPECT_TRUE(on == off) << "express diverged from --no-express under chaos";
  // The campaign did damage AND express really ran between the windows.
  EXPECT_NE(on.injector_counters.find("fault.accel_crash=1"), std::string::npos);
  EXPECT_GT(on.client_ok + on.client_errors, 0u);
  EXPECT_GT(on.express.launches, 100u);
  EXPECT_GT(on.express.delivered, 100u);
  EXPECT_EQ(off.express.launches, 0u);
}

// Undeploy of a tile on a corridor (issue checklist): vacating the service
// tile mid-run revokes routes and identity but leaves the NoC state alone —
// in-flight corridors to that tile keep their exact timing, and the whole
// run matches --no-express byte for byte.
TEST(ExpressDifferentialTest, UndeployOnCorridorMatchesNoExpress) {
  auto run = [](bool express) {
    SerialResult r;
    TestBoard tb;
    tb.board.mesh().SetExpressEnabled(express);
    AppId app = tb.os.CreateApp("undeploy");
    ServiceId svc = 0;
    const TileId st = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(3), &svc);
    auto* client = new PeriodicClient(svc, /*period=*/50, /*limit=*/1'000'000);
    const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(client));
    (void)tb.os.GrantSendToService(ct, svc);
    // Stop mid-stream with requests in flight, vacate the service tile, and
    // let the tail of the run drain whatever was on the wire.
    tb.sim.Run(1'025);
    EXPECT_TRUE(tb.os.Undeploy(st));
    tb.sim.Run(5'000);
    r.end_cycle = tb.sim.now();
    r.skipped_cycles = tb.sim.skipped_cycles();
    r.flits = tb.board.mesh().TotalFlitsRouted();
    r.mesh_counters = tb.board.mesh().AggregateCounters().ToString();
    r.latency = tb.board.mesh().AggregateLatency().Summary();
    r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
    r.client_ok = client->ok;
    r.client_errors = client->errors;
    r.express = tb.board.mesh().AggregateExpressStats();
    return r;
  };
  const SerialResult on = run(true);
  const SerialResult off = run(false);
  EXPECT_TRUE(on == off) << on.mesh_counters << "\nvs\n" << off.mesh_counters;
  EXPECT_GT(on.express.launches, 0u);
  EXPECT_GT(on.client_ok, 0u);
}

}  // namespace
}  // namespace apiary
