// Robustness batch: adaptive load balancing, pipelined accelerator engines,
// concurrent DMA, monitor error-path loops, and miscellaneous hard edges.
#include <gtest/gtest.h>

#include "src/accel/compressor.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/video_encoder.h"
#include "src/accel/kv_store.h"
#include "src/core/message.h"
#include "src/core/service_ids.h"
#include "src/orch/autoscaler.h"
#include "src/services/dma_service.h"
#include "src/services/load_balancer.h"
#include "src/services/memory_service.h"
#include "src/tenant/tenant.h"
#include "src/tenant/tenant_service.h"
#include "src/workload/frame_source.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

TEST(LoadBalancerAdaptiveTest, LeastOutstandingAvoidsSlowReplica) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto* fast = new EchoAccelerator(10);
  auto* slow = new EchoAccelerator(2000);  // 200x slower replica.
  ServiceId fs = 0;
  ServiceId ss = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(fast), &fs);
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(slow), &ss);
  lb->AddBackend(tb.os.GrantSendToService(lt, fs));
  lb->AddBackend(tb.os.GrantSendToService(lt, ss));
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  for (int i = 0; i < 40; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 40; }, 1'000'000));
  // Least-outstanding should route the bulk of the work to the fast replica.
  EXPECT_GT(fast->served(), 3 * slow->served());
}

TEST(VideoEncoderTest, SerialEngineQueuesFrames) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("v");
  auto* enc = new VideoEncoderAccelerator(/*cycles_per_block=*/100, 50);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(enc), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  // Two back-to-back 16x16 frames: 4 blocks x 100 = 400 cycles each, serial.
  for (int i = 0; i < 2; ++i) {
    const auto pixels = GenerateFrame(16, 16, 1, i);
    Message msg;
    msg.opcode = kOpEncodeFrame;
    msg.payload = FrameToRequestPayload(16, 16, pixels);
    probe->EnqueueSend(msg, cap);
  }
  const Cycle start = tb.sim.now();
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 2; }, 100000));
  EXPECT_GE(tb.sim.now() - start, 800u);  // Strictly serial engine.
  EXPECT_EQ(enc->frames_encoded(), 2u);
}

TEST(CompressorPipelineTest, ForwardsToNextStageInsteadOfReplying) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("z");
  auto* sink = new ProbeAccelerator();
  ServiceId sink_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(sink), &sink_svc);
  auto* comp = new CompressorAccelerator(64);
  ServiceId comp_svc = 0;
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(comp), &comp_svc);
  comp->SetNextStage(tb.os.GrantSendToService(ct, sink_svc), kOpEcho);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, comp_svc);
  Message msg;
  msg.opcode = kOpCompress;
  msg.payload.assign(200, 'x');
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !sink->received.empty(); }, 100000));
  // The requester got nothing; the next stage got the compressed chunk.
  EXPECT_TRUE(probe->received.empty());
  EXPECT_EQ(LzDecompress(sink->received[0].payload), msg.payload);
  // Decompress requests still reply to the requester even in pipeline mode.
  Message back;
  back.opcode = kOpDecompress;
  back.payload = sink->received[0].payload;
  probe->EnqueueSend(back, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].payload, msg.payload);
}

TEST(DmaConcurrencyTest, MultipleCopiesCompleteCorrectly) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  auto* dma = new DmaService(&tb.board.memory());
  tb.os.DeployService(kDmaService, std::unique_ptr<Accelerator>(dma));
  AppId app = tb.os.CreateApp("u");
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef to_dma = tb.os.GrantSendToService(pt, kDmaService);
  const CapRef src = *tb.os.GrantMemory(pt, 64 << 10, kRightRead | kRightWrite);
  const CapRef dst = *tb.os.GrantMemory(pt, 64 << 10, kRightRead | kRightWrite);
  const Segment src_seg = tb.os.monitor(pt).cap_table().Lookup(src)->segment;
  const Segment dst_seg = tb.os.monitor(pt).cap_table().Lookup(dst)->segment;
  // Four interleaved 8KiB copies at distinct offsets.
  std::vector<std::vector<uint8_t>> patterns;
  for (int i = 0; i < 4; ++i) {
    std::vector<uint8_t> p(8 << 10);
    for (size_t k = 0; k < p.size(); ++k) {
      p[k] = static_cast<uint8_t>(k * (i + 3));
    }
    tb.board.memory().DebugWrite(src_seg.base + static_cast<uint64_t>(i) * (8 << 10), p);
    patterns.push_back(std::move(p));
    Message copy;
    copy.opcode = kOpDmaCopy;
    PutU64(copy.payload, static_cast<uint64_t>(i) * (8 << 10));
    PutU64(copy.payload, static_cast<uint64_t>(3 - i) * (8 << 10));  // Reversed layout.
    PutU32(copy.payload, 8 << 10);
    probe->EnqueueSend(copy, to_dma, src, dst);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 4; }, 2'000'000));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tb.board.memory().DebugRead(
                  dst_seg.base + static_cast<uint64_t>(3 - i) * (8 << 10), 8 << 10),
              patterns[i]);
  }
}

TEST(MonitorErrorPathTest, ErrorBouncesDoNotLoop) {
  // A sends a request to a stopped tile; the bounce is a response. Responses
  // to the bounce (which A never sends) cannot occur, and the stopped tile's
  // monitor never bounces responses — so no storm.
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc = 0;
  auto* dead = new EchoAccelerator(0);
  const TileId dt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(dead), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.Run(3);
  tb.os.FailStop(dt, "x");
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  tb.sim.Run(5000);
  // Exactly one bounce, no further traffic.
  EXPECT_EQ(tb.os.monitor(dt).counters().Get("monitor.error_bounces"), 1u);
  EXPECT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].status, MsgStatus::kDestFailed);
}

TEST(KvParallelTest, ManyOutstandingGetsAllCorrect) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.RunUntil([&] { return kv->ready(); }, 50000);

  // Load 8 keys with distinct values, then GET them all back-to-back so
  // several DRAM reads are in flight at once (bank parallel completion).
  for (int i = 0; i < 8; ++i) {
    Message put;
    put.opcode = kOpKvPut;
    put.payload = MakeKvPutPayload("k" + std::to_string(i),
                                   std::vector<uint8_t>(50 + i, static_cast<uint8_t>(i)));
    probe->EnqueueSend(put, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 8; }, 500000));
  probe->received.clear();
  for (int i = 0; i < 8; ++i) {
    Message get;
    get.opcode = kOpKvGet;
    get.payload = MakeKvGetPayload("k" + std::to_string(i));
    probe->EnqueueSend(get, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 8; }, 500000));
  // Values must match sizes/content regardless of completion interleaving.
  int matched = 0;
  for (const auto& r : probe->received) {
    ASSERT_EQ(r.status, MsgStatus::kOk);
    const uint8_t tag = r.payload.empty() ? 0xff : r.payload[0];
    ASSERT_LT(tag, 8);
    EXPECT_EQ(r.payload, std::vector<uint8_t>(50 + tag, tag));
    ++matched;
  }
  EXPECT_EQ(matched, 8);
}

TEST(RouterCountersTest, StallsVisibleUnderContention) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 1, 2, 512});  // Tiny buffers force stalls.
  sim.Register(&mesh);
  // Two sources hammer one sink.
  for (int i = 0; i < 30; ++i) {
    PacketRef a(new NocPacket());
    a->src = 0;
    a->dst = 3;
    a->payload.assign(128, 1);
    mesh.ni(0).Inject(a, sim.now());
    PacketRef b(new NocPacket());
    b->src = 1;
    b->dst = 3;
    b->payload.assign(128, 1);
    mesh.ni(1).Inject(b, sim.now());
  }
  sim.Run(5000);
  const CounterSet agg = mesh.AggregateCounters();
  EXPECT_GT(agg.Get("router.stalls") + agg.Get("router.vc_blocked"), 0u);
  EXPECT_GT(mesh.TotalFlitsRouted(), 0u);
}

TEST(WedgeTest, HealthyPhaseServes) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  auto* wedge = new WedgeAccelerator(3, kInvalidCapRef, 1000);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(wedge), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  tb.sim.Run(20000);
  // Exactly the 3 healthy requests were answered; the rest vanished into the
  // wedge (no watchdog deployed here, so nothing bounces).
  EXPECT_EQ(probe->received.size(), 3u);
  EXPECT_TRUE(wedge->wedged());
}

// ------------------------------------------------------------------
// Tenant quotas under pressure: exhaustion paths and metering.
// ------------------------------------------------------------------

TEST(TenantQuotaTest, TileQuotaBlocksAutoscaleUp) {
  TestBoardOptions opts;
  opts.reconfig_cycles = 1'000;
  TestBoard tb(opts);
  TenantManager tmgr(&tb.os);
  TenantQuota quota;
  quota.max_tiles = 2;  // Balancer + one replica: already at the ceiling.
  const TenantId tenant = tmgr.CreateTenant("capped", quota);
  const AppId app = tmgr.CreateApp(tenant, "elastic");

  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tmgr.Deploy(tenant, app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  ASSERT_NE(lb_tile, kInvalidTile);
  auto factory = [] { return std::make_unique<EchoAccelerator>(200); };
  ServiceId rsvc = 0;
  const TileId rt = tmgr.Deploy(tenant, app, factory(), &rsvc);
  ASSERT_NE(rt, kInvalidTile);
  const CapRef ep = tb.os.GrantSendToService(lb_tile, rsvc);
  lb->AddBackend(ep);

  Placer placer(&tb.os);
  ReconfigScheduler scheduler(&tb.os, app);
  AutoscalerConfig acfg;
  acfg.min_replicas = 1;
  acfg.max_replicas = 4;
  acfg.poll_period = 1'000;
  acfg.up_queue_per_replica = 2.0;
  acfg.replica_logic_cells = 1'000;
  Autoscaler autoscaler(&tb.os, lb, lb_tile, app, factory, &placer, &scheduler, acfg);
  autoscaler.AdoptReplica(rsvc, rt, ep);
  autoscaler.SetAdmission([&] { return tmgr.AdmitTile(tenant); });

  // Saturating burst: one 200-cycle replica cannot keep up, so every poll
  // wants a scale-up — which the tenant's tile quota must keep refusing.
  auto* client = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(client));
  const CapRef cap = tb.os.GrantSendToService(ct, lb_svc);
  for (int i = 0; i < 200; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    client->EnqueueSend(msg, cap);
  }
  tb.sim.Run(50'000);

  EXPECT_FALSE(tmgr.AdmitTile(tenant));
  EXPECT_EQ(autoscaler.live_replicas(), 1u);
  EXPECT_EQ(autoscaler.scale_ups(), 0u);
  EXPECT_GT(autoscaler.counters().Get("orch.scale_up_quota_denied"), 0u);
  EXPECT_EQ(tmgr.Tiles(tenant).size(), 2u);
}

TEST(TenantQuotaTest, ReconfigRateQuotaStallsTeardownMidDrain) {
  TestBoardOptions opts;
  opts.reconfig_cycles = 1'000;
  TestBoard tb(opts);
  TenantManager tmgr(&tb.os);
  TenantQuota quota;
  quota.reconfig_loads_per_window = 1;
  quota.reconfig_window_cycles = 30'000;
  const TenantId tenant = tmgr.CreateTenant("thrasher", quota);
  const AppId app = tmgr.CreateApp(tenant, "a");

  ReconfigSchedulerConfig rcfg;
  rcfg.drain_cycles = 200;
  rcfg.drain_deadline_cycles = 20'000;
  ReconfigScheduler sched(&tb.os, app, rcfg);
  tmgr.AttachScheduler(tenant, &sched);  // Installs the tenant's ICAP quota.

  const TileId victim = tmgr.Deploy(tenant, app, std::make_unique<EchoAccelerator>(0));
  ASSERT_NE(victim, kInvalidTile);
  const std::vector<TileId> free_tiles = tb.os.FreeTiles();
  ASSERT_FALSE(free_tiles.empty());

  // The window's one bitstream push goes to a load...
  bool loaded = false;
  sched.ScheduleLoad(
      free_tiles[0], [] { return std::make_unique<EchoAccelerator>(0); },
      [&](TileId, ServiceId, bool ok) {
        ASSERT_TRUE(ok);
        loaded = true;
      });
  ASSERT_TRUE(tb.sim.RunUntil([&] { return loaded; }, 20'000));

  // ...so the teardown drains fine but its blanking bitstream must stall at
  // the head of the queue (backpressure, not a drop) until the window rolls.
  bool torn_down = false;
  sched.ScheduleTeardown(
      victim, [] { return true; }, [&](TileId, bool) { torn_down = true; });
  tb.sim.Run(25'000 - tb.sim.now());
  EXPECT_FALSE(torn_down);
  EXPECT_FALSE(tb.os.tile(victim).vacant());
  EXPECT_GT(sched.counters().Get("orch.quota_stall_cycles"), 0u);

  ASSERT_TRUE(tb.sim.RunUntil([&] { return torn_down; }, 40'000));
  EXPECT_TRUE(tb.os.tile(victim).vacant());
  // The blanking landed in the next window, not by exceeding this one's.
  EXPECT_GE(tb.sim.now(), quota.reconfig_window_cycles);
}

namespace {

// One deterministic tenant workload: an echoing service plus a probe client,
// some early traffic, then a long idle tail (so fast-forwarding engages when
// skip is enabled). Returns the billing-record text and its digest.
std::pair<std::string, uint32_t> RunMeteredTenant(bool skip_enabled) {
  TestBoard tb;
  tb.sim.SetSkipEnabled(skip_enabled);
  TenantManager tmgr(&tb.os, /*meter_period=*/5'000);
  const TenantId tenant = tmgr.CreateTenant("metered", TenantQuota{});
  const AppId app = tmgr.CreateApp(tenant, "kv");
  ServiceId svc = 0;
  EXPECT_NE(tmgr.Deploy(tenant, app, std::make_unique<EchoAccelerator>(30), &svc),
            kInvalidTile);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tmgr.Deploy(tenant, app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tmgr.GrantSendToService(tenant, pt, svc);
  for (int i = 0; i < 12; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(48, static_cast<uint8_t>(i));
    probe->EnqueueSend(msg, cap);
  }
  tb.sim.Run(26'000);
  return {tmgr.BillingRecords(tenant), tmgr.BillingDigest(tenant)};
}

}  // namespace

TEST(TenantMeteringTest, RecordsByteIdenticalAcrossRerunsAndSkipModes) {
  const auto first = RunMeteredTenant(/*skip_enabled=*/true);
  const auto rerun = RunMeteredTenant(/*skip_enabled=*/true);
  const auto no_skip = RunMeteredTenant(/*skip_enabled=*/false);
  EXPECT_FALSE(first.first.empty());
  // Byte-identical ledgers: same text and digest across a plain rerun and a
  // run with fast-forwarding disabled (boundary cycles always execute).
  EXPECT_EQ(first.first, rerun.first);
  EXPECT_EQ(first.first, no_skip.first);
  EXPECT_EQ(first.second, rerun.second);
  EXPECT_EQ(first.second, no_skip.second);
}

TEST(TenantStatsTest, StatsOpcodeRoundTripsUsageAndDigest) {
  TestBoard tb;
  TenantManager tmgr(&tb.os, /*meter_period=*/2'000);
  const TenantId tenant = tmgr.CreateTenant("billed", TenantQuota{});
  const AppId app = tmgr.CreateApp(tenant, "kv");
  ServiceId svc = 0;
  ASSERT_NE(tmgr.Deploy(tenant, app, std::make_unique<EchoAccelerator>(10), &svc),
            kInvalidTile);
  auto* worker = new ProbeAccelerator();
  const TileId wt = tmgr.Deploy(tenant, app, std::unique_ptr<Accelerator>(worker));
  const CapRef wcap = tmgr.GrantSendToService(tenant, wt, svc);
  for (int i = 0; i < 6; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    worker->EnqueueSend(msg, wcap);
  }

  // The stats endpoint is just another service; the mgmt client is not a
  // member of the tenant it is asking about.
  AppId mgmt_app = tb.os.CreateApp("mgmt");
  ServiceId stats_svc = 0;
  ASSERT_NE(tb.os.Deploy(mgmt_app, std::make_unique<TenantStatsService>(&tmgr), &stats_svc),
            kInvalidTile);
  auto* client = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(mgmt_app, std::unique_ptr<Accelerator>(client));
  const CapRef scap = tb.os.GrantSendToService(ct, stats_svc);
  tb.sim.Run(10'000);

  Message req;
  req.opcode = kOpTenantStats;
  PutU32(req.payload, tenant);
  client->EnqueueSend(req, scap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !client->received.empty(); }, 20'000));
  const Message& reply = client->received.front();
  ASSERT_EQ(reply.status, MsgStatus::kOk);
  ASSERT_EQ(reply.payload.size(), 48u);
  const TenantUsage usage = tmgr.Usage(tenant);
  EXPECT_EQ(GetU32(reply.payload, 0), tenant);
  EXPECT_EQ(GetU32(reply.payload, 4), usage.tiles);
  EXPECT_EQ(GetU64(reply.payload, 8), usage.tile_cycles);
  EXPECT_EQ(GetU64(reply.payload, 16), usage.flits_sent);
  EXPECT_EQ(GetU64(reply.payload, 24), usage.messages_sent);
  EXPECT_EQ(GetU64(reply.payload, 32), usage.quota_denials);
  EXPECT_EQ(GetU32(reply.payload, 40), tmgr.BillingRecordCount(tenant));
  EXPECT_EQ(GetU32(reply.payload, 44), tmgr.BillingDigest(tenant));
  EXPECT_GT(GetU64(reply.payload, 24), 0u);  // The workload actually ran.

  // A malformed query (no tenant id) fails closed with kBadRequest.
  client->received.clear();
  Message bad;
  bad.opcode = kOpTenantStats;
  client->EnqueueSend(bad, scap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !client->received.empty(); }, 20'000));
  EXPECT_EQ(client->received.front().status, MsgStatus::kBadRequest);
}

}  // namespace
}  // namespace apiary
