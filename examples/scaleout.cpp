// Scale-out demo — Section 4.1: "a replicated accelerator with internal load
// balancing for higher bandwidth". A checksum service is replicated across
// 1..6 tiles behind the load balancer; a closed-loop client measures
// throughput and tail latency at each replica count.
#include <cstdio>
#include <memory>

#include "src/accel/checksum.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/load_balancer.h"
#include "src/services/network_service.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"
#include "src/workload/client.h"

using namespace apiary;

struct RunResult {
  double requests_per_ms;
  uint64_t p50;
  uint64_t p99;
};

RunResult RunWithReplicas(uint32_t replicas) {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  Board board(cfg, sim, &net);
  ApiaryOs os(board);
  os.DeployService(kNetworkService,
                   std::make_unique<NetworkService>(
                       &os, std::make_unique<Mac100GAdapter>(board.mac100g())));

  AppId app = os.CreateApp("crc-service");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  for (uint32_t i = 0; i < replicas; ++i) {
    ServiceId svc = 0;
    // A deliberately slow engine (1 B/cycle) so replication matters.
    os.Deploy(app, std::make_unique<ChecksumAccelerator>(1), &svc);
    lb->AddBackend(os.GrantSendToService(lb_tile, svc));
  }
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(os.GrantSendToService(gw_tile, lb_svc));

  ClientConfig ccfg;
  ccfg.server_endpoint = board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 16;
  ccfg.max_requests = 600;
  ClientHost client(ccfg, &net, [](uint64_t, Rng& rng) {
    ClientRequest req;
    req.opcode = kOpChecksum;
    req.payload.assign(1024, static_cast<uint8_t>(rng.NextBelow(256)));
    return req;
  });
  sim.Register(&client);

  const Cycle start = sim.now();
  sim.RunUntil([&] { return client.received() >= ccfg.max_requests; }, 50'000'000);
  const double ms = sim.CyclesToNs(sim.now() - start) / 1e6;
  return RunResult{static_cast<double>(client.received()) / ms, client.latency().P50(),
                   client.latency().P99()};
}

int main() {
  std::printf("replicating a checksum accelerator behind the load balancer\n");
  std::printf("(1 KiB requests, closed loop, concurrency 16)\n");

  Table table("Scale-out");
  table.SetHeader({"replicas", "throughput (req/ms)", "p50 (cycles)", "p99 (cycles)",
                   "speedup"});
  double base = 0;
  for (uint32_t replicas : {1u, 2u, 4u, 6u}) {
    const RunResult r = RunWithReplicas(replicas);
    if (replicas == 1) {
      base = r.requests_per_ms;
    }
    table.AddRow({Table::Int(replicas), Table::Num(r.requests_per_ms, 1), Table::Int(r.p50),
                  Table::Int(r.p99), Table::Num(r.requests_per_ms / base, 2) + "x"});
  }
  table.Print();
  std::printf("\nthroughput scales with replicas until the client window saturates;\n");
  std::printf("no accelerator code changed between rows — only kernel wiring.\n");
  return 0;
}
