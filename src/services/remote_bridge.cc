#include "src/services/remote_bridge.h"

#include "src/core/service_ids.h"

namespace apiary {

void RemoteBridge::OnBoot(TileApi& api) {
  my_service_ = api.service();
  netsvc_ = api.LookupService(kNetworkService);
  if (netsvc_ != kInvalidCapRef && !registered_) {
    Message reg;
    reg.opcode = kOpNetRegister;
    if (api.Send(std::move(reg), netsvc_).ok()) {
      registered_ = true;
    }
  }
}

void RemoteBridge::ReplyError(const Message& request, TileApi& api, MsgStatus status) {
  Message err;
  err.opcode = request.opcode;
  err.status = status;
  counters_.Add("bridge.errors");
  api.Reply(request, std::move(err));
}

void RemoteBridge::SendFrame(uint32_t peer_board, uint32_t peer_service,
                             const std::vector<uint8_t>& body, TileApi& api) {
  Message out;
  out.opcode = kOpNetSend;
  PutU32(out.payload, peer_board);
  PutU32(out.payload, peer_service);  // Routing word on the peer board.
  out.payload.insert(out.payload.end(), body.begin(), body.end());
  if (!api.Send(std::move(out), netsvc_).ok()) {
    counters_.Add("bridge.net_send_fail");
  }
}

void RemoteBridge::HandleLocalCall(const Message& msg, TileApi& api) {
  if (msg.payload.size() < 14) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  const uint32_t peer_board = GetU32(msg.payload, 0);
  const uint32_t peer_bridge = GetU32(msg.payload, 4);
  const uint32_t target = GetU32(msg.payload, 8);
  const uint16_t opcode = static_cast<uint16_t>(msg.payload[12]) |
                          (static_cast<uint16_t>(msg.payload[13]) << 8);
  const uint64_t tunnel = next_tunnel_++;
  outbound_[tunnel] = OutboundCall{msg};

  std::vector<uint8_t> body;
  body.push_back(kCall);
  PutU64(body, tunnel);
  PutU32(body, my_service_);  // Where the peer should send the response.
  PutU32(body, target);
  body.push_back(static_cast<uint8_t>(opcode));
  body.push_back(static_cast<uint8_t>(opcode >> 8));
  body.insert(body.end(), msg.payload.begin() + 14, msg.payload.end());
  SendFrame(peer_board, peer_bridge, body, api);
  counters_.Add("bridge.calls_out");
}

void RemoteBridge::HandleFrame(const Message& msg, TileApi& api) {
  // kOpNetDeliver payload: u32 src_endpoint, then our wire body.
  if (msg.payload.size() < 13) {
    counters_.Add("bridge.malformed_frame");
    return;
  }
  const uint32_t peer_board = GetU32(msg.payload, 0);
  const uint8_t type = msg.payload[4];
  const uint64_t tunnel = GetU64(msg.payload, 5);
  if (type == kCall) {
    if (msg.payload.size() < 23) {
      counters_.Add("bridge.malformed_frame");
      return;
    }
    const uint32_t reply_service = GetU32(msg.payload, 13);
    const uint32_t target = GetU32(msg.payload, 17);
    const uint16_t opcode = static_cast<uint16_t>(msg.payload[21]) |
                            (static_cast<uint16_t>(msg.payload[22]) << 8);
    auto it = exposed_.find(target);
    if (it == exposed_.end()) {
      // Service not exposed to remote callers: answer with a denial.
      std::vector<uint8_t> body;
      body.push_back(kResponse);
      PutU64(body, tunnel);
      body.push_back(static_cast<uint8_t>(MsgStatus::kDenied));
      SendFrame(peer_board, reply_service, body, api);
      counters_.Add("bridge.calls_denied");
      return;
    }
    Message fwd;
    fwd.opcode = opcode;
    fwd.payload.assign(msg.payload.begin() + 23, msg.payload.end());
    fwd.request_id = next_local_++;
    const uint64_t local_id = fwd.request_id;
    if (!api.Send(std::move(fwd), it->second).ok()) {
      std::vector<uint8_t> body;
      body.push_back(kResponse);
      PutU64(body, tunnel);
      body.push_back(static_cast<uint8_t>(MsgStatus::kBackpressure));
      SendFrame(peer_board, reply_service, body, api);
      counters_.Add("bridge.forward_fail");
      return;
    }
    inbound_[local_id] = InboundCall{peer_board, reply_service, tunnel};
    counters_.Add("bridge.calls_in");
    return;
  }
  if (type == kResponse) {
    auto it = outbound_.find(tunnel);
    if (it == outbound_.end()) {
      counters_.Add("bridge.orphan_response");
      return;
    }
    Message reply;
    reply.opcode = kOpRemoteCall;
    reply.status = msg.payload.size() >= 14 ? static_cast<MsgStatus>(msg.payload[13])
                                            : MsgStatus::kBadRequest;
    if (msg.payload.size() > 14) {
      reply.payload.assign(msg.payload.begin() + 14, msg.payload.end());
    }
    api.Reply(it->second.local_request, std::move(reply));
    outbound_.erase(it);
    counters_.Add("bridge.responses_in");
    return;
  }
  counters_.Add("bridge.unknown_frame_type");
}

void RemoteBridge::HandleServiceResponse(const Message& msg, TileApi& api) {
  auto it = inbound_.find(msg.request_id);
  if (it == inbound_.end()) {
    if (msg.opcode == kOpNetRegister) {
      counters_.Add(msg.status == MsgStatus::kOk ? "bridge.registered"
                                                 : "bridge.register_failed");
      return;
    }
    counters_.Add("bridge.orphan_service_response");
    return;
  }
  std::vector<uint8_t> body;
  body.push_back(kResponse);
  PutU64(body, it->second.tunnel_id);
  body.push_back(static_cast<uint8_t>(msg.status));
  body.insert(body.end(), msg.payload.begin(), msg.payload.end());
  SendFrame(it->second.peer_board, it->second.reply_bridge_service, body, api);
  inbound_.erase(it);
  counters_.Add("bridge.responses_out");
}

void RemoteBridge::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind == MsgKind::kResponse) {
    HandleServiceResponse(msg, api);
    return;
  }
  switch (msg.opcode) {
    case kOpRemoteCall:
      HandleLocalCall(msg, api);
      break;
    case kOpNetDeliver:
      HandleFrame(msg, api);
      break;
    default:
      ReplyError(msg, api, MsgStatus::kBadRequest);
      break;
  }
}

}  // namespace apiary
