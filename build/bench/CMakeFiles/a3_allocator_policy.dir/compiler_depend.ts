# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for a3_allocator_policy.
