// Bad: orchestration bypassing the kernel to touch the NoC directly; its
// authority flows through ApiaryOs, never raw fabric access.
#ifndef SRC_ORCH_DIRECT_NOC_H_
#define SRC_ORCH_DIRECT_NOC_H_

#include "src/noc/packet.h"

#endif  // SRC_ORCH_DIRECT_NOC_H_
