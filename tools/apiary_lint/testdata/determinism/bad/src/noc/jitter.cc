// Bad: every ambient-randomness construct the determinism check bans.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace apiary {

uint64_t Jitter() {
  std::random_device rd;
  srand(42);
  auto wall = std::chrono::steady_clock::now();
  (void)wall;
  std::unordered_map<int, int> state;
  state[static_cast<int>(time(nullptr))] = rand();
  return rd();
}

}  // namespace apiary
