#include "src/accel/kv_store.h"

#include "src/core/service_ids.h"

namespace apiary {

void KvStoreAccelerator::OnBoot(TileApi& api) {
  memsvc_cap_ = api.LookupService(kMemoryService);
  if (memsvc_cap_ != kInvalidCapRef && !alloc_requested_ && mem_cap_ == kInvalidCapRef) {
    Message alloc;
    alloc.opcode = kOpMemAlloc;
    PutU64(alloc.payload, value_log_bytes_);
    PutU32(alloc.payload, kRightRead | kRightWrite);
    alloc.request_id = next_mem_request_++;
    if (api.Send(std::move(alloc), memsvc_cap_).ok()) {
      alloc_requested_ = true;
    }
  }
}

void KvStoreAccelerator::ReplyStatus(const Message& request, TileApi& api, MsgStatus status,
                                     uint16_t opcode) {
  Message reply;
  reply.opcode = opcode;
  reply.status = status;
  api.Reply(request, std::move(reply));
}

bool KvStoreAccelerator::ParseKey(const Message& msg, std::string* key,
                                  size_t* value_offset) const {
  if (msg.payload.size() < 4) {
    return false;
  }
  const uint32_t klen = GetU32(msg.payload, 0);
  if (klen == 0 || msg.payload.size() < 4 + klen) {
    return false;
  }
  key->assign(msg.payload.begin() + 4, msg.payload.begin() + 4 + klen);
  if (value_offset != nullptr) {
    *value_offset = 4 + klen;
  }
  return true;
}

void KvStoreAccelerator::HandleGet(const Message& msg, TileApi& api) {
  std::string key;
  if (!ParseKey(msg, &key, nullptr)) {
    ReplyStatus(msg, api, MsgStatus::kBadRequest, kOpKvGet);
    return;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    counters_.Add("kv.get_miss");
    ReplyStatus(msg, api, MsgStatus::kNotFound, kOpKvGet);
    return;
  }
  // Fetch the value from the DRAM log through the memory service,
  // presenting our segment capability.
  Message read;
  read.opcode = kOpMemRead;
  PutU64(read.payload, it->second.offset);
  PutU32(read.payload, it->second.length);
  read.request_id = next_mem_request_++;
  const uint64_t rid = read.request_id;
  if (!api.Send(std::move(read), memsvc_cap_, mem_cap_).ok()) {
    counters_.Add("kv.mem_send_fail");
    ReplyStatus(msg, api, MsgStatus::kBackpressure, kOpKvGet);
    return;
  }
  counters_.Add("kv.get");
  in_flight_[rid] = PendingOp{msg, kOpKvGet, std::move(key), it->second};
}

void KvStoreAccelerator::HandlePut(const Message& msg, TileApi& api) {
  std::string key;
  size_t voff = 0;
  if (!ParseKey(msg, &key, &voff)) {
    ReplyStatus(msg, api, MsgStatus::kBadRequest, kOpKvPut);
    return;
  }
  const uint64_t vlen = msg.payload.size() - voff;
  if (index_.size() >= max_index_entries_ && index_.find(key) == index_.end()) {
    counters_.Add("kv.index_full");
    ReplyStatus(msg, api, MsgStatus::kNoMemory, kOpKvPut);
    return;
  }
  if (log_head_ + vlen > value_log_bytes_) {
    counters_.Add("kv.log_full");
    ReplyStatus(msg, api, MsgStatus::kNoMemory, kOpKvPut);
    return;
  }
  const ValueLoc loc{log_head_, static_cast<uint32_t>(vlen)};
  log_head_ += vlen;
  Message write;
  write.opcode = kOpMemWrite;
  PutU64(write.payload, loc.offset);
  write.payload.insert(write.payload.end(), msg.payload.begin() + static_cast<ptrdiff_t>(voff),
                       msg.payload.end());
  write.request_id = next_mem_request_++;
  const uint64_t rid = write.request_id;
  if (!api.Send(std::move(write), memsvc_cap_, mem_cap_).ok()) {
    counters_.Add("kv.mem_send_fail");
    ReplyStatus(msg, api, MsgStatus::kBackpressure, kOpKvPut);
    return;
  }
  counters_.Add("kv.put");
  in_flight_[rid] = PendingOp{msg, kOpKvPut, std::move(key), loc};
}

void KvStoreAccelerator::HandleDelete(const Message& msg, TileApi& api) {
  std::string key;
  if (!ParseKey(msg, &key, nullptr)) {
    ReplyStatus(msg, api, MsgStatus::kBadRequest, kOpKvDelete);
    return;
  }
  const bool erased = index_.erase(key) > 0;
  counters_.Add(erased ? "kv.delete" : "kv.delete_miss");
  ReplyStatus(msg, api, erased ? MsgStatus::kOk : MsgStatus::kNotFound, kOpKvDelete);
}

void KvStoreAccelerator::HandleMemReply(const Message& msg, TileApi& api) {
  if (msg.opcode == kOpMemAlloc) {
    if (msg.status == MsgStatus::kOk && msg.payload.size() >= 4) {
      mem_cap_ = GetU32(msg.payload, 0);
      counters_.Add("kv.log_provisioned");
    } else {
      counters_.Add("kv.alloc_failed");
      alloc_requested_ = false;  // Retry from Tick.
    }
    return;
  }
  auto it = in_flight_.find(msg.request_id);
  if (it == in_flight_.end()) {
    counters_.Add("kv.orphan_mem_reply");
    return;
  }
  PendingOp op = std::move(it->second);
  in_flight_.erase(it);
  if (msg.status != MsgStatus::kOk) {
    counters_.Add("kv.mem_error");
    ReplyStatus(op.client_request, api, msg.status, op.op);
    return;
  }
  if (op.op == kOpKvGet) {
    Message reply;
    reply.opcode = kOpKvGet;
    reply.payload = msg.payload;
    api.Reply(op.client_request, std::move(reply));
    counters_.Add("kv.get_ok");
  } else {
    // Write acknowledged: commit the index entry, then ack the client.
    index_[op.key] = op.loc;
    ReplyStatus(op.client_request, api, MsgStatus::kOk, kOpKvPut);
    counters_.Add("kv.put_ok");
  }
}

void KvStoreAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind == MsgKind::kResponse) {
    HandleMemReply(msg, api);
    return;
  }
  if (!ready()) {
    // Value log not provisioned yet: queue a little, else shed load.
    if (boot_backlog_.size() < 64) {
      boot_backlog_.push_back(msg);
    } else {
      ReplyStatus(msg, api, MsgStatus::kBackpressure, msg.opcode);
    }
    return;
  }
  switch (msg.opcode) {
    case kOpKvGet:
      HandleGet(msg, api);
      break;
    case kOpKvPut:
      HandlePut(msg, api);
      break;
    case kOpKvDelete:
      HandleDelete(msg, api);
      break;
    default:
      ReplyStatus(msg, api, MsgStatus::kBadRequest, msg.opcode);
      break;
  }
}

void KvStoreAccelerator::Tick(TileApi& api) {
  if (mem_cap_ == kInvalidCapRef) {
    if (!alloc_requested_) {
      OnBoot(api);  // Retry provisioning.
    }
    return;
  }
  while (!boot_backlog_.empty()) {
    Message msg = std::move(boot_backlog_.front());
    boot_backlog_.pop_front();
    OnMessage(msg, api);
  }
}

std::vector<uint8_t> KvStoreAccelerator::SaveState() {
  // Externalized architectural state (Section 4.4): enough to resume on this
  // or an equivalent tile. In-flight memory operations are abandoned; their
  // clients see errors/timeouts, exactly as a preempted NIC would behave.
  std::vector<uint8_t> out;
  PutU64(out, log_head_);
  PutU32(out, memsvc_cap_);
  PutU32(out, mem_cap_);
  PutU32(out, static_cast<uint32_t>(index_.size()));
  for (const auto& [key, loc] : index_) {
    PutU32(out, static_cast<uint32_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    PutU64(out, loc.offset);
    PutU32(out, loc.length);
  }
  return out;
}

void KvStoreAccelerator::RestoreState(std::span<const uint8_t> state) {
  if (state.size() < 20) {
    return;
  }
  std::vector<uint8_t> buf(state.begin(), state.end());
  log_head_ = GetU64(buf, 0);
  memsvc_cap_ = GetU32(buf, 8);
  mem_cap_ = GetU32(buf, 12);
  alloc_requested_ = mem_cap_ != kInvalidCapRef;
  const uint32_t count = GetU32(buf, 16);
  size_t off = 20;
  index_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    if (off + 4 > buf.size()) {
      return;
    }
    const uint32_t klen = GetU32(buf, off);
    off += 4;
    if (off + klen + 12 > buf.size()) {
      return;
    }
    std::string key(buf.begin() + static_cast<ptrdiff_t>(off),
                    buf.begin() + static_cast<ptrdiff_t>(off + klen));
    off += klen;
    ValueLoc loc;
    loc.offset = GetU64(buf, off);
    off += 8;
    loc.length = GetU32(buf, off);
    off += 4;
    index_[std::move(key)] = loc;
  }
}

}  // namespace apiary
