#include "src/stats/summary.h"

#include <cmath>
#include <sstream>

namespace apiary {

uint64_t CounterSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::Merge(const CounterSet& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
}

std::string CounterSet::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) {
      out << ' ';
    }
    out << name << '=' << value;
    first = false;
  }
  return out.str();
}

void RunningStat::Record(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStat::StdDev() const {
  if (n_ == 0) {
    return 0.0;
  }
  const double mean = Mean();
  const double var = sum_sq_ / static_cast<double>(n_) - mean * mean;
  return var <= 0 ? 0.0 : std::sqrt(var);
}

}  // namespace apiary
