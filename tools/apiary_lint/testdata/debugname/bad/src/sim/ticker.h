// Bad: a Clocked subclass with no DebugName override — it would show up in
// traces and watchdog dumps as the anonymous default.
#ifndef SRC_SIM_TICKER_H_
#define SRC_SIM_TICKER_H_

#include "src/sim/clocked.h"

namespace apiary {

class Ticker : public Clocked {
 public:
  void Tick(Cycle now) override;
};

}  // namespace apiary

#endif  // SRC_SIM_TICKER_H_
