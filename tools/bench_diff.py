#!/usr/bin/env python3
"""Warn-only diff of bench JSON against the checked-in baselines.

Usage:
  bench_diff.py --baseline-dir . --current-dir bench_out BENCH_b1.json ...

For every named file, rows are joined on their identifying fields (scenario,
period, threads, active_pct) and the key throughput fields — anything named
*mcycles_per_sec, speedup, or express_hits — are compared against the
baseline. A throughput drop beyond --tolerance (default 30%, smoke runs on
shared CI hardware are noisy) or a corridor hit count collapsing to zero
prints a GitHub ::warning annotation. The exit code is always 0: this step
tracks the perf trajectory in-repo, it does not gate merges.
"""

import argparse
import json
import os
import sys

ID_FIELDS = ("scenario", "period", "threads", "active_pct")


def row_key(row):
    return tuple((f, row[f]) for f in ID_FIELDS if f in row)


def key_fields(row):
    for name, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if name.endswith("mcycles_per_sec") or name == "speedup" or name == "express_hits":
            yield name, value


def diff_file(name, base_path, cur_path, tolerance):
    warnings = 0
    try:
        with open(base_path) as f:
            base = json.load(f)
        with open(cur_path) as f:
            cur = json.load(f)
    except (OSError, ValueError) as err:
        print(f"::warning::bench_diff: cannot compare {name}: {err}")
        return 1

    base_rows = {row_key(r): r for r in base.get("rows", [])}
    for row in cur.get("rows", []):
        base_row = base_rows.get(row_key(row))
        if base_row is None:
            continue  # New sweep point: nothing to compare against yet.
        label = ", ".join(f"{k}={v}" for k, v in row_key(row)) or "row"
        for field, value in key_fields(row):
            if field not in base_row:
                continue
            ref = base_row[field]
            if field == "express_hits":
                if ref > 0 and value == 0:
                    print(f"::warning::{name} [{label}] express_hits fell to 0 "
                          f"(baseline {ref}) — corridors stopped launching")
                    warnings += 1
                continue
            if ref > 0 and value < ref * (1.0 - tolerance):
                print(f"::warning::{name} [{label}] {field} regressed: "
                      f"{value:.2f} vs baseline {ref:.2f} "
                      f"({100.0 * (1.0 - value / ref):.0f}% drop)")
                warnings += 1
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--current-dir", default="bench_out")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    total = 0
    for name in args.files:
        total += diff_file(name, os.path.join(args.baseline_dir, name),
                           os.path.join(args.current_dir, name), args.tolerance)
    if total == 0:
        print(f"bench_diff: {len(args.files)} file(s) within tolerance of baselines")
    else:
        print(f"bench_diff: {total} warning(s) — see annotations (non-gating)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
