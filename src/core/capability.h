// Capabilities and the per-tile partitioned capability table.
//
// Section 4.6: "Capabilities are stored in a partitioned manner by having the
// Apiary monitor manage the capability list, so the accelerator can only
// obtain a reference to the capability and not the capability itself."
//
// A CapRef is an opaque (index, generation) handle; revocation bumps the
// slot generation so stale references fail closed.
#ifndef SRC_CORE_CAPABILITY_H_
#define SRC_CORE_CAPABILITY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/segment_allocator.h"
#include "src/sim/types.h"

namespace apiary {

enum class CapKind : uint8_t {
  kEndpoint,  // Right to send messages to (dst_tile, dst_service).
  kMemory,    // Right to access a physical memory segment.
  kManage,    // Right to manage another tile (fail-stop, reconfigure).
};

// Rights bitmask.
enum CapRights : uint32_t {
  kRightSend = 1u << 0,
  kRightRead = 1u << 1,
  kRightWrite = 1u << 2,
  kRightGrant = 1u << 3,  // May mint derived (attenuated) capabilities.
};

struct Capability {
  CapKind kind = CapKind::kEndpoint;
  uint32_t rights = 0;

  // kEndpoint / kManage target.
  TileId dst_tile = kInvalidTile;
  ServiceId dst_service = kInvalidService;

  // kMemory target.
  Segment segment;

  bool HasRights(uint32_t required) const { return (rights & required) == required; }
};

// Encodes (slot index, generation) into the opaque 32-bit CapRef the
// accelerator holds: low 20 bits slot, high 12 bits generation.
[[nodiscard]] CapRef MakeCapRef(uint32_t slot, uint32_t generation);
uint32_t CapRefSlot(CapRef ref);
uint32_t CapRefGeneration(CapRef ref);

class CapabilityTable {
 public:
  explicit CapabilityTable(uint32_t max_entries = 64);

  // Installs a capability; returns the reference handed to the accelerator,
  // or kInvalidCapRef when the table is full. Dropping the result orphans
  // the slot until RevokeAll.
  [[nodiscard]] CapRef Install(const Capability& cap);

  // Returns the capability for a live, generation-matching reference.
  const Capability* Lookup(CapRef ref) const;

  // Revokes the slot; the generation bump invalidates outstanding refs.
  bool Revoke(CapRef ref);

  // Revokes every capability (used when a tile is reassigned to a new app).
  void RevokeAll();

  // Finds a live endpoint capability whose dst_service matches (the "table
  // that maps logical service names to underlying physical units", 4.3).
  [[nodiscard]] CapRef FindEndpointForService(ServiceId service) const;

  uint32_t live_count() const { return live_count_; }
  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }

 private:
  struct Slot {
    std::optional<Capability> cap;
    uint32_t generation = 0;
  };
  std::vector<Slot> slots_;
  uint32_t live_count_ = 0;
};

}  // namespace apiary

#endif  // SRC_CORE_CAPABILITY_H_
