file(REMOVE_RECURSE
  "CMakeFiles/e3_ipc.dir/e3_ipc.cc.o"
  "CMakeFiles/e3_ipc.dir/e3_ipc.cc.o.d"
  "e3_ipc"
  "e3_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
