// BoundaryLink: one directed mesh link whose endpoints live in different
// shards of the parallel engine (src/sim/parallel/parallel_simulator.h).
//
// A cut link replaces the direct neighbor->AcceptFlit call with a two-ring
// handoff at the committed-time frontier:
//   * Flit ring (sender -> receiver): the sending router's route phase
//     pushes one POD record per crossing flit; the receiving shard's
//     transfer phase drains them into the destination router's staged
//     buffer the SAME cycle — so the flit becomes visible at T+1, exactly
//     when a direct AcceptFlit at T would have made it visible.
//   * Credit ring (receiver -> sender): start-of-cycle credit flow control.
//     The sender holds `buffer_depth` credits per VC (the depth of the
//     receiving input buffer) and spends one per flit; the receiver counts
//     pops out of that buffer and flushes them back at the end of its route
//     phase. Harvested credits become spendable the NEXT cycle, so the
//     sender's view equals the receiver's end-of-previous-cycle occupancy —
//     credits > 0 therefore guarantees AcceptFlit succeeds (asserted).
//
// Ownership never crosses the cut. PacketRef's refcount is non-atomic by
// design (see packet.h), so two shards must never hold references to one
// NocPacket. The records in the flit ring carry a raw pointer + flit index;
// when the HEAD record arrives, the receiver CLONES the packet into its own
// shard pool/arena and reassembles the remaining flits against the clone
// (body records are never dereferenced). Wormhole switching admits at most
// one partial packet per (link, VC), so one clone slot per VC suffices.
// On the sender side, the packet is pinned by a 1-cycle anchor ref taken at
// Send() of the head flit and dropped at the sender's NEXT commit phase —
// by then the receiver has finished its clone reads for the cycle (the
// engine's barrier orders them), so even a single-flit packet whose last
// sender-side ref died at pop time cannot be scrubbed mid-read.
//
// Thread roles are fixed by the partition: exactly one sending shard and
// one receiving shard per link, which is what lets the rings be SPSC (see
// spsc_ring.h for why MPMC would cost contended RMWs for nothing).
#ifndef SRC_NOC_BOUNDARY_LINK_H_
#define SRC_NOC_BOUNDARY_LINK_H_

#include <array>
#include <cstdint>

#include "src/noc/packet.h"
#include "src/sim/parallel/spsc_ring.h"
#include "src/sim/types.h"

namespace apiary {

class PacketPool;
class Router;
enum RouterPort : int;

// One flit crossing the cut. `packet` is dereferenced only for head records
// (index 0), during the receiver's clone; body/tail records are matched to
// the in-progress clone by VC.
struct BoundaryFlitRecord {
  const NocPacket* packet = nullptr;
  uint32_t index = 0;
  uint8_t vc = 0;
};

// Credits returned by the receiver: `pops` flits left input buffer `vc`.
struct BoundaryCreditRecord {
  uint8_t vc = 0;
  uint8_t pops = 0;
};

class BoundaryLink {
 public:
  explicit BoundaryLink(uint32_t buffer_depth);
  BoundaryLink(const BoundaryLink&) = delete;
  BoundaryLink& operator=(const BoundaryLink&) = delete;

  // ------------------------------------------------------------------
  // Sender side — called only from the source shard's thread.
  // ------------------------------------------------------------------
  bool HasCredit(Vc vc) const { return credits_[static_cast<int>(vc)] > 0; }
  // Spends a credit and pushes the flit record. Head flits also take the
  // 1-cycle anchor ref that keeps the packet alive through the receiver's
  // clone window.
  void Send(const Flit& flit, Cycle now);
  // Sender commit phase: last cycle's anchors drop, this cycle's (taken by
  // Send below) move into the 1-cycle holding slot.
  void ReleaseAnchors();
  // Sender transfer phase: drain returned credits (spendable next cycle).
  void HarvestCredits();

  // ------------------------------------------------------------------
  // Receiver side — called only from the destination shard's thread.
  // ------------------------------------------------------------------
  // Router pop accounting (via Router::SetInputBoundary wiring).
  void NotifyPop(Vc vc) { ++pending_pops_[static_cast<int>(vc)]; }
  // Receiver route phase, after the routers ran: publish this cycle's pops.
  // Must happen before the shard's route_done grant so the sender's harvest
  // sees a complete cycle.
  void FlushCredits();
  // Receiver transfer phase: drain the flit ring into `router`'s input
  // `in_port`, cloning head packets into `pool` (and the installed domain's
  // payload arena).
  void DeliverInto(Router& router, RouterPort in_port, Cycle now, PacketPool& pool);

  // Teardown/stat readers (single-threaded: workers parked or joined).
  uint64_t flits_handed_off() const { return flits_handed_off_; }
  uint64_t packets_cloned() const { return packets_cloned_; }

 private:
  // Capacities: at most one flit crosses a directed link per cycle and both
  // rings are fully drained every cycle, so these bounds are generous; Push
  // failure is a protocol bug (asserted).
  static constexpr uint32_t kFlitRingSlots = 8;
  static constexpr uint32_t kCreditRingSlots = 8;

  SpscRing<BoundaryFlitRecord, kFlitRingSlots> flits_;
  SpscRing<BoundaryCreditRecord, kCreditRingSlots> credits_ring_;

  // Sender-owned state.
  std::array<uint32_t, kNumVcs> credits_;
  std::array<PacketRef, kNumVcs> anchor_;       // Head crossed last cycle.
  std::array<PacketRef, kNumVcs> anchor_next_;  // Head crossed this cycle.
  uint64_t flits_handed_off_ = 0;

  // Receiver-owned state.
  std::array<PacketRef, kNumVcs> clone_;  // Partially reassembled clone.
  std::array<uint32_t, kNumVcs> pending_pops_{};
  uint64_t packets_cloned_ = 0;
};

}  // namespace apiary

#endif  // SRC_NOC_BOUNDARY_LINK_H_
