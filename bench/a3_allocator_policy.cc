// Ablation A3: segment allocator placement policy — best-fit vs first-fit.
//
// DESIGN.md fixes best-fit as the default; this ablation justifies it by
// replaying long mixed-size allocation traces under both policies and
// tracking external fragmentation, failure onset, and free-list length
// (which models the hardware allocator's search cost).
#include <cstdio>

#include "src/mem/segment_allocator.h"
#include "src/sim/random.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  uint64_t frag_failures = 0;  // Allocation failed though free bytes sufficed.
  double mean_fragmentation = 0;
  double max_fragmentation = 0;
  double mean_free_chunks = 0;
  uint64_t largest_at_end = 0;
};

Result Run(FitPolicy policy, uint64_t seed) {
  constexpr uint64_t kPool = 64ull << 20;
  // Keep utilization around 70% so failures measure *fragmentation*, not
  // raw capacity exhaustion.
  constexpr uint64_t kTargetLive = (kPool * 7) / 10;
  SegmentAllocator alloc(0, kPool, policy);
  Rng rng(seed);
  std::vector<Segment> live;
  RunningStat frag;
  RunningStat chunks;
  uint64_t frag_failures = 0;
  for (int step = 0; step < 60000; ++step) {
    const bool want_alloc = alloc.bytes_allocated() < kTargetLive;
    if (live.empty() || want_alloc) {
      // Bimodal sizes: many small, some large — the stranding-prone mix.
      const uint64_t bytes = rng.NextBool(0.85) ? rng.NextInRange(64, 4096)
                                                : rng.NextInRange(256 << 10, 4 << 20);
      auto seg = alloc.Allocate(bytes, 64);
      if (seg.has_value()) {
        live.push_back(*seg);
      } else if (alloc.bytes_free() >= bytes) {
        ++frag_failures;  // Enough bytes, but no hole big enough.
      }
    } else {
      const size_t idx = rng.NextBelow(live.size());
      alloc.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 100 == 0) {
      frag.Record(alloc.ExternalFragmentation());
      chunks.Record(static_cast<double>(alloc.free_chunks()));
    }
  }
  Result r;
  r.frag_failures = frag_failures;
  r.mean_fragmentation = frag.Mean();
  r.max_fragmentation = frag.Max();
  r.mean_free_chunks = chunks.Mean();
  r.largest_at_end = alloc.LargestFreeChunk();
  return r;
}

}  // namespace

int main() {
  std::printf("A3: segment placement policy ablation (64MiB pool, bimodal sizes,\n");
  std::printf("60k alloc/free steps per seed, 3 seeds)\n");

  Table table("A3: best-fit vs first-fit (70% utilization)");
  table.SetHeader({"policy", "seed", "frag failures", "mean ext. frag", "max ext. frag",
                   "mean free chunks", "largest free at end"});
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    for (FitPolicy policy : {FitPolicy::kBestFit, FitPolicy::kFirstFit}) {
      const Result r = Run(policy, seed);
      table.AddRow({policy == FitPolicy::kBestFit ? "best-fit" : "first-fit",
                    Table::Int(seed), Table::Int(r.frag_failures),
                    Table::Num(r.mean_fragmentation, 3), Table::Num(r.max_fragmentation, 3),
                    Table::Num(r.mean_free_chunks, 1), Table::Int(r.largest_at_end)});
    }
  }
  table.Print();
  std::printf(
      "\nmeasured shape: the two policies are within noise of each other — first-fit\n"
      "is even marginally better on fragmentation failures, the classic result that\n"
      "best-fit's tiny leftover slivers offset its hole preservation (Knuth vol. 1).\n"
      "The policy choice is second-order for Apiary; what matters for isolation is\n"
      "segments-vs-pages (E5), not the fit heuristic. We keep best-fit as the\n"
      "default for its more predictable largest-hole behavior under adversarial\n"
      "request mixes, and this ablation documents that the cost of that choice is\n"
      "negligible.\n");
  return 0;
}
