// Interface for cycle-driven hardware blocks.
#ifndef SRC_SIM_CLOCKED_H_
#define SRC_SIM_CLOCKED_H_

#include <string>

#include "src/sim/types.h"

namespace apiary {

// A Clocked object models a synchronous hardware block: it is ticked once per
// simulated clock cycle. The simulator ticks all registered objects in
// registration order; blocks that need two-phase (compute/commit) semantics
// implement it internally by latching outputs.
class Clocked {
 public:
  virtual ~Clocked() = default;

  // Advance one cycle. `now` is the cycle being executed.
  virtual void Tick(Cycle now) = 0;

  // Human-readable name for tracing and debug dumps.
  virtual std::string DebugName() const { return "clocked"; }
};

}  // namespace apiary

#endif  // SRC_SIM_CLOCKED_H_
