// Input-buffered 5-port mesh router with wormhole switching, two virtual
// channels, XY dimension-order routing, and round-robin arbitration.
//
// The Mesh orchestrates all routers in two phases per cycle (commit staged
// flits, then route), which gives every router a consistent view of
// downstream buffer occupancy without explicit credit wires.
#ifndef SRC_NOC_ROUTER_H_
#define SRC_NOC_ROUTER_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/noc/fault_hooks.h"
#include "src/noc/packet.h"
#include "src/sim/ring_buffer.h"
#include "src/stats/summary.h"

namespace apiary {

class BoundaryLink;
class NetworkInterface;

enum RouterPort : int {
  kPortNorth = 0,
  kPortSouth = 1,
  kPortEast = 2,
  kPortWest = 3,
  kPortLocal = 4,
};
inline constexpr int kNumPorts = 5;

class Router {
 public:
  Router(uint32_t x, uint32_t y, uint32_t mesh_width, uint32_t mesh_height,
         uint32_t buffer_depth);

  // Wiring (done once by the Mesh).
  void SetNeighbor(RouterPort port, Router* neighbor) { neighbors_[port] = neighbor; }
  void SetLocalInterface(NetworkInterface* ni) { ni_ = ni; }
  void SetFaultModel(NocFaultModel* model) { fault_model_ = model; }

  // Partition wiring (Mesh::EnablePartition/DisablePartition): when a
  // neighbor link crosses a shard cut, outbound flits go through the
  // boundary shim (credit-gated) instead of touching the neighbor directly,
  // and pops from a boundary-fed input buffer are reported back as credits.
  // Null restores the direct path.
  void SetOutputBoundary(RouterPort port, BoundaryLink* link) { out_boundary_[port] = link; }
  void SetInputBoundary(RouterPort port, BoundaryLink* link) { in_boundary_[port] = link; }

  // Weighted bandwidth arbitration: assigns a deficit weight to an
  // arbitration class. While any weight is configured and two or more
  // classes compete for the same free output VC, a deficit arbiter picks
  // the winner: each contested attempt banks `weight` of deficit for every
  // competing class, the largest deficit wins, and the winner pays its
  // packet's flit count back out of its deficit — so long-run contended
  // grants converge to the weight ratio. A class with no queued traffic is
  // reset to zero deficit (idle classes cannot bank bursts, and debts are
  // forgiven once contention ends). The scheme is work-conserving — a sole
  // competitor passes immediately and free of charge, because weights
  // divide *contended* bandwidth and are not absolute caps. With no weights
  // configured the arbitration path is untouched. Weight 0 restores a class
  // to the default weight (1).
  void SetClassWeight(uint8_t cls, uint32_t weight);

  // Phase 1: staged flits (arrived last cycle) become visible.
  void CommitStaged();

  // Phase 2: forward up to one flit per output port.
  void RouteCycle(Cycle now);

  // Returns true and stages the flit if input buffer (port, vc) has space.
  bool AcceptFlit(RouterPort in_port, const Flit& flit);

  // Free slots in input buffer (port, vc), counting staged flits.
  uint32_t FreeSlots(RouterPort in_port, Vc vc) const;

  uint32_t x() const { return x_; }
  uint32_t y() const { return y_; }
  TileId tile() const { return y_ * mesh_width_ + x_; }

  const CounterSet& counters() const { return counters_; }
  uint64_t flits_routed() const { return flits_routed_; }

  // True while any input buffer holds a flit (staged or committed) — the
  // mesh's quiescence check. O(1): tracked as a running occupancy count.
  bool HasBufferedFlits() const { return occupancy_ != 0; }

  // Live-list publication (Mesh active sweep): on the first flit accepted
  // while unmarked, the router appends its tile id to `list` — the mesh's
  // per-cycle busy set. The mesh clears the mark when it compacts the
  // router out of the list (occupancy back to zero).
  void SetLiveList(std::vector<uint32_t>* list) { live_out_ = list; }
  void ClearLiveMark() { live_marked_ = false; }

  // Estimated logic-cell cost of this router instance (for the FPGA resource
  // model; see src/fpga/resource_model.h for calibration notes).
  static uint32_t LogicCellCost(uint32_t buffer_depth);

 private:
  // The express lane reads wormhole-owner state at corridor launch and
  // replays batched traversal effects through ExpressCatchUp (src/noc/
  // express.h documents why the batch is byte-exact).
  friend class ExpressLane;

  // Applies the externally visible effects of `departed` corridor flits
  // having been forwarded from input `in` through (out, vc) on consecutive
  // cycles: flit count, VC/input round-robin pointers, the sole-pass deficit
  // reset, and the wormhole owner (held while mid-packet, released by the
  // tail). No-op when nothing departed yet.
  void ExpressCatchUp(RouterPort out, RouterPort in, int vc, uint32_t departed,
                      uint32_t flits);

  // Fixed-capacity rings (buffer_depth each, sized once at construction):
  // the input buffer models a hardware FIFO, so its bound is architectural
  // and per-flit queue churn must not touch the heap.
  struct InputBuffer {
    RingBuffer<Flit> flits;
    RingBuffer<Flit> staged;
  };
  struct OutputVcState {
    // Wormhole ownership: the (input port, vc) whose packet currently holds
    // this output vc; -1 when free.
    int owner_port = -1;
  };

  // XY dimension-order route computation for a destination tile.
  RouterPort RoutePort(TileId dst) const;

  // Attempts to forward the head-of-line flit from inputs_[in][vc] through
  // `out`. Returns true on success.
  bool TryForward(RouterPort out, int in, int vc, Cycle now);

  // Weighted acquisition of a free output vc: scans this vc's candidate
  // head flits, and when two or more arbitration classes compete, lets the
  // class with the largest deficit win (deficits accrue by weight per
  // contested attempt and the winner pays its packet's flit count, so
  // long-run grants converge to the weight ratio). A sole candidate class
  // passes immediately and free of charge.
  bool AcquireWeighted(RouterPort out, int vc, Cycle now);

  bool DownstreamHasSpace(RouterPort out, Vc vc) const;
  void SendDownstream(RouterPort out, const Flit& flit, Cycle now);

  uint32_t x_;
  uint32_t y_;
  uint32_t mesh_width_;
  uint32_t mesh_height_;
  uint32_t buffer_depth_;

  std::array<Router*, 4> neighbors_{};
  // Cut-link shims (indexed by the four neighbor ports); null off-partition.
  std::array<BoundaryLink*, 4> out_boundary_{};
  std::array<BoundaryLink*, 4> in_boundary_{};
  NetworkInterface* ni_ = nullptr;
  NocFaultModel* fault_model_ = nullptr;

  InputBuffer inputs_[kNumPorts][kNumVcs];
  OutputVcState outputs_[kNumPorts][kNumVcs];
  // Round-robin pointers: per output port, the next input port to consider.
  std::array<int, kNumPorts> rr_input_{};
  // Per output port, the next vc to consider (VC-level interleaving).
  std::array<int, kNumPorts> rr_vc_{};

  // Weighted-arbitration state. `weighted_` gates the whole mechanism so
  // boards that never configure weights keep the original arbitration
  // byte-for-byte. Deficits are per (output port, class) and only move while
  // that class is actually contending at that output: an idle class is reset
  // to zero (no banked bursts, no lingering debt once contention ends).
  bool weighted_ = false;
  std::array<uint32_t, kNumArbClasses> class_weights_{};
  std::array<std::array<int64_t, kNumArbClasses>, kNumPorts> class_deficit_{};

  uint64_t flits_routed_ = 0;
  // Total flits resident across all input buffers (staged + committed).
  uint64_t occupancy_ = 0;
  // Busy-transition publication target (the owning mesh's fresh-live list)
  // and the membership mark that keeps each transition published once.
  std::vector<uint32_t>* live_out_ = nullptr;
  bool live_marked_ = false;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_NOC_ROUTER_H_
