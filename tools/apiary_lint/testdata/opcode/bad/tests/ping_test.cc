#include "src/services/opcodes.h"

namespace apiary {

int TestPingRoundTrip() { return static_cast<int>(kOpPing); }

}  // namespace apiary
