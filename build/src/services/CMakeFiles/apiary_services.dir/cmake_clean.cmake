file(REMOVE_RECURSE
  "CMakeFiles/apiary_services.dir/dma_service.cc.o"
  "CMakeFiles/apiary_services.dir/dma_service.cc.o.d"
  "CMakeFiles/apiary_services.dir/gateway.cc.o"
  "CMakeFiles/apiary_services.dir/gateway.cc.o.d"
  "CMakeFiles/apiary_services.dir/load_balancer.cc.o"
  "CMakeFiles/apiary_services.dir/load_balancer.cc.o.d"
  "CMakeFiles/apiary_services.dir/memory_service.cc.o"
  "CMakeFiles/apiary_services.dir/memory_service.cc.o.d"
  "CMakeFiles/apiary_services.dir/mgmt_service.cc.o"
  "CMakeFiles/apiary_services.dir/mgmt_service.cc.o.d"
  "CMakeFiles/apiary_services.dir/name_service.cc.o"
  "CMakeFiles/apiary_services.dir/name_service.cc.o.d"
  "CMakeFiles/apiary_services.dir/network_service.cc.o"
  "CMakeFiles/apiary_services.dir/network_service.cc.o.d"
  "CMakeFiles/apiary_services.dir/remote_bridge.cc.o"
  "CMakeFiles/apiary_services.dir/remote_bridge.cc.o.d"
  "CMakeFiles/apiary_services.dir/transport.cc.o"
  "CMakeFiles/apiary_services.dir/transport.cc.o.d"
  "libapiary_services.a"
  "libapiary_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
