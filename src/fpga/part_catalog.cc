#include "src/fpga/part_catalog.h"

namespace apiary {

const std::vector<FpgaPart>& PartCatalog() {
  // The first four rows reproduce the paper's Table 1 exactly: smallest and
  // largest parts of the previous (7 series) and current (UltraScale+)
  // Virtex families. The remaining rows are additional public parts used to
  // sweep the monitor-overhead experiment across device sizes.
  static const std::vector<FpgaPart> kCatalog = {
      {"Virtex 7", 2010, "XC7V585T", 582720, true},
      {"Virtex 7", 2010, "XC7VH870T", 876160, true},
      {"Virtex UltraScale+", 2016, "VU3P", 862000, true},
      {"Virtex UltraScale+", 2018, "VU29P", 3780000, true},
      {"Virtex UltraScale+", 2017, "VU9P", 2586000, false},
      {"Virtex UltraScale+", 2018, "VU13P", 3456000, false},
      {"Alveo (VU47P-class)", 2019, "U55C", 2607000, false},
  };
  return kCatalog;
}

std::optional<FpgaPart> FindPart(const std::string& part_number) {
  for (const FpgaPart& part : PartCatalog()) {
    if (part.part_number == part_number) {
      return part;
    }
  }
  return std::nullopt;
}

}  // namespace apiary
