# Empty compiler generated dependencies file for apiary_core.
# This may be replaced when dependencies are built.
