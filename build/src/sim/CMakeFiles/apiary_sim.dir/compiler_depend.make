# Empty compiler generated dependencies file for apiary_sim.
# This may be replaced when dependencies are built.
