#include "src/accel/checksum.h"

#include <algorithm>
#include <array>

namespace apiary {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void ChecksumAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (msg.opcode != kOpChecksum) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(err));
    return;
  }
  Job job;
  job.request = msg;
  job.crc = Crc32(msg.payload);
  const Cycle compute =
      std::max<Cycle>(1, msg.payload.size() / std::max<uint32_t>(1, bytes_per_cycle_));
  const Cycle start = std::max(engine_free_at_, api.now());
  engine_free_at_ = start + compute;
  job.done_at = engine_free_at_;
  jobs_.push_back(std::move(job));
}

void ChecksumAccelerator::Tick(TileApi& api) {
  while (!jobs_.empty() && jobs_.front().done_at <= api.now()) {
    Message reply;
    reply.opcode = kOpChecksum;
    PutU32(reply.payload, jobs_.front().crc);
    const SendResult r = api.Reply(jobs_.front().request, std::move(reply));
    if (r.status == MsgStatus::kBackpressure || r.status == MsgStatus::kRateLimited) {
      break;
    }
    ++served_;
    jobs_.pop_front();
  }
}

}  // namespace apiary
