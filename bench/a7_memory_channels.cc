// Ablation A7: memory channel scaling — DDR (1 channel) vs HBM-style
// interleaving (2..16 pseudo-channels).
//
// Section 2 counts HBM among the modern board features an FPGA OS must
// make usable. The Apiary memory service runs unchanged on either backend;
// this bench measures the streaming bandwidth each configuration delivers
// to a single DMA engine, and the logic cost of the controllers.
#include <cstdio>

#include "src/fpga/resource_model.h"
#include "src/mem/interleaved_memory.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  double read_bytes_per_cycle;
  double gb_per_s;  // At 250 MHz.
};

Result Run(uint32_t channels) {
  Simulator sim(250.0);
  DramConfig per_channel;
  per_channel.capacity_bytes = 64ull << 20;
  InterleavedMemory mem(per_channel, channels, 4096);
  sim.Register(&mem);

  // Stream 16MiB of reads in 4KiB blocks, keeping 256 in flight.
  constexpr uint32_t kBlock = 4096;
  constexpr uint32_t kBlocks = 4096;
  constexpr uint32_t kWindow = 256;
  std::vector<std::vector<uint8_t>> bufs(kWindow, std::vector<uint8_t>(kBlock));
  uint32_t issued = 0;
  uint32_t done = 0;
  const Cycle start = sim.now();
  while (done < kBlocks && sim.now() < start + 10'000'000) {
    while (issued < kBlocks && issued - done < kWindow) {
      auto& buf = bufs[issued % kWindow];
      if (!mem.SubmitRead(static_cast<uint64_t>(issued) * kBlock, std::span<uint8_t>(buf),
                          [&done](Cycle) { ++done; })) {
        break;
      }
      ++issued;
    }
    sim.Run(1);
  }
  const double cycles = static_cast<double>(sim.now() - start);
  Result r;
  r.read_bytes_per_cycle = static_cast<double>(done) * kBlock / cycles;
  r.gb_per_s = r.read_bytes_per_cycle * 250e6 / 1e9;
  return r;
}

}  // namespace

int main() {
  std::printf("A7: memory channel scaling (sequential 4KiB reads, window 256)\n");

  const ResourceCosts costs;
  Table table("A7: bandwidth and logic vs channels");
  table.SetHeader({"channels", "bytes/cycle", "GB/s @250MHz", "controller cells",
                   "speedup"});
  double base = 0;
  for (uint32_t channels : {1u, 2u, 4u, 8u, 16u}) {
    const Result r = Run(channels);
    if (channels == 1) {
      base = r.read_bytes_per_cycle;
    }
    const uint64_t cells = channels == 1
                               ? costs.memory_controller
                               : static_cast<uint64_t>(channels) * costs.hbm_controller;
    table.AddRow({Table::Int(channels), Table::Num(r.read_bytes_per_cycle, 1),
                  Table::Num(r.gb_per_s, 1), Table::Int(cells),
                  Table::Num(r.read_bytes_per_cycle / base, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nexpected shape: bandwidth scales with channels while the 256-deep window can\n"
      "cover the per-channel latency, then flattens — HBM's channel parallelism is\n"
      "usable through the unchanged memory-service/DMA interface, at a linear logic\n"
      "cost per pseudo-channel.\n");
  return 0;
}
