#include "src/sim/simulator.h"

#include <algorithm>

namespace apiary {

void Simulator::Register(Clocked* block) { blocks_.push_back(block); }

void Simulator::Unregister(Clocked* block) { pending_removals_.push_back(block); }

void Simulator::ApplyPendingRemovals() {
  if (pending_removals_.empty()) {
    return;
  }
  for (Clocked* dead : pending_removals_) {
    blocks_.erase(std::remove(blocks_.begin(), blocks_.end(), dead), blocks_.end());
  }
  pending_removals_.clear();
}

void Simulator::Step() {
  events_.RunUntil(now_);
  // Index-based loop: callbacks and ticks may register new blocks, which then
  // start ticking on the next cycle.
  const size_t count = blocks_.size();
  for (size_t i = 0; i < count; ++i) {
    blocks_[i]->Tick(now_);
  }
  ApplyPendingRemovals();
  ++now_;
}

void Simulator::Run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    Step();
  }
}

bool Simulator::RunUntil(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle end = now_ + max_cycles;
  while (now_ < end) {
    if (pred()) {
      return true;
    }
    Step();
  }
  return pred();
}

}  // namespace apiary
