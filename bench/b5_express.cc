// B5: express corridors — wall throughput vs offered load, with a saturated
// guardrail.
//
// The corridor fast path (src/noc/express.*) makes interconnect simulation
// cost proportional to *contention* instead of hops x cycles: when a
// packet's whole XY route is verifiably non-interfering, the mesh installs a
// corridor and delivers the flits analytically, never ticking the
// intermediate routers. This harness measures that, in two legs:
//
//   * Corridor sweep: an 8x8 board with four echo pairs on rows 1/3/5/7
//     (client at x=0, service at x=7 — 7-hop corridors, zones two rows
//     apart so all four can be in flight at once; row 0 holds the standard
//     OS services), 300-byte payloads
//     (11 flits per packet). The request period sweeps light -> mid load;
//     each point runs express on vs off (`--no-express` baseline) on the
//     identical seeded scenario and cross-checks end cycle, request and
//     response counts, and total flits routed. The acceptance bar is
//     >= 1.5x wall throughput at the light and mid points.
//   * Saturated guardrail: the B2/B4 shape — closed-loop windowed clients
//     on a 4x4 board whose inject queues are never a single lone packet, so
//     corridors cannot launch and express degenerates to its per-injection
//     planning probe plus the per-cycle AnyActive check. Express cannot win
//     here and must not lose: the bar is >= 0.97x of the no-express run.
//
// Any cross-check divergence fails the run (exit 1): the fast path must be
// invisible to the simulation (the byte-level proof lives in
// tests/express_differential_test.cc; this harness re-checks the cheap
// aggregate counts so a perf run cannot silently report garbage).
//
// `--smoke` shrinks the run for CI; `--no-express` restricts to the
// escape-hatch configuration; `--json <path>` emits machine-readable
// results including express_hits / materializations / mean_corridor_hops.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/noc/express.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint32_t kPayloadBytes = 300;  // 11 flits: a realistic DMA chunk.

// Sends one echo request every `period` cycles (no overlap at the sweep's
// periods: round trip ~45 cycles). Parks between sends so idle valleys are
// skipped identically in both modes — the measurand is the cost of the
// cycles where packets are actually in flight.
class PacedClient : public Accelerator {
 public:
  PacedClient(ServiceId svc, Cycle period) : svc_(svc), period_(period) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(kPayloadBytes, static_cast<uint8_t>(sent_));
    msg.request_id = ++next_id_;
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++sent_;
    }
    next_ = api.now() + period_;
  }
  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind == MsgKind::kResponse) {
      ++received_;
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return next_ > now ? next_ : now;
  }
  std::string name() const override { return "paced_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  Cycle period_;
  Cycle next_ = 1'000;  // First send after boot settles.
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

// Closed-loop driver with a fixed outstanding window (the saturated shape):
// the inject queue always holds more than one packet, so no corridor ever
// qualifies and express pays only its probe overhead.
class WindowedClient : public Accelerator {
 public:
  explicit WindowedClient(ServiceId svc) : svc_(svc) {}

  void Tick(TileApi& api) override {
    while (in_flight_ < 16) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(48, static_cast<uint8_t>(in_flight_));
      msg.request_id = ++next_id_;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      ++in_flight_;
      ++sent_;
    }
  }
  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind == MsgKind::kResponse) {
      --in_flight_;
      ++received_;
    }
  }
  std::string name() const override { return "windowed_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

struct RunResult {
  double wall_seconds = 0;
  double mcycles_per_sec = 0;
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t flits = 0;
  ExpressStats express;

  double MeanCorridorHops() const {
    return express.delivered > 0
               ? static_cast<double>(express.hops_sum) /
                     static_cast<double>(express.delivered)
               : 0;
  }
};

// Corridor sweep leg: four row-aligned echo pairs on an 8x8 board.
RunResult RunSweepPoint(Cycle period, bool express, Cycle run_cycles) {
  BenchBoardOptions options;
  options.width = 8;
  options.height = 8;
  options.tile_region_cells = 25'000;  // 64 tiles of 100k would not fit VU9P.
  BenchBoard bb(options);
  bb.board.mesh().SetExpressEnabled(express);
  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b5");

  auto pin = [](TileId tile) {
    DeployOptions o;
    o.tile = tile;
    return o;
  };

  // Odd rows: tiles 0-1 hold the standard OS services, so row 0 is taken.
  std::vector<PacedClient*> clients;
  for (const uint32_t row : {1u, 3u, 5u, 7u}) {
    ServiceId svc = 0;
    const TileId st = os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/4),
                                &svc, pin(row * 8 + 7));
    auto client = std::make_unique<PacedClient>(svc, period);
    clients.push_back(client.get());
    const TileId ct = os.Deploy(app, std::move(client), nullptr, pin(row * 8));
    if (st == kInvalidTile || ct == kInvalidTile) {
      std::fprintf(stderr, "B5 FAIL: deploy refused on row %u (svc tile %u, client tile %u)\n",
                   row, st, ct);
      std::exit(2);
    }
    (void)os.GrantSendToService(ct, svc);
  }

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  bb.sim.Run(run_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(run_cycles) / r.wall_seconds / 1e6 : 0;
  r.end_cycle = bb.sim.now();
  r.skipped_cycles = bb.sim.skipped_cycles();
  for (const PacedClient* c : clients) {
    r.sent += c->sent();
    r.received += c->received();
  }
  r.flits = bb.board.mesh().TotalFlitsRouted();
  r.express = bb.board.mesh().AggregateExpressStats();
  return r;
}

// Saturated guardrail leg: closed-loop pairs on the default 4x4 board.
RunResult RunSaturated(bool express, Cycle run_cycles) {
  BenchBoard bb;
  bb.board.mesh().SetExpressEnabled(express);
  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b5sat");

  std::vector<WindowedClient*> clients;
  for (uint32_t i = 0; i < 4; ++i) {
    ServiceId svc = 0;
    const TileId st = os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/0), &svc);
    auto client = std::make_unique<WindowedClient>(svc);
    clients.push_back(client.get());
    const TileId ct = os.Deploy(app, std::move(client));
    if (st == kInvalidTile || ct == kInvalidTile) {
      std::fprintf(stderr, "B5 FAIL: saturated deploy refused (pair %u)\n", i);
      std::exit(2);
    }
    (void)os.GrantSendToService(ct, svc);
  }

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  bb.sim.Run(run_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(run_cycles) / r.wall_seconds / 1e6 : 0;
  r.end_cycle = bb.sim.now();
  for (const WindowedClient* c : clients) {
    r.sent += c->sent();
    r.received += c->received();
  }
  r.flits = bb.board.mesh().TotalFlitsRouted();
  r.express = bb.board.mesh().AggregateExpressStats();
  return r;
}

bool CrossCheck(const char* label, const RunResult& on, const RunResult& off) {
  if (on.end_cycle == off.end_cycle && on.sent == off.sent &&
      on.received == off.received && on.flits == off.flits) {
    return true;
  }
  std::fprintf(stderr,
               "B5 FAIL: %s diverged (end %llu vs %llu, sent %llu vs %llu, recv "
               "%llu vs %llu, flits %llu vs %llu)\n",
               label, static_cast<unsigned long long>(on.end_cycle),
               static_cast<unsigned long long>(off.end_cycle),
               static_cast<unsigned long long>(on.sent),
               static_cast<unsigned long long>(off.sent),
               static_cast<unsigned long long>(on.received),
               static_cast<unsigned long long>(off.received),
               static_cast<unsigned long long>(on.flits),
               static_cast<unsigned long long>(off.flits));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool baseline_only = HasFlag(argc, argv, "--no-express");
  const Cycle sweep_cycles = smoke ? 400'000 : 4'000'000;
  const Cycle sat_cycles = smoke ? 200'000 : 2'000'000;

  std::printf("B5: express corridors vs cycle-accurate routing, by offered load\n");
  std::printf("(8x8 board, four 7-hop echo pairs, %u-byte payloads, %llu cycles "
              "per sweep point)\n\n",
              kPayloadBytes, static_cast<unsigned long long>(sweep_cycles));

  BenchJson json("b5_express");
  json.Param("payload_bytes", static_cast<uint64_t>(kPayloadBytes));
  json.Param("sweep_cycles", static_cast<uint64_t>(sweep_cycles));
  json.Param("sat_cycles", static_cast<uint64_t>(sat_cycles));
  json.Param("smoke", smoke ? 1 : 0);

  Table table("B5: simulated Mcycles per wall-second vs request period");
  table.SetHeader({"load", "period", "no-express Mcyc/s", "express Mcyc/s",
                   "speedup", "express hits", "mean hops"});

  struct Point {
    const char* label;
    Cycle period;
  };
  bool consistent = true;
  for (const Point p : {Point{"light", 600}, Point{"mid", 150}}) {
    const RunResult off = RunSweepPoint(p.period, /*express=*/false, sweep_cycles);
    if (baseline_only) {
      table.AddRow({p.label, Table::Int(p.period), Table::Num(off.mcycles_per_sec, 1),
                    "-", "-", "-", "-"});
      json.BeginRow();
      json.Metric("scenario", p.label);
      json.Metric("period", static_cast<uint64_t>(p.period));
      json.Metric("noexpress_mcycles_per_sec", off.mcycles_per_sec);
      continue;
    }
    const RunResult on = RunSweepPoint(p.period, /*express=*/true, sweep_cycles);
    consistent = CrossCheck(p.label, on, off) && consistent;
    const double speedup =
        off.mcycles_per_sec > 0 ? on.mcycles_per_sec / off.mcycles_per_sec : 0;
    table.AddRow({p.label, Table::Int(p.period), Table::Num(off.mcycles_per_sec, 1),
                  Table::Num(on.mcycles_per_sec, 1), Table::Num(speedup, 2),
                  Table::Int(on.express.delivered),
                  Table::Num(on.MeanCorridorHops(), 1)});
    json.BeginRow();
    json.Metric("scenario", p.label);
    json.Metric("period", static_cast<uint64_t>(p.period));
    json.Metric("noexpress_mcycles_per_sec", off.mcycles_per_sec);
    json.Metric("express_mcycles_per_sec", on.mcycles_per_sec);
    json.Metric("speedup", speedup);
    json.Metric("express_hits", on.express.delivered);
    json.Metric("express_launches", on.express.launches);
    json.Metric("materializations", on.express.materializations);
    json.Metric("mean_corridor_hops", on.MeanCorridorHops());
    json.Metric("express_flits", on.express.flits_delivered);
    json.Metric("responses", on.received);
  }
  table.Print();

  // Saturated guardrail: queues never hold a lone packet, corridors never
  // launch, and express must cost nothing (target >= 0.97x).
  const RunResult soff = RunSaturated(/*express=*/false, sat_cycles);
  if (!baseline_only) {
    const RunResult son = RunSaturated(/*express=*/true, sat_cycles);
    consistent = CrossCheck("saturated", son, soff) && consistent;
    const double ratio =
        soff.mcycles_per_sec > 0 ? son.mcycles_per_sec / soff.mcycles_per_sec : 0;
    Table sat_table("B5: saturated guardrail (target >= 0.97x)");
    sat_table.SetHeader({"config", "no-express Mcyc/s", "express Mcyc/s", "ratio",
                         "express hits"});
    sat_table.AddRow({"saturated", Table::Num(soff.mcycles_per_sec, 1),
                      Table::Num(son.mcycles_per_sec, 1), Table::Num(ratio, 2),
                      Table::Int(son.express.delivered)});
    sat_table.Print();
    json.BeginRow();
    json.Metric("scenario", "saturated");
    json.Metric("noexpress_mcycles_per_sec", soff.mcycles_per_sec);
    json.Metric("express_mcycles_per_sec", son.mcycles_per_sec);
    json.Metric("speedup", ratio);
    json.Metric("express_hits", son.express.delivered);
    json.Metric("express_launches", son.express.launches);
    json.Metric("materializations", son.express.materializations);
    json.Metric("mean_corridor_hops", son.MeanCorridorHops());
  }

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  return consistent ? 0 : 1;
}
