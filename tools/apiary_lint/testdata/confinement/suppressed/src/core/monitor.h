// Suppressed: a deliberate cross-domain pointer, waived with its reason.
#ifndef SRC_CORE_MONITOR_H_
#define SRC_CORE_MONITOR_H_

namespace apiary {

class Router;

class Monitor {
 private:
  // NOLINTNEXTLINE(apiary-domain-confinement): bring-up shim, removed once the channel type lands
  Router* router_ = nullptr;
};

}  // namespace apiary

#endif  // SRC_CORE_MONITOR_H_
