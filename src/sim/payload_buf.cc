#include "src/sim/payload_buf.h"

namespace apiary {
namespace {

// Size-classed chunk freelists: 128B, 256B, ... 1MB. A retired chunk parks
// in its class's freelist; the next payload that outgrows its inline
// storage takes it back instead of calling operator new. Larger-than-1MB
// requests (none exist today — the NI bounds packets well below that) fall
// through to plain new/delete and are counted as allocs.
constexpr size_t kMinChunkBytes = 128;
constexpr size_t kMaxChunkBytes = 1u << 20;
constexpr int kNumClasses = 14;  // 128 << 13 == 1MB.

int ClassForBytes(size_t bytes) {
  size_t cap = kMinChunkBytes;
  for (int c = 0; c < kNumClasses; ++c) {
    if (bytes <= cap) {
      return c;
    }
    cap <<= 1;
  }
  return -1;  // Oversized: unpooled.
}

size_t ClassBytes(int cls) { return kMinChunkBytes << cls; }

struct Arena {
  std::vector<uint8_t*> freelists[kNumClasses];
  PayloadArenaStats stats;
  bool enabled = true;

  // Parked chunks are a cache, not a leak: hand them back at exit so the
  // sanitized CI job sees a clean shutdown.
  ~Arena() { Trim(); }

  uint8_t* Acquire(size_t min_bytes, size_t* capacity) {
    ++stats.chunk_acquires;
    ++stats.live_chunks;
    const int cls = ClassForBytes(min_bytes);
    if (cls < 0) {
      ++stats.chunk_allocs;
      *capacity = min_bytes;
      return new uint8_t[min_bytes];
    }
    *capacity = ClassBytes(cls);
    if (enabled && !freelists[cls].empty()) {
      uint8_t* chunk = freelists[cls].back();
      freelists[cls].pop_back();
      stats.freelist_bytes -= ClassBytes(cls);
      ++stats.chunk_reuses;
      return chunk;
    }
    ++stats.chunk_allocs;
    return new uint8_t[*capacity];
  }

  void Release(uint8_t* chunk, size_t capacity) {
    ++stats.chunk_releases;
    --stats.live_chunks;
    const int cls = ClassForBytes(capacity);
    if (!enabled || cls < 0 || ClassBytes(cls) != capacity) {
      delete[] chunk;
      return;
    }
    freelists[cls].push_back(chunk);
    stats.freelist_bytes += capacity;
  }

  void Trim() {
    for (auto& list : freelists) {
      for (uint8_t* chunk : list) {
        delete[] chunk;
      }
      list.clear();
    }
    stats.freelist_bytes = 0;
  }
};

Arena& TheArena() {
  static Arena arena;
  return arena;
}

}  // namespace

void PayloadBuf::Grow(size_t min_capacity) {
  // Geometric growth, then rounded up to the arena's size class.
  size_t want = capacity_ * 2;
  if (want < min_capacity) {
    want = min_capacity;
  }
  size_t new_capacity = 0;
  uint8_t* chunk = TheArena().Acquire(want, &new_capacity);
  std::memcpy(chunk, data_, size_);
  if (data_ != inline_) {
    TheArena().Release(data_, capacity_);
  }
  data_ = chunk;
  capacity_ = new_capacity;
}

void PayloadBuf::ReleaseHeap() {
  if (data_ != inline_) {
    TheArena().Release(data_, capacity_);
    data_ = inline_;
    capacity_ = kInlineBytes;
    size_ = 0;
  }
}

void PayloadBuf::SetArenaEnabled(bool enabled) { TheArena().enabled = enabled; }

const PayloadArenaStats& PayloadBuf::ArenaStats() { return TheArena().stats; }

void PayloadBuf::ResetArenaStats() {
  PayloadArenaStats& stats = TheArena().stats;
  const uint64_t live = stats.live_chunks;
  const uint64_t parked = stats.freelist_bytes;
  stats = PayloadArenaStats{};
  stats.live_chunks = live;
  stats.freelist_bytes = parked;
}

void PayloadBuf::TrimArena() { TheArena().Trim(); }

}  // namespace apiary
