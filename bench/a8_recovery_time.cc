// Ablation A8: service recovery time after a silent fault — cold partial
// reconfiguration vs a pre-provisioned hot standby tile.
//
// Section 4.4 gives Apiary the pieces (watchdog detection, fail-stop,
// reconfigurable tiles); this bench measures the resulting availability
// story end to end: a service wedges mid-run, and we time every phase until
// a client transaction succeeds again. The hot-standby row exploits logical
// service naming (Section 4.3): the kernel rebinds the name to a spare tile
// and grants a fresh capability — no bitstream load on the critical path.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/services/mgmt_service.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

// Closed-loop client that records the cycle of each successful op.
class AvailClient : public Accelerator {
 public:
  explicit AvailClient(ServiceId svc) : svc_(svc) {}
  void Tick(TileApi& api) override {
    if (in_flight_ && api.now() < timeout_at_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {1};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      in_flight_ = true;
      timeout_at_ = api.now() + 10000;
    } else {
      in_flight_ = false;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kResponse) {
      return;
    }
    in_flight_ = false;
    if (msg.status == MsgStatus::kOk) {
      last_ok = api.now();
      ++ok_count;
    }
  }
  std::string name() const override { return "avail_client"; }
  uint32_t LogicCellCost() const override { return 1000; }
  Cycle last_ok = 0;
  uint64_t ok_count = 0;

 private:
  ServiceId svc_;
  bool in_flight_ = false;
  Cycle timeout_at_ = 0;
};

struct Timeline {
  Cycle last_ok_before = 0;
  Cycle detected = 0;
  Cycle serving_again = 0;
};

Timeline Run(bool hot_standby, Cycle reconfig_cycles) {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  auto* mgmt = new MgmtService(&os);
  os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));

  AppId app = os.CreateApp("svc");
  ServiceId svc = 0;
  auto* wedge = new WedgeAccelerator(/*healthy=*/100, kInvalidCapRef,
                                     /*heartbeat_period=*/500);
  const TileId wt = os.Deploy(app, std::unique_ptr<Accelerator>(wedge), &svc);
  (void)os.GrantSendToService(wt, kMgmtService);

  TileId standby = kInvalidTile;
  if (hot_standby) {
    ServiceId spare_svc = 0;
    standby = os.Deploy(app, std::make_unique<EchoAccelerator>(10), &spare_svc);
  }
  auto* client = new AvailClient(svc);
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(ct, svc);

  Timeline tl;
  bool recovered_kicked = false;
  bb.sim.RunUntil(
      [&] {
        if (tl.detected == 0 &&
            os.monitor(wt).fault_state() == TileFaultState::kStopped) {
          tl.detected = bb.sim.now();
          tl.last_ok_before = client->last_ok;
          // Kernel reaction: either rebind to the hot standby or reload the
          // tile's bitstream.
          if (hot_standby) {
            const CapRef old = os.monitor(ct).cap_table().FindEndpointForService(svc);
            os.Revoke(ct, old);
            os.RebindService(svc, standby);
            (void)os.GrantSendToService(ct, svc);
          } else {
            os.Reconfigure(wt, std::make_unique<EchoAccelerator>(10), /*immediate=*/false);
          }
          recovered_kicked = true;
        }
        if (recovered_kicked && tl.serving_again == 0 &&
            client->last_ok > tl.detected) {
          tl.serving_again = client->last_ok;
        }
        return tl.serving_again != 0;
      },
      reconfig_cycles + 5'000'000);
  return tl;
}

}  // namespace

int main() {
  std::printf("A8: service recovery after a silent wedge (watchdog deadline 2000 cyc,\n");
  std::printf("partial reconfiguration 4M cycles = 16 ms)\n");

  Table table("A8: outage timeline (cycles; 4ns each)");
  table.SetHeader({"strategy", "detected after fault", "serving again after detection",
                   "total outage (ms)"});
  {
    const Timeline cold = Run(/*hot_standby=*/false, 4'000'000);
    table.AddRow({"cold: reconfigure same tile",
                  Table::Int(cold.detected - cold.last_ok_before),
                  Table::Int(cold.serving_again - cold.detected),
                  Table::Num((cold.serving_again - cold.last_ok_before) * 4 / 1e6, 2)});
  }
  {
    const Timeline hot = Run(/*hot_standby=*/true, 4'000'000);
    table.AddRow({"hot: rebind to standby tile",
                  Table::Int(hot.detected - hot.last_ok_before),
                  Table::Int(hot.serving_again - hot.detected),
                  Table::Num((hot.serving_again - hot.last_ok_before) * 4 / 1e6, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: detection (watchdog deadline) is identical; the cold path's\n"
      "outage is dominated by the 16ms bitstream load, while the hot standby resumes\n"
      "in microseconds because failover is just a registry rebind plus one\n"
      "capability grant — the payoff of logical service naming (Section 4.3) plus\n"
      "fail-stop tiles (Section 4.4).\n");
  return 0;
}
