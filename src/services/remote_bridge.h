// The Apiary remote bridge: location-transparent service invocation across
// boards (or to remote CPU-hosted services).
//
// Section 6, open question 3: "Ideally, we could take advantage of the
// network capabilities of Apiary and place the service on any remote CPU,
// maintaining the ability to use an FPGA independent of its on-node CPU."
// The bridge realizes that: a local accelerator calls the bridge exactly
// like any service; the bridge tunnels the request in an Ethernet frame to
// the peer board's bridge, which invokes the target service with a local
// capability and tunnels the response back. Neither endpoint accelerator
// changes — the call chain is
//   app -> bridgeA -> netsvcA ==wire== netsvcB -> bridgeB -> service (and back).
//
// Exposure is explicit: a board's kernel decides which services the bridge
// may invoke on behalf of remote callers (ExposeService), so the capability
// discipline extends across the wire.
#ifndef SRC_SERVICES_REMOTE_BRIDGE_H_
#define SRC_SERVICES_REMOTE_BRIDGE_H_

#include <map>

#include "src/core/accelerator.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

// Local request to the bridge:
//   kOpRemoteCall: u32 peer_board (external address), u32 peer_bridge_service,
//                  u32 target_service, u16 inner_opcode, inner payload.
// Reply mirrors the remote service's status + payload.
inline constexpr uint16_t kOpRemoteCall = 0x0701;

class RemoteBridge : public Accelerator {
 public:
  // Kernel-side wiring: allow remote callers to reach `service` through the
  // endpoint capability this tile holds for it.
  void ExposeService(ServiceId service, CapRef endpoint) {
    exposed_[service] = endpoint;
  }

  void OnBoot(TileApi& api) override;
  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "remote_bridge"; }
  uint32_t LogicCellCost() const override { return 10000; }

  const CounterSet& counters() const { return counters_; }

 private:
  // Wire format inside frames (after the u32 board-routing word consumed by
  // the network service): u8 type, u64 tunnel_id, then per type:
  //   kCall:     u32 reply_bridge_service, u32 target_service, u16 opcode,
  //              payload
  //   kResponse: u8 status, payload
  enum WireType : uint8_t { kCall = 1, kResponse = 2 };

  struct OutboundCall {
    Message local_request;  // For Reply() to the local caller.
  };
  struct InboundCall {
    uint32_t peer_board;
    uint32_t reply_bridge_service;
    uint64_t tunnel_id;
  };

  void HandleLocalCall(const Message& msg, TileApi& api);
  void HandleFrame(const Message& msg, TileApi& api);
  void HandleServiceResponse(const Message& msg, TileApi& api);
  void SendFrame(uint32_t peer_board, uint32_t peer_service,
                 const std::vector<uint8_t>& body, TileApi& api);
  void ReplyError(const Message& request, TileApi& api, MsgStatus status);

  CapRef netsvc_ = kInvalidCapRef;
  bool registered_ = false;
  ServiceId my_service_ = kInvalidService;
  std::map<ServiceId, CapRef> exposed_;
  uint64_t next_tunnel_ = 1;
  uint64_t next_local_ = 1;
  std::map<uint64_t, OutboundCall> outbound_;  // tunnel_id -> caller.
  std::map<uint64_t, InboundCall> inbound_;    // local request_id -> peer.
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_REMOTE_BRIDGE_H_
