// Self-healing supervisor: the kernel-side control loop that turns detected
// tile faults into automatic recovery (Section 4.4's fault model, closed
// into a loop).
//
// Detection feeds in two ways: the MgmtService watchdog forwards missed
// heartbeats (silent wedges), and the supervisor's own poll notices tiles
// that fail-stopped themselves (crash faults). Recovery is policy-driven:
//   * hot-standby failover when a pre-configured spare exists for the
//     service (RebindService + capability re-grant; ~instant),
//   * otherwise fail-stop -> partial reconfiguration -> capability
//     reinstall (the full cold path, minutes of simulated time),
//   * exponential backoff between repeated restarts of the same tile,
//   * quarantine for tiles that crash-loop faster than the policy allows.
#ifndef SRC_SERVICES_SUPERVISOR_H_
#define SRC_SERVICES_SUPERVISOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/core/kernel.h"
#include "src/sim/clocked.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

struct SupervisorConfig {
  // How often the supervisor scans managed tiles for self-fail-stops.
  Cycle poll_period = 256;
  // Backoff before the 2nd, 3rd, ... restart inside one crash-loop window:
  // base, 2*base, 4*base, ... capped at base << backoff_max_doublings.
  Cycle backoff_base_cycles = 50'000;
  uint32_t backoff_max_doublings = 6;
  // More than this many faults inside `crash_loop_window` quarantines the
  // tile (no further restarts; requires operator intervention).
  uint32_t quarantine_after = 4;
  Cycle crash_loop_window = 1'500'000;
};

class Supervisor : public Clocked {
 public:
  // Recovery state of a managed tile. Public so orchestration (placement,
  // reconfiguration scheduling — src/orch) can refuse to target a region the
  // supervisor is mid-way through healing: scaling and recovery must never
  // race on one tile.
  enum class TileState : uint8_t {
    kHealthy = 0,
    kBackoff = 1,        // Fault seen; waiting out the restart delay.
    kReconfiguring = 2,  // Fresh bitstream loading.
    kQuarantined = 3,    // Crash-looped past policy; left fail-stopped.
  };

  // Builds a replacement accelerator for a tile being recovered.
  using AccelFactory = std::function<std::unique_ptr<Accelerator>()>;

  Supervisor(ApiaryOs* os, SupervisorConfig config = SupervisorConfig{});

  // Puts `tile` under supervision; `factory` supplies fresh logic for each
  // recovery reconfiguration.
  void Manage(TileId tile, AccelFactory factory);

  // Registers `standby_tile` (already configured with equivalent logic) as
  // the hot spare for `service`; consumed by the first failover.
  void SetStandby(ServiceId service, TileId standby_tile);

  // Fault notification: from MgmtService's watchdog, from the poll loop, or
  // from any other detector. Idempotent while a recovery is in progress.
  void OnTileFault(TileId tile, const std::string& reason);

  // Policy escalation: fail-stop `tile` and leave it quarantined (no
  // restarts) until operator intervention. Used by the tenant manager for
  // repeat quota offenders; the crash-loop path reaches the same state
  // automatically.
  void Quarantine(TileId tile, const std::string& reason);

  void Tick(Cycle now) override;
  // Wakes for backoff expiries, and for the next poll multiple while any
  // healthy-state managed tile sits fail-stopped (the poll's only effect).
  // Reconfiguration completion needs no entry of its own: the recovering
  // tile declares its reconfig-done cycle, every block ticks on executed
  // cycles, and the supervisor (registered after the tiles) observes the
  // completed tile in that same cycle — exactly as in a cycle-by-cycle run.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  // Keeps the cached clock at resume-1 so externally driven faults
  // (MgmtService watchdog -> OnTileFault) stamp identical detection times.
  void OnFastForward(Cycle resume_cycle) override { now_ = resume_cycle - 1; }
  std::string DebugName() const override { return "supervisor"; }
  // Tick caches the clock that externally driven fault reports (OnTileFault
  // from watchdog ticks) stamp into detection times, and the quoted
  // same-cycle observation of reconfig completions depends on executing
  // every cycle — pinned, never parked. NextActivity still bounds skips.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kEveryCycle;
  }

  const CounterSet& counters() const { return counters_; }
  // Fault-detection to back-in-service time, per recovered fault.
  const Histogram& recovery_cycles() const { return recovery_cycles_; }
  bool quarantined(TileId tile) const;
  uint64_t restarts(TileId tile) const;
  // Recovery state of `tile`; kHealthy for tiles not under supervision.
  TileState tile_state(TileId tile) const;
  // True when no managed tile is mid-recovery or quarantined.
  bool AllHealthy() const;

 private:
  struct Managed {
    AccelFactory factory;
    TileState state = TileState::kHealthy;
    uint64_t restarts = 0;
    uint32_t recent_faults = 0;   // Faults inside the current window.
    Cycle window_start = 0;
    Cycle fault_detected_at = 0;
    Cycle restart_at = 0;
    // When the tile's service failed over to a spare, the recovered tile
    // becomes the service's next standby instead of rejoining directly.
    ServiceId standby_for = kInvalidService;
  };

  void BeginRecovery(TileId tile, Managed& m, Cycle now);
  // True when no tile on the board is mid-reconfiguration: the recovery
  // reconfiguration shares the single ICAP with the orchestrator's
  // scheduler, so a due restart waits its turn instead of double-claiming
  // the port.
  bool IcapFree() const;

  ApiaryOs* os_;
  SupervisorConfig config_;
  std::map<TileId, Managed> managed_;
  std::map<ServiceId, TileId> standbys_;
  Cycle now_ = 0;
  CounterSet counters_;
  Histogram recovery_cycles_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_SUPERVISOR_H_
