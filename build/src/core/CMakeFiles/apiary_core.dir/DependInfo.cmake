
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capability.cc" "src/core/CMakeFiles/apiary_core.dir/capability.cc.o" "gcc" "src/core/CMakeFiles/apiary_core.dir/capability.cc.o.d"
  "/root/repo/src/core/kernel.cc" "src/core/CMakeFiles/apiary_core.dir/kernel.cc.o" "gcc" "src/core/CMakeFiles/apiary_core.dir/kernel.cc.o.d"
  "/root/repo/src/core/message.cc" "src/core/CMakeFiles/apiary_core.dir/message.cc.o" "gcc" "src/core/CMakeFiles/apiary_core.dir/message.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/apiary_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/apiary_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/tile.cc" "src/core/CMakeFiles/apiary_core.dir/tile.cc.o" "gcc" "src/core/CMakeFiles/apiary_core.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/apiary_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apiary_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/apiary_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
