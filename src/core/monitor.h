// The per-tile Apiary monitor: the trusted interposition point between an
// untrusted accelerator and the NoC (Figure 1).
//
// "The Apiary monitor serves [as] an accelerator's interface to the OS, so
// all messages go through it" (Section 4.1). The monitor implements:
//   * the standard TileApi every accelerator programs against (4.3),
//   * capability-checked sends with monitor-held capability tables (4.6),
//   * the service-name -> physical-tile indirection (4.3),
//   * per-flow token-bucket rate limiting (4.5),
//   * incoming access control with implicit request/reply rights (4.5),
//   * fail-stop fault containment: drain, sink, and bounce with errors (4.4),
//   * message-level tracing (Section 3, programmability goal).
#ifndef SRC_CORE_MONITOR_H_
#define SRC_CORE_MONITOR_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/core/accelerator.h"
#include "src/core/capability.h"
#include "src/core/message.h"
#include "src/core/trace.h"
#include "src/noc/network_interface.h"
#include "src/noc/rate_limiter.h"
#include "src/sim/clocked.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

enum class TileFaultState : uint8_t {
  kHealthy = 0,
  kStopped = 1,  // Fail-stopped: messages sunk, senders bounced with errors.
};

struct MonitorConfig {
  uint32_t cap_entries = 64;
  uint32_t inbox_messages = 256;
  uint32_t outbox_messages = 16;
  // Pipeline latency the monitor adds to each outgoing message (capability
  // CAM lookup + header stamp). Two cycles matches a small two-stage check.
  Cycle send_pipeline_cycles = 2;
  size_t trace_capacity = 256;
};

class Monitor : public TileApi {
 public:
  Monitor(TileId tile, NetworkInterface* ni, MonitorConfig config);

  // ------------------------------------------------------------------
  // Trusted (kernel-side) configuration interface.
  // ------------------------------------------------------------------
  CapRef InstallCap(const Capability& cap);
  bool RevokeCap(CapRef ref);
  void RevokeAllCaps();
  void AllowSender(TileId src) { allowed_senders_[src] = true; }
  void DisallowSender(TileId src) { allowed_senders_.erase(src); }
  void SetRateLimit(uint64_t flits_per_1k_cycles, uint64_t burst_flits);
  void ClearRateLimit() { limiter_ = TokenBucket(); }
  // Tenant-shared injection budget: a bucket owned by the tenant manager
  // and shared by every monitor in the tenant, drawn down alongside the
  // per-tile limiter. nullptr clears it. The monitor never owns the bucket.
  void SetSharedLimiter(TokenBucket* limiter) { shared_limiter_ = limiter; }
  // Arbitration class stamped on every packet this monitor injects (see
  // NocPacket::arb_class). Class 0 is the default/kernel class.
  void SetArbClass(uint8_t cls) { arb_class_ = cls; }
  uint8_t arb_class() const { return arb_class_; }
  void SetIdentity(AppId app, ServiceId service);

  // Wake channel to the owning Tile. Fault-plane entry points (RaiseFault,
  // FailStop) may be driven externally — injectors, the kernel, watchdogs —
  // while the tile sits parked; the state they flip is only acted on at the
  // tile's next tick, so they announce themselves through this hint.
  void SetOwnerWake(WakeHint hint) { owner_wake_ = hint; }

  // Fail-stop: sink the inbox/outbox and bounce future traffic (4.4).
  void FailStop(const std::string& reason);
  // Clears the fault state after the tile is reconfigured with fresh logic.
  void Restart();
  TileFaultState fault_state() const { return fault_state_; }
  const std::string& fault_reason() const { return fault_reason_; }

  // ------------------------------------------------------------------
  // Per-cycle processing, driven by the owning Tile.
  // ------------------------------------------------------------------
  // Updates the monitor's clock, drains the NI, applies incoming policy.
  void BeginCycle(Cycle now);
  // Moves pipeline-ready outbound messages into the NI.
  void FlushOutbox();

  // Quiescence support for the owning Tile (same contract as
  // Clocked::NextActivity): the earliest cycle BeginCycle/FlushOutbox has
  // work — NI delivery to drain, or a pipelined outbound becoming ready.
  [[nodiscard]] Cycle NextActivity(Cycle now) const {
    if (ni_->HasDeliverable()) {
      return now;
    }
    if (!outbox_.empty()) {
      // Outbox ready times are monotonic (stamped at enqueue), so the front
      // is the earliest; a backpressured front is retried every cycle.
      return outbox_.front().ready_at > now ? outbox_.front().ready_at : now;
    }
    return kNoActivity;
  }

  // The owning Tile fast-forwarded: advance the cached clock to the value
  // the last pre-resume BeginCycle would have left (resume - 1), so
  // external callers (kernel Configure, event callbacks) observe the same
  // timestamps as a cycle-by-cycle run.
  void OnFastForward(Cycle resume_cycle) { now_ = resume_cycle - 1; }

  // Delivered-but-unconsumed messages awaiting the accelerator's Receive().
  bool HasPendingInbox() const { return !inbox_.empty(); }

  // ------------------------------------------------------------------
  // TileApi (the untrusted accelerator side).
  // ------------------------------------------------------------------
  SendResult Send(Message msg, CapRef endpoint, CapRef mem, CapRef mem2) override;
  using TileApi::Send;
  SendResult Reply(const Message& request, Message response, CapRef mem) override;
  using TileApi::Reply;
  std::optional<Message> Receive() override;
  CapRef LookupService(ServiceId service) override;
  Cycle now() const override { return now_; }
  TileId tile() const override { return tile_; }
  AppId app() const override { return app_; }
  ServiceId service() const override { return service_; }
  void RaiseFault(const std::string& reason) override;

  // ------------------------------------------------------------------
  // Introspection.
  // ------------------------------------------------------------------
  const CounterSet& counters() const { return counters_; }
  const TraceRing& trace() const { return trace_; }
  const CapabilityTable& cap_table() const { return cap_table_; }
  bool accelerator_faulted() const { return accelerator_faulted_; }
  uint64_t MonitorLogicCells() const;

 private:
  SendResult SendInternal(Message msg, TileId dst_tile, CapRef mem, CapRef mem2);
  // Fills `out` from a presented memory capability; false if invalid.
  bool FillGrant(CapRef mem, SegmentGrant* out);
  void DeliverIncoming(Message msg);
  void BounceWithError(const Message& request, MsgStatus status);
  bool EnqueuePacket(const Message& msg, TileId dst_tile);
  void Trace(TraceEvent event, TileId peer, ServiceId service, uint16_t opcode,
             MsgStatus status);

  TileId tile_;
  NetworkInterface* ni_;
  MonitorConfig config_;
  Cycle now_ = 0;

  AppId app_ = kInvalidApp;
  ServiceId service_ = kInvalidService;

  CapabilityTable cap_table_;
  std::map<TileId, bool> allowed_senders_;
  // Implicit IPC rights: requests we delivered confer reply rights; requests
  // we sent make us willing to accept responses.
  std::map<TileId, uint64_t> reply_rights_;
  std::map<TileId, uint64_t> pending_responses_;

  TokenBucket limiter_;
  // Tenant-wide budget, not owned: the kernel installs one bucket across a
  // tenant's monitors by design (enforced aggregate NoC share).
  // NOLINTNEXTLINE(apiary-domain-confinement): deliberate tenant-scoped sharing; a sharded engine must split this into per-domain sub-buckets (ROADMAP item 1)
  TokenBucket* shared_limiter_ = nullptr;
  uint8_t arb_class_ = 0;
  TileFaultState fault_state_ = TileFaultState::kHealthy;
  std::string fault_reason_;
  bool accelerator_faulted_ = false;
  WakeHint owner_wake_;

  std::deque<Message> inbox_;
  struct Outbound {
    Cycle ready_at;
    TileId dst_tile;
    Message msg;
  };
  std::deque<Outbound> outbox_;

  uint64_t next_auto_request_id_ = 1;
  CounterSet counters_;
  TraceRing trace_;
};

}  // namespace apiary

#endif  // SRC_CORE_MONITOR_H_
