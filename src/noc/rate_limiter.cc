#include "src/noc/rate_limiter.h"

#include <algorithm>

namespace apiary {

TokenBucket::TokenBucket(uint64_t tokens_per_1k_cycles, uint64_t burst_tokens)
    : unlimited_(false),
      rate_per_1k_(tokens_per_1k_cycles),
      burst_(burst_tokens),
      milli_tokens_(burst_tokens * 1000) {}

void TokenBucket::Refill(Cycle now) {
  if (now <= last_refill_) {
    return;
  }
  const Cycle elapsed = now - last_refill_;
  last_refill_ = now;
  milli_tokens_ = std::min(burst_ * 1000, milli_tokens_ + elapsed * rate_per_1k_);
}

bool TokenBucket::TryConsume(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Refill(now);
  if (milli_tokens_ >= cost * 1000) {
    milli_tokens_ -= cost * 1000;
    return true;
  }
  return false;
}

bool TokenBucket::WouldAllow(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Refill(now);
  return milli_tokens_ >= cost * 1000;
}

WindowMeter::WindowMeter(uint64_t quota_per_window, Cycle window_cycles)
    : unlimited_(false),
      quota_(quota_per_window),
      window_(window_cycles == 0 ? 1 : window_cycles) {}

void WindowMeter::Roll(Cycle now) {
  // Integer division puts the boundary cycle k*W in window k, never k-1:
  // the usage counter resets exactly when `now` first reaches the boundary,
  // so a grant made at that cycle is charged to the new window only.
  const Cycle idx = now / window_;
  if (idx != window_index_) {
    window_index_ = idx;
    used_ = 0;
  }
}

bool WindowMeter::TryConsume(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Roll(now);
  if (used_ + cost <= quota_) {
    used_ += cost;
    return true;
  }
  return false;
}

bool WindowMeter::WouldAllow(Cycle now, uint64_t cost) {
  if (unlimited_) {
    return true;
  }
  Roll(now);
  return used_ + cost <= quota_;
}

uint64_t WindowMeter::used(Cycle now) {
  if (unlimited_) {
    return 0;
  }
  Roll(now);
  return used_;
}

}  // namespace apiary
