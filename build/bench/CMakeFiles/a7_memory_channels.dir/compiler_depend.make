# Empty compiler generated dependencies file for a7_memory_channels.
# This may be replaced when dependencies are built.
