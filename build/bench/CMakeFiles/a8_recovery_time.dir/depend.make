# Empty dependencies file for a8_recovery_time.
# This may be replaced when dependencies are built.
