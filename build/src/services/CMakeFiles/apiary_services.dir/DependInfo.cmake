
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/dma_service.cc" "src/services/CMakeFiles/apiary_services.dir/dma_service.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/dma_service.cc.o.d"
  "/root/repo/src/services/gateway.cc" "src/services/CMakeFiles/apiary_services.dir/gateway.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/gateway.cc.o.d"
  "/root/repo/src/services/load_balancer.cc" "src/services/CMakeFiles/apiary_services.dir/load_balancer.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/load_balancer.cc.o.d"
  "/root/repo/src/services/memory_service.cc" "src/services/CMakeFiles/apiary_services.dir/memory_service.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/memory_service.cc.o.d"
  "/root/repo/src/services/mgmt_service.cc" "src/services/CMakeFiles/apiary_services.dir/mgmt_service.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/mgmt_service.cc.o.d"
  "/root/repo/src/services/name_service.cc" "src/services/CMakeFiles/apiary_services.dir/name_service.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/name_service.cc.o.d"
  "/root/repo/src/services/network_service.cc" "src/services/CMakeFiles/apiary_services.dir/network_service.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/network_service.cc.o.d"
  "/root/repo/src/services/remote_bridge.cc" "src/services/CMakeFiles/apiary_services.dir/remote_bridge.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/remote_bridge.cc.o.d"
  "/root/repo/src/services/transport.cc" "src/services/CMakeFiles/apiary_services.dir/transport.cc.o" "gcc" "src/services/CMakeFiles/apiary_services.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apiary_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/apiary_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/apiary_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apiary_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
