// Log-bucketed latency histogram (HdrHistogram-style), used for all latency
// and size distributions reported by the benchmark harnesses.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace apiary {

// Records nonnegative integer values (cycles, bytes, ...) with bounded
// relative error. Buckets are arranged as log2 major buckets each split into
// `kSubBuckets` linear sub-buckets, giving <= 1/kSubBuckets relative error.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  double StdDev() const;

  // Value at quantile q in [0, 1]; e.g. Percentile(0.99) is the p99.
  uint64_t Percentile(double q) const;

  // Convenience accessors used throughout the bench tables.
  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P90() const { return Percentile(0.90); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  // One-line summary: "n=..., mean=..., p50/p99/p999=.../.../..., max=...".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets -> ~3% error.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMajorBuckets = 64 - kSubBucketBits;

  static size_t BucketIndex(uint64_t value);
  // Representative (upper-edge) value of a bucket.
  static uint64_t BucketValue(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace apiary

#endif  // SRC_STATS_HISTOGRAM_H_
