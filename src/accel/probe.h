// ProbeAccelerator: a scriptable driver tile used by tests, benchmarks and
// examples — records everything it receives, sends queued messages on its
// next tick, optionally auto-replies to requests.
#ifndef SRC_ACCEL_PROBE_H_
#define SRC_ACCEL_PROBE_H_

#include <deque>
#include <tuple>
#include <vector>

#include "src/core/accelerator.h"

namespace apiary {

class ProbeAccelerator : public Accelerator {
 public:
  void OnMessage(const Message& msg, TileApi& api) override {
    received.push_back(msg);
    if (auto_reply && msg.kind == MsgKind::kRequest) {
      Message reply;
      reply.opcode = msg.opcode;
      reply.payload = msg.payload;
      api.Reply(msg, std::move(reply));
    }
  }

  void Tick(TileApi& api) override {
    booted = true;
    self = &api;
    while (!outbox.empty()) {
      auto [msg, endpoint, mem, mem2] = outbox.front();
      last_send_result = api.Send(std::move(msg), endpoint, mem, mem2);
      if (last_send_result.status == MsgStatus::kBackpressure ||
          last_send_result.status == MsgStatus::kRateLimited) {
        break;  // Transient: retry the same message next tick.
      }
      outbox.pop_front();
    }
  }

  std::string name() const override { return "probe"; }
  uint32_t LogicCellCost() const override { return 1000; }

  // Queues a message for sending on the next tick (from the tile's context).
  void EnqueueSend(Message msg, CapRef endpoint, CapRef mem = kInvalidCapRef,
                   CapRef mem2 = kInvalidCapRef) {
    outbox.push_back({std::move(msg), endpoint, mem, mem2});
  }

  bool auto_reply = false;
  bool booted = false;
  TileApi* self = nullptr;
  std::vector<Message> received;
  std::deque<std::tuple<Message, CapRef, CapRef, CapRef>> outbox;
  SendResult last_send_result;
};

}  // namespace apiary

#endif  // SRC_ACCEL_PROBE_H_
