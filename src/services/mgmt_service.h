// The Apiary management service: heartbeat watchdog, fault reporting, and
// cluster-visible counters — the "debugging/monitoring support [that] is
// essential in practice" (Section 1).
//
// Tiles under watch must heartbeat within their deadline; a missed deadline
// is treated as a wedged accelerator and the tile is fail-stopped through
// the kernel (Section 4.4's error-detection path for concurrent-only
// accelerators that will "never yield").
#ifndef SRC_SERVICES_MGMT_SERVICE_H_
#define SRC_SERVICES_MGMT_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/accelerator.h"
#include "src/core/kernel.h"
#include "src/services/opcodes.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

class Supervisor;

class MgmtService : public Accelerator {
 public:
  explicit MgmtService(ApiaryOs* os) : os_(os) {}

  // When set, watchdog trips route through the supervisor (which contains
  // the tile AND schedules its recovery) instead of a bare kernel FailStop.
  void SetSupervisor(Supervisor* supervisor) { supervisor_ = supervisor; }

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  // The watchdog sweep only acts when some armed entry crosses
  // last_heartbeat + deadline; the earliest such trip cycle bounds the
  // sleep. Heartbeats arrive as messages (executed cycles), pushing the
  // trip cycle out before it can be skipped past.
  // APIARY-WAKE(tile): heartbeats arrive through the owning Tile's NI sink
  // wake; between messages the trip deadline above bounds the park.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    Cycle next = kNoActivity;
    for (const auto& [tile, entry] : watched_) {
      if (entry.tripped || entry.deadline_cycles == 0) {
        continue;
      }
      const Cycle trip = entry.last_heartbeat + entry.deadline_cycles + 1;
      const Cycle at = trip > now ? trip : now;
      next = at < next ? at : next;
    }
    return next;
  }

  std::string name() const override { return "mgmt_service"; }
  uint32_t LogicCellCost() const override { return 6000; }

  const CounterSet& counters() const { return counters_; }
  const std::vector<std::string>& fault_log() const { return fault_log_; }

  // Kernel-side configuration: watch `tile` with the given deadline.
  void Watch(TileId tile, Cycle deadline_cycles);

 private:
  struct WatchEntry {
    Cycle deadline_cycles = 0;
    Cycle last_heartbeat = 0;
    bool tripped = false;
  };

  ApiaryOs* os_;
  Supervisor* supervisor_ = nullptr;
  std::map<TileId, WatchEntry> watched_;
  std::vector<std::string> fault_log_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_MGMT_SERVICE_H_
