#include "src/mem/page_table.h"

namespace apiary {

PageTable::PageTable(PageTableConfig config) : config_(config) {}

void PageTable::Map(uint64_t vpn, uint64_t pfn) { mappings_[vpn] = pfn; }

void PageTable::Unmap(uint64_t vpn) {
  mappings_.erase(vpn);
  auto it = tlb_index_.find(vpn);
  if (it != tlb_index_.end()) {
    tlb_lru_.erase(it->second);
    tlb_index_.erase(it);
  }
}

bool PageTable::TlbLookup(uint64_t vpn) {
  auto it = tlb_index_.find(vpn);
  if (it == tlb_index_.end()) {
    return false;
  }
  tlb_lru_.splice(tlb_lru_.begin(), tlb_lru_, it->second);
  return true;
}

void PageTable::TouchTlb(uint64_t vpn) {
  if (TlbLookup(vpn)) {
    return;
  }
  tlb_lru_.push_front(vpn);
  tlb_index_[vpn] = tlb_lru_.begin();
  if (tlb_lru_.size() > config_.tlb_entries) {
    tlb_index_.erase(tlb_lru_.back());
    tlb_lru_.pop_back();
  }
}

std::optional<PageTable::Translation> PageTable::Translate(uint64_t vaddr) {
  const uint64_t vpn = vaddr / config_.page_bytes;
  const uint64_t offset = vaddr % config_.page_bytes;
  auto map_it = mappings_.find(vpn);
  if (map_it == mappings_.end()) {
    counters_.Add("pt.faults");
    return std::nullopt;
  }
  Translation result;
  result.physical_addr = map_it->second * config_.page_bytes + offset;
  if (TlbLookup(vpn)) {
    counters_.Add("pt.tlb_hits");
    result.latency = config_.tlb_hit_cycles;
    result.tlb_hit = true;
  } else {
    counters_.Add("pt.tlb_misses");
    result.latency = config_.tlb_hit_cycles +
                     static_cast<Cycle>(config_.levels) * config_.cycles_per_level;
    result.tlb_hit = false;
    TouchTlb(vpn);
  }
  return result;
}

}  // namespace apiary
