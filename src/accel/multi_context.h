// Multi-context accelerator host: Apiary's process abstraction.
//
// Section 4.2: "we define our process granularity as one user context
// running on one accelerator... Processes or contexts on the same physical
// accelerator are mutually trusting, but should still be fault-isolated."
// Section 4.4: "If an error occurs in one user context within an
// accelerator, other independent processes on the accelerator can keep
// running" — achievable because this host is preemptible: each context's
// architectural state is externalized, so a faulty context is swapped out
// (marked dead and answered with errors) while its siblings continue.
//
// Messages are routed to contexts by the Message::dst_process field.
#ifndef SRC_ACCEL_MULTI_CONTEXT_H_
#define SRC_ACCEL_MULTI_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

struct ContextResult {
  MsgStatus status = MsgStatus::kOk;
  PayloadBuf payload;
  // True when the context hit an unrecoverable internal error; the host
  // fault policy decides whether only this context dies or the whole tile.
  bool fault = false;
};

// One user context: pure request->response logic with externalizable state.
class ContextLogic {
 public:
  virtual ~ContextLogic() = default;
  virtual ContextResult OnRequest(uint16_t opcode, const PayloadBuf& payload) = 0;
  virtual std::vector<uint8_t> SaveState() { return {}; }
  virtual void RestoreState(std::span<const uint8_t> state) { (void)state; }
  virtual std::string name() const = 0;
};

class MultiContextHost : public Accelerator {
 public:
  // When true (the preemptible model), a faulting context is individually
  // killed; when false (concurrent-only), any context fault fail-stops the
  // whole tile via RaiseFault — the two models of Section 4.4.
  explicit MultiContextHost(bool per_context_isolation = true)
      : per_context_isolation_(per_context_isolation) {}

  // Returns the ProcessId messages must carry to reach this context.
  ProcessId AddContext(std::unique_ptr<ContextLogic> logic);

  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "multi_context_host"; }
  uint32_t LogicCellCost() const override { return 25000; }

  bool IsPreemptible() const override { return per_context_isolation_; }
  std::vector<uint8_t> SaveState() override;
  void RestoreState(std::span<const uint8_t> state) override;

  size_t num_contexts() const { return contexts_.size(); }
  bool context_alive(ProcessId pid) const;
  const CounterSet& counters() const { return counters_; }

 private:
  struct Slot {
    std::unique_ptr<ContextLogic> logic;
    bool alive = true;
    uint64_t served = 0;
  };

  bool per_context_isolation_;
  std::vector<Slot> contexts_;
  CounterSet counters_;
};

// --- Stock contexts used by tests, benches and examples. ---

// Echoes request payloads.
class EchoContext : public ContextLogic {
 public:
  ContextResult OnRequest(uint16_t opcode, const PayloadBuf& payload) override {
    (void)opcode;
    return ContextResult{MsgStatus::kOk, payload, false};
  }
  std::string name() const override { return "echo_ctx"; }
};

// Stateful accumulator: payload u64 delta -> reply u64 running total. State
// survives preemption via Save/Restore.
class CounterContext : public ContextLogic {
 public:
  ContextResult OnRequest(uint16_t opcode, const PayloadBuf& payload) override;
  std::vector<uint8_t> SaveState() override;
  void RestoreState(std::span<const uint8_t> state) override;
  std::string name() const override { return "counter_ctx"; }
  uint64_t total() const { return total_; }

 private:
  uint64_t total_ = 0;
};

// Faults after serving N requests.
class FaultyContext : public ContextLogic {
 public:
  explicit FaultyContext(uint64_t healthy_requests) : healthy_(healthy_requests) {}
  ContextResult OnRequest(uint16_t opcode, const PayloadBuf& payload) override;
  std::string name() const override { return "faulty_ctx"; }

 private:
  uint64_t healthy_;
  uint64_t served_ = 0;
};

}  // namespace apiary

#endif  // SRC_ACCEL_MULTI_CONTEXT_H_
