// apiary_lint CLI.
//
// Usage: apiary_lint [--repo-root <dir>] [--json <file>] <path>...
//
// Each <path> (a file or directory, relative to the repo root unless
// absolute) is scanned for C++ sources; all checks run over the combined
// corpus. --json additionally writes the findings as a JSON array (one
// object per finding: file/line/check/message) for CI problem matchers
// and artifacts. Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/apiary_lint/lint.h"

namespace fs = std::filesystem;

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool WriteJson(const std::string& path, const std::vector<apiary::lint::Finding>& findings,
               size_t file_count) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << "{\n  \"files_scanned\": " << file_count << ",\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"check\": \"" << JsonEscape(f.check) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.good();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// Directories that are never part of the linted corpus.
bool IsSkippedDir(const std::string& name) {
  return name == ".git" || name == "testdata" || name.rfind("build", 0) == 0 ||
         name == "cmake-build-debug" || name == ".cache";
}

void Collect(const fs::path& root, const fs::path& repo_root,
             std::vector<apiary::lint::SourceFile>* files, int* errors) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (!IsSourceFile(root)) {
      return;
    }
    const fs::path rel = fs::relative(root, repo_root, ec);
    apiary::lint::SourceFile file;
    if (!apiary::lint::LoadSource(root.string(), rel.generic_string(), &file)) {
      std::cerr << "apiary_lint: cannot read " << root << "\n";
      ++*errors;
      return;
    }
    files->push_back(std::move(file));
    return;
  }
  if (!fs::is_directory(root, ec)) {
    std::cerr << "apiary_lint: no such file or directory: " << root << "\n";
    ++*errors;
    return;
  }
  // Deterministic order: recurse with sorted directory listings.
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& entry : entries) {
    if (fs::is_directory(entry, ec)) {
      if (!IsSkippedDir(entry.filename().string())) {
        Collect(entry, repo_root, files, errors);
      }
    } else if (IsSourceFile(entry)) {
      Collect(entry, repo_root, files, errors);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo_root = fs::current_path();
  std::string json_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root") {
      if (i + 1 >= argc) {
        std::cerr << "apiary_lint: --repo-root needs a directory\n";
        return 2;
      }
      repo_root = argv[++i];
    } else if (arg.rfind("--repo-root=", 0) == 0) {
      repo_root = arg.substr(std::strlen("--repo-root="));
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "apiary_lint: --json needs an output file\n";
        return 2;
      }
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: apiary_lint [--repo-root <dir>] [--json <file>] <path>...\n"
                   "checks: apiary-determinism apiary-layering apiary-opcode-coverage\n"
                   "        apiary-include-guard apiary-debug-name apiary-nodiscard\n"
                   "        apiary-hot-path apiary-global-state apiary-domain-confinement\n"
                   "        apiary-sync-discipline apiary-wake-path apiary-nolint-reason\n"
                   "suppress with // NOLINT(apiary-<check>): <reason> or "
                   "NOLINTNEXTLINE(...): <reason>\n"
                   "keep deliberate globals with // APIARY-SHARED(<domain>): <reason>\n"
                   "name an external waker with // APIARY-WAKE(<source>): <reason>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "apiary_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: apiary_lint [--repo-root <dir>] [--json <file>] <path>...\n";
    return 2;
  }

  std::error_code ec;
  repo_root = fs::absolute(repo_root, ec);
  int errors = 0;
  std::vector<apiary::lint::SourceFile> files;
  for (const auto& path : paths) {
    fs::path p(path);
    if (p.is_relative()) {
      p = repo_root / p;
    }
    Collect(p, repo_root, &files, &errors);
  }
  if (errors > 0) {
    return 2;
  }

  const auto findings =
      apiary::lint::RunAllChecks(files, apiary::lint::DefaultConfig());
  for (const auto& finding : findings) {
    std::cout << finding.ToString() << "\n";
  }
  if (!json_path.empty() && !WriteJson(json_path, findings, files.size())) {
    std::cerr << "apiary_lint: cannot write " << json_path << "\n";
    return 2;
  }
  if (!findings.empty()) {
    std::cout << "apiary_lint: " << findings.size() << " finding(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "apiary_lint: clean (" << files.size() << " files)\n";
  return 0;
}
