// Express-corridor unit and materialization edge-case tests (ISSUE 10).
//
// Every scenario runs twice — express enabled vs the `--no-express` escape
// hatch (SetExpressEnabled(false)) — and every observable (end cycle, flit
// counts, per-NI counters, latency histograms, delivered payloads, executed
// cycles) must match byte for byte. The express run must also actually use
// corridors, so a regression that quietly refuses every launch cannot pass.
//
// Edge cases covered, per the issue checklist:
//   * a fault window opening mid-corridor (FaultInjector::Fire materializes
//     before the window exists);
//   * Undeploy of a tile on the corridor (express_differential_test covers
//     the board-level variant; here the NoC observables stay identical);
//   * shard-cut truncation under the parallel engine;
//   * crossing traffic entering the corridor zone;
//   * a new injection on the corridor's source tile (queue-order preserving);
//   * weighted-arbitration contention (the 8:1 share must not move).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/noc/mesh.h"
#include "src/noc/packet.h"
#include "src/noc/packet_pool.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/sim/parallel/thread_domain.h"
#include "src/sim/payload_arena.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

PacketPool& TestPool() {
  FallbackPayloadArena();
  static PacketPool pool;
  return pool;
}

PacketRef MakePacket(TileId src, TileId dst, size_t payload_bytes, uint64_t id = 0,
                     Vc vc = Vc::kRequest, PacketPool* pool = nullptr) {
  PacketRef p = (pool != nullptr ? *pool : TestPool()).Acquire();
  p->src = src;
  p->dst = dst;
  p->vc = vc;
  p->packet_id = id;
  p->payload.assign(payload_bytes, static_cast<uint8_t>(id));
  return p;
}

// Everything a mesh scenario can observe, stringified for byte comparison.
struct MeshObservables {
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t flits_routed = 0;
  std::string counters;
  std::string latency;
  std::string deliveries;  // "tile:id:len\n" in retrieval order.

  bool operator==(const MeshObservables& o) const {
    return end_cycle == o.end_cycle && skipped_cycles == o.skipped_cycles &&
           flits_routed == o.flits_routed && counters == o.counters && latency == o.latency &&
           deliveries == o.deliveries;
  }
};

MeshObservables Observe(Simulator& sim, Mesh& mesh) {
  MeshObservables r;
  r.end_cycle = sim.now();
  r.skipped_cycles = sim.skipped_cycles();
  r.flits_routed = mesh.TotalFlitsRouted();
  r.counters = mesh.AggregateCounters().ToString();
  r.latency = mesh.AggregateLatency().Summary();
  for (uint32_t t = 0; t < mesh.num_tiles(); ++t) {
    while (auto p = mesh.ni(t).Retrieve()) {
      r.deliveries += std::to_string(t) + ':' + std::to_string(p->packet_id) + ':' +
                      std::to_string(p->payload.size()) + '\n';
    }
  }
  return r;
}

TEST(ExpressTest, SinglePacketMatchesBaselineAndDelivers) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 8, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 63, 100, 42), sim.now()));
    sim.Run(200);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off);
  EXPECT_NE(on.deliveries.find("63:42:100"), std::string::npos);
  // The corridor really ran the traversal: 14 hops, analytically.
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.materializations, 0u);
  EXPECT_EQ(stats.hops_sum, 14u);
}

TEST(ExpressTest, SelfSendCorridorMatchesBaseline) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{2, 2, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    EXPECT_TRUE(mesh.ni(3).Inject(MakePacket(3, 3, 48, 5), sim.now()));
    sim.Run(100);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.hops_sum, 0u);
}

// Random many-to-many traffic: corridors launch in the quiet stretches,
// materialize when flows collide, and nothing may diverge from the
// cycle-accurate baseline.
TEST(ExpressTest, RandomTrafficMatchesBaselineByteForByte) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 8, 4, 128});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    Rng rng(99);
    uint64_t next_id = 1;
    for (int round = 0; round < 400; ++round) {
      const TileId src = static_cast<TileId>(rng.NextBelow(mesh.num_tiles()));
      const TileId dst = static_cast<TileId>(rng.NextBelow(mesh.num_tiles()));
      (void)mesh.ni(src).Inject(
          MakePacket(src, dst, rng.NextBelow(200), next_id++,
                     rng.NextBool(0.5) ? Vc::kRequest : Vc::kResponse),
          sim.now());
      // Mixed gaps: back-to-back bursts (contention) and long idles
      // (corridor territory).
      sim.Run(rng.NextBool(0.3) ? 1 : 40);
    }
    sim.Run(5'000);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off) << "express diverged:\n"
                         << on.counters << "\nvs\n"
                         << off.counters;
  EXPECT_GT(stats.launches, 50u);
  EXPECT_GT(stats.delivered, 50u);
}

// Crossing traffic: a packet injected into the corridor's zone while the
// corridor is in flight must materialize it, and the interleaved outcome must
// match the baseline exactly.
TEST(ExpressTest, CrossingTrafficMaterializesMidCorridor) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 8, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    // Long west->east corridor along row y=3 (22 flits, 7 hops).
    EXPECT_TRUE(mesh.ni(3 * 8 + 0).Inject(MakePacket(24, 31, 640, 1), sim.now()));
    sim.Run(3);
    // North->south flow through column x=4 crosses the corridor's row.
    EXPECT_TRUE(mesh.ni(0 * 8 + 4).Inject(MakePacket(4, 60, 200, 2), sim.now()));
    sim.Run(2'000);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off) << on.counters << "\nvs\n" << off.counters;
  // The crosser's own launch attempt is refused (its path crosses the
  // corridor's), so only the corridor launched — and the crosser's flits
  // entering the zone forced it back to real flits.
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.materializations, 1u);
}

// A second injection on the corridor's source tile: the corridor's
// unlaunched flits must requeue ahead of the new packet, preserving FIFO
// order per VC.
TEST(ExpressTest, SourceReinjectionMaterializesAndPreservesOrder) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 500, 1), sim.now()));
    sim.Run(4);  // Mid-drain: several flits still queued.
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 80, 2), sim.now()));
    sim.Run(1'000);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off);
  // Packet 1 first, then packet 2, both at tile 7.
  const size_t first = on.deliveries.find("7:1:500");
  const size_t second = on.deliveries.find("7:2:80");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_GE(stats.materializations, 1u);
}

// CanInject must report the virtual (draining) queue occupancy while a
// corridor holds the source queue's packet, matching the real run's
// backpressure decisions cycle for cycle.
TEST(ExpressTest, CanInjectSeesVirtualQueueOccupancy) {
  Simulator sim;
  Mesh mesh(MeshConfig{8, 1, 8, 16});  // 16-flit injection queues.
  mesh.SetExpressEnabled(true);
  sim.Register(&mesh);
  // 12 flits: after launch the virtual queue drains one per cycle.
  EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 350, 1), sim.now()));
  sim.Run(1);
  ASSERT_TRUE(mesh.AggregateExpressStats().launches == 1u);
  // 11 virtual flits outstanding: a 6-flit packet must not fit...
  EXPECT_FALSE(mesh.ni(0).CanInject(6, Vc::kRequest));
  // ...but 5 do, and the other VC is genuinely empty.
  EXPECT_TRUE(mesh.ni(0).CanInject(5, Vc::kRequest));
  EXPECT_TRUE(mesh.ni(0).CanInject(16, Vc::kResponse));
  sim.Run(6);
  // 7 cycles after launch: 5 virtual flits left, 11 slots free.
  EXPECT_TRUE(mesh.ni(0).CanInject(11, Vc::kRequest));
  EXPECT_FALSE(mesh.ni(0).CanInject(12, Vc::kRequest));
}

// Fault window opening mid-corridor: FaultInjector::Fire materializes every
// corridor before the window exists, so the drop lands on real flits at the
// exact cycle the baseline drops them.
TEST(ExpressTest, FaultWindowMidCorridorMatchesBaseline) {
  ExpressStats stats;
  std::string fault_trace_on;
  std::string fault_trace_off;
  auto run = [&](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    FaultPlan plan;
    plan.seed = 7;
    plan.LinkDrop(/*at=*/6, /*duration=*/30, /*rate=*/1.0);
    FaultInjector injector(plan, FaultHooks{.mesh = &mesh});
    sim.Register(&injector);
    // 17 flits, 7 hops: in flight well past cycle 6.
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 512, 9), sim.now()));
    sim.Run(500);
    (express ? fault_trace_on : fault_trace_off) = injector.TraceString();
    if (express) {
      stats = mesh.AggregateExpressStats();
      EXPECT_GE(injector.counters().Get("fault.link_drops_applied"), 1u);
    }
    auto r = Observe(sim, mesh);
    r.counters += injector.counters().ToString();
    return r;
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off) << on.counters << "\nvs\n" << off.counters;
  EXPECT_EQ(fault_trace_on, fault_trace_off);
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.materializations, 1u);
  // The window also blocks new launches while open (NocQuiet is false).
  EXPECT_EQ(stats.delivered, 0u);
}

// No corridor may launch while a fault window is open; once every window
// closes, launches resume.
TEST(ExpressTest, LaunchesRefusedWhileFaultWindowOpen) {
  Simulator sim;
  Mesh mesh(MeshConfig{8, 1, 8, 64});
  mesh.SetExpressEnabled(true);
  sim.Register(&mesh);
  FaultPlan plan;
  plan.seed = 3;
  plan.LinkCorrupt(/*at=*/0, /*duration=*/100, /*rate=*/0.0);  // Open, harmless.
  FaultInjector injector(plan, FaultHooks{.mesh = &mesh});
  sim.Register(&injector);
  sim.Run(2);
  EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 64, 1), sim.now()));
  sim.Run(200);  // Past the window close at cycle 100.
  EXPECT_EQ(mesh.AggregateExpressStats().launches, 0u);
  EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 64, 2), sim.now()));
  sim.Run(200);
  EXPECT_EQ(mesh.AggregateExpressStats().launches, 1u);
}

// Weighted-arbitration contention (the tenants' 8:1 NoC share): express must
// neither distort the converged split nor diverge from the baseline. While
// both classes contend, every launch attempt finds busy zones and refuses.
TEST(ExpressTest, WeightedShareUnchangedWithExpressEnabled) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{4, 1, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    mesh.SetArbClassWeight(1, 8);
    mesh.SetArbClassWeight(2, 1);
    uint64_t next_id = 1;
    uint64_t heavy = 0;
    uint64_t light = 0;
    for (Cycle c = 0; c < 20000; ++c) {
      auto a = MakePacket(0, 3, 256, next_id++);
      a->arb_class = 1;
      (void)mesh.ni(0).Inject(a, sim.now());
      auto b = MakePacket(1, 3, 256, next_id++);
      b->arb_class = 2;
      (void)mesh.ni(1).Inject(b, sim.now());
      sim.Run(1);
      while (mesh.ni(3).HasDeliverable()) {
        auto got = mesh.ni(3).Retrieve();
        (got->arb_class == 1 ? heavy : light) += 1;
      }
    }
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    MeshObservables r = Observe(sim, mesh);
    r.deliveries += "heavy=" + std::to_string(heavy) + " light=" + std::to_string(light);
    return r;
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off) << on.deliveries << "\nvs\n" << off.deliveries;
  // Saturated contention start to finish: nothing ever qualified.
  EXPECT_EQ(stats.launches, 0u);
}

// SetArbClassWeight mid-run is a reconfiguration: in-flight corridors
// materialize first (deficit resets must land on real state), and the run
// stays byte-identical.
TEST(ExpressTest, WeightReconfigMidCorridorMatchesBaseline) {
  ExpressStats stats;
  auto run = [&stats](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 512, 3), sim.now()));
    sim.Run(4);
    mesh.SetArbClassWeight(1, 4);  // Mid-corridor reconfiguration.
    sim.Run(1'000);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off);
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.materializations, 1u);
}

// Shard-cut truncation: under a 2-shard partition a corridor covers only its
// shard-interior prefix, self-materializes at the cut, and the flits cross
// the BoundaryLink cycle-accurately. Byte-identical at 1 and 2 threads.
TEST(ExpressTest, ShardCutTruncationMatchesBaseline) {
  ExpressStats stats;
  auto run = [&stats](bool express, uint32_t threads) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 8, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    ParallelSimulator psim(&sim, &mesh, ParallelConfig{2, threads});
    EXPECT_EQ(psim.shards(), 2u);
    // West half -> east half along row 3: truncates at the x=3|4 cut.
    {
      // Packet and payload must be born in the owning shard's domain.
      ThreadDomain::ScopedInstall install(psim.shard_context(0));
      EXPECT_TRUE(mesh.ni(24).Inject(
          MakePacket(24, 31, 300, 1, Vc::kRequest, mesh.ni(24).pool()), 0));
    }
    psim.Run(2'000);
    if (express) {
      stats = mesh.AggregateExpressStats();
    }
    MeshObservables r;
    r.end_cycle = sim.now();
    r.skipped_cycles = sim.skipped_cycles();
    r.flits_routed = mesh.TotalFlitsRouted();
    r.counters = mesh.AggregateCounters().ToString();
    r.latency = mesh.AggregateLatency().Summary();
    while (auto p = mesh.ni(31).Retrieve()) {
      r.deliveries += std::to_string(p->packet_id) + ':' +
                      std::to_string(p->payload.size()) + '\n';
    }
    return r;
  };
  const MeshObservables on1 = run(true, 1);
  const MeshObservables off1 = run(false, 1);
  const MeshObservables on2 = run(true, 2);
  EXPECT_TRUE(on1 == off1) << on1.counters << "\nvs\n" << off1.counters;
  EXPECT_TRUE(on1 == on2);
  EXPECT_NE(on1.deliveries.find("1:300"), std::string::npos);
  EXPECT_EQ(stats.launches, 1u);
  EXPECT_EQ(stats.materializations, 1u);  // The truncated self-materialize.
  EXPECT_EQ(stats.delivered, 0u);
}

// Toggling express off mid-run materializes everything; observables still
// match a run that never used express.
TEST(ExpressTest, DisableMidRunMaterializesInFlightCorridors) {
  auto run = [](bool express) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 64});
    mesh.SetExpressEnabled(express);
    sim.Register(&mesh);
    EXPECT_TRUE(mesh.ni(0).Inject(MakePacket(0, 7, 512, 4), sim.now()));
    sim.Run(5);
    mesh.SetExpressEnabled(false);
    sim.Run(1'000);
    return Observe(sim, mesh);
  };
  const MeshObservables on = run(true);
  const MeshObservables off = run(false);
  EXPECT_TRUE(on == off);
}

}  // namespace
}  // namespace apiary
