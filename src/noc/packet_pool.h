// PacketPool: recycles NocPacket objects so the executed-cycle message path
// never heap-allocates in steady state.
//
// Ownership protocol (DESIGN.md "Hot-path memory discipline"):
//   * Acquire() hands out a PacketRef to a reset packet — from the freelist
//     after warmup, from the heap only while the pool is still growing.
//   * Every holder (flits in router buffers, NI queues, the delivery queue)
//     shares the same intrusive refcount; when the last PacketRef drops,
//     the packet returns to its pool automatically. There is no explicit
//     free and therefore no way for a dropped/corrupted/mid-flight packet
//     to leak — the chaos campaigns in tests/packet_pool_test.cc verify
//     the acquire/release balance end-to-end.
//   * An optional max_packets cap bounds pool growth; past it, Acquire()
//     falls back to plain heap packets (pool == nullptr) that delete on
//     release, so overload degrades to the old allocation behavior instead
//     of failing.
//
// Determinism: recycling changes packet *addresses* only. Every
// simulation-visible field is reset on release, so seeded runs are
// byte-identical with pooling on or off (tests/determinism_test.cc).
#ifndef SRC_NOC_PACKET_POOL_H_
#define SRC_NOC_PACKET_POOL_H_

#include <cstdint>
#include <vector>

#include "src/noc/packet.h"
#include "src/sim/sim_context.h"

namespace apiary {

// Exported to bench/b2_hot_path: allocations/message and the reuse ratio
// come straight from these.
struct PacketPoolStats {
  uint64_t acquires = 0;             // Total Acquire() calls.
  uint64_t pool_hits = 0;            // Served from the freelist.
  uint64_t heap_allocs = 0;          // Fell through to operator new.
  uint64_t releases = 0;             // Pooled packets returned.
  uint64_t exhausted_fallbacks = 0;  // Cap hit: unpooled heap packet.
  uint32_t live = 0;                 // Pooled packets currently out.
  uint32_t high_water = 0;           // Max simultaneous live.
  uint32_t free_size = 0;            // Packets parked in the freelist.
};

class PacketPool {
 public:
  // max_packets == 0: the pool grows to the traffic's natural high-water
  // mark (bounded by router buffers + NI queues + delivery queues).
  explicit PacketPool(uint32_t max_packets = 0) : max_packets_(max_packets) {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  // Hands out a reset packet. Never returns null.
  PacketRef Acquire();

  // Called by PacketRef when the last reference drops (via ReleasePacket).
  void Release(NocPacket* packet);

  const PacketPoolStats& stats() const { return stats_; }
  void ResetStats();

  // When disabled, Acquire() returns unpooled heap packets — the --no-pool
  // ablation in bench/b2_hot_path.
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // The domain-local pool for `context`, created on first use in the
  // context's PacketPool slot (destroyed with the context). This replaced
  // the old process-wide Default() pool: every simulation domain now
  // recycles packets privately, so concurrent Simulators never contend —
  // the confinement ROADMAP item 1's sharded engine builds on.
  static PacketPool& ForContext(SimContext& context);

 private:
  uint32_t max_packets_;
  bool enabled_ = true;
  std::vector<NocPacket*> free_;
  PacketPoolStats stats_;
};

}  // namespace apiary

#endif  // SRC_NOC_PACKET_POOL_H_
