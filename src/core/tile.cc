#include "src/core/tile.h"

#include "src/sim/logging.h"

namespace apiary {

Tile::Tile(TileId id, NetworkInterface* ni, MonitorConfig config, Cycle reconfig_cycles)
    : id_(id), monitor_(id, ni, config), reconfig_cycles_(reconfig_cycles) {
  // Packets landing in the NI's delivery queue are this tile's input: route
  // the NI's delivery-side wake here so a parked tile resumes the cycle the
  // legacy every-block loop would have drained the packet.
  if (ni != nullptr) {
    ni->SetSinkWake(WakeHint(this));
  }
  // Fault-plane calls (RaiseFault, FailStop) can arrive from outside the
  // tile while it is parked; they wake it the same way delivered packets do.
  monitor_.SetOwnerWake(WakeHint(this));
}

std::string Tile::DebugName() const {
  return "tile" + std::to_string(id_) + (accel_ ? ":" + accel_->name() : ":empty");
}

void Tile::Configure(std::unique_ptr<Accelerator> accel, bool immediate, Cycle now) {
  pending_accel_ = std::move(accel);
  reconfiguring_ = true;
  booted_ = false;
  if (immediate) {
    reconfig_done_at_ = 0;  // Completes on the next tick.
  } else {
    reconfig_done_at_ = now + reconfig_cycles_;
  }
  // External input (the kernel's reconfiguration plane): a vacant tile may
  // be parked idle, and a busy one may be parked past the new done-at.
  RequestWake();
}

bool Tile::PreemptSwap(std::unique_ptr<Accelerator> replacement) {
  if (accel_ == nullptr || !accel_->IsPreemptible()) {
    return false;
  }
  std::vector<uint8_t> state = accel_->SaveState();
  APIARY_LOG(kInfo) << "tile " << id_ << ": preempting " << accel_->name() << " ("
                    << state.size() << "B of context)";
  accel_ = std::move(replacement);
  if (accel_ != nullptr) {
    accel_->RestoreState(state);
    accel_->OnBoot(monitor_);
  }
  monitor_.Restart();
  // The replacement boots with fresh state and may need to run immediately
  // even if the preempted context had declared a long quiet stretch; its
  // policy may differ from the preempted context's too.
  RequestPolicyRefresh();
  RequestWake();
  return true;
}

void Tile::HandleAcceleratorFault() {
  if (fault_policy_ == FaultPolicy::kPreempt && accel_ != nullptr &&
      accel_->IsPreemptible()) {
    // The kernel's management plane normally supplies the replacement; at
    // tile level, a detected fault on a preemptible accelerator swaps the
    // faulty context out and lets fresh logic take over with saved state.
    // Without a replacement queued, degrade to fail-stop.
  }
  monitor_.FailStop("accelerator fault: " + monitor_.fault_reason());
}

Cycle Tile::NextActivity(Cycle now) const {
  Cycle next = monitor_.NextActivity(now);
  if (reconfiguring_) {
    const Cycle done = reconfig_done_at_ > now ? reconfig_done_at_ : now;
    next = done < next ? done : next;
  }
  const bool accel_runs = accel_ != nullptr && !reconfiguring_ && !seu_wedged_ &&
                          monitor_.fault_state() == TileFaultState::kHealthy;
  if (accel_runs) {
    // A raised-but-unhandled fault is pending Tick work: the fail-stop (or
    // preempt) in HandleAcceleratorFault only happens on the next tick, so
    // the declaration must keep the tile active until it runs.
    if (!booted_ || monitor_.HasPendingInbox() || monitor_.accelerator_faulted()) {
      return now;
    }
    const Cycle accel_next = accel_->NextActivity(now);
    next = accel_next < next ? accel_next : next;
  }
  return next;
}

void Tile::OnFastForward(Cycle resume_cycle) {
  monitor_.OnFastForward(resume_cycle);
  // Only an accelerator that would actually have been ticked observes the
  // jump; gated slots (wedged, stopped, mid-reconfiguration) stay untouched,
  // exactly as in a cycle-by-cycle run.
  if (accel_ != nullptr && booted_ && !reconfiguring_ && !seu_wedged_ &&
      monitor_.fault_state() == TileFaultState::kHealthy) {
    accel_->OnFastForward(resume_cycle);
  }
}

void Tile::Tick(Cycle now) {
  monitor_.BeginCycle(now);

  if (reconfiguring_ && now >= reconfig_done_at_) {
    reconfiguring_ = false;
    accel_ = std::move(pending_accel_);
    monitor_.Restart();
    booted_ = false;
    seu_wedged_ = false;  // Reconfiguration rewrites the upset logic.
    // The slot's contents changed; the scheduling policy follows them.
    RequestPolicyRefresh();
  }

  if (accel_ != nullptr && !reconfiguring_ && !seu_wedged_ &&
      monitor_.fault_state() == TileFaultState::kHealthy) {
    if (!booted_) {
      accel_->OnBoot(monitor_);
      booted_ = true;
    }
    accel_->Tick(monitor_);
    // Deliver all queued messages; accelerators are event-driven.
    while (auto msg = monitor_.Receive()) {
      accel_->OnMessage(*msg, monitor_);
      if (monitor_.accelerator_faulted()) {
        break;
      }
    }
    if (monitor_.accelerator_faulted()) {
      HandleAcceleratorFault();
    }
  }

  monitor_.FlushOutbox();
}

}  // namespace apiary
