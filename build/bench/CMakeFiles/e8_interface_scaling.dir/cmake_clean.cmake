file(REMOVE_RECURSE
  "CMakeFiles/e8_interface_scaling.dir/e8_interface_scaling.cc.o"
  "CMakeFiles/e8_interface_scaling.dir/e8_interface_scaling.cc.o.d"
  "e8_interface_scaling"
  "e8_interface_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_interface_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
