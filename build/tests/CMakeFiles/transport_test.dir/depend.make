# Empty dependencies file for transport_test.
# This may be replaced when dependencies are built.
