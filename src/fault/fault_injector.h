// FaultInjector: executes a FaultPlan against a live board.
//
// One Clocked block that fires the plan's timed events into the layers they
// target (NoC links/routers, DRAM cells, the external ethernet fabric,
// accelerator logic) and answers the NoC's per-traversal fault queries for
// windowed link faults. All probabilistic decisions flow through one Rng
// seeded from the plan, so a campaign replays byte-identically.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/fault/fault_plan.h"
#include "src/fpga/ethernet.h"
#include "src/mem/memory_backend.h"
#include "src/noc/fault_hooks.h"
#include "src/noc/mesh.h"
#include "src/sim/clocked.h"
#include "src/sim/random.h"
#include "src/stats/summary.h"

namespace apiary {

// The board surfaces the injector reaches into. Null members disable the
// corresponding fault kinds (events targeting them are counted as skipped).
struct FaultHooks {
  ApiaryOs* os = nullptr;          // kAccelCrash / kAccelWedge.
  Mesh* mesh = nullptr;            // Link + router faults (hooked automatically).
  MemoryBackend* memory = nullptr; // kDramBitFlip.
  ExternalNetwork* network = nullptr;  // kEthLossBurst.
};

class FaultInjector : public Clocked, public NocFaultModel {
 public:
  // Sorts the plan and self-registers: with the simulator (via hooks.os) as
  // a clocked block, and with the mesh as its fault model.
  FaultInjector(FaultPlan plan, FaultHooks hooks);
  ~FaultInjector() override;

  void Tick(Cycle now) override;
  // Skip clamping: the next plan event must fire at exactly its scheduled
  // cycle (Record stamps `now`), and every open window bounds the jump at
  // its closing cycle so window-gated predicates (Exhausted, RouterStalled)
  // flip at identical cycles with and without skipping.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "fault_injector"; }

  // NocFaultModel.
  bool OnLinkTraverse(TileId router_tile, const Flit& flit, Cycle now) override;
  bool RouterStalled(TileId router_tile, Cycle now) override;
  // The mesh has per-cycle fault work (stall counters accrue on stalled
  // routers) only while a stall window is open.
  [[nodiscard]] Cycle NextMeshActivity(Cycle now) const override;

  // fault.injected / fault.<kind> / fault.link_drops_applied / ... plus the
  // per-result DRAM counters (fault.dram_corrupted / fault.dram_ecc_corrected).
  const CounterSet& counters() const { return counters_; }

  // Human-readable, deterministic record of every fault applied (bounded).
  std::string TraceString() const;

  // True once every plan event has fired and every window has closed.
  bool Exhausted(Cycle now) const;

 private:
  struct Window {
    TileId tile;  // kInvalidTile = any router.
    Cycle until;
    double rate;
  };

  bool WindowHit(const std::vector<Window>& windows, TileId router_tile, Cycle now);
  void Fire(const FaultEvent& event, Cycle now);
  void Record(const FaultEvent& event, Cycle now, const std::string& note);

  FaultPlan plan_;
  FaultHooks hooks_;
  size_t next_event_ = 0;
  Rng rng_;
  std::vector<Window> drop_windows_;
  std::vector<Window> corrupt_windows_;
  std::vector<Window> stall_windows_;
  CounterSet counters_;
  std::vector<std::string> trace_;
};

}  // namespace apiary

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
