// Experiment E3: IPC primitives — Apiary's capability-checked NoC messages
// versus today's raw pipeline queues and versus host-mediated IPC.
//
// Paper basis (Section 4.5): raw queues exist but "are not accessed
// controlled in any way"; Apiary interposes the monitor on every message.
// The question is what that costs across message sizes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/baseline/raw_queue.h"
#include "src/fpga/pcie.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr int kMessages = 300;

// One-way latency of a `bytes` message through a raw point-to-point queue.
double RawQueueOneWay(uint32_t bytes) {
  Simulator sim(250.0);
  RawQueue q(kFlitBytes, 256);
  sim.Register(&q);
  uint64_t total = 0;
  for (int i = 0; i < kMessages; ++i) {
    const Cycle start = sim.now();
    q.Push(PayloadBuf(bytes, 1), sim.now());
    sim.RunUntil([&] { return q.Pop(sim.now()).has_value(); }, 100000);
    total += sim.now() - start;
  }
  return static_cast<double>(total) / kMessages;
}

// One-way latency through the full Apiary path (monitor -> NoC -> monitor),
// one hop, measured from Send() to delivery at the peer accelerator.
double ApiaryOneWay(uint32_t bytes, uint32_t hops) {
  BenchBoard bb(BenchBoardOptions{8, 1}, /*deploy_services=*/false);
  AppId app = bb.os.CreateApp("x");

  class Sink : public Accelerator {
   public:
    void OnMessage(const Message& msg, TileApi& api) override {
      if (msg.kind == MsgKind::kRequest) {
        ++received;
        last_arrival = api.now();
      }
    }
    std::string name() const override { return "sink"; }
    uint32_t LogicCellCost() const override { return 1000; }
    uint64_t received = 0;
    Cycle last_arrival = 0;
  };
  auto* sink = new Sink();
  DeployOptions dst_opts;
  dst_opts.tile = hops;  // Row mesh: tile index == hop distance from 0.
  ServiceId svc = 0;
  bb.os.Deploy(app, std::unique_ptr<Accelerator>(sink), &svc, dst_opts);

  // Drive the monitor directly from the harness for cycle-exact timestamps.
  DeployOptions src_opts;
  src_opts.tile = 0;
  const TileId st = bb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), nullptr, src_opts);
  const CapRef cap = bb.os.GrantSendToService(st, svc);
  bb.sim.Run(3);

  uint64_t total = 0;
  for (int i = 0; i < kMessages; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(bytes, 1);
    const uint64_t before = sink->received;
    const Cycle start = bb.sim.now();
    bb.os.monitor(st).Send(std::move(msg), cap);
    bb.sim.RunUntil([&] { return sink->received > before; }, 100000);
    total += sink->last_arrival - start;
  }
  return static_cast<double>(total) / kMessages;
}

// Host-mediated IPC: accelerator A -> host CPU -> accelerator B over PCIe,
// the Coyote pattern when two engines on different vFPGAs must communicate
// through host-managed queues.
double HostedOneWay(uint32_t bytes) {
  Simulator sim(250.0);
  PcieEndpoint up(PcieConfig{});
  PcieEndpoint down(PcieConfig{});
  sim.Register(&up);
  sim.Register(&down);
  constexpr Cycle kHostSoftwareCycles = 300;  // Queue doorbell + forward.
  uint64_t total = 0;
  for (int i = 0; i < kMessages; ++i) {
    const Cycle start = sim.now();
    bool arrived = false;
    up.Submit(bytes, [&, bytes](Cycle) {
      sim.ScheduleAfter(kHostSoftwareCycles, [&, bytes](Cycle) {
        down.Submit(bytes, [&](Cycle) { arrived = true; });
      });
    });
    sim.RunUntil([&] { return arrived; }, 1'000'000);
    total += sim.now() - start;
  }
  return static_cast<double>(total) / kMessages;
}

}  // namespace

int main() {
  std::printf("E3: IPC latency by message size (cycles, 250 MHz => 4ns/cycle)\n");
  std::printf("raw queue = today's unprotected pipeline FIFO; apiary = monitor+NoC;\n");
  std::printf("hosted = CPU-mediated queue pair over PCIe (Coyote-style)\n");

  Table table("E3: one-way message latency (cycles)");
  table.SetHeader({"payload (B)", "raw queue", "apiary 1 hop", "apiary 7 hops", "hosted",
                   "apiary/raw", "hosted/apiary"});
  for (uint32_t bytes : {8u, 64u, 256u, 1024u, 4096u}) {
    const double raw = RawQueueOneWay(bytes);
    const double ap1 = ApiaryOneWay(bytes, 1);
    const double ap7 = ApiaryOneWay(bytes, 7);
    const double hosted = HostedOneWay(bytes);
    table.AddRow({Table::Int(bytes), Table::Num(raw, 1), Table::Num(ap1, 1),
                  Table::Num(ap7, 1), Table::Num(hosted, 1), Table::Num(ap1 / raw, 2),
                  Table::Num(hosted / ap1, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: raw queues are the floor; apiary adds a small constant\n"
      "(monitor pipeline + NoC per-hop cost) that is amortized for large messages;\n"
      "hosted IPC is 10-100x worse at small sizes because every message pays two\n"
      "PCIe crossings plus host software.\n");
  return 0;
}
