// Experiment E2: the per-tile monitor's overhead — the paper's first open
// question (Section 6): "What is the overhead of the per-tile monitor? ...
// It is important for scalability that this monitor's resource utilization
// remain low since the amount of FPGA logic resources devoted to Apiary
// grows with the number of tiles."
//
// Part A: logic-cell overhead of monitors (and the whole static region) as
//         the tile count grows, as a fraction of each catalog part.
// Part B: the latency a monitor adds to one message versus raw NoC
//         injection, measured on a live board.
// Part C: capability-table sizing: monitor cost vs cap entries.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/fpga/part_catalog.h"
#include "src/noc/router.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

// Measures the mean request round-trip on a 1-hop path, with the monitor in
// the loop (normal Apiary path).
double MeasureMonitoredRtt() {
  BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
  AppId app = bb.os.CreateApp("x");
  auto* echo = new EchoAccelerator(0);
  ServiceId svc = 0;
  DeployOptions at0;
  at0.tile = 0;
  bb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc, at0);
  // Pin the client next door.
  class Pinger : public Accelerator {
   public:
    explicit Pinger(ServiceId svc) : svc_(svc) {}
    void Tick(TileApi& api) override {
      if (in_flight_) {
        return;
      }
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(32, 1);
      if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        sent_at_ = api.now();
        in_flight_ = true;
      }
    }
    void OnMessage(const Message& msg, TileApi& api) override {
      if (msg.kind == MsgKind::kResponse) {
        total += api.now() - sent_at_;
        ++count;
        in_flight_ = false;
      }
    }
    std::string name() const override { return "pinger"; }
    uint32_t LogicCellCost() const override { return 1000; }
    uint64_t total = 0;
    uint64_t count = 0;

   private:
    ServiceId svc_;
    bool in_flight_ = false;
    Cycle sent_at_ = 0;
  };
  auto* pinger = new Pinger(svc);
  DeployOptions at1;
  at1.tile = 1;
  const TileId pt = bb.os.Deploy(app, std::unique_ptr<Accelerator>(pinger), nullptr, at1);
  (void)bb.os.GrantSendToService(pt, svc);
  bb.sim.RunUntil([&] { return pinger->count >= 500; }, 1'000'000);
  return pinger->count == 0 ? 0.0
                            : static_cast<double>(pinger->total) /
                                  static_cast<double>(pinger->count);
}

// The same round-trip with bare NoC injection (no monitor pipeline, no
// capability checks): the floor the monitor's cost is measured against.
double MeasureRawRtt() {
  Simulator sim(250.0);
  Mesh mesh(MeshConfig{4, 4, 8, 512});
  sim.Register(&mesh);
  uint64_t total = 0;
  uint64_t count = 0;
  // 32B payload + header-equivalent, tile 1 -> 0 and a bounce back.
  for (int i = 0; i < 500; ++i) {
    PacketRef ping(new NocPacket());
    ping->src = 1;
    ping->dst = 0;
    ping->payload.assign(85, 1);  // Same wire bytes as the monitored run.
    const Cycle start = sim.now();
    mesh.ni(1).Inject(ping, sim.now());
    sim.RunUntil([&] { return mesh.ni(0).HasDeliverable(); }, 10000);
    mesh.ni(0).Retrieve();
    PacketRef pong(new NocPacket());
    pong->src = 0;
    pong->dst = 1;
    pong->vc = Vc::kResponse;
    pong->payload.assign(85, 1);
    mesh.ni(0).Inject(pong, sim.now());
    sim.RunUntil([&] { return mesh.ni(1).HasDeliverable(); }, 10000);
    mesh.ni(1).Retrieve();
    total += sim.now() - start;
    ++count;
  }
  return static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace

int main() {
  std::printf("E2: per-tile monitor overhead (paper Section 6, open question 1)\n");

  // --- Part A: resource overhead vs tile count, across parts. ---
  const ResourceCosts costs;
  Table part_a("E2a: Apiary static logic vs tile count (64-entry cap tables)");
  part_a.SetHeader({"tiles", "monitors", "monitors+NoC", "% XC7V585T", "% VU3P", "% VU9P",
                    "% VU29P"});
  for (uint32_t tiles : {4u, 9u, 16u, 25u, 36u, 64u}) {
    const uint64_t monitor_cells = static_cast<uint64_t>(tiles) * MonitorCellCost(costs, 64);
    const uint64_t noc_cells =
        static_cast<uint64_t>(tiles) *
        (Router::LogicCellCost(8) + NetworkInterface::LogicCellCost());
    const uint64_t total = monitor_cells + noc_cells;
    auto pct = [&](const char* part) {
      return Table::Num(100.0 * static_cast<double>(total) /
                            static_cast<double>(FindPart(part)->logic_cells), 1);
    };
    part_a.AddRow({Table::Int(tiles), Table::Int(monitor_cells), Table::Int(total),
                   pct("XC7V585T"), pct("VU3P"), pct("VU9P"), pct("VU29P")});
  }
  part_a.Print();

  // --- Part B: latency overhead per message. ---
  const double monitored = MeasureMonitoredRtt();
  const double raw = MeasureRawRtt();
  Table part_b("E2b: message round-trip with and without the monitor (1 hop, 32B payload)");
  part_b.SetHeader({"path", "RTT (cycles)", "added by monitors"});
  part_b.AddRow({"raw NoC injection", Table::Num(raw, 1), "-"});
  part_b.AddRow({"through monitors", Table::Num(monitored, 1),
                 Table::Num(monitored - raw, 1) + " cycles"});
  part_b.Print();

  // --- Part C: capability table sizing. ---
  Table part_c("E2c: monitor cost vs capability-table entries");
  part_c.SetHeader({"cap entries", "cells/monitor", "64 tiles: % of VU29P"});
  for (uint32_t entries : {16u, 32u, 64u, 128u, 256u}) {
    const uint64_t cells = MonitorCellCost(costs, entries);
    part_c.AddRow({Table::Int(entries), Table::Int(cells),
                   Table::Num(100.0 * 64.0 * static_cast<double>(cells) / 3780000.0, 2)});
  }
  part_c.Print();

  std::printf(
      "\nexpected shape: overhead grows linearly with tiles; a 64-tile Apiary costs\n"
      "single-digit %% of a VU29P-class part but would consume most of a 2010-era\n"
      "Virtex-7 — matching the paper's argument that modern part sizes are what make\n"
      "a per-tile hardware OS affordable. The monitor adds a small, fixed number of\n"
      "cycles per message on top of the raw NoC.\n");
  return 0;
}
