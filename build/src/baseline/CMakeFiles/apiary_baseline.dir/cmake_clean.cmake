file(REMOVE_RECURSE
  "CMakeFiles/apiary_baseline.dir/hosted.cc.o"
  "CMakeFiles/apiary_baseline.dir/hosted.cc.o.d"
  "CMakeFiles/apiary_baseline.dir/timesliced.cc.o"
  "CMakeFiles/apiary_baseline.dir/timesliced.cc.o.d"
  "libapiary_baseline.a"
  "libapiary_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
