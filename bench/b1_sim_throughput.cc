// B1: simulator throughput with quiescence-aware cycle skipping.
//
// The event-driven core (src/sim) may fast-forward over windows where every
// registered block declares itself quiescent (Clocked::NextActivity). This
// harness measures simulated-cycles-per-wall-second across three load
// shapes, with skipping on and off, on the same seeded scenarios:
//   * idle-board: a fully deployed board with no traffic at all — the best
//     case (one jump to the horizon) and the shape that dominates long
//     fault/recovery and autoscaling runs;
//   * light-load: a pulse client fires a burst of echo requests every 10k
//     cycles — long idle valleys separated by short active windows;
//   * saturated: a closed-loop client keeps the echo engine permanently
//     busy — no skippable window, so the overhead of the NextActivity poll
//     itself is what shows up.
// Skipping must not change simulation results: each scenario cross-checks
// request/response counts and final cycle between the two runs and fails
// loudly on any mismatch (the byte-level differential lives in
// tests/skip_differential_test.cc).
//
// Wall-clock timing lives here in bench/ (never in src/, which stays free of
// host-time calls for the determinism lint). `--smoke` shrinks the run for
// CI; `--no-skip` restricts to the escape-hatch configuration; `--no-express`
// disables the mesh's express-corridor fast path (on by default, applied
// identically to both runs of each comparison so the skip-vs-no-skip numbers
// stay apples-to-apples); `--json <path>` emits machine-readable results,
// including corridor hit/materialization/length counters.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/noc/express.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr Cycle kEchoServiceCycles = 200;
constexpr uint32_t kPayloadBytes = 64;

// Fires `burst` echo requests every `period` cycles, then sleeps until the
// next pulse. The NextActivity override is what lets the whole board go
// quiescent between pulses; responses re-arm nothing because the client only
// counts them.
class PulseClient : public Accelerator {
 public:
  PulseClient(ServiceId svc, Cycle period, uint32_t burst)
      : svc_(svc), period_(period), burst_(burst) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_burst_at_) {
      return;
    }
    for (uint32_t i = 0; i < burst_; ++i) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(kPayloadBytes, static_cast<uint8_t>(i));
      msg.request_id = ++next_id_;
      if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        ++sent_;
      }
    }
    next_burst_at_ += period_;
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind == MsgKind::kResponse) {
      ++received_;
    }
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return next_burst_at_ > now ? next_burst_at_ : now;
  }
  std::string name() const override { return "pulse_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  Cycle period_;
  uint32_t burst_;
  Cycle next_burst_at_ = 1000;  // First pulse after boot settles.
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

// Closed-loop driver with a fixed outstanding window; inherits the default
// always-active NextActivity, so it pins the clock — the saturated shape.
class WindowedClient : public Accelerator {
 public:
  WindowedClient(ServiceId svc, uint32_t window) : svc_(svc), window_(window) {}

  void Tick(TileApi& api) override {
    while (in_flight_ < window_) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(kPayloadBytes, static_cast<uint8_t>(in_flight_));
      msg.request_id = ++next_id_;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      ++in_flight_;
      ++sent_;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind == MsgKind::kResponse) {
      --in_flight_;
      ++received_;
    }
  }
  std::string name() const override { return "windowed_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  uint32_t window_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

enum class Scenario { kIdle, kLight, kSaturated };

struct RunResult {
  double wall_seconds = 0;
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t skips = 0;
  uint64_t ticked_blocks = 0;
  uint64_t executed_cycles = 0;
  uint64_t wheel_wakes = 0;
  uint64_t wake_calls = 0;
  uint64_t block_count = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  double mcycles_per_sec = 0;
  ExpressStats express;

  double MeanCorridorHops() const {
    return express.delivered > 0
               ? static_cast<double>(express.hops_sum) /
                     static_cast<double>(express.delivered)
               : 0;
  }

  // Fraction of block-ticks the active-set scheduler actually issued out of
  // the block-ticks a tick-everything loop would have issued over the same
  // executed cycles.
  double ActiveFraction() const {
    const double denom =
        static_cast<double>(executed_cycles) * static_cast<double>(block_count);
    return denom > 0 ? static_cast<double>(ticked_blocks) / denom : 0;
  }
};

RunResult RunOne(Scenario scenario, bool skip_enabled, bool express,
                 Cycle run_cycles, uint32_t threads) {
  BenchBoard bb;
  bb.sim.SetSkipEnabled(skip_enabled);
  bb.board.mesh().SetExpressEnabled(express);
  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b1");

  PulseClient* pulse = nullptr;
  WindowedClient* windowed = nullptr;
  if (scenario != Scenario::kIdle) {
    ServiceId echo_svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(kEchoServiceCycles), &echo_svc);
    if (scenario == Scenario::kLight) {
      auto client = std::make_unique<PulseClient>(echo_svc, /*period=*/10'000,
                                                  /*burst=*/4);
      pulse = client.get();
      const TileId ct = os.Deploy(app, std::move(client));
      (void)os.GrantSendToService(ct, echo_svc);
    } else {
      auto client = std::make_unique<WindowedClient>(echo_svc, /*window=*/8);
      windowed = client.get();
      const TileId ct = os.Deploy(app, std::move(client));
      (void)os.GrantSendToService(ct, echo_svc);
    }
  }

  // `--threads N` drives the run through the sharded engine (default
  // partition; see src/sim/parallel/) instead of the serial Step loop.
  std::optional<ParallelSimulator> psim;
  if (threads > 0) {
    psim.emplace(&bb.sim, &bb.board.mesh(), ParallelConfig{/*shards=*/0, threads});
  }

  // Host wall time is the measurand here (simulated cycles per wall-second);
  // it never feeds back into simulated state, so determinism is unaffected.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  if (psim.has_value()) {
    psim->Run(run_cycles);
  } else {
    bb.sim.Run(run_cycles);
  }
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.end_cycle = bb.sim.now();
  r.skipped_cycles = bb.sim.skipped_cycles();
  r.skips = bb.sim.skips();
  r.ticked_blocks = bb.sim.ticked_blocks();
  r.executed_cycles = bb.sim.executed_cycles();
  r.wheel_wakes = bb.sim.wheel_wakes();
  r.wake_calls = bb.sim.wake_calls();
  r.block_count = bb.sim.block_count();
  r.express = bb.board.mesh().AggregateExpressStats();
  if (pulse != nullptr) {
    r.sent = pulse->sent();
    r.received = pulse->received();
  } else if (windowed != nullptr) {
    r.sent = windowed->sent();
    r.received = windowed->received();
  }
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(run_cycles) / r.wall_seconds / 1e6 : 0;
  return r;
}

const char* Name(Scenario s) {
  switch (s) {
    case Scenario::kIdle:
      return "idle-board";
    case Scenario::kLight:
      return "light-load";
    case Scenario::kSaturated:
      return "saturated";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool no_skip_only = HasFlag(argc, argv, "--no-skip");
  const bool express = !HasFlag(argc, argv, "--no-express");
  const uint32_t threads = static_cast<uint32_t>(IntArg(argc, argv, "--threads", 0));
  const Cycle run_cycles = smoke ? 2'000'000 : 20'000'000;

  std::printf("B1: simulator throughput, quiescence skipping on vs off\n");
  std::printf("(%llu simulated cycles per run%s)\n\n",
              static_cast<unsigned long long>(run_cycles),
              threads > 0 ? ", sharded engine" : "");
  if (threads > 0) {
    std::printf("engine: ParallelSimulator, %u worker thread(s)\n\n", threads);
  }

  BenchJson json("b1_sim_throughput");
  json.Param("run_cycles", static_cast<uint64_t>(run_cycles));
  json.Param("threads", static_cast<uint64_t>(threads));
  json.Param("express", express ? 1 : 0);
  json.Param("smoke", smoke ? 1 : 0);

  Table table("B1: simulated Mcycles per wall-second");
  table.SetHeader({"scenario", "no-skip Mcyc/s", "skip Mcyc/s", "speedup",
                   "skipped %", "jumps"});

  bool consistent = true;
  for (Scenario s : {Scenario::kIdle, Scenario::kLight, Scenario::kSaturated}) {
    const RunResult off = RunOne(s, /*skip_enabled=*/false, express, run_cycles, threads);
    if (no_skip_only) {
      table.AddRow({Name(s), Table::Num(off.mcycles_per_sec, 1), "-", "-", "-", "-"});
      json.BeginRow();
      json.Metric("scenario", Name(s));
      json.Metric("noskip_mcycles_per_sec", off.mcycles_per_sec);
      continue;
    }
    const RunResult on = RunOne(s, /*skip_enabled=*/true, express, run_cycles, threads);
    // The whole point is that skipping is invisible to the simulation:
    // identical end cycle and identical traffic counts, or the run is wrong.
    if (on.end_cycle != off.end_cycle || on.sent != off.sent ||
        on.received != off.received) {
      std::fprintf(stderr,
                   "B1 FAIL: %s diverged (end %llu vs %llu, sent %llu vs %llu, "
                   "recv %llu vs %llu)\n",
                   Name(s), static_cast<unsigned long long>(on.end_cycle),
                   static_cast<unsigned long long>(off.end_cycle),
                   static_cast<unsigned long long>(on.sent),
                   static_cast<unsigned long long>(off.sent),
                   static_cast<unsigned long long>(on.received),
                   static_cast<unsigned long long>(off.received));
      consistent = false;
    }
    const double speedup =
        off.mcycles_per_sec > 0 ? on.mcycles_per_sec / off.mcycles_per_sec : 0;
    const double skipped_pct =
        100.0 * static_cast<double>(on.skipped_cycles) / static_cast<double>(run_cycles);
    table.AddRow({Name(s), Table::Num(off.mcycles_per_sec, 1),
                  Table::Num(on.mcycles_per_sec, 1), Table::Num(speedup, 2),
                  Table::Num(skipped_pct, 1), Table::Int(on.skips)});
    json.BeginRow();
    json.Metric("scenario", Name(s));
    json.Metric("noskip_mcycles_per_sec", off.mcycles_per_sec);
    json.Metric("skip_mcycles_per_sec", on.mcycles_per_sec);
    json.Metric("speedup", speedup);
    json.Metric("skipped_cycles", on.skipped_cycles);
    json.Metric("skips", on.skips);
    json.Metric("ticked_blocks", on.ticked_blocks);
    json.Metric("executed_cycles", on.executed_cycles);
    json.Metric("active_fraction", on.ActiveFraction());
    json.Metric("wheel_wakes", on.wheel_wakes);
    json.Metric("wake_calls", on.wake_calls);
    json.Metric("requests", on.sent);
    json.Metric("responses", on.received);
    json.Metric("express_hits", on.express.delivered);
    json.Metric("express_launches", on.express.launches);
    json.Metric("materializations", on.express.materializations);
    json.Metric("mean_corridor_hops", on.MeanCorridorHops());
  }
  table.Print();

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  if (!consistent) {
    return 1;
  }
  return 0;
}
