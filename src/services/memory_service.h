// The Apiary memory service: segment allocation and access, hosted on a
// tile and reached by messages like any other service (Sections 4.3, 4.6).
//
// Allocation mints a memory capability into the *requester's* monitor (the
// service is trusted OS logic and uses the kernel's management interface).
// Read/write requests must present the capability: the sending monitor
// attaches a SegmentGrant, and this service enforces segment bounds — a wild
// access is answered with kSegFault, never performed.
#ifndef SRC_SERVICES_MEMORY_SERVICE_H_
#define SRC_SERVICES_MEMORY_SERVICE_H_

#include <deque>
#include <memory>

#include "src/core/accelerator.h"
#include "src/core/kernel.h"
#include "src/mem/memory_controller.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

class MemoryService : public Accelerator {
 public:
  MemoryService(ApiaryOs* os, MemoryBackend* memory) : os_(os), memory_(memory) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  // The tick only submits/completes in-flight DRAM operations; the memory
  // model itself (registered separately) pins the completion cycles.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return pending_.empty() ? kNoActivity : now;
  }

  std::string name() const override { return "memory_service"; }
  uint32_t LogicCellCost() const override { return 15000; }

  const CounterSet& counters() const { return counters_; }

 private:
  struct PendingAccess {
    Message request;           // Retained so we can Reply on completion.
    std::vector<uint8_t> buffer;
    bool is_write = false;
    bool submitted = false;
    bool complete = false;
    uint64_t addr = 0;
  };

  void HandleAlloc(const Message& msg, TileApi& api);
  void HandleFree(const Message& msg, TileApi& api);
  void HandleShare(const Message& msg, TileApi& api);
  void HandleAccess(const Message& msg, TileApi& api, bool is_write);
  void ReplyError(const Message& msg, TileApi& api, MsgStatus status);

  ApiaryOs* os_;
  MemoryBackend* memory_;
  // In-flight DRAM operations, replied to in completion order.
  std::deque<std::shared_ptr<PendingAccess>> pending_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_MEMORY_SERVICE_H_
