// Tests for the Apiary OS services: memory, name, management (watchdog),
// network (with both MAC adapters), gateway and load balancer.
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/load_balancer.h"
#include "src/services/memory_service.h"
#include "src/services/mgmt_service.h"
#include "src/services/name_service.h"
#include "src/services/network_service.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Deploys the memory service and one probe, granting the probe access.
struct MemoryFixture {
  explicit MemoryFixture(TestBoard& tb) : board(tb) {
    memsvc = new MemoryService(&tb.os, &tb.board.memory());
    svc_tile = tb.os.DeployService(kMemoryService, std::unique_ptr<Accelerator>(memsvc));
    probe = new ProbeAccelerator();
    app = tb.os.CreateApp("tenant");
    probe_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    cap = tb.os.GrantSendToService(probe_tile, kMemoryService);
  }

  TestBoard& board;
  MemoryService* memsvc;
  ProbeAccelerator* probe;
  AppId app = kInvalidApp;
  TileId svc_tile = kInvalidTile;
  TileId probe_tile = kInvalidTile;
  CapRef cap = kInvalidCapRef;
};

TEST(MemoryServiceTest, AllocGrantsCapability) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 8192);
  PutU32(alloc.payload, kRightRead | kRightWrite);
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  const Message& reply = fx.probe->received[0];
  EXPECT_EQ(reply.status, MsgStatus::kOk);
  ASSERT_GE(reply.payload.size(), 12u);
  const CapRef mem = GetU32(reply.payload, 0);
  EXPECT_NE(mem, kInvalidCapRef);
  EXPECT_EQ(GetU64(reply.payload, 4), 8192u);
  EXPECT_EQ(tb.os.segments().bytes_allocated(), 8192u);
}

TEST(MemoryServiceTest, WriteThenReadRoundTrip) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 4096);
  PutU32(alloc.payload, kRightRead | kRightWrite);
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  const CapRef mem = GetU32(fx.probe->received[0].payload, 0);
  fx.probe->received.clear();

  Message write;
  write.opcode = kOpMemWrite;
  PutU64(write.payload, 100);
  const std::vector<uint8_t> data = {10, 20, 30, 40};
  write.payload.insert(write.payload.end(), data.begin(), data.end());
  fx.probe->EnqueueSend(write, fx.cap, mem);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  fx.probe->received.clear();

  Message read;
  read.opcode = kOpMemRead;
  PutU64(read.payload, 100);
  PutU32(read.payload, 4);
  fx.probe->EnqueueSend(read, fx.cap, mem);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(fx.probe->received[0].payload, data);
}

TEST(MemoryServiceTest, AccessWithoutGrantRefused) {
  TestBoard tb;
  MemoryFixture fx(tb);
  tb.sim.Run(3);
  Message read;
  read.opcode = kOpMemRead;
  PutU64(read.payload, 0);
  PutU32(read.payload, 64);
  // No memory capability presented -> grant invalid -> kNoCapability.
  fx.probe->EnqueueSend(read, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNoCapability);
  EXPECT_EQ(fx.memsvc->counters().Get("memsvc.access_no_grant"), 1u);
}

TEST(MemoryServiceTest, OutOfSegmentAccessSegFaults) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 1024);
  PutU32(alloc.payload, kRightRead | kRightWrite);
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  const CapRef mem = GetU32(fx.probe->received[0].payload, 0);
  fx.probe->received.clear();

  Message read;
  read.opcode = kOpMemRead;
  PutU64(read.payload, 1000);  // offset 1000 + len 64 > 1024.
  PutU32(read.payload, 64);
  fx.probe->EnqueueSend(read, fx.cap, mem);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kSegFault);
  EXPECT_EQ(fx.memsvc->counters().Get("memsvc.seg_faults"), 1u);
}

TEST(MemoryServiceTest, ReadOnlyCapCannotWrite) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 1024);
  PutU32(alloc.payload, kRightRead);  // No write right.
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  const CapRef mem = GetU32(fx.probe->received[0].payload, 0);
  fx.probe->received.clear();

  Message write;
  write.opcode = kOpMemWrite;
  PutU64(write.payload, 0);
  write.payload.push_back(7);
  fx.probe->EnqueueSend(write, fx.cap, mem);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNoCapability);
}

TEST(MemoryServiceTest, FreeRevokesAndReleases) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 2048);
  PutU32(alloc.payload, kRightRead | kRightWrite);
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  const CapRef mem = GetU32(fx.probe->received[0].payload, 0);
  fx.probe->received.clear();

  Message free_msg;
  free_msg.opcode = kOpMemFree;
  PutU32(free_msg.payload, mem);
  fx.probe->EnqueueSend(free_msg, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(tb.os.segments().bytes_allocated(), 0u);
}

TEST(MemoryServiceTest, AllocBeyondCapacityFails) {
  TestBoard tb;
  MemoryFixture fx(tb);
  Message alloc;
  alloc.opcode = kOpMemAlloc;
  PutU64(alloc.payload, 1ull << 40);
  PutU32(alloc.payload, kRightRead);
  fx.probe->EnqueueSend(alloc, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 5000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNoMemory);
}

TEST(NameServiceTest, RegisterAndLookup) {
  TestBoard tb;
  tb.os.DeployService(kNameService, std::make_unique<NameService>());
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kNameService);

  Message reg;
  reg.opcode = kOpNameRegister;
  PutU32(reg.payload, 4242);
  const std::string svc_name = "video/encoder";
  reg.payload.insert(reg.payload.end(), svc_name.begin(), svc_name.end());
  probe->EnqueueSend(reg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 5000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  probe->received.clear();

  Message lookup;
  lookup.opcode = kOpNameLookup;
  lookup.payload.assign(svc_name.begin(), svc_name.end());
  probe->EnqueueSend(lookup, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 5000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(GetU32(probe->received[0].payload, 0), 4242u);
}

TEST(NameServiceTest, LookupMissReturnsNoSuchService) {
  TestBoard tb;
  tb.os.DeployService(kNameService, std::make_unique<NameService>());
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kNameService);
  Message lookup;
  lookup.opcode = kOpNameLookup;
  const std::string svc_name = "nope";
  lookup.payload.assign(svc_name.begin(), svc_name.end());
  probe->EnqueueSend(lookup, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 5000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kNoSuchService);
}

TEST(MgmtServiceTest, WatchdogFailStopsSilentTile) {
  TestBoard tb;
  auto* mgmt = new MgmtService(&tb.os);
  tb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kMgmtService);
  // Ask to be watched with a 500-cycle deadline, then go silent.
  Message watch;
  watch.opcode = kOpMgmtWatch;
  PutU64(watch.payload, 500);
  probe->EnqueueSend(watch, cap);
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return tb.os.monitor(pt).fault_state() == TileFaultState::kStopped; }, 10000));
  EXPECT_EQ(mgmt->counters().Get("mgmt.watchdog_trips"), 1u);
  ASSERT_FALSE(mgmt->fault_log().empty());
}

TEST(MgmtServiceTest, HeartbeatsKeepTileAlive) {
  TestBoard tb;
  auto* mgmt = new MgmtService(&tb.os);
  tb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));
  // A heartbeating accelerator.
  class Beater : public Accelerator {
   public:
    void OnMessage(const Message&, TileApi&) override {}
    void OnBoot(TileApi& api) override {
      cap = api.LookupService(kMgmtService);
      Message watch;
      watch.opcode = kOpMgmtWatch;
      PutU64(watch.payload, 500);
      api.Send(std::move(watch), cap);
    }
    void Tick(TileApi& api) override {
      if (api.now() % 200 == 0 && cap != kInvalidCapRef) {
        Message hb;
        hb.opcode = kOpMgmtHeartbeat;
        api.Send(std::move(hb), cap);
      }
    }
    std::string name() const override { return "beater"; }
    uint32_t LogicCellCost() const override { return 1000; }
    CapRef cap = kInvalidCapRef;
  };
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::make_unique<Beater>());
  (void)tb.os.GrantSendToService(pt, kMgmtService);
  tb.sim.Run(5000);
  EXPECT_EQ(tb.os.monitor(pt).fault_state(), TileFaultState::kHealthy);
  EXPECT_EQ(mgmt->counters().Get("mgmt.watchdog_trips"), 0u);
}

TEST(MgmtServiceTest, ReportsCollected) {
  TestBoard tb;
  auto* mgmt = new MgmtService(&tb.os);
  tb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kMgmtService);
  Message report;
  report.opcode = kOpMgmtReport;
  const std::string text = "saw a parity error";
  report.payload.assign(text.begin(), text.end());
  probe->EnqueueSend(report, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !mgmt->fault_log().empty(); }, 5000));
  EXPECT_NE(mgmt->fault_log()[0].find("parity"), std::string::npos);
}

// Network service over each MAC flavor: an external frame reaches a
// registered app and its reply returns — proving the adapter hides the
// bring-up differences.
class NetworkServiceMacTest : public ::testing::TestWithParam<MacKind> {};

TEST_P(NetworkServiceMacTest, InboundFrameReachesRegisteredService) {
  TestBoardOptions opts;
  opts.mac = GetParam();
  TestBoard tb(opts);
  std::unique_ptr<MacAdapter> adapter;
  if (GetParam() == MacKind::k10G) {
    adapter = std::make_unique<Mac10GAdapter>(tb.board.mac10g());
  } else {
    adapter = std::make_unique<Mac100GAdapter>(tb.board.mac100g());
  }
  auto* netsvc = new NetworkService(&tb.os, std::move(adapter));
  const TileId nt = tb.os.DeployService(kNetworkService, std::unique_ptr<Accelerator>(netsvc));
  ASSERT_NE(nt, kInvalidTile);

  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  ServiceId probe_svc = 0;
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe), &probe_svc);
  const CapRef to_net = tb.os.GrantSendToService(pt, kNetworkService);

  // The probe registers for inbound traffic.
  Message reg;
  reg.opcode = kOpNetRegister;
  probe->EnqueueSend(reg, to_net);
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] {
        return !probe->received.empty() &&
               probe->received[0].opcode == kOpNetRegister;
      },
      20000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  probe->received.clear();
  tb.sim.Run(3000);  // Wait out the MAC bring-up before offering frames.

  // An external frame addressed to the probe's logical service.
  struct Sink : ExternalEndpoint {
    std::vector<EthFrame> frames;
    void OnFrame(EthFrame f, Cycle) override { frames.push_back(std::move(f)); }
  } client;
  const uint32_t client_addr = tb.net.RegisterEndpoint(&client);
  const uint32_t board_addr =
      GetParam() == MacKind::k10G ? tb.board.mac10g()->address() : tb.board.mac100g()->address();
  EthFrame frame;
  frame.src_endpoint = client_addr;
  frame.dst_endpoint = board_addr;
  PutU32(frame.payload, probe_svc);
  frame.payload.push_back(0x42);
  tb.net.Send(std::move(frame), tb.sim.now());

  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 50000));
  const Message& delivered = probe->received[0];
  EXPECT_EQ(delivered.opcode, kOpNetDeliver);
  ASSERT_GE(delivered.payload.size(), 5u);
  EXPECT_EQ(GetU32(delivered.payload, 0), client_addr);
  EXPECT_EQ(delivered.payload[4], 0x42);

  // Outbound: the probe replies to the client through kOpNetSend.
  Message out;
  out.opcode = kOpNetSend;
  PutU32(out.payload, client_addr);
  out.payload.push_back(0x99);
  probe->EnqueueSend(out, to_net);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !client.frames.empty(); }, 50000));
  ASSERT_EQ(client.frames[0].payload.size(), 1u);
  EXPECT_EQ(client.frames[0].payload[0], 0x99);
}

INSTANTIATE_TEST_SUITE_P(Macs, NetworkServiceMacTest,
                         ::testing::Values(MacKind::k10G, MacKind::k100G));

TEST(NetworkServiceTest, UnroutableInboundDropped) {
  TestBoard tb;
  auto* netsvc =
      new NetworkService(&tb.os, std::make_unique<Mac100GAdapter>(tb.board.mac100g()));
  tb.os.DeployService(kNetworkService, std::unique_ptr<Accelerator>(netsvc));
  struct Sink : ExternalEndpoint {
    void OnFrame(EthFrame, Cycle) override {}
  } client;
  const uint32_t client_addr = tb.net.RegisterEndpoint(&client);
  tb.sim.Run(3000);  // Let the MAC come up.
  EthFrame frame;
  frame.src_endpoint = client_addr;
  frame.dst_endpoint = tb.board.mac100g()->address();
  PutU32(frame.payload, 999);  // Nobody registered 999.
  frame.payload.push_back(1);
  tb.net.Send(std::move(frame), tb.sim.now());
  tb.sim.Run(2000);
  EXPECT_EQ(netsvc->counters().Get("netsvc.rx_unroutable"), 1u);
}

TEST(GatewayTest, BridgesClientToBackend) {
  TestBoard tb;
  auto* netsvc =
      new NetworkService(&tb.os, std::make_unique<Mac100GAdapter>(tb.board.mac100g()));
  tb.os.DeployService(kNetworkService, std::unique_ptr<Accelerator>(netsvc));

  AppId app = tb.os.CreateApp("svc");
  auto* echo = new EchoAccelerator(10);
  ServiceId echo_svc = 0;
  const TileId echo_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &echo_svc);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gw_tile, echo_svc));
  (void)echo_tile;

  struct Sink : ExternalEndpoint {
    std::vector<EthFrame> frames;
    void OnFrame(EthFrame f, Cycle) override { frames.push_back(std::move(f)); }
  } client;
  const uint32_t client_addr = tb.net.RegisterEndpoint(&client);
  tb.sim.Run(3000);  // MAC bring-up + gateway registration.

  EthFrame frame;
  frame.src_endpoint = client_addr;
  frame.dst_endpoint = tb.board.mac100g()->address();
  PutU32(frame.payload, gw_svc);
  PutU64(frame.payload, 777);  // client_id
  frame.payload.push_back(static_cast<uint8_t>(kOpEcho));
  frame.payload.push_back(static_cast<uint8_t>(kOpEcho >> 8));
  frame.payload.push_back(0xaa);
  tb.net.Send(std::move(frame), tb.sim.now());

  ASSERT_TRUE(tb.sim.RunUntil([&] { return !client.frames.empty(); }, 100000));
  const auto& reply = client.frames[0].payload;
  ASSERT_GE(reply.size(), 10u);
  EXPECT_EQ(GetU64(reply, 0), 777u);                        // client_id echoed
  EXPECT_EQ(reply[8], static_cast<uint8_t>(MsgStatus::kOk));  // status
  EXPECT_EQ(reply[9], 0xaa);                                 // payload echoed
}

TEST(LoadBalancerTest, SpreadsAcrossBackends) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  std::vector<EchoAccelerator*> backends;
  for (int i = 0; i < 3; ++i) {
    auto* echo = new EchoAccelerator(50);
    ServiceId svc = 0;
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    lb->AddBackend(tb.os.GrantSendToService(lb_tile, svc));
    backends.push_back(echo);
  }
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  for (int i = 0; i < 9; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {static_cast<uint8_t>(i)};
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 9; }, 100000));
  for (const auto& r : probe->received) {
    EXPECT_EQ(r.status, MsgStatus::kOk);
  }
  // Least-outstanding + RR should spread 9 requests 3/3/3.
  for (auto* b : backends) {
    EXPECT_EQ(b->served(), 3u);
  }
  EXPECT_EQ(lb->counters().Get("lb.forwards"), 9u);
  EXPECT_EQ(lb->counters().Get("lb.responses"), 9u);
}

TEST(LoadBalancerTest, NoBackendsRejectsGracefully) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kNoSuchService);
}

TEST(LoadBalancerTest, RoutesAroundFailStoppedBackendEventually) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  ServiceId s1 = 0;
  ServiceId s2 = 0;
  auto* b1 = new EchoAccelerator(10);
  auto* b2 = new EchoAccelerator(10);
  const TileId t1 = tb.os.Deploy(app, std::unique_ptr<Accelerator>(b1), &s1);
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(b2), &s2);
  lb->AddBackend(tb.os.GrantSendToService(lb_tile, s1));
  lb->AddBackend(tb.os.GrantSendToService(lb_tile, s2));
  tb.sim.Run(5);
  tb.os.FailStop(t1, "dead");
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  // Send several requests; those hitting the dead backend come back as
  // errors (bounced), the rest succeed through b2.
  for (int i = 0; i < 6; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 6; }, 100000));
  int ok = 0;
  int failed = 0;
  for (const auto& r : probe->received) {
    if (r.status == MsgStatus::kOk) {
      ++ok;
    } else {
      ++failed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(failed, 0);  // Fail-stop is visible, not silent.
  EXPECT_GT(b2->served(), 0u);
}

TEST(LoadBalancerTest, LbConfigReplacesBackendSetOverTheWire) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto* old_backend = new EchoAccelerator(10);
  ServiceId old_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(old_backend), &old_svc);
  lb->AddBackend(tb.os.GrantSendToService(lb_tile, old_svc));

  // Two fresh backends; the kernel mints the LB tile's endpoint caps, and a
  // kOpLbConfig message carries them to the balancer.
  std::vector<EchoAccelerator*> fresh;
  Message config;
  config.opcode = kOpLbConfig;
  for (int i = 0; i < 2; ++i) {
    auto* echo = new EchoAccelerator(10);
    ServiceId svc = 0;
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    PutU32(config.payload, tb.os.GrantSendToService(lb_tile, svc));
    fresh.push_back(echo);
  }
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  probe->EnqueueSend(config, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  ASSERT_GE(probe->received[0].payload.size(), 4u);
  EXPECT_EQ(GetU32(probe->received[0].payload, 0), 2u);  // New backend count.
  EXPECT_EQ(lb->num_backends(), 2u);
  EXPECT_EQ(lb->counters().Get("lb.configs"), 1u);

  // Traffic now lands on the fresh backends only.
  for (int i = 0; i < 4; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 5; }, 100000));
  EXPECT_EQ(old_backend->served(), 0u);
  EXPECT_EQ(fresh[0]->served() + fresh[1]->served(), 4u);
}

TEST(LoadBalancerTest, MembershipChurnMidFlightKeepsResponsesCorrelated) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  // A slow original backend, so requests are still in flight when the
  // membership changes under them.
  auto* old_backend = new EchoAccelerator(500);
  ServiceId old_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(old_backend), &old_svc);
  lb->AddBackend(tb.os.GrantSendToService(lb_tile, old_svc));

  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  for (uint8_t i = 0; i < 4; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {i};
    probe->EnqueueSend(msg, cap);
  }
  // All four forwarded to the slow backend, none answered yet.
  ASSERT_TRUE(tb.sim.RunUntil([&] { return lb->in_flight() == 4; }, 10'000));
  ASSERT_TRUE(probe->received.empty());

  // Swap the entire backend set mid-flight.
  std::vector<EchoAccelerator*> fresh;
  Message config;
  config.opcode = kOpLbConfig;
  for (int i = 0; i < 2; ++i) {
    auto* echo = new EchoAccelerator(10);
    ServiceId svc = 0;
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    PutU32(config.payload, tb.os.GrantSendToService(lb_tile, svc));
    fresh.push_back(echo);
  }
  probe->EnqueueSend(config, cap);

  // New traffic routes to the fresh set while the old responses drain.
  for (uint8_t i = 4; i < 8; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {i};
    probe->EnqueueSend(msg, cap);
  }
  // 4 old echoes + config ack + 4 new echoes, none dropped or misrouted.
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 9; }, 100'000));
  std::vector<bool> seen(8, false);
  for (const Message& r : probe->received) {
    EXPECT_EQ(r.status, MsgStatus::kOk);
    if (r.opcode == kOpEcho) {
      ASSERT_EQ(r.payload.size(), 1u);
      ASSERT_LT(r.payload[0], 8);
      EXPECT_FALSE(seen[r.payload[0]]);  // Correlated exactly once.
      seen[r.payload[0]] = true;
    }
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
  EXPECT_EQ(old_backend->served(), 4u);
  EXPECT_EQ(fresh[0]->served() + fresh[1]->served(), 4u);
  EXPECT_EQ(lb->counters().Get("lb.orphan_responses"), 0u);
  EXPECT_EQ(lb->counters().Get("lb.reply_failures"), 0u);
  EXPECT_EQ(lb->InFlightOn(kInvalidCapRef), 0u);
  EXPECT_EQ(lb->in_flight(), 0u);
}

TEST(LoadBalancerTest, LbConfigRejectsMalformedPayload) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  Message config;
  config.opcode = kOpLbConfig;
  config.payload = {1, 2, 3};  // Not a whole number of u32 CapRefs.
  probe->EnqueueSend(config, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kBadRequest);
  EXPECT_EQ(lb->num_backends(), 0u);
}

TEST(MgmtServiceTest, QueryReturnsCounters) {
  TestBoard tb;
  auto* mgmt = new MgmtService(&tb.os);
  tb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kMgmtService);
  Message report;
  report.opcode = kOpMgmtReport;
  const std::string event = "tile acting up";
  report.payload.assign(event.begin(), event.end());
  probe->EnqueueSend(report, cap);
  Message query;
  query.opcode = kOpMgmtQuery;
  probe->EnqueueSend(query, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 2; }, 10000));
  const auto& reply = probe->received[1];
  EXPECT_EQ(reply.status, MsgStatus::kOk);
  const std::string counters(reply.payload.begin(), reply.payload.end());
  EXPECT_NE(counters.find("mgmt.reports"), std::string::npos) << counters;
}

}  // namespace
}  // namespace apiary
