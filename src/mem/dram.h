// Banked DRAM timing model with an open-row policy.
//
// The model captures the behaviour accelerators specialize for (Section 4.6
// of the paper): sequential accesses hit the open row and are fast, random
// accesses pay a precharge+activate penalty, and concurrent streams contend
// on banks.
#ifndef SRC_MEM_DRAM_H_
#define SRC_MEM_DRAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

struct DramConfig {
  uint64_t capacity_bytes = 4ull << 30;  // 4 GiB channel.
  uint32_t num_banks = 16;
  uint32_t row_bytes = 4096;       // Row buffer size.
  uint32_t burst_bytes = 64;       // Bytes transferred per burst.
  Cycle row_hit_cycles = 8;        // CAS latency for an open-row access.
  Cycle row_miss_cycles = 28;      // Precharge + activate + CAS.
  Cycle burst_cycles = 2;          // Data transfer time per extra burst.
  uint32_t per_bank_queue_depth = 16;
};

// A single DRAM channel. Requests complete asynchronously via callback; the
// channel services one request per bank at a time, banks in parallel.
class DramChannel : public Clocked {
 public:
  using Completion = std::function<void(Cycle)>;

  explicit DramChannel(DramConfig config);

  // Enqueues an access of `bytes` starting at `addr`. Returns false if the
  // target bank queue is full (caller must retry / apply backpressure).
  bool Enqueue(uint64_t addr, uint32_t bytes, bool is_write, Completion done);

  void Tick(Cycle now) override;
  // Quiescent until the earliest bank completion; a bank with queued but
  // unlaunched requests needs the very next tick to launch them.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "dram"; }

  const DramConfig& config() const { return config_; }
  const CounterSet& counters() const { return counters_; }

  // Address decomposition helpers (row-major interleave across banks).
  uint32_t BankOf(uint64_t addr) const;
  uint64_t RowOf(uint64_t addr) const;

 private:
  struct Request {
    uint64_t addr;
    uint32_t bytes;
    bool is_write;
    Completion done;
  };
  struct Bank {
    std::deque<Request> queue;
    uint64_t open_row = ~0ull;
    Cycle busy_until = 0;
    bool in_flight = false;
    Request current;
  };

  Cycle ServiceLatency(Bank& bank, const Request& req);

  DramConfig config_;
  std::vector<Bank> banks_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_MEM_DRAM_H_
