// Bad: #pragma once instead of the repo's include-guard convention.
#pragma once

namespace apiary {}
