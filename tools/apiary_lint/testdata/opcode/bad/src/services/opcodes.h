// Bad: kOpOrphan is minted into the stable ABI with no handler and no test.
#ifndef SRC_SERVICES_OPCODES_H_
#define SRC_SERVICES_OPCODES_H_

#include <cstdint>

namespace apiary {

inline constexpr uint16_t kOpPing = 0x0601;    // handled + tested
inline constexpr uint16_t kOpOrphan = 0x0602;  // neither handled nor tested

}  // namespace apiary

#endif  // SRC_SERVICES_OPCODES_H_
