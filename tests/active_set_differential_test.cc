// Differential determinism for the active-set scheduler: the full
// chaos+tenants+supervisor workload — kernel-mediated IPC spanning every
// shard cut, tenants with enforced quotas and billing, and a
// supervisor-healed chaos campaign — must produce BYTE-IDENTICAL traces,
// counters, fault records, and billing digests with the active set enabled
// and disabled (the tick-everything baseline), at threads=1, 2, and 4.
//
// The active set changes which blocks are ticked on an executed cycle and
// how the skip target is found (wheel front vs O(N) sweep); neither may be
// observable. Any divergence here is a missed wake, a stale wheel entry, or
// a declaration that does not cover an externally-mutated input — a
// correctness bug in the wake protocol, never an acceptable perf tradeoff.
// Run under TSan in the sanitize CI job alongside the parallel
// differential, this also proves the per-shard active sets race-free.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/accel/echo.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/services/supervisor.h"
#include "src/sim/logging.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/tenant/tenant.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Appends "<level> <line>\n" to the std::string passed as `user`. One
// instance per simulation domain: the root domain and each shard capture
// separate byte-exact traces, concatenated in a fixed order afterwards.
void StringSink(LogLevel level, const std::string& line, void* user) {
  auto* out = static_cast<std::string*>(user);
  *out += std::to_string(static_cast<int>(level));
  *out += ' ';
  *out += line;
  *out += '\n';
}

// Self-driving periodic echo client with a send budget. Declares its next
// send cycle, so between sends the tile parks on the timer wheel; replies
// arrive through the NI's delivery wake.
class PeriodicClient : public Accelerator {
 public:
  PeriodicClient(ServiceId svc, Cycle period, uint64_t limit)
      : svc_(svc), period_(period), limit_(limit) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_ || sent >= limit_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {1, 2, 3, 4};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++sent;
    }
    next_ = api.now() + period_;
  }
  void OnMessage(const Message& msg, TileApi&) override {
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (sent >= limit_) {
      return kNoActivity;  // Budget spent; only replies wake the tile.
    }
    return next_ > now ? next_ : now;
  }
  std::string name() const override { return "periodic_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId svc_;
  Cycle period_;
  uint64_t limit_;
  Cycle next_ = 0;
};

struct DiffResult {
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t skips = 0;
  uint64_t flits = 0;
  uint64_t handed_off = 0;
  uint64_t cloned = 0;
  uint64_t client_sent = 0;
  uint64_t client_ok = 0;
  uint64_t client_errors = 0;
  std::string mesh_counters;
  std::string monitor_counters;
  std::string injector_counters;
  std::string fault_trace;
  std::string supervisor_counters;
  std::string tenant_counters;
  std::string billing_a;
  std::string billing_b;
  uint32_t digest_a = 0;
  uint32_t digest_b = 0;
  std::string trace;  // Root trace + shard traces, in shard order.

  bool operator==(const DiffResult& o) const {
    return end_cycle == o.end_cycle && skipped_cycles == o.skipped_cycles && skips == o.skips &&
           flits == o.flits && handed_off == o.handed_off && cloned == o.cloned &&
           client_sent == o.client_sent && client_ok == o.client_ok &&
           client_errors == o.client_errors && mesh_counters == o.mesh_counters &&
           monitor_counters == o.monitor_counters && injector_counters == o.injector_counters &&
           fault_trace == o.fault_trace && supervisor_counters == o.supervisor_counters &&
           tenant_counters == o.tenant_counters && billing_a == o.billing_a &&
           billing_b == o.billing_b && digest_a == o.digest_a && digest_b == o.digest_b &&
           trace == o.trace;
  }
};

// 8x8 board, 4 column-band shards (x in {0,1} | {2,3} | {4,5} | {6,7}).
// Tile ids are row-major: tile = y*8 + x. Same shape as the parallel
// differential, with the active set as the second ablation axis.
DiffResult RunWorkload(uint32_t threads, bool active_set) {
  constexpr uint32_t kShards = 4;
  constexpr Cycle kCycles = 40'000;

  TestBoardOptions options;
  options.width = 8;
  options.height = 8;
  options.reconfig_cycles = 2'000;
  options.tile_region_cells = 25'000;  // 64 tiles of 100k would not fit VU9P.
  TestBoard tb(options);
  tb.sim.SetActiveSetEnabled(active_set);

  std::string root_trace;
  std::vector<std::string> shard_traces(kShards);
  const LogLevel prev_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  SetLogSink(StringSink, &root_trace);
  tb.sim.context().SetLogSink(StringSink, &root_trace);

  // --- Tenants: shard-aligned tile sets, metered and billed. ---
  TenantManager tenants(&tb.os, /*meter_period=*/10'000);
  TenantQuota quota;
  quota.max_tiles = 4;
  quota.noc_flits_per_1k = 4'000;
  quota.noc_burst_flits = 256;
  const TenantId tenant_a = tenants.CreateTenant("alpha", quota);
  const TenantId tenant_b = tenants.CreateTenant("beta", quota);
  const AppId app_a = tenants.CreateApp(tenant_a, "alpha_app");
  const AppId app_b = tenants.CreateApp(tenant_b, "beta_app");

  auto pin = [](TileId tile) {
    DeployOptions o;
    o.tile = tile;
    return o;
  };

  // Tenant A lives in shard 0 (x in {0,1}); tenant B in shard 3 (x in {6,7}).
  ServiceId svc_a = 0;
  EXPECT_NE(tenants.Deploy(tenant_a, app_a, std::make_unique<EchoAccelerator>(5), &svc_a,
                           pin(/*x=1,y=1*/ 9)),
            kInvalidTile);
  auto* client_a = new PeriodicClient(svc_a, /*period=*/120, /*limit=*/1'000'000);
  const TileId ct_a = tenants.Deploy(tenant_a, app_a, std::unique_ptr<Accelerator>(client_a),
                                     nullptr, pin(/*x=0,y=1*/ 8));
  EXPECT_NE(ct_a, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_a, ct_a, svc_a);

  ServiceId svc_b = 0;
  EXPECT_NE(tenants.Deploy(tenant_b, app_b, std::make_unique<EchoAccelerator>(5), &svc_b,
                           pin(/*x=6,y=6*/ 54)),
            kInvalidTile);
  auto* client_b = new PeriodicClient(svc_b, /*period=*/150, /*limit=*/1'000'000);
  const TileId ct_b = tenants.Deploy(tenant_b, app_b, std::unique_ptr<Accelerator>(client_b),
                                     nullptr, pin(/*x=7,y=6*/ 55));
  EXPECT_NE(ct_b, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_b, ct_b, svc_b);

  // --- Cross-shard IPC: every request and reply crosses one or three cuts. ---
  const AppId app_x = tb.os.CreateApp("crossers");

  ServiceId svc_far = 0;  // Client in shard 0 -> service in shard 3: three cuts.
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_far, pin(/*x=7,y=3*/ 31)),
      kInvalidTile);
  auto* client_far = new PeriodicClient(svc_far, /*period=*/40, /*limit=*/1'000'000);
  const TileId ct_far =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_far), nullptr, pin(/*x=0,y=3*/ 24));
  EXPECT_NE(ct_far, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_far, svc_far);

  ServiceId svc_near = 0;  // Client in shard 1 -> service in shard 2: one cut.
  const TileId crash_tile = /*x=4,y=5*/ 44;
  EXPECT_NE(tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_near, pin(crash_tile)),
            kInvalidTile);
  auto* client_near = new PeriodicClient(svc_near, /*period=*/25, /*limit=*/1'000'000);
  const TileId ct_near =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_near), nullptr, pin(/*x=3,y=5*/ 43));
  EXPECT_NE(ct_near, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_near, svc_near);

  // Saturator: floods the x=1|2 and x=3|4 cuts early on, then goes quiet so
  // the tail of the run exercises fast-forwarding and mass parking.
  ServiceId svc_burst = 0;
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(2), &svc_burst, pin(/*x=5,y=0*/ 5)),
      kInvalidTile);
  auto* burst = new PeriodicClient(svc_burst, /*period=*/2, /*limit=*/4'000);
  const TileId ct_burst =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(burst), nullptr, pin(/*x=2,y=0*/ 2));
  EXPECT_NE(ct_burst, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_burst, svc_burst);

  // --- Chaos: a supervisor-healed crash plus windows of link faults. ---
  Supervisor sup(&tb.os);
  sup.Manage(crash_tile, [] { return std::make_unique<EchoAccelerator>(10); });

  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDrop(8'000, 6'000, 0.2)
      .LinkCorrupt(14'000, 5'000, 0.2)
      .AccelCrash(20'000, crash_tile)
      .DramBitFlips(24'000, 4)
      .LinkDrop(28'000, 5'000, 0.25);
  FaultInjector injector(plan, FaultHooks{.os = &tb.os,
                                          .mesh = &tb.board.mesh(),
                                          .memory = &tb.board.memory()});
  injector.EnableShardedLinkFaults(tb.board.mesh().num_tiles());

  // --- The engine under test. ---
  ParallelSimulator psim(&tb.sim, &tb.board.mesh(), ParallelConfig{kShards, threads});
  EXPECT_EQ(psim.shards(), kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(StringSink, &shard_traces[s]);
  }

  psim.Run(kCycles);

  DiffResult r;
  r.end_cycle = tb.sim.now();
  r.skipped_cycles = tb.sim.skipped_cycles();
  r.skips = tb.sim.skips();
  r.flits = tb.board.mesh().TotalFlitsRouted();
  r.handed_off = tb.board.mesh().BoundaryFlitsHandedOff();
  r.cloned = tb.board.mesh().BoundaryPacketsCloned();
  r.client_sent =
      client_a->sent + client_b->sent + client_far->sent + client_near->sent + burst->sent;
  r.client_ok = client_a->ok + client_b->ok + client_far->ok + client_near->ok + burst->ok;
  r.client_errors = client_a->errors + client_b->errors + client_far->errors +
                    client_near->errors + burst->errors;
  r.mesh_counters = tb.board.mesh().AggregateCounters().ToString();
  r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
  r.injector_counters = injector.counters().ToString();
  r.fault_trace = injector.TraceString();
  r.supervisor_counters = sup.counters().ToString();
  r.tenant_counters = tenants.counters().ToString();
  r.billing_a = tenants.BillingRecords(tenant_a);
  r.billing_b = tenants.BillingRecords(tenant_b);
  r.digest_a = tenants.BillingDigest(tenant_a);
  r.digest_b = tenants.BillingDigest(tenant_b);
  r.trace = root_trace;
  for (const std::string& t : shard_traces) {
    r.trace += t;
  }

  // Detach every sink before teardown: the capture strings die before the
  // board (and before the mesh retires the shard contexts).
  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(nullptr, nullptr);
  }
  tb.sim.context().SetLogSink(nullptr, nullptr);
  SetLogSink(nullptr, nullptr);
  SetLogLevel(prev_level);
  return r;
}

TEST(ActiveSetDifferentialTest, FullWorkloadIsByteIdenticalWithAndWithoutActiveSets) {
  const DiffResult base = RunWorkload(/*threads=*/1, /*active_set=*/false);

  // The workload is real: traffic flowed on every path, faults landed, the
  // supervisor healed the crash, billing was cut, and packets crossed cuts.
  EXPECT_EQ(base.end_cycle, 40'000u);
  EXPECT_GT(base.client_sent, 1'500u);
  EXPECT_GT(base.client_ok, 1'500u);
  EXPECT_GT(base.handed_off, 1'000u);
  EXPECT_GT(base.cloned, 0u);
  EXPECT_NE(base.injector_counters.find("fault.accel_crash=1"), std::string::npos);
  EXPECT_NE(base.injector_counters.find("fault.link_drops_applied"), std::string::npos);
  EXPECT_NE(base.supervisor_counters.find("supervisor"), std::string::npos);
  EXPECT_GT(base.digest_a, 0u);
  EXPECT_GT(base.digest_b, 0u);
  EXPECT_FALSE(base.billing_a.empty());
  EXPECT_FALSE(base.trace.empty());

  // Axis 1: active set on vs off, serial sharded schedule. Skip counters are
  // part of the contract: the wheel-front target must equal the O(N) sweep's.
  const DiffResult on1 = RunWorkload(/*threads=*/1, /*active_set=*/true);
  EXPECT_EQ(on1.skipped_cycles, base.skipped_cycles);
  EXPECT_EQ(on1.skips, base.skips);
  EXPECT_EQ(on1.flits, base.flits);
  EXPECT_EQ(on1.handed_off, base.handed_off);
  EXPECT_EQ(on1.cloned, base.cloned);
  EXPECT_EQ(on1.client_sent, base.client_sent);
  EXPECT_EQ(on1.client_ok, base.client_ok);
  EXPECT_EQ(on1.client_errors, base.client_errors);
  EXPECT_EQ(on1.fault_trace, base.fault_trace);
  EXPECT_EQ(on1.mesh_counters, base.mesh_counters);
  EXPECT_EQ(on1.monitor_counters, base.monitor_counters);
  EXPECT_EQ(on1.injector_counters, base.injector_counters);
  EXPECT_EQ(on1.supervisor_counters, base.supervisor_counters);
  EXPECT_EQ(on1.tenant_counters, base.tenant_counters);
  EXPECT_EQ(on1.billing_a, base.billing_a);
  EXPECT_EQ(on1.billing_b, base.billing_b);
  EXPECT_EQ(on1.digest_a, base.digest_a);
  EXPECT_EQ(on1.digest_b, base.digest_b);
  EXPECT_EQ(on1.trace, base.trace);
  EXPECT_TRUE(on1 == base) << "active-set (threads=1) diverged from tick-everything";

  // Axis 2: thread count, with per-shard active sets live.
  for (const uint32_t threads : {2u, 4u}) {
    const DiffResult on = RunWorkload(threads, /*active_set=*/true);
    EXPECT_EQ(on.fault_trace, base.fault_trace) << "threads=" << threads;
    EXPECT_EQ(on.mesh_counters, base.mesh_counters) << "threads=" << threads;
    EXPECT_EQ(on.monitor_counters, base.monitor_counters) << "threads=" << threads;
    EXPECT_EQ(on.billing_a, base.billing_a) << "threads=" << threads;
    EXPECT_EQ(on.billing_b, base.billing_b) << "threads=" << threads;
    EXPECT_EQ(on.trace, base.trace) << "threads=" << threads;
    EXPECT_TRUE(on == base) << "active-set threads=" << threads
                            << " diverged from tick-everything threads=1";
    // And the baseline itself is thread-count invariant, closing the square.
    const DiffResult off = RunWorkload(threads, /*active_set=*/false);
    EXPECT_TRUE(off == base) << "tick-everything threads=" << threads
                             << " diverged from threads=1";
  }
}

}  // namespace
}  // namespace apiary
