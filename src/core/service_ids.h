// Well-known logical service names.
//
// Section 4.3: "Apiary addresses API-level challenges by defining a standard
// interface to higher-level system services that is the same on every tile
// across FPGAs." The logical id is the API-layer destination; the per-tile
// monitor maps it to a physical tile.
#ifndef SRC_CORE_SERVICE_IDS_H_
#define SRC_CORE_SERVICE_IDS_H_

#include "src/sim/types.h"

namespace apiary {

inline constexpr ServiceId kMemoryService = 1;
inline constexpr ServiceId kNetworkService = 2;
inline constexpr ServiceId kNameService = 3;
inline constexpr ServiceId kMgmtService = 4;
inline constexpr ServiceId kDmaService = 5;
inline constexpr ServiceId kOrchService = 6;
inline constexpr ServiceId kTenantService = 7;

// Application endpoints are assigned logical ids starting here.
inline constexpr ServiceId kFirstAppService = 100;

}  // namespace apiary

#endif  // SRC_CORE_SERVICE_IDS_H_
