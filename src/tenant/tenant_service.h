// Tenant stats service: the on-fabric endpoint that exports per-tenant
// metering (kOpTenantStats) to management clients. The billing records
// themselves are deterministic text held by the TenantManager; this service
// answers with the summary totals plus an FNV-1a digest of the record text,
// so a client can prove byte-identical metering across reruns without
// shipping the full ledger over the NoC.
#ifndef SRC_TENANT_TENANT_SERVICE_H_
#define SRC_TENANT_TENANT_SERVICE_H_

#include <string>

#include "src/core/accelerator.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"
#include "src/tenant/tenant.h"

namespace apiary {

class TenantStatsService : public Accelerator {
 public:
  explicit TenantStatsService(TenantManager* manager) : manager_(manager) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override { (void)api; }
  // APIARY-WAKE(tile): purely reactive service — the owning Tile's NI sink
  // wake ends the park on message delivery.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    (void)now;
    return kNoActivity;
  }

  std::string name() const override { return "tenant_stats_service"; }
  uint32_t LogicCellCost() const override { return 6000; }

  const CounterSet& counters() const { return counters_; }

 private:
  TenantManager* manager_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_TENANT_TENANT_SERVICE_H_
