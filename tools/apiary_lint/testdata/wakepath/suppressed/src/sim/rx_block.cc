// Same shape as bad/, with an explicit suppression carrying its reason.
namespace apiary {

class RxQueue : public Clocked {
 public:
  void Deliver(int item) { pending_.push_back(item); }
  void Tick(Cycle now) override { Drain(now); }
  // NOLINTNEXTLINE(apiary-wake-path): test double, never registered with a simulator
  Cycle NextActivity(Cycle now) const override {
    return pending_.empty() ? kNoActivity : now;
  }
  std::string DebugName() const override { return "rx_queue"; }

 private:
  void Drain(Cycle now);
  std::vector<int> pending_;
};

}  // namespace apiary
