// Suppressed: hash containers that are never iterated may stay, with an
// explicit NOLINT acknowledging the reviewer checked.
#include <unordered_map>

namespace apiary {

// Lookups only; hash order is invisible to the trace.
// NOLINTNEXTLINE(apiary-global-state): fixture global, lifetime is the test
std::unordered_map<int, int> g_cache;  // NOLINT(apiary-determinism): lookups only, never iterated

// NOLINTNEXTLINE(apiary-determinism, apiary-global-state): lookups only; fixture global
std::unordered_map<int, int> g_cache2;

}  // namespace apiary
