// Good: capability-minting APIs are [[nodiscard]].
#ifndef SRC_CORE_CAPABILITY_H_
#define SRC_CORE_CAPABILITY_H_

namespace apiary {

using CapRef = unsigned;

class CapabilityTable {
 public:
  [[nodiscard]] CapRef Install(int cap);
  // Marker on the preceding line also counts.
  [[nodiscard]]
  CapRef Mint(int cap);
};

}  // namespace apiary

#endif  // SRC_CORE_CAPABILITY_H_
