#include "src/services/load_balancer.h"

#include "src/services/opcodes.h"

namespace apiary {

size_t LoadBalancer::PickBackend() {
  // Least-outstanding with round-robin tie breaking: spreads load evenly and
  // adapts when one replica slows down.
  size_t best = rr_next_ % backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const size_t idx = (rr_next_ + i) % backends_.size();
    if (backends_[idx].outstanding < backends_[best].outstanding) {
      best = idx;
    }
  }
  rr_next_ = (best + 1) % backends_.size();
  return best;
}

void LoadBalancer::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind == MsgKind::kResponse) {
    auto it = in_flight_.find(msg.request_id);
    if (it == in_flight_.end()) {
      counters_.Add("lb.orphan_responses");
      return;
    }
    auto [original, backend_idx] = std::move(it->second);
    in_flight_.erase(it);
    // A kOpLbConfig may have replaced the backend set while this request
    // was in flight; the recorded index is then stale.
    if (backend_idx < backends_.size() && backends_[backend_idx].outstanding > 0) {
      --backends_[backend_idx].outstanding;
    }
    Message reply;
    reply.opcode = msg.opcode;
    reply.status = msg.status;
    reply.payload = msg.payload;
    if (!api.Reply(original, std::move(reply)).ok()) {
      counters_.Add("lb.reply_failures");
    }
    counters_.Add("lb.responses");
    return;
  }

  if (msg.opcode == kOpLbConfig) {
    // Control plane: replace the backend set with the CapRefs packed into
    // the payload (the kernel minted them into this tile's table before
    // sending the config). In-flight responses still reach their original
    // requesters; only their per-backend accounting goes stale.
    Message reply;
    reply.opcode = msg.opcode;
    if (msg.payload.size() % 4 != 0) {
      reply.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(reply));
      return;
    }
    backends_.clear();
    rr_next_ = 0;
    for (size_t off = 0; off < msg.payload.size(); off += 4) {
      backends_.push_back(Backend{GetU32(msg.payload, off), 0});
    }
    counters_.Add("lb.configs");
    PutU32(reply.payload, static_cast<uint32_t>(backends_.size()));
    api.Reply(msg, std::move(reply));
    return;
  }

  if (backends_.empty()) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kNoSuchService;
    api.Reply(msg, std::move(err));
    return;
  }
  const size_t idx = PickBackend();
  Message fwd;
  fwd.opcode = msg.opcode;
  fwd.payload = msg.payload;
  fwd.dst_process = msg.dst_process;
  fwd.request_id = next_forward_id_++;
  const uint64_t fwd_id = fwd.request_id;
  const SendResult r = api.Send(std::move(fwd), backends_[idx].endpoint);
  if (!r.ok()) {
    counters_.Add("lb.forward_failures");
    Message err;
    err.opcode = msg.opcode;
    err.status = r.status;
    api.Reply(msg, std::move(err));
    return;
  }
  ++backends_[idx].outstanding;
  in_flight_.emplace(fwd_id, std::make_pair(msg, idx));
  counters_.Add("lb.forwards");
}

}  // namespace apiary
