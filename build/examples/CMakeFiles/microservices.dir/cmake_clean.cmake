file(REMOVE_RECURSE
  "CMakeFiles/microservices.dir/microservices.cpp.o"
  "CMakeFiles/microservices.dir/microservices.cpp.o.d"
  "microservices"
  "microservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
