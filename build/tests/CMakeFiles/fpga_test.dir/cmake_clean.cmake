file(REMOVE_RECURSE
  "CMakeFiles/fpga_test.dir/fpga_test.cc.o"
  "CMakeFiles/fpga_test.dir/fpga_test.cc.o.d"
  "fpga_test"
  "fpga_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
