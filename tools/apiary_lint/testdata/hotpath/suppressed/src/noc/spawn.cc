// Suppressed: a deliberately unpooled packet (exhaustion-fallback shape)
// with the in-line marker the check honors.
#include <vector>

namespace apiary {

struct NocPacket {
  std::vector<unsigned char> payload;
};

void Spawn() {
  NocPacket* fallback = new NocPacket();  // NOLINT(apiary-hot-path)
  // NOLINTNEXTLINE(apiary-hot-path)
  std::vector<uint8_t> payload_copy(fallback->payload.begin(), fallback->payload.end());
  (void)payload_copy;
}

}  // namespace apiary
