// SimContext: the explicit per-simulator domain context.
//
// Everything a simulation domain allocates or observes in its hot path —
// payload chunks, packet pools, trace sinks — hangs off this object instead
// of process globals. One Simulator owns one SimContext; the Simulator
// installs it as the current thread's domain (src/sim/parallel/
// thread_domain.h) for the duration of Run()/RunUntil(), and test harnesses
// install it around construction when they build boards off the run path.
//
// This is the confinement boundary that makes ROADMAP item 1 (one worker
// thread per spatial domain) a mechanical decomposition: two Simulators on
// two threads share no mutable state, which the two-thread TSan smoke
// harness (tests/parallel_smoke_test.cc) proves on every CI run.
//
// Layering note: sim is the root layer, so SimContext cannot name types
// from noc/core (PacketPool lives in noc). Higher layers attach their
// domain-local singletons through the typed-erased slot registry below;
// PacketPool::ForContext() in src/noc is the canonical user.
#ifndef SRC_SIM_SIM_CONTEXT_H_
#define SRC_SIM_SIM_CONTEXT_H_

#include "src/sim/logging.h"
#include "src/sim/payload_arena.h"

namespace apiary {

class SimContext {
 public:
  using SlotDtor = void (*)(void*);

  // Fixed slot assignments (keep unique; collisions are a build-time review
  // concern, not a runtime one):
  //   0  noc PacketPool (PacketPool::ForContext)
  static constexpr int kSlotPacketPool = 0;
  static constexpr int kMaxSlots = 8;

  SimContext();
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;
  ~SimContext();

  // The domain-local payload chunk arena. Every PayloadBuf grown while this
  // context is installed draws from (and returns to) it.
  PayloadArena& arena() { return *arena_; }

  // Typed-erased domain-singleton registry for layers above sim. The
  // context runs `dtor(value)` for occupied slots at destruction, in
  // reverse slot order, before retiring the arena (so slot teardown may
  // still release payload chunks into it).
  void* slot(int id) const;
  void set_slot(int id, void* value, SlotDtor dtor);

  // Per-domain log sink. When set, log lines emitted while this context is
  // installed go here instead of the process-wide sink — each domain of a
  // threaded run captures its own byte-exact trace.
  void SetLogSink(LogSink sink, void* user);
  LogSink log_sink() const { return log_sink_; }
  void* log_sink_user() const { return log_sink_user_; }

 private:
  struct SlotEntry {
    void* value = nullptr;
    SlotDtor dtor = nullptr;
  };

  PayloadArena* arena_;  // Heap-allocated; Retire()d (not deleted) on teardown.
  SlotEntry slots_[kMaxSlots];
  LogSink log_sink_ = nullptr;
  void* log_sink_user_ = nullptr;
};

}  // namespace apiary

#endif  // SRC_SIM_SIM_CONTEXT_H_
