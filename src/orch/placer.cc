#include "src/orch/placer.h"

#include <algorithm>

namespace apiary {

bool Placer::Eligible(TileId tile, uint32_t logic_cells) const {
  if (tile >= os_->num_tiles() || reserved_.count(tile) > 0) {
    return false;
  }
  if (logic_cells > os_->TileRegionCells()) {
    return false;  // No image bigger than a region ever fits.
  }
  const Tile& t = os_->tile(tile);
  if (!t.vacant()) {
    return false;  // Occupied, or a bitstream (possibly blanking) in flight.
  }
  if (os_->tile(tile).monitor().fault_state() != TileFaultState::kHealthy) {
    return false;  // Fail-stopped region awaiting recovery.
  }
  // Never place into a region the supervisor is healing or has condemned;
  // its reconfiguration (or quarantine policy) owns the tile.
  if (supervisor_ != nullptr &&
      supervisor_->tile_state(tile) != Supervisor::TileState::kHealthy) {
    return false;
  }
  return true;
}

TileId Placer::Pick(const PlacementRequest& req) const {
  const Mesh& mesh = os_->board().mesh();
  TileId best = kInvalidTile;
  int64_t best_score = 0;
  for (TileId t = 0; t < os_->num_tiles(); ++t) {
    if (!Eligible(t, req.logic_cells)) {
      continue;
    }
    // Locality dominates spread (x16): a replica should hug its balancer
    // first, then pick the most isolated of the close-enough candidates.
    int64_t near_hops = 0;
    for (TileId n : req.near) {
      near_hops += mesh.Hops(t, n);
    }
    int64_t min_apart = 0;
    if (!req.apart.empty()) {
      min_apart = mesh.Hops(t, req.apart[0]);
      for (TileId a : req.apart) {
        min_apart = std::min<int64_t>(min_apart, mesh.Hops(t, a));
      }
    }
    const int64_t score = near_hops * 16 - min_apart;
    // Strict < keeps the lowest tile id on ties: deterministic placement.
    if (best == kInvalidTile || score < best_score) {
      best = t;
      best_score = score;
    }
  }
  return best;
}

void Placer::Reserve(TileId tile) {
  reserved_.insert(tile);
  counters_.Add("placer.reservations");
}

void Placer::Release(TileId tile) { reserved_.erase(tile); }

}  // namespace apiary
