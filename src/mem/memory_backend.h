// Abstract memory backend: what the memory/DMA services program against.
// Implemented by the single-channel MemoryController and by the
// multi-channel InterleavedMemory (HBM-style).
#ifndef SRC_MEM_MEMORY_BACKEND_H_
#define SRC_MEM_MEMORY_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  // Asynchronous accesses; `done` fires when the DRAM timing completes.
  // Return false on backpressure (caller retries next cycle).
  virtual bool SubmitRead(uint64_t addr, std::span<uint8_t> out,
                          std::function<void(Cycle)> done) = 0;
  virtual bool SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                           std::function<void(Cycle)> done) = 0;

  // Zero-latency debug access for tests and initial state.
  virtual void DebugWrite(uint64_t addr, std::span<const uint8_t> data) = 0;
  virtual std::vector<uint8_t> DebugRead(uint64_t addr, uint64_t len) const = 0;

  virtual uint64_t capacity() const = 0;
};

}  // namespace apiary

#endif  // SRC_MEM_MEMORY_BACKEND_H_
