// FPGA part catalog. The four parts from Table 1 of the paper, plus a few
// additional parts used by the resource-scaling experiments.
#ifndef SRC_FPGA_PART_CATALOG_H_
#define SRC_FPGA_PART_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace apiary {

struct FpgaPart {
  std::string family;
  uint32_t year_released;
  std::string part_number;
  uint64_t logic_cells;
  // True for the rows that appear verbatim in the paper's Table 1.
  bool in_paper_table;
};

// Returns the full catalog (paper rows first, in paper order).
const std::vector<FpgaPart>& PartCatalog();

// Looks up a part by part number (e.g. "VU29P"). Returns nullopt if unknown.
std::optional<FpgaPart> FindPart(const std::string& part_number);

}  // namespace apiary

#endif  // SRC_FPGA_PART_CATALOG_H_
