#include "src/sim/active_schedule.h"

#include <algorithm>

namespace apiary {

uint32_t ActiveSchedule::Add(Clocked* block, Cycle now, bool defer_first_tick) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.block = block;
  s.order = next_order_++;
  s.deadline = 0;
  // A block registered from inside a Tick() must not tick this cycle (the
  // legacy loop's count snapshot excluded it); one registered from an event
  // callback runs this cycle (the snapshot was taken after events).
  s.no_tick_before = (ticking_ || defer_first_tick) ? now + 1 : 0;
  s.state = State::kActive;
  s.policy = block->SchedulingPolicy();
  block->BindWakeSink(this, slot);
  ++live_count_;
  if (s.policy == Clocked::SchedPolicy::kEveryCycle) {
    pinned_.push_back(slot);
  } else if (s.policy == Clocked::SchedPolicy::kBoundaryPoll) {
    polled_.push_back(slot);
  }
  InsertActive(slot);
  return slot;
}

void ActiveSchedule::Remove(uint32_t slot) {
  if (slot >= slots_.size() || slots_[slot].state == State::kFree) {
    return;
  }
  Slot& s = slots_[slot];
  if (s.state == State::kActive) {
    const auto it = std::lower_bound(active_.begin(), active_.end(), slot,
                                     [this](uint32_t a, uint32_t b) {
                                       return slots_[a].order < slots_[b].order;
                                     });
    if (it != active_.end() && *it == slot) {
      const size_t pos = static_cast<size_t>(it - active_.begin());
      active_.erase(it);
      if (ticking_ && pos <= cursor_) {
        --cursor_;
      }
      if (s.policy == Clocked::SchedPolicy::kActiveSet) {
        --transient_active_;
      }
    }
  } else if (s.state == State::kTimed && !s.timed_far) {
    --near_timed_;
  }
  auto erase_from = [slot](std::vector<uint32_t>& v) {
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
  };
  if (s.policy == Clocked::SchedPolicy::kEveryCycle) {
    erase_from(pinned_);
  } else if (s.policy == Clocked::SchedPolicy::kBoundaryPoll) {
    erase_from(polled_);
  }
  s.block->BindWakeSink(nullptr, 0);
  s.block = nullptr;
  s.state = State::kFree;
  ++s.gen;  // Invalidates every wheel/far entry and hot-slot cache for this slot.
  --live_count_;
  free_slots_.push_back(slot);
}

Clocked* ActiveSchedule::BlockAt(uint32_t slot, uint32_t gen) const {
  if (slot >= slots_.size()) {
    return nullptr;
  }
  const Slot& s = slots_[slot];
  return (s.state != State::kFree && s.gen == gen) ? s.block : nullptr;
}

void ActiveSchedule::InsertActive(uint32_t slot) {
  const auto it = std::lower_bound(active_.begin(), active_.end(), slot,
                                   [this](uint32_t a, uint32_t b) {
                                     return slots_[a].order < slots_[b].order;
                                   });
  const size_t pos = static_cast<size_t>(it - active_.begin());
  active_.insert(it, slot);
  // Mid-loop wake ordering: an insert at or before the cursor shifts the
  // in-progress element right, and the woken block (earlier in registration
  // order than the waker) must not tick this cycle — the legacy loop had
  // already passed it when the input arrived. Advancing the cursor handles
  // both at once. An insert after the cursor ticks this cycle, exactly when
  // the legacy loop would have reached it.
  if (ticking_ && pos <= cursor_) {
    ++cursor_;
  }
  if (slots_[slot].policy == Clocked::SchedPolicy::kActiveSet) {
    ++transient_active_;
  }
}

void ActiveSchedule::Activate(uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.state == State::kTimed && !s.timed_far) {
    --near_timed_;
  }
  s.state = State::kActive;
  InsertActive(slot);
}

void ActiveSchedule::Wake(uint32_t slot) {
  ++wake_calls_;
  if (slot >= slots_.size()) {
    return;
  }
  const State st = slots_[slot].state;
  if (st == State::kActive || st == State::kFree) {
    return;  // Already ticking (or gone): a wake is never an error.
  }
  Activate(slot);
}

void ActiveSchedule::RefreshPolicy(uint32_t slot) {
  if (slot >= slots_.size() || slots_[slot].state == State::kFree) {
    return;
  }
  Slot& s = slots_[slot];
  const Clocked::SchedPolicy next = s.block->SchedulingPolicy();
  if (next == s.policy) {
    return;
  }
  // Pull the block into the active list first (under its old policy, so
  // transient accounting stays consistent), then swap list membership.
  if (s.state != State::kActive) {
    Activate(slot);
  }
  auto erase_from = [slot](std::vector<uint32_t>& v) {
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
  };
  switch (s.policy) {
    case Clocked::SchedPolicy::kActiveSet:
      --transient_active_;
      break;
    case Clocked::SchedPolicy::kEveryCycle:
      erase_from(pinned_);
      break;
    case Clocked::SchedPolicy::kBoundaryPoll:
      erase_from(polled_);
      break;
  }
  s.policy = next;
  switch (next) {
    case Clocked::SchedPolicy::kActiveSet:
      ++transient_active_;
      break;
    case Clocked::SchedPolicy::kEveryCycle:
      pinned_.push_back(slot);
      break;
    case Clocked::SchedPolicy::kBoundaryPoll:
      polled_.push_back(slot);
      break;
  }
}

void ActiveSchedule::ScheduleTimed(uint32_t slot, Cycle now, Cycle deadline) {
  Slot& s = slots_[slot];
  s.state = State::kTimed;
  s.deadline = deadline;
  if (deadline - now < kWheelBuckets) {
    s.timed_far = false;
    buckets_[deadline % kWheelBuckets].push_back(WheelEntry{slot, s.gen, deadline});
    ++near_timed_;
    wheel_min_ = std::min(wheel_min_, deadline);
  } else {
    s.timed_far = true;
    far_.push_back(WheelEntry{slot, s.gen, deadline});
    far_min_ = std::min(far_min_, deadline);
  }
}

void ActiveSchedule::ExecuteTicks(Cycle now) {
  ticking_ = true;
  for (cursor_ = 0; cursor_ < active_.size(); ++cursor_) {
    const uint32_t slot = active_[cursor_];
    if (slots_[slot].no_tick_before > now) {
      continue;
    }
    Clocked* block = slots_[slot].block;
    block->Tick(now);
    ++ticked_blocks_;
  }
  ticking_ = false;
}

void ActiveSchedule::AdvanceBoundary(Cycle now) {
  // 1. Pop due timer-wheel entries. Buckets are visited once per cycle in
  // (last_boundary_, now]; a jump of a full wheel revolution or more visits
  // every bucket once. Far entries activate straight from the far list.
  if (near_timed_ > 0 || last_boundary_ + 1 < now) {
    const Cycle gap = now - last_boundary_;
    const Cycle first = gap >= kWheelBuckets ? now - kWheelBuckets + 1 : last_boundary_ + 1;
    for (Cycle c = first; c <= now; ++c) {
      std::vector<WheelEntry>& bucket = buckets_[c % kWheelBuckets];
      if (bucket.empty()) {
        continue;
      }
      size_t kept = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        const WheelEntry e = bucket[i];
        if (e.deadline > now) {
          bucket[kept++] = e;  // Aliased future revolution: stays.
          continue;
        }
        if (EntryLive(e)) {
          Activate(e.slot);
          ++wheel_wakes_;
        }
        // Due-but-stale entries (woken or removed earlier) just drop.
      }
      bucket.resize(kept);
    }
    wheel_min_ = std::max(wheel_min_, now + 1);
  }
  if (!far_.empty() && far_min_ <= now) {
    size_t kept = 0;
    Cycle next_min = kNoActivity;
    for (size_t i = 0; i < far_.size(); ++i) {
      const WheelEntry e = far_[i];
      if (e.deadline <= now) {
        if (EntryLive(e)) {
          Activate(e.slot);
          ++wheel_wakes_;
        }
        continue;
      }
      if (!EntryLive(e)) {
        continue;  // Compact stale future entries while we are here.
      }
      next_min = std::min(next_min, e.deadline);
      far_[kept++] = e;
    }
    far_.resize(kept);
    far_min_ = next_min;
  }

  // 2. Re-poll the active list and park the quiescent: declared-future blocks
  // go to the wheel, idle-until-input blocks park on their wake channel, and
  // boundary-poll blocks park bare (they are re-polled here every boundary).
  // Pinned (kEveryCycle) blocks stay without being polled.
  size_t kept = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    const uint32_t slot = active_[i];
    Slot& s = slots_[slot];
    if (s.policy == Clocked::SchedPolicy::kEveryCycle) {
      active_[kept++] = slot;
      continue;
    }
    const Cycle next = s.block->NextActivity(now);
    if (next <= now) {
      active_[kept++] = slot;
      continue;
    }
    if (s.policy == Clocked::SchedPolicy::kActiveSet) {
      --transient_active_;
      if (next == kNoActivity) {
        s.state = State::kParked;
      } else {
        ScheduleTimed(slot, now, next);
      }
    } else {
      s.state = State::kParked;  // kBoundaryPoll: never wheeled, re-polled below.
    }
  }
  active_.resize(kept);

  // 3. Re-admit boundary-poll blocks whose external inputs arrived since the
  // last boundary (shard-phase enqueues, link flips — no wake path).
  for (const uint32_t slot : polled_) {
    Slot& s = slots_[slot];
    if (s.state == State::kParked && s.block->NextActivity(now) <= now) {
      Activate(slot);
    }
  }

  last_boundary_ = now;
}

Cycle ActiveSchedule::EarliestWork(Cycle now) const {
  if (transient_active_ > 0) {
    return now;  // O(1): some kActiveSet block is busy.
  }
  Cycle earliest = kNoActivity;
  for (const uint32_t slot : pinned_) {
    const Cycle next = slots_[slot].block->NextActivity(now);
    if (next <= now) {
      return now;
    }
    earliest = std::min(earliest, next);
  }
  for (const uint32_t slot : polled_) {
    const Cycle next = slots_[slot].block->NextActivity(now);
    if (next <= now) {
      return now;
    }
    earliest = std::min(earliest, next);
  }
  // Earliest live wheel deadline: walk cycles from the cached lower bound.
  // Every live near entry has deadline in (now, now + kWheelBuckets), so the
  // walk is bounded by one revolution; stale entries are skipped (the skip
  // target must be exact, not a bound — skip counters are part of the
  // byte-identity contract).
  if (near_timed_ > 0) {
    const Cycle start = std::max(wheel_min_, now + 1);
    for (Cycle c = start; c < now + kWheelBuckets; ++c) {
      bool found = false;
      for (const WheelEntry& e : buckets_[c % kWheelBuckets]) {
        if (e.deadline == c && EntryLive(e)) {
          found = true;
          break;
        }
      }
      if (found) {
        earliest = std::min(earliest, c);
        break;
      }
    }
  }
  for (const WheelEntry& e : far_) {
    if (EntryLive(e)) {
      earliest = std::min(earliest, e.deadline);
    }
  }
  return earliest;
}

void ActiveSchedule::RebuildAllActive() {
  for (auto& bucket : buckets_) {
    bucket.clear();
  }
  far_.clear();
  far_min_ = kNoActivity;
  wheel_min_ = kNoActivity;
  near_timed_ = 0;
  active_.clear();
  transient_active_ = 0;
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    Slot& s = slots_[slot];
    if (s.state == State::kFree) {
      continue;
    }
    s.state = State::kActive;
    active_.push_back(slot);
    if (s.policy == Clocked::SchedPolicy::kActiveSet) {
      ++transient_active_;
    }
  }
  std::sort(active_.begin(), active_.end(), [this](uint32_t a, uint32_t b) {
    return slots_[a].order < slots_[b].order;
  });
}

}  // namespace apiary
