// Additional coverage: edge cases and failure paths not exercised by the
// per-module suites — monitor limits, gateway/netsvc malformed traffic,
// client retry machinery, energy accounting, logging.
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/baseline/hosted.h"
#include "src/core/energy.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/network_service.h"
#include "src/sim/logging.h"
#include "src/workload/client.h"
#include "src/workload/frame_source.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// ---------------------------------------------------------------------
// Monitor limits and edge cases.
// ---------------------------------------------------------------------

TEST(MonitorLimitsTest, OversizedMessageFailsFast) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc = 0;
  tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.Run(3);
  Message huge;
  huge.opcode = kOpEcho;
  huge.payload.assign(1 << 20, 1);  // ~32k flits >> 512-flit NI queue.
  const SendResult r = tb.os.monitor(pt).Send(std::move(huge), cap);
  EXPECT_EQ(r.status, MsgStatus::kBadRequest);
  EXPECT_EQ(tb.os.monitor(pt).counters().Get("monitor.send_too_large"), 1u);
}

TEST(MonitorLimitsTest, OutboxFillsUnderBurst) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc = 0;
  tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.Run(3);
  // The outbox holds 16 messages; a synchronous burst beyond that sees
  // backpressure (the pipeline drains only one flit per cycle).
  int ok = 0;
  int backpressured = 0;
  for (int i = 0; i < 40; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload.assign(512, 1);
    const SendResult r = tb.os.monitor(pt).Send(std::move(msg), cap);
    if (r.ok()) {
      ++ok;
    } else if (r.status == MsgStatus::kBackpressure) {
      ++backpressured;
    }
  }
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(backpressured, 24);
}

TEST(MonitorLimitsTest, InboxOverflowBouncesBackpressure) {
  MonitorConfig cfg;
  cfg.inbox_messages = 4;
  TestBoard tb;  // Default board, but we build a custom kernel below.
  // Use the board's mesh directly with a custom-config monitor.
  Monitor monitor(0, &tb.board.mesh().ni(0), cfg);
  monitor.AllowSender(1);
  monitor.BeginCycle(0);
  for (int i = 0; i < 6; ++i) {
    Message msg;
    msg.kind = MsgKind::kRequest;
    msg.src_tile = 1;
    PacketRef packet(new NocPacket());
    packet->src = 1;
    packet->dst = 0;
    packet->payload = SerializeMessage(msg);
    packet->flit_count = ComputeFlitCount(*packet);
    tb.board.mesh().ni(0).EjectFlit(Flit{packet, packet->flit_count - 1}, 0);
  }
  monitor.BeginCycle(1);
  EXPECT_EQ(monitor.counters().Get("monitor.delivered"), 4u);
  EXPECT_EQ(monitor.counters().Get("monitor.inbox_overflow"), 2u);
  EXPECT_EQ(monitor.counters().Get("monitor.error_bounces"), 2u);
}

TEST(MonitorLimitsTest, ServiceAccessorReflectsIdentity) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  ServiceId svc = 0;
  const TileId t = tb.os.Deploy(app, std::make_unique<ProbeAccelerator>(), &svc);
  EXPECT_EQ(tb.os.monitor(t).service(), svc);
  EXPECT_EQ(tb.os.monitor(t).app(), app);
}

// ---------------------------------------------------------------------
// Gateway / network service failure paths.
// ---------------------------------------------------------------------

TEST(GatewayEdgeTest, MalformedInboundCounted) {
  TestBoard tb;
  auto* gw = new NetGateway();
  AppId app = tb.os.CreateApp("a");
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, gw_svc);
  (void)gt;
  Message short_deliver;
  short_deliver.opcode = kOpNetDeliver;
  short_deliver.payload = {1, 2};  // Way below the 14-byte minimum.
  probe->EnqueueSend(short_deliver, cap);
  tb.sim.Run(100);
  EXPECT_EQ(gw->counters().Get("gateway.malformed"), 1u);
}

TEST(GatewayEdgeTest, NoBackendAnswersClient) {
  TestBoard tb;
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g())));
  auto* gw = new NetGateway();  // Backend never set.
  AppId app = tb.os.CreateApp("a");
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gt, kNetworkService);
  struct Sink : ExternalEndpoint {
    std::vector<EthFrame> frames;
    void OnFrame(EthFrame f, Cycle) override { frames.push_back(std::move(f)); }
  } client;
  const uint32_t client_addr = tb.net.RegisterEndpoint(&client);
  tb.sim.Run(4000);
  EthFrame frame;
  frame.src_endpoint = client_addr;
  frame.dst_endpoint = tb.board.mac100g()->address();
  PutU32(frame.payload, gw_svc);
  PutU64(frame.payload, 1);
  frame.payload.push_back(1);
  frame.payload.push_back(0);
  tb.net.Send(std::move(frame), tb.sim.now());
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !client.frames.empty(); }, 100000));
  // Client gets an explicit kNoSuchService, not silence.
  ASSERT_GE(client.frames[0].payload.size(), 9u);
  EXPECT_EQ(client.frames[0].payload[8],
            static_cast<uint8_t>(MsgStatus::kNoSuchService));
}

TEST(NetworkServiceEdgeTest, ShortTxRequestCounted) {
  TestBoard tb;
  auto* netsvc =
      new NetworkService(&tb.os, std::make_unique<Mac100GAdapter>(tb.board.mac100g()));
  tb.os.DeployService(kNetworkService, std::unique_ptr<Accelerator>(netsvc));
  auto* probe = new ProbeAccelerator();
  AppId app = tb.os.CreateApp("a");
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, kNetworkService);
  Message bad;
  bad.opcode = kOpNetSend;
  bad.payload = {1};  // < 4 bytes of addressing.
  probe->EnqueueSend(bad, cap);
  tb.sim.Run(100);
  EXPECT_EQ(netsvc->counters().Get("netsvc.bad_tx"), 1u);
}

// ---------------------------------------------------------------------
// Client retry machinery.
// ---------------------------------------------------------------------

TEST(ClientRetryTest, LostFramesAreRetransmitted) {
  Simulator sim(250.0);
  ExternalNetwork net(10);
  sim.Register(&net);
  // A server that drops the first 3 requests, then echoes.
  struct FlakyServer : ExternalEndpoint, Clocked {
    ExternalNetwork* net = nullptr;
    uint32_t addr = 0;
    int dropped = 0;
    void OnFrame(EthFrame f, Cycle now) override {
      if (dropped < 3) {
        ++dropped;
        return;
      }
      // Reply: u64 id | status 0 | payload (id from offset 4 of request).
      EthFrame reply;
      reply.dst_endpoint = f.src_endpoint;
      reply.src_endpoint = addr;
      const uint64_t id = GetU64(f.payload, 4);
      PutU64(reply.payload, id);
      reply.payload.push_back(0);
      net->Send(std::move(reply), now);
    }
    void Tick(Cycle) override {}
  } server;
  server.net = &net;
  server.addr = net.RegisterEndpoint(&server);
  sim.Register(&server);

  ClientConfig cfg;
  cfg.server_endpoint = server.addr;
  cfg.open_loop = false;
  cfg.concurrency = 1;
  cfg.max_requests = 3;
  cfg.retry_timeout_cycles = 500;
  ClientHost client(cfg, &net, [](uint64_t, Rng&) {
    return ClientRequest{1, {0xaa}};
  });
  sim.Register(&client);
  ASSERT_TRUE(sim.RunUntil([&] { return client.received() >= 3; }, 100000));
  EXPECT_GE(client.timeouts(), 3u);
  EXPECT_EQ(client.errors(), 0u);
}

TEST(ClientOpenLoopTest, OfferedRateApproximatelyHonored) {
  Simulator sim(250.0);
  ExternalNetwork net(1);
  sim.Register(&net);
  struct NullServer : ExternalEndpoint {
    void OnFrame(EthFrame, Cycle) override {}
  } server;
  const uint32_t addr = net.RegisterEndpoint(&server);
  ClientConfig cfg;
  cfg.server_endpoint = addr;
  cfg.open_loop = true;
  cfg.requests_per_1k_cycles = 5.0;
  cfg.retry_timeout_cycles = 1 << 30;  // No retries in this test.
  ClientHost client(cfg, &net, [](uint64_t, Rng&) {
    return ClientRequest{1, {}};
  });
  sim.Register(&client);
  sim.Run(100000);
  // ~5 per 1k cycles over 100k cycles = ~500.
  EXPECT_NEAR(static_cast<double>(client.sent()), 500.0, 75.0);
}

// ---------------------------------------------------------------------
// Hosted baseline edge: bounded ingress queue.
// ---------------------------------------------------------------------

TEST(HostedEdgeTest, IngressOverflowDrops) {
  Simulator sim;
  ExternalNetwork net(1);
  sim.Register(&net);
  HostedConfig cfg;
  cfg.max_queue_depth = 8;
  HostedSystem hosted(cfg, sim, &net);
  struct Sink : ExternalEndpoint {
    void OnFrame(EthFrame, Cycle) override {}
  } client;
  const uint32_t client_addr = net.RegisterEndpoint(&client);
  for (int i = 0; i < 50; ++i) {
    EthFrame f;
    f.src_endpoint = client_addr;
    f.dst_endpoint = 0;
    f.payload = {1};
    net.Send(std::move(f), sim.now());
  }
  sim.Run(10);
  EXPECT_GT(hosted.dropped(), 0u);
}

// ---------------------------------------------------------------------
// Energy model sanity.
// ---------------------------------------------------------------------

TEST(EnergyModelTest, HostCpuMicrojoules) {
  EnergyModel em;
  em.host_cpu_watts = 10.0;
  // 250e6 cycles at 250 MHz = 1 second -> 10 J = 1e7 uJ.
  EXPECT_NEAR(em.HostCpuMicrojoules(250'000'000, 250.0), 1e7, 1.0);
  EXPECT_DOUBLE_EQ(em.HostCpuMicrojoules(0, 250.0), 0.0);
}

// ---------------------------------------------------------------------
// Logging.
// ---------------------------------------------------------------------

TEST(LoggingTest, LevelsFilter) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  // Below threshold: no crash, no output assertion needed — exercising the
  // path is the point.
  APIARY_LOG(kDebug) << "hidden " << 42;
  APIARY_LOG(kError) << "visible " << 43;
  SetLogLevel(LogLevel::kOff);
  APIARY_LOG(kError) << "suppressed";
}

// ---------------------------------------------------------------------
// Frame payload helper.
// ---------------------------------------------------------------------

TEST(FramePayloadTest, HeaderThenPixels) {
  const std::vector<uint8_t> pixels = {9, 8, 7, 6};
  const auto payload = FrameToRequestPayload(2, 2, pixels);
  ASSERT_EQ(payload.size(), 12u);
  EXPECT_EQ(GetU32(payload, 0), 2u);
  EXPECT_EQ(GetU32(payload, 4), 2u);
  EXPECT_EQ(payload[8], 9);
  EXPECT_EQ(payload[11], 6);
}

}  // namespace
}  // namespace apiary
