// Good: guard matches the SRC_PATH_H_ convention.
#ifndef SRC_UTIL_THING_H_
#define SRC_UTIL_THING_H_

namespace apiary {}

#endif  // SRC_UTIL_THING_H_
