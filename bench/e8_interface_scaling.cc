// Experiment E8: physical-interface scaling — NoC message passing versus
// per-service dedicated ports.
//
// Paper basis (Section 4.3): "In previous work, the number of physical
// interfaces is coupled with the number of services available... The NoC
// allows us to move service naming to an API-layer interface by making the
// destination ID a message field, so we can use the same physical interface
// to communicate with multiple services."
//
// Part A (structural): wires and logic an accelerator slot must dedicate as
// the number of reachable services grows, under both disciplines.
// Part B (measured): on a live board, one accelerator talks to N services
// through its single NI; aggregate throughput stays flat per added service
// instead of requiring new ports.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/probe.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

// Structural model of a per-service-port shell (Coyote/AmorphOS style):
// each attached service costs a dedicated AXI-stream pair at the slot edge.
struct PortModel {
  // 512-bit data + valid/ready/keep/last each way.
  static constexpr uint32_t kWiresPerPort = 2 * (512 + 3 + 64);
  static constexpr uint32_t kCellsPerPort = 1200;  // FIFO + CDC + mux glue.
};

// The Apiary slot: one NI regardless of the number of services.
struct NocModel {
  static constexpr uint32_t kWires = 2 * (kFlitBytes * 8 + 4);  // One flit link.
  static uint32_t Cells() { return NetworkInterface::LogicCellCost(); }
};

// Measured: a driver sends round-robin to N echo services; returns aggregate
// completed ops in a fixed window through ONE physical interface.
uint64_t MeasureAggregateOps(uint32_t services) {
  BenchBoard bb(BenchBoardOptions{4, 4}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("many-services");

  class FanClient : public Accelerator {
   public:
    explicit FanClient(std::vector<ServiceId> targets) : targets_(std::move(targets)) {}
    void Tick(TileApi& api) override {
      while (in_flight_ < 32) {
        Message msg;
        msg.opcode = kOpEcho;
        msg.payload.assign(64, 1);
        const ServiceId target = targets_[next_ % targets_.size()];
        if (!api.Send(std::move(msg), api.LookupService(target)).ok()) {
          break;
        }
        ++next_;
        ++in_flight_;
      }
    }
    void OnMessage(const Message& msg, TileApi&) override {
      if (msg.kind == MsgKind::kResponse) {
        --in_flight_;
        ++done;
      }
    }
    std::string name() const override { return "fan_client"; }
    uint32_t LogicCellCost() const override { return 1000; }
    uint64_t done = 0;

   private:
    std::vector<ServiceId> targets_;
    uint64_t next_ = 0;
    uint32_t in_flight_ = 0;
  };

  std::vector<ServiceId> targets;
  for (uint32_t i = 0; i < services; ++i) {
    ServiceId svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(300), &svc);
    targets.push_back(svc);
  }
  auto* client = new FanClient(targets);
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  for (ServiceId svc : targets) {
    (void)os.GrantSendToService(ct, svc);
  }
  bb.sim.Run(300000);
  return client->done;
}

}  // namespace

int main() {
  std::printf("E8: one NoC interface vs one port per service (Section 4.3)\n");

  Table part_a("E8a: accelerator-slot edge cost vs reachable services (structural)");
  part_a.SetHeader({"services", "ports: wires", "ports: cells", "apiary: wires",
                    "apiary: cells", "apiary: cap entries"});
  for (uint32_t n : {1u, 2u, 4u, 8u, 12u}) {
    part_a.AddRow({Table::Int(n), Table::Int(n * PortModel::kWiresPerPort),
                   Table::Int(n * PortModel::kCellsPerPort), Table::Int(NocModel::kWires),
                   Table::Int(NocModel::Cells()), Table::Int(n)});
  }
  part_a.Print();

  Table part_b("E8b: measured aggregate throughput through ONE interface (300k cycles)");
  part_b.SetHeader({"services reached", "completed ops", "ops per service"});
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    const uint64_t done = MeasureAggregateOps(n);
    part_b.AddRow({Table::Int(n), Table::Int(done),
                   Table::Num(static_cast<double>(done) / n, 1)});
  }
  part_b.Print();

  std::printf(
      "\nexpected shape: per-service ports grow the slot's wire and logic budget\n"
      "linearly (8 services ~ 9k wires), while Apiary's slot edge is constant — a\n"
      "new service costs one capability-table entry. Measured throughput through the\n"
      "single NI keeps rising with more services (they serve in parallel) until the\n"
      "client's window, not the interface count, binds.\n");
  return 0;
}
