# Empty compiler generated dependencies file for a1_vc_ablation.
# This may be replaced when dependencies are built.
