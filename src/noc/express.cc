#include "src/noc/express.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "src/noc/mesh.h"
#include "src/noc/network_interface.h"
#include "src/noc/router.h"

namespace apiary {

namespace {
// The port a flit leaving through `out` arrives on downstream.
constexpr RouterPort kOpposite[4] = {kPortSouth, kPortNorth, kPortWest, kPortEast};
// Tile itself plus its 4-neighborhood (the corridor zone stencil).
constexpr int32_t kZoneDx[5] = {0, 0, 0, 1, -1};
constexpr int32_t kZoneDy[5] = {0, -1, 1, 0, 0};

inline int32_t Sign(int32_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }
}  // namespace

void ExpressLane::Configure(Mesh* mesh, uint32_t num_tiles, const uint32_t* shard_of_tile,
                            uint32_t shard) {
  assert(active_count_ == 0 && "reconfiguring a lane with corridors in flight");
  mesh_ = mesh;
  shard_of_tile_ = shard_of_tile;
  shard_ = shard;
  num_tiles_ = num_tiles;
  corridors_.assign(kMaxCorridors, Corridor{});
  path_owner_.assign(num_tiles, 0);
  zone_count_.assign(num_tiles, 0);
  source_owner_.assign(num_tiles, 0);
  active_count_ = 0;
}

TileId ExpressLane::PathTile(const Corridor& c, uint32_t k) const {
  const int32_t nx = std::abs(c.dx - c.sx);
  const int32_t kk = static_cast<int32_t>(k);
  const int32_t width = static_cast<int32_t>(mesh_->width());
  if (kk <= nx) {
    return static_cast<TileId>(c.sy * width + c.sx + Sign(c.dx - c.sx) * kk);
  }
  return static_cast<TileId>((c.sy + Sign(c.dy - c.sy) * (kk - nx)) * width + c.dx);
}

RouterPort ExpressLane::PathOut(const Corridor& c, uint32_t k) const {
  const int32_t nx = std::abs(c.dx - c.sx);
  const int32_t ny = std::abs(c.dy - c.sy);
  const int32_t kk = static_cast<int32_t>(k);
  if (kk < nx) {
    return c.dx > c.sx ? kPortEast : kPortWest;
  }
  if (kk < nx + ny) {
    return c.dy > c.sy ? kPortSouth : kPortNorth;
  }
  return kPortLocal;
}

RouterPort ExpressLane::PathIn(const Corridor& c, uint32_t k) const {
  if (k == 0) {
    return kPortLocal;
  }
  return kOpposite[PathOut(c, k - 1)];
}

bool ExpressLane::ZoneContains(const Corridor& c, TileId tile) const {
  const int32_t width = static_cast<int32_t>(mesh_->width());
  const int32_t x = static_cast<int32_t>(tile) % width;
  const int32_t y = static_cast<int32_t>(tile) / width;
  for (uint32_t k = 0; k <= c.covered; ++k) {
    const TileId p = PathTile(c, k);
    const int32_t px = static_cast<int32_t>(p) % width;
    const int32_t py = static_cast<int32_t>(p) / width;
    if (std::abs(x - px) + std::abs(y - py) <= 1) {
      return true;
    }
  }
  return false;
}

void ExpressLane::InstallMaps(uint32_t index, int delta) {
  const Corridor& c = corridors_[index];
  const int32_t width = static_cast<int32_t>(mesh_->width());
  const int32_t height = static_cast<int32_t>(mesh_->height());
  source_owner_[PathTile(c, 0)] = delta > 0 ? static_cast<uint16_t>(index + 1) : 0;
  for (uint32_t k = 0; k <= c.covered; ++k) {
    const TileId t = PathTile(c, k);
    path_owner_[t] = delta > 0 ? static_cast<uint16_t>(index + 1) : 0;
    const int32_t x = static_cast<int32_t>(t) % width;
    const int32_t y = static_cast<int32_t>(t) / width;
    for (int n = 0; n < 5; ++n) {
      const int32_t zx = x + kZoneDx[n];
      const int32_t zy = y + kZoneDy[n];
      if (zx < 0 || zy < 0 || zx >= width || zy >= height) {
        continue;
      }
      // Adjacent path tiles share zone cells, so cells are counted with
      // multiplicity — install and remove stay symmetric.
      zone_count_[zy * width + zx] =
          static_cast<uint8_t>(zone_count_[zy * width + zx] + delta);
    }
  }
}

bool ExpressLane::TryLaunch(NetworkInterface& ni, Cycle now) {
  if (!enabled_ || active_count_ >= kMaxCorridors) {
    return false;
  }
  // A closed fault window draws no RNG and charges no counter, so skipping
  // the per-link hook calls is byte-exact only while the model is quiet
  // (FaultInjector::Fire materializes before any window opens).
  if (mesh_->fault_model_ != nullptr && !mesh_->fault_model_->NocQuiet(now)) {
    return false;
  }
  // Queue precondition: exactly one packet, whole, alone on its VC — the
  // closed-form schedule assumes one flit injected per cycle from one queue.
  int q = -1;
  for (int v = 0; v < kNumVcs; ++v) {
    if (!ni.inject_queues_[v].empty()) {
      if (q != -1) {
        return false;
      }
      q = v;
    }
  }
  if (q == -1) {
    return false;
  }
  auto& queue = ni.inject_queues_[q];
  const Flit& head = queue.front();
  if (head.index != 0) {
    return false;  // Mid-packet: earlier flits already staged for real.
  }
  const uint32_t flits = head.packet->flit_count;
  if (queue.size() != flits) {
    return false;
  }
  const TileId src = ni.tile();
  const TileId dst = head.dst();
  if (dst >= num_tiles_) {
    return false;
  }
  uint32_t slot = kMaxCorridors;
  for (uint32_t i = 0; i < kMaxCorridors; ++i) {
    if (!corridors_[i].active) {
      slot = i;
      break;
    }
  }
  if (slot == kMaxCorridors) {
    return false;
  }
  Corridor& c = corridors_[slot];
  const int32_t width = static_cast<int32_t>(mesh_->width());
  const int32_t height = static_cast<int32_t>(mesh_->height());
  c.sx = static_cast<int32_t>(src) % width;
  c.sy = static_cast<int32_t>(src) / width;
  c.dx = static_cast<int32_t>(dst) % width;
  c.dy = static_cast<int32_t>(dst) / width;
  const uint32_t hops =
      static_cast<uint32_t>(std::abs(c.dx - c.sx) + std::abs(c.dy - c.sy));
  c.hops = hops;
  // A corridor flit can transiently share an input buffer with its successor
  // (downstream router committed before the upstream one routed), so multi-
  // hop corridors need two slots per buffer.
  if (hops >= 1 && mesh_->config_.router_buffer_depth < 2) {
    return false;
  }
  // Non-interference walk over the path and its zone.
  uint32_t covered = 0;
  bool truncated = false;
  for (uint32_t k = 0; k <= hops; ++k) {
    const TileId t = PathTile(c, k);
    const int32_t x = static_cast<int32_t>(t) % width;
    const int32_t y = static_cast<int32_t>(t) / width;
    if (shard_of_tile_ != nullptr) {
      // The tile and its whole zone stencil must be shard-interior: a zone
      // tile in another shard would hide interference in a live set this
      // lane's conflict scan never reads. The corridor truncates at the last
      // interior router and self-materializes there (shard-cut truncation).
      bool interior = shard_of_tile_[t] == shard_;
      for (int n = 1; n < 5 && interior; ++n) {
        const int32_t zx = x + kZoneDx[n];
        const int32_t zy = y + kZoneDy[n];
        if (zx >= 0 && zy >= 0 && zx < width && zy < height) {
          interior = shard_of_tile_[zy * width + zx] == shard_;
        }
      }
      if (!interior) {
        if (k < 2) {
          return false;  // No analytic coverage worth installing.
        }
        truncated = true;
        covered = k - 1;
        break;
      }
    }
    const Router& r = *mesh_->routers_[t];
    if (r.HasBufferedFlits()) {
      return false;
    }
    if (r.outputs_[PathOut(c, k)][q].owner_port != -1) {
      return false;  // Wormhole bubble: a packet still owns this output VC.
    }
    // Stay out of every existing corridor's zone (and keep them out of our
    // zone below): materializing one corridor must never invalidate another.
    if (zone_count_[t] != 0 || path_owner_[t] != 0) {
      return false;
    }
    if (k != 0 && mesh_->nis_[t]->HasPendingInject()) {
      return false;  // A mid-path NI is about to feed this router.
    }
    for (int n = 1; n < 5; ++n) {
      const int32_t zx = x + kZoneDx[n];
      const int32_t zy = y + kZoneDy[n];
      if (zx < 0 || zy < 0 || zx >= width || zy >= height) {
        continue;
      }
      const TileId z = static_cast<TileId>(zy * width + zx);
      if (path_owner_[z] != 0) {
        return false;  // Our zone may not cover another corridor's path.
      }
      if (mesh_->routers_[z]->HasBufferedFlits()) {
        return false;  // Busy zone: the first scan would materialize us.
      }
    }
    covered = k;
  }
  // Install: the queue drains into the corridor (one ref pins the packet),
  // and inject_rr_ takes the value any number of real injection cycles from
  // a sole-VC queue leaves behind.
  c.packet = queue.front().packet;
  while (!queue.empty()) {
    queue.pop_front();
  }
  ni.inject_rr_ = (q + 1) % kNumVcs;
  c.launch = now;
  c.flits = flits;
  c.vc = q;
  c.covered = truncated ? covered : hops;
  c.truncated = truncated;
  // Full corridors deliver when the tail ejects (D+F+H). Truncated ones run
  // until the lead flit is about to leave the last covered router, then
  // self-materialize so it crosses the boundary link cycle-accurately.
  c.due = truncated ? now + c.covered + 1 : now + flits + hops;
  c.active = true;
  ++active_count_;
  InstallMaps(slot, +1);
  ++stats_.launches;
  return true;
}

void ExpressLane::RunCompletions(Cycle now) {
  if (active_count_ == 0) {
    return;
  }
  for (uint32_t i = 0; i < kMaxCorridors; ++i) {
    Corridor& c = corridors_[i];
    if (!c.active) {
      continue;
    }
    // The mesh ticks every executed cycle while a corridor is active
    // (NextActivity == now), so a due cycle is never skipped past.
    assert(c.due >= now && "corridor completion missed its cycle");
    if (c.due != now) {
      continue;
    }
    if (c.truncated) {
      Materialize(i);
    } else {
      Deliver(i);
    }
  }
}

void ExpressLane::Deliver(uint32_t index) {
  Corridor& c = corridors_[index];
  // Each path router forwarded all F flits: catch up its counters and
  // arbitration state in one batch (nothing reads them mid-corridor — the
  // zone invariant keeps every observer away until materialization).
  for (uint32_t k = 0; k <= c.hops; ++k) {
    mesh_->routers_[PathTile(c, k)]->ExpressCatchUp(PathOut(c, k), PathIn(c, k), c.vc,
                                                    c.flits, c.flits);
  }
  // Replay the ejections at their exact scheduled cycles; the tail carries
  // the delivery logic (latency record, delivery queue, sink wake).
  NetworkInterface& dst_ni = *mesh_->nis_[PathTile(c, c.hops)];
  for (uint32_t i = 0; i < c.flits; ++i) {
    dst_ni.EjectFlit(Flit{c.packet, i}, c.launch + i + c.hops + 1);
  }
  ++stats_.delivered;
  stats_.hops_sum += c.hops;
  stats_.flits_delivered += c.flits;
  Remove(index);
}

void ExpressLane::Materialize(uint32_t index) {
  Corridor& c = corridors_[index];
  const Cycle e = state_time_;
  assert(e >= c.launch);
  const uint32_t elapsed = static_cast<uint32_t>(e - c.launch);
  const uint32_t launched = std::min(c.flits, elapsed + 1);
  NetworkInterface& src_ni = *mesh_->nis_[PathTile(c, 0)];
  NetworkInterface& dst_ni = *mesh_->nis_[PathTile(c, c.hops)];
  // Reconstruct end-of-cycle-E state: flit i sits staged in R_(E-D-i), or
  // has already ejected when that index passes the last router.
  for (uint32_t i = 0; i < launched; ++i) {
    const uint32_t k = elapsed - i;
    if (k > c.hops) {
      // Ejected at its scheduled cycle (never the tail — a corridor whose
      // tail ejected completed via Deliver instead).
      assert(i + 1 < c.flits);
      dst_ni.EjectFlit(Flit{c.packet, i}, c.launch + i + c.hops + 1);
    } else {
      const bool ok =
          mesh_->routers_[PathTile(c, k)]->AcceptFlit(PathIn(c, k), Flit{c.packet, i});
      assert(ok && "corridor router out of buffer space");
      (void)ok;
    }
  }
  // R_k forwarded clamp(E-D-k, 0, F) flits by the end of cycle E; routers
  // the lead flit has not left keep untouched arbitration state.
  for (uint32_t k = 0; k <= c.covered; ++k) {
    const uint32_t departed = elapsed > k ? std::min(c.flits, elapsed - k) : 0;
    mesh_->routers_[PathTile(c, k)]->ExpressCatchUp(PathOut(c, k), PathIn(c, k), c.vc,
                                                    departed, c.flits);
  }
  // Unlaunched flits return to the source queue in order (it is empty by the
  // source-inject hook: new traffic materializes this corridor first).
  if (launched < c.flits) {
    auto& queue = src_ni.inject_queues_[c.vc];
    assert(queue.empty());
    for (uint32_t i = launched; i < c.flits; ++i) {
      queue.push_back(Flit{c.packet, i});
    }
    if (!src_ni.live_marked_ && src_ni.live_out_ != nullptr) {
      src_ni.live_out_->push_back(src_ni.tile());
      src_ni.live_marked_ = true;
    }
  }
  ++stats_.materializations;
  Remove(index);
}

void ExpressLane::Remove(uint32_t index) {
  InstallMaps(index, -1);
  Corridor& c = corridors_[index];
  c.packet = PacketRef();
  c.active = false;
  --active_count_;
}

void ExpressLane::MaterializeTouchingRouter(TileId tile) {
  if (tile >= zone_count_.size() || zone_count_[tile] == 0) {
    return;
  }
  // Zones may overlap, so a busy tile can force out several corridors.
  for (uint32_t i = 0; i < kMaxCorridors && zone_count_[tile] != 0; ++i) {
    if (corridors_[i].active && ZoneContains(corridors_[i], tile)) {
      Materialize(i);
    }
  }
}

void ExpressLane::MaterializeTouchingNi(TileId tile) {
  if (tile < path_owner_.size() && path_owner_[tile] != 0) {
    Materialize(path_owner_[tile] - 1);
  }
}

void ExpressLane::MaterializeSource(TileId tile) {
  if (tile < source_owner_.size() && source_owner_[tile] != 0) {
    Materialize(source_owner_[tile] - 1);
  }
}

void ExpressLane::MaterializeAll() {
  for (uint32_t i = 0; i < kMaxCorridors && active_count_ != 0; ++i) {
    if (corridors_[i].active) {
      Materialize(i);
    }
  }
}

uint32_t ExpressLane::VirtualPending(TileId tile, int vc_index) const {
  if (active_count_ == 0 || tile >= source_owner_.size() || source_owner_[tile] == 0) {
    return 0;
  }
  const Corridor& c = corridors_[source_owner_[tile] - 1];
  if (c.vc != vc_index) {
    return 0;
  }
  // What the real run's draining queue would still hold as of state_time:
  // one flit left per mesh tick since launch.
  const uint64_t drained = state_time_ - c.launch + 1;
  return c.flits > drained ? static_cast<uint32_t>(c.flits - drained) : 0;
}

}  // namespace apiary
