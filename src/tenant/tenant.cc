#include "src/tenant/tenant.h"

#include <iomanip>
#include <sstream>

#include "src/sim/logging.h"

namespace apiary {

namespace {

// FNV-1a over the billing-record text; the digest kOpTenantStats exports so
// clients can prove two runs produced byte-identical records.
uint32_t Fnv1a(const std::string& text) {
  uint32_t h = 2166136261u;
  for (const char c : text) {
    h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
  }
  return h;
}

}  // namespace

TenantManager::TenantManager(ApiaryOs* os, Cycle meter_period)
    : os_(os), meter_period_(meter_period == 0 ? 1 : meter_period) {
  os_->sim().Register(this);
}

TenantId TenantManager::CreateTenant(const std::string& name, const TenantQuota& quota) {
  const TenantId id = next_tenant_++;
  TenantState t;
  t.name = name;
  t.quota = quota;
  if (quota.noc_flits_per_1k != 0) {
    t.noc_budget = TokenBucket(quota.noc_flits_per_1k, quota.noc_burst_flits);
  }
  tenants_[id] = std::move(t);
  // First tenant flips NextActivity from "idle forever" to the metering
  // boundary; the manager may be parked on that stale declaration.
  RequestWake();
  if (quota.arb_class != 0 && quota.arb_weight != 0) {
    os_->SetNocClassWeight(quota.arb_class, quota.arb_weight);
  }
  counters_.Add("tenant.created");
  return id;
}

AppId TenantManager::CreateApp(TenantId tenant, const std::string& name) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return kInvalidApp;
  }
  const AppId app = os_->CreateApp(name);
  t->apps.push_back(app);
  app_owner_[app] = tenant;
  if (memsvc_ != nullptr && t->quota.mem_ops_per_window != 0) {
    memsvc_->SetAppShare(app, t->quota.mem_ops_per_window, t->quota.mem_window_cycles);
  }
  return app;
}

bool TenantManager::AdmitTile(TenantId tenant) const {
  const TenantState* t = Find(tenant);
  if (t == nullptr) {
    return false;
  }
  return t->quota.max_tiles == 0 || t->tiles.size() < t->quota.max_tiles;
}

void TenantManager::AttachTile(TenantId tenant, TileId tile) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return;
  }
  t->tiles.push_back(tile);
  Monitor& m = os_->monitor(tile);
  if (!t->noc_budget.unlimited()) {
    m.SetSharedLimiter(&t->noc_budget);
  }
  if (t->quota.arb_class != 0) {
    m.SetArbClass(t->quota.arb_class);
  }
}

void TenantManager::DetachTile(TenantId tenant, TileId tile) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return;
  }
  for (auto it = t->tiles.begin(); it != t->tiles.end(); ++it) {
    if (*it == tile) {
      t->tiles.erase(it);
      break;
    }
  }
  os_->monitor(tile).SetSharedLimiter(nullptr);
  os_->monitor(tile).SetArbClass(0);
}

TileId TenantManager::Deploy(TenantId tenant, AppId app, std::unique_ptr<Accelerator> accel,
                             ServiceId* out_service, DeployOptions options) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return kInvalidTile;
  }
  if (!AdmitTile(tenant)) {
    counters_.Add("tenant.deploy_quota_denied");
    return kInvalidTile;
  }
  const TileId tile = os_->Deploy(app, std::move(accel), out_service, options);
  if (tile == kInvalidTile) {
    return kInvalidTile;
  }
  AttachTile(tenant, tile);
  return tile;
}

CapRef TenantManager::GrantSendToService(TenantId tenant, TileId src, ServiceId dst) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return kInvalidCapRef;
  }
  const CapRef ref = os_->GrantSendToService(src, dst);
  if (ref != kInvalidCapRef) {
    t->grants.emplace_back(src, ref);
  }
  return ref;
}

void TenantManager::RevokeAll(TenantId tenant) {
  TenantState* t = Find(tenant);
  if (t == nullptr) {
    return;
  }
  // The subtree cut: every capability the tenant was ever granted through
  // this manager dies in one sweep (already-revoked entries no-op).
  for (const auto& [tile, ref] : t->grants) {
    os_->Revoke(tile, ref);
  }
  t->grants.clear();
  counters_.Add("tenant.subtree_revocations");
}

void TenantManager::AttachScheduler(TenantId tenant, ReconfigScheduler* scheduler) {
  TenantState* t = Find(tenant);
  if (t == nullptr || scheduler == nullptr) {
    return;
  }
  scheduler->SetRateQuota(t->quota.reconfig_loads_per_window,
                          t->quota.reconfig_window_cycles);
}

void TenantManager::SetSupervisor(Supervisor* supervisor) { supervisor_ = supervisor; }

void TenantManager::SetMemoryService(MemoryService* memsvc) {
  memsvc_ = memsvc;
  // Install shares for apps created before the service was attached.
  for (const auto& [app, tenant] : app_owner_) {
    const TenantState* t = Find(tenant);
    if (t != nullptr && t->quota.mem_ops_per_window != 0) {
      memsvc_->SetAppShare(app, t->quota.mem_ops_per_window, t->quota.mem_window_cycles);
    }
  }
}

uint64_t TenantManager::SumMonitorCounter(const TenantState& t,
                                          const std::string& name) const {
  uint64_t sum = 0;
  for (const TileId tile : t.tiles) {
    sum += os_->monitor(tile).counters().Get(name);
  }
  return sum;
}

uint64_t TenantManager::SumMemOps(const TenantState& t) const {
  if (memsvc_ == nullptr) {
    return 0;
  }
  uint64_t sum = 0;
  for (const AppId app : t.apps) {
    sum += memsvc_->AppOps(app);
  }
  return sum;
}

void TenantManager::CutRecord(TenantId id, TenantState& t, Cycle now) {
  // Sample member-monitor counters and emit the period's deltas. Every
  // input is deterministic simulation state, so the record text is a pure
  // function of the run's seed and configuration.
  const uint64_t messages = SumMonitorCounter(t, "monitor.sends");
  const uint64_t flits = SumMonitorCounter(t, "monitor.flits_sent");
  // Denials cover both enforcement flavors: rate-limit refusals (quota
  // pressure) and capability refusals (probe sweeps) — either one, sustained,
  // is offense material.
  const uint64_t denials = SumMonitorCounter(t, "monitor.send_rate_limited") +
                           SumMonitorCounter(t, "monitor.send_no_cap");
  const uint64_t mem_ops = SumMemOps(t);
  const uint64_t d_messages = messages - t.last_messages;
  const uint64_t d_flits = flits - t.last_flits;
  const uint64_t d_denials = denials - t.last_denials;
  const uint64_t d_mem_ops = mem_ops - t.last_mem_ops;
  t.last_messages = messages;
  t.last_flits = flits;
  t.last_denials = denials;
  t.last_mem_ops = mem_ops;

  const uint64_t tile_cycles = t.tiles.size() * meter_period_;
  t.totals.tiles = static_cast<uint32_t>(t.tiles.size());
  t.totals.tile_cycles += tile_cycles;
  t.totals.messages_sent += d_messages;
  t.totals.flits_sent += d_flits;
  t.totals.quota_denials += d_denials;
  t.totals.mem_ops += d_mem_ops;

  std::ostringstream line;
  line << "[t" << std::setw(4) << std::setfill('0') << id << " @" << std::setw(12)
       << now << "] tiles=" << t.tiles.size() << " tile_cycles=" << tile_cycles
       << " msgs=" << d_messages << " flits=" << d_flits << " denied=" << d_denials
       << " mem_ops=" << d_mem_ops;

  // Repeat-offender escalation: sustained quota pressure is adversarial,
  // not bursty bad luck. Strikes accumulate per offending period and clear
  // on a clean one.
  if (t.quota.offense_threshold != 0 && !t.escalated) {
    if (d_denials >= t.quota.offense_threshold) {
      ++t.strikes;
      line << " strike=" << t.strikes;
      if (t.strikes >= t.quota.quarantine_strikes) {
        Escalate(id, t);
        line << " escalated";
      }
    } else {
      t.strikes = 0;
    }
  }
  line << "\n";
  t.records += line.str();
  ++t.record_count;
  counters_.Add("tenant.records_cut");
}

void TenantManager::Escalate(TenantId id, TenantState& t) {
  t.escalated = true;
  counters_.Add("tenant.escalations");
  APIARY_LOG(kWarn) << "tenant_manager: tenant " << id << " (" << t.name
                    << ") escalated to quarantine after " << t.strikes << " strikes";
  RevokeAll(id);
  for (const TileId tile : t.tiles) {
    if (supervisor_ != nullptr) {
      supervisor_->Quarantine(tile, "tenant quota abuse");
    } else {
      os_->FailStop(tile, "tenant quota abuse");
    }
  }
}

void TenantManager::Tick(Cycle now) {
  now_ = now;
  if (now == 0 || now % meter_period_ != 0) {
    return;
  }
  for (auto& [id, t] : tenants_) {
    CutRecord(id, t, now);
  }
}

Cycle TenantManager::NextActivity(Cycle now) const {
  if (tenants_.empty()) {
    return kNoActivity;
  }
  const Cycle rem = now % meter_period_;
  return rem == 0 ? now : now + (meter_period_ - rem);
}

TenantManager::TenantState* TenantManager::Find(TenantId tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

const TenantManager::TenantState* TenantManager::Find(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

TenantUsage TenantManager::Usage(TenantId tenant) const {
  const TenantState* t = Find(tenant);
  return t == nullptr ? TenantUsage{} : t->totals;
}

const std::string& TenantManager::BillingRecords(TenantId tenant) const {
  static const std::string kEmpty;
  const TenantState* t = Find(tenant);
  return t == nullptr ? kEmpty : t->records;
}

uint32_t TenantManager::BillingRecordCount(TenantId tenant) const {
  const TenantState* t = Find(tenant);
  return t == nullptr ? 0 : t->record_count;
}

uint32_t TenantManager::BillingDigest(TenantId tenant) const {
  return Fnv1a(BillingRecords(tenant));
}

const std::vector<TileId>& TenantManager::Tiles(TenantId tenant) const {
  static const std::vector<TileId> kEmpty;
  const TenantState* t = Find(tenant);
  return t == nullptr ? kEmpty : t->tiles;
}

const TenantQuota& TenantManager::Quota(TenantId tenant) const {
  static const TenantQuota kDefault;
  const TenantState* t = Find(tenant);
  return t == nullptr ? kDefault : t->quota;
}

bool TenantManager::Escalated(TenantId tenant) const {
  const TenantState* t = Find(tenant);
  return t != nullptr && t->escalated;
}

}  // namespace apiary
