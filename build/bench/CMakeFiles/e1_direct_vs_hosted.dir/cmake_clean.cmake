file(REMOVE_RECURSE
  "CMakeFiles/e1_direct_vs_hosted.dir/e1_direct_vs_hosted.cc.o"
  "CMakeFiles/e1_direct_vs_hosted.dir/e1_direct_vs_hosted.cc.o.d"
  "e1_direct_vs_hosted"
  "e1_direct_vs_hosted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_direct_vs_hosted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
