#include "src/stats/table.h"

#include <algorithm>
#include <sstream>

namespace apiary {

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  // Groups digits with commas for readability (123,456,789).
  std::string digits = std::to_string(v);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++counter;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) {
        widths.resize(c + 1, 0);
      }
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 3;
  }
  std::fprintf(out, "\n=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 3), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  if (!header_.empty()) {
    print_row(header_);
    std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  }
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << row[c];
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

}  // namespace apiary
