// The Apiary message: the single IPC primitive (Section 4.5).
//
// Accelerators compose a Message and hand it to their monitor together with
// a capability reference; the monitor validates, stamps the trusted header
// fields, and injects it onto the NoC. The wire format packs the header into
// the head-flit region of the packet and moves the payload alongside it —
// serialization is move-through: the header is written in place and the
// PayloadBuf payload changes owner without being recopied (DESIGN.md
// "Hot-path memory discipline").
#ifndef SRC_CORE_MESSAGE_H_
#define SRC_CORE_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mem/segment_allocator.h"
#include "src/noc/packet.h"
#include "src/sim/payload_buf.h"
#include "src/sim/types.h"

namespace apiary {

// Result/status codes carried by responses and returned by Send().
enum class MsgStatus : uint8_t {
  kOk = 0,
  kNoCapability = 1,     // Sender holds no valid capability for this send.
  kRateLimited = 2,      // Monitor token bucket exhausted.
  kBackpressure = 3,     // NI injection queue full; retry.
  kNoSuchService = 4,    // Logical name does not resolve.
  kDestFailed = 5,       // Destination tile is fail-stopped.
  kDenied = 6,           // Destination monitor rejected the sender.
  kBadRequest = 7,       // Malformed request payload.
  kSegFault = 8,         // Memory access outside the presented segment.
  kNoMemory = 9,         // Allocation failure.
  kRevoked = 10,         // Capability generation is stale.
  kTileStopped = 11,     // Local tile is fail-stopped; send refused.
  kNotFound = 12,        // Application-level lookup miss (e.g. KV GET).
};

const char* MsgStatusName(MsgStatus status);

// Message kinds; requests travel on the request VC, responses on the
// response VC (breaking message-dependent deadlock, Section 4.5).
enum class MsgKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
};

// A memory-segment grant attached by the *sending* monitor when the sender
// presents a memory capability alongside a send. Receivers (e.g. the memory
// service) trust it because only monitors can populate the field: the
// monitor overwrites whatever the untrusted accelerator wrote here.
struct SegmentGrant {
  Segment segment;
  bool can_read = false;
  bool can_write = false;
  // Dennis & Van Horn delegation: the holder may mint attenuated copies of
  // this capability for other tiles (through the memory service).
  bool can_grant = false;
  bool valid = false;
};

struct Message {
  // --- Untrusted fields (set by the sender's application logic). ---
  ServiceId dst_service = kInvalidService;
  MsgKind kind = MsgKind::kRequest;
  uint16_t opcode = 0;
  MsgStatus status = MsgStatus::kOk;  // Meaningful on responses.
  uint64_t request_id = 0;            // Request/response correlation.
  ProcessId dst_process = 0;          // Context within the destination.
  PayloadBuf payload;

  // --- Trusted fields (stamped by the sending monitor; receivers may rely
  //     on them for policy). ---
  TileId src_tile = kInvalidTile;
  ServiceId src_service = kInvalidService;
  AppId src_app = kInvalidApp;
  SegmentGrant grant;
  // Second grant for two-segment operations (e.g. DMA copy: source + dest).
  SegmentGrant grant2;

  // Serialized size in bytes (header + payload), determining flit count.
  size_t WireBytes() const;
};

// Fixed little-endian header size; static_asserted <= kPacketHeadBytes in
// message.cc so the whole header always fits the packet's head region.
inline constexpr size_t kMessageHeaderBytes =
    4 + 1 + 2 + 1 + 8 + 4 + 4 + 4 + 4 + 2 * (8 + 8 + 1) + 4;

// Move-through wire encoding: writes the header into packet.head, moves
// msg.payload into packet.payload (no copy), and stamps packet.checksum in
// the same pass. `msg` is consumed.
void SerializeMessageInto(Message&& msg, NocPacket& packet);

// Move-through decode: parses packet.head and moves packet.payload out into
// the returned Message. Returns nullopt on a malformed header (the packet's
// payload is left untouched in that case).
std::optional<Message> DeserializeMessage(NocPacket& packet);

// Contiguous-buffer encoding, kept for tests and cold callers (state
// snapshots, golden vectors). The hot path never materializes this copy.
std::vector<uint8_t> SerializeMessage(const Message& msg);
std::optional<Message> DeserializeMessage(const std::vector<uint8_t>& bytes);

// Ablation hook for bench/b2_hot_path: routes Serialize/DeserializeMessage
// through the contiguous copy path (one heap vector + full memcpy + second
// checksum pass per message each way), reproducing the pre-pool cost shape.
void SetMessageLegacyAllocMode(bool legacy);
bool MessageLegacyAllocMode();

// Payload helpers used by services and accelerators; overloads for plain
// vectors remain for state snapshots and tests.
void PutU64(PayloadBuf& buf, uint64_t v);
void PutU32(PayloadBuf& buf, uint32_t v);
uint64_t GetU64(const PayloadBuf& buf, size_t offset);
uint32_t GetU32(const PayloadBuf& buf, size_t offset);
void PutU64(std::vector<uint8_t>& buf, uint64_t v);
void PutU32(std::vector<uint8_t>& buf, uint32_t v);
uint64_t GetU64(const std::vector<uint8_t>& buf, size_t offset);
uint32_t GetU32(const std::vector<uint8_t>& buf, size_t offset);

}  // namespace apiary

#endif  // SRC_CORE_MESSAGE_H_
