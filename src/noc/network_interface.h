// Per-tile network interface: packetizes outbound messages into flits,
// injects them into the local router port, and reassembles inbound packets.
//
// The NI is mechanical plumbing; all policy (naming, capabilities, rate
// limits) is applied by the Apiary monitor before a packet reaches Inject().
#ifndef SRC_NOC_NETWORK_INTERFACE_H_
#define SRC_NOC_NETWORK_INTERFACE_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/noc/packet.h"
#include "src/noc/router.h"
#include "src/sim/clocked.h"
#include "src/sim/ring_buffer.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace apiary {

class ExpressLane;
class PacketPool;

class NetworkInterface {
 public:
  // `pool` is the packet pool senders on this tile draw from (the mesh's
  // domain pool); the NI itself never allocates, it only hands the pool to
  // the monitor above it.
  NetworkInterface(TileId tile, Router* router, uint32_t inject_queue_flits,
                   bool force_single_vc = false, PacketPool* pool = nullptr);

  // Queues a packet for injection. Returns false when the packet's VC
  // injection queue cannot hold its flits (backpressure to the monitor).
  bool Inject(PacketRef packet, Cycle now);

  // True if a packet of `flits` flits would fit in the given VC's queue.
  bool CanInject(uint32_t flits, Vc vc = Vc::kRequest) const;

  // The VC a packet tagged `vc` will actually travel on (the single-VC
  // ablation folds everything onto VC0). Lets the monitor pre-check
  // CanInject before consuming a message into a packet.
  Vc EffectiveVc(Vc vc) const { return force_single_vc_ ? Vc::kRequest : vc; }

  // Called by the Mesh each cycle: moves up to one flit from the injection
  // queue into the router's local input port.
  void InjectCycle(Cycle now);

  // Called by the local router when a flit is ejected to this tile.
  void EjectFlit(const Flit& flit, Cycle now);

  // Pops the next fully reassembled inbound packet, if any.
  PacketRef Retrieve();

  bool HasDeliverable() const { return !delivered_.empty(); }

  // True while any VC injection queue holds flits waiting for InjectCycle —
  // the mesh's quiescence check for the injection side.
  bool HasPendingInject() const {
    for (const auto& q : inject_queues_) {
      if (!q.empty()) {
        return true;
      }
    }
    return false;
  }

  TileId tile() const { return tile_; }

  // The domain pool packets injected here should come from. Never null on
  // the Board path (the mesh always wires one in).
  PacketPool* pool() const { return pool_; }

  // Partition support (Mesh::EnablePartition): repoints this tile's senders
  // at the owning shard's pool, so injected packets are born, routed, and
  // released inside one domain. Monitors read pool() per send — nothing
  // caches the old pointer.
  void SetPool(PacketPool* pool) { pool_ = pool; }

  // Live-list publication (Mesh active sweep): the first packet queued while
  // unmarked appends this tile id to `list`, so the mesh sweeps only NIs
  // with pending injections. The mesh clears the mark on compaction.
  void SetLiveList(std::vector<uint32_t>* list) { live_out_ = list; }
  void ClearLiveMark() { live_marked_ = false; }

  // Wake channel for the consumer of delivered packets (the tile above this
  // NI): fired whenever a packet lands in the delivery queue, ending the
  // tile's parked quiescence the cycle legacy tick order dictates.
  void SetSinkWake(WakeHint hint) { sink_wake_ = hint; }

  // Express-corridor wiring (Mesh::SetExpressEnabled): when set, InjectCycle
  // first offers the queue to the lane (a launched corridor replaces real
  // injection), Inject materializes any corridor sourced here before new
  // flits enqueue, and CanInject counts the corridor's virtual queue
  // occupancy so the monitor's pre-check matches the real run byte-for-byte.
  void SetExpressLane(ExpressLane* lane) { express_ = lane; }

  // Largest packet (in flits) that can ever be injected; senders must
  // segment above this.
  uint32_t max_packet_flits() const { return inject_queue_flits_; }

  const CounterSet& counters() const { return counters_; }
  const Histogram& latency_histogram() const { return latency_; }

  static uint32_t LogicCellCost();

 private:
  // The lane drains/refills the injection queues at corridor launch and
  // materialization, and replays the round-robin pointer (express.h).
  friend class ExpressLane;

  TileId tile_;
  Router* router_;
  uint32_t inject_queue_flits_;
  bool force_single_vc_;
  PacketPool* pool_;
  ExpressLane* express_ = nullptr;
  // Per-VC injection queues so response traffic never queues behind a
  // request backlog (mirrors the router's VC separation). Fixed-capacity
  // rings: the bound is inject_queue_flits by construction, so the queue
  // never touches the heap after wiring.
  std::array<RingBuffer<Flit>, kNumVcs> inject_queues_;
  int inject_rr_ = 0;
  // Busy-transition publication target (the owning mesh's fresh-live list)
  // plus the once-per-transition mark, and the delivery-side wake handle.
  std::vector<uint32_t>* live_out_ = nullptr;
  bool live_marked_ = false;
  WakeHint sink_wake_;
  std::deque<PacketRef> delivered_;
  CounterSet counters_;
  Histogram latency_;  // Injection-to-tail-ejection latency, in cycles.
};

}  // namespace apiary

#endif  // SRC_NOC_NETWORK_INTERFACE_H_
