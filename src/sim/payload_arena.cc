#include "src/sim/payload_arena.h"

namespace apiary {
namespace {

int ClassForBytes(size_t bytes) {
  size_t cap = PayloadArena::kMinChunkBytes;
  for (int c = 0; c < PayloadArena::kNumClasses; ++c) {
    if (bytes <= cap) {
      return c;
    }
    cap <<= 1;
  }
  return -1;  // Oversized: unpooled.
}

size_t ClassBytes(int cls) { return PayloadArena::kMinChunkBytes << cls; }

}  // namespace

uint8_t* PayloadArena::Acquire(size_t min_bytes, size_t* capacity) {
  ++stats_.chunk_acquires;
  ++stats_.live_chunks;
  const int cls = ClassForBytes(min_bytes);
  if (cls < 0) {
    ++stats_.chunk_allocs;
    *capacity = min_bytes;
    return new uint8_t[min_bytes];
  }
  *capacity = ClassBytes(cls);
  if (enabled_ && !retired_ && !freelists_[cls].empty()) {
    uint8_t* chunk = freelists_[cls].back();
    freelists_[cls].pop_back();
    stats_.freelist_bytes -= ClassBytes(cls);
    ++stats_.chunk_reuses;
    return chunk;
  }
  ++stats_.chunk_allocs;
  return new uint8_t[*capacity];
}

void PayloadArena::Release(uint8_t* chunk, size_t capacity) {
  ++stats_.chunk_releases;
  --stats_.live_chunks;
  const int cls = ClassForBytes(capacity);
  if (!enabled_ || retired_ || cls < 0 || ClassBytes(cls) != capacity) {
    delete[] chunk;
  } else {
    freelists_[cls].push_back(chunk);
    stats_.freelist_bytes += capacity;
  }
  if (retired_ && stats_.live_chunks == 0) {
    delete this;  // Drain complete: the last surviving PayloadBuf let go.
  }
}

void PayloadArena::Trim() {
  for (auto& list : freelists_) {
    for (uint8_t* chunk : list) {
      delete[] chunk;
    }
    list.clear();
  }
  stats_.freelist_bytes = 0;
}

void PayloadArena::ResetStats() {
  const uint64_t live = stats_.live_chunks;
  const uint64_t parked = stats_.freelist_bytes;
  stats_ = PayloadArenaStats{};
  stats_.live_chunks = live;
  stats_.freelist_bytes = parked;
}

void PayloadArena::Retire() {
  Trim();
  if (stats_.live_chunks == 0) {
    delete this;
    return;
  }
  retired_ = true;  // Drain mode: Release() self-deletes at zero.
}

PayloadArena& FallbackPayloadArena() {
  // Bufs created outside any installed SimContext (test fixtures, CLI
  // setup) need backing storage; domain hot paths never reach this — the
  // Simulator installs its context for the whole run.
  // APIARY-SHARED(process): catch-all arena for out-of-domain PayloadBufs.
  static PayloadArena arena;
  return arena;
}

}  // namespace apiary
