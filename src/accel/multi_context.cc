#include "src/accel/multi_context.h"

#include "src/core/message.h"

namespace apiary {

ProcessId MultiContextHost::AddContext(std::unique_ptr<ContextLogic> logic) {
  contexts_.push_back(Slot{std::move(logic), true, 0});
  return static_cast<ProcessId>(contexts_.size() - 1);
}

bool MultiContextHost::context_alive(ProcessId pid) const {
  return pid < contexts_.size() && contexts_[pid].alive;
}

void MultiContextHost::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  const ProcessId pid = msg.dst_process;
  Message reply;
  reply.opcode = msg.opcode;
  if (pid >= contexts_.size()) {
    counters_.Add("mch.no_such_context");
    reply.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(reply));
    return;
  }
  Slot& slot = contexts_[pid];
  if (!slot.alive) {
    // The context was individually fail-stopped; its siblings still serve.
    counters_.Add("mch.dead_context_request");
    reply.status = MsgStatus::kDestFailed;
    api.Reply(msg, std::move(reply));
    return;
  }
  ContextResult result = slot.logic->OnRequest(msg.opcode, msg.payload);
  if (result.fault) {
    counters_.Add("mch.context_faults");
    if (per_context_isolation_) {
      // Preemptible model: swap just this context out (Section 4.4).
      slot.alive = false;
      reply.status = MsgStatus::kDestFailed;
      api.Reply(msg, std::move(reply));
    } else {
      // Concurrent-only model: the whole tile must fail-stop.
      api.RaiseFault("context " + slot.logic->name() + " faulted");
    }
    return;
  }
  ++slot.served;
  counters_.Add("mch.served");
  reply.status = result.status;
  reply.payload = std::move(result.payload);
  api.Reply(msg, std::move(reply));
}

std::vector<uint8_t> MultiContextHost::SaveState() {
  // u32 count, then per context: u8 alive, u64 served, u32 len, state blob.
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(contexts_.size()));
  for (auto& slot : contexts_) {
    out.push_back(slot.alive ? 1 : 0);
    PutU64(out, slot.served);
    const std::vector<uint8_t> blob = slot.logic->SaveState();
    PutU32(out, static_cast<uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

void MultiContextHost::RestoreState(std::span<const uint8_t> state) {
  if (state.size() < 4) {
    return;
  }
  std::vector<uint8_t> buf(state.begin(), state.end());
  const uint32_t count = GetU32(buf, 0);
  size_t off = 4;
  for (uint32_t i = 0; i < count && i < contexts_.size(); ++i) {
    if (off + 13 > buf.size()) {
      return;
    }
    contexts_[i].alive = buf[off] != 0;
    off += 1;
    contexts_[i].served = GetU64(buf, off);
    off += 8;
    const uint32_t len = GetU32(buf, off);
    off += 4;
    if (off + len > buf.size()) {
      return;
    }
    contexts_[i].logic->RestoreState(
        std::span<const uint8_t>(buf.data() + off, len));
    off += len;
  }
}

ContextResult CounterContext::OnRequest(uint16_t opcode,
                                        const PayloadBuf& payload) {
  (void)opcode;
  if (payload.size() < 8) {
    return ContextResult{MsgStatus::kBadRequest, {}, false};
  }
  total_ += GetU64(payload, 0);
  ContextResult result;
  PutU64(result.payload, total_);
  return result;
}

std::vector<uint8_t> CounterContext::SaveState() {
  std::vector<uint8_t> out;
  PutU64(out, total_);
  return out;
}

void CounterContext::RestoreState(std::span<const uint8_t> state) {
  if (state.size() >= 8) {
    std::vector<uint8_t> buf(state.begin(), state.end());
    total_ = GetU64(buf, 0);
  }
}

ContextResult FaultyContext::OnRequest(uint16_t opcode,
                                       const PayloadBuf& payload) {
  (void)opcode;
  if (served_ >= healthy_) {
    ContextResult result;
    result.fault = true;
    return result;
  }
  ++served_;
  return ContextResult{MsgStatus::kOk, payload, false};
}

}  // namespace apiary
