#include "src/fpga/board.h"

namespace apiary {

Board::Board(BoardConfig config, Simulator& sim, ExternalNetwork* external_network)
    : config_(std::move(config)), sim_(&sim) {
  auto part = FindPart(config_.part_number);
  if (!part.has_value()) {
    ok_ = false;
    build_error_ = "unknown part: " + config_.part_number;
    return;
  }
  budget_ = std::make_unique<ResourceBudget>(*part);

  // The mesh draws packets from this simulator's domain pool, so two boards
  // on two simulators (one per worker thread) share no allocator state.
  mesh_ = std::make_unique<Mesh>(config_.mesh, &sim_->context());
  if (!budget_->ChargeStatic("noc", mesh_->LogicCellCost())) {
    ok_ = false;
    build_error_ = "NoC does not fit on " + config_.part_number;
    return;
  }
  sim_->Register(mesh_.get());

  if (config_.memory_channels <= 1) {
    single_memory_ = std::make_unique<MemoryController>(config_.dram);
    memory_backend_ = single_memory_.get();
    sim_->Register(single_memory_.get());
    if (!budget_->ChargeStatic("memory_controller", ResourceCosts{}.memory_controller)) {
      ok_ = false;
      build_error_ = "memory controller does not fit";
      return;
    }
  } else {
    multi_memory_ = std::make_unique<InterleavedMemory>(config_.dram, config_.memory_channels,
                                                        config_.memory_stripe_bytes);
    memory_backend_ = multi_memory_.get();
    sim_->Register(multi_memory_.get());
    const uint64_t hbm_cells =
        static_cast<uint64_t>(config_.memory_channels) * ResourceCosts{}.hbm_controller;
    if (!budget_->ChargeStatic("hbm_controllers", hbm_cells)) {
      ok_ = false;
      build_error_ = "HBM controllers do not fit";
      return;
    }
  }

  const double clock_mhz = sim_->frequency_mhz();
  switch (config_.mac_kind) {
    case MacKind::kNone:
      break;
    case MacKind::k10G:
      mac10g_ = std::make_unique<EthMac10G>(clock_mhz);
      if (!budget_->ChargeStatic("eth_mac", mac10g_->LogicCellCost())) {
        ok_ = false;
        build_error_ = "10G MAC does not fit";
        return;
      }
      sim_->Register(mac10g_.get());
      if (external_network != nullptr) {
        mac10g_->AttachNetwork(external_network, external_network->RegisterEndpoint(mac10g_.get()));
      }
      break;
    case MacKind::k100G:
      mac100g_ = std::make_unique<EthMac100G>(clock_mhz);
      if (!budget_->ChargeStatic("eth_mac", mac100g_->LogicCellCost())) {
        ok_ = false;
        build_error_ = "100G MAC does not fit";
        return;
      }
      sim_->Register(mac100g_.get());
      if (external_network != nullptr) {
        mac100g_->AttachNetwork(external_network,
                                external_network->RegisterEndpoint(mac100g_.get()));
      }
      break;
  }

  if (config_.with_pcie) {
    pcie_ = std::make_unique<PcieEndpoint>(config_.pcie);
    if (!budget_->ChargeStatic("pcie", PcieEndpoint::LogicCellCost())) {
      ok_ = false;
      build_error_ = "PCIe endpoint does not fit";
      return;
    }
    sim_->Register(pcie_.get());
  }

  // Reserve the dynamically reconfigurable tile regions.
  for (uint32_t t = 0; t < mesh_->num_tiles(); ++t) {
    if (!budget_->ReserveTileRegion(config_.tile_region_cells)) {
      ok_ = false;
      build_error_ = "tile regions exceed part capacity (tile " + std::to_string(t) + ")";
      return;
    }
  }
}

}  // namespace apiary
