// Bad: dropping a NextActivity() result silently discards the wake-up cycle.
#ifndef SRC_SIM_CLOCKED_H_
#define SRC_SIM_CLOCKED_H_

namespace apiary {

using Cycle = unsigned long long;

class Clocked {
 public:
  virtual void Tick(Cycle now) = 0;
  virtual Cycle NextActivity(Cycle now) const;
};

}  // namespace apiary

#endif  // SRC_SIM_CLOCKED_H_
