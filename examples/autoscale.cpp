// Elastic orchestration walkthrough — the paper's Section 1 promise that
// "each module may be independently scaled up or down to match demand",
// closed into a control loop.
//
// A checksum service starts as ONE replica behind the load balancer. Demand
// ramps from a trickle to a surge and back. The orchestration stack reacts:
//   * the load balancer measures (queue depth, windowed tail latency),
//   * the autoscaler decides (SLO-latency policy with hysteresis),
//   * the placer picks a region (near the balancer, apart from siblings),
//   * the reconfiguration scheduler executes through the single ICAP,
//   * the kernel re-grants capabilities so the balancer's authority over
//     each new replica is explicit, and revoked again on teardown.
// The demo prints the replica count as the load changes, then the scaling
// ledger at the end.
#include <cstdio>
#include <memory>

#include "src/accel/checksum.h"
#include "src/core/kernel.h"
#include "src/fpga/board.h"
#include "src/orch/autoscaler.h"
#include "src/orch/placer.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/load_balancer.h"
#include "src/sim/simulator.h"

using namespace apiary;

namespace {

// Open-loop demand: one 1 KiB checksum request every `period` cycles.
class DemandSource : public Accelerator {
 public:
  explicit DemandSource(ServiceId lb_svc) : lb_svc_(lb_svc) {}
  void Tick(TileApi& api) override {
    if (period == 0 || api.now() % period != 0) {
      return;
    }
    Message msg;
    msg.opcode = kOpChecksum;
    msg.payload.assign(1024, static_cast<uint8_t>(sent));
    msg.request_id = ++sent;
    api.Send(std::move(msg), api.LookupService(lb_svc_));
  }
  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind == MsgKind::kResponse && msg.status == MsgStatus::kOk) {
      ++ok;
    }
  }
  std::string name() const override { return "demand_source"; }
  uint32_t LogicCellCost() const override { return 1000; }

  Cycle period = 0;  // 0 = idle.
  uint64_t sent = 0;
  uint64_t ok = 0;

 private:
  ServiceId lb_svc_;
};

}  // namespace

int main() {
  Simulator sim(250.0);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.mac_kind = MacKind::kNone;
  cfg.partial_reconfig_cycles = 20'000;  // Shortened PR latency for the demo.
  Board board(cfg, sim, nullptr);
  ApiaryOs os(board);

  // The service: a load balancer fronting checksum replicas.
  AppId app = os.CreateApp("elastic_crc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  auto factory = [] { return std::make_unique<ChecksumAccelerator>(1); };
  ServiceId first_svc = 0;
  const TileId first_tile = os.Deploy(app, factory(), &first_svc);
  const CapRef first_ep = os.GrantSendToService(lb_tile, first_svc);
  lb->AddBackend(first_ep);

  // The orchestration stack.
  Placer placer(&os);
  ReconfigSchedulerConfig rcfg;
  rcfg.drain_cycles = 1'000;
  ReconfigScheduler scheduler(&os, app, rcfg);
  AutoscalerConfig acfg;
  acfg.policy = ScalePolicy::kSloLatency;
  acfg.min_replicas = 1;
  acfg.max_replicas = 4;
  acfg.poll_period = 5'000;
  acfg.slo_p99_cycles = 4'000;
  acfg.cooldown_cycles = 40'000;
  acfg.replica_logic_cells = 4'000;
  Autoscaler autoscaler(&os, lb, lb_tile, app, factory, &placer, &scheduler, acfg);
  autoscaler.AdoptReplica(first_svc, first_tile, first_ep);

  auto* demand = new DemandSource(lb_svc);
  const TileId demand_tile = os.Deploy(app, std::unique_ptr<Accelerator>(demand));
  (void)os.GrantSendToService(demand_tile, lb_svc);

  std::printf("Elastic checksum service (1 KiB requests, ~1k cycles each,\n");
  std::printf("SLO-latency autoscaling, 20k-cycle partial reconfiguration)\n\n");
  std::printf("%-12s %-22s %-10s %s\n", "cycle", "phase", "replicas", "requests ok");

  struct Phase {
    const char* label;
    Cycle period;  // Inter-arrival gap; 0 = idle.
    Cycle length;
  };
  const Phase phases[] = {
      {"trickle", 4000, 200'000},  // ~0.25 req/1k-cycles: one replica idles.
      {"ramp", 700, 300'000},      // ~1.4 req/1k: latency climbs, loop grows.
      {"surge", 300, 300'000},     // ~3.3 req/1k: needs most of the ceiling.
      {"fade", 2000, 300'000},     // Demand drops; surplus replicas drain.
      {"quiet", 0, 300'000},       // Idle: shrink back to the floor.
  };
  for (const Phase& phase : phases) {
    demand->period = phase.period;
    const Cycle end = sim.now() + phase.length;
    while (sim.now() < end) {
      sim.Run(50'000);
      std::printf("%-12llu %-22s %-10u %llu\n",
                  static_cast<unsigned long long>(sim.now()), phase.label,
                  autoscaler.live_replicas(), static_cast<unsigned long long>(demand->ok));
    }
  }

  std::printf("\nScaling ledger:\n");
  std::printf("  scale-ups:        %llu\n",
              static_cast<unsigned long long>(autoscaler.scale_ups()));
  std::printf("  scale-downs:      %llu\n",
              static_cast<unsigned long long>(autoscaler.scale_downs()));
  std::printf("  replica-cycles:   %llu (vs %llu if %u replicas were static)\n",
              static_cast<unsigned long long>(autoscaler.replica_tile_cycles()),
              static_cast<unsigned long long>(acfg.max_replicas * sim.now()),
              acfg.max_replicas);
  std::printf("  requests ok:      %llu / %llu\n",
              static_cast<unsigned long long>(demand->ok),
              static_cast<unsigned long long>(demand->sent));
  std::printf("\nThe replica set tracked demand: grown through placement +\n");
  std::printf("ICAP-serialized reconfiguration + kernel re-grant, shrunk through\n");
  std::printf("drain -> blank -> revoke. Same SLO story as bench/a10_autoscale.\n");
  return 0;
}
