# Empty dependencies file for e2_monitor_overhead.
# This may be replaced when dependencies are built.
