# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for a4_dma_vs_messages.
