// Quickstart: boot an Apiary board, deploy two accelerators, grant a
// capability, and exchange a message.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/fpga/board.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

// A minimal client accelerator: sends one request at boot, prints the reply.
class HelloClient : public Accelerator {
 public:
  explicit HelloClient(ServiceId echo_service) : echo_service_(echo_service) {}

  void OnBoot(TileApi& api) override {
    // Resolve the logical service name to an endpoint capability installed
    // by the kernel, then send through the monitor.
    const CapRef cap = api.LookupService(echo_service_);
    Message msg;
    msg.opcode = kOpEcho;
    const char* text = "hello, apiary!";
    msg.payload.assign(text, text + 14);
    const SendResult r = api.Send(std::move(msg), cap);
    std::printf("[client ] tile %u sent request at cycle %llu (status=%s)\n", api.tile(),
                static_cast<unsigned long long>(api.now()), MsgStatusName(r.status));
  }

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind == MsgKind::kResponse) {
      got_reply = true;
      std::printf("[client ] reply at cycle %llu: \"%.*s\" (from tile %u)\n",
                  static_cast<unsigned long long>(api.now()),
                  static_cast<int>(msg.payload.size()),
                  reinterpret_cast<const char*>(msg.payload.data()), msg.src_tile);
    }
  }

  std::string name() const override { return "hello_client"; }
  uint32_t LogicCellCost() const override { return 2000; }

  bool got_reply = false;

 private:
  ServiceId echo_service_;
};

int main() {
  // 1. A simulated board: a VU9P with a 4x4 NoC mesh.
  Simulator sim(250.0);  // 250 MHz fabric clock.
  BoardConfig board_cfg;
  board_cfg.part_number = "VU9P";
  board_cfg.mesh = MeshConfig{4, 4, 8, 512};
  board_cfg.dram.capacity_bytes = 64ull << 20;
  board_cfg.mac_kind = MacKind::kNone;
  Board board(board_cfg, sim, nullptr);
  if (!board.ok()) {
    std::printf("board failed: %s\n", board.build_error().c_str());
    return 1;
  }

  // 2. The Apiary kernel: one monitor per tile, capability tables, services.
  ApiaryOs os(board);
  std::printf("[kernel ] booted %u tiles on %s (%s logic cells), static overhead %.1f%%\n",
              os.num_tiles(), board.budget().part().part_number.c_str(),
              Table::Int(board.budget().part().logic_cells).c_str(),
              100.0 * board.budget().StaticFraction());

  // 3. Deploy an echo service and a client, and grant client -> echo.
  AppId app = os.CreateApp("quickstart");
  ServiceId echo_svc = 0;
  const TileId echo_tile =
      os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/25), &echo_svc);
  auto* client = new HelloClient(echo_svc);
  const TileId client_tile = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(client_tile, echo_svc);
  std::printf("[kernel ] echo on tile %u (service %u), client on tile %u, capability granted\n",
              echo_tile, echo_svc, client_tile);

  // 4. Run until the round trip completes.
  sim.RunUntil([&] { return client->got_reply; }, 10000);
  std::printf("[kernel ] done at cycle %llu (%.0f ns simulated)\n",
              static_cast<unsigned long long>(sim.now()), sim.CyclesToNs(sim.now()));

  // 5. Peek at the monitor's message trace (the debugging story).
  std::printf("\nmonitor trace of the client tile:\n");
  for (const auto& rec : os.monitor(client_tile).trace().Snapshot()) {
    std::printf("  %s\n", TraceRecordToString(rec).c_str());
  }
  return client->got_reply ? 0 : 1;
}
