// Good: orchestration drives the service stack (supervisor, load balancer)
// through kernel paths — all layers on its allow-list.
#ifndef SRC_ORCH_SCALER_H_
#define SRC_ORCH_SCALER_H_

#include "src/core/kernel.h"
#include "src/fpga/board.h"
#include "src/orch/placer.h"
#include "src/services/supervisor.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

#endif  // SRC_ORCH_SCALER_H_
