// Interface for cycle-driven hardware blocks.
#ifndef SRC_SIM_CLOCKED_H_
#define SRC_SIM_CLOCKED_H_

#include <cstdint>
#include <string>

#include "src/sim/types.h"

namespace apiary {

// Destination of a wake request: the schedule a block is currently bound to.
// Implemented by ActiveSchedule; blocks never see the concrete type.
class WakeSink {
 public:
  virtual ~WakeSink() = default;
  virtual void Wake(uint32_t slot) = 0;
  // The block's SchedulingPolicy() answer changed (e.g. reconfiguration
  // loaded a per-cycle service onto a tile); re-read it.
  virtual void RefreshPolicy(uint32_t slot) { (void)slot; }
};

// A Clocked object models a synchronous hardware block: it is ticked once per
// simulated clock cycle. The simulator ticks all registered objects in
// registration order; blocks that need two-phase (compute/commit) semantics
// implement it internally by latching outputs.
class Clocked {
 public:
  virtual ~Clocked() = default;

  // How the active-set scheduler may treat this block (see DESIGN.md
  // §"Simulation substrate"):
  //   kActiveSet    — honors the full quiescence contract: Tick() of a
  //                   quiescent block is a no-op, and every early end of
  //                   quiescence is announced through RequestWake()/WakeHint.
  //                   The scheduler parks the block and wakes it from the
  //                   timer wheel or a wake call.
  //   kEveryCycle   — Tick() does per-executed-cycle work by design (cached
  //                   clocks used by external callers, per-cycle integrals
  //                   compensated only across *skipped* windows). Ticked on
  //                   every executed cycle exactly as before active sets;
  //                   NextActivity still bounds skips.
  //   kBoundaryPoll — quiescent ticks are no-ops, but NextActivity depends on
  //                   state mutated outside any schedule-visible wake path
  //                   (e.g. enqueues from shard-phase service ticks, where a
  //                   cross-thread wake would race). Re-polled at every
  //                   executed-cycle boundary instead of parked on the wheel.
  enum class SchedPolicy : uint8_t { kActiveSet = 0, kEveryCycle = 1, kBoundaryPoll = 2 };
  [[nodiscard]] virtual SchedPolicy SchedulingPolicy() const { return SchedPolicy::kActiveSet; }

  // Advance one cycle. `now` is the cycle being executed.
  virtual void Tick(Cycle now) = 0;

  // Quiescence hook (see DESIGN.md §"Simulation substrate"). Returns the
  // earliest future cycle at which this block needs Tick() to run again:
  //   - any value <= now  : "active next cycle" (never skip past me),
  //   - a future cycle T  : quiescent until T; Tick() through T-1 would be a
  //                         no-op given no external input,
  //   - kNoActivity       : idle until external input arrives.
  // The declaration must be *pure*: absent this block's own Tick() and
  // external input, repeated polls return the same answer. The active-set
  // scheduler parks on it; a block whose quiescence ends early (input
  // arrives) must be woken via RequestWake()/WakeHint by whoever delivered
  // the input. Declaring a cycle too late breaks simulations (missed work);
  // when in doubt, return `now`. The default keeps unported blocks
  // cycle-accurate.
  [[nodiscard]] virtual Cycle NextActivity(Cycle now) const {
    return now;  // Active every cycle unless the block declares otherwise.
  }

  // Called on *every* registered block when the simulator fast-forwards from
  // the current cycle to `resume_cycle` (the next cycle that will actually
  // execute). Implementations must leave the block in exactly the state that
  // ticking through cycles [now, resume_cycle) would have produced — e.g.
  // advance cached clocks to resume_cycle - 1 (the value a serial pre-tick
  // observer would hold) and delta-add per-cycle accumulators.
  virtual void OnFastForward(Cycle resume_cycle) { (void)resume_cycle; }

  // Spatial-partition home for the sharded parallel engine
  // (src/sim/parallel/parallel_simulator.h): the mesh tile whose shard must
  // tick this block when the board is decomposed into domains. Blocks that
  // are anchored to one tile (tiles themselves, and with them their monitor
  // and accelerator) return that tile id; everything else keeps the default
  // kInvalidTile and is ticked serially in the root phase of every executed
  // cycle, before the shard phases run.
  [[nodiscard]] virtual TileId PartitionHome() const { return kInvalidTile; }

  // Human-readable name for tracing and debug dumps.
  virtual std::string DebugName() const { return "clocked"; }

  // --- Wake protocol (active-set scheduling). ---
  //
  // Ends this block's parked quiescence: the schedule re-activates it for
  // the cycle dictated by legacy tick order (a wake from a block earlier in
  // registration order takes effect this cycle; from a later block, next
  // cycle — exactly when a tick-everything loop would have seen the input).
  // Callable from const methods (a const query that flips cached state, e.g.
  // a link-lock poll, still ends quiescence). Always safe to call: waking an
  // already-active or genuinely idle block is a no-op tick at worst, never a
  // behavior change. Must only be called from the thread that owns this
  // block's schedule (same shard, or the coordinator while workers are
  // parked) — see DESIGN.md for the full contract.
  void RequestWake() const {
    if (wake_sink_ != nullptr) {
      wake_sink_->Wake(wake_slot_);
    }
  }

  // Tells the schedule this block's SchedulingPolicy() answer changed (a
  // tile's policy follows the accelerator loaded onto it). Call after any
  // mutation that can change the answer; same threading rules as
  // RequestWake(). Conservatively re-activates the block.
  void RequestPolicyRefresh() const {
    if (wake_sink_ != nullptr) {
      wake_sink_->RefreshPolicy(wake_slot_);
    }
  }

  // Schedule binding; called by ActiveSchedule on add/remove. Not for blocks.
  void BindWakeSink(WakeSink* sink, uint32_t slot) const {
    wake_sink_ = sink;
    wake_slot_ = slot;
  }

 private:
  // Mutable: RequestWake must be callable from const observers; the binding
  // itself is scheduler bookkeeping, not block state.
  mutable WakeSink* wake_sink_ = nullptr;
  mutable uint32_t wake_slot_ = 0;
};

// Copyable wake handle for non-Clocked subobjects (a MAC's RX queue, an NI's
// delivery side, a DRAM completion lambda): lets them wake the Clocked block
// that consumes their output without knowing the schedule.
class WakeHint {
 public:
  WakeHint() = default;
  explicit WakeHint(const Clocked* target) : target_(target) {}

  void Wake() const {
    if (target_ != nullptr) {
      target_->RequestWake();
    }
  }
  bool bound() const { return target_ != nullptr; }

 private:
  const Clocked* target_ = nullptr;
};

}  // namespace apiary

#endif  // SRC_SIM_CLOCKED_H_
