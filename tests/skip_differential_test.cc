// Differential determinism: quiescence skipping (Clocked::NextActivity fast
// forwarding, src/sim/simulator.cc) must be invisible to the simulation.
// Each scenario here runs twice — skipping enabled vs the `--no-skip`
// escape hatch (SetSkipEnabled(false)) — and every observable, down to the
// byte-level debug trace, must match. The skip run must also actually skip,
// so a regression that quietly disables fast-forwarding cannot pass.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/accel/echo.h"
#include "src/baseline/raw_queue.h"
#include "src/core/service_ids.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/services/supervisor.h"
#include "src/sim/logging.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Captures every log line (down to kDebug) emitted while `body` runs.
template <typename Body>
std::string CaptureTrace(Body&& body) {
  std::string trace;
  SetLogSink(
      [](LogLevel level, const std::string& line, void* user) {
        auto* out = static_cast<std::string*>(user);
        *out += std::to_string(static_cast<int>(level));
        *out += ' ';
        *out += line;
        *out += '\n';
      },
      &trace);
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  body();
  SetLogLevel(prev);
  SetLogSink(nullptr, nullptr);
  return trace;
}

// Sends one echo request every `period` cycles and sleeps in between — the
// quiescence-aware traffic shape skipping is built for. Responses arrive as
// messages, which wake the tile through the monitor's deliverable queue.
class QuietPeriodicClient : public Accelerator {
 public:
  QuietPeriodicClient(ServiceId svc, Cycle period) : svc_(svc), period_(period) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {1, 2, 3, 4};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++sent;
    }
    next_ = api.now() + period_;
  }
  void OnMessage(const Message& msg, TileApi&) override {
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return next_ > now ? next_ : now;
  }
  std::string name() const override { return "quiet_periodic_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId svc_;
  Cycle period_;
  Cycle next_ = 0;
};

struct IpcResult {
  Cycle end_cycle = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t flits = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  std::string monitor_counters;
  uint64_t skipped_cycles = 0;
  std::string trace;
};

// E3-shaped IPC scenario: kernel-mediated echo round trips over the NoC with
// long idle valleys between requests.
IpcResult RunIpcScenario(bool skip) {
  IpcResult r;
  r.trace = CaptureTrace([&] {
    TestBoard tb;
    tb.sim.SetSkipEnabled(skip);
    AppId app = tb.os.CreateApp("ipc");
    ServiceId svc = 0;
    auto* echo = new EchoAccelerator(/*service_cycles=*/20);
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    auto* client = new QuietPeriodicClient(svc, /*period=*/1'000);
    const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(client));
    (void)tb.os.GrantSendToService(ct, svc);

    tb.sim.Run(200'000);

    r.end_cycle = tb.sim.now();
    r.sent = client->sent;
    r.ok = client->ok;
    r.flits = tb.board.mesh().TotalFlitsRouted();
    r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
    r.skipped_cycles = tb.sim.skipped_cycles();
  });
  return r;
}

TEST(SkipDifferentialTest, IpcScenarioMatchesNoSkipByteForByte) {
  const IpcResult skip = RunIpcScenario(true);
  const IpcResult base = RunIpcScenario(false);
  EXPECT_EQ(skip.end_cycle, base.end_cycle);
  EXPECT_EQ(skip.sent, base.sent);
  EXPECT_EQ(skip.ok, base.ok);
  EXPECT_EQ(skip.flits, base.flits);
  EXPECT_EQ(skip.monitor_counters, base.monitor_counters);
  EXPECT_EQ(skip.trace, base.trace);
  // The scenario must be real on both sides: traffic flowed, and the skip
  // run actually fast-forwarded while the escape hatch did not.
  EXPECT_GT(base.sent, 100u);
  EXPECT_GT(skip.ok, 100u);
  EXPECT_GT(skip.skipped_cycles, 100'000u);
  EXPECT_EQ(base.skipped_cycles, 0u);
}

struct ChaosResult {
  Cycle end_cycle = 0;
  std::string fault_trace;
  std::string injector_counters;
  std::string supervisor_counters;
  std::string monitor_counters;
  uint64_t flits = 0;
  uint64_t client_ok = 0;
  uint64_t client_errors = 0;
  uint64_t skipped_cycles = 0;
  std::string trace;
};

// A9-shaped chaos scenario: a seeded fault campaign (link drops/corruption,
// DRAM upsets, an accelerator crash healed by the supervisor) over periodic
// traffic. Fault windows and plan events bound fast-forwarding (see
// FaultInjector::NextActivity), so every injected fault must land on the
// same cycle with skipping on or off.
ChaosResult RunChaosScenario(bool skip) {
  ChaosResult r;
  r.trace = CaptureTrace([&] {
    TestBoardOptions options;
    options.reconfig_cycles = 20'000;
    TestBoard tb(options);
    tb.sim.SetSkipEnabled(skip);

    AppId app = tb.os.CreateApp("chaos");
    ServiceId svc = 0;
    const TileId st = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(5), &svc);
    auto* client = new QuietPeriodicClient(svc, 200);
    const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(client));
    (void)tb.os.GrantSendToService(ct, svc);

    Supervisor sup(&tb.os);
    sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(5); });

    FaultPlan plan;
    plan.seed = 9;
    plan.LinkDrop(10'000, 15'000, 0.3)
        .LinkCorrupt(30'000, 15'000, 0.25)
        .DramBitFlips(40'000, 4)
        .AccelCrash(50'000, st)
        .LinkDrop(90'000, 10'000, 0.3)
        .DramBitFlips(100'000, 4);
    FaultInjector injector(plan, FaultHooks{.os = &tb.os,
                                            .mesh = &tb.board.mesh(),
                                            .memory = &tb.board.memory()});

    tb.sim.Run(150'000);

    r.end_cycle = tb.sim.now();
    r.fault_trace = injector.TraceString();
    r.injector_counters = injector.counters().ToString();
    r.supervisor_counters = sup.counters().ToString();
    r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
    r.flits = tb.board.mesh().TotalFlitsRouted();
    r.client_ok = client->ok;
    r.client_errors = client->errors;
    r.skipped_cycles = tb.sim.skipped_cycles();
  });
  return r;
}

TEST(SkipDifferentialTest, ChaosScenarioMatchesNoSkipByteForByte) {
  const ChaosResult skip = RunChaosScenario(true);
  const ChaosResult base = RunChaosScenario(false);
  EXPECT_EQ(skip.end_cycle, base.end_cycle);
  EXPECT_EQ(skip.fault_trace, base.fault_trace);
  EXPECT_EQ(skip.injector_counters, base.injector_counters);
  EXPECT_EQ(skip.supervisor_counters, base.supervisor_counters);
  EXPECT_EQ(skip.monitor_counters, base.monitor_counters);
  EXPECT_EQ(skip.flits, base.flits);
  EXPECT_EQ(skip.client_ok, base.client_ok);
  EXPECT_EQ(skip.client_errors, base.client_errors);
  EXPECT_EQ(skip.trace, base.trace);
  // The campaign did damage, the supervisor healed it, and the skip run
  // actually fast-forwarded somewhere between the fault windows.
  EXPECT_NE(skip.injector_counters.find("fault.accel_crash=1"), std::string::npos);
  EXPECT_GT(skip.client_ok + skip.client_errors, 0u);
  EXPECT_GT(skip.skipped_cycles, 0u);
  EXPECT_EQ(base.skipped_cycles, 0u);
}

TEST(SkipDifferentialTest, RawQueueReadyCycleIsAnActivityBoundary) {
  // The RunUntil predicate polls Pop(), which gates on the entry's serialized
  // available_at; with skipping the queue's NextActivity must surface that
  // exact cycle as a boundary.
  auto run = [](bool skip) {
    Simulator sim;
    sim.SetSkipEnabled(skip);
    RawQueue q(/*width_bytes=*/8, /*depth_entries=*/4);
    sim.Register(&q);
    EXPECT_TRUE(q.Push(PayloadBuf(64, 0xab), sim.now()));
    PayloadBuf got;
    EXPECT_TRUE(sim.RunUntil(
        [&] {
          auto popped = q.Pop(sim.now());
          if (popped.has_value()) {
            got = std::move(*popped);
            return true;
          }
          return false;
        },
        1'000));
    EXPECT_EQ(got.size(), 64u);
    return sim.now();
  };
  const Cycle with_skip = run(true);
  const Cycle without = run(false);
  EXPECT_EQ(with_skip, without);
}

}  // namespace
}  // namespace apiary
