#include "src/core/kernel.h"

#include <algorithm>

#include "src/sim/logging.h"

namespace apiary {
namespace {

uint64_t SegmentKey(TileId tile, CapRef ref) {
  return (static_cast<uint64_t>(tile) << 32) | ref;
}

}  // namespace

ApiaryOs::ApiaryOs(Board& board, MonitorConfig monitor_config)
    : board_(&board), monitor_config_(monitor_config) {
  if (!board.ok()) {
    ok_ = false;
    error_ = "board failed to build: " + board.build_error();
    return;
  }
  const uint32_t n = board.num_tiles();
  // Each tile's monitor is static trusted logic; charge it to the budget.
  const uint64_t monitor_cells =
      MonitorCellCost(ResourceCosts{}, monitor_config_.cap_entries);
  if (!board.budget().ChargeStatic("monitors", monitor_cells * n)) {
    ok_ = false;
    error_ = "monitors do not fit on the part";
    return;
  }
  tiles_.reserve(n);
  for (TileId t = 0; t < n; ++t) {
    tiles_.push_back(std::make_unique<Tile>(t, &board.mesh().ni(t), monitor_config_,
                                            board.config().partial_reconfig_cycles));
    board.sim().Register(tiles_.back().get());
  }
  segments_ = std::make_unique<SegmentAllocator>(0, board.memory().capacity());
}

AppId ApiaryOs::CreateApp(const std::string& name) {
  apps_.push_back(AppInfo{name, {}});
  return static_cast<AppId>(apps_.size() - 1);
}

const std::string& ApiaryOs::AppName(AppId app) const { return apps_[app].name; }

const std::vector<TileId>& ApiaryOs::AppTiles(AppId app) const { return apps_[app].tiles; }

TileId ApiaryOs::FindVacantTile() const {
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t]->vacant()) {
      return t;
    }
  }
  return kInvalidTile;
}

TileId ApiaryOs::DeployInternal(AppId app, ServiceId service,
                                std::unique_ptr<Accelerator> accel,
                                const DeployOptions& options) {
  const TileId t = options.tile.value_or(FindVacantTile());
  if (t == kInvalidTile || t >= tiles_.size()) {
    return kInvalidTile;
  }
  if (!tiles_[t]->vacant()) {
    return kInvalidTile;
  }
  if (accel->LogicCellCost() > board_->config().tile_region_cells) {
    APIARY_LOG(kWarn) << accel->name() << " (" << accel->LogicCellCost()
                      << " cells) exceeds the tile region ("
                      << board_->config().tile_region_cells << ")";
    return kInvalidTile;
  }
  tiles_[t]->set_fault_policy(options.fault_policy);
  tiles_[t]->monitor().SetIdentity(app, service);
  tiles_[t]->Configure(std::move(accel), options.immediate, sim().now());
  service_registry_[service] = t;
  if (app != kInvalidApp) {
    apps_[app].tiles.push_back(t);
  }
  return t;
}

TileId ApiaryOs::DeployService(ServiceId service, std::unique_ptr<Accelerator> accel,
                               DeployOptions options) {
  return DeployInternal(kInvalidApp, service, std::move(accel), options);
}

TileId ApiaryOs::Deploy(AppId app, std::unique_ptr<Accelerator> accel, ServiceId* out_service,
                        DeployOptions options) {
  const ServiceId service = next_app_service_++;
  if (out_service != nullptr) {
    *out_service = service;
  }
  return DeployInternal(app, service, std::move(accel), options);
}

void ApiaryOs::ReleaseTileGrants(TileId tile) {
  tiles_[tile]->monitor().RevokeAllCaps();
  for (auto it = owned_segments_.begin(); it != owned_segments_.end();) {
    if (static_cast<TileId>(it->first >> 32) == tile) {
      segments_->Free(it->second);
      it = owned_segments_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ApiaryOs::Reconfigure(TileId tile, std::unique_ptr<Accelerator> accel, bool immediate) {
  if (tile >= tiles_.size()) {
    return false;
  }
  if (accel != nullptr && accel->LogicCellCost() > board_->config().tile_region_cells) {
    return false;
  }
  // The new bitstream must not inherit the old accelerator's authority:
  // revoke every capability and free the tile's kernel-owned segments. The
  // kernel (or Supervisor) re-grants from the grant log after boot.
  ReleaseTileGrants(tile);
  tiles_[tile]->Configure(std::move(accel), immediate, sim().now());
  return true;
}

std::vector<TileId> ApiaryOs::FreeTiles() const {
  std::vector<TileId> free;
  for (TileId t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t]->vacant()) {
      free.push_back(t);
    }
  }
  return free;
}

bool ApiaryOs::Undeploy(TileId tile, bool immediate) {
  if (tile >= tiles_.size() || tiles_[tile]->vacant()) {
    return false;
  }
  ReleaseTileGrants(tile);
  // Unregister every logical service hosted here, revoking the client
  // capabilities that still name this tile so no sender keeps a route to the
  // vacated region.
  std::vector<ServiceId> hosted;
  for (const auto& [service, t] : service_registry_) {
    if (t == tile) {
      hosted.push_back(service);
    }
  }
  for (ServiceId svc : hosted) {
    service_registry_.erase(svc);
    for (auto it = grant_log_.begin(); it != grant_log_.end();) {
      if (it->dst == svc) {
        Monitor& m = tiles_[it->src]->monitor();
        const CapRef stale = m.cap_table().FindEndpointForService(svc);
        if (stale != kInvalidCapRef) {
          m.RevokeCap(stale);
        }
        it = grant_log_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The departing accelerator's outbound authority is history as well; a
  // future tenant of this region must not inherit it via ReinstallTileCaps.
  grant_log_.erase(std::remove_if(grant_log_.begin(), grant_log_.end(),
                                  [tile](const GrantEdge& e) { return e.src == tile; }),
                   grant_log_.end());
  tiles_[tile]->monitor().SetIdentity(kInvalidApp, kInvalidService);
  // A vacated region leaves its tenant: drop the shared injection budget and
  // return the tile's traffic to the default arbitration class so the next
  // occupant cannot draw against (or bill to) the old tenant.
  tiles_[tile]->monitor().SetSharedLimiter(nullptr);
  tiles_[tile]->monitor().SetArbClass(0);
  tiles_[tile]->Configure(nullptr, immediate, sim().now());
  return true;
}

void ApiaryOs::RebindService(ServiceId service, TileId tile) {
  if (tile >= tiles_.size()) {
    return;
  }
  service_registry_[service] = tile;
  // The standby answers under the service's logical identity from now on.
  tiles_[tile]->monitor().SetIdentity(tiles_[tile]->monitor().app(), service);
}

TileId ApiaryOs::LookupServiceTile(ServiceId service) const {
  auto it = service_registry_.find(service);
  return it == service_registry_.end() ? kInvalidTile : it->second;
}

CapRef ApiaryOs::GrantSendToService(TileId src, ServiceId dst) {
  const TileId dst_tile = LookupServiceTile(dst);
  if (dst_tile == kInvalidTile || src >= tiles_.size()) {
    return kInvalidCapRef;
  }
  Capability cap;
  cap.kind = CapKind::kEndpoint;
  cap.rights = kRightSend;
  cap.dst_tile = dst_tile;
  cap.dst_service = dst;
  const CapRef ref = tiles_[src]->monitor().InstallCap(cap);
  if (ref != kInvalidCapRef) {
    tiles_[dst_tile]->monitor().AllowSender(src);
    bool known = false;
    for (const GrantEdge& edge : grant_log_) {
      if (edge.src == src && edge.dst == dst) {
        known = true;
        break;
      }
    }
    if (!known) {
      grant_log_.push_back(GrantEdge{src, dst});
    }
  }
  return ref;
}

void ApiaryOs::ReinstallTileCaps(TileId tile) {
  if (tile >= tiles_.size()) {
    return;
  }
  // Snapshot first: GrantSendToService appends to grant_log_ (dedup makes
  // that a no-op here, but never iterate a vector being appended to).
  std::vector<ServiceId> dsts;
  for (const GrantEdge& edge : grant_log_) {
    if (edge.src == tile) {
      dsts.push_back(edge.dst);
    }
  }
  for (ServiceId dst : dsts) {
    (void)GrantSendToService(tile, dst);
  }
}

void ApiaryOs::RegrantClientsOf(ServiceId dst) {
  std::vector<TileId> srcs;
  for (const GrantEdge& edge : grant_log_) {
    if (edge.dst == dst) {
      srcs.push_back(edge.src);
    }
  }
  for (TileId src : srcs) {
    // The stale capability still names the failed physical tile; revoke it
    // so the slot is reused and the client cannot keep hitting the corpse.
    Monitor& m = tiles_[src]->monitor();
    const CapRef stale = m.cap_table().FindEndpointForService(dst);
    if (stale != kInvalidCapRef) {
      m.RevokeCap(stale);
    }
    (void)GrantSendToService(src, dst);
  }
}

CapRef ApiaryOs::GrantSend(TileId src, TileId dst) {
  if (src >= tiles_.size() || dst >= tiles_.size()) {
    return kInvalidCapRef;
  }
  Capability cap;
  cap.kind = CapKind::kEndpoint;
  cap.rights = kRightSend;
  cap.dst_tile = dst;
  // Physical grants still carry the destination's logical name so replies
  // and tracing stay meaningful.
  for (const auto& [service, tile] : service_registry_) {
    if (tile == dst) {
      cap.dst_service = service;
      break;
    }
  }
  const CapRef ref = tiles_[src]->monitor().InstallCap(cap);
  if (ref != kInvalidCapRef) {
    tiles_[dst]->monitor().AllowSender(src);
  }
  return ref;
}

std::optional<CapRef> ApiaryOs::GrantMemory(TileId tile, uint64_t bytes, uint32_t rights) {
  if (tile >= tiles_.size()) {
    return std::nullopt;
  }
  auto segment = segments_->Allocate(bytes);
  if (!segment.has_value()) {
    return std::nullopt;
  }
  Capability cap;
  cap.kind = CapKind::kMemory;
  cap.rights = rights;
  cap.segment = *segment;
  const CapRef ref = tiles_[tile]->monitor().InstallCap(cap);
  if (ref == kInvalidCapRef) {
    segments_->Free(*segment);
    return std::nullopt;
  }
  owned_segments_[SegmentKey(tile, ref)] = *segment;
  return ref;
}

CapRef ApiaryOs::GrantExistingSegment(TileId tile, const Segment& segment, uint32_t rights) {
  if (tile >= tiles_.size()) {
    return kInvalidCapRef;
  }
  Capability cap;
  cap.kind = CapKind::kMemory;
  cap.rights = rights;
  cap.segment = segment;
  return tiles_[tile]->monitor().InstallCap(cap);
}

bool ApiaryOs::Revoke(TileId tile, CapRef ref) {
  if (tile >= tiles_.size()) {
    return false;
  }
  if (!tiles_[tile]->monitor().RevokeCap(ref)) {
    return false;
  }
  auto it = owned_segments_.find(SegmentKey(tile, ref));
  if (it != owned_segments_.end()) {
    segments_->Free(it->second);
    owned_segments_.erase(it);
  }
  return true;
}

void ApiaryOs::SetRateLimit(TileId tile, uint64_t flits_per_1k_cycles, uint64_t burst_flits) {
  if (tile < tiles_.size()) {
    tiles_[tile]->monitor().SetRateLimit(flits_per_1k_cycles, burst_flits);
  }
}

void ApiaryOs::SetArbClass(TileId tile, uint8_t cls) {
  if (tile < tiles_.size()) {
    tiles_[tile]->monitor().SetArbClass(cls);
  }
}

void ApiaryOs::SetNocClassWeight(uint8_t cls, uint32_t weight) {
  board_->mesh().SetArbClassWeight(cls, weight);
}

void ApiaryOs::FailStop(TileId tile, const std::string& reason) {
  if (tile < tiles_.size()) {
    tiles_[tile]->monitor().FailStop(reason);
  }
}

bool ApiaryOs::PreemptSwap(TileId tile, std::unique_ptr<Accelerator> replacement) {
  if (tile >= tiles_.size()) {
    return false;
  }
  return tiles_[tile]->PreemptSwap(std::move(replacement));
}

CounterSet ApiaryOs::AggregateMonitorCounters() const {
  CounterSet total;
  for (const auto& tile : tiles_) {
    total.Merge(tile->monitor().counters());
  }
  return total;
}

uint64_t ApiaryOs::TotalMonitorCells() const {
  uint64_t total = 0;
  for (const auto& tile : tiles_) {
    total += tile->monitor().MonitorLogicCells();
  }
  return total;
}

}  // namespace apiary
