# Empty dependencies file for e3_ipc.
# This may be replaced when dependencies are built.
