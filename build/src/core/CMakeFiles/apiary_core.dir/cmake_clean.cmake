file(REMOVE_RECURSE
  "CMakeFiles/apiary_core.dir/capability.cc.o"
  "CMakeFiles/apiary_core.dir/capability.cc.o.d"
  "CMakeFiles/apiary_core.dir/kernel.cc.o"
  "CMakeFiles/apiary_core.dir/kernel.cc.o.d"
  "CMakeFiles/apiary_core.dir/message.cc.o"
  "CMakeFiles/apiary_core.dir/message.cc.o.d"
  "CMakeFiles/apiary_core.dir/monitor.cc.o"
  "CMakeFiles/apiary_core.dir/monitor.cc.o.d"
  "CMakeFiles/apiary_core.dir/tile.cc.o"
  "CMakeFiles/apiary_core.dir/tile.cc.o.d"
  "libapiary_core.a"
  "libapiary_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
