// Tests for the FPGA board substrate: part catalog (Table 1 data), resource
// budgeting, Ethernet MAC models with their divergent bring-up protocols,
// PCIe timing and board assembly.
#include <gtest/gtest.h>

#include "src/fpga/board.h"
#include "src/fpga/ethernet.h"
#include "src/fpga/part_catalog.h"
#include "src/fpga/pcie.h"
#include "src/fpga/resource_model.h"
#include "src/sim/simulator.h"

namespace apiary {
namespace {

TEST(PartCatalogTest, ContainsPaperTable1Rows) {
  // The four rows of the paper's Table 1, verbatim.
  auto v585 = FindPart("XC7V585T");
  ASSERT_TRUE(v585.has_value());
  EXPECT_EQ(v585->logic_cells, 582720u);
  EXPECT_EQ(v585->family, "Virtex 7");
  EXPECT_EQ(v585->year_released, 2010u);

  auto v870 = FindPart("XC7VH870T");
  ASSERT_TRUE(v870.has_value());
  EXPECT_EQ(v870->logic_cells, 876160u);

  auto vu3p = FindPart("VU3P");
  ASSERT_TRUE(vu3p.has_value());
  EXPECT_EQ(vu3p->logic_cells, 862000u);
  EXPECT_EQ(vu3p->year_released, 2016u);

  auto vu29p = FindPart("VU29P");
  ASSERT_TRUE(vu29p.has_value());
  EXPECT_EQ(vu29p->logic_cells, 3780000u);
}

TEST(PartCatalogTest, PaperScalingClaimsHold) {
  // "Comparing the smallest parts, the number of logic cells has increased
  // by about 50%, while the largest parts have scaled up by 3x."
  const double smallest_ratio = 862000.0 / 582720.0;
  EXPECT_NEAR(smallest_ratio, 1.5, 0.08);
  const double largest_ratio = 3780000.0 / 876160.0;
  EXPECT_GT(largest_ratio, 3.0);
}

TEST(PartCatalogTest, UnknownPartReturnsNullopt) {
  EXPECT_FALSE(FindPart("NOT_A_PART").has_value());
}

TEST(ResourceBudgetTest, ChargesAndRefusesOversubscription) {
  ResourceBudget budget(*FindPart("XC7V585T"));
  EXPECT_TRUE(budget.ChargeStatic("a", 500000));
  EXPECT_FALSE(budget.ChargeStatic("b", 100000));
  EXPECT_EQ(budget.static_cells(), 500000u);
  EXPECT_EQ(budget.free_cells(), 82720u);
}

TEST(ResourceBudgetTest, TileRegionsAccountedSeparately) {
  ResourceBudget budget(*FindPart("VU9P"));
  EXPECT_TRUE(budget.ChargeStatic("shell", 100000));
  EXPECT_TRUE(budget.ReserveTileRegion(200000));
  EXPECT_EQ(budget.tile_region_cells(), 200000u);
  EXPECT_EQ(budget.free_cells(), 2586000u - 300000u);
  EXPECT_NEAR(budget.StaticFraction(), 100000.0 / 2586000.0, 1e-9);
}

TEST(ResourceBudgetTest, BreakdownTracksLabels) {
  ResourceBudget budget(*FindPart("VU9P"));
  budget.ChargeStatic("noc", 1000);
  budget.ChargeStatic("noc", 500);
  budget.ChargeStatic("mac", 9000);
  EXPECT_EQ(budget.static_breakdown().at("noc"), 1500u);
  EXPECT_EQ(budget.static_breakdown().at("mac"), 9000u);
}

TEST(ResourceModelTest, MonitorCostGrowsWithCapEntries) {
  ResourceCosts costs;
  EXPECT_GT(MonitorCellCost(costs, 128), MonitorCellCost(costs, 16));
  EXPECT_EQ(MonitorCellCost(costs, 0), costs.monitor);
}

TEST(ExternalNetworkTest, DeliversAfterLatency) {
  Simulator sim;
  ExternalNetwork net(10);
  sim.Register(&net);
  struct Sink : ExternalEndpoint {
    int got = 0;
    Cycle at = 0;
    void OnFrame(EthFrame, Cycle now) override {
      ++got;
      at = now;
    }
  } sink;
  const uint32_t addr = net.RegisterEndpoint(&sink);
  EthFrame f;
  f.dst_endpoint = addr;
  f.payload = {1, 2, 3};
  net.Send(std::move(f), sim.now());
  sim.Run(20);
  EXPECT_EQ(sink.got, 1);
  EXPECT_EQ(sink.at, 10u);
}

TEST(ExternalNetworkTest, DropsUnknownDestination) {
  Simulator sim;
  ExternalNetwork net(1);
  sim.Register(&net);
  EthFrame f;
  f.dst_endpoint = 99;
  net.Send(std::move(f), sim.now());
  sim.Run(5);
  EXPECT_EQ(net.counters().Get("extnet.dropped_unknown_dst"), 1u);
}

TEST(EthMac10GTest, RequiresResetHandshakeBeforeTx) {
  Simulator sim(250.0);
  EthMac10G mac(250.0);
  sim.Register(&mac);
  // TX before bring-up is dropped.
  EXPECT_FALSE(mac.TxFrame(EthFrame{}, sim.now()));
  // Release without assert is a protocol violation and is ignored.
  mac.ReleaseCoreReset(sim.now());
  sim.Run(1000);
  EXPECT_FALSE(mac.RxBlockLock(sim.now()));
  // Proper sequence: assert, release, wait for lock.
  mac.AssertCoreReset();
  mac.ReleaseCoreReset(sim.now());
  EXPECT_FALSE(mac.RxBlockLock(sim.now()));
  sim.Run(600);
  EXPECT_TRUE(mac.RxBlockLock(sim.now()));
  EXPECT_TRUE(mac.TxFrame(EthFrame{}, sim.now()));
}

TEST(EthMac100GTest, RequiresInitAlignmentAndFlowControl) {
  Simulator sim(250.0);
  EthMac100G mac(250.0);
  sim.Register(&mac);
  EXPECT_FALSE(mac.EnqueueTxSegment(EthFrame{}, sim.now()));
  mac.InitCmac(sim.now());
  sim.Run(2500);
  EXPECT_TRUE(mac.RxAligned(sim.now()));
  // Aligned but flow control still off: the CMAC idiom requires it.
  EXPECT_FALSE(mac.EnqueueTxSegment(EthFrame{}, sim.now()));
  mac.EnableTxFlowControl();
  EXPECT_TRUE(mac.EnqueueTxSegment(EthFrame{}, sim.now()));
}

TEST(EthMacTest, FramesCrossBetweenMacs) {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  EthMac100G a(250.0);
  EthMac100G b(250.0);
  sim.Register(&a);
  sim.Register(&b);
  a.AttachNetwork(&net, net.RegisterEndpoint(&a));
  b.AttachNetwork(&net, net.RegisterEndpoint(&b));
  a.InitCmac(sim.now());
  b.InitCmac(sim.now());
  sim.Run(2500);
  a.EnableTxFlowControl();
  b.EnableTxFlowControl();
  ASSERT_TRUE(a.RxAligned(sim.now()));
  ASSERT_TRUE(b.RxAligned(sim.now()));
  EthFrame f;
  f.dst_endpoint = b.address();
  f.payload.assign(1000, 0x5a);
  ASSERT_TRUE(a.EnqueueTxSegment(std::move(f), sim.now()));
  sim.Run(200);
  ASSERT_TRUE(b.HasRxSegment());
  EXPECT_EQ(b.DequeueRxSegment().payload.size(), 1000u);
}

// The same frame must take ~10x longer to serialize on the 10G MAC than on
// the 100G MAC — the interface-diversity *and* speed gap the network service
// hides behind one API.
TEST(EthMacTest, TxSerializationRespectsLineRate) {
  struct Sink : ExternalEndpoint {
    Cycle at = 0;
    void OnFrame(EthFrame, Cycle now) override { at = now; }
  };
  auto run_10g = [] {
    Simulator sim(250.0);
    ExternalNetwork net(0);
    sim.Register(&net);
    Sink sink;
    const uint32_t sink_addr = net.RegisterEndpoint(&sink);
    EthMac10G mac(250.0);
    sim.Register(&mac);
    mac.AttachNetwork(&net, net.RegisterEndpoint(&mac));
    mac.AssertCoreReset();
    mac.ReleaseCoreReset(sim.now());
    sim.Run(600);
    const Cycle start = sim.now();
    EthFrame f;
    f.dst_endpoint = sink_addr;
    f.payload.assign(10000, 1);
    EXPECT_TRUE(mac.TxFrame(std::move(f), sim.now()));
    sim.RunUntil([&] { return sink.at != 0; }, 100000);
    return sink.at - start;
  };
  auto run_100g = [] {
    Simulator sim(250.0);
    ExternalNetwork net(0);
    sim.Register(&net);
    Sink sink;
    const uint32_t sink_addr = net.RegisterEndpoint(&sink);
    EthMac100G mac(250.0);
    sim.Register(&mac);
    mac.AttachNetwork(&net, net.RegisterEndpoint(&mac));
    mac.InitCmac(sim.now());
    sim.Run(2500);
    mac.EnableTxFlowControl();
    const Cycle start = sim.now();
    EthFrame f;
    f.dst_endpoint = sink_addr;
    f.payload.assign(10000, 1);
    EXPECT_TRUE(mac.EnqueueTxSegment(std::move(f), sim.now()));
    sim.RunUntil([&] { return sink.at != 0; }, 100000);
    return sink.at - start;
  };
  const Cycle t10 = run_10g();
  const Cycle t100 = run_100g();
  ASSERT_GT(t10, 0u);
  ASSERT_GT(t100, 0u);
  // 10000 B at 5 B/cycle ~ 2000 cycles vs at 50 B/cycle ~ 200 cycles.
  EXPECT_NEAR(static_cast<double>(t10) / static_cast<double>(t100), 10.0, 1.5);
}

TEST(PcieTest, LatencyIncludesCrossingAndSerialization) {
  Simulator sim;
  PcieConfig cfg;
  PcieEndpoint pcie(cfg);
  sim.Register(&pcie);
  Cycle done = 0;
  ASSERT_TRUE(pcie.Submit(4800, [&](Cycle c) { done = c; }));
  sim.Run(1000);
  ASSERT_GT(done, 0u);
  // 4800 B at 48 B/cycle = 100 cycles + 175 one-way = ~275.
  EXPECT_NEAR(static_cast<double>(done), 276.0, 8.0);
}

TEST(PcieTest, TransfersSerializeOnLink) {
  Simulator sim;
  PcieConfig cfg;
  PcieEndpoint pcie(cfg);
  sim.Register(&pcie);
  Cycle first = 0;
  Cycle second = 0;
  ASSERT_TRUE(pcie.Submit(4800, [&](Cycle c) { first = c; }));
  ASSERT_TRUE(pcie.Submit(4800, [&](Cycle c) { second = c; }));
  sim.Run(2000);
  ASSERT_GT(first, 0u);
  ASSERT_GT(second, first);
  // The second waits for the first's serialization (100 cycles).
  EXPECT_NEAR(static_cast<double>(second - first), 100.0, 6.0);
}

TEST(PcieTest, QueueDepthEnforced) {
  PcieConfig cfg;
  cfg.queue_depth = 2;
  PcieEndpoint pcie(cfg);
  EXPECT_TRUE(pcie.Submit(64, nullptr));
  EXPECT_TRUE(pcie.Submit(64, nullptr));
  EXPECT_FALSE(pcie.Submit(64, nullptr));
}

TEST(BoardTest, BuildsWithDefaults) {
  Simulator sim;
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.dram.capacity_bytes = 16 << 20;
  cfg.mesh = MeshConfig{4, 4, 8, 64};
  Board board(cfg, sim, &net);
  ASSERT_TRUE(board.ok()) << board.build_error();
  EXPECT_EQ(board.num_tiles(), 16u);
  EXPECT_NE(board.mac100g(), nullptr);
  EXPECT_EQ(board.mac10g(), nullptr);
  EXPECT_GT(board.budget().static_cells(), 0u);
}

TEST(BoardTest, RejectsUnknownPart) {
  Simulator sim;
  BoardConfig cfg;
  cfg.dram.capacity_bytes = 16 << 20;
  cfg.part_number = "BOGUS";
  Board board(cfg, sim, nullptr);
  EXPECT_FALSE(board.ok());
}

TEST(BoardTest, RejectsOversizedConfiguration) {
  Simulator sim;
  BoardConfig cfg;
  cfg.dram.capacity_bytes = 16 << 20;
  cfg.part_number = "XC7V585T";  // Small part.
  cfg.mesh = MeshConfig{8, 8, 8, 64};
  cfg.tile_region_cells = 100000;  // 64 x 100k >> 582k cells.
  Board board(cfg, sim, nullptr);
  EXPECT_FALSE(board.ok());
  EXPECT_FALSE(board.build_error().empty());
}

TEST(BoardTest, MacKindSelectsCore) {
  Simulator sim;
  BoardConfig cfg;
  cfg.dram.capacity_bytes = 16 << 20;
  cfg.mesh = MeshConfig{2, 2, 8, 64};
  cfg.mac_kind = MacKind::k10G;
  Board board(cfg, sim, nullptr);
  ASSERT_TRUE(board.ok());
  EXPECT_NE(board.mac10g(), nullptr);
  EXPECT_EQ(board.mac100g(), nullptr);
}

TEST(BoardTest, PcieOptional) {
  Simulator sim;
  BoardConfig cfg;
  cfg.dram.capacity_bytes = 16 << 20;
  cfg.mesh = MeshConfig{2, 2, 8, 64};
  cfg.with_pcie = true;
  Board board(cfg, sim, nullptr);
  ASSERT_TRUE(board.ok());
  EXPECT_NE(board.pcie(), nullptr);
}

}  // namespace
}  // namespace apiary
