// Tenant subsystem: mutually distrusting principals on one Apiary board.
//
// The paper's isolation claim (Sections 4.5-4.6) is per-tile: monitors scrub
// identities, capabilities gate endpoints, rate limits bound injection. A
// cloud deployment needs one more layer — the *tenant*, a principal that
// owns a set of tiles, a capability subtree rooted in the kernel, and
// enforced shares of every board-wide resource:
//   * tile count        — admission-checked at deploy and autoscale time,
//   * NoC bandwidth     — a tenant-shared token bucket drawn alongside each
//                         member monitor's per-tile limiter, plus a weighted
//                         arbitration class inside every router,
//   * memory channel    — per-app windowed op shares in the MemoryService,
//   * ICAP reconfig rate— a windowed load quota on the tenant's scheduler.
// The manager also meters each tenant's consumption at fixed boundaries and
// appends deterministic billing records (byte-identical across reruns and
// across skip/no-skip), exported through kOpTenantStats. Repeat quota
// offenders are escalated to Supervisor quarantine.
#ifndef SRC_TENANT_TENANT_H_
#define SRC_TENANT_TENANT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/kernel.h"
#include "src/noc/rate_limiter.h"
#include "src/orch/autoscaler.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/memory_service.h"
#include "src/services/supervisor.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

using TenantId = uint32_t;
inline constexpr TenantId kInvalidTenant = 0;

// Resource shares for one tenant. Zero means "unlimited" for every knob —
// a default-constructed quota admits everything (the enforcement-off
// configuration of the adversarial experiments).
struct TenantQuota {
  uint32_t max_tiles = 0;
  // Tenant-wide NoC injection budget, shared by all member monitors.
  uint64_t noc_flits_per_1k = 0;
  uint64_t noc_burst_flits = 0;
  // Weighted-arbitration class for the tenant's traffic (0 keeps the
  // default class; classes are assigned per tenant by the operator).
  uint8_t arb_class = 0;
  uint32_t arb_weight = 0;
  // Memory-channel share: data-plane ops per window for each member app.
  uint64_t mem_ops_per_window = 0;
  Cycle mem_window_cycles = 10'000;
  // ICAP share: bitstream pushes per window on the tenant's scheduler.
  uint32_t reconfig_loads_per_window = 0;
  Cycle reconfig_window_cycles = 1'000'000;
  // Escalation policy: a metering period with at least `offense_threshold`
  // quota denials is a strike; `quarantine_strikes` strikes quarantine the
  // tenant's tiles. Zero threshold disables escalation.
  uint64_t offense_threshold = 0;
  uint32_t quarantine_strikes = 3;
};

// Point-in-time metering totals for one tenant (also the kOpTenantStats
// response payload, minus the record digest).
struct TenantUsage {
  uint32_t tiles = 0;
  uint64_t tile_cycles = 0;
  uint64_t messages_sent = 0;
  uint64_t flits_sent = 0;
  uint64_t quota_denials = 0;
  uint64_t mem_ops = 0;
};

class TenantManager : public Clocked {
 public:
  // Metering records are cut every `meter_period` cycles. The manager
  // registers itself with the kernel's simulator.
  explicit TenantManager(ApiaryOs* os, Cycle meter_period = 100'000);

  // ------------------------------------------------------------------
  // Tenant lifecycle.
  // ------------------------------------------------------------------
  TenantId CreateTenant(const std::string& name, const TenantQuota& quota);
  // Creates a kernel app owned by `tenant` and installs the tenant's
  // memory-channel share for it (when a memory service is attached).
  AppId CreateApp(TenantId tenant, const std::string& name);

  // Deploys an accelerator for one of the tenant's apps, enforcing the tile
  // quota and attaching the tenant's NoC budget and arbitration class to
  // the landed tile's monitor. Returns kInvalidTile when the quota or the
  // underlying deploy refuses.
  TileId Deploy(TenantId tenant, AppId app, std::unique_ptr<Accelerator> accel,
                ServiceId* out_service = nullptr, DeployOptions options = DeployOptions{});

  // Tile-quota admission check (no side effects): true while the tenant may
  // add one more tile. Wire into Autoscaler::SetAdmission.
  bool AdmitTile(TenantId tenant) const;

  // Membership maintenance for tiles that joined through other paths (e.g.
  // an orchestrator load callback): attach applies the tenant's NoC budget
  // and class to the monitor; detach clears them.
  void AttachTile(TenantId tenant, TileId tile);
  void DetachTile(TenantId tenant, TileId tile);

  // ------------------------------------------------------------------
  // Capability subtree.
  // ------------------------------------------------------------------
  // Grants through the kernel and records the edge in the tenant's subtree
  // so RevokeAll can cut the whole tenant off in one call.
  [[nodiscard]] CapRef GrantSendToService(TenantId tenant, TileId src, ServiceId dst);
  void RevokeAll(TenantId tenant);

  // ------------------------------------------------------------------
  // Enforcement wiring.
  // ------------------------------------------------------------------
  // Tenant-owned reconfig scheduler: installs the tenant's ICAP quota.
  void AttachScheduler(TenantId tenant, ReconfigScheduler* scheduler);
  // Escalation target; without one, repeat offenders are fail-stopped
  // directly through the kernel.
  void SetSupervisor(Supervisor* supervisor);
  // Memory service hosting the tenant apps' segments; needed both to
  // install per-app shares and to meter memory ops.
  void SetMemoryService(MemoryService* memsvc);

  // ------------------------------------------------------------------
  // Metering.
  // ------------------------------------------------------------------
  TenantUsage Usage(TenantId tenant) const;
  // Deterministic billing-record text: one line per metering period, stable
  // across reruns and across skip/no-skip runs.
  const std::string& BillingRecords(TenantId tenant) const;
  uint32_t BillingRecordCount(TenantId tenant) const;
  // FNV-1a digest over the record text (the kOpTenantStats proof token).
  uint32_t BillingDigest(TenantId tenant) const;
  const std::vector<TileId>& Tiles(TenantId tenant) const;
  const TenantQuota& Quota(TenantId tenant) const;
  bool Escalated(TenantId tenant) const;

  void Tick(Cycle now) override;
  // The manager acts only at metering boundaries; declaring them keeps the
  // boundary cycles executed (never skipped), which is what makes records
  // identical across skip and no-skip runs.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  void OnFastForward(Cycle resume_cycle) override { now_ = resume_cycle - 1; }
  std::string DebugName() const override { return "tenant_manager"; }

  const CounterSet& counters() const { return counters_; }

 private:
  struct TenantState {
    std::string name;
    TenantQuota quota;
    // Shared injection budget; member monitors hold a pointer (std::map
    // nodes are address-stable).
    TokenBucket noc_budget;
    std::vector<TileId> tiles;
    std::vector<AppId> apps;
    std::vector<std::pair<TileId, CapRef>> grants;
    // Metering state: last-boundary snapshots and running totals.
    uint64_t last_messages = 0;
    uint64_t last_flits = 0;
    uint64_t last_denials = 0;
    uint64_t last_mem_ops = 0;
    TenantUsage totals;
    uint32_t strikes = 0;
    bool escalated = false;
    std::string records;
    uint32_t record_count = 0;
  };

  TenantState* Find(TenantId tenant);
  const TenantState* Find(TenantId tenant) const;
  // Sums a monitor counter across the tenant's member tiles.
  uint64_t SumMonitorCounter(const TenantState& t, const std::string& name) const;
  uint64_t SumMemOps(const TenantState& t) const;
  void CutRecord(TenantId id, TenantState& t, Cycle now);
  void Escalate(TenantId id, TenantState& t);

  ApiaryOs* os_;
  Cycle meter_period_;
  Cycle now_ = 0;
  TenantId next_tenant_ = 1;
  std::map<TenantId, TenantState> tenants_;
  std::map<AppId, TenantId> app_owner_;
  Supervisor* supervisor_ = nullptr;
  MemoryService* memsvc_ = nullptr;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_TENANT_TENANT_H_
