file(REMOVE_RECURSE
  "CMakeFiles/a8_recovery_time.dir/a8_recovery_time.cc.o"
  "CMakeFiles/a8_recovery_time.dir/a8_recovery_time.cc.o.d"
  "a8_recovery_time"
  "a8_recovery_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a8_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
