// AmorphOS-style time multiplexing baseline: multiple applications share one
// reconfigurable region by swapping bitstreams, paying partial
// reconfiguration cost on every switch — versus Apiary's spatial sharing,
// where each app owns a tile and switches cost nothing.
//
// Used by the scheduling side of experiment E7/E8 discussions and by its own
// ablation bench: throughput and per-app latency as the number of co-resident
// apps grows, under both sharing disciplines.
#ifndef SRC_BASELINE_TIMESLICED_H_
#define SRC_BASELINE_TIMESLICED_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/sim/clocked.h"
#include "src/stats/histogram.h"

namespace apiary {

struct TimeSlicedConfig {
  uint32_t num_apps = 2;
  Cycle slice_cycles = 1'000'000;        // Scheduler quantum.
  Cycle reconfig_cycles = 4'000'000;     // Bitstream swap cost per switch.
  Cycle service_cycles = 200;            // Per-request service time.
};

class TimeSlicedFpga : public Clocked {
 public:
  explicit TimeSlicedFpga(TimeSlicedConfig config)
      : config_(config), queues_(config.num_apps), latencies_(config.num_apps) {}

  // Enqueues a request for `app`; records arrival for latency accounting.
  void Submit(uint32_t app, Cycle now) { queues_[app].push_back(now); }

  void Tick(Cycle now) override;
  std::string DebugName() const override { return "timesliced"; }

  uint64_t completed(uint32_t app) const { return completed_[app]; }
  const Histogram& latency(uint32_t app) const { return latencies_[app]; }
  uint64_t reconfigurations() const { return reconfigurations_; }
  uint64_t total_completed() const;

 private:
  TimeSlicedConfig config_;
  std::vector<std::deque<Cycle>> queues_;
  std::vector<Histogram> latencies_;
  std::vector<uint64_t> completed_ = std::vector<uint64_t>(64, 0);
  uint32_t active_app_ = 0;
  Cycle slice_started_at_ = 0;
  Cycle reconfig_until_ = 0;
  Cycle busy_until_ = 0;
  uint64_t reconfigurations_ = 0;
};

}  // namespace apiary

#endif  // SRC_BASELINE_TIMESLICED_H_
