file(REMOVE_RECURSE
  "CMakeFiles/apiary_mem.dir/dram.cc.o"
  "CMakeFiles/apiary_mem.dir/dram.cc.o.d"
  "CMakeFiles/apiary_mem.dir/interleaved_memory.cc.o"
  "CMakeFiles/apiary_mem.dir/interleaved_memory.cc.o.d"
  "CMakeFiles/apiary_mem.dir/memory_controller.cc.o"
  "CMakeFiles/apiary_mem.dir/memory_controller.cc.o.d"
  "CMakeFiles/apiary_mem.dir/page_allocator.cc.o"
  "CMakeFiles/apiary_mem.dir/page_allocator.cc.o.d"
  "CMakeFiles/apiary_mem.dir/page_table.cc.o"
  "CMakeFiles/apiary_mem.dir/page_table.cc.o.d"
  "CMakeFiles/apiary_mem.dir/segment_allocator.cc.o"
  "CMakeFiles/apiary_mem.dir/segment_allocator.cc.o.d"
  "libapiary_mem.a"
  "libapiary_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
