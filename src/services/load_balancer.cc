#include "src/services/load_balancer.h"

#include <utility>

#include "src/services/opcodes.h"

namespace apiary {

size_t LoadBalancer::PickBackend() {
  // Least-outstanding with round-robin tie breaking: spreads load evenly and
  // adapts when one replica slows down.
  size_t best = rr_next_ % backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const size_t idx = (rr_next_ + i) % backends_.size();
    if (backends_[idx].outstanding < backends_[best].outstanding) {
      best = idx;
    }
  }
  rr_next_ = (best + 1) % backends_.size();
  return best;
}

void LoadBalancer::ReplaceBackends(const std::vector<CapRef>& endpoints) {
  std::vector<Backend> next;
  next.reserve(endpoints.size());
  for (CapRef ep : endpoints) {
    uint64_t outstanding = 0;
    // A surviving backend keeps its in-flight accounting; a new one starts
    // cold and PickBackend naturally favors it.
    for (const Backend& b : backends_) {
      if (b.endpoint == ep) {
        outstanding = b.outstanding;
        break;
      }
    }
    next.push_back(Backend{ep, outstanding});
  }
  backends_ = std::move(next);
  rr_next_ = 0;
  counters_.Add("lb.configs");
}

uint64_t LoadBalancer::InFlightOn(CapRef endpoint) const {
  uint64_t n = 0;
  for (const auto& [id, rec] : in_flight_) {
    if (rec.endpoint == endpoint) {
      ++n;
    }
  }
  return n;
}

Histogram LoadBalancer::TakeWindowLatency() {
  Histogram out = window_latency_;
  window_latency_.Reset();
  return out;
}

void LoadBalancer::OnMessage(const Message& msg, TileApi& api) {
  // Credit the integral through this cycle at the pre-message in-flight
  // count before any branch below changes membership.
  AccrueIntegral(api.now());
  if (msg.kind == MsgKind::kResponse) {
    auto it = in_flight_.find(msg.request_id);
    if (it == in_flight_.end()) {
      counters_.Add("lb.orphan_responses");
      return;
    }
    InFlight rec = std::move(it->second);
    in_flight_.erase(it);
    // Match by endpoint, not index: a kOpLbConfig may have reordered or
    // replaced the backend set while this request was in flight.
    for (Backend& b : backends_) {
      if (b.endpoint == rec.endpoint && b.outstanding > 0) {
        --b.outstanding;
        break;
      }
    }
    const Cycle rtt = api.now() - rec.sent_at;
    latency_.Record(rtt);
    window_latency_.Record(rtt);
    Message reply;
    reply.opcode = msg.opcode;
    reply.status = msg.status;
    reply.payload = msg.payload;
    if (!api.Reply(rec.original, std::move(reply)).ok()) {
      counters_.Add("lb.reply_failures");
    }
    counters_.Add("lb.responses");
    return;
  }

  if (msg.opcode == kOpLbConfig) {
    // Control plane: replace the backend set with the CapRefs packed into
    // the payload (the kernel minted them into this tile's table before
    // sending the config). In-flight responses still reach their original
    // requesters and drain accounting follows the endpoint, not the index.
    Message reply;
    reply.opcode = msg.opcode;
    if (msg.payload.size() % 4 != 0) {
      reply.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(reply));
      return;
    }
    std::vector<CapRef> endpoints;
    for (size_t off = 0; off < msg.payload.size(); off += 4) {
      endpoints.push_back(GetU32(msg.payload, off));
    }
    ReplaceBackends(endpoints);
    PutU32(reply.payload, static_cast<uint32_t>(backends_.size()));
    api.Reply(msg, std::move(reply));
    return;
  }

  if (msg.opcode == kOpOrchStats) {
    // Metric export for the orchestration layer (and operators): queue and
    // latency state in one round trip.
    Message reply;
    reply.opcode = msg.opcode;
    PutU32(reply.payload, static_cast<uint32_t>(backends_.size()));
    PutU64(reply.payload, in_flight_.size());
    PutU64(reply.payload, counters_.Get("lb.responses"));
    PutU64(reply.payload, latency_.P50());
    PutU64(reply.payload, latency_.P99());
    api.Reply(msg, std::move(reply));
    return;
  }

  if (backends_.empty()) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kNoSuchService;
    api.Reply(msg, std::move(err));
    return;
  }
  const size_t idx = PickBackend();
  Message fwd;
  fwd.opcode = msg.opcode;
  fwd.payload = msg.payload;
  fwd.dst_process = msg.dst_process;
  fwd.request_id = next_forward_id_++;
  const uint64_t fwd_id = fwd.request_id;
  const CapRef endpoint = backends_[idx].endpoint;
  const SendResult r = api.Send(std::move(fwd), endpoint);
  if (!r.ok()) {
    counters_.Add("lb.forward_failures");
    Message err;
    err.opcode = msg.opcode;
    err.status = r.status;
    api.Reply(msg, std::move(err));
    return;
  }
  ++backends_[idx].outstanding;
  in_flight_.emplace(fwd_id, InFlight{msg, endpoint, api.now()});
  counters_.Add("lb.forwards");
}

}  // namespace apiary
