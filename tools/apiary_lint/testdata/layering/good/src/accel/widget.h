// Good: an accelerator sees only the Monitor-facing surface (core), the
// simulator substrate (sim), and the wire-ABI opcode header.
#ifndef SRC_ACCEL_WIDGET_H_
#define SRC_ACCEL_WIDGET_H_

#include "src/accel/helper.h"
#include "src/core/accelerator.h"
#include "src/services/opcodes.h"
#include "src/sim/types.h"

#endif  // SRC_ACCEL_WIDGET_H_
