file(REMOVE_RECURSE
  "libapiary_sim.a"
)
