file(REMOVE_RECURSE
  "libapiary_baseline.a"
)
