file(REMOVE_RECURSE
  "libapiary_accel.a"
)
