// Good: reservation state is sized once in Configure() and every later
// operation recycles slots in place — nothing on the launch/materialize
// path allocates.
#include <cstdint>
#include <vector>

namespace apiary {

class ExpressLane {
 public:
  void Configure(uint32_t num_tiles);
  bool TryLaunch(uint32_t tile);
  void Materialize(uint32_t idx);

 private:
  std::vector<uint16_t> path_owner_;  // Sized once; slots recycled in place.
  std::vector<uint8_t> zone_count_;
};

void ExpressLane::Configure(uint32_t num_tiles) {
  path_owner_.assign(num_tiles, 0);
  zone_count_.assign(num_tiles, 0);
}

bool ExpressLane::TryLaunch(uint32_t tile) {
  if (path_owner_[tile] != 0) {
    return false;
  }
  path_owner_[tile] = 1;
  zone_count_[tile] += 1;
  return true;
}

void ExpressLane::Materialize(uint32_t idx) {
  path_owner_[idx] = 0;
  zone_count_[idx] -= 1;
}

}  // namespace apiary
