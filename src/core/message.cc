#include "src/core/message.h"

namespace apiary {
namespace {

// Fixed header layout (little-endian):
//   u32 dst_service, u8 kind, u16 opcode, u8 status, u64 request_id,
//   u32 dst_process, u32 src_tile, u32 src_service, u32 src_app,
//   2 x (u64 grant.base, u64 grant.length, u8 grant flags), u32 payload_len
constexpr size_t kHeaderBytes = 4 + 1 + 2 + 1 + 8 + 4 + 4 + 4 + 4 + 2 * (8 + 8 + 1) + 4;

void PutU16(std::vector<uint8_t>& buf, uint16_t v) {
  buf.push_back(static_cast<uint8_t>(v));
  buf.push_back(static_cast<uint8_t>(v >> 8));
}

uint16_t GetU16(const std::vector<uint8_t>& buf, size_t offset) {
  return static_cast<uint16_t>(buf[offset]) | (static_cast<uint16_t>(buf[offset + 1]) << 8);
}

}  // namespace

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const std::vector<uint8_t>& buf, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buf[offset + i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const std::vector<uint8_t>& buf, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(buf[offset + i]) << (8 * i);
  }
  return v;
}

const char* MsgStatusName(MsgStatus status) {
  switch (status) {
    case MsgStatus::kOk:
      return "ok";
    case MsgStatus::kNoCapability:
      return "no_capability";
    case MsgStatus::kRateLimited:
      return "rate_limited";
    case MsgStatus::kBackpressure:
      return "backpressure";
    case MsgStatus::kNoSuchService:
      return "no_such_service";
    case MsgStatus::kDestFailed:
      return "dest_failed";
    case MsgStatus::kDenied:
      return "denied";
    case MsgStatus::kBadRequest:
      return "bad_request";
    case MsgStatus::kSegFault:
      return "seg_fault";
    case MsgStatus::kNoMemory:
      return "no_memory";
    case MsgStatus::kRevoked:
      return "revoked";
    case MsgStatus::kTileStopped:
      return "tile_stopped";
    case MsgStatus::kNotFound:
      return "not_found";
  }
  return "unknown";
}

size_t Message::WireBytes() const { return kHeaderBytes + payload.size(); }

std::vector<uint8_t> SerializeMessage(const Message& msg) {
  std::vector<uint8_t> out;
  out.reserve(msg.WireBytes());
  PutU32(out, msg.dst_service);
  out.push_back(static_cast<uint8_t>(msg.kind));
  PutU16(out, msg.opcode);
  out.push_back(static_cast<uint8_t>(msg.status));
  PutU64(out, msg.request_id);
  PutU32(out, msg.dst_process);
  PutU32(out, msg.src_tile);
  PutU32(out, msg.src_service);
  PutU32(out, msg.src_app);
  for (const SegmentGrant* grant : {&msg.grant, &msg.grant2}) {
    PutU64(out, grant->segment.base);
    PutU64(out, grant->segment.length);
    const uint8_t flags = static_cast<uint8_t>(
        (grant->valid ? 1 : 0) | (grant->can_read ? 2 : 0) | (grant->can_write ? 4 : 0) |
        (grant->can_grant ? 8 : 0));
    out.push_back(flags);
  }
  PutU32(out, static_cast<uint32_t>(msg.payload.size()));
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

std::optional<Message> DeserializeMessage(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) {
    return std::nullopt;
  }
  Message msg;
  size_t off = 0;
  msg.dst_service = GetU32(bytes, off);
  off += 4;
  msg.kind = static_cast<MsgKind>(bytes[off]);
  off += 1;
  msg.opcode = GetU16(bytes, off);
  off += 2;
  msg.status = static_cast<MsgStatus>(bytes[off]);
  off += 1;
  msg.request_id = GetU64(bytes, off);
  off += 8;
  msg.dst_process = GetU32(bytes, off);
  off += 4;
  msg.src_tile = GetU32(bytes, off);
  off += 4;
  msg.src_service = GetU32(bytes, off);
  off += 4;
  msg.src_app = GetU32(bytes, off);
  off += 4;
  for (SegmentGrant* grant : {&msg.grant, &msg.grant2}) {
    grant->segment.base = GetU64(bytes, off);
    off += 8;
    grant->segment.length = GetU64(bytes, off);
    off += 8;
    const uint8_t flags = bytes[off];
    off += 1;
    grant->valid = (flags & 1) != 0;
    grant->can_read = (flags & 2) != 0;
    grant->can_write = (flags & 4) != 0;
    grant->can_grant = (flags & 8) != 0;
  }
  const uint32_t payload_len = GetU32(bytes, off);
  off += 4;
  if (bytes.size() != kHeaderBytes + payload_len) {
    return std::nullopt;
  }
  msg.payload.assign(bytes.begin() + static_cast<ptrdiff_t>(off), bytes.end());
  return msg;
}

}  // namespace apiary
