// ParallelSimulator: conservative-PDES driver that decomposes one board into
// spatial shards and executes them on worker threads (ROADMAP item 1).
//
// Synchronization model (DESIGN.md "Parallel simulation engine"):
//
//   * The mesh is cut into banded shards (DomainPartition). Every cross-shard
//     NoC link has exactly one cycle of latency — that hop is the engine's
//     lookahead: what shard A routes at cycle T cannot be seen by shard B
//     before T+1, so both can execute cycle T without speaking.
//   * Each executed cycle runs as
//       root phase    — coordinator only: event queue, then every block with
//                       no partition home (memory, MACs, OS services,
//                       tenants, fault injector), in registration order.
//       shard phase 1 — each worker, for each shard it owns:
//                       ShardCommit + ShardRoute, then publish a route_done
//                       grant stamped with the cycle sequence number. The
//                       grant is this engine's null message: "shard s has
//                       emitted everything it will emit for cycle T".
//       shard phase 2 — each worker, for each shard it owns: wait for the
//                       grants of shards it exchanges flits with, then
//                       ShardTransfer (drain boundary rings, inject) and
//                       tick the shard's blocks (tiles) in registration
//                       order.
//     Phases are separated by acquire/release publication; the coordinator
//     joins the cycle as worker 0 and then waits for all workers before
//     applying removals and advancing the clock, so root-phase code and
//     shard-phase code are never concurrent.
//   * Running phase 1 for *all* owned shards before any phase-2 wait makes
//     the protocol deadlock-free for any threads <= shards: grants only
//     depend on phase-1 work, which never blocks.
//
// Determinism: the schedule is a pure function of the SHARD count, never the
// thread count. Shard-phase work touches only shard-confined state (the
// shard's routers/NIs/tiles, its SimContext pool+arena via
// ThreadDomain::ScopedInstall, its log sink) plus SPSC boundary rings whose
// contents are fixed by the grant protocol — so threads=1,2,...,shards
// produce byte-identical traces, counters, and billing digests
// (tests/parallel_differential_test.cc). Note the parallel schedule is its
// own documented tick order (root blocks, then shards in id order); it is
// deterministic, but not the serial Simulator::Step interleaving.
//
// Contract for users: Register/Unregister may be called at build time or
// from root-phase code (events, root-block ticks) — never from a
// shard-phase Tick, which runs concurrently with other shards.
#ifndef SRC_SIM_PARALLEL_PARALLEL_SIMULATOR_H_
#define SRC_SIM_PARALLEL_PARALLEL_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/parallel/domain_partition.h"
#include "src/sim/parallel/sharded_fabric.h"
#include "src/sim/simulator.h"

namespace apiary {

struct ParallelConfig {
  // Number of spatial shards. 0 picks min(4, longer mesh axis). Fix this
  // across runs you want byte-comparable; vary only `threads`.
  uint32_t shards = 0;
  // Worker threads (the calling thread is worker 0). Clamped to
  // [1, shards]. threads=1 runs the full parallel schedule serially —
  // the baseline the differential test compares against.
  uint32_t threads = 1;
};

class ParallelSimulator {
 public:
  // Partitions `fabric` (must be idle) and starts the worker pool. Both
  // pointers must outlive this object; the fabric keeps the shard contexts
  // alive until its own destruction (cloned packets outlive the engine).
  ParallelSimulator(Simulator* sim, ShardedFabric* fabric, ParallelConfig config = {});
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;
  // Joins the workers and returns the fabric to serial ticking.
  ~ParallelSimulator();

  // Runs `cycles` additional cycles under the sharded schedule. Quiescent
  // stretches fast-forward exactly like the serial engine (the coordinator
  // reuses Simulator::SkipAhead between executed cycles, while the workers
  // spin idle); skip decisions are identical because boundary rings are
  // drained every executed cycle.
  void Run(Cycle cycles);

  Cycle now() const { return sim_->now(); }
  uint32_t shards() const { return num_shards_; }
  uint32_t threads() const { return threads_; }
  const DomainPartition& partition() const { return partition_; }
  // Shard s's domain context (install a per-shard log sink here to capture
  // that domain's trace).
  SimContext* shard_context(uint32_t shard) { return shard_contexts_[shard]; }

 private:
  // Cache-line-isolated grant slot so spinning on one shard's grant never
  // bounces the line another shard is publishing.
  struct alignas(64) GrantSlot {
    std::atomic<uint64_t> seq{0};
  };

  void ExecuteCycle();
  void WorkerCycle(uint32_t worker, Cycle now);
  void WorkerMain(uint32_t worker);
  void WaitWorkersDone();
  // Rebuilds root_blocks_/shard_blocks_ from the simulator's block list and
  // migrates blocks between the root schedule and the per-shard schedules
  // (called when the list changes; coordinator only, workers at rest).
  void Reclassify();
  // Active-set replacement for Simulator::SkipAhead: the jump target is the
  // minimum over the root schedule, every shard schedule, the fabric's own
  // declaration, and the event queue — the same minimum the tick-everything
  // sweep computes, so skip counts stay byte-identical. Delegates to the
  // serial sweep when active sets are disabled.
  void ParallelSkipAhead(Cycle limit);
  // Folds the shard schedules' tick/wake counters into the simulator's
  // (delta-based, so repeated Run() calls never double-count).
  void FoldShardCounters();

  static constexpr uint64_t kTokenCycle = 0;
  static constexpr uint64_t kTokenEndRun = 1;

  Simulator* sim_;
  ShardedFabric* fabric_;
  DomainPartition partition_;
  uint32_t num_shards_ = 0;
  uint32_t threads_ = 1;
  std::vector<SimContext*> shard_contexts_;  // Owned by the fabric.

  // Block classification (coordinator-written, worker-read across the go
  // publication).
  std::vector<Clocked*> root_blocks_;
  std::vector<std::vector<Clocked*>> shard_blocks_;
  size_t classified_count_ = 0;

  // Per-shard active schedules: shard s's blocks live in shard_scheds_[s]
  // while the partition is enabled (the root schedule keeps everything
  // else; the fabric block is scheduled by the shard phases themselves).
  // Worker-confined during shard phases; coordinator-only otherwise.
  std::vector<std::unique_ptr<ActiveSchedule>> shard_scheds_;
  // Last-folded counter snapshots (see FoldShardCounters).
  std::vector<uint64_t> folded_ticked_;
  std::vector<uint64_t> folded_wheel_;
  std::vector<uint64_t> folded_wake_;

  // Worker w owns shards [shard_begin_[w], shard_begin_[w + 1]).
  std::vector<uint32_t> shard_begin_;
  std::vector<uint32_t> owner_of_shard_;

  // Run-level parking (cv: runs are rare) and cycle-level go/done signals
  // (atomics: cycles are hot). go_token_/go_cycle_ are plain fields
  // published by the go_seq_ release store and read after its acquire load.
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  uint64_t run_seq_ = 0;
  bool shutdown_ = false;

  std::atomic<uint64_t> go_seq_{0};
  uint64_t go_token_ = kTokenCycle;
  Cycle go_cycle_ = 0;
  // Monotonic executed-cycle counter stamped into route_done grants (never
  // reset, so stale grants from earlier cycles can never satisfy a wait).
  uint64_t cycle_seq_ = 0;
  std::unique_ptr<GrantSlot[]> route_done_;
  std::atomic<uint32_t> done_{0};

  std::vector<std::thread> workers_;
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_PARALLEL_SIMULATOR_H_
