// YCSB-style key-value workload generation — the substitute for production
// KV traces. Keys are Zipf-distributed over a fixed keyspace; the op mix is
// configurable (YCSB-B defaults: 95% reads, 5% updates).
#ifndef SRC_WORKLOAD_KV_WORKLOAD_H_
#define SRC_WORKLOAD_KV_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/payload_buf.h"

#include "src/sim/random.h"
#include "src/workload/client.h"

namespace apiary {

struct KvWorkloadConfig {
  uint64_t keyspace = 1000;
  double zipf_theta = 0.99;
  double read_fraction = 0.95;
  uint32_t value_bytes = 100;
};

// Builds the payload of a kOpKvGet/kOpKvPut request for `key`.
PayloadBuf MakeKvGetPayload(const std::string& key);
PayloadBuf MakeKvPutPayload(const std::string& key,
                                      const std::vector<uint8_t>& value);

// Canonical key/value derivation so independent components (loader, checker,
// client) agree on contents.
std::string KvKeyForIndex(uint64_t index);
std::vector<uint8_t> KvValueForIndex(uint64_t index, uint32_t value_bytes);

// Returns a ClientHost::RequestFactory producing the configured mix.
ClientHost::RequestFactory MakeKvRequestFactory(KvWorkloadConfig config);

}  // namespace apiary

#endif  // SRC_WORKLOAD_KV_WORKLOAD_H_
