file(REMOVE_RECURSE
  "CMakeFiles/a4_dma_vs_messages.dir/a4_dma_vs_messages.cc.o"
  "CMakeFiles/a4_dma_vs_messages.dir/a4_dma_vs_messages.cc.o.d"
  "a4_dma_vs_messages"
  "a4_dma_vs_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_dma_vs_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
