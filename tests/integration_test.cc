// End-to-end integration tests: full client -> network -> gateway ->
// accelerator -> memory-service chains on a live board, the Section 2 video
// pipeline, multi-tenant isolation, and scale-out through the load balancer.
#include <gtest/gtest.h>

#include "src/accel/compressor.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/kv_store.h"
#include "src/accel/video_encoder.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/load_balancer.h"
#include "src/services/memory_service.h"
#include "src/services/mgmt_service.h"
#include "src/services/network_service.h"
#include "src/workload/client.h"
#include "src/workload/frame_source.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Stands up the full Apiary software stack: memory + network services.
void DeployBaseServices(TestBoard& tb) {
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g())));
}

TEST(IntegrationTest, ClientDrivesKvStoreOverTheNetwork) {
  TestBoard tb;
  DeployBaseServices(tb);

  AppId app = tb.os.CreateApp("kv-tenant");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId kv_svc = 0;
  const TileId kv_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  (void)tb.os.GrantSendToService(kv_tile, kMemoryService);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gw_tile, kv_svc));

  // Closed-loop client: PUT key0..key9, then GET them back.
  int puts_done = 0;
  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 1;
  ccfg.max_requests = 20;
  ClientHost client(ccfg, &tb.net, [&](uint64_t index, Rng&) {
    ClientRequest req;
    const std::string key = KvKeyForIndex(index % 10);
    if (index < 10) {
      req.opcode = kOpKvPut;
      req.payload = MakeKvPutPayload(key, KvValueForIndex(index, 64));
      ++puts_done;
    } else {
      req.opcode = kOpKvGet;
      req.payload = MakeKvGetPayload(key);
    }
    return req;
  });
  tb.sim.Register(&client);

  ASSERT_TRUE(tb.sim.RunUntil([&] { return client.received() == 20; }, 2'000'000))
      << "sent=" << client.sent() << " recv=" << client.received();
  EXPECT_EQ(client.errors(), 0u);
  // The final GET's payload is the value of key 9.
  EXPECT_EQ(client.last_response(), KvValueForIndex(9, 64));
  EXPECT_GT(client.latency().P50(), 0u);
}

TEST(IntegrationTest, VideoPipelineEncodesAndCompresses) {
  // The Section 2 motivating example: frames flow client-side into the
  // encoder tile, whose bitstream is forwarded tile-to-tile to a
  // "third-party" compressor, and the compressed result returns.
  TestBoard tb;
  DeployBaseServices(tb);

  AppId app = tb.os.CreateApp("video-pipeline");
  auto* compressor = new CompressorAccelerator(16);
  ServiceId comp_svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(compressor), &comp_svc);
  auto* encoder = new VideoEncoderAccelerator(5, 60);
  ServiceId enc_svc = 0;
  const TileId enc_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(encoder), &enc_svc);
  encoder->SetNextStage(tb.os.GrantSendToService(enc_tile, comp_svc), kOpCompress);

  // The compressor replies to the *encoder* (pipeline stage semantics), so
  // collect results at a probe that drives the pipeline instead: probe ->
  // encoder -> compressor -> (reply) encoder. For end-to-end observation we
  // instead run the compressor as final stage with replies forwarded to the
  // probe through the encoder being the requester of record.
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef to_enc = tb.os.GrantSendToService(pt, enc_svc);

  const auto pixels = GenerateFrame(48, 48, 3, 0);
  Message frame;
  frame.opcode = kOpEncodeFrame;
  frame.payload = FrameToRequestPayload(48, 48, pixels);
  probe->EnqueueSend(frame, to_enc);

  ASSERT_TRUE(tb.sim.RunUntil([&] { return compressor->chunks_compressed() >= 1; }, 500000));
  EXPECT_EQ(encoder->frames_encoded(), 1u);
  EXPECT_GT(compressor->bytes_in(), 0u);
  // The compressed bitstream must round-trip back to the original encoding.
  EXPECT_LT(compressor->bytes_out(), compressor->bytes_in() + 16);
}

TEST(IntegrationTest, MutuallyDistrustingTenantsIsolated) {
  // Section 2's scenario: a KV tenant and a video tenant share the board.
  // The KV tenant hosts a snooper; nothing it does may observe or perturb
  // the video tenant's correctness.
  TestBoard tb;
  DeployBaseServices(tb);

  AppId video_app = tb.os.CreateApp("video");
  auto* encoder = new VideoEncoderAccelerator(5, 60);
  ServiceId enc_svc = 0;
  tb.os.Deploy(video_app, std::unique_ptr<Accelerator>(encoder), &enc_svc);
  auto* vprobe = new ProbeAccelerator();
  const TileId vp_tile = tb.os.Deploy(video_app, std::unique_ptr<Accelerator>(vprobe));
  const CapRef to_enc = tb.os.GrantSendToService(vp_tile, enc_svc);

  AppId kv_app = tb.os.CreateApp("kv-evil");
  auto* snoop = new SnooperAccelerator(tb.os.num_tiles(), 20);
  const TileId st = tb.os.Deploy(kv_app, std::unique_ptr<Accelerator>(snoop));
  (void)tb.os.GrantSendToService(st, kMemoryService);

  const auto pixels = GenerateFrame(32, 32, 1, 0);
  Message frame;
  frame.opcode = kOpEncodeFrame;
  frame.payload = FrameToRequestPayload(32, 32, pixels);
  vprobe->EnqueueSend(frame, to_enc);

  ASSERT_TRUE(tb.sim.RunUntil([&] { return !vprobe->received.empty(); }, 500000));
  // Video tenant: correct result despite the active snooper.
  EXPECT_EQ(vprobe->received[0].status, MsgStatus::kOk);
  const auto decoded = DecodeFrame(vprobe->received[0].payload, nullptr, nullptr);
  EXPECT_FALSE(decoded.empty());
  // Snooper: many attempts, zero leaks.
  EXPECT_GT(snoop->attempts(), 0u);
  EXPECT_EQ(snoop->leaked(), 0u);
}

TEST(IntegrationTest, ScaleOutThroughLoadBalancer) {
  TestBoard tb(TestBoardOptions{4, 4});
  DeployBaseServices(tb);

  AppId app = tb.os.CreateApp("scaleout");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  std::vector<EchoAccelerator*> replicas;
  for (int i = 0; i < 4; ++i) {
    auto* echo = new EchoAccelerator(200);
    ServiceId svc = 0;
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    lb->AddBackend(tb.os.GrantSendToService(lb_tile, svc));
    replicas.push_back(echo);
  }
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)tb.os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gw_tile, lb_svc));

  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 8;
  ccfg.max_requests = 80;
  ClientHost client(ccfg, &tb.net, [](uint64_t, Rng&) {
    ClientRequest req;
    req.opcode = kOpEcho;
    req.payload = {1, 2, 3, 4};
    return req;
  });
  tb.sim.Register(&client);

  ASSERT_TRUE(tb.sim.RunUntil([&] { return client.received() == 80; }, 2'000'000));
  EXPECT_EQ(client.errors(), 0u);
  // All four replicas shared the work.
  for (auto* r : replicas) {
    EXPECT_GT(r->served(), 10u);
  }
}

TEST(IntegrationTest, WatchdogRecoversWedgedServiceTile) {
  TestBoard tb;
  DeployBaseServices(tb);
  auto* mgmt = new MgmtService(&tb.os);
  tb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));

  AppId app = tb.os.CreateApp("flaky");
  auto* wedge = new WedgeAccelerator(/*healthy_requests=*/3, kInvalidCapRef,
                                     /*heartbeat_period=*/500);
  ServiceId svc = 0;
  const TileId wt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(wedge), &svc);
  (void)tb.os.GrantSendToService(wt, kMgmtService);

  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);

  // Three healthy echoes...
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 3; }, 100000));
  // ...then it wedges silently. The watchdog must fail-stop the tile.
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return tb.os.monitor(wt).fault_state() == TileFaultState::kStopped; }, 100000));
  EXPECT_GE(mgmt->counters().Get("mgmt.watchdog_trips"), 1u);
  // After fail-stop, the pending/new requests come back as errors, and the
  // kernel can reprovision the tile with fresh logic.
  ASSERT_TRUE(tb.os.Reconfigure(wt, std::make_unique<EchoAccelerator>(0), /*immediate=*/true));
  tb.sim.Run(10);
  EXPECT_EQ(tb.os.monitor(wt).fault_state(), TileFaultState::kHealthy);
  probe->received.clear();
  Message after;
  after.opcode = kOpEcho;
  after.payload = {7};
  probe->EnqueueSend(after, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(probe->received[0].payload, (std::vector<uint8_t>{7}));
}

TEST(IntegrationTest, HotReconfigurationDoesNotDisturbNeighbors) {
  TestBoard tb;
  DeployBaseServices(tb);
  AppId app = tb.os.CreateApp("stable");
  auto* echo = new EchoAccelerator(10);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);

  // Start a slow partial reconfiguration on an unrelated tile.
  AppId other = tb.os.CreateApp("other");
  DeployOptions slow;
  slow.immediate = false;
  const TileId rt = tb.os.Deploy(other, std::make_unique<EchoAccelerator>(0), nullptr, slow);
  ASSERT_NE(rt, kInvalidTile);
  EXPECT_TRUE(tb.os.tile(rt).reconfiguring());

  // Traffic through the stable app flows normally meanwhile.
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {static_cast<uint8_t>(i)};
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 5; }, 100000));
  for (const auto& r : probe->received) {
    EXPECT_EQ(r.status, MsgStatus::kOk);
  }
  EXPECT_TRUE(tb.os.tile(rt).reconfiguring());  // Still going; no interference.
}

}  // namespace
}  // namespace apiary
