// Good: tenant policy sits above orchestration and the service stack — it
// installs quotas that the scheduler, services and NoC enforce.
#ifndef SRC_TENANT_QUOTA_H_
#define SRC_TENANT_QUOTA_H_

#include "src/core/kernel.h"
#include "src/noc/rate_limiter.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/memory_service.h"
#include "src/sim/clocked.h"
#include "src/stats/summary.h"

#endif  // SRC_TENANT_QUOTA_H_
