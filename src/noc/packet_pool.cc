#include "src/noc/packet_pool.h"

namespace apiary {
namespace {

// Scrubs every simulation-visible field so a recycled packet is
// indistinguishable from a freshly constructed one (determinism depends on
// this). The payload keeps its backing capacity — that reuse is the point.
void ResetPacket(NocPacket* packet) {
  packet->src = kInvalidTile;
  packet->dst = kInvalidTile;
  packet->vc = Vc::kRequest;
  packet->packet_id = 0;
  packet->inject_cycle = 0;
  packet->head_len = 0;
  packet->payload.clear();
  packet->checksum = 0;
  packet->flit_count = 1;
  packet->dropped = false;
}

}  // namespace

void ReleasePacket(NocPacket* packet) {
  if (packet->pool != nullptr) {
    packet->pool->Release(packet);
  } else {
    delete packet;
  }
}

PacketPool::~PacketPool() {
  // Live packets (refs still out) keep a pointer to this pool; destroying
  // the pool under them is a caller bug. Pooled tests drain first.
  assert(stats_.live == 0);
  for (NocPacket* packet : free_) {
    delete packet;
  }
}

PacketRef PacketPool::Acquire() {
  ++stats_.acquires;
  if (!enabled_) {
    ++stats_.heap_allocs;
    return PacketRef(new NocPacket);  // Unpooled: deleted on last unref.
  }
  NocPacket* packet = nullptr;
  if (!free_.empty()) {
    packet = free_.back();
    free_.pop_back();
    stats_.free_size = static_cast<uint32_t>(free_.size());
    ++stats_.pool_hits;
  } else if (max_packets_ != 0 && stats_.live >= max_packets_) {
    ++stats_.exhausted_fallbacks;
    ++stats_.heap_allocs;
    return PacketRef(new NocPacket);  // Over cap: degrade, don't fail.
  } else {
    ++stats_.heap_allocs;
    packet = new NocPacket;
    packet->pool = this;
  }
  ++stats_.live;
  if (stats_.live > stats_.high_water) {
    stats_.high_water = stats_.live;
  }
  return PacketRef(packet);
}

void PacketPool::Release(NocPacket* packet) {
  ResetPacket(packet);
  free_.push_back(packet);
  stats_.free_size = static_cast<uint32_t>(free_.size());
  ++stats_.releases;
  --stats_.live;
}

void PacketPool::ResetStats() {
  const uint32_t live = stats_.live;
  const uint32_t free_size = stats_.free_size;
  stats_ = PacketPoolStats{};
  stats_.live = live;
  stats_.high_water = live;
  stats_.free_size = free_size;
}

PacketPool& PacketPool::ForContext(SimContext& context) {
  // The context destroys slot contents before retiring its arena, so the
  // freelist packets' payload chunks always have somewhere to go — the
  // ordering guarantee the old process-wide Meyers singleton needed a
  // construction-order trick for.
  void* existing = context.slot(SimContext::kSlotPacketPool);
  if (existing == nullptr) {
    context.set_slot(SimContext::kSlotPacketPool, new PacketPool,
                     [](void* pool) { delete static_cast<PacketPool*>(pool); });
    existing = context.slot(SimContext::kSlotPacketPool);
  }
  return *static_cast<PacketPool*>(existing);
}

}  // namespace apiary
