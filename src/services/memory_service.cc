#include "src/services/memory_service.h"

namespace apiary {

void MemoryService::ReplyError(const Message& msg, TileApi& api, MsgStatus status) {
  Message err;
  err.opcode = msg.opcode;
  err.status = status;
  counters_.Add("memsvc.errors");
  api.Reply(msg, std::move(err));
}

void MemoryService::HandleAlloc(const Message& msg, TileApi& api) {
  if (msg.payload.size() < 12) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  const uint64_t bytes = GetU64(msg.payload, 0);
  const uint32_t rights =
      GetU32(msg.payload, 8) & (kRightRead | kRightWrite | kRightGrant);
  auto ref = os_->GrantMemory(msg.src_tile, bytes, rights);
  if (!ref.has_value()) {
    counters_.Add("memsvc.alloc_failures");
    ReplyError(msg, api, MsgStatus::kNoMemory);
    return;
  }
  counters_.Add("memsvc.allocs");
  Message ok;
  ok.opcode = kOpMemAlloc;
  PutU32(ok.payload, *ref);
  PutU64(ok.payload, bytes);
  api.Reply(msg, std::move(ok));
}

void MemoryService::HandleFree(const Message& msg, TileApi& api) {
  if (msg.payload.size() < 4) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  const CapRef ref = GetU32(msg.payload, 0);
  if (!os_->Revoke(msg.src_tile, ref)) {
    ReplyError(msg, api, MsgStatus::kRevoked);
    return;
  }
  counters_.Add("memsvc.frees");
  Message ok;
  ok.opcode = kOpMemFree;
  api.Reply(msg, std::move(ok));
}

void MemoryService::HandleShare(const Message& msg, TileApi& api) {
  // Delegation (Section 4.6 / Dennis & Van Horn): a holder with the grant
  // right may mint an *attenuated* capability over a *sub-range* of its
  // segment for another tile. The monitor attached the presented capability
  // as msg.grant; forging is impossible because monitors scrub that field.
  if (!msg.grant.valid || !msg.grant.can_grant) {
    counters_.Add("memsvc.share_no_grant_right");
    ReplyError(msg, api, MsgStatus::kNoCapability);
    return;
  }
  if (msg.payload.size() < 24) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  const uint64_t offset = GetU64(msg.payload, 0);
  const uint64_t len = GetU64(msg.payload, 8);
  const ServiceId target = GetU32(msg.payload, 16);
  uint32_t rights = GetU32(msg.payload, 20);
  // Attenuation only: the delegate cannot exceed the delegator's rights,
  // and the grant right itself is never re-delegated through this path.
  uint32_t max_rights = (msg.grant.can_read ? kRightRead : 0) |
                        (msg.grant.can_write ? kRightWrite : 0);
  rights &= max_rights;
  if (len == 0 || offset >= msg.grant.segment.length ||
      len > msg.grant.segment.length - offset) {
    counters_.Add("memsvc.share_out_of_range");
    ReplyError(msg, api, MsgStatus::kSegFault);
    return;
  }
  const TileId target_tile = os_->LookupServiceTile(target);
  if (target_tile == kInvalidTile) {
    ReplyError(msg, api, MsgStatus::kNoSuchService);
    return;
  }
  const Segment sub{msg.grant.segment.base + offset, len};
  const CapRef ref = os_->GrantExistingSegment(target_tile, sub, rights);
  if (ref == kInvalidCapRef) {
    ReplyError(msg, api, MsgStatus::kNoMemory);
    return;
  }
  counters_.Add("memsvc.shares");
  Message ok;
  ok.opcode = kOpMemShare;
  PutU32(ok.payload, ref);
  api.Reply(msg, std::move(ok));
}

void MemoryService::HandleAccess(const Message& msg, TileApi& api, bool is_write) {
  // Capability presentation: the sending monitor attached the grant; an
  // accelerator that never presented a memory capability has grant.valid
  // false and is refused outright.
  if (!msg.grant.valid || (is_write ? !msg.grant.can_write : !msg.grant.can_read)) {
    counters_.Add("memsvc.access_no_grant");
    ReplyError(msg, api, MsgStatus::kNoCapability);
    return;
  }
  const size_t header = is_write ? 8 : 12;
  if (msg.payload.size() < header) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  const uint64_t offset = GetU64(msg.payload, 0);
  const uint64_t len =
      is_write ? msg.payload.size() - 8 : static_cast<uint64_t>(GetU32(msg.payload, 8));
  if (len == 0 || !msg.grant.segment.Contains(msg.grant.segment.base + offset, len) ||
      offset >= msg.grant.segment.length || len > msg.grant.segment.length - offset) {
    // Out-of-segment access: the isolation property in action (4.6).
    counters_.Add("memsvc.seg_faults");
    ReplyError(msg, api, MsgStatus::kSegFault);
    return;
  }
  // Memory-channel share enforcement: an over-quota access is deferred to
  // the next window (graceful degradation — latency, not loss) until the
  // deferral queue itself fills, at which point the sender is told to back
  // off. Quota pressure therefore never drops an admitted request.
  if (!ShareAllows(msg.src_app, api.now())) {
    if (deferred_.size() >= kMaxDeferred) {
      counters_.Add("memsvc.quota_rejected");
      ReplyError(msg, api, MsgStatus::kBackpressure);
      return;
    }
    counters_.Add("memsvc.quota_deferred");
    deferred_.push_back(DeferredAccess{msg, is_write});
    return;
  }
  AdmitAccess(msg, is_write, api.now());
}

bool MemoryService::ShareAllows(AppId app, Cycle now) {
  auto it = shares_.find(app);
  if (it == shares_.end()) {
    return true;
  }
  return it->second.WouldAllow(now, 1);
}

void MemoryService::AdmitAccess(const Message& msg, bool is_write, Cycle now) {
  auto it = shares_.find(msg.src_app);
  if (it != shares_.end()) {
    it->second.TryConsume(now, 1);
  }
  ++app_ops_[msg.src_app];
  const uint64_t offset = GetU64(msg.payload, 0);
  const uint64_t len =
      is_write ? msg.payload.size() - 8 : static_cast<uint64_t>(GetU32(msg.payload, 8));
  auto op = std::make_shared<PendingAccess>();
  op->request = msg;
  op->is_write = is_write;
  op->addr = msg.grant.segment.base + offset;
  if (is_write) {
    op->buffer.assign(msg.payload.begin() + 8, msg.payload.end());
  } else {
    op->buffer.resize(len);
  }
  pending_.push_back(op);
  counters_.Add(is_write ? "memsvc.writes" : "memsvc.reads");
}

void MemoryService::SetAppShare(AppId app, uint64_t ops_per_window, Cycle window_cycles) {
  if (ops_per_window == 0) {
    shares_.erase(app);
    return;
  }
  shares_[app] = WindowMeter(ops_per_window, window_cycles);
}

uint64_t MemoryService::AppOps(AppId app) const {
  auto it = app_ops_.find(app);
  return it == app_ops_.end() ? 0 : it->second;
}

// APIARY-WAKE(tile): requests arrive through the owning Tile (NI sink
// wake); deferred replays are timer-bounded by NextWindowStart below.
Cycle MemoryService::NextActivity(Cycle now) const {
  if (!pending_.empty()) {
    return now;
  }
  if (!deferred_.empty()) {
    auto it = shares_.find(deferred_.front().request.src_app);
    return it == shares_.end() ? now : it->second.NextWindowStart(now);
  }
  return kNoActivity;
}

void MemoryService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;  // This service sends no requests of its own.
  }
  switch (msg.opcode) {
    case kOpMemAlloc:
      HandleAlloc(msg, api);
      break;
    case kOpMemFree:
      HandleFree(msg, api);
      break;
    case kOpMemShare:
      HandleShare(msg, api);
      break;
    case kOpMemRead:
      HandleAccess(msg, api, /*is_write=*/false);
      break;
    case kOpMemWrite:
      HandleAccess(msg, api, /*is_write=*/true);
      break;
    default:
      ReplyError(msg, api, MsgStatus::kBadRequest);
      break;
  }
}

void MemoryService::Tick(TileApi& api) {
  // Admit deferred (quota-blocked) accesses whose app regained allowance.
  // FIFO across apps keeps the order deterministic and starvation-free.
  while (!deferred_.empty() && ShareAllows(deferred_.front().request.src_app, api.now())) {
    DeferredAccess d = std::move(deferred_.front());
    deferred_.pop_front();
    AdmitAccess(d.request, d.is_write, api.now());
  }
  // Submit queued DRAM operations (retrying on bank backpressure) and reply
  // for completed ones. Completion order may differ from submission order
  // across banks; replies go out as operations finish.
  for (auto& op : pending_) {
    if (op->submitted) {
      continue;
    }
    auto on_done = [op](Cycle) { op->complete = true; };
    const bool accepted =
        op->is_write
            ? memory_->SubmitWrite(op->addr, op->buffer, on_done)
            : memory_->SubmitRead(op->addr, std::span<uint8_t>(op->buffer), on_done);
    if (accepted) {
      op->submitted = true;
    } else {
      break;  // Preserve submission order per service.
    }
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto& op = *it;
    if (!op->complete) {
      ++it;
      continue;
    }
    Message reply;
    reply.opcode = op->request.opcode;
    if (op->is_write) {
      PutU32(reply.payload, static_cast<uint32_t>(op->buffer.size()));
    } else {
      reply.payload = op->buffer;
    }
    if (!api.Reply(op->request, std::move(reply)).ok()) {
      counters_.Add("memsvc.reply_failures");
    }
    it = pending_.erase(it);
  }
}

}  // namespace apiary
