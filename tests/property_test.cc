// Property-based and model-based tests: randomized storms checked against
// reference models and invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/accel/kv_store.h"
#include "src/accel/probe.h"
#include "src/core/service_ids.h"
#include "src/services/memory_service.h"
#include "src/sim/random.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// ---------------------------------------------------------------------
// Message wire-format fuzzing: arbitrary bytes must never crash the
// deserializer, and any accepted buffer must re-serialize to itself.
// ---------------------------------------------------------------------

class MessageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageFuzzTest, ArbitraryBytesSafeToParse) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes(rng.NextBelow(200));
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    auto msg = DeserializeMessage(bytes);
    if (msg.has_value()) {
      EXPECT_EQ(SerializeMessage(*msg), bytes);
    }
  }
}

TEST_P(MessageFuzzTest, MutatedValidMessagesNeverMisparse) {
  Rng rng(GetParam() + 100);
  Message base;
  base.opcode = 7;
  base.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto good = SerializeMessage(base);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = good;
    // Truncate or extend randomly.
    if (rng.NextBool(0.5) && !mutated.empty()) {
      mutated.resize(rng.NextBelow(mutated.size()));
    } else {
      mutated.resize(mutated.size() + rng.NextInRange(1, 16), 0xaa);
    }
    auto msg = DeserializeMessage(mutated);
    if (msg.has_value()) {
      // Only acceptable if the result is self-consistent.
      EXPECT_EQ(SerializeMessage(*msg).size(), mutated.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Capability-table storm: random install/revoke/lookup against a shadow
// model; stale references must always fail closed.
// ---------------------------------------------------------------------

class CapTableStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CapTableStormTest, MatchesShadowModel) {
  Rng rng(GetParam());
  CapabilityTable table(32);
  std::map<CapRef, ServiceId> live;      // ref -> dst_service for live caps.
  std::set<CapRef> revoked;
  for (int step = 0; step < 20000; ++step) {
    const double u = rng.NextDouble();
    if (u < 0.4) {
      Capability cap;
      cap.kind = CapKind::kEndpoint;
      cap.dst_service = static_cast<ServiceId>(rng.NextBelow(1000));
      const CapRef ref = table.Install(cap);
      if (live.size() < 32) {
        ASSERT_NE(ref, kInvalidCapRef);
        live[ref] = cap.dst_service;
      } else {
        EXPECT_EQ(ref, kInvalidCapRef);
      }
    } else if (u < 0.7 && !live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      EXPECT_TRUE(table.Revoke(it->first));
      revoked.insert(it->first);
      live.erase(it);
    } else {
      // Lookup a mix of live, revoked and random refs.
      if (!live.empty() && rng.NextBool(0.5)) {
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        const Capability* cap = table.Lookup(it->first);
        ASSERT_NE(cap, nullptr);
        EXPECT_EQ(cap->dst_service, it->second);
      } else if (!revoked.empty() && rng.NextBool(0.5)) {
        auto it = revoked.begin();
        std::advance(it, rng.NextBelow(revoked.size()));
        EXPECT_EQ(table.Lookup(*it), nullptr) << "stale reference resolved!";
      } else {
        table.Lookup(static_cast<CapRef>(rng.Next()));  // Must not crash.
      }
    }
    ASSERT_EQ(table.live_count(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapTableStormTest, ::testing::Values(7, 8, 9, 10));

// ---------------------------------------------------------------------
// Zero-load NoC latency obeys the pipeline model: per-hop cost is constant
// and per-flit serialization is additive.
// ---------------------------------------------------------------------

TEST(NocLatencyModelTest, ZeroLoadLatencyIsAffineInHopsAndFlits) {
  // Measure L(hops, payload) on an idle mesh and verify the pipeline model
  // empirically: equal hop increments add equal latency, and each extra
  // flit adds exactly one cycle of serialization.
  auto measure = [](TileId hops, uint32_t payload) {
    Simulator sim;
    Mesh mesh(MeshConfig{8, 1, 8, 512});
    sim.Register(&mesh);
    PacketRef p(new NocPacket());
    p->src = 0;
    p->dst = hops;
    p->payload.assign(payload, 1);
    mesh.ni(0).Inject(p, sim.now());
    EXPECT_TRUE(sim.RunUntil([&] { return mesh.ni(hops).HasDeliverable(); }, 10000));
    return sim.now();
  };
  // Affine in hops: L(5)-L(3) == L(3)-L(1), and strictly positive.
  const Cycle l1 = measure(1, 64);
  const Cycle l3 = measure(3, 64);
  const Cycle l5 = measure(5, 64);
  EXPECT_GT(l3, l1);
  EXPECT_EQ(l5 - l3, l3 - l1) << "per-hop latency is not constant";
  // Affine in flits: each additional flit beyond the head adds one cycle.
  const Cycle f1 = measure(3, 0);                   // 1 flit.
  const Cycle f3 = measure(3, 2 * kFlitBytes);      // 3 flits.
  const Cycle f9 = measure(3, 8 * kFlitBytes);      // 9 flits.
  EXPECT_EQ(f3 - f1, 2u);
  EXPECT_EQ(f9 - f3, 6u);
}

// ---------------------------------------------------------------------
// Model-based KV store test: a random op stream applied to the on-board KV
// store and to a std::map reference must agree on every response.
// ---------------------------------------------------------------------

class KvModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvModelTest, AgreesWithReferenceMap) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 20, 4096);
  ServiceId svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return kv->ready(); }, 50000));

  Rng rng(GetParam());
  std::map<std::string, std::vector<uint8_t>> reference;
  for (int op = 0; op < 120; ++op) {
    const std::string key = KvKeyForIndex(rng.NextBelow(12));
    const double u = rng.NextDouble();
    Message msg;
    enum class Op { kPut, kGet, kDel } kind;
    std::vector<uint8_t> value;
    if (u < 0.45) {
      kind = Op::kPut;
      value.resize(rng.NextInRange(1, 100));
      for (auto& b : value) {
        b = static_cast<uint8_t>(rng.NextBelow(256));
      }
      msg.opcode = kOpKvPut;
      msg.payload = MakeKvPutPayload(key, value);
    } else if (u < 0.85) {
      kind = Op::kGet;
      msg.opcode = kOpKvGet;
      msg.payload = MakeKvGetPayload(key);
    } else {
      kind = Op::kDel;
      msg.opcode = kOpKvDelete;
      msg.payload = MakeKvGetPayload(key);
    }
    probe->EnqueueSend(msg, cap);
    const size_t want = probe->received.size() + 1;
    ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= want; }, 200000))
        << "op " << op << " timed out";
    const Message& reply = probe->received.back();
    switch (kind) {
      case Op::kPut:
        ASSERT_EQ(reply.status, MsgStatus::kOk);
        reference[key] = value;
        break;
      case Op::kGet:
        if (reference.count(key) != 0) {
          ASSERT_EQ(reply.status, MsgStatus::kOk) << "op " << op;
          EXPECT_EQ(reply.payload, reference[key]) << "op " << op;
        } else {
          EXPECT_EQ(reply.status, MsgStatus::kNotFound) << "op " << op;
        }
        break;
      case Op::kDel:
        EXPECT_EQ(reply.status, reference.erase(key) != 0 ? MsgStatus::kOk
                                                          : MsgStatus::kNotFound);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvModelTest, ::testing::Values(11, 12, 13, 14));

// ---------------------------------------------------------------------
// Authority invariant: under a random storm of grants, revocations and
// sends, a message is delivered iff the sender held a live endpoint
// capability for that destination when it sent.
// ---------------------------------------------------------------------

class AuthorityStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AuthorityStormTest, DeliveryImpliesAuthority) {
  TestBoard tb(TestBoardOptions{3, 3});
  ApiaryOs& os = tb.os;
  Rng rng(GetParam());
  // Probes on every tile, each its own app (mutual distrust).
  std::vector<ProbeAccelerator*> probes;
  std::vector<ServiceId> svcs;
  for (int i = 0; i < 9; ++i) {
    auto* probe = new ProbeAccelerator();
    ServiceId svc = 0;
    os.Deploy(os.CreateApp("p" + std::to_string(i)), std::unique_ptr<Accelerator>(probe),
              &svc);
    probes.push_back(probe);
    svcs.push_back(svc);
  }
  tb.sim.Run(3);

  // live_caps[(src,dst)] -> capref; deliveries carry a payload tag so we can
  // attribute them.
  std::map<std::pair<TileId, TileId>, CapRef> live_caps;
  std::map<uint32_t, std::pair<TileId, TileId>> tag_to_edge;
  std::set<uint32_t> authorized_tags;
  uint32_t next_tag = 1;

  for (int step = 0; step < 400; ++step) {
    const double u = rng.NextDouble();
    const TileId src = static_cast<TileId>(rng.NextBelow(9));
    const TileId dst = static_cast<TileId>(rng.NextBelow(9));
    if (u < 0.2 && src != dst && live_caps.count({src, dst}) == 0) {
      live_caps[{src, dst}] = os.GrantSendToService(src, svcs[dst]);
    } else if (u < 0.3 && !live_caps.empty()) {
      auto it = live_caps.begin();
      std::advance(it, rng.NextBelow(live_caps.size()));
      os.Revoke(it->first.first, it->second);
      // Also retract the accept-list entry, as the kernel would.
      os.monitor(it->first.second).DisallowSender(it->first.first);
      live_caps.erase(it);
    } else if (src != dst) {
      // Send with the live cap if held, else with a random (forged) ref.
      const uint32_t tag = next_tag++;
      Message msg;
      msg.opcode = kOpEcho;
      PutU32(msg.payload, tag);
      auto it = live_caps.find({src, dst});
      const bool authorized = it != live_caps.end();
      const CapRef ref =
          authorized ? it->second : MakeCapRef(rng.NextBelow(64), rng.NextBelow(16));
      // Guard against the forged ref accidentally matching a live cap to the
      // same destination (possible but then it IS authority).
      tag_to_edge[tag] = {src, dst};
      if (authorized) {
        authorized_tags.insert(tag);
      } else {
        const Capability* c = os.monitor(src).cap_table().Lookup(ref);
        if (c != nullptr && c->kind == CapKind::kEndpoint && c->dst_tile == dst) {
          authorized_tags.insert(tag);
        }
      }
      probes[src]->EnqueueSend(msg, ref);
    }
    tb.sim.Run(30);
  }
  tb.sim.Run(2000);

  // Every delivered request's tag must have been authorized, and must have
  // arrived at the edge's destination.
  for (TileId t = 0; t < 9; ++t) {
    for (const Message& msg : probes[t]->received) {
      if (msg.kind != MsgKind::kRequest || msg.payload.size() < 4) {
        continue;
      }
      const uint32_t tag = GetU32(msg.payload, 0);
      ASSERT_TRUE(tag_to_edge.count(tag));
      EXPECT_EQ(tag_to_edge[tag].second, t) << "delivered to the wrong tile";
      EXPECT_TRUE(authorized_tags.count(tag))
          << "tag " << tag << " delivered without authority";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuthorityStormTest, ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace apiary
