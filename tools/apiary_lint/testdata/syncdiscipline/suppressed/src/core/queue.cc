// Suppressed: a reviewed one-off primitive, waived with its reason.
#include <mutex>

namespace apiary {

class Queue {
 public:
  void Push(int v);

 private:
  // NOLINTNEXTLINE(apiary-sync-discipline): guards a host-side stats dump, never on the executed-cycle path
  std::mutex dump_mu_;
};

}  // namespace apiary
