// Bad: an apiary-* waiver with no recorded reason.
#include <unordered_map>

namespace apiary {

class Cache {
 private:
  std::unordered_map<int, int> map_;  // NOLINT(apiary-determinism)
};

}  // namespace apiary
