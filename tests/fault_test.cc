// Tests for the fault-injection subsystem (src/fault) and the self-healing
// machinery it exercises: monitor fail-stop edge cases, the capability
// lifecycle across reconfiguration, NoC link faults (drop + detected
// corruption), DRAM upsets with and without ECC, ethernet loss bursts, and
// the Supervisor's recovery policies (restart, backoff, quarantine,
// hot-standby failover, watchdog-driven wedge recovery).
#include <gtest/gtest.h>

#include <memory>

#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/core/service_ids.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/mem/interleaved_memory.h"
#include "src/services/mgmt_service.h"
#include "src/services/supervisor.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Like TestBoard but with a short partial-reconfiguration latency so
// supervisor recoveries complete within test budgets.
struct FaultBoard {
  explicit FaultBoard(Cycle reconfig_cycles)
      : net(25), board(MakeConfig(reconfig_cycles), sim, &net), os(board) {
    sim.Register(&net);
  }

  static BoardConfig MakeConfig(Cycle reconfig_cycles) {
    BoardConfig cfg;
    cfg.mesh = MeshConfig{4, 4, 8, 512};
    cfg.dram.capacity_bytes = 64ull << 20;
    cfg.partial_reconfig_cycles = reconfig_cycles;
    return cfg;
  }

  Simulator sim{250.0};
  ExternalNetwork net;
  Board board;
  ApiaryOs os;
};

// Crash-loops: dies shortly after every boot (the unrecoverable-firmware
// case the quarantine policy exists for).
class CrashLooper : public Accelerator {
 public:
  void OnBoot(TileApi& api) override { crash_at_ = api.now() + 500; }
  void OnMessage(const Message&, TileApi&) override {}
  void Tick(TileApi& api) override {
    if (api.now() >= crash_at_) {
      api.RaiseFault("reset loop");
    }
  }
  std::string name() const override { return "crash_looper"; }
  uint32_t LogicCellCost() const override { return 1000; }

 private:
  Cycle crash_at_ = ~0ull;
};

Message EchoRequest(std::vector<uint8_t> payload = {0xAB}) {
  Message msg;
  msg.opcode = kOpEcho;
  msg.payload = std::move(payload);
  return msg;
}

// ------------------------------------------------------------------
// Monitor fail-stop edge cases.
// ------------------------------------------------------------------

TEST(MonitorFailStopTest, BouncesQueuedInFlightRequests) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("app");
  ServiceId svc = 0;
  const TileId st = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(ct, svc);

  // Wedge the service tile first: the request reaches its monitor's inbox
  // but the dead accelerator never consumes it. (Boot the tile before the
  // wedge — completing a configuration clears the SEU state.)
  tb.sim.Run(10);
  tb.os.tile(st).InjectSeuWedge();
  probe->EnqueueSend(EchoRequest(), cap);
  tb.sim.Run(2000);
  ASSERT_GE(tb.os.monitor(st).counters().Get("monitor.delivered"), 1u);
  ASSERT_TRUE(probe->received.empty());

  // Fail-stop must drain the inbox by *bouncing* the queued request, so the
  // client fails fast instead of timing out.
  tb.os.FailStop(st, "operator kill");
  tb.sim.Run(2000);
  ASSERT_EQ(probe->received.size(), 1u);
  EXPECT_EQ(probe->received[0].status, MsgStatus::kDestFailed);
  EXPECT_GE(tb.os.monitor(st).counters().Get("monitor.drained_inbox"), 1u);
}

TEST(MonitorFailStopTest, DoubleFailStopIsIdempotent) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("app");
  const TileId t = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  tb.sim.Run(10);

  tb.os.FailStop(t, "first");
  tb.os.FailStop(t, "second");
  const Monitor& m = tb.os.monitor(t);
  EXPECT_EQ(m.fault_state(), TileFaultState::kStopped);
  EXPECT_EQ(m.counters().Get("monitor.fail_stops"), 1u);
  // The original diagnosis survives; the redundant stop is a no-op.
  EXPECT_EQ(m.fault_reason(), "first");
}

// ------------------------------------------------------------------
// Capability lifecycle across reconfiguration.
// ------------------------------------------------------------------

TEST(ReconfigureCapsTest, ReconfigureRevokesAndReinstallRestores) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("app");
  ServiceId svc_a = 0;
  ServiceId svc_b = 0;
  const TileId ta = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc_a);
  tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc_b);
  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef client_cap = tb.os.GrantSendToService(ct, svc_a);
  ASSERT_NE(tb.os.GrantSendToService(ta, svc_b), kInvalidCapRef);
  tb.sim.Run(10);

  // Tearing a tile down for fresh logic revokes every capability it held —
  // the new bitstream must not inherit the old accelerator's authority by
  // accident.
  ASSERT_TRUE(tb.os.Reconfigure(ta, std::make_unique<EchoAccelerator>(0),
                                /*immediate=*/true));
  tb.sim.Run(10);
  EXPECT_EQ(tb.os.monitor(ta).cap_table().FindEndpointForService(svc_b),
            kInvalidCapRef);

  // ...and the kernel's grant log can put it back, deliberately.
  tb.os.ReinstallTileCaps(ta);
  EXPECT_NE(tb.os.monitor(ta).cap_table().FindEndpointForService(svc_b),
            kInvalidCapRef);

  // Clients of the reconfigured tile were never touched: the old endpoint
  // capability still reaches the (new) accelerator behind the same name.
  probe->EnqueueSend(EchoRequest(), client_cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

// ------------------------------------------------------------------
// NoC link faults.
// ------------------------------------------------------------------

TEST(NocFaultTest, LinkDropWindowLosesPacketsThenHeals) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("app");
  ServiceId svc = 0;
  auto* echo = new EchoAccelerator(0);
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(ct, svc);

  FaultPlan plan;
  plan.seed = 5;
  plan.LinkDrop(/*at=*/0, /*duration=*/20'000, /*rate=*/1.0);
  FaultInjector injector(plan, FaultHooks{.os = &tb.os, .mesh = &tb.board.mesh()});

  probe->EnqueueSend(EchoRequest(), cap);
  tb.sim.Run(10'000);
  // The request was swallowed on a link: no delivery, no reply, but the loss
  // is visible in counters at every layer it crossed.
  EXPECT_TRUE(probe->received.empty());
  EXPECT_EQ(echo->served(), 0u);
  EXPECT_GE(injector.counters().Get("fault.link_drops_applied"), 1u);
  const CounterSet noc = tb.board.mesh().AggregateCounters();
  EXPECT_GE(noc.Get("router.fault_dropped_packets"), 1u);
  EXPECT_GE(noc.Get("ni.packets_dropped_fault"), 1u);

  // Past the window the same path works again.
  tb.sim.Run(15'000);
  ASSERT_TRUE(injector.Exhausted(tb.sim.now()));
  probe->EnqueueSend(EchoRequest(), cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

TEST(NocFaultTest, LinkCorruptionIsDetectedNotConsumed) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("app");
  ServiceId svc = 0;
  auto* echo = new EchoAccelerator(0);
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(ct, svc);

  FaultPlan plan;
  plan.seed = 6;
  plan.LinkCorrupt(/*at=*/0, /*duration=*/20'000, /*rate=*/1.0);
  FaultInjector injector(plan, FaultHooks{.os = &tb.os, .mesh = &tb.board.mesh()});

  probe->EnqueueSend(EchoRequest({1, 2, 3, 4}), cap);
  tb.sim.Run(10'000);
  // The checksum catches the garbled payload at the ejecting NI: the packet
  // is discarded, never delivered as a (corrupt) message.
  EXPECT_GE(injector.counters().Get("fault.link_corruptions_applied"), 1u);
  EXPECT_GE(tb.board.mesh().AggregateCounters().Get("ni.checksum_drops"), 1u);
  EXPECT_EQ(echo->served(), 0u);
  EXPECT_TRUE(probe->received.empty());
}

// ------------------------------------------------------------------
// DRAM upsets and ECC.
// ------------------------------------------------------------------

TEST(DramFaultTest, BitFlipCorruptsWithoutEccAndEccCorrects) {
  TestBoard tb;
  MemoryBackend& mem = tb.board.memory();
  const uint64_t addr = 4096;
  const uint8_t original = 0xFF;
  mem.DebugWrite(addr, std::span<const uint8_t>(&original, 1));

  EXPECT_EQ(mem.InjectBitFlip(addr, 3), BitFlipResult::kCorrupted);
  EXPECT_EQ(mem.DebugRead(addr, 1)[0], 0xF7);

  mem.SetEccEnabled(true);
  EXPECT_EQ(mem.InjectBitFlip(addr, 2), BitFlipResult::kCorrectedByEcc);
  EXPECT_EQ(mem.DebugRead(addr, 1)[0], 0xF7);  // SECDED: data bus unaffected.

  EXPECT_EQ(mem.InjectBitFlip(mem.capacity(), 0), BitFlipResult::kOutOfRange);
}

TEST(DramFaultTest, InterleavedMemoryFlipsChannelLocalByte) {
  DramConfig per_channel;
  per_channel.capacity_bytes = 1ull << 20;
  InterleavedMemory mem(per_channel, /*channels=*/4, /*stripe_bytes=*/4096);

  // An address deep in a non-zero channel's stripe.
  const uint64_t addr = 4096 * 5 + 7;
  const uint8_t original = 0xA5;
  mem.DebugWrite(addr, std::span<const uint8_t>(&original, 1));

  EXPECT_EQ(mem.InjectBitFlip(addr, 0), BitFlipResult::kCorrupted);
  EXPECT_EQ(mem.DebugRead(addr, 1)[0], 0xA4);

  mem.SetEccEnabled(true);
  EXPECT_EQ(mem.InjectBitFlip(addr, 1), BitFlipResult::kCorrectedByEcc);
  EXPECT_EQ(mem.DebugRead(addr, 1)[0], 0xA4);

  EXPECT_EQ(mem.InjectBitFlip(mem.capacity() + 10, 0), BitFlipResult::kOutOfRange);
}

// ------------------------------------------------------------------
// Ethernet loss bursts.
// ------------------------------------------------------------------

TEST(EthFaultTest, LossBurstDropsFramesOnlyInsideWindow) {
  struct Sink : ExternalEndpoint {
    void OnFrame(EthFrame, Cycle) override { ++received; }
    uint64_t received = 0;
  };
  Simulator sim(250.0);
  ExternalNetwork net(10);
  sim.Register(&net);
  Sink sink;
  const uint32_t src = net.RegisterEndpoint(&sink);
  const uint32_t dst = net.RegisterEndpoint(&sink);

  net.StartLossBurst(/*now=*/0, /*duration=*/1000, /*rate=*/1.0, /*seed=*/7);
  EXPECT_TRUE(net.InLossBurst(0));

  uint64_t sent_in_window = 0;
  uint64_t sent_after = 0;
  for (int i = 0; i < 200; ++i) {
    EthFrame frame;
    frame.src_endpoint = src;
    frame.dst_endpoint = dst;
    frame.payload.assign(64, 0x5A);
    const bool in_window = net.InLossBurst(sim.now());
    net.Send(std::move(frame), sim.now());
    (in_window ? sent_in_window : sent_after) += 1;
    sim.Run(10);
  }
  sim.Run(100);  // Flush frames still in flight.

  ASSERT_GT(sent_in_window, 0u);
  ASSERT_GT(sent_after, 0u);
  // rate=1.0: every frame inside the window dropped, every one after it
  // delivered.
  EXPECT_EQ(net.counters().Get("extnet.dropped_burst"), sent_in_window);
  EXPECT_EQ(sink.received, sent_after);
  EXPECT_FALSE(net.InLossBurst(sim.now()));
}

// ------------------------------------------------------------------
// Supervisor recovery policies.
// ------------------------------------------------------------------

TEST(SupervisorTest, CrashRecoveryReinstallsCapsAndResumesService) {
  FaultBoard fb(/*reconfig_cycles=*/10'000);
  AppId app = fb.os.CreateApp("app");
  ServiceId svc = 0;
  ServiceId peer_svc = 0;
  const TileId st = fb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
  fb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &peer_svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = fb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = fb.os.GrantSendToService(ct, svc);
  // The service tile also holds a client capability of its own, which the
  // recovery path must bring back.
  ASSERT_NE(fb.os.GrantSendToService(st, peer_svc), kInvalidCapRef);

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  scfg.backoff_base_cycles = 1000;
  Supervisor sup(&fb.os, scfg);
  sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(0); });

  probe->EnqueueSend(EchoRequest(), cap);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  probe->received.clear();

  // Crash: the accelerator raises a fault, the tile fail-stops itself, and
  // the supervisor's poll picks it up — no operator call anywhere below.
  fb.os.monitor(st).RaiseFault("injected SEU");
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.restarts(st) == 1 && sup.AllHealthy(); }, 100'000));

  EXPECT_EQ(sup.counters().Get("supervisor.faults_detected"), 1u);
  EXPECT_EQ(sup.counters().Get("supervisor.faults_recovered"), 1u);
  EXPECT_EQ(sup.recovery_cycles().count(), 1u);
  EXPECT_EQ(fb.os.monitor(st).fault_state(), TileFaultState::kHealthy);
  EXPECT_NE(fb.os.monitor(st).cap_table().FindEndpointForService(peer_svc),
            kInvalidCapRef);

  // The healed tile serves again through the client's original capability.
  probe->EnqueueSend(EchoRequest(), cap);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 20'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

TEST(SupervisorTest, BacksOffThenQuarantinesCrashLooper) {
  FaultBoard fb(/*reconfig_cycles=*/2000);
  AppId app = fb.os.CreateApp("app");
  const TileId t = fb.os.Deploy(app, std::make_unique<CrashLooper>());

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  scfg.backoff_base_cycles = 1000;
  scfg.quarantine_after = 3;
  scfg.crash_loop_window = 10'000'000;
  Supervisor sup(&fb.os, scfg);
  sup.Manage(t, [] { return std::make_unique<CrashLooper>(); });

  fb.sim.Run(200'000);

  // Initial crash + 3 restarts (each crashing again) exhausts the policy:
  // the 4th fault quarantines instead of reconfiguring forever.
  EXPECT_TRUE(sup.quarantined(t));
  EXPECT_EQ(sup.restarts(t), 3u);
  EXPECT_EQ(sup.counters().Get("supervisor.faults_detected"), 4u);
  EXPECT_EQ(sup.counters().Get("supervisor.quarantines"), 1u);
  // Restart 1 is immediate; restarts 2 and 3 waited out a backoff.
  EXPECT_EQ(sup.counters().Get("supervisor.backoff_delays"), 2u);
  EXPECT_EQ(fb.os.monitor(t).fault_state(), TileFaultState::kStopped);
  EXPECT_FALSE(sup.AllHealthy());
}

TEST(SupervisorTest, HotStandbyFailoverRepointsServiceAndRearms) {
  FaultBoard fb(/*reconfig_cycles=*/10'000);
  AppId app = fb.os.CreateApp("app");
  ServiceId svc = 0;
  ServiceId spare_svc = 0;
  auto* primary = new EchoAccelerator(0);
  const TileId pt = fb.os.Deploy(app, std::unique_ptr<Accelerator>(primary), &svc);
  auto* standby = new EchoAccelerator(0);
  const TileId st = fb.os.Deploy(app, std::unique_ptr<Accelerator>(standby), &spare_svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = fb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = fb.os.GrantSendToService(ct, svc);

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  Supervisor sup(&fb.os, scfg);
  sup.Manage(pt, [] { return std::make_unique<EchoAccelerator>(0); });
  sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(0); });
  sup.SetStandby(svc, st);

  probe->EnqueueSend(EchoRequest(), cap);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(primary->served(), 1u);
  probe->received.clear();

  // Primary dies; the supervisor repoints the logical name at the spare and
  // re-grants every client, so service resumes without waiting out the
  // reconfiguration.
  fb.os.monitor(pt).RaiseFault("injected SEU");
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.counters().Get("supervisor.failovers") == 1; }, 10'000));
  EXPECT_EQ(fb.os.LookupServiceTile(svc), st);

  const CapRef fresh = fb.os.monitor(ct).cap_table().FindEndpointForService(svc);
  ASSERT_NE(fresh, kInvalidCapRef);
  probe->EnqueueSend(EchoRequest(), fresh);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(probe->received[0].src_service, svc);
  EXPECT_EQ(standby->served(), 1u);
  probe->received.clear();

  // The recovered primary re-arms as the service's next spare: a second
  // crash fails over again instead of taking the cold path.
  ASSERT_TRUE(fb.sim.RunUntil([&] { return sup.AllHealthy(); }, 100'000));
  fb.os.monitor(st).RaiseFault("injected SEU");
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.counters().Get("supervisor.failovers") == 2; }, 10'000));
  EXPECT_EQ(fb.os.LookupServiceTile(svc), pt);

  const CapRef fresh2 = fb.os.monitor(ct).cap_table().FindEndpointForService(svc);
  ASSERT_NE(fresh2, kInvalidCapRef);
  probe->EnqueueSend(EchoRequest(), fresh2);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

TEST(SupervisorTest, StandbyMidReconfigurationIsNeverAFailoverTarget) {
  FaultBoard fb(/*reconfig_cycles=*/20'000);
  AppId app = fb.os.CreateApp("app");
  ServiceId svc = 0;
  ServiceId spare_svc = 0;
  const TileId pt = fb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
  const TileId st = fb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), &spare_svc);
  auto* probe = new ProbeAccelerator();
  const TileId ct = fb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = fb.os.GrantSendToService(ct, svc);

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  scfg.backoff_base_cycles = 1000;
  Supervisor sup(&fb.os, scfg);
  sup.Manage(pt, [] { return std::make_unique<EchoAccelerator>(0); });
  sup.Manage(st, [] { return std::make_unique<EchoAccelerator>(0); });
  sup.SetStandby(svc, st);
  fb.sim.Run(10);  // Let both tiles boot.

  // The standby crashes first and enters its (long) recovery
  // reconfiguration...
  fb.os.monitor(st).RaiseFault("standby SEU");
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.tile_state(st) == Supervisor::TileState::kReconfiguring; },
      100'000));

  // ...and while its bitstream is mid-load, the primary dies too. Failing
  // over onto a half-configured region would strand the service; the
  // supervisor must take the cold path instead.
  fb.os.monitor(pt).RaiseFault("primary SEU");
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.counters().Get("supervisor.standby_unavailable") == 1; },
      100'000));
  EXPECT_EQ(sup.counters().Get("supervisor.failovers"), 0u);
  EXPECT_EQ(fb.os.LookupServiceTile(svc), pt);

  // Both tiles heal through reconfiguration and the service answers again
  // from its original region, through the client's original capability.
  ASSERT_TRUE(fb.sim.RunUntil([&] { return sup.AllHealthy(); }, 500'000));
  EXPECT_EQ(fb.os.LookupServiceTile(svc), pt);
  probe->EnqueueSend(EchoRequest(), cap);
  ASSERT_TRUE(fb.sim.RunUntil([&] { return !probe->received.empty(); }, 50'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
}

TEST(SupervisorTest, WatchdogWedgeDetectionFeedsRecovery) {
  FaultBoard fb(/*reconfig_cycles=*/5000);
  auto* mgmt = new MgmtService(&fb.os);
  fb.os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));
  AppId app = fb.os.CreateApp("app");
  // Heartbeats every 100 cycles; the accelerator sets its own 4x watch
  // deadline when it boots.
  const TileId wt = fb.os.Deploy(
      app, std::make_unique<WedgeAccelerator>(~0ull, kInvalidCapRef, 100));
  (void)fb.os.GrantSendToService(wt, kMgmtService);

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  Supervisor sup(&fb.os, scfg);
  sup.Manage(wt, [] {
    return std::make_unique<WedgeAccelerator>(~0ull, kInvalidCapRef, 100);
  });
  mgmt->SetSupervisor(&sup);

  fb.sim.Run(2000);  // Boot, register with the watchdog, heartbeat a while.
  ASSERT_EQ(fb.os.monitor(wt).fault_state(), TileFaultState::kHealthy);

  // An SEU silently wedges the logic: the tile looks alive but goes quiet.
  // Only the watchdog can see this, and it must route through the
  // supervisor so containment comes with a recovery attached.
  fb.os.tile(wt).InjectSeuWedge();
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.restarts(wt) == 1 && sup.AllHealthy(); }, 100'000));

  EXPECT_FALSE(fb.os.tile(wt).seu_wedged());  // Reconfiguration cleared it.
  EXPECT_EQ(fb.os.monitor(wt).fault_state(), TileFaultState::kHealthy);
  EXPECT_EQ(sup.counters().Get("supervisor.faults_recovered"), 1u);

  // The rebooted accelerator re-registered with the watchdog (its mgmt
  // capability came back via the grant log), so a second wedge is caught too.
  fb.sim.Run(2000);
  fb.os.tile(wt).InjectSeuWedge();
  ASSERT_TRUE(fb.sim.RunUntil(
      [&] { return sup.restarts(wt) == 2 && sup.AllHealthy(); }, 200'000));
}

// ------------------------------------------------------------------
// FaultPlan mechanics.
// ------------------------------------------------------------------

TEST(FaultPlanTest, SortIsStableByFireCycle) {
  FaultPlan plan;
  plan.AccelCrash(500, 3).LinkDrop(100, 50, 1.0).DramBitFlips(100, 2);
  plan.Sort();
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kLinkDrop);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDramBitFlip);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kAccelCrash);
}

TEST(FaultPlanTest, EventsWithoutHooksAreSkippedNotFatal) {
  TestBoard tb;
  FaultPlan plan;
  plan.DramBitFlips(10, 1).EthLossBurst(20, 100, 0.5);
  // No memory / network hooks: the injector must count, not crash.
  FaultInjector injector(plan, FaultHooks{.os = &tb.os, .mesh = &tb.board.mesh()});
  tb.sim.Run(200);
  EXPECT_EQ(injector.counters().Get("fault.skipped_no_hook"), 2u);
  EXPECT_TRUE(injector.Exhausted(tb.sim.now()));
}

}  // namespace
}  // namespace apiary
