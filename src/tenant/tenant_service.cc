#include "src/tenant/tenant_service.h"

#include "src/core/message.h"

namespace apiary {

void TenantStatsService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  switch (msg.opcode) {
    case kOpTenantStats: {
      if (msg.payload.size() < 4) {
        Message err;
        err.opcode = kOpTenantStats;
        err.status = MsgStatus::kBadRequest;
        api.Reply(msg, std::move(err));
        return;
      }
      const TenantId tenant = GetU32(msg.payload, 0);
      const TenantUsage usage = manager_->Usage(tenant);
      Message reply;
      reply.opcode = kOpTenantStats;
      PutU32(reply.payload, tenant);
      PutU32(reply.payload, usage.tiles);
      PutU64(reply.payload, usage.tile_cycles);
      PutU64(reply.payload, usage.flits_sent);
      PutU64(reply.payload, usage.messages_sent);
      PutU64(reply.payload, usage.quota_denials);
      PutU32(reply.payload, manager_->BillingRecordCount(tenant));
      PutU32(reply.payload, manager_->BillingDigest(tenant));
      api.Reply(msg, std::move(reply));
      counters_.Add("tenantsvc.stats_served");
      return;
    }
    default: {
      Message err;
      err.opcode = msg.opcode;
      err.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(err));
      return;
    }
  }
}

}  // namespace apiary
