// The Apiary message: the single IPC primitive (Section 4.5).
//
// Accelerators compose a Message and hand it to their monitor together with
// a capability reference; the monitor validates, stamps the trusted header
// fields, and injects it onto the NoC. The wire format packs the header into
// the head flit and the payload into body flits.
#ifndef SRC_CORE_MESSAGE_H_
#define SRC_CORE_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mem/segment_allocator.h"
#include "src/noc/packet.h"
#include "src/sim/types.h"

namespace apiary {

// Result/status codes carried by responses and returned by Send().
enum class MsgStatus : uint8_t {
  kOk = 0,
  kNoCapability = 1,     // Sender holds no valid capability for this send.
  kRateLimited = 2,      // Monitor token bucket exhausted.
  kBackpressure = 3,     // NI injection queue full; retry.
  kNoSuchService = 4,    // Logical name does not resolve.
  kDestFailed = 5,       // Destination tile is fail-stopped.
  kDenied = 6,           // Destination monitor rejected the sender.
  kBadRequest = 7,       // Malformed request payload.
  kSegFault = 8,         // Memory access outside the presented segment.
  kNoMemory = 9,         // Allocation failure.
  kRevoked = 10,         // Capability generation is stale.
  kTileStopped = 11,     // Local tile is fail-stopped; send refused.
  kNotFound = 12,        // Application-level lookup miss (e.g. KV GET).
};

const char* MsgStatusName(MsgStatus status);

// Message kinds; requests travel on the request VC, responses on the
// response VC (breaking message-dependent deadlock, Section 4.5).
enum class MsgKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
};

// A memory-segment grant attached by the *sending* monitor when the sender
// presents a memory capability alongside a send. Receivers (e.g. the memory
// service) trust it because only monitors can populate the field: the
// monitor overwrites whatever the untrusted accelerator wrote here.
struct SegmentGrant {
  Segment segment;
  bool can_read = false;
  bool can_write = false;
  // Dennis & Van Horn delegation: the holder may mint attenuated copies of
  // this capability for other tiles (through the memory service).
  bool can_grant = false;
  bool valid = false;
};

struct Message {
  // --- Untrusted fields (set by the sender's application logic). ---
  ServiceId dst_service = kInvalidService;
  MsgKind kind = MsgKind::kRequest;
  uint16_t opcode = 0;
  MsgStatus status = MsgStatus::kOk;  // Meaningful on responses.
  uint64_t request_id = 0;            // Request/response correlation.
  ProcessId dst_process = 0;          // Context within the destination.
  std::vector<uint8_t> payload;

  // --- Trusted fields (stamped by the sending monitor; receivers may rely
  //     on them for policy). ---
  TileId src_tile = kInvalidTile;
  ServiceId src_service = kInvalidService;
  AppId src_app = kInvalidApp;
  SegmentGrant grant;
  // Second grant for two-segment operations (e.g. DMA copy: source + dest).
  SegmentGrant grant2;

  // Serialized size in bytes (header + payload), determining flit count.
  size_t WireBytes() const;
};

// Little-endian wire encoding.
std::vector<uint8_t> SerializeMessage(const Message& msg);
std::optional<Message> DeserializeMessage(const std::vector<uint8_t>& bytes);

// Payload helpers used by services and accelerators.
void PutU64(std::vector<uint8_t>& buf, uint64_t v);
void PutU32(std::vector<uint8_t>& buf, uint32_t v);
uint64_t GetU64(const std::vector<uint8_t>& buf, size_t offset);
uint32_t GetU32(const std::vector<uint8_t>& buf, size_t offset);

}  // namespace apiary

#endif  // SRC_CORE_MESSAGE_H_
