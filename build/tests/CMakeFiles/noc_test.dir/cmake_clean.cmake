file(REMOVE_RECURSE
  "CMakeFiles/noc_test.dir/noc_test.cc.o"
  "CMakeFiles/noc_test.dir/noc_test.cc.o.d"
  "noc_test"
  "noc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
