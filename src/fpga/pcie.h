// PCIe endpoint model: the host-mediation transport used by the Coyote- and
// AmorphOS-style baselines (and by Apiary only if a deployment chooses to
// host a service on the local CPU — Section 6, open question 3).
#ifndef SRC_FPGA_PCIE_H_
#define SRC_FPGA_PCIE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/clocked.h"
#include "src/stats/summary.h"

namespace apiary {

struct PcieConfig {
  // One-way DMA/MMIO crossing latency. ~600-900ns is typical for Gen3/4;
  // expressed in cycles of the fabric clock by the board.
  Cycle one_way_cycles = 175;  // ~700ns at 250 MHz.
  // Effective payload bandwidth in bytes/cycle (Gen3 x16 ~ 12 GB/s ~ 48 B
  // per 4ns cycle).
  double bytes_per_cycle = 48.0;
  uint32_t queue_depth = 256;
};

// Models one direction-agnostic transfer pipe: submissions complete in FIFO
// order after latency + serialization.
class PcieEndpoint : public Clocked {
 public:
  using Completion = std::function<void(Cycle)>;

  explicit PcieEndpoint(PcieConfig config) : config_(config) {}

  // Submits a transfer of `bytes`; `done` fires when it lands on the other
  // side. Returns false when the submission queue is full.
  bool Submit(uint64_t bytes, Completion done);

  void Tick(Cycle now) override;
  // An unlaunched submission must be launched on the very next tick (launch
  // time feeds the link-serialization math); otherwise completions are FIFO
  // with monotonic complete_at, so the front transfer bounds the sleep.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (queue_.empty()) {
      return kNoActivity;
    }
    if (!queue_.back().launched) {
      return now;
    }
    return queue_.front().complete_at > now ? queue_.front().complete_at : now;
  }
  std::string DebugName() const override { return "pcie"; }
  // Submissions arrive from host/baseline code with no wake path of its own
  // (including DMA ticks that run outside the root phase), so the endpoint
  // is re-polled fresh at every executed-cycle boundary instead of parked.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }

  const CounterSet& counters() const { return counters_; }
  const PcieConfig& config() const { return config_; }

  static uint32_t LogicCellCost() { return 70000; }

 private:
  struct Transfer {
    uint64_t bytes;
    Completion done;
    bool launched = false;
    Cycle complete_at = 0;
  };

  PcieConfig config_;
  std::deque<Transfer> queue_;
  Cycle link_free_at_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_FPGA_PCIE_H_
