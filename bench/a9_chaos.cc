// A9: chaos campaign — a seeded FaultPlan fires link drops, corruption,
// router stalls, DRAM upsets, ethernet loss bursts and accelerator SEUs at a
// running board while the Supervisor heals it with no operator in the loop.
//
// Reported: goodput under chaos vs the fault-free baseline, tail latency of
// the app that takes no faults (containment), the recovery-time
// distribution, and the supervisor/injector counters. The crash-looping
// tile must end the run quarantined; every other managed tile must end it
// healthy, automatically.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/fault/fault_injector.h"
#include "src/fpga/board.h"
#include "src/services/mgmt_service.h"
#include "src/services/supervisor.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr Cycle kRunCycles = 3'000'000;
constexpr Cycle kReconfigCycles = 50'000;  // Scaled-down PR latency so several
                                           // cold recoveries fit in one run.
constexpr Cycle kHeartbeatPeriod = 500;
constexpr uint64_t kNeverWedge = ~0ull;

// Closed-loop client: one request in flight, 10k-cycle timeout, latency
// histogram over successful echoes.
class ChaosClient : public Accelerator {
 public:
  explicit ChaosClient(ServiceId svc) : svc_(svc) {}

  void Tick(TileApi& api) override {
    if (in_flight_ && api.now() < timeout_at_) {
      return;
    }
    if (in_flight_) {
      ++timeouts;  // Request (or its reply) lost to a fault.
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {0xAB};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      in_flight_ = true;
      sent_at_ = api.now();
      timeout_at_ = api.now() + 10'000;
    } else {
      in_flight_ = false;
    }
  }

  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kResponse) {
      return;
    }
    in_flight_ = false;
    if (msg.status == MsgStatus::kOk) {
      ++ok;
      latency.Record(api.now() - sent_at_);
    } else {
      ++errors;  // Fail-stop bounce: fast failure instead of a timeout.
    }
  }

  std::string name() const override { return "chaos_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t timeouts = 0;
  Histogram latency;

 private:
  ServiceId svc_;
  bool in_flight_ = false;
  Cycle sent_at_ = 0;
  Cycle timeout_at_ = 0;
};

// Crash-loops: every fresh deployment dies ~2k cycles after boot. The
// supervisor must give up on it (quarantine), not reconfigure forever.
class SelfCrasher : public Accelerator {
 public:
  void OnBoot(TileApi& api) override { crash_at_ = api.now() + 2000; }
  void OnMessage(const Message&, TileApi&) override {}
  void Tick(TileApi& api) override {
    if (api.now() >= crash_at_) {
      api.RaiseFault("firmware bug: reset loop");
    }
  }
  std::string name() const override { return "self_crasher"; }
  uint32_t LogicCellCost() const override { return 1000; }

 private:
  Cycle crash_at_ = ~0ull;
};

// Background external-network traffic so ethernet loss bursts hit something.
class FrameSink : public ExternalEndpoint {
 public:
  void OnFrame(EthFrame, Cycle) override { ++received; }
  uint64_t received = 0;
};

class FramePump : public Clocked {
 public:
  FramePump(ExternalNetwork* net, uint32_t src, uint32_t dst)
      : net_(net), src_(src), dst_(dst) {}
  void Tick(Cycle now) override {
    if (now % 100 == 0) {
      EthFrame f;
      f.src_endpoint = src_;
      f.dst_endpoint = dst_;
      f.payload.assign(64, 0x5A);
      net_->Send(std::move(f), now);
      ++sent;
    }
  }
  std::string DebugName() const override { return "frame_pump"; }
  uint64_t sent = 0;

 private:
  ExternalNetwork* net_;
  uint32_t src_;
  uint32_t dst_;
};

struct AppResult {
  std::string name;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t timeouts = 0;
  uint64_t p99 = 0;
};

struct CampaignResult {
  std::vector<AppResult> apps;
  uint64_t total_ok = 0;
  std::string recovery_summary;
  std::string supervisor_counters;
  std::string injector_counters;
  std::string injector_trace;
  bool crash_looper_quarantined = false;
  bool others_all_healthy = false;
  uint64_t eth_frames_lost = 0;
};

// Tile map (4x4): 0 mgmt | 1 svc0, 2 client0, 3 standby for svc0
//                 4 svc1, 8 client1 | 5 svc2, 6 client2 | 7 crash-looper
//                 13 svc3, 14 client3 (the fault-free control app).
CampaignResult RunCampaign(bool chaos, uint64_t seed) {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.mac_kind = MacKind::k100G;
  cfg.partial_reconfig_cycles = kReconfigCycles;
  Board board(cfg, sim, &net);
  ApiaryOs os(board);

  auto* mgmt = new MgmtService(&os);
  os.DeployService(kMgmtService, std::unique_ptr<Accelerator>(mgmt));

  SupervisorConfig sup_cfg;
  sup_cfg.backoff_base_cycles = 20'000;
  sup_cfg.quarantine_after = 4;
  sup_cfg.crash_loop_window = 1'500'000;
  Supervisor supervisor(&os, sup_cfg);
  mgmt->SetSupervisor(&supervisor);

  auto supervised_echo = [] {
    return std::make_unique<WedgeAccelerator>(kNeverWedge, kInvalidCapRef,
                                              kHeartbeatPeriod);
  };

  struct App {
    ServiceId svc = 0;
    TileId svc_tile = 0;
    ChaosClient* client = nullptr;
  };
  std::vector<App> apps(4);
  const TileId svc_tiles[4] = {1, 4, 5, 13};
  const TileId client_tiles[4] = {2, 8, 6, 14};
  for (int i = 0; i < 4; ++i) {
    App& a = apps[i];
    AppId app = os.CreateApp("app" + std::to_string(i));
    DeployOptions at_tile;
    at_tile.tile = svc_tiles[i];
    a.svc_tile = os.Deploy(app, supervised_echo(), &a.svc, at_tile);
    (void)os.GrantSendToService(a.svc_tile, kMgmtService);
    a.client = new ChaosClient(a.svc);
    DeployOptions at_client;
    at_client.tile = client_tiles[i];
    os.Deploy(app, std::unique_ptr<Accelerator>(a.client), nullptr, at_client);
    (void)os.GrantSendToService(client_tiles[i], a.svc);
    supervisor.Manage(a.svc_tile, supervised_echo);
  }

  // Hot standby for app0's service, pre-configured on tile 3.
  {
    AppId standby_app = os.CreateApp("standby");
    ServiceId spare_svc = 0;
    DeployOptions at_tile;
    at_tile.tile = 3;
    os.Deploy(standby_app, supervised_echo(), &spare_svc, at_tile);
    (void)os.GrantSendToService(3, kMgmtService);
    supervisor.Manage(3, supervised_echo);
    supervisor.SetStandby(apps[0].svc, 3);
  }

  // The crash-looper on tile 7.
  {
    AppId looper_app = os.CreateApp("looper");
    DeployOptions at_tile;
    at_tile.tile = 7;
    os.Deploy(looper_app, std::make_unique<SelfCrasher>(), nullptr, at_tile);
    supervisor.Manage(7, [] { return std::make_unique<SelfCrasher>(); });
  }

  // External-fabric background traffic.
  FrameSink sink;
  const uint32_t sink_ep = net.RegisterEndpoint(&sink);
  FrameSink src_side;
  const uint32_t src_ep = net.RegisterEndpoint(&src_side);
  FramePump pump(&net, src_ep, sink_ep);
  sim.Register(&pump);

  // The campaign: >= 1 fault event / 100k cycles over 3M cycles.
  FaultPlan plan;
  plan.seed = seed;
  if (chaos) {
    plan.LinkDrop(200'000, 50'000, 0.3, /*router=*/5)
        .LinkCorrupt(300'000, 50'000, 0.2, /*router=*/6)
        .AccelCrash(400'000, /*tile=*/4)
        .RouterStall(500'000, 20'000, /*router=*/5)
        .EthLossBurst(600'000, 30'000, 0.5)
        .AccelWedge(800'000, /*tile=*/5)
        .LinkDrop(900'000, 40'000, 0.25, /*router=*/6)
        .AccelCrash(1'200'000, /*tile=*/1)  // Failover to the hot standby.
        .LinkCorrupt(1'400'000, 40'000, 0.2, /*router=*/5)
        .EthLossBurst(1'500'000, 30'000, 0.5)
        .RouterStall(1'700'000, 15'000, /*router=*/6)
        .LinkDrop(1'900'000, 40'000, 0.3, /*router=*/5)
        .AccelCrash(2'000'000, /*tile=*/4)
        .LinkCorrupt(2'100'000, 30'000, 0.25, /*router=*/6);
    for (Cycle at = 100'000; at <= 2'200'000; at += 100'000) {
      plan.DramBitFlips(at, /*count=*/2);
    }
  }
  FaultHooks hooks;
  hooks.os = &os;
  hooks.mesh = &board.mesh();
  hooks.memory = &board.memory();
  hooks.network = &net;
  FaultInjector injector(std::move(plan), hooks);

  sim.Run(kRunCycles);

  CampaignResult r;
  const char* names[4] = {"app0 (failover)", "app1 (crash SEU)", "app2 (wedge SEU)",
                          "app3 (no faults)"};
  for (int i = 0; i < 4; ++i) {
    AppResult ar;
    ar.name = names[i];
    ar.ok = apps[i].client->ok;
    ar.errors = apps[i].client->errors;
    ar.timeouts = apps[i].client->timeouts;
    ar.p99 = apps[i].client->latency.P99();
    r.total_ok += ar.ok;
    r.apps.push_back(ar);
  }
  r.recovery_summary = supervisor.recovery_cycles().Summary();
  r.supervisor_counters = supervisor.counters().ToString();
  r.injector_counters = injector.counters().ToString();
  r.injector_trace = injector.TraceString();
  r.crash_looper_quarantined = supervisor.quarantined(7);
  r.others_all_healthy = true;
  for (TileId t : {TileId(1), TileId(3), TileId(4), TileId(5), TileId(13)}) {
    if (supervisor.quarantined(t) ||
        os.monitor(t).fault_state() != TileFaultState::kHealthy ||
        os.tile(t).reconfiguring()) {
      r.others_all_healthy = false;
    }
  }
  r.eth_frames_lost = net.counters().Get("extnet.dropped_burst");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("A9: chaos campaign vs self-healing supervisor (3M cycles, 4x4 mesh,\n");
  std::printf("partial reconfig %llu cycles, watchdog deadline %llu cycles)\n\n",
              static_cast<unsigned long long>(kReconfigCycles),
              static_cast<unsigned long long>(kHeartbeatPeriod * 4));

  const CampaignResult base = RunCampaign(/*chaos=*/false, /*seed=*/42);
  const CampaignResult chaos = RunCampaign(/*chaos=*/true, /*seed=*/42);

  Table table("A9: per-app goodput and tail latency (cycles)");
  table.SetHeader({"app", "baseline ok", "chaos ok", "chaos err", "chaos timeouts",
                   "baseline p99", "chaos p99"});
  for (size_t i = 0; i < base.apps.size(); ++i) {
    table.AddRow({chaos.apps[i].name, Table::Int(base.apps[i].ok),
                  Table::Int(chaos.apps[i].ok), Table::Int(chaos.apps[i].errors),
                  Table::Int(chaos.apps[i].timeouts), Table::Int(base.apps[i].p99),
                  Table::Int(chaos.apps[i].p99)});
  }
  table.Print();

  std::printf("\ngoodput: %llu ok under chaos vs %llu fault-free (%.1f%%)\n",
              static_cast<unsigned long long>(chaos.total_ok),
              static_cast<unsigned long long>(base.total_ok),
              100.0 * static_cast<double>(chaos.total_ok) /
                  static_cast<double>(base.total_ok));
  std::printf("recovery time (fault detected -> tile back in service):\n  %s\n",
              chaos.recovery_summary.c_str());
  std::printf("ethernet frames lost to injected bursts: %llu\n",
              static_cast<unsigned long long>(chaos.eth_frames_lost));
  std::printf("\nsupervisor counters:\n%s\n", chaos.supervisor_counters.c_str());
  std::printf("injector counters:\n%s\n", chaos.injector_counters.c_str());
  std::printf("fault trace:\n%s\n", chaos.injector_trace.c_str());

  // Acceptance checks.
  const uint64_t base_p99 = base.apps[3].p99;
  const uint64_t chaos_p99 = chaos.apps[3].p99;
  const bool contained = chaos_p99 <= 2 * base_p99;
  std::printf("[%s] crash-looper quarantined\n",
              chaos.crash_looper_quarantined ? "PASS" : "FAIL");
  std::printf("[%s] every other managed tile auto-recovered to healthy\n",
              chaos.others_all_healthy ? "PASS" : "FAIL");
  std::printf("[%s] unaffected app p99 within 2x of baseline (%llu vs %llu cycles)\n",
              contained ? "PASS" : "FAIL", static_cast<unsigned long long>(chaos_p99),
              static_cast<unsigned long long>(base_p99));

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    BenchJson json("a9_chaos");
    json.Param("run_cycles", static_cast<uint64_t>(kRunCycles));
    json.Param("reconfig_cycles", static_cast<uint64_t>(kReconfigCycles));
    json.Param("seed", static_cast<uint64_t>(42));
    for (size_t i = 0; i < base.apps.size(); ++i) {
      json.BeginRow();
      json.Metric("app", chaos.apps[i].name);
      json.Metric("baseline_ok", base.apps[i].ok);
      json.Metric("chaos_ok", chaos.apps[i].ok);
      json.Metric("chaos_errors", chaos.apps[i].errors);
      json.Metric("chaos_timeouts", chaos.apps[i].timeouts);
      json.Metric("baseline_p99_cycles", base.apps[i].p99);
      json.Metric("chaos_p99_cycles", chaos.apps[i].p99);
    }
    json.BeginRow();
    json.Metric("app", "campaign");
    json.Metric("total_ok_chaos", chaos.total_ok);
    json.Metric("total_ok_baseline", base.total_ok);
    json.Metric("eth_frames_lost", chaos.eth_frames_lost);
    json.Metric("quarantined", chaos.crash_looper_quarantined ? 1 : 0);
    json.Metric("all_healthy", chaos.others_all_healthy ? 1 : 0);
    json.WriteFile(json_path);
  }
  return (chaos.crash_looper_quarantined && chaos.others_all_healthy && contained) ? 0
                                                                                   : 1;
}
