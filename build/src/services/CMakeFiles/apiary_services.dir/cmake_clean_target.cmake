file(REMOVE_RECURSE
  "libapiary_services.a"
)
