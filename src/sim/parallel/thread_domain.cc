#include "src/sim/parallel/thread_domain.h"

namespace apiary {
namespace {

// The confinement mechanism itself: each worker thread sees only its own
// installed context, so domain-local state never crosses threads.
// APIARY-SHARED(thread): per-thread current-domain pointer; thread_local by design.
thread_local SimContext* t_current = nullptr;

}  // namespace

SimContext* ThreadDomain::Current() { return t_current; }

ThreadDomain::ScopedInstall::ScopedInstall(SimContext* context) : previous_(t_current) {
  t_current = context;
}

ThreadDomain::ScopedInstall::~ScopedInstall() { t_current = previous_; }

}  // namespace apiary
