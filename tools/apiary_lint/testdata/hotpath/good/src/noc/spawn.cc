// Good: packets come from the pool; payloads stay in PayloadBuf.
#include "src/noc/packet_pool.h"

namespace apiary {

void Spawn() {
  PacketRef packet = PacketPool::Default().Acquire();
  PayloadBuf staging;
  staging.append(packet->payload.data(), packet->payload.size());
}

}  // namespace apiary
