# Empty compiler generated dependencies file for apiary_workload.
# This may be replaced when dependencies are built.
