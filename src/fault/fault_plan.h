// FaultPlan: a declarative, seeded campaign of fault events.
//
// A plan is data, not behavior — a sorted list of timed events plus one
// seed. The FaultInjector executes it against a live board. Because every
// probabilistic decision derives from the plan's seed, a campaign replays
// byte-identically: same seed, same faults, same cycle numbers.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace apiary {

enum class FaultKind : uint8_t {
  kLinkDrop = 0,      // Window: packets crossing links out of `tile` drop.
  kLinkCorrupt = 1,   // Window: payload bytes flip in flight (checksum catches).
  kRouterStall = 2,   // Window: the router at `tile` forwards nothing.
  kDramBitFlip = 3,   // Instant: `count` random single-bit upsets in [addr, addr+len).
  kEthLossBurst = 4,  // Window: external-network frames drop at `rate`.
  kAccelCrash = 5,    // Instant: the accelerator on `tile` raises a fault (SEU).
  kAccelWedge = 6,    // Instant: the accelerator on `tile` silently wedges (SEU).
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  Cycle at = 0;           // Fire cycle (window start for windowed kinds).
  FaultKind kind = FaultKind::kLinkDrop;
  TileId tile = kInvalidTile;  // Target tile/router; kInvalidTile = any (link faults).
  Cycle duration = 0;     // Window length (windowed kinds only).
  double rate = 1.0;      // Per-packet/frame probability inside the window.
  uint64_t addr = 0;      // kDramBitFlip: start of the vulnerable range.
  uint64_t len = 0;       // kDramBitFlip: range length (0 = whole memory).
  uint32_t count = 1;     // kDramBitFlip: number of upsets to inject.
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultEvent> events;

  // Builder helpers (all return *this for chaining).
  FaultPlan& LinkDrop(Cycle at, Cycle duration, double rate, TileId router = kInvalidTile);
  FaultPlan& LinkCorrupt(Cycle at, Cycle duration, double rate, TileId router = kInvalidTile);
  FaultPlan& RouterStall(Cycle at, Cycle duration, TileId router);
  FaultPlan& DramBitFlips(Cycle at, uint32_t count, uint64_t addr = 0, uint64_t len = 0);
  FaultPlan& EthLossBurst(Cycle at, Cycle duration, double rate);
  FaultPlan& AccelCrash(Cycle at, TileId tile);
  FaultPlan& AccelWedge(Cycle at, TileId tile);

  // Orders events by fire cycle (stable: simultaneous events keep their
  // insertion order, which the injector's determinism depends on).
  void Sort();
};

}  // namespace apiary

#endif  // SRC_FAULT_FAULT_PLAN_H_
