#include "src/fault/fault_plan.h"

#include <algorithm>

namespace apiary {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDrop:
      return "link_drop";
    case FaultKind::kLinkCorrupt:
      return "link_corrupt";
    case FaultKind::kRouterStall:
      return "router_stall";
    case FaultKind::kDramBitFlip:
      return "dram_bit_flip";
    case FaultKind::kEthLossBurst:
      return "eth_loss_burst";
    case FaultKind::kAccelCrash:
      return "accel_crash";
    case FaultKind::kAccelWedge:
      return "accel_wedge";
  }
  return "unknown";
}

FaultPlan& FaultPlan::LinkDrop(Cycle at, Cycle duration, double rate, TileId router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDrop;
  e.tile = router;
  e.duration = duration;
  e.rate = rate;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::LinkCorrupt(Cycle at, Cycle duration, double rate, TileId router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkCorrupt;
  e.tile = router;
  e.duration = duration;
  e.rate = rate;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::RouterStall(Cycle at, Cycle duration, TileId router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterStall;
  e.tile = router;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::DramBitFlips(Cycle at, uint32_t count, uint64_t addr, uint64_t len) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDramBitFlip;
  e.addr = addr;
  e.len = len;
  e.count = count;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::EthLossBurst(Cycle at, Cycle duration, double rate) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kEthLossBurst;
  e.duration = duration;
  e.rate = rate;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::AccelCrash(Cycle at, TileId tile) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kAccelCrash;
  e.tile = tile;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::AccelWedge(Cycle at, TileId tile) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kAccelWedge;
  e.tile = tile;
  events.push_back(e);
  return *this;
}

void FaultPlan::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

}  // namespace apiary
