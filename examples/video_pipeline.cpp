// The paper's Section 2 motivating example: a video-encoding service that
// accelerates part of a video processing pipeline, composed with a
// third-party compression accelerator on another tile.
//
//   frames -> [video encoder tile] --NoC--> [compressor tile] -> sink tile
//
// The composition needs no changes to either accelerator: the kernel grants
// an endpoint capability from the encoder to the compressor and the encoder
// forwards its bitstream there (Section 4.5's access-controlled IPC).
#include <cstdio>
#include <memory>

#include "src/accel/compressor.h"
#include "src/accel/video_encoder.h"
#include "src/core/kernel.h"
#include "src/fpga/board.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"
#include "src/workload/frame_source.h"

using namespace apiary;

// The pipeline sink: receives the compressed stream, validates it by
// decompressing + decoding, and accounts sizes.
class PipelineSink : public Accelerator {
 public:
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind != MsgKind::kRequest) {
      return;
    }
    const auto bitstream = LzDecompress(msg.payload);
    uint32_t w = 0;
    uint32_t h = 0;
    const auto pixels = DecodeFrame(bitstream, &w, &h);
    if (!pixels.empty()) {
      ++frames_ok;
      compressed_bytes += msg.payload.size();
      encoded_bytes += bitstream.size();
      raw_bytes += pixels.size();
    } else {
      ++frames_bad;
    }
  }

  std::string name() const override { return "pipeline_sink"; }
  uint32_t LogicCellCost() const override { return 4000; }

  uint64_t frames_ok = 0;
  uint64_t frames_bad = 0;
  uint64_t raw_bytes = 0;
  uint64_t encoded_bytes = 0;
  uint64_t compressed_bytes = 0;
};

// Drives synthetic frames into the encoder at a fixed frame interval.
class FrameFeeder : public Accelerator {
 public:
  FrameFeeder(ServiceId encoder, uint32_t width, uint32_t height, uint64_t frames,
              Cycle interval)
      : encoder_(encoder), width_(width), height_(height), frames_(frames),
        interval_(interval) {}

  void Tick(TileApi& api) override {
    if (sent_ >= frames_ || api.now() < next_at_) {
      return;
    }
    const CapRef cap = api.LookupService(encoder_);
    const auto pixels = GenerateFrame(width_, height_, 42, sent_);
    Message msg;
    msg.opcode = kOpEncodeFrame;
    msg.payload = FrameToRequestPayload(width_, height_, pixels);
    if (api.Send(std::move(msg), cap).ok()) {
      ++sent_;
      next_at_ = api.now() + interval_;
    }
  }

  void OnMessage(const Message&, TileApi&) override {}
  std::string name() const override { return "frame_feeder"; }
  uint32_t LogicCellCost() const override { return 3000; }

  uint64_t sent() const { return sent_; }

 private:
  ServiceId encoder_;
  uint32_t width_;
  uint32_t height_;
  uint64_t frames_;
  Cycle interval_;
  uint64_t sent_ = 0;
  Cycle next_at_ = 0;
};

int main() {
  constexpr uint32_t kWidth = 96;
  constexpr uint32_t kHeight = 64;
  constexpr uint64_t kFrames = 24;

  Simulator sim(250.0);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 64ull << 20;
  cfg.mac_kind = MacKind::kNone;
  Board board(cfg, sim, nullptr);
  ApiaryOs os(board);

  AppId app = os.CreateApp("video-pipeline");

  auto* sink = new PipelineSink();
  ServiceId sink_svc = 0;
  os.Deploy(app, std::unique_ptr<Accelerator>(sink), &sink_svc);

  auto* compressor = new CompressorAccelerator(/*bytes_per_cycle=*/8);
  ServiceId comp_svc = 0;
  const TileId comp_tile = os.Deploy(app, std::unique_ptr<Accelerator>(compressor), &comp_svc);
  // Third-party tile: it just compresses whatever arrives and forwards.
  compressor->SetNextStage(os.GrantSendToService(comp_tile, sink_svc), kOpEcho);

  auto* encoder = new VideoEncoderAccelerator(/*cycles_per_block=*/40, /*quality=*/60);
  ServiceId enc_svc = 0;
  const TileId enc_tile = os.Deploy(app, std::unique_ptr<Accelerator>(encoder), &enc_svc);
  encoder->SetNextStage(os.GrantSendToService(enc_tile, comp_svc), kOpCompress);

  auto* feeder = new FrameFeeder(enc_svc, kWidth, kHeight, kFrames, /*interval=*/6000);
  const TileId feeder_tile = os.Deploy(app, std::unique_ptr<Accelerator>(feeder));
  (void)os.GrantSendToService(feeder_tile, enc_svc);

  std::printf("video pipeline: feeder(t%u) -> encoder(t%u) -> compressor(t%u) -> sink\n",
              feeder_tile, enc_tile, comp_tile);
  std::printf("encoding %llu frames of %ux%u...\n\n",
              static_cast<unsigned long long>(kFrames), kWidth, kHeight);

  sim.RunUntil([&] { return sink->frames_ok + sink->frames_bad >= kFrames; }, 5'000'000);

  Table table("Pipeline results");
  table.SetHeader({"metric", "value"});
  table.AddRow({"frames fed", Table::Int(feeder->sent())});
  table.AddRow({"frames encoded", Table::Int(encoder->frames_encoded())});
  table.AddRow({"chunks compressed", Table::Int(compressor->chunks_compressed())});
  table.AddRow({"frames validated at sink", Table::Int(sink->frames_ok)});
  table.AddRow({"frames corrupted", Table::Int(sink->frames_bad)});
  table.AddRow({"raw bytes", Table::Int(sink->raw_bytes)});
  table.AddRow({"after DCT encode", Table::Int(sink->encoded_bytes)});
  table.AddRow({"after LZ compress", Table::Int(sink->compressed_bytes)});
  if (sink->raw_bytes > 0) {
    table.AddRow({"end-to-end ratio",
                  Table::Num(static_cast<double>(sink->raw_bytes) /
                             static_cast<double>(sink->compressed_bytes), 2) + "x"});
  }
  table.AddRow({"simulated time",
                Table::Num(sim.CyclesToNs(sim.now()) / 1000.0, 1) + " us"});
  table.Print();

  return sink->frames_ok == kFrames ? 0 : 1;
}
