// Ablation A2: router buffer sizing — throughput vs logic cost.
//
// The per-tile router's input buffers are the largest knob in the NoC's
// logic budget (E2 showed the static region scaling with tiles). This
// ablation sweeps buffer depth under uniform-random traffic and reports
// saturation throughput alongside the cell cost, exposing the knee.
#include <cstdio>

#include "src/noc/mesh.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  double delivered_flits_per_cycle;
  double mean_latency;
};

Result Run(uint32_t buffer_depth) {
  Simulator sim;
  MeshConfig cfg{4, 4, buffer_depth, 512};
  Mesh mesh(cfg);
  sim.Register(&mesh);
  Rng rng(23);
  constexpr Cycle kWarmup = 20000;
  constexpr Cycle kWindow = 100000;

  uint64_t delivered_flits = 0;
  for (Cycle t = 0; t < kWarmup + kWindow; ++t) {
    sim.Run(1);
    // Saturating offered load: every tile tries to inject each cycle.
    for (TileId src = 0; src < 16; ++src) {
      PacketRef p(new NocPacket());
      p->src = src;
      p->dst = static_cast<TileId>(rng.NextBelow(16));
      p->vc = rng.NextBool(0.5) ? Vc::kRequest : Vc::kResponse;
      p->payload.assign(96, 1);  // 4 flits.
      mesh.ni(src).Inject(p, sim.now());
    }
    for (TileId dst = 0; dst < 16; ++dst) {
      while (auto got = mesh.ni(dst).Retrieve()) {
        if (t >= kWarmup) {
          delivered_flits += ComputeFlitCount(*got);
        }
      }
    }
  }
  Result r;
  r.delivered_flits_per_cycle = static_cast<double>(delivered_flits) / kWindow;
  r.mean_latency = mesh.AggregateLatency().Mean();
  return r;
}

}  // namespace

int main() {
  std::printf("A2: router input-buffer depth vs saturation throughput (4x4 mesh,\n");
  std::printf("uniform random 96B packets, saturating offered load)\n");

  Table table("A2: buffer-depth sweep");
  table.SetHeader({"depth (flits/VC)", "delivered flits/cycle", "mean pkt latency (cyc)",
                   "router cells", "16-router cells"});
  for (uint32_t depth : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const Result r = Run(depth);
    table.AddRow({Table::Int(depth), Table::Num(r.delivered_flits_per_cycle, 2),
                  Table::Num(r.mean_latency, 1), Table::Int(Router::LogicCellCost(depth)),
                  Table::Int(16ull * Router::LogicCellCost(depth))});
  }
  table.Print();
  std::printf(
      "\nexpected shape: throughput climbs steeply up to ~8-flit buffers (enough to\n"
      "cover a full packet per VC) then flattens, while the cell cost keeps growing\n"
      "linearly — the knee justifies the default depth used everywhere else.\n");
  return 0;
}
