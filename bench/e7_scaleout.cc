// Experiment E7: scale-out of a replicated accelerator behind the internal
// load balancer.
//
// Paper basis (Section 3 Scalability; Section 4.1: "a replicated accelerator
// with internal load balancing for higher bandwidth"; Section 1: "each
// module may be independently scaled up or down to match demand").
//
// A compute-bound checksum engine is replicated 1..8x on one board; a
// saturating closed-loop workload measures delivered throughput and tail
// latency. Nothing about the accelerator changes between rows — scaling is
// pure kernel wiring, the property the paper wants from the OS layer.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/checksum.h"
#include "src/accel/probe.h"
#include "src/services/load_balancer.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  double ops_per_ms;
  uint64_t p50;
  uint64_t p99;
  uint64_t lb_forwards;
};

// In-board closed-loop driver with `window` outstanding requests.
class WindowedClient : public Accelerator {
 public:
  WindowedClient(ServiceId svc, uint32_t window, uint32_t payload_bytes)
      : svc_(svc), window_(window), payload_bytes_(payload_bytes) {}
  void Tick(TileApi& api) override {
    while (in_flight_ < window_) {
      Message msg;
      msg.opcode = kOpChecksum;
      msg.payload.assign(payload_bytes_, static_cast<uint8_t>(in_flight_));
      msg.request_id = next_id_++;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      issue_[msg.request_id] = api.now();
      ++in_flight_;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    if (msg.kind != MsgKind::kResponse) {
      return;
    }
    auto it = issue_.find(msg.request_id);
    if (it != issue_.end()) {
      latency.Record(api.now() - it->second);
      issue_.erase(it);
    }
    --in_flight_;
    ++done;
  }
  std::string name() const override { return "windowed_client"; }
  uint32_t LogicCellCost() const override { return 1000; }
  Histogram latency;
  uint64_t done = 0;

 private:
  ServiceId svc_;
  uint32_t window_;
  uint32_t payload_bytes_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Cycle> issue_;
};

Result Run(uint32_t replicas) {
  BenchBoard bb(BenchBoardOptions{4, 4}, /*deploy_services=*/false);
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("crc");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  for (uint32_t i = 0; i < replicas; ++i) {
    ServiceId svc = 0;
    os.Deploy(app, std::make_unique<ChecksumAccelerator>(/*bytes_per_cycle=*/1), &svc);
    lb->AddBackend(os.GrantSendToService(lb_tile, svc));
  }
  auto* client = new WindowedClient(lb_svc, /*window=*/24, /*payload_bytes=*/2048);
  const TileId ct = os.Deploy(app, std::unique_ptr<Accelerator>(client));
  (void)os.GrantSendToService(ct, lb_svc);

  constexpr Cycle kRun = 1'500'000;
  bb.sim.Run(kRun);
  Result r;
  r.ops_per_ms = static_cast<double>(client->done) / (bb.sim.CyclesToNs(kRun) / 1e6);
  r.p50 = client->latency.P50();
  r.p99 = client->latency.P99();
  r.lb_forwards = lb->counters().Get("lb.forwards");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E7: replicated accelerator scale-out (2KiB CRC requests at 1 B/cycle,\n");
  std::printf("closed loop window 24, 1.5M-cycle runs)\n");

  BenchJson json("e7_scaleout");
  json.Param("payload_bytes", 2048);
  json.Param("window", 24);
  json.Param("run_cycles", static_cast<uint64_t>(1'500'000));

  Table table("E7: throughput and latency vs replica count");
  table.SetHeader({"replicas", "ops/ms", "speedup", "p50 (cyc)", "p99 (cyc)"});
  double base = 0;
  for (uint32_t replicas : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const Result r = Run(replicas);
    if (replicas == 1) {
      base = r.ops_per_ms;
    }
    table.AddRow({Table::Int(replicas), Table::Num(r.ops_per_ms, 1),
                  Table::Num(r.ops_per_ms / base, 2) + "x", Table::Int(r.p50),
                  Table::Int(r.p99)});
    json.BeginRow();
    json.Metric("replicas", static_cast<uint64_t>(replicas));
    json.Metric("ops_per_ms", r.ops_per_ms);
    json.Metric("speedup", r.ops_per_ms / base);
    json.Metric("p50_cycles", r.p50);
    json.Metric("p99_cycles", r.p99);
    json.Metric("lb_forwards", r.lb_forwards);
  }
  table.Print();
  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    json.WriteFile(json_path);
  }
  std::printf(
      "\nexpected shape: near-linear throughput growth while the engines are the\n"
      "bottleneck, flattening once the 24-deep client window (or the LB tile)\n"
      "saturates — scaling achieved purely by kernel wiring, per Section 4.1.\n");
  return 0;
}
