file(REMOVE_RECURSE
  "CMakeFiles/a5_remote_service.dir/a5_remote_service.cc.o"
  "CMakeFiles/a5_remote_service.dir/a5_remote_service.cc.o.d"
  "a5_remote_service"
  "a5_remote_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a5_remote_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
