// Suppressed: hash containers that are never iterated may stay, with an
// explicit NOLINT acknowledging the reviewer checked.
#include <unordered_map>

namespace apiary {

// Lookups only; hash order is invisible to the trace.
std::unordered_map<int, int> g_cache;  // NOLINT(apiary-determinism)

// NOLINTNEXTLINE(apiary-determinism)
std::unordered_map<int, int> g_cache2;

}  // namespace apiary
