# Empty compiler generated dependencies file for a5_remote_service.
# This may be replaced when dependencies are built.
