# Empty compiler generated dependencies file for e8_interface_scaling.
# This may be replaced when dependencies are built.
