// Experiment E5: segment+capability memory isolation vs a paged baseline.
//
// Paper basis (Section 4.6): "it is unclear that a fully paged translation
// system is necessary in Apiary... Segments allow more flexibility in the
// size of an memory allocation, reducing resource stranding, while
// capabilities give us isolation properties."
//
// Part A: allocation flexibility — replay the same accelerator-style
//         allocation trace (many odd-sized buffers) against the segment
//         allocator and a 4KiB/2MiB-page allocator; report stranded bytes
//         and where each first fails.
// Part B: translation cost — per-access latency of a segment bounds check
//         versus a TLB+page-walk, across access locality patterns.
#include <cstdio>

#include "src/mem/page_allocator.h"
#include "src/mem/page_table.h"
#include "src/mem/segment_allocator.h"
#include "src/sim/random.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint64_t kPoolBytes = 256ull << 20;

// Accelerator-style allocation mix: a few huge frame/model buffers, many
// mid-size ring buffers, and a tail of small descriptors — sizes are
// deliberately not page-multiples.
uint64_t SampleAllocSize(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.05) {
    return rng.NextInRange(8ull << 20, 32ull << 20);  // Frame/model buffers.
  }
  if (u < 0.45) {
    return rng.NextInRange(64ull << 10, 1ull << 20);  // Rings, tables.
  }
  return rng.NextInRange(100, 8192);  // Descriptors, small state.
}

struct AllocResult {
  uint64_t requested = 0;
  uint64_t stranded = 0;     // Bytes held but not requested (internal frag)
                             // or unusable largest-hole gap (external frag).
  uint64_t allocs_ok = 0;
  uint64_t first_failure_at = 0;  // Total requested bytes when it failed.
};

AllocResult RunSegments(uint64_t seed) {
  SegmentAllocator alloc(0, kPoolBytes);
  Rng rng(seed);
  AllocResult r;
  std::vector<Segment> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      const uint64_t bytes = SampleAllocSize(rng);
      auto seg = alloc.Allocate(bytes, 64);
      if (!seg.has_value()) {
        if (r.first_failure_at == 0) {
          r.first_failure_at = r.requested;
        }
        continue;
      }
      r.requested += bytes;
      ++r.allocs_ok;
      live.push_back(*seg);
    } else {
      const size_t idx = rng.NextBelow(live.size());
      alloc.Free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  // Stranding for segments = external fragmentation: free bytes that cannot
  // serve the next big (8MiB) request even though the total would.
  const uint64_t total_free = alloc.bytes_free();
  const uint64_t largest = alloc.LargestFreeChunk();
  r.stranded = largest >= (8ull << 20) ? 0 : total_free - largest;
  return r;
}

AllocResult RunPages(uint64_t seed, uint64_t page_bytes) {
  PageAllocator alloc(kPoolBytes, page_bytes);
  Rng rng(seed);
  AllocResult r;
  std::vector<std::vector<uint64_t>> live;
  for (int step = 0; step < 20000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      const uint64_t bytes = SampleAllocSize(rng);
      auto frames = alloc.Allocate(bytes);
      if (!frames.has_value()) {
        if (r.first_failure_at == 0) {
          r.first_failure_at = r.requested;
        }
        continue;
      }
      r.requested += bytes;
      ++r.allocs_ok;
      live.push_back(std::move(*frames));
    } else {
      const size_t idx = rng.NextBelow(live.size());
      alloc.Free(live[idx]);
      live[idx] = std::move(live.back());
      live.pop_back();
    }
  }
  // Stranding for pages = internal fragmentation (rounded-up remainders).
  r.stranded = alloc.InternalFragmentationBytes();
  return r;
}

struct XlatResult {
  double mean_cycles;
  double hit_rate;
};

// Streams `accesses` memory references over a working set and totals the
// translation cost of the paged path.
XlatResult RunPagedTranslation(uint64_t working_set_bytes, bool sequential) {
  PageTableConfig cfg;
  PageTable pt(cfg);
  const uint64_t pages = working_set_bytes / cfg.page_bytes;
  for (uint64_t p = 0; p < pages; ++p) {
    pt.Map(p, p);
  }
  Rng rng(7);
  uint64_t total = 0;
  const int accesses = 100000;
  uint64_t seq = 0;
  for (int i = 0; i < accesses; ++i) {
    const uint64_t addr = sequential ? (seq += 64) % working_set_bytes
                                     : rng.NextBelow(working_set_bytes);
    total += pt.Translate(addr)->latency;
  }
  const uint64_t hits = pt.counters().Get("pt.tlb_hits");
  return XlatResult{static_cast<double>(total) / accesses,
                    static_cast<double>(hits) / accesses};
}

}  // namespace

int main() {
  std::printf("E5: segments+capabilities vs paging (Section 4.6)\n");

  Table part_a("E5a: allocation trace replay (256MiB pool, mixed accelerator sizes)");
  part_a.SetHeader({"allocator", "allocs ok", "bytes requested", "stranded bytes",
                    "stranded %"});
  auto add_row = [&](const char* name, const AllocResult& r) {
    part_a.AddRow({name, Table::Int(r.allocs_ok), Table::Int(r.requested),
                   Table::Int(r.stranded),
                   Table::Num(100.0 * static_cast<double>(r.stranded) /
                                  static_cast<double>(kPoolBytes), 2)});
  };
  add_row("segments (best-fit)", RunSegments(11));
  add_row("pages 4KiB", RunPages(11, 4096));
  add_row("pages 64KiB", RunPages(11, 64 << 10));
  add_row("pages 2MiB", RunPages(11, 2 << 20));
  part_a.Print();

  Table part_b("E5b: per-access translation cost (cycles)");
  part_b.SetHeader({"mechanism", "sequential stream", "random over 1MiB", "random over 64MiB"});
  // Segment translation is a single base+bounds comparator: 1 cycle, always.
  part_b.AddRow({"segment bounds check", "1.0", "1.0", "1.0"});
  {
    const XlatResult seq = RunPagedTranslation(64ull << 20, /*sequential=*/true);
    const XlatResult small = RunPagedTranslation(1ull << 20, /*sequential=*/false);
    const XlatResult big = RunPagedTranslation(64ull << 20, /*sequential=*/false);
    part_b.AddRow({"4KiB pages + 64-entry TLB", Table::Num(seq.mean_cycles, 2),
                   Table::Num(small.mean_cycles, 2), Table::Num(big.mean_cycles, 2)});
    part_b.AddRow({"  (TLB hit rate)", Table::Num(100 * seq.hit_rate, 1) + "%",
                   Table::Num(100 * small.hit_rate, 1) + "%",
                   Table::Num(100 * big.hit_rate, 1) + "%"});
  }
  part_b.Print();

  std::printf(
      "\nexpected shape: segments strand almost nothing on odd-sized accelerator\n"
      "buffers, while paging strands ~half a page per allocation (catastrophic at\n"
      "2MiB pages); segment translation is a constant one-cycle bounds check while\n"
      "the paged path degrades to a multi-level walk whenever the accelerator's\n"
      "access pattern defeats the TLB — exactly the specialization-hostile behavior\n"
      "Section 4.6 argues against.\n");
  return 0;
}
