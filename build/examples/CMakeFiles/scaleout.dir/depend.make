# Empty dependencies file for scaleout.
# This may be replaced when dependencies are built.
