#include "src/workload/client.h"

#include <algorithm>

#include "src/core/message.h"
#include "src/sim/logging.h"

namespace apiary {

ClientHost::ClientHost(ClientConfig config, ExternalNetwork* network, RequestFactory factory)
    : config_(config),
      network_(network),
      factory_(std::move(factory)),
      transport_(config.transport),
      rng_(config.seed) {
  my_endpoint_ = network_->RegisterEndpoint(this);
}

void ClientHost::Transmit(uint64_t id, uint16_t opcode, const PayloadBuf& payload,
                          Cycle now) {
  std::vector<uint8_t> app;
  PutU32(app, config_.dst_service);
  PutU64(app, id);
  app.push_back(static_cast<uint8_t>(opcode));
  app.push_back(static_cast<uint8_t>(opcode >> 8));
  app.insert(app.end(), payload.begin(), payload.end());
  if (config_.reliable) {
    transport_.SendData(config_.server_endpoint, std::move(app), now);
    return;
  }
  EthFrame frame;
  frame.src_endpoint = my_endpoint_;
  frame.dst_endpoint = config_.server_endpoint;
  frame.payload = std::move(app);
  network_->Send(std::move(frame), now);
}

void ClientHost::SendOne(Cycle now) {
  const uint64_t id = next_id_++;
  ClientRequest req = factory_(issued_, rng_);
  ++issued_;
  ++sent_;
  Transmit(id, req.opcode, req.payload, now);
  outstanding_[id] = Outstanding{now, now, req.opcode, std::move(req.payload)};
}

void ClientHost::OnFrame(EthFrame frame, Cycle now) {
  // A response ends quiescence early: it can open the closed-loop window or
  // retire a retry timer the parked declaration was sleeping toward.
  RequestWake();
  if (config_.reliable && ReliableTransport::IsTransportFrame(frame.payload)) {
    for (const auto& payload : transport_.OnFrame(frame.src_endpoint, frame.payload, now)) {
      HandleResponsePayload(payload, now);
    }
    return;
  }
  HandleResponsePayload(frame.payload, now);
}

// NOLINTNEXTLINE(apiary-hot-path): external-fabric frame bytes, not a NoC message payload
void ClientHost::HandleResponsePayload(const std::vector<uint8_t>& payload, Cycle now) {
  // Response: u64 client_id | u8 status | payload. The hosted baseline
  // echoes our request frame verbatim (including the leading service word),
  // so probe both layouts by looking for a known id.
  uint64_t id = 0;
  size_t body = 0;
  uint8_t status = 0;
  if (payload.size() >= 9) {
    id = GetU64(payload, 0);
    status = payload[8];
    body = 9;
  }
  if (outstanding_.find(id) == outstanding_.end() && payload.size() >= 12) {
    // Hosted echo layout: u32 dst_service | u64 client_id | u16 op | ...
    id = GetU64(payload, 4);
    status = 0;
    body = payload.size() >= 14 ? 14 : payload.size();
  }
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    ++stray_responses_;
    return;
  }
  // Trace at debug level for the determinism regression (which diffs the
  // full trace of two seeded runs); guarded so disabled runs pay one branch.
  if (GetLogLevel() <= LogLevel::kDebug) {
    APIARY_LOG(kDebug) << "client " << my_endpoint_ << ": resp id=" << id << " status="
                       << static_cast<int>(status) << " lat="
                       << (now - it->second.first_issued) << " now=" << now;
  }
  latency_.Record(now - it->second.first_issued);
  outstanding_.erase(it);
  ++received_;
  ++status_counts_[status];
  if (status != 0) {
    ++errors_;
  } else {
    last_response_.assign(payload.begin() + static_cast<ptrdiff_t>(body), payload.end());
  }
  if (!config_.open_loop && !DoneIssuing()) {
    SendOne(now);
  }
}

Cycle ClientHost::NextActivity(Cycle now) const {
  // Reliable mode: the ARQ transport owns retransmission timers that Poll
  // advances every cycle; stay active so their cadence is cycle-exact.
  if (config_.reliable) {
    return now;
  }
  Cycle next = kNoActivity;
  // Application-level retry: an entry retransmits on the first cycle where
  // now - issued exceeds the timeout, i.e. at issued + timeout + 1.
  for (const auto& [id, out] : outstanding_) {
    const Cycle retry_at = out.issued + config_.retry_timeout_cycles + 1;
    next = std::min(next, retry_at > now ? retry_at : now);
  }
  if (!DoneIssuing()) {
    if (config_.open_loop) {
      // next_send_at_ == 0 means the arrival clock has not been seeded yet;
      // the first tick does that, so it must run.
      const Cycle send_at =
          next_send_at_ == 0 ? now : (next_send_at_ > now ? next_send_at_ : now);
      next = std::min(next, send_at);
    } else if (outstanding_.size() < config_.concurrency) {
      return now;  // The closed-loop window has room to issue immediately.
    }
  }
  return next;
}

void ClientHost::Tick(Cycle now) {
  // Reliable mode: the ARQ layer owns retransmission; flush its frames.
  if (config_.reliable) {
    for (auto& out : transport_.Poll(now)) {
      EthFrame frame;
      frame.src_endpoint = my_endpoint_;
      frame.dst_endpoint = out.peer;
      frame.payload = std::move(out.bytes);
      network_->Send(std::move(frame), now);
    }
  }
  // At-least-once delivery: retransmit anything outstanding for too long
  // (covers frames dropped during link bring-up). In reliable mode the
  // transport owns loss recovery, so the application-level timer is off.
  for (auto it = outstanding_.begin(); !config_.reliable && it != outstanding_.end();) {
    if (now - it->second.issued > config_.retry_timeout_cycles) {
      const uint64_t new_id = next_id_++;
      Outstanding retry = std::move(it->second);
      it = outstanding_.erase(it);
      ++timeouts_;
      retry.issued = now;
      Transmit(new_id, retry.opcode, retry.payload, now);
      outstanding_[new_id] = std::move(retry);
    } else {
      ++it;
    }
  }
  if (DoneIssuing()) {
    return;
  }
  if (config_.open_loop) {
    if (next_send_at_ == 0) {
      next_send_at_ = now + 1;
    }
    while (now >= next_send_at_ && !DoneIssuing()) {
      SendOne(now);
      const double mean_gap = 1000.0 / config_.requests_per_1k_cycles;
      next_send_at_ += static_cast<Cycle>(rng_.NextExponential(mean_gap)) + 1;
    }
  } else {
    while (outstanding_.size() < config_.concurrency && !DoneIssuing()) {
      SendOne(now);
    }
  }
}

}  // namespace apiary
