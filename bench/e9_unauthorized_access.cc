// Experiment E9: unauthorized access is refused at every layer, and
// revocation takes effect immediately.
//
// Paper basis (Section 2): "We do not want, for example, any accelerator of
// the KV-store application to be able to communicate with any accelerator in
// the encoding application. This could occur due to misbehavior from a bug
// or maliciously." And Section 4.6's partitioned capabilities with
// monitor-side enforcement.
//
// Part A: a snooper's full attack surface, with where each attempt died.
// Part B: capability revocation — messages in the same cycle window before
//         and after Revoke(), proving the generation check is immediate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/probe.h"
#include "src/stats/table.h"

using namespace apiary;

int main() {
  std::printf("E9: unauthorized access and revocation (Sections 2, 4.6)\n");

  // ---- Part A: the snooper's haul. ----
  {
    BenchBoard bb;
    ApiaryOs& os = bb.os;
    AppId victim_app = os.CreateApp("victim");
    ServiceId vsvc = 0;
    os.Deploy(victim_app, std::make_unique<EchoAccelerator>(0), &vsvc);
    AppId evil_app = os.CreateApp("evil");
    auto* snoop = new SnooperAccelerator(os.num_tiles(), 25);
    const TileId st = os.Deploy(evil_app, std::unique_ptr<Accelerator>(snoop));
    (void)os.GrantSendToService(st, kMemoryService);  // Its one legitimate right.
    bb.sim.Run(200000);

    Table part_a("E9a: snooper outcome after 200k cycles");
    part_a.SetHeader({"metric", "count"});
    part_a.AddRow({"attempts (forged caps + forged grants)", Table::Int(snoop->attempts())});
    part_a.AddRow({"refused at the sender's monitor", Table::Int(snoop->denied_local())});
    part_a.AddRow({"refused at the service (scrubbed grant)",
                   Table::Int(snoop->denied_remote())});
    part_a.AddRow({"bytes of victim data obtained", Table::Int(snoop->leaked())});
    part_a.Print();
  }

  // ---- Part B: revocation latency. ----
  {
    BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
    ApiaryOs& os = bb.os;
    AppId app = os.CreateApp("a");
    ServiceId svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
    auto* probe = new ProbeAccelerator();
    const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    const CapRef cap = os.GrantSendToService(pt, svc);
    bb.sim.Run(3);

    Table part_b("E9b: revocation is immediate (same-cycle send outcomes)");
    part_b.SetHeader({"action", "send status"});
    Message before;
    before.opcode = kOpEcho;
    part_b.AddRow({"send with live capability",
                   MsgStatusName(os.monitor(pt).Send(std::move(before), cap).status)});
    os.Revoke(pt, cap);
    Message after;
    after.opcode = kOpEcho;
    part_b.AddRow({"send after Revoke() — same cycle",
                   MsgStatusName(os.monitor(pt).Send(std::move(after), cap).status)});
    // Slot reuse: a new grant occupies the same slot with a new generation;
    // the stale reference still fails.
    const CapRef fresh = os.GrantSendToService(pt, svc);
    Message stale;
    stale.opcode = kOpEcho;
    part_b.AddRow({"send with STALE ref after slot reuse",
                   MsgStatusName(os.monitor(pt).Send(std::move(stale), cap).status)});
    Message live;
    live.opcode = kOpEcho;
    part_b.AddRow({"send with the fresh capability",
                   MsgStatusName(os.monitor(pt).Send(std::move(live), fresh).status)});
    part_b.Print();
  }

  std::printf(
      "\nexpected shape: every snoop attempt dies at the first trusted component it\n"
      "meets (the local monitor for forged refs, the service for scrubbed grants);\n"
      "zero victim bytes leak. Revocation flips the capability generation, so the\n"
      "very next send — and any send with a stale ref after slot reuse — fails\n"
      "closed while a freshly granted capability works.\n");
  return 0;
}
