#include "src/noc/network_interface.h"

namespace apiary {

NetworkInterface::NetworkInterface(TileId tile, Router* router, uint32_t inject_queue_flits,
                                   bool force_single_vc)
    : tile_(tile),
      router_(router),
      inject_queue_flits_(inject_queue_flits),
      force_single_vc_(force_single_vc) {}

uint32_t NetworkInterface::LogicCellCost() {
  // Packetization, reassembly and queue logic; roughly half a router.
  return 2000;
}

bool NetworkInterface::CanInject(uint32_t flits, Vc vc) const {
  return inject_queues_[static_cast<int>(vc)].size() + flits <= inject_queue_flits_;
}

bool NetworkInterface::Inject(std::shared_ptr<NocPacket> packet, Cycle now) {
  if (force_single_vc_) {
    packet->vc = Vc::kRequest;  // Single-VC ablation: everything shares VC0.
  }
  const uint32_t flits = FlitCount(*packet);
  if (!CanInject(flits, packet->vc)) {
    counters_.Add("ni.inject_backpressure");
    return false;
  }
  packet->inject_cycle = now;
  auto& queue = inject_queues_[static_cast<int>(packet->vc)];
  for (uint32_t i = 0; i < flits; ++i) {
    queue.push_back(Flit{packet, i});
  }
  counters_.Add("ni.packets_injected");
  counters_.Add("ni.flits_injected", flits);
  return true;
}

void NetworkInterface::InjectCycle(Cycle now) {
  (void)now;
  // One flit per cycle onto the local port, round-robin across VCs.
  for (int i = 0; i < kNumVcs; ++i) {
    auto& queue = inject_queues_[(inject_rr_ + i) % kNumVcs];
    if (queue.empty()) {
      continue;
    }
    if (router_->AcceptFlit(kPortLocal, queue.front())) {
      queue.pop_front();
      inject_rr_ = (inject_rr_ + i + 1) % kNumVcs;
      return;
    }
  }
}

void NetworkInterface::EjectFlit(const Flit& flit, Cycle now) {
  counters_.Add("ni.flits_ejected");
  if (flit.is_tail()) {
    latency_.Record(now - flit.packet->inject_cycle);
    counters_.Add("ni.packets_delivered");
    delivered_.push_back(flit.packet);
  }
}

std::shared_ptr<NocPacket> NetworkInterface::Retrieve() {
  if (delivered_.empty()) {
    return nullptr;
  }
  auto packet = delivered_.front();
  delivered_.pop_front();
  return packet;
}

}  // namespace apiary
