// Fault-model hook the NoC substrate consults while moving flits.
//
// The NoC stays ignorant of *why* faults happen (campaigns, seeds, rates all
// live in src/fault); routers only ask this narrow interface whether the
// current traversal is affected. A null model means a perfect network.
#ifndef SRC_NOC_FAULT_HOOKS_H_
#define SRC_NOC_FAULT_HOOKS_H_

#include "src/noc/packet.h"
#include "src/sim/types.h"

namespace apiary {

class NocFaultModel {
 public:
  virtual ~NocFaultModel() = default;

  // Consulted once per packet (on its head flit) each time it crosses an
  // inter-router link out of `router_tile`. The model may corrupt the
  // packet's payload in place (the stale checksum is how the receiving NI
  // detects it). Returns true if the packet should be dropped on this link.
  virtual bool OnLinkTraverse(TileId router_tile, const Flit& flit, Cycle now) = 0;

  // True while the router at `router_tile` is stalled (forwards nothing).
  virtual bool RouterStalled(TileId router_tile, Cycle now) = 0;

  // Quiescence hook for the mesh: the earliest cycle at which this model
  // still has per-cycle NoC work even on an empty mesh (router stall
  // windows accrue `router.fault_stalled_cycles` every cycle they are
  // open). Return `now` while any stall window is open, kNoActivity
  // (~Cycle{0}) otherwise. The default keeps models that never stall
  // conservative-but-correct: an always-active mesh.
  [[nodiscard]] virtual Cycle NextMeshActivity(Cycle now) const { return now; }

  // Express-corridor precondition: true only if NO drop/corrupt/stall window
  // is open at `now`, i.e. skipping the per-traversal OnLinkTraverse calls
  // for a fast-forwarded packet is observably exact (closed windows draw no
  // randomness and mutate nothing). Models that cannot promise this keep the
  // conservative default and simply disable corridor launches.
  [[nodiscard]] virtual bool NocQuiet(Cycle now) const {
    (void)now;
    return false;
  }
};

}  // namespace apiary

#endif  // SRC_NOC_FAULT_HOOKS_H_
