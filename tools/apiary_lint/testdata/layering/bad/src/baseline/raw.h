// Bad: the no-OS baseline must not quietly grow a dependency on the
// Apiary service stack it is being compared against.
#ifndef SRC_BASELINE_RAW_H_
#define SRC_BASELINE_RAW_H_

#include "src/services/transport.h"

#endif  // SRC_BASELINE_RAW_H_
