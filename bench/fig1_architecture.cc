// Figure 1 of the paper: "An overview of Apiary's architecture. This
// configuration has two applications composed of multiple accelerators. Each
// tile contains a NoC router for communication, Apiary's monitor to provide
// isolation and manage capabilities, and an accelerator or Apiary service."
//
// This harness instantiates exactly that configuration, renders the tile
// map, and then *measures* the isolation matrix by attempting a send between
// every ordered pair of tiles: granted intra-app edges must deliver, every
// cross-application edge must be refused.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/stats/table.h"

using namespace apiary;

int main() {
  BenchBoard bb(BenchBoardOptions{4, 4, "VU9P"});
  ApiaryOs& os = bb.os;

  // Two applications, as drawn in Figure 1.
  const AppId app1 = os.CreateApp("app1-video");
  const AppId app2 = os.CreateApp("app2-kv");
  std::vector<TileId> app1_tiles;
  std::vector<TileId> app2_tiles;
  for (int i = 0; i < 3; ++i) {
    ServiceId svc = 0;
    app1_tiles.push_back(os.Deploy(app1, std::make_unique<EchoAccelerator>(0), &svc));
  }
  for (int i = 0; i < 2; ++i) {
    ServiceId svc = 0;
    app2_tiles.push_back(os.Deploy(app2, std::make_unique<EchoAccelerator>(0), &svc));
  }
  // Intra-app wiring: each app is a chain (accelerator i -> i+1), and every
  // accelerator may call the OS services.
  auto wire_chain = [&](const std::vector<TileId>& tiles) {
    for (size_t i = 0; i + 1 < tiles.size(); ++i) {
      (void)os.GrantSend(tiles[i], tiles[i + 1]);
    }
    for (TileId t : tiles) {
      (void)os.GrantSendToService(t, kMemoryService);
    }
  };
  wire_chain(app1_tiles);
  wire_chain(app2_tiles);
  bb.sim.Run(10);

  // --- Render the tile map. ---
  std::printf("Figure 1 configuration on a 4x4 NoC (each tile = router + monitor + slot):\n\n");
  auto role = [&](TileId t) -> std::string {
    if (os.LookupServiceTile(kMemoryService) == t) {
      return "memsvc";
    }
    if (os.LookupServiceTile(kNetworkService) == t) {
      return "netsvc";
    }
    for (size_t i = 0; i < app1_tiles.size(); ++i) {
      if (app1_tiles[i] == t) {
        return "app1." + std::to_string(i);
      }
    }
    for (size_t i = 0; i < app2_tiles.size(); ++i) {
      if (app2_tiles[i] == t) {
        return "app2." + std::to_string(i);
      }
    }
    return "empty";
  };
  for (uint32_t y = 0; y < 4; ++y) {
    for (uint32_t x = 0; x < 4; ++x) {
      std::printf("[%-7s]", role(y * 4 + x).c_str());
    }
    std::printf("\n");
  }

  // --- Static (trusted) region accounting. ---
  Table budget("Static region (trusted: routers, NIs, monitors, I/O shells)");
  budget.SetHeader({"component", "logic cells"});
  for (const auto& [label, cells] : bb.board.budget().static_breakdown()) {
    budget.AddRow({label, Table::Int(cells)});
  }
  budget.AddRow({"TOTAL static", Table::Int(bb.board.budget().static_cells())});
  budget.AddRow({"fraction of part",
                 Table::Num(100.0 * bb.board.budget().StaticFraction(), 1) + "%"});
  budget.Print();

  // --- Measured isolation matrix. ---
  std::vector<TileId> actors;
  actors.insert(actors.end(), app1_tiles.begin(), app1_tiles.end());
  actors.insert(actors.end(), app2_tiles.begin(), app2_tiles.end());

  std::printf("\nmeasured send matrix ('#' delivered, '.' refused):\n        ");
  for (TileId dst : actors) {
    std::printf("%-8s", role(dst).c_str());
  }
  std::printf("\n");

  int cross_app_leaks = 0;
  int intra_app_delivered = 0;
  int intra_app_expected = 0;
  for (TileId src : actors) {
    std::printf("%-8s", role(src).c_str());
    for (TileId dst : actors) {
      if (src == dst) {
        std::printf("%-8s", "-");
        continue;
      }
      const uint64_t before = os.monitor(dst).counters().Get("monitor.delivered");
      // Attempt with whatever capability the source legitimately holds.
      CapRef cap = kInvalidCapRef;
      for (uint32_t slot = 0; slot < 64 && cap == kInvalidCapRef; ++slot) {
        const CapRef candidate = MakeCapRef(slot, 0);
        const Capability* c = os.monitor(src).cap_table().Lookup(candidate);
        if (c != nullptr && c->kind == CapKind::kEndpoint && c->dst_tile == dst) {
          cap = candidate;
        }
      }
      Message msg;
      msg.opcode = kOpEcho;
      os.monitor(src).Send(std::move(msg), cap);
      bb.sim.Run(100);
      const bool delivered = os.monitor(dst).counters().Get("monitor.delivered") > before;
      std::printf("%-8s", delivered ? "#" : ".");
      const bool same_app =
          (std::count(app1_tiles.begin(), app1_tiles.end(), src) != 0) ==
          (std::count(app1_tiles.begin(), app1_tiles.end(), dst) != 0);
      if (!same_app && delivered) {
        ++cross_app_leaks;
      }
      if (cap != kInvalidCapRef) {
        ++intra_app_expected;
        if (delivered) {
          ++intra_app_delivered;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("\ngranted intra-app edges delivered: %d/%d\n", intra_app_delivered,
              intra_app_expected);
  std::printf("cross-application deliveries:       %d (must be 0)\n", cross_app_leaks);
  std::printf("result: %s\n", cross_app_leaks == 0 && intra_app_delivered == intra_app_expected
                                  ? "PASS — the Figure 1 isolation property holds"
                                  : "FAIL");
  return cross_app_leaks == 0 ? 0 : 1;
}
