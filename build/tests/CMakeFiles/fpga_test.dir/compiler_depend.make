# Empty compiler generated dependencies file for fpga_test.
# This may be replaced when dependencies are built.
