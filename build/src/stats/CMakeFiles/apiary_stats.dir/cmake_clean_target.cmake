file(REMOVE_RECURSE
  "libapiary_stats.a"
)
