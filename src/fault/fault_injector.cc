#include "src/fault/fault_injector.h"

#include <algorithm>

namespace apiary {

namespace {
constexpr size_t kMaxTraceEntries = 1000;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, FaultHooks hooks)
    : plan_(std::move(plan)), hooks_(hooks), rng_(plan_.seed) {
  plan_.Sort();
  if (hooks_.os != nullptr) {
    hooks_.os->sim().Register(this);
  }
  if (hooks_.mesh != nullptr) {
    hooks_.mesh->SetFaultModel(this);
  }
}

FaultInjector::~FaultInjector() {
  if (hooks_.mesh != nullptr) {
    hooks_.mesh->SetFaultModel(nullptr);
  }
}

void FaultInjector::Record(const FaultEvent& event, Cycle now, const std::string& note) {
  if (trace_.size() >= kMaxTraceEntries) {
    counters_.Add("fault.trace_overflow");
    return;
  }
  std::string line = "cycle=" + std::to_string(now) +
                     " kind=" + FaultKindName(event.kind);
  if (event.tile != kInvalidTile) {
    line += " tile=" + std::to_string(event.tile);
  }
  if (event.duration != 0) {
    line += " duration=" + std::to_string(event.duration);
  }
  if (!note.empty()) {
    line += " " + note;
  }
  trace_.push_back(std::move(line));
}

void FaultInjector::Fire(const FaultEvent& event, Cycle now) {
  counters_.Add("fault.injected");
  counters_.Add(std::string("fault.") + FaultKindName(event.kind));
  switch (event.kind) {
    case FaultKind::kLinkDrop:
      // A window opening ends NocQuiet: corridors planned under the old
      // declaration must become real flits before any traversal can hit it.
      // Fire runs in the root-phase Tick, before this cycle's mesh phases.
      if (hooks_.mesh != nullptr) {
        hooks_.mesh->MaterializeExpress();
      }
      drop_windows_.push_back(Window{event.tile, now + event.duration, event.rate});
      Record(event, now, "");
      break;
    case FaultKind::kLinkCorrupt:
      if (hooks_.mesh != nullptr) {
        hooks_.mesh->MaterializeExpress();
      }
      corrupt_windows_.push_back(Window{event.tile, now + event.duration, event.rate});
      Record(event, now, "");
      break;
    case FaultKind::kRouterStall:
      if (hooks_.mesh != nullptr) {
        hooks_.mesh->MaterializeExpress();
      }
      stall_windows_.push_back(Window{event.tile, now + event.duration, 1.0});
      Record(event, now, "");
      break;
    case FaultKind::kDramBitFlip: {
      if (hooks_.memory == nullptr) {
        counters_.Add("fault.skipped_no_hook");
        break;
      }
      const uint64_t capacity = hooks_.memory->capacity();
      const uint64_t base = std::min(event.addr, capacity);
      const uint64_t span =
          event.len != 0 ? std::min(event.len, capacity - base) : capacity - base;
      for (uint32_t i = 0; i < event.count && span != 0; ++i) {
        const uint64_t addr = base + rng_.NextBelow(span);
        const uint32_t bit = static_cast<uint32_t>(rng_.NextBelow(8));
        switch (hooks_.memory->InjectBitFlip(addr, bit)) {
          case BitFlipResult::kCorrupted:
            counters_.Add("fault.dram_corrupted");
            Record(event, now, "addr=" + std::to_string(addr) +
                                   " bit=" + std::to_string(bit) + " corrupted");
            break;
          case BitFlipResult::kCorrectedByEcc:
            counters_.Add("fault.dram_ecc_corrected");
            Record(event, now, "addr=" + std::to_string(addr) +
                                   " bit=" + std::to_string(bit) + " ecc_corrected");
            break;
          case BitFlipResult::kOutOfRange:
            counters_.Add("fault.dram_out_of_range");
            break;
        }
      }
      break;
    }
    case FaultKind::kEthLossBurst:
      if (hooks_.network == nullptr) {
        counters_.Add("fault.skipped_no_hook");
        break;
      }
      hooks_.network->StartLossBurst(now, event.duration, event.rate, rng_.Next());
      Record(event, now, "rate=" + std::to_string(event.rate));
      break;
    case FaultKind::kAccelCrash:
      if (hooks_.os == nullptr || event.tile == kInvalidTile) {
        counters_.Add("fault.skipped_no_hook");
        break;
      }
      // The upset flips control logic into an illegal state the accelerator
      // itself detects: it raises a fault (waking the tile if parked) and
      // the tile fail-stops.
      hooks_.os->monitor(event.tile).RaiseFault("injected SEU crash");
      Record(event, now, "");
      break;
    case FaultKind::kAccelWedge:
      if (hooks_.os == nullptr || event.tile == kInvalidTile) {
        counters_.Add("fault.skipped_no_hook");
        break;
      }
      // Silent hang: the only external symptom is missed heartbeats.
      hooks_.os->tile(event.tile).InjectSeuWedge();
      Record(event, now, "");
      break;
  }
}

void FaultInjector::EnableShardedLinkFaults(uint32_t num_tiles) {
  tile_states_.clear();
  tile_states_.reserve(num_tiles);
  for (uint32_t t = 0; t < num_tiles; ++t) {
    // Expand (plan seed, tile) through SplitMix64 so adjacent tile streams
    // share no structure.
    SplitMix64 mix(plan_.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(t) + 1)));
    tile_states_.push_back(TileFaultState{Rng(mix.Next())});
  }
}

void FaultInjector::Tick(Cycle now) {
  // Fold the sharded per-tile tallies into the shared counters. Tick runs in
  // the root phase, barrier-separated from every shard-phase traversal; the
  // skip clamp at each window close guarantees a fold after the last
  // possible draw, so end-of-campaign counters are always complete.
  for (TileFaultState& state : tile_states_) {
    if (state.drops != 0) {
      counters_.Add("fault.link_drops_applied", state.drops);
      state.drops = 0;
    }
    if (state.corruptions != 0) {
      counters_.Add("fault.link_corruptions_applied", state.corruptions);
      state.corruptions = 0;
    }
  }
  auto expire = [now](std::vector<Window>& windows) {
    windows.erase(std::remove_if(windows.begin(), windows.end(),
                                 [now](const Window& w) { return now >= w.until; }),
                  windows.end());
  };
  expire(drop_windows_);
  expire(corrupt_windows_);
  expire(stall_windows_);
  while (next_event_ < plan_.events.size() && plan_.events[next_event_].at <= now) {
    Fire(plan_.events[next_event_], now);
    ++next_event_;
  }
}

// APIARY-WAKE(self): the declaration itself covers every input — plan
// events by time, and traversal tallies only accrue inside open windows,
// whose close-cycle clamp below keeps the injector awake for the fold.
Cycle FaultInjector::NextActivity(Cycle now) const {
  Cycle next = kNoActivity;
  if (next_event_ < plan_.events.size()) {
    const Cycle at = plan_.events[next_event_].at;
    next = at > now ? at : now;
  }
  // Window expiry itself is unobservable (every consumer re-checks
  // `now < until`), but the closing cycle is where window-gated state flips;
  // bounding the jump there keeps RunUntil predicates cycle-exact. A window
  // whose close cycle has arrived but that Tick has not yet erased still
  // declares work due NOW: the expire+fold tick is pending, and under active
  // sets a parked injector would otherwise have its window-close wake
  // swallowed by the boundary re-poll, losing the final tally fold.
  auto clamp_windows = [&next, now](const std::vector<Window>& windows) {
    for (const Window& w : windows) {
      if (w.until <= now) {
        next = now;
      } else if (w.until < next) {
        next = w.until;
      }
    }
  };
  clamp_windows(drop_windows_);
  clamp_windows(corrupt_windows_);
  clamp_windows(stall_windows_);
  return next;
}

Cycle FaultInjector::NextMeshActivity(Cycle now) const {
  for (const Window& w : stall_windows_) {
    if (now < w.until) {
      return now;  // Stalled routers charge a counter every open cycle.
    }
  }
  return kNoActivity;
}

bool FaultInjector::NocQuiet(Cycle now) const {
  auto open = [now](const std::vector<Window>& windows) {
    for (const Window& w : windows) {
      if (now < w.until) {
        return true;
      }
    }
    return false;
  };
  return !open(drop_windows_) && !open(corrupt_windows_) && !open(stall_windows_);
}

bool FaultInjector::DrawHit(TileId router_tile, double rate) {
  if (!tile_states_.empty() && router_tile < tile_states_.size()) {
    return tile_states_[router_tile].rng.NextBool(rate);
  }
  return rng_.NextBool(rate);
}

bool FaultInjector::WindowHit(const std::vector<Window>& windows, TileId router_tile,
                              Cycle now) {
  for (const Window& w : windows) {
    if (now < w.until && (w.tile == kInvalidTile || w.tile == router_tile)) {
      return DrawHit(router_tile, w.rate);
    }
  }
  return false;
}

bool FaultInjector::OnLinkTraverse(TileId router_tile, const Flit& flit, Cycle now) {
  const bool sharded = !tile_states_.empty() && router_tile < tile_states_.size();
  if (WindowHit(drop_windows_, router_tile, now)) {
    if (sharded) {
      ++tile_states_[router_tile].drops;
    } else {
      counters_.Add("fault.link_drops_applied");
    }
    return true;
  }
  if (WindowHit(corrupt_windows_, router_tile, now)) {
    // Flip one bit anywhere in the wire image (serialized header region or
    // payload) — the stale end-to-end checksum is how the ejecting NI
    // detects it, wherever it lands.
    NocPacket& packet = *flit.packet;
    Rng& rng = sharded ? tile_states_[router_tile].rng : rng_;
    if (packet.wire_bytes() > 0) {
      const size_t index = static_cast<size_t>(rng.NextBelow(packet.wire_bytes()));
      *packet.wire_byte(index) ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
      if (sharded) {
        ++tile_states_[router_tile].corruptions;
      } else {
        counters_.Add("fault.link_corruptions_applied");
      }
    }
  }
  return false;
}

bool FaultInjector::RouterStalled(TileId router_tile, Cycle now) {
  for (const Window& w : stall_windows_) {
    if (now < w.until && w.tile == router_tile) {
      return true;
    }
  }
  return false;
}

std::string FaultInjector::TraceString() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool FaultInjector::Exhausted(Cycle now) const {
  if (next_event_ < plan_.events.size()) {
    return false;
  }
  auto all_closed = [now](const std::vector<Window>& windows) {
    return std::all_of(windows.begin(), windows.end(),
                       [now](const Window& w) { return now >= w.until; });
  };
  return all_closed(drop_windows_) && all_closed(corrupt_windows_) &&
         all_closed(stall_windows_);
}

}  // namespace apiary
