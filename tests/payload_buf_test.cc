// Unit tests for PayloadBuf: the small-buffer tier (no allocation up to
// kInlineBytes), the pooled heap tier (chunk arena reuse), move semantics
// (chunk stealing — what lets payloads pass through the wire stack without
// copies), and the vector-compatible surface the call sites rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/payload_buf.h"

namespace apiary {
namespace {

// The arena is process-global; start each test from a clean ledger.
class PayloadBufTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PayloadBuf::SetArenaEnabled(true);
    PayloadBuf::TrimArena();
    PayloadBuf::ResetArenaStats();
  }
};

TEST_F(PayloadBufTest, SmallPayloadsStayInlineAndNeverTouchTheArena) {
  PayloadBuf buf;
  EXPECT_EQ(buf.capacity(), PayloadBuf::kInlineBytes);
  for (size_t i = 0; i < PayloadBuf::kInlineBytes; ++i) {
    buf.push_back(static_cast<uint8_t>(i));
  }
  EXPECT_EQ(buf.size(), PayloadBuf::kInlineBytes);
  EXPECT_EQ(buf.capacity(), PayloadBuf::kInlineBytes);
  EXPECT_EQ(buf[0], 0u);
  EXPECT_EQ(buf.back(), PayloadBuf::kInlineBytes - 1);
  EXPECT_EQ(PayloadBuf::ArenaStats().chunk_acquires, 0u);
}

TEST_F(PayloadBufTest, GrowingPastInlineMovesToHeapTierAndPreservesBytes) {
  PayloadBuf buf;
  std::vector<uint8_t> mirror;
  for (size_t i = 0; i < 200; ++i) {
    buf.push_back(static_cast<uint8_t>(i * 7));
    mirror.push_back(static_cast<uint8_t>(i * 7));
  }
  EXPECT_EQ(buf.size(), 200u);
  EXPECT_GT(buf.capacity(), PayloadBuf::kInlineBytes);
  EXPECT_TRUE(buf == mirror);
  EXPECT_GE(PayloadBuf::ArenaStats().chunk_acquires, 1u);
}

TEST_F(PayloadBufTest, ArenaReusesRetiredChunks) {
  {
    PayloadBuf buf(300, 0xAA);
    EXPECT_GE(PayloadBuf::ArenaStats().chunk_allocs, 1u);
  }
  const uint64_t allocs_after_first = PayloadBuf::ArenaStats().chunk_allocs;
  EXPECT_GE(PayloadBuf::ArenaStats().chunk_releases, 1u);
  EXPECT_GT(PayloadBuf::ArenaStats().freelist_bytes, 0u);

  // A second same-sized buffer is served from the freelist, not the heap.
  PayloadBuf again(300, 0xBB);
  EXPECT_GE(PayloadBuf::ArenaStats().chunk_reuses, 1u);
  EXPECT_EQ(PayloadBuf::ArenaStats().chunk_allocs, allocs_after_first);
}

TEST_F(PayloadBufTest, ClearKeepsBackingCapacityForReuse) {
  PayloadBuf buf(500, 0x01);
  const size_t cap = buf.capacity();
  const uint64_t acquires = PayloadBuf::ArenaStats().chunk_acquires;
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), cap);
  buf.resize(500, 0x02);
  EXPECT_EQ(PayloadBuf::ArenaStats().chunk_acquires, acquires);  // No new chunk.
  EXPECT_EQ(buf[499], 0x02);
}

TEST_F(PayloadBufTest, MoveStealsHeapChunk) {
  PayloadBuf src(1000, 0x5A);
  const uint8_t* backing = src.data();
  const uint64_t acquires = PayloadBuf::ArenaStats().chunk_acquires;

  PayloadBuf dst(std::move(src));
  EXPECT_EQ(dst.data(), backing);  // Pointer stolen, bytes not copied.
  EXPECT_EQ(dst.size(), 1000u);
  EXPECT_EQ(dst[999], 0x5A);
  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move) — spec'd state.
  EXPECT_EQ(src.capacity(), PayloadBuf::kInlineBytes);
  EXPECT_EQ(PayloadBuf::ArenaStats().chunk_acquires, acquires);

  // Move-assign releases the destination's old chunk back to the arena.
  PayloadBuf other(2000, 0x11);
  other = std::move(dst);
  EXPECT_EQ(other.data(), backing);
  EXPECT_GE(PayloadBuf::ArenaStats().chunk_releases, 1u);
}

TEST_F(PayloadBufTest, MoveOfInlineBufferCopiesIntoDestinationInline) {
  PayloadBuf src{1, 2, 3};
  PayloadBuf dst(std::move(src));
  EXPECT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst[2], 3u);
  EXPECT_EQ(dst.capacity(), PayloadBuf::kInlineBytes);
  EXPECT_EQ(PayloadBuf::ArenaStats().chunk_acquires, 0u);
}

TEST_F(PayloadBufTest, VectorCompatibleSurface) {
  const std::vector<uint8_t> v{9, 8, 7, 6};
  PayloadBuf buf(v);  // Explicit vector ctor.
  EXPECT_TRUE(buf == v);
  EXPECT_TRUE(v == buf);
  EXPECT_EQ(buf.ToVector(), v);

  buf.insert(buf.end(), {5, 4});
  buf.insert(buf.begin(), v.begin(), v.begin() + 1);  // Mid-buffer shift.
  EXPECT_EQ(buf.ToVector(), (std::vector<uint8_t>{9, 9, 8, 7, 6, 5, 4}));

  buf.insert(buf.begin() + 1, 2, 0xFF);  // Fill insert.
  EXPECT_EQ(buf.ToVector(), (std::vector<uint8_t>{9, 0xFF, 0xFF, 9, 8, 7, 6, 5, 4}));

  buf.assign(3, 0x42);
  EXPECT_EQ(buf.ToVector(), (std::vector<uint8_t>{0x42, 0x42, 0x42}));

  buf.assign(v.begin(), v.end());  // Range assign.
  EXPECT_TRUE(buf == v);

  buf = std::vector<uint8_t>{1};
  EXPECT_EQ(buf.size(), 1u);
  buf = {2, 3};
  EXPECT_EQ(buf.ToVector(), (std::vector<uint8_t>{2, 3}));
}

TEST_F(PayloadBufTest, CopyIsDeepAndIndependent) {
  PayloadBuf a(500, 0x33);
  PayloadBuf b(a);
  ASSERT_NE(a.data(), b.data());
  b[0] = 0x44;
  EXPECT_EQ(a[0], 0x33);
  EXPECT_TRUE(a != b);
  b[0] = 0x33;
  EXPECT_TRUE(a == b);
}

TEST_F(PayloadBufTest, DisabledArenaFallsBackToPlainHeap) {
  PayloadBuf::SetArenaEnabled(false);
  {
    PayloadBuf buf(300, 0x77);
    EXPECT_EQ(buf.size(), 300u);
    EXPECT_EQ(buf[299], 0x77);
  }
  // Straight new/delete: nothing parked for reuse.
  EXPECT_EQ(PayloadBuf::ArenaStats().freelist_bytes, 0u);
  EXPECT_EQ(PayloadBuf::ArenaStats().live_chunks, 0u);
  PayloadBuf::SetArenaEnabled(true);
}

TEST_F(PayloadBufTest, TrimFreesParkedChunks) {
  { PayloadBuf buf(4096, 0x01); }
  EXPECT_GT(PayloadBuf::ArenaStats().freelist_bytes, 0u);
  PayloadBuf::TrimArena();
  EXPECT_EQ(PayloadBuf::ArenaStats().freelist_bytes, 0u);
  EXPECT_EQ(PayloadBuf::ArenaStats().live_chunks, 0u);
}

}  // namespace
}  // namespace apiary
