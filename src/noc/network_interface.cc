#include "src/noc/network_interface.h"

namespace apiary {

NetworkInterface::NetworkInterface(TileId tile, Router* router, uint32_t inject_queue_flits,
                                   bool force_single_vc)
    : tile_(tile),
      router_(router),
      inject_queue_flits_(inject_queue_flits),
      force_single_vc_(force_single_vc) {}

uint32_t NetworkInterface::LogicCellCost() {
  // Packetization, reassembly and queue logic; roughly half a router.
  return 2000;
}

bool NetworkInterface::CanInject(uint32_t flits, Vc vc) const {
  return inject_queues_[static_cast<int>(vc)].size() + flits <= inject_queue_flits_;
}

bool NetworkInterface::Inject(std::shared_ptr<NocPacket> packet, Cycle now) {
  if (force_single_vc_) {
    packet->vc = Vc::kRequest;  // Single-VC ablation: everything shares VC0.
  }
  const uint32_t flits = FlitCount(*packet);
  if (!CanInject(flits, packet->vc)) {
    counters_.Add("ni.inject_backpressure");
    return false;
  }
  packet->inject_cycle = now;
  packet->checksum = PacketChecksum(packet->payload);
  auto& queue = inject_queues_[static_cast<int>(packet->vc)];
  for (uint32_t i = 0; i < flits; ++i) {
    queue.push_back(Flit{packet, i});
  }
  counters_.Add("ni.packets_injected");
  counters_.Add("ni.flits_injected", flits);
  return true;
}

void NetworkInterface::InjectCycle(Cycle now) {
  (void)now;
  // One flit per cycle onto the local port, round-robin across VCs.
  for (int i = 0; i < kNumVcs; ++i) {
    auto& queue = inject_queues_[(inject_rr_ + i) % kNumVcs];
    if (queue.empty()) {
      continue;
    }
    if (router_->AcceptFlit(kPortLocal, queue.front())) {
      queue.pop_front();
      inject_rr_ = (inject_rr_ + i + 1) % kNumVcs;
      return;
    }
  }
}

void NetworkInterface::EjectFlit(const Flit& flit, Cycle now) {
  counters_.Add("ni.flits_ejected");
  if (!flit.is_tail()) {
    return;
  }
  if (flit.packet->dropped) {
    // A link fault swallowed part of this packet in flight.
    counters_.Add("ni.packets_dropped_fault");
    return;
  }
  if (flit.packet->checksum != 0 &&
      flit.packet->checksum != PacketChecksum(flit.packet->payload)) {
    // Corruption is detected here, never silently consumed: the packet is
    // discarded and the loss surfaces as a counter (and, one layer up, as a
    // request timeout rather than a garbled message).
    counters_.Add("ni.checksum_drops");
    return;
  }
  latency_.Record(now - flit.packet->inject_cycle);
  counters_.Add("ni.packets_delivered");
  delivered_.push_back(flit.packet);
}

std::shared_ptr<NocPacket> NetworkInterface::Retrieve() {
  if (delivered_.empty()) {
    return nullptr;
  }
  auto packet = delivered_.front();
  delivered_.pop_front();
  return packet;
}

}  // namespace apiary
