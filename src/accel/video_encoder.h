// Video-encoding accelerator: the paper's Section 2 motivating workload
// ("customizing a video encoding service to accelerate part of a video
// processing pipeline").
//
// The encoder implements a real intra-frame codec on 8x8 blocks: integer
// DCT-II, quantization, zigzag scan and run-length entropy packing (the
// M-JPEG family's core loop). Compute time is modeled per block so replica
// throughput and pipeline experiments behave like a real fixed-function
// engine. The encoder can optionally forward its output to a next pipeline
// stage (e.g. the compressor) instead of replying to the requester.
#ifndef SRC_ACCEL_VIDEO_ENCODER_H_
#define SRC_ACCEL_VIDEO_ENCODER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

// --- Pure codec functions (unit-testable without a board). ---

// Encodes an 8-bit grayscale frame; returns the bitstream.
std::vector<uint8_t> EncodeFrame(const uint8_t* pixels, uint32_t width, uint32_t height,
                                 uint32_t quality = 50);

// Inverse transform for round-trip testing; returns pixels (width*height).
std::vector<uint8_t> DecodeFrame(const std::vector<uint8_t>& bitstream, uint32_t* width_out,
                                 uint32_t* height_out);
inline std::vector<uint8_t> DecodeFrame(const PayloadBuf& bitstream, uint32_t* width_out,
                                        uint32_t* height_out) {
  return DecodeFrame(bitstream.ToVector(), width_out, height_out);
}

class VideoEncoderAccelerator : public Accelerator {
 public:
  // `cycles_per_block` models the engine's per-8x8-block latency; a
  // pipelined DCT engine lands around 70-100 cycles per block.
  explicit VideoEncoderAccelerator(Cycle cycles_per_block = 80, uint32_t quality = 50)
      : cycles_per_block_(cycles_per_block), quality_(quality) {}

  // Pipeline composition: forward encoded output to this endpoint (with the
  // given opcode) instead of replying. Set during application wiring.
  void SetNextStage(CapRef endpoint, uint16_t opcode) {
    next_stage_ = endpoint;
    next_opcode_ = opcode;
  }

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "video_encoder"; }
  uint32_t LogicCellCost() const override { return 45000; }

  uint64_t frames_encoded() const { return frames_encoded_; }
  const CounterSet& counters() const { return counters_; }

 private:
  struct Job {
    Message request;
    std::vector<uint8_t> encoded;
    Cycle done_at;
  };

  Cycle cycles_per_block_;
  uint32_t quality_;
  CapRef next_stage_ = kInvalidCapRef;
  uint16_t next_opcode_ = 0;
  std::deque<Job> jobs_;
  Cycle engine_free_at_ = 0;
  uint64_t frames_encoded_ = 0;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_ACCEL_VIDEO_ENCODER_H_
