file(REMOVE_RECURSE
  "CMakeFiles/e4_noisy_neighbor.dir/e4_noisy_neighbor.cc.o"
  "CMakeFiles/e4_noisy_neighbor.dir/e4_noisy_neighbor.cc.o.d"
  "e4_noisy_neighbor"
  "e4_noisy_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_noisy_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
