// The top-level simulation driver: a single global clock domain plus a
// discrete-event queue.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/sim/clocked.h"
#include "src/sim/event_queue.h"
#include "src/sim/types.h"

namespace apiary {

class Simulator {
 public:
  // `frequency_mhz` maps cycles to wall time for reporting (default matches a
  // typical FPGA fabric clock).
  explicit Simulator(double frequency_mhz = 250.0) : frequency_mhz_(frequency_mhz) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a block to be ticked every cycle. The simulator does not own
  // the block; callers keep it alive for the duration of the run.
  void Register(Clocked* block);

  // Removes a previously registered block (e.g. a reconfigured-away
  // accelerator). Safe to call during a tick; removal takes effect before
  // the next cycle.
  void Unregister(Clocked* block);

  // Schedules a timed callback on the event queue.
  void ScheduleAt(Cycle when, EventQueue::Callback cb) {
    events_.ScheduleAt(when, std::move(cb));
  }
  void ScheduleAfter(Cycle delay, EventQueue::Callback cb) {
    events_.ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs `cycles` additional cycles.
  void Run(Cycle cycles);

  // Runs until `pred` returns true (checked once per cycle) or `max_cycles`
  // additional cycles have elapsed. Returns true if `pred` fired.
  bool RunUntil(const std::function<bool()>& pred, Cycle max_cycles);

  Cycle now() const { return now_; }
  double frequency_mhz() const { return frequency_mhz_; }

  // Converts a cycle count to nanoseconds at the configured frequency.
  double CyclesToNs(Cycle cycles) const {
    return static_cast<double>(cycles) * 1000.0 / frequency_mhz_;
  }

 private:
  void Step();
  void ApplyPendingRemovals();

  double frequency_mhz_;
  Cycle now_ = 0;
  std::vector<Clocked*> blocks_;
  std::vector<Clocked*> pending_removals_;
  EventQueue events_;
};

}  // namespace apiary

#endif  // SRC_SIM_SIMULATOR_H_
