#include "src/mem/interleaved_memory.h"

#include <algorithm>
#include <cstring>

namespace apiary {

InterleavedMemory::InterleavedMemory(DramConfig per_channel, uint32_t channels,
                                     uint64_t stripe_bytes)
    : stripe_bytes_(stripe_bytes),
      capacity_(static_cast<uint64_t>(channels) * per_channel.capacity_bytes) {
  for (uint32_t c = 0; c < channels; ++c) {
    channels_.push_back(std::make_unique<MemoryController>(per_channel));
  }
}

std::vector<InterleavedMemory::Chunk> InterleavedMemory::Split(uint64_t addr,
                                                               uint64_t len) const {
  std::vector<Chunk> chunks;
  const uint32_t n = num_channels();
  uint64_t offset = 0;
  while (offset < len) {
    const uint64_t global = addr + offset;
    const uint64_t stripe_index = global / stripe_bytes_;
    const uint32_t channel = static_cast<uint32_t>(stripe_index % n);
    const uint64_t local =
        (stripe_index / n) * stripe_bytes_ + global % stripe_bytes_;
    const uint64_t room = stripe_bytes_ - global % stripe_bytes_;
    const uint64_t chunk_len = std::min(room, len - offset);
    chunks.push_back(Chunk{channel, local, offset, chunk_len});
    offset += chunk_len;
  }
  return chunks;
}

bool InterleavedMemory::SubmitRead(uint64_t addr, std::span<uint8_t> out,
                                   std::function<void(Cycle)> done) {
  if (!InBounds(addr, out.size())) {
    return false;
  }
  auto op = std::make_shared<Op>();
  op->is_write = false;
  op->addr = addr;
  op->out = out;
  op->done = std::move(done);
  op->chunks = Split(addr, out.size());
  op->remaining = std::make_shared<size_t>(op->chunks.size());
  pending_.push_back(std::move(op));
  counters_.Add("hbm.reads");
  return true;
}

bool InterleavedMemory::SubmitWrite(uint64_t addr, std::span<const uint8_t> data,
                                    std::function<void(Cycle)> done) {
  if (!InBounds(addr, data.size())) {
    return false;
  }
  auto op = std::make_shared<Op>();
  op->is_write = true;
  op->addr = addr;
  op->data.assign(data.begin(), data.end());
  op->done = std::move(done);
  op->chunks = Split(addr, data.size());
  op->remaining = std::make_shared<size_t>(op->chunks.size());
  pending_.push_back(std::move(op));
  counters_.Add("hbm.writes");
  return true;
}

BitFlipResult InterleavedMemory::InjectBitFlip(uint64_t addr, uint32_t bit) {
  if (!InBounds(addr, 1)) {
    return BitFlipResult::kOutOfRange;
  }
  const Chunk chunk = Split(addr, 1).front();
  return channels_[chunk.channel]->InjectBitFlip(chunk.local_addr, bit);
}

void InterleavedMemory::SetEccEnabled(bool enabled) {
  for (auto& channel : channels_) {
    channel->SetEccEnabled(enabled);
  }
}

void InterleavedMemory::Tick(Cycle now) {
  // Issue as many pending chunks as the channels will take this cycle; ops
  // issue in order but their chunks complete channel-parallel.
  for (auto& op : pending_) {
    while (op->next_chunk < op->chunks.size()) {
      const Chunk& chunk = op->chunks[op->next_chunk];
      MemoryController& mc = *channels_[chunk.channel];
      auto op_ref = op;
      auto on_done = [op_ref](Cycle when) {
        if (--*op_ref->remaining == 0 && op_ref->done) {
          op_ref->done(when);
        }
      };
      bool accepted;
      if (op->is_write) {
        accepted = mc.SubmitWrite(
            chunk.local_addr,
            std::span<const uint8_t>(op->data.data() + chunk.global_offset, chunk.len),
            on_done);
      } else {
        accepted = mc.SubmitRead(
            chunk.local_addr,
            std::span<uint8_t>(op->out.data() + chunk.global_offset, chunk.len), on_done);
      }
      if (!accepted) {
        counters_.Add("hbm.channel_backpressure");
        break;
      }
      ++op->next_chunk;
    }
    if (op->next_chunk < op->chunks.size()) {
      break;  // Preserve inter-op issue order on the stalled channel.
    }
  }
  // Drop fully issued ops from the front (completion is tracked by the
  // shared countdown, so the queue only gates issue order).
  while (!pending_.empty() && pending_.front()->next_chunk == pending_.front()->chunks.size()) {
    pending_.pop_front();
  }
  for (auto& channel : channels_) {
    channel->Tick(now);
  }
}

void InterleavedMemory::DebugWrite(uint64_t addr, std::span<const uint8_t> data) {
  for (const Chunk& chunk : Split(addr, data.size())) {
    channels_[chunk.channel]->DebugWrite(
        chunk.local_addr,
        std::span<const uint8_t>(data.data() + chunk.global_offset, chunk.len));
  }
}

std::vector<uint8_t> InterleavedMemory::DebugRead(uint64_t addr, uint64_t len) const {
  if (!InBounds(addr, len)) {
    return {};
  }
  std::vector<uint8_t> out(len);
  for (const Chunk& chunk : Split(addr, len)) {
    const auto part = channels_[chunk.channel]->DebugRead(chunk.local_addr, chunk.len);
    std::memcpy(out.data() + chunk.global_offset, part.data(), chunk.len);
  }
  return out;
}

}  // namespace apiary
