// 2-D mesh NoC: owns the routers and network interfaces for a board and
// orchestrates their per-cycle phases.
//
// Modern FPGAs offer hardened NoCs (Versal, Agilex — Section 4.3); this
// class models such a NoC at flit granularity so the monitor layer above it
// experiences realistic latency, bandwidth and contention.
#ifndef SRC_NOC_MESH_H_
#define SRC_NOC_MESH_H_

#include <memory>
#include <vector>

#include "src/noc/fault_hooks.h"
#include "src/noc/network_interface.h"
#include "src/noc/packet.h"
#include "src/noc/packet_pool.h"
#include "src/noc/router.h"
#include "src/sim/clocked.h"
#include "src/sim/sim_context.h"

namespace apiary {

struct MeshConfig {
  uint32_t width = 4;
  uint32_t height = 4;
  uint32_t router_buffer_depth = 8;    // Flits per input VC buffer.
  uint32_t ni_inject_queue_flits = 512;  // Must hold the largest message.
  // Ablation knob: force all traffic onto one VC (responses share the
  // request channel), reproducing the head-of-line blocking the two-VC
  // design exists to avoid (Section 4.5).
  bool force_single_vc = false;
};

class Mesh : public Clocked {
 public:
  // `context` selects the packet pool: the domain-local pool of the owning
  // simulator's SimContext when given (the Board constructor path), or a
  // mesh-private pool when null (standalone meshes in tests/benches).
  // Either way there is no process-wide pool to contend on.
  explicit Mesh(MeshConfig config, SimContext* context = nullptr);

  void Tick(Cycle now) override;
  // Quiescent when no router buffers a flit, no NI has flits queued for
  // injection, and the installed fault model (if any) has no per-cycle mesh
  // work (open stall windows). Monitors re-arm the mesh by enqueuing into an
  // NI during an executed cycle; the next boundary poll sees the flits.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "mesh"; }

  uint32_t width() const { return config_.width; }
  uint32_t height() const { return config_.height; }
  uint32_t num_tiles() const { return config_.width * config_.height; }

  NetworkInterface& ni(TileId tile) { return *nis_[tile]; }
  const NetworkInterface& ni(TileId tile) const { return *nis_[tile]; }
  Router& router(TileId tile) { return *routers_[tile]; }

  // The pool every packet injected into this mesh is drawn from (monitors
  // reach it through their NI). Bench/test ablations toggle it here.
  PacketPool& pool() { return *pool_; }
  const PacketPool& pool() const { return *pool_; }

  // Installs (or clears, with nullptr) the fault model on every router.
  void SetFaultModel(NocFaultModel* model);

  // Configures a weighted-arbitration class weight on every router (see
  // Router::SetClassWeight). Used by the kernel to give tenants
  // proportional NoC bandwidth shares.
  void SetArbClassWeight(uint8_t cls, uint32_t weight);

  // Minimal hop count between two tiles under XY routing.
  uint32_t Hops(TileId a, TileId b) const;

  // Aggregate statistics across all routers/NIs.
  CounterSet AggregateCounters() const;
  Histogram AggregateLatency() const;
  uint64_t TotalFlitsRouted() const;

  // Total logic-cell cost of the NoC fabric (routers + NIs).
  uint64_t LogicCellCost() const;

 private:
  MeshConfig config_;
  std::unique_ptr<PacketPool> owned_pool_;  // Set only for standalone meshes.
  PacketPool* pool_;                        // Context slot pool or owned_pool_.
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  NocFaultModel* fault_model_ = nullptr;
};

}  // namespace apiary

#endif  // SRC_NOC_MESH_H_
