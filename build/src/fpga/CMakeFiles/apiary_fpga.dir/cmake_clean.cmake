file(REMOVE_RECURSE
  "CMakeFiles/apiary_fpga.dir/board.cc.o"
  "CMakeFiles/apiary_fpga.dir/board.cc.o.d"
  "CMakeFiles/apiary_fpga.dir/ethernet.cc.o"
  "CMakeFiles/apiary_fpga.dir/ethernet.cc.o.d"
  "CMakeFiles/apiary_fpga.dir/part_catalog.cc.o"
  "CMakeFiles/apiary_fpga.dir/part_catalog.cc.o.d"
  "CMakeFiles/apiary_fpga.dir/pcie.cc.o"
  "CMakeFiles/apiary_fpga.dir/pcie.cc.o.d"
  "CMakeFiles/apiary_fpga.dir/resource_model.cc.o"
  "CMakeFiles/apiary_fpga.dir/resource_model.cc.o.d"
  "libapiary_fpga.a"
  "libapiary_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
