# Empty compiler generated dependencies file for e4_noisy_neighbor.
# This may be replaced when dependencies are built.
