// CLI golden fixture: one finding, sorted after src/noc/b.cc.
namespace apiary {

int g_total = 0;

}  // namespace apiary
