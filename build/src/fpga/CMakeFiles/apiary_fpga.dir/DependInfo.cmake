
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/board.cc" "src/fpga/CMakeFiles/apiary_fpga.dir/board.cc.o" "gcc" "src/fpga/CMakeFiles/apiary_fpga.dir/board.cc.o.d"
  "/root/repo/src/fpga/ethernet.cc" "src/fpga/CMakeFiles/apiary_fpga.dir/ethernet.cc.o" "gcc" "src/fpga/CMakeFiles/apiary_fpga.dir/ethernet.cc.o.d"
  "/root/repo/src/fpga/part_catalog.cc" "src/fpga/CMakeFiles/apiary_fpga.dir/part_catalog.cc.o" "gcc" "src/fpga/CMakeFiles/apiary_fpga.dir/part_catalog.cc.o.d"
  "/root/repo/src/fpga/pcie.cc" "src/fpga/CMakeFiles/apiary_fpga.dir/pcie.cc.o" "gcc" "src/fpga/CMakeFiles/apiary_fpga.dir/pcie.cc.o.d"
  "/root/repo/src/fpga/resource_model.cc" "src/fpga/CMakeFiles/apiary_fpga.dir/resource_model.cc.o" "gcc" "src/fpga/CMakeFiles/apiary_fpga.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/apiary_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apiary_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
