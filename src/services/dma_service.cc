#include "src/services/dma_service.h"

#include <algorithm>

namespace apiary {

void DmaService::ReplyError(const Message& msg, TileApi& api, MsgStatus status) {
  Message err;
  err.opcode = msg.opcode;
  err.status = status;
  counters_.Add("dma.errors");
  api.Reply(msg, std::move(err));
}

void DmaService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (msg.opcode != kOpDmaCopy) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  if (msg.payload.size() < 20) {
    ReplyError(msg, api, MsgStatus::kBadRequest);
    return;
  }
  // Both segments must have been presented as capabilities: the monitor
  // attached grant (source) and grant2 (destination).
  if (!msg.grant.valid || !msg.grant.can_read) {
    counters_.Add("dma.no_src_grant");
    ReplyError(msg, api, MsgStatus::kNoCapability);
    return;
  }
  if (!msg.grant2.valid || !msg.grant2.can_write) {
    counters_.Add("dma.no_dst_grant");
    ReplyError(msg, api, MsgStatus::kNoCapability);
    return;
  }
  const uint64_t src_offset = GetU64(msg.payload, 0);
  const uint64_t dst_offset = GetU64(msg.payload, 8);
  const uint32_t len = GetU32(msg.payload, 16);
  if (len == 0 || src_offset >= msg.grant.segment.length ||
      len > msg.grant.segment.length - src_offset ||
      dst_offset >= msg.grant2.segment.length ||
      len > msg.grant2.segment.length - dst_offset) {
    counters_.Add("dma.seg_faults");
    ReplyError(msg, api, MsgStatus::kSegFault);
    return;
  }
  auto job = std::make_shared<Job>();
  job->request = msg;
  job->src_addr = msg.grant.segment.base + src_offset;
  job->dst_addr = msg.grant2.segment.base + dst_offset;
  job->total = len;
  job->staging.resize(len);
  jobs_.push_back(std::move(job));
  counters_.Add("dma.copies");
  counters_.Add("dma.bytes", len);
  (void)api;
}

void DmaService::Tick(TileApi& api) {
  for (auto& job : jobs_) {
    // Issue chunked reads; each completed read chains a write of the chunk.
    while (job->read_issued < job->total) {
      const uint32_t offset = job->read_issued;
      const uint32_t chunk = std::min(chunk_bytes_, job->total - offset);
      auto span = std::span<uint8_t>(job->staging.data() + offset, chunk);
      auto job_ref = job;
      const bool ok = memory_->SubmitRead(
          job->src_addr + offset, span, [this, job_ref, offset, chunk](Cycle) {
            auto data = std::span<const uint8_t>(job_ref->staging.data() + offset, chunk);
            const bool accepted = memory_->SubmitWrite(
                job_ref->dst_addr + offset, data,
                [job_ref, chunk](Cycle) { job_ref->written_done += chunk; });
            if (!accepted) {
              // Bank queue full: account it as pending and let Tick retry by
              // leaving written_done short; mark for rewrite.
              job_ref->rewrites.push_back({offset, chunk});
            }
          });
      if (!ok) {
        break;  // DRAM backpressure: resume next cycle.
      }
      job->read_issued += chunk;
    }
    // Retry any writes that hit bank backpressure.
    while (!job->rewrites.empty()) {
      auto [offset, chunk] = job->rewrites.front();
      auto data = std::span<const uint8_t>(job->staging.data() + offset, chunk);
      auto job_ref = job;
      if (!memory_->SubmitWrite(job->dst_addr + offset, data,
                                [job_ref, chunk = chunk](Cycle) {
                                  job_ref->written_done += chunk;
                                })) {
        break;
      }
      job->rewrites.pop_front();
    }
  }
  // Complete jobs in FIFO order once fully written.
  while (!jobs_.empty() && jobs_.front()->written_done >= jobs_.front()->total) {
    auto job = jobs_.front();
    jobs_.pop_front();
    Message reply;
    reply.opcode = kOpDmaCopy;
    PutU32(reply.payload, job->total);
    if (!api.Reply(job->request, std::move(reply)).ok()) {
      counters_.Add("dma.reply_failures");
    }
    counters_.Add("dma.completions");
  }
}

}  // namespace apiary
