// FaultInjector: executes a FaultPlan against a live board.
//
// One Clocked block that fires the plan's timed events into the layers they
// target (NoC links/routers, DRAM cells, the external ethernet fabric,
// accelerator logic) and answers the NoC's per-traversal fault queries for
// windowed link faults. All probabilistic decisions flow through one Rng
// seeded from the plan, so a campaign replays byte-identically.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/fault/fault_plan.h"
#include "src/fpga/ethernet.h"
#include "src/mem/memory_backend.h"
#include "src/noc/fault_hooks.h"
#include "src/noc/mesh.h"
#include "src/sim/clocked.h"
#include "src/sim/random.h"
#include "src/stats/summary.h"

namespace apiary {

// The board surfaces the injector reaches into. Null members disable the
// corresponding fault kinds (events targeting them are counted as skipped).
struct FaultHooks {
  ApiaryOs* os = nullptr;          // kAccelCrash / kAccelWedge.
  Mesh* mesh = nullptr;            // Link + router faults (hooked automatically).
  MemoryBackend* memory = nullptr; // kDramBitFlip.
  ExternalNetwork* network = nullptr;  // kEthLossBurst.
};

class FaultInjector : public Clocked, public NocFaultModel {
 public:
  // Sorts the plan and self-registers: with the simulator (via hooks.os) as
  // a clocked block, and with the mesh as its fault model.
  FaultInjector(FaultPlan plan, FaultHooks hooks);
  ~FaultInjector() override;

  void Tick(Cycle now) override;
  // Skip clamping: the next plan event must fire at exactly its scheduled
  // cycle (Record stamps `now`), and every open window bounds the jump at
  // its closing cycle so window-gated predicates (Exhausted, RouterStalled)
  // flip at identical cycles with and without skipping.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "fault_injector"; }

  // NocFaultModel.
  bool OnLinkTraverse(TileId router_tile, const Flit& flit, Cycle now) override;
  bool RouterStalled(TileId router_tile, Cycle now) override;
  // The mesh has per-cycle fault work (stall counters accrue on stalled
  // routers) only while a stall window is open.
  [[nodiscard]] Cycle NextMeshActivity(Cycle now) const override;
  // Quiet for express corridors iff no drop/corrupt/stall window is open:
  // with every window closed, OnLinkTraverse draws nothing and mutates
  // nothing, so the corridor's skipped traversal checks are byte-exact.
  [[nodiscard]] bool NocQuiet(Cycle now) const override;

  // Sharded link-fault mode, for boards driven by the ParallelSimulator:
  // OnLinkTraverse runs inside shard phases — concurrently across shards —
  // so the single Rng/CounterSet would race. Sharded mode gives every tile
  // its own fault stream (seeded from the plan seed and the tile id) and
  // its own drop/corrupt tally cells; Tick (root phase, barrier-separated
  // from all traversals) folds the cells into counters(). Per-tile draw
  // order is the tile's own traversal order, which the sharded schedule
  // fixes — so campaigns replay byte-identically for any thread count.
  // NOTE: the sharded streams differ from the serial single-stream draws;
  // compare sharded runs only against other sharded runs.
  void EnableShardedLinkFaults(uint32_t num_tiles);
  bool sharded_link_faults() const { return !tile_states_.empty(); }

  // fault.injected / fault.<kind> / fault.link_drops_applied / ... plus the
  // per-result DRAM counters (fault.dram_corrupted / fault.dram_ecc_corrected).
  const CounterSet& counters() const { return counters_; }

  // Human-readable, deterministic record of every fault applied (bounded).
  std::string TraceString() const;

  // True once every plan event has fired and every window has closed.
  bool Exhausted(Cycle now) const;

 private:
  struct Window {
    TileId tile;  // kInvalidTile = any router.
    Cycle until;
    double rate;
  };

  // One tile's private fault stream + tally cells (sharded mode). Written
  // only by the worker that owns the tile's shard; cache-line sized so two
  // shards' cells never share a line.
  struct alignas(64) TileFaultState {
    Rng rng;
    uint64_t drops = 0;
    uint64_t corruptions = 0;
  };

  bool WindowHit(const std::vector<Window>& windows, TileId router_tile, Cycle now);
  // True with probability `rate`, drawn from the tile's stream in sharded
  // mode and the plan stream otherwise.
  bool DrawHit(TileId router_tile, double rate);
  void Fire(const FaultEvent& event, Cycle now);
  void Record(const FaultEvent& event, Cycle now, const std::string& note);

  FaultPlan plan_;
  FaultHooks hooks_;
  size_t next_event_ = 0;
  Rng rng_;
  std::vector<Window> drop_windows_;
  std::vector<Window> corrupt_windows_;
  std::vector<Window> stall_windows_;
  std::vector<TileFaultState> tile_states_;  // Empty = serial single-stream mode.
  CounterSet counters_;
  std::vector<std::string> trace_;
};

}  // namespace apiary

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
