// Tests for the accelerator library: the video codec, LZ compressor, CRC32,
// echo, the KV store (full IPC chain through the memory service), and the
// misbehaving accelerators used by the isolation experiments.
#include <gtest/gtest.h>

#include <cmath>

#include "src/accel/checksum.h"
#include "src/accel/compressor.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/kv_store.h"
#include "src/accel/video_encoder.h"
#include "src/core/service_ids.h"
#include "src/services/memory_service.h"
#include "src/workload/frame_source.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

double Psnr(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  if (a.size() != b.size() || a.empty()) {
    return 0.0;
  }
  double mse = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse == 0) {
    return 99.0;
  }
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

// ---------------------------------------------------------------------
// Pure codec functions.
// ---------------------------------------------------------------------

TEST(VideoCodecTest, EncodeDecodeRoundTripDimensions) {
  const auto pixels = GenerateFrame(64, 48, 1, 0);
  const auto encoded = EncodeFrame(pixels.data(), 64, 48, 75);
  uint32_t w = 0;
  uint32_t h = 0;
  const auto decoded = DecodeFrame(encoded, &w, &h);
  EXPECT_EQ(w, 64u);
  EXPECT_EQ(h, 48u);
  EXPECT_EQ(decoded.size(), pixels.size());
}

class VideoQualityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VideoQualityTest, PsnrReasonableForQuality) {
  const uint32_t quality = GetParam();
  const auto pixels = GenerateFrame(64, 64, 7, 3);
  const auto encoded = EncodeFrame(pixels.data(), 64, 64, quality);
  const auto decoded = DecodeFrame(encoded, nullptr, nullptr);
  ASSERT_EQ(decoded.size(), pixels.size());
  const double psnr = Psnr(pixels, decoded);
  // Even at low quality a DCT codec should beat 22 dB on synthetic scenes;
  // at high quality it should be visually lossless (> 35 dB).
  EXPECT_GT(psnr, quality >= 75 ? 35.0 : 22.0) << "quality=" << quality;
}

INSTANTIATE_TEST_SUITE_P(Qualities, VideoQualityTest, ::testing::Values(25, 50, 75, 95));

TEST(VideoCodecTest, HigherQualityMeansBiggerBitstream) {
  const auto pixels = GenerateFrame(64, 64, 7, 3);
  const auto low = EncodeFrame(pixels.data(), 64, 64, 20);
  const auto high = EncodeFrame(pixels.data(), 64, 64, 90);
  EXPECT_GT(high.size(), low.size());
}

TEST(VideoCodecTest, CompressesFlatFrames) {
  // A constant frame should compress dramatically below raw size.
  std::vector<uint8_t> flat(64 * 64, 128);
  const auto encoded = EncodeFrame(flat.data(), 64, 64, 50);
  EXPECT_LT(encoded.size(), flat.size() / 8);
  const auto decoded = DecodeFrame(encoded, nullptr, nullptr);
  EXPECT_GT(Psnr(flat, decoded), 45.0);
}

TEST(VideoCodecTest, NonMultipleOf8Dimensions) {
  const auto pixels = GenerateFrame(30, 22, 5, 0);
  const auto encoded = EncodeFrame(pixels.data(), 30, 22, 60);
  uint32_t w = 0;
  uint32_t h = 0;
  const auto decoded = DecodeFrame(encoded, &w, &h);
  EXPECT_EQ(w, 30u);
  EXPECT_EQ(h, 22u);
  EXPECT_GT(Psnr(pixels, decoded), 22.0);
}

TEST(VideoCodecTest, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodeFrame(std::vector<uint8_t>{}, nullptr, nullptr).empty());
  EXPECT_TRUE(DecodeFrame(std::vector<uint8_t>{1, 2, 3, 4, 5}, nullptr, nullptr).empty());
}

TEST(LzTest, RoundTripStructuredData) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 100; ++i) {
    const char* chunk = "the quick brown fox jumps over the lazy dog. ";
    input.insert(input.end(), chunk, chunk + 46);
  }
  const auto compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 3);  // Repetitive: big wins.
  EXPECT_EQ(LzDecompress(compressed), input);
}

class LzRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzRoundTripTest, RandomAndMixedDataRoundTrips) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint8_t> input(rng.NextBelow(5000));
    // Mix random bytes with repeated runs to exercise both token paths.
    size_t i = 0;
    while (i < input.size()) {
      if (rng.NextBool(0.3)) {
        const size_t run = std::min(input.size() - i, rng.NextInRange(4, 64));
        const uint8_t b = static_cast<uint8_t>(rng.NextBelow(4));
        for (size_t k = 0; k < run; ++k) {
          input[i++] = b;
        }
      } else {
        input[i++] = static_cast<uint8_t>(rng.NextBelow(256));
      }
    }
    const auto compressed = LzCompress(input);
    EXPECT_EQ(LzDecompress(compressed), input) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzRoundTripTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(LzTest, EmptyInput) {
  const auto compressed = LzCompress(std::vector<uint8_t>{});
  EXPECT_EQ(LzDecompress(compressed), std::vector<uint8_t>{});
}

TEST(LzTest, IncompressibleDataSurvives) {
  Rng rng(99);
  std::vector<uint8_t> input(4096);
  for (auto& b : input) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  const auto compressed = LzCompress(input);
  EXPECT_EQ(LzDecompress(compressed), input);
}

TEST(LzTest, DecompressRejectsCorruptStreams) {
  EXPECT_TRUE(LzDecompress(std::vector<uint8_t>{}).empty());
  // Valid header claiming 100 bytes but bogus token stream.
  std::vector<uint8_t> bogus = {100, 0, 0, 0, 0xee};
  EXPECT_TRUE(LzDecompress(bogus).empty());
  // Match referencing before the start of output.
  std::vector<uint8_t> bad_match = {4, 0, 0, 0, 0x01, 4, 10, 0};
  EXPECT_TRUE(LzDecompress(bad_match).empty());
}

TEST(Crc32Test, KnownVectors) {
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(s.data()), s.size())),
            0xcbf43926u);  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32(std::span<const uint8_t>()), 0u);
}

TEST(Crc32Test, SensitiveToSingleBit) {
  std::vector<uint8_t> a(100, 0);
  std::vector<uint8_t> b = a;
  b[50] ^= 1;
  EXPECT_NE(Crc32(a), Crc32(b));
}

// ---------------------------------------------------------------------
// Accelerators on a live board.
// ---------------------------------------------------------------------

TEST(EchoAcceleratorTest, EchoesWithServiceDelay) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("a");
  auto* echo = new EchoAccelerator(100);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  Message msg;
  msg.opcode = kOpEcho;
  msg.payload = {1, 2, 3};
  probe->EnqueueSend(msg, cap);
  const Cycle start = tb.sim.now();
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].payload, msg.payload);
  EXPECT_GE(tb.sim.now() - start, 100u);  // Service time respected.
}

TEST(VideoEncoderAcceleratorTest, EncodesFramesOverMessages) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("video");
  auto* enc = new VideoEncoderAccelerator(10, 60);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(enc), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);

  const auto pixels = GenerateFrame(32, 32, 1, 0);
  Message msg;
  msg.opcode = kOpEncodeFrame;
  msg.payload = FrameToRequestPayload(32, 32, pixels);
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  const auto decoded = DecodeFrame(probe->received[0].payload, nullptr, nullptr);
  EXPECT_GT(Psnr(pixels, decoded), 22.0);
  EXPECT_EQ(enc->frames_encoded(), 1u);
}

TEST(VideoEncoderAcceleratorTest, MalformedFrameRejected) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("video");
  auto* enc = new VideoEncoderAccelerator();
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(enc), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  Message msg;
  msg.opcode = kOpEncodeFrame;
  PutU32(msg.payload, 1000);
  PutU32(msg.payload, 1000);  // Claims 1M pixels, provides none.
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kBadRequest);
}

TEST(CompressorAcceleratorTest, CompressDecompressOverMessages) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("z");
  auto* comp = new CompressorAccelerator(16);
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(comp), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);

  std::vector<uint8_t> data;
  for (int i = 0; i < 50; ++i) {
    data.insert(data.end(), {'a', 'b', 'a', 'b', 'a', 'b', 'c', 'd'});
  }
  Message msg;
  msg.opcode = kOpCompress;
  msg.payload = data;
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  const auto compressed = probe->received[0].payload;
  EXPECT_LT(compressed.size(), data.size());
  probe->received.clear();

  Message back;
  back.opcode = kOpDecompress;
  back.payload = compressed;
  probe->EnqueueSend(back, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 100000));
  EXPECT_EQ(probe->received[0].payload, data);
}

TEST(ChecksumAcceleratorTest, MatchesPureFunction) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("crc");
  auto* crc = new ChecksumAccelerator();
  ServiceId svc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(crc), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  Message msg;
  msg.opcode = kOpChecksum;
  msg.payload = {'h', 'i', '!', 0, 255};
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(GetU32(probe->received[0].payload, 0), Crc32(msg.payload));
}

// KV fixture: memory service + KV store + probe client.
struct KvFixture {
  explicit KvFixture(TestBoard& tb) : board(tb) {
    tb.os.DeployService(kMemoryService,
                        std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
    app = tb.os.CreateApp("kv");
    kv = new KvStoreAccelerator(1 << 16, 1024);
    kv_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &kv_svc);
    (void)tb.os.GrantSendToService(kv_tile, kMemoryService);
    probe = new ProbeAccelerator();
    probe_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    cap = tb.os.GrantSendToService(probe_tile, kv_svc);
    // Let the KV provision its value log.
    tb.sim.RunUntil([&] { return kv->ready(); }, 20000);
  }

  TestBoard& board;
  AppId app = kInvalidApp;
  KvStoreAccelerator* kv = nullptr;
  ProbeAccelerator* probe = nullptr;
  ServiceId kv_svc = 0;
  TileId kv_tile = kInvalidTile;
  TileId probe_tile = kInvalidTile;
  CapRef cap = kInvalidCapRef;
};

TEST(KvStoreTest, PutGetDeleteLifecycle) {
  TestBoard tb;
  KvFixture fx(tb);
  ASSERT_TRUE(fx.kv->ready());

  Message put;
  put.opcode = kOpKvPut;
  const std::vector<uint8_t> value = {9, 8, 7, 6};
  put.payload = MakeKvPutPayload("alpha", value);
  fx.probe->EnqueueSend(put, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  fx.probe->received.clear();

  Message get;
  get.opcode = kOpKvGet;
  get.payload = MakeKvGetPayload("alpha");
  fx.probe->EnqueueSend(get, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(fx.probe->received[0].payload, value);
  fx.probe->received.clear();

  Message del;
  del.opcode = kOpKvDelete;
  del.payload = MakeKvGetPayload("alpha");
  fx.probe->EnqueueSend(del, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  fx.probe->received.clear();

  Message get2;
  get2.opcode = kOpKvGet;
  get2.payload = MakeKvGetPayload("alpha");
  fx.probe->EnqueueSend(get2, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNotFound);
}

TEST(KvStoreTest, GetMissingKeyNotFound) {
  TestBoard tb;
  KvFixture fx(tb);
  Message get;
  get.opcode = kOpKvGet;
  get.payload = MakeKvGetPayload("never-put");
  fx.probe->EnqueueSend(get, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kNotFound);
}

TEST(KvStoreTest, OverwriteReturnsLatestValue) {
  TestBoard tb;
  KvFixture fx(tb);
  for (uint8_t round = 1; round <= 3; ++round) {
    Message put;
    put.opcode = kOpKvPut;
    put.payload = MakeKvPutPayload("k", {round, round});
    fx.probe->EnqueueSend(put, fx.cap);
    ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
    fx.probe->received.clear();
  }
  Message get;
  get.opcode = kOpKvGet;
  get.payload = MakeKvGetPayload("k");
  fx.probe->EnqueueSend(get, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].payload, (std::vector<uint8_t>{3, 3}));
}

TEST(KvStoreTest, LogExhaustionReportsNoMemory) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(/*value_log_bytes=*/256, 1024);
  ServiceId svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &svc);
  (void)tb.os.GrantSendToService(kt, kMemoryService);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  tb.sim.RunUntil([&] { return kv->ready(); }, 20000);

  Message put;
  put.opcode = kOpKvPut;
  put.payload = MakeKvPutPayload("big", std::vector<uint8_t>(300, 1));
  probe->EnqueueSend(put, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 50000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kNoMemory);
}

TEST(KvStoreTest, StateSurvivesPreemption) {
  TestBoard tb;
  KvFixture fx(tb);
  Message put;
  put.opcode = kOpKvPut;
  put.payload = MakeKvPutPayload("persist", {42});
  fx.probe->EnqueueSend(put, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  fx.probe->received.clear();

  // Preempt-swap the KV store with a fresh instance: the externalized state
  // (index + capability refs) must carry over.
  auto* fresh = new KvStoreAccelerator(1 << 16, 1024);
  ASSERT_TRUE(tb.os.PreemptSwap(fx.kv_tile, std::unique_ptr<Accelerator>(fresh)));
  EXPECT_EQ(fresh->index_size(), 1u);

  Message get;
  get.opcode = kOpKvGet;
  get.payload = MakeKvGetPayload("persist");
  fx.probe->EnqueueSend(get, fx.cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !fx.probe->received.empty(); }, 50000));
  EXPECT_EQ(fx.probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(fx.probe->received[0].payload, (std::vector<uint8_t>{42}));
}

// ---------------------------------------------------------------------
// Misbehaving accelerators.
// ---------------------------------------------------------------------

TEST(FaultyTest, FlooderGetsRateLimited) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("bad");
  auto* victim = new EchoAccelerator(0);
  ServiceId vsvc = 0;
  tb.os.Deploy(app, std::unique_ptr<Accelerator>(victim), &vsvc);
  auto* flooder = new FlooderAccelerator(kInvalidCapRef, 128);
  const TileId ft = tb.os.Deploy(app, std::unique_ptr<Accelerator>(flooder));
  flooder->SetVictim(tb.os.GrantSendToService(ft, vsvc));
  tb.os.SetRateLimit(ft, /*flits_per_1k=*/100, /*burst=*/16);
  tb.sim.Run(10000);
  EXPECT_GT(flooder->rate_limited(), 0u);
  // Sustained throughput ~0.1 flits/cycle; each message is 7 flits, so at
  // most ~150 messages in 10k cycles (plus burst).
  EXPECT_LT(flooder->sent(), 200u);
}

TEST(FaultyTest, SnooperGainsNothing) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId victim_app = tb.os.CreateApp("victim");
  auto* victim = new ProbeAccelerator();
  tb.os.Deploy(victim_app, std::unique_ptr<Accelerator>(victim));
  AppId bad_app = tb.os.CreateApp("bad");
  auto* snoop = new SnooperAccelerator(tb.os.num_tiles(), 50);
  const TileId st = tb.os.Deploy(bad_app, std::unique_ptr<Accelerator>(snoop));
  // The snooper may legitimately talk to the memory service (as any tenant).
  (void)tb.os.GrantSendToService(st, kMemoryService);
  tb.sim.Run(20000);
  EXPECT_GT(snoop->attempts(), 100u);
  EXPECT_EQ(snoop->leaked(), 0u);  // The headline isolation property.
  EXPECT_GT(snoop->denied_local() + snoop->denied_remote(), 0u);
  EXPECT_TRUE(victim->received.empty());  // Nothing ever reached the victim.
}

TEST(FaultyTest, WildWriterContainedBySegments) {
  TestBoard tb;
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  AppId app = tb.os.CreateApp("bad");
  auto* wild = new WildWriterAccelerator(4096, 100);
  const TileId wt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(wild));
  (void)tb.os.GrantSendToService(wt, kMemoryService);
  tb.sim.Run(30000);
  EXPECT_GT(wild->attempts(), 10u);
  EXPECT_GT(wild->seg_faults(), 0u);    // Out-of-bounds writes bounced.
  EXPECT_GT(wild->in_bounds_ok(), 0u);  // In-bounds writes still fine.
  // Out-of-segment bytes in DRAM remain untouched (zero).
  const auto outside = tb.board.memory().DebugRead(4096 * 16, 32);
  for (uint8_t b : outside) {
    EXPECT_EQ(b, 0);
  }
}

TEST(FaultyTest, CrashFailStopsViaRaiseFault) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("crashy");
  auto* crash = new CrashAccelerator(2);
  ServiceId svc = 0;
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(crash), &svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, svc);
  for (int i = 0; i < 4; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return tb.os.monitor(ct).fault_state() == TileFaultState::kStopped; }, 50000));
  // The survivor keeps getting *answers* — error bounces, not silence.
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() >= 3; }, 50000));
}

TEST(FrameSourceTest, DeterministicAndSized) {
  const auto a = GenerateFrame(64, 32, 9, 4);
  const auto b = GenerateFrame(64, 32, 9, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u * 32u);
  const auto c = GenerateFrame(64, 32, 9, 5);
  EXPECT_NE(a, c);  // Motion between frames.
}

TEST(KvWorkloadTest, FactoryProducesConfiguredMix) {
  KvWorkloadConfig cfg;
  cfg.read_fraction = 0.5;
  cfg.keyspace = 100;
  auto factory = MakeKvRequestFactory(cfg);
  Rng rng(1);
  int gets = 0;
  int puts = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    const ClientRequest r = factory(i, rng);
    if (r.opcode == kOpKvGet) {
      ++gets;
    } else if (r.opcode == kOpKvPut) {
      ++puts;
    }
  }
  EXPECT_NEAR(static_cast<double>(gets) / 2000.0, 0.5, 0.05);
  EXPECT_EQ(gets + puts, 2000);
}

}  // namespace
}  // namespace apiary
