// Raw, unprotected inter-accelerator queues — the status quo IPC the paper
// describes in Section 4.5: "A form of IPC already exists between
// accelerators on FPGAs in the form of queues that are used to pipeline
// accelerators... these queues are not accessed controlled in any way."
//
// Used by experiment E3 as the no-isolation lower bound: a dedicated FIFO
// between two modules, one flit per cycle, no naming, no checks, no policy.
#ifndef SRC_BASELINE_RAW_QUEUE_H_
#define SRC_BASELINE_RAW_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/noc/packet.h"
#include "src/sim/clocked.h"

namespace apiary {

class RawQueue : public Clocked {
 public:
  // `width_bytes` is the datapath width (bytes transferred per cycle);
  // `depth_entries` bounds the FIFO.
  RawQueue(uint32_t width_bytes = kFlitBytes, uint32_t depth_entries = 64)
      : width_bytes_(width_bytes), depth_entries_(depth_entries) {}

  // Pushes a message's bytes into the queue. Returns false when full.
  bool Push(PayloadBuf payload, Cycle now);

  // Pops the next fully transferred message, if any.
  std::optional<PayloadBuf> Pop(Cycle now);

  void Tick(Cycle now) override { (void)now; }
  // The queue itself does no tick work, but harness predicates poll Pop()
  // against front().available_at — declare that cycle as an activity
  // boundary so RunUntil predicates observe it exactly.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (entries_.empty()) {
      return kNoActivity;
    }
    const Cycle at = entries_.front().available_at;
    return at > now ? at : now;
  }
  std::string DebugName() const override { return "raw_queue"; }
  // Pushes come straight from harness/baseline code with no wake path;
  // boundary-polled so a new front entry is seen at the next boundary.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }

  uint64_t pushed() const { return pushed_; }
  uint64_t popped() const { return popped_; }

 private:
  struct Entry {
    Cycle available_at;
    PayloadBuf payload;
  };

  uint32_t width_bytes_;
  uint32_t depth_entries_;
  std::deque<Entry> entries_;
  Cycle channel_free_at_ = 0;
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
};

inline bool RawQueue::Push(PayloadBuf payload, Cycle now) {
  if (entries_.size() >= depth_entries_) {
    return false;
  }
  // Serialize onto the point-to-point wires: width_bytes per cycle, plus one
  // cycle of FIFO latency.
  const Cycle transfer = (payload.size() + width_bytes_ - 1) / width_bytes_;
  const Cycle start = channel_free_at_ > now ? channel_free_at_ : now;
  channel_free_at_ = start + transfer;
  entries_.push_back(Entry{channel_free_at_ + 1, std::move(payload)});
  ++pushed_;
  return true;
}

inline std::optional<PayloadBuf> RawQueue::Pop(Cycle now) {
  if (entries_.empty() || entries_.front().available_at > now) {
    return std::nullopt;
  }
  PayloadBuf payload = std::move(entries_.front().payload);
  entries_.pop_front();
  ++popped_;
  return payload;
}

}  // namespace apiary

#endif  // SRC_BASELINE_RAW_QUEUE_H_
