# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e5_segments_vs_pages.
