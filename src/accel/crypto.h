// Encryption accelerator: XTEA in CTR mode — a small, real block cipher of
// the kind multi-tenant boards host for at-rest/in-flight data protection
// (the "security" flavor of the paper's composable third-party tiles).
//
// XTEA (Needham & Wheeler, 1997): 64-bit block, 128-bit key, 64 Feistel
// rounds. CTR mode turns it into a stream cipher, so encrypt == decrypt and
// arbitrary payload lengths work without padding.
#ifndef SRC_ACCEL_CRYPTO_H_
#define SRC_ACCEL_CRYPTO_H_

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/accel/accel_opcodes.h"
#include "src/core/accelerator.h"

namespace apiary {

// One XTEA block encryption (64 rounds), the primitive the engine pipelines.
void XteaEncryptBlock(const std::array<uint32_t, 4>& key, uint32_t v[2]);

// CTR-mode keystream transform of `data` (in place semantics via return).
std::vector<uint8_t> XteaCtr(const std::array<uint32_t, 4>& key, uint64_t nonce,
                             std::span<const uint8_t> data);

// Request (kOpEncrypt): u64 nonce, data. Reply: transformed data. The key
// is provisioned at deploy time (a per-tenant secret the kernel installs —
// never carried in messages).
inline constexpr uint16_t kOpEncrypt = kOpAppBase + 9;

class CryptoAccelerator : public Accelerator {
 public:
  // `bytes_per_cycle` models the pipelined engine's throughput (a 64-round
  // XTEA core at ~1 block per 2 cycles is ~4 B/cycle).
  explicit CryptoAccelerator(std::array<uint32_t, 4> key, uint32_t bytes_per_cycle = 4)
      : key_(key), bytes_per_cycle_(bytes_per_cycle) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "crypto"; }
  uint32_t LogicCellCost() const override { return 12000; }
  uint64_t served() const { return served_; }

 private:
  struct Job {
    Message request;
    std::vector<uint8_t> output;
    Cycle done_at;
  };

  std::array<uint32_t, 4> key_;
  uint32_t bytes_per_cycle_;
  std::deque<Job> jobs_;
  Cycle engine_free_at_ = 0;
  uint64_t served_ = 0;
};

}  // namespace apiary

#endif  // SRC_ACCEL_CRYPTO_H_
