// Adversarial-behavior library: seeded attack campaigns against a shared
// board, used to measure (not just assert) the tenant subsystem's isolation.
//
// A campaign is a deterministic schedule of attack phases; the driver flips
// per-attack active flags at phase edges and performs the control-plane
// attacks itself (reconfig thrash through a scheduler, SEU wedge loops).
// Data-plane attackers (flit floods, capability-probe sweeps) are
// accelerators that poll the driver's active flag through a plain bool
// pointer, so they stay deployable like any workload while the campaign
// remains the single source of timing. All randomness comes from the
// campaign seed: identical seeds replay identical attacks, byte for byte.
#ifndef SRC_TENANT_ABUSE_H_
#define SRC_TENANT_ABUSE_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/accelerator.h"
#include "src/core/capability.h"
#include "src/core/kernel.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/sim/clocked.h"
#include "src/sim/random.h"
#include "src/stats/summary.h"

namespace apiary {

enum class AttackKind : uint8_t {
  kFlitFlood = 0,       // Saturate a victim endpoint with maximal traffic.
  kReconfigThrash = 1,  // Load/teardown loop hogging the ICAP.
  kCapProbe = 2,        // Forged-capability sweep across the board.
  kWedgeLoop = 3,       // Repeated SEU wedges forcing recovery churn.
};
inline constexpr int kNumAttackKinds = 4;

const char* AttackKindName(AttackKind kind);

struct AbusePhase {
  AttackKind kind = AttackKind::kFlitFlood;
  Cycle at = 0;        // First active cycle.
  Cycle duration = 0;  // Active for [at, at + duration).
  Cycle period = 0;    // Repeat interval for event-style attacks.
};

// Builder for a seeded attack schedule.
class AbuseCampaign {
 public:
  explicit AbuseCampaign(uint64_t seed) : seed_(seed) {}

  AbuseCampaign& FlitFlood(Cycle at, Cycle duration);
  AbuseCampaign& ReconfigThrash(Cycle at, Cycle duration, Cycle period);
  AbuseCampaign& CapProbe(Cycle at, Cycle duration);
  AbuseCampaign& WedgeLoop(Cycle at, Cycle duration, Cycle period);

  uint64_t seed() const { return seed_; }
  const std::vector<AbusePhase>& phases() const { return phases_; }

 private:
  uint64_t seed_;
  std::vector<AbusePhase> phases_;
};

// Executes a campaign against the board: maintains the per-attack active
// flags and drives the control-plane attacks.
class AbuseDriver : public Clocked {
 public:
  using AccelFactory = std::function<std::unique_ptr<Accelerator>()>;

  AbuseDriver(ApiaryOs* os, AbuseCampaign campaign);

  // Stable pointer to the attack's active flag; data-plane attacker
  // accelerators poll it each tick.
  const bool* ActiveFlag(AttackKind kind) const {
    return &active_[static_cast<int>(kind)];
  }

  // Reconfig thrash: while active, cycles `tile` through load/teardown on
  // `scheduler` (the attacking tenant's scheduler, so its ICAP quota —
  // when enforcement is on — throttles the thrash).
  void ConfigureThrash(ReconfigScheduler* scheduler, TileId tile, AccelFactory factory);

  // Wedge loop: while active, injects an SEU wedge into `tile` every phase
  // period (with seeded jitter), forcing watchdog-driven recovery churn.
  void ConfigureWedge(TileId tile);

  void Tick(Cycle now) override;
  // While any phase is active the driver acts (or polls a scheduler) every
  // cycle; otherwise it sleeps to the next phase start.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  void OnFastForward(Cycle resume_cycle) override { now_ = resume_cycle - 1; }
  std::string DebugName() const override { return "abuse_driver"; }

  const CounterSet& counters() const { return counters_; }

 private:
  bool PhaseActive(AttackKind kind, Cycle now, Cycle* period) const;

  ApiaryOs* os_;
  AbuseCampaign campaign_;
  Rng rng_;
  std::array<bool, kNumAttackKinds> active_{};

  ReconfigScheduler* thrash_scheduler_ = nullptr;
  TileId thrash_tile_ = kInvalidTile;
  AccelFactory thrash_factory_;
  bool thrash_job_pending_ = false;
  bool thrash_loaded_ = false;

  TileId wedge_tile_ = kInvalidTile;
  Cycle next_wedge_ = 0;

  Cycle now_ = 0;
  CounterSet counters_;
};

// Data-plane attacker: floods `victim` with back-to-back messages whenever
// the campaign flag is up. Counts how far it got (attacker throughput) and
// how often the monitor refused it (enforcement at work).
class FloodAttacker : public Accelerator {
 public:
  FloodAttacker(const bool* active, uint32_t message_bytes = 256)
      : active_(active), message_bytes_(message_bytes) {}

  void SetVictim(CapRef victim) { victim_ = victim; }

  void OnMessage(const Message& msg, TileApi& api) override {
    (void)msg;
    (void)api;  // Responses and bounces are ignored; the flood continues.
  }
  void Tick(TileApi& api) override;
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    return (active_ != nullptr && *active_ && victim_ != kInvalidCapRef) ? now
                                                                         : kNoActivity;
  }
  // The campaign flag is flipped by the driver block with no wake path into
  // this tile — boundary-poll so the flip is seen the same cycle the legacy
  // every-block loop would have seen it.
  [[nodiscard]] Clocked::SchedPolicy SchedulingPolicy() const override {
    return Clocked::SchedPolicy::kBoundaryPoll;
  }

  std::string name() const override { return "flood_attacker"; }
  uint32_t LogicCellCost() const override { return 9000; }

  uint64_t sent() const { return sent_; }
  uint64_t rate_limited() const { return rate_limited_; }
  uint64_t backpressured() const { return backpressured_; }

 private:
  const bool* active_;
  uint32_t message_bytes_;
  CapRef victim_ = kInvalidCapRef;
  uint64_t sent_ = 0;
  uint64_t rate_limited_ = 0;
  uint64_t backpressured_ = 0;
};

// Data-plane attacker: sweeps forged (slot, generation) capability refs
// across the board while active, counting attempts and how many the local
// monitor refused. Any delivery that comes back kOk with data is a leak.
class ProbeAttacker : public Accelerator {
 public:
  ProbeAttacker(const bool* active, uint32_t num_tiles, Cycle probe_period = 64)
      : active_(active), num_tiles_(num_tiles == 0 ? 1 : num_tiles),
        probe_period_(probe_period == 0 ? 1 : probe_period) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (active_ == nullptr || !*active_) {
      return kNoActivity;
    }
    return next_probe_ > now ? next_probe_ : now;
  }
  // Same as FloodAttacker: re-armed by a flag flip no wake path announces.
  [[nodiscard]] Clocked::SchedPolicy SchedulingPolicy() const override {
    return Clocked::SchedPolicy::kBoundaryPoll;
  }

  std::string name() const override { return "probe_attacker"; }
  uint32_t LogicCellCost() const override { return 7000; }

  uint64_t attempts() const { return attempts_; }
  uint64_t denied() const { return denied_; }
  uint64_t leaked() const { return leaked_; }

 private:
  const bool* active_;
  uint32_t num_tiles_;
  Cycle probe_period_;
  Cycle next_probe_ = 0;
  uint32_t probe_cursor_ = 0;
  uint64_t attempts_ = 0;
  uint64_t denied_ = 0;
  uint64_t leaked_ = 0;
};

}  // namespace apiary

#endif  // SRC_TENANT_ABUSE_H_
