#include "src/accel/crypto.h"

#include <algorithm>

#include "src/core/message.h"

namespace apiary {

void XteaEncryptBlock(const std::array<uint32_t, 4>& key, uint32_t v[2]) {
  uint32_t v0 = v[0];
  uint32_t v1 = v[1];
  uint32_t sum = 0;
  constexpr uint32_t kDelta = 0x9e3779b9;
  for (int i = 0; i < 32; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  v[0] = v0;
  v[1] = v1;
}

std::vector<uint8_t> XteaCtr(const std::array<uint32_t, 4>& key, uint64_t nonce,
                             std::span<const uint8_t> data) {
  std::vector<uint8_t> out(data.begin(), data.end());
  uint64_t counter = 0;
  for (size_t offset = 0; offset < out.size(); offset += 8, ++counter) {
    uint32_t block[2] = {static_cast<uint32_t>(nonce ^ counter),
                         static_cast<uint32_t>((nonce >> 32) + counter)};
    XteaEncryptBlock(key, block);
    uint8_t keystream[8];
    for (int i = 0; i < 4; ++i) {
      keystream[i] = static_cast<uint8_t>(block[0] >> (8 * i));
      keystream[4 + i] = static_cast<uint8_t>(block[1] >> (8 * i));
    }
    const size_t chunk = std::min<size_t>(8, out.size() - offset);
    for (size_t i = 0; i < chunk; ++i) {
      out[offset + i] ^= keystream[i];
    }
  }
  return out;
}

void CryptoAccelerator::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  if (msg.opcode != kOpEncrypt || msg.payload.size() < 8) {
    Message err;
    err.opcode = msg.opcode;
    err.status = MsgStatus::kBadRequest;
    api.Reply(msg, std::move(err));
    return;
  }
  const uint64_t nonce = GetU64(msg.payload, 0);
  Job job;
  job.request = msg;
  job.output = XteaCtr(
      key_, nonce,
      std::span<const uint8_t>(msg.payload.data() + 8, msg.payload.size() - 8));
  const Cycle compute = std::max<Cycle>(
      1, (msg.payload.size() - 8) / std::max<uint32_t>(1, bytes_per_cycle_));
  const Cycle start = std::max(engine_free_at_, api.now());
  engine_free_at_ = start + compute;
  job.done_at = engine_free_at_;
  jobs_.push_back(std::move(job));
}

void CryptoAccelerator::Tick(TileApi& api) {
  while (!jobs_.empty() && jobs_.front().done_at <= api.now()) {
    Message reply;
    reply.opcode = kOpEncrypt;
    reply.payload = jobs_.front().output;
    const SendResult r = api.Reply(jobs_.front().request, std::move(reply));
    if (r.status == MsgStatus::kBackpressure || r.status == MsgStatus::kRateLimited) {
      break;
    }
    ++served_;
    jobs_.pop_front();
  }
}

}  // namespace apiary
