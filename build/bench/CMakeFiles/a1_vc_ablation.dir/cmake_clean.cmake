file(REMOVE_RECURSE
  "CMakeFiles/a1_vc_ablation.dir/a1_vc_ablation.cc.o"
  "CMakeFiles/a1_vc_ablation.dir/a1_vc_ablation.cc.o.d"
  "a1_vc_ablation"
  "a1_vc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_vc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
