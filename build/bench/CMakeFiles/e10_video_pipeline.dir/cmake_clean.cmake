file(REMOVE_RECURSE
  "CMakeFiles/e10_video_pipeline.dir/e10_video_pipeline.cc.o"
  "CMakeFiles/e10_video_pipeline.dir/e10_video_pipeline.cc.o.d"
  "e10_video_pipeline"
  "e10_video_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
