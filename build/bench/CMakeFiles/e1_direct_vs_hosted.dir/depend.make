# Empty dependencies file for e1_direct_vs_hosted.
# This may be replaced when dependencies are built.
