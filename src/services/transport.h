// Reliable transport for the external network — sliding-window ARQ with
// cumulative ACKs, retransmission, reordering and de-duplication.
//
// Section 2 of the paper lists "reliable network protocols" among the
// infrastructure FPGA developers are forced to rebuild per project; in
// Apiary it ships once, inside the network service, and every accelerator
// gets in-order exactly-once frame delivery for free. The same class is
// reused by simulated client hosts so both ends speak one protocol.
//
// Wire format (prepended to the application payload):
//   u8 magic (0xAB) | u8 type (1=data, 2=ack) | u32 seq | u32 ack
// Data frames carry the payload after the header; ACK frames are bare.
// Sequence numbers and windows are per-peer.
#ifndef SRC_SERVICES_TRANSPORT_H_
#define SRC_SERVICES_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/types.h"
#include "src/stats/summary.h"

namespace apiary {

struct TransportConfig {
  uint32_t window = 16;          // Max unacked data frames per peer.
  Cycle rto_cycles = 25000;      // Retransmission timeout (~100us).
  uint32_t max_retries = 16;     // Give up after this many retransmissions.
};

class ReliableTransport {
 public:
  explicit ReliableTransport(TransportConfig config = TransportConfig{})
      : config_(config) {}

  struct OutFrame {
    uint32_t peer = 0;
    std::vector<uint8_t> bytes;
  };

  // Queues application `payload` for reliable delivery to `peer`.
  void SendData(uint32_t peer, std::vector<uint8_t> payload, Cycle now);

  // Processes a raw inbound frame from `peer`. Returns application payloads
  // now deliverable in order (possibly several, when a gap closes). ACKs
  // the data internally; call Poll() to pick up the ACK frames.
  std::vector<std::vector<uint8_t>> OnFrame(uint32_t peer,
                                            const std::vector<uint8_t>& raw, Cycle now);

  // Collects frames to transmit now: fresh data within the window, ACKs,
  // and retransmissions whose RTO expired.
  std::vector<OutFrame> Poll(Cycle now);

  // True if `raw` starts with the transport magic (i.e. is ours to parse).
  static bool IsTransportFrame(const std::vector<uint8_t>& raw);

  uint64_t retransmissions() const { return counters_.Get("rt.retransmits"); }
  uint64_t duplicates_dropped() const { return counters_.Get("rt.dupes"); }
  const CounterSet& counters() const { return counters_; }

 private:
  static constexpr uint8_t kMagic = 0xab;
  static constexpr uint8_t kTypeData = 1;
  static constexpr uint8_t kTypeAck = 2;
  static constexpr size_t kHeaderBytes = 10;

  struct Unacked {
    std::vector<uint8_t> payload;
    Cycle sent_at = 0;
    uint32_t retries = 0;
  };
  struct PeerState {
    // Sender side.
    uint32_t next_seq = 1;
    std::map<uint32_t, Unacked> unacked;          // seq -> frame in flight.
    std::deque<std::vector<uint8_t>> send_queue;  // Waiting for window space.
    // Receiver side.
    uint32_t expected = 1;                         // Next in-order seq.
    std::map<uint32_t, std::vector<uint8_t>> reorder;
    bool ack_due = false;
  };

  static std::vector<uint8_t> Encode(uint8_t type, uint32_t seq, uint32_t ack,
                                     const std::vector<uint8_t>& payload);

  TransportConfig config_;
  std::map<uint32_t, PeerState> peers_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_TRANSPORT_H_
