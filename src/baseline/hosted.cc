#include "src/baseline/hosted.h"

#include <memory>

namespace apiary {

HostedSystem::HostedSystem(HostedConfig config, Simulator& sim, ExternalNetwork* network)
    : config_(std::move(config)),
      network_(network),
      pcie_to_fpga_(config_.pcie),
      pcie_from_fpga_(config_.pcie),
      core_free_at_(config_.cpu_cores, 0) {
  sim.Register(this);
  sim.Register(&pcie_to_fpga_);
  sim.Register(&pcie_from_fpga_);
  if (network_ != nullptr) {
    address_ = network_->RegisterEndpoint(this);
  }
}

void HostedSystem::OnFrame(EthFrame frame, Cycle now) {
  (void)now;
  if (cpu_ingress_.size() >= config_.max_queue_depth) {
    ++dropped_;
    counters_.Add("hosted.dropped");
    return;
  }
  counters_.Add("hosted.requests");
  cpu_ingress_.push_back(Job{std::move(frame), {}});
}

void HostedSystem::Tick(Cycle now) {
  // Host CPU cores: drain egress (completions) with priority, then ingress.
  for (auto& free_at : core_free_at_) {
    if (now < free_at) {
      continue;
    }
    if (!cpu_egress_.empty()) {
      Job job = std::move(cpu_egress_.front());
      cpu_egress_.pop_front();
      free_at = now + config_.cpu_egress_cycles;
      cpu_busy_cycles_ += config_.cpu_egress_cycles;
      // Reply is emitted when the egress software path finishes; model the
      // delay by completing at free_at via the reply frame's timestamp (the
      // external network adds its own latency).
      pending_replies_.push_back(PendingReply{free_at, std::move(job)});
      continue;
    }
    if (!cpu_ingress_.empty()) {
      Job job = std::move(cpu_ingress_.front());
      cpu_ingress_.pop_front();
      free_at = now + config_.cpu_ingress_cycles;
      cpu_busy_cycles_ += config_.cpu_ingress_cycles;
      pending_to_pcie_.push_back(PendingReply{free_at, std::move(job)});
    }
  }

  // Ingress software completed -> DMA the request across PCIe.
  while (!pending_to_pcie_.empty() && pending_to_pcie_.front().ready_at <= now) {
    auto job = std::make_shared<Job>(std::move(pending_to_pcie_.front().job));
    pending_to_pcie_.pop_front();
    const uint64_t bytes = job->request.payload.size();
    const bool ok = pcie_to_fpga_.Submit(bytes, [this, job](Cycle) {
      fpga_queue_.push_back(std::move(*job));
    });
    if (!ok) {
      ++dropped_;
      counters_.Add("hosted.pcie_drop");
    }
  }

  // FPGA accelerator: serial service.
  if (fpga_busy_ && now >= fpga_free_at_) {
    fpga_busy_ = false;
    auto job = std::make_shared<Job>(std::move(fpga_current_));
    const uint64_t bytes = job->reply_payload.size();
    const bool ok = pcie_from_fpga_.Submit(bytes, [this, job](Cycle) {
      cpu_egress_.push_back(std::move(*job));
    });
    if (!ok) {
      ++dropped_;
      counters_.Add("hosted.pcie_drop");
    }
  }
  if (!fpga_busy_ && !fpga_queue_.empty()) {
    fpga_current_ = std::move(fpga_queue_.front());
    fpga_queue_.pop_front();
    fpga_current_.reply_payload = config_.compute
                                      ? config_.compute(fpga_current_.request.payload)
                                      : fpga_current_.request.payload;
    fpga_free_at_ = now + config_.accel_cycles;
    fpga_busy_ = true;
  }

  // Egress software completed -> reply frame to the client.
  while (!pending_replies_.empty() && pending_replies_.front().ready_at <= now) {
    Job job = std::move(pending_replies_.front().job);
    pending_replies_.pop_front();
    EthFrame reply;
    reply.dst_endpoint = job.request.src_endpoint;
    reply.src_endpoint = address_;
    reply.payload = std::move(job.reply_payload);
    if (network_ != nullptr) {
      network_->Send(std::move(reply), now);
    }
    ++completed_;
    counters_.Add("hosted.completed");
  }
}

}  // namespace apiary
