// Good: synchronization primitives live in the reviewed parallel home.
#include <atomic>
#include <mutex>

namespace apiary {

class WorkQueue {
 public:
  void Push(int v);

 private:
  std::mutex mu_;
  std::atomic<int> depth_{0};
};

}  // namespace apiary
