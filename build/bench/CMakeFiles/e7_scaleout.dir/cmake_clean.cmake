file(REMOVE_RECURSE
  "CMakeFiles/e7_scaleout.dir/e7_scaleout.cc.o"
  "CMakeFiles/e7_scaleout.dir/e7_scaleout.cc.o.d"
  "e7_scaleout"
  "e7_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
