#include "src/sim/random.h"

#include <cmath>

namespace apiary {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
  // Guard against the all-zero state, which is a fixed point of xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation, simplified: the modulo
  // bias is negligible for simulation purposes when bound << 2^64.
  return Next() % bound;
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  // Gray et al. "Quickly generating billion-record synthetic databases"
  // closed-form approximation, as used by YCSB.
  if (n <= 1) {
    return 0;
  }
  const double alpha = 1.0 / (1.0 - theta);
  double zetan = 0.0;
  // Cache-free direct computation is O(n); cap the exact sum and extrapolate
  // for large n (adequate for workload generation).
  const uint64_t exact = n < 10000 ? n : 10000;
  for (uint64_t i = 1; i <= exact; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (exact < n) {
    // Integral tail approximation of the generalized harmonic number.
    zetan += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(exact), 1.0 - theta)) /
             (1.0 - theta);
  }
  const double zeta2 = 1.0 + std::pow(2.0, -theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta)) {
    return 1;
  }
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return v >= n ? n - 1 : v;
}

}  // namespace apiary
