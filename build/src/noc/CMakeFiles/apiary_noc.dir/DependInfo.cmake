
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/mesh.cc" "src/noc/CMakeFiles/apiary_noc.dir/mesh.cc.o" "gcc" "src/noc/CMakeFiles/apiary_noc.dir/mesh.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/noc/CMakeFiles/apiary_noc.dir/network_interface.cc.o" "gcc" "src/noc/CMakeFiles/apiary_noc.dir/network_interface.cc.o.d"
  "/root/repo/src/noc/rate_limiter.cc" "src/noc/CMakeFiles/apiary_noc.dir/rate_limiter.cc.o" "gcc" "src/noc/CMakeFiles/apiary_noc.dir/rate_limiter.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/apiary_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/apiary_noc.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
