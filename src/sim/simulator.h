// The top-level simulation driver: a single global clock domain plus a
// discrete-event queue.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/sim/clocked.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_context.h"
#include "src/sim/types.h"

namespace apiary {

class Simulator {
 public:
  // `frequency_mhz` maps cycles to wall time for reporting (default matches a
  // typical FPGA fabric clock).
  explicit Simulator(double frequency_mhz = 250.0) : frequency_mhz_(frequency_mhz) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a block to be ticked every cycle. The simulator does not own
  // the block; callers keep it alive for the duration of the run.
  void Register(Clocked* block);

  // Removes a previously registered block (e.g. a reconfigured-away
  // accelerator). Safe to call during a tick; removal takes effect before
  // the next cycle.
  void Unregister(Clocked* block);

  // Schedules a timed callback on the event queue.
  void ScheduleAt(Cycle when, EventQueue::Callback cb) {
    events_.ScheduleAt(when, std::move(cb));
  }
  void ScheduleAfter(Cycle delay, EventQueue::Callback cb) {
    events_.ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs `cycles` additional cycles. When skipping is enabled (the default),
  // stretches where every block is quiescent (see Clocked::NextActivity) and
  // no event is due are fast-forwarded in O(blocks) instead of being ticked
  // cycle by cycle; executed cycles behave exactly as before.
  void Run(Cycle cycles);

  // Runs until `pred` returns true or `max_cycles` additional cycles have
  // elapsed. Returns true if `pred` fired.
  //
  // Contract (changed with quiescence skipping, still correct): `pred` is
  // evaluated before every *executed* cycle and once at the end, not once
  // per simulated cycle. Cycles inside a skipped window are never observed —
  // which is sound because nothing ticks there, so a pred over simulated
  // state cannot change mid-skip. A pred whose flip is time-driven (e.g.
  // "now() >= T") is only guaranteed to be seen at the next activity
  // boundary; blocks that gate such state (queues with ready times, fault
  // windows) declare those boundaries via NextActivity so the flip cycle is
  // identical with and without skipping. Use SetSkipEnabled(false) to force
  // the old every-cycle evaluation.
  bool RunUntil(const std::function<bool()>& pred, Cycle max_cycles);

  Cycle now() const { return now_; }
  double frequency_mhz() const { return frequency_mhz_; }

  // This simulator's domain context: the home of every pool/arena its
  // blocks allocate from. Installed as the current thread's domain for the
  // duration of Run()/RunUntil(); harnesses that build boards off the run
  // path install it explicitly (ThreadDomain::ScopedInstall) so
  // construction-time allocations land in the same domain.
  SimContext& context() { return context_; }

  // Converts a cycle count to nanoseconds at the configured frequency.
  double CyclesToNs(Cycle cycles) const {
    return static_cast<double>(cycles) * 1000.0 / frequency_mhz_;
  }

  // Escape hatch (`--no-skip`): when disabled, every cycle is ticked exactly
  // as before quiescence awareness existed. Seeded runs must be
  // byte-identical either way; the differential test enforces it.
  void SetSkipEnabled(bool enabled) { skip_enabled_ = enabled; }
  bool skip_enabled() const { return skip_enabled_; }

  // Fast-forward observability (for benchmarks and tests).
  uint64_t skipped_cycles() const { return skipped_cycles_; }
  uint64_t skips() const { return skips_; }

 private:
  // The sharded engine drives this simulator's clock, blocks, and event
  // queue directly (root phase + per-shard phases instead of Step()); it
  // reuses SkipAhead/ApplyPendingRemovals so skip and removal semantics stay
  // byte-identical with the serial path.
  friend class ParallelSimulator;

  void Step();
  // Fast-forwards now_ to the earliest cycle in (now_, limit] that any block
  // or event needs, when every block is quiescent. No-op when some block is
  // active or skipping is disabled.
  void SkipAhead(Cycle limit);
  void ApplyPendingRemovals();

  SimContext context_;
  double frequency_mhz_;
  Cycle now_ = 0;
  bool skip_enabled_ = true;
  uint64_t skipped_cycles_ = 0;
  uint64_t skips_ = 0;
  // Index of the block that most recently kept a skip from happening; polled
  // first so a saturated board pays ~one virtual call per failed attempt.
  size_t hot_block_ = 0;
  std::vector<Clocked*> blocks_;
  std::vector<Clocked*> pending_removals_;
  EventQueue events_;
};

}  // namespace apiary

#endif  // SRC_SIM_SIMULATOR_H_
