// The accelerator programming model.
//
// An accelerator is untrusted application (or service) logic occupying a
// tile's dynamically reconfigurable slot. It interacts with the rest of the
// system exclusively through the TileApi its monitor exposes — Apiary's
// standard, portable API-level interface (Section 4.3).
//
// Fault model (Section 4.4): every accelerator is at least *concurrent*
// (cooperative, fail-stop on error). An accelerator may additionally be
// *preemptible* by externalizing its architectural state via
// SaveState/RestoreState, which lets the monitor swap a faulty process out
// while its siblings keep running.
#ifndef SRC_CORE_ACCELERATOR_H_
#define SRC_CORE_ACCELERATOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/capability.h"
#include "src/core/message.h"
#include "src/sim/clocked.h"
#include "src/sim/types.h"

namespace apiary {

// Result of TileApi::Send. kOk means the message was accepted for delivery;
// every other value is a local, synchronous rejection by the monitor.
struct SendResult {
  MsgStatus status = MsgStatus::kOk;
  bool ok() const { return status == MsgStatus::kOk; }
};

// The portable interface an accelerator sees. Implemented by the monitor;
// identical on every tile and every board (the paper's portability goal).
class TileApi {
 public:
  virtual ~TileApi() = default;

  // Sends `msg` using endpoint capability `endpoint`. If `mem` (and
  // optionally `mem2`) name memory capabilities, the monitor attaches the
  // corresponding segment grants to the message (capability presentation,
  // e.g. for the memory service, or source+destination for a DMA copy).
  virtual SendResult Send(Message msg, CapRef endpoint, CapRef mem, CapRef mem2) = 0;
  SendResult Send(Message msg, CapRef endpoint) {
    return Send(std::move(msg), endpoint, kInvalidCapRef, kInvalidCapRef);
  }
  SendResult Send(Message msg, CapRef endpoint, CapRef mem) {
    return Send(std::move(msg), endpoint, mem, kInvalidCapRef);
  }

  // Replies to a previously received request. Delivery of a request confers
  // an implicit, single-use reply right, so services answer requesters they
  // hold no explicit endpoint capability for.
  virtual SendResult Reply(const Message& request, Message response, CapRef mem) = 0;
  SendResult Reply(const Message& request, Message response) {
    return Reply(request, std::move(response), kInvalidCapRef);
  }

  // Pops the next delivered message, if any.
  virtual std::optional<Message> Receive() = 0;

  // Resolves a logical service name to an endpoint capability reference
  // (searching this tile's capability table).
  virtual CapRef LookupService(ServiceId service) = 0;

  // Introspection.
  virtual Cycle now() const = 0;
  virtual TileId tile() const = 0;
  virtual AppId app() const = 0;
  // This tile's own logical service name (set by the kernel at deploy).
  virtual ServiceId service() const = 0;

  // Cooperative error reporting: the accelerator detected an internal error
  // it cannot recover from. The monitor applies the fault policy
  // (fail-stop, or context swap when preemptible).
  virtual void RaiseFault(const std::string& reason) = 0;
};

class Accelerator {
 public:
  virtual ~Accelerator() = default;

  // Called once when the tile comes out of (re)configuration.
  virtual void OnBoot(TileApi& api) { (void)api; }

  // Called for each delivered message.
  virtual void OnMessage(const Message& msg, TileApi& api) = 0;

  // Called every cycle for autonomous compute (pipelines, timers).
  virtual void Tick(TileApi& api) { (void)api; }

  // Quiescence hook mirroring Clocked::NextActivity, forwarded by the tile:
  // the earliest future cycle this accelerator's Tick() matters again, a
  // value <= now for "active every cycle" (the safe default), or
  // kNoActivity (~Cycle{0}) when it only reacts to messages. Re-polled at
  // every executed cycle, so message arrival re-arms the tile automatically.
  [[nodiscard]] virtual Cycle NextActivity(Cycle now) const { return now; }

  // Mirrors Clocked::OnFastForward: the simulator jumped to `resume_cycle`;
  // bring any cached clocks / per-cycle accumulators to the state a
  // cycle-by-cycle run would have produced.
  virtual void OnFastForward(Cycle resume_cycle) { (void)resume_cycle; }

  // Mirrors Clocked::SchedulingPolicy, forwarded by the owning tile: an
  // accelerator whose NextActivity reads state mutated outside any
  // schedule-visible wake path (e.g. a campaign flag flipped by a separate
  // driver block) returns kBoundaryPoll so its tile is re-polled at every
  // executed-cycle boundary instead of parked.
  [[nodiscard]] virtual Clocked::SchedPolicy SchedulingPolicy() const {
    return Clocked::SchedPolicy::kActiveSet;
  }

  virtual std::string name() const = 0;

  // Logic-cell footprint charged against the tile region.
  virtual uint32_t LogicCellCost() const { return 20000; }

  // --- Preemption support (Section 4.4). ---
  virtual bool IsPreemptible() const { return false; }
  virtual std::vector<uint8_t> SaveState() { return {}; }
  virtual void RestoreState(std::span<const uint8_t> state) { (void)state; }
};

}  // namespace apiary

#endif  // SRC_CORE_ACCELERATOR_H_
