
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_architecture.cc" "bench/CMakeFiles/fig1_architecture.dir/fig1_architecture.cc.o" "gcc" "bench/CMakeFiles/fig1_architecture.dir/fig1_architecture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apiary_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/apiary_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/apiary_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apiary_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/apiary_services.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/apiary_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/apiary_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/apiary_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
