# Empty compiler generated dependencies file for apiary_services.
# This may be replaced when dependencies are built.
