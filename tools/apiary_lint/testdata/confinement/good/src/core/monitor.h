// Good: cross-domain state rides registered channel types; raw pointers
// stay inside the declaring layer.
#ifndef SRC_CORE_MONITOR_H_
#define SRC_CORE_MONITOR_H_

namespace apiary {

class NetworkInterface;

class CapTable {
 public:
  int Lookup(int ref);
};

class Monitor {
 private:
  NetworkInterface* ni_ = nullptr;  // Registered channel type: allowed.
  CapTable* caps_ = nullptr;        // Same-layer pointer: allowed.
};

}  // namespace apiary

#endif  // SRC_CORE_MONITOR_H_
