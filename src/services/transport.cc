#include "src/services/transport.h"

#include "src/core/message.h"

namespace apiary {

bool ReliableTransport::IsTransportFrame(const std::vector<uint8_t>& raw) {
  return raw.size() >= kHeaderBytes && raw[0] == kMagic;
}

std::vector<uint8_t> ReliableTransport::Encode(uint8_t type, uint32_t seq, uint32_t ack,
                                               const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  out.push_back(kMagic);
  out.push_back(type);
  PutU32(out, seq);
  PutU32(out, ack);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void ReliableTransport::SendData(uint32_t peer, std::vector<uint8_t> payload, Cycle now) {
  (void)now;
  counters_.Add("rt.app_sends");
  peers_[peer].send_queue.push_back(std::move(payload));
}

std::vector<std::vector<uint8_t>> ReliableTransport::OnFrame(uint32_t peer,
                                                             const std::vector<uint8_t>& raw,
                                                             Cycle now) {
  (void)now;
  std::vector<std::vector<uint8_t>> deliverable;
  if (!IsTransportFrame(raw)) {
    counters_.Add("rt.non_transport");
    return deliverable;
  }
  PeerState& state = peers_[peer];
  const uint8_t type = raw[1];
  const uint32_t seq = GetU32(raw, 2);
  const uint32_t ack = GetU32(raw, 6);

  // Cumulative ACK processing (both frame types carry the ack field: data
  // frames piggyback it).
  for (auto it = state.unacked.begin(); it != state.unacked.end();) {
    if (it->first < ack) {
      it = state.unacked.erase(it);
      counters_.Add("rt.acked");
    } else {
      ++it;
    }
  }
  if (type == kTypeAck) {
    return deliverable;
  }

  // Data path: dedup + reorder into in-order delivery.
  counters_.Add("rt.data_frames");
  state.ack_due = true;
  if (seq < state.expected || state.reorder.count(seq) != 0) {
    counters_.Add("rt.dupes");
    return deliverable;
  }
  state.reorder[seq].assign(raw.begin() + kHeaderBytes, raw.end());
  while (true) {
    auto it = state.reorder.find(state.expected);
    if (it == state.reorder.end()) {
      break;
    }
    deliverable.push_back(std::move(it->second));
    state.reorder.erase(it);
    ++state.expected;
    counters_.Add("rt.delivered");
  }
  return deliverable;
}

std::vector<ReliableTransport::OutFrame> ReliableTransport::Poll(Cycle now) {
  std::vector<OutFrame> out;
  for (auto& [peer, state] : peers_) {
    // Launch fresh data while window space remains.
    while (!state.send_queue.empty() && state.unacked.size() < config_.window) {
      const uint32_t seq = state.next_seq++;
      std::vector<uint8_t> payload = std::move(state.send_queue.front());
      state.send_queue.pop_front();
      out.push_back(OutFrame{peer, Encode(kTypeData, seq, state.expected, payload)});
      state.unacked[seq] = Unacked{std::move(payload), now, 0};
      state.ack_due = false;  // Piggybacked.
      counters_.Add("rt.data_sent");
    }
    // Retransmit expired frames.
    for (auto& [seq, frame] : state.unacked) {
      if (now >= frame.sent_at + config_.rto_cycles) {
        if (frame.retries >= config_.max_retries) {
          counters_.Add("rt.gave_up");
          continue;
        }
        frame.sent_at = now;
        ++frame.retries;
        out.push_back(OutFrame{peer, Encode(kTypeData, seq, state.expected, frame.payload)});
        counters_.Add("rt.retransmits");
      }
    }
    // Standalone ACK if nothing piggybacked it.
    if (state.ack_due) {
      out.push_back(OutFrame{peer, Encode(kTypeAck, 0, state.expected, {})});
      state.ack_due = false;
      counters_.Add("rt.acks_sent");
    }
  }
  return out;
}

}  // namespace apiary
