// Good: the real engine's SPSC idiom — acquire/release atomics, cache-line
// alignment, thread-id ownership asserts — is legal in the parallel home.
#ifndef SRC_SIM_PARALLEL_SPSC_RING_H_
#define SRC_SIM_PARALLEL_SPSC_RING_H_

#include <atomic>
#include <thread>

namespace apiary {

template <typename T, unsigned kCapacity>
class SpscRing {
 public:
  bool Push(const T& value) {
    const unsigned tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == kCapacity) {
      return false;
    }
    slots_[tail % kCapacity] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

 private:
  alignas(64) std::atomic<unsigned> head_{0};
  alignas(64) std::atomic<unsigned> tail_{0};
  std::thread::id producer_{};
  T slots_[kCapacity] = {};
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_SPSC_RING_H_
