// B3: parallel engine scaling on a saturated 8x8 mesh.
//
// The sharded engine (src/sim/parallel/) splits the mesh into 4 spatial
// shards and runs them on 1, 2, and 4 worker threads over the SAME
// partition — so every configuration executes the identical schedule and
// must produce identical traffic counts (the byte-level proof lives in
// tests/parallel_differential_test.cc; this harness cross-checks the counts
// and measures the wall-clock side of the story):
//   * simulated Mcycles per wall-second and speedup vs threads=1;
//   * cross-shard handoff volume (flits through the boundary rings, packet
//     clones at the cuts);
//   * steady-state allocation discipline on the handoff path: after warmup,
//     the pool and arena ledgers (summed over the root and every shard
//     domain) must record ZERO heap allocations — boundary rings are
//     preallocated, clones come from the receiver shard's pool freelist.
//
// Honesty note: speedup is bounded by the host's physical cores. On a
// single-core CI container threads=2/4 cannot beat threads=1 (the workers
// time-share one core and pay the handoff overhead); the harness prints the
// detected core count next to the speedup so the numbers read correctly.
// Multi-core runners are where the >=2x target is evaluated.
//
// `--smoke` shrinks the run for CI; `--json <path>` emits the numbers CI
// archives, including express corridor hit/materialization/length counters
// (closed-loop saturation means queues rarely hold a lone packet, so the
// expected hit count here is ~0 — the counter is reported so CI can see
// that, not to show a win); `--no-express` disables the corridor fast path
// on every configuration; `--threads N` restricts to one configuration
// (plus the threads=1 baseline when N != 1).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/core/kernel.h"
#include "src/noc/express.h"
#include "src/noc/packet_pool.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

constexpr uint32_t kShards = 4;          // Fixed partition: 4 column bands.
constexpr uint32_t kWindow = 16;         // Outstanding requests per client.
constexpr uint32_t kSmallPayload = 48;   // Inline tier.
constexpr uint32_t kLargePayload = 240;  // Arena tier.

// Closed-loop echo driver (b2's saturated shape): keeps `window` requests
// outstanding forever, so every cycle is an executed cycle on every shard.
class SaturatingClient : public Accelerator {
 public:
  SaturatingClient(ServiceId svc, uint32_t payload_bytes)
      : svc_(svc), payload_bytes_(payload_bytes) {}

  void Tick(TileApi& api) override {
    while (in_flight_ < kWindow) {
      Message msg;
      msg.opcode = kOpEcho;
      msg.payload.assign(payload_bytes_, static_cast<uint8_t>(in_flight_));
      msg.request_id = ++next_id_;
      if (!api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
        break;
      }
      ++in_flight_;
      ++sent_;
    }
  }
  void OnMessage(const Message& msg, TileApi& api) override {
    (void)api;
    if (msg.kind == MsgKind::kResponse) {
      --in_flight_;
      ++received_;
    }
  }
  std::string name() const override { return "saturating_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }

 private:
  ServiceId svc_;
  uint32_t payload_bytes_;
  uint32_t in_flight_ = 0;
  uint64_t next_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

struct RunResult {
  double wall_seconds = 0;
  double mcycles_per_sec = 0;
  uint64_t sent = 0;        // Requests sent inside the measured window.
  uint64_t received = 0;    // Responses delivered inside the measured window.
  uint64_t flits = 0;       // Flits routed inside the measured window.
  uint64_t handed_off = 0;  // Boundary-ring flit records (whole run).
  uint64_t cloned = 0;      // Cut-crossing head flits cloned (whole run).
  uint64_t heap_allocs = 0;   // Pool misses inside the measured window.
  uint64_t arena_allocs = 0;  // Arena chunk news inside the measured window.
  uint64_t ticked_blocks = 0;    // Block-ticks issued inside the measured window.
  uint64_t executed_cycles = 0;  // Cycles executed inside the measured window.
  uint64_t wheel_wakes = 0;
  uint64_t wake_calls = 0;
  uint64_t block_count = 0;
  ExpressStats express;  // Whole-run corridor counters.

  double MeanCorridorHops() const {
    return express.delivered > 0
               ? static_cast<double>(express.hops_sum) /
                     static_cast<double>(express.delivered)
               : 0;
  }

  double ActiveFraction() const {
    const double denom =
        static_cast<double>(executed_cycles) * static_cast<double>(block_count);
    return denom > 0 ? static_cast<double>(ticked_blocks) / denom : 0;
  }
};

// Saturated 8x8 board: eight client/service pairs whose requests and
// replies cross one or three of the column cuts (x = 1|2, 3|4, 5|6), plus
// mixed inline/arena payload tiers. Tile = y*8 + x.
RunResult RunOne(uint32_t threads, bool express, Cycle warmup_cycles,
                 Cycle measure_cycles) {
  BenchBoardOptions options;
  options.width = 8;
  options.height = 8;
  options.tile_region_cells = 25'000;  // 64 tiles of 100k would not fit VU9P.
  // Skip the standard services: pure IPC traffic, nothing else on the board.
  BenchBoard bb(options, /*deploy_services=*/false);
  bb.board.mesh().SetExpressEnabled(express);
  ApiaryOs& os = bb.os;
  const AppId app = os.CreateApp("b3");

  std::vector<SaturatingClient*> clients;
  // (client x, service x): four rows with a 3-cut crossing, four with 1-cut.
  const uint32_t pair_x[8][2] = {{1, 6}, {6, 1}, {0, 7}, {7, 0},
                                 {3, 4}, {4, 3}, {2, 5}, {5, 2}};
  for (uint32_t i = 0; i < 8; ++i) {
    const uint32_t y = i;  // One pair per row keeps tiles distinct.
    DeployOptions svc_opts;
    svc_opts.tile = y * 8 + pair_x[i][1];
    ServiceId echo_svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(/*service_cycles=*/0), &echo_svc, svc_opts);
    const uint32_t bytes = (i % 2 == 0) ? kSmallPayload : kLargePayload;
    auto client = std::make_unique<SaturatingClient>(echo_svc, bytes);
    clients.push_back(client.get());
    DeployOptions client_opts;
    client_opts.tile = y * 8 + pair_x[i][0];
    const TileId ct = os.Deploy(app, std::move(client), nullptr, client_opts);
    (void)os.GrantSendToService(ct, echo_svc);
  }

  ParallelSimulator psim(&bb.sim, &bb.board.mesh(), ParallelConfig{kShards, threads});

  // Warm up: pools grow to the traffic's high-water mark, boundary rings and
  // anchors reach steady occupancy. Everything after the ledger reset is
  // steady state.
  psim.Run(warmup_cycles);
  bb.board.mesh().ResetPoolStats();
  bb.sim.context().arena().ResetStats();
  for (uint32_t s = 0; s < psim.shards(); ++s) {
    psim.shard_context(s)->arena().ResetStats();
  }
  uint64_t sent0 = 0;
  uint64_t received0 = 0;
  for (const SaturatingClient* c : clients) {
    sent0 += c->sent();
    received0 += c->received();
  }
  const uint64_t flits0 = bb.board.mesh().TotalFlitsRouted();
  const uint64_t ticked0 = bb.sim.ticked_blocks();
  const uint64_t executed0 = bb.sim.executed_cycles();
  const uint64_t wheel0 = bb.sim.wheel_wakes();
  const uint64_t wake0 = bb.sim.wake_calls();

  // Host wall time is the measurand; it never feeds back into simulated
  // state, so determinism is unaffected.
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state
  psim.Run(measure_cycles);
  const auto t1 = std::chrono::steady_clock::now();  // NOLINT(apiary-determinism): host wall time is the measurand, never fed back into sim state

  RunResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mcycles_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(measure_cycles) / r.wall_seconds / 1e6 : 0;
  for (const SaturatingClient* c : clients) {
    r.sent += c->sent();
    r.received += c->received();
  }
  r.sent -= sent0;
  r.received -= received0;
  r.flits = bb.board.mesh().TotalFlitsRouted() - flits0;
  r.handed_off = bb.board.mesh().BoundaryFlitsHandedOff();
  r.cloned = bb.board.mesh().BoundaryPacketsCloned();
  const PacketPoolStats pool = bb.board.mesh().AggregatePoolStats();
  r.heap_allocs = pool.heap_allocs;
  r.arena_allocs = bb.sim.context().arena().stats().chunk_allocs;
  for (uint32_t s = 0; s < psim.shards(); ++s) {
    r.arena_allocs += psim.shard_context(s)->arena().stats().chunk_allocs;
  }
  r.ticked_blocks = bb.sim.ticked_blocks() - ticked0;
  r.executed_cycles = bb.sim.executed_cycles() - executed0;
  r.wheel_wakes = bb.sim.wheel_wakes() - wheel0;
  r.wake_calls = bb.sim.wake_calls() - wake0;
  r.block_count = bb.sim.block_count();
  r.express = bb.board.mesh().AggregateExpressStats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool express = !HasFlag(argc, argv, "--no-express");
  const uint32_t only_threads = static_cast<uint32_t>(IntArg(argc, argv, "--threads", 0));
  const Cycle warmup_cycles = smoke ? 100'000 : 500'000;
  const Cycle measure_cycles = smoke ? 300'000 : 2'000'000;
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("B3: sharded engine scaling, saturated 8x8 mesh, %u shards\n", kShards);
  std::printf("(%llu warmup + %llu measured cycles; host has %u hardware threads)\n\n",
              static_cast<unsigned long long>(warmup_cycles),
              static_cast<unsigned long long>(measure_cycles), host_cores);
  if (host_cores < kShards) {
    std::printf("NOTE: fewer host cores (%u) than shards (%u): worker threads\n"
                "time-share cores, so parallel speedup is not attainable here.\n"
                "Evaluate scaling targets on a multi-core runner.\n\n",
                host_cores, kShards);
  }

  BenchJson json("b3_parallel_scaling");
  json.Param("shards", static_cast<uint64_t>(kShards));
  json.Param("warmup_cycles", static_cast<uint64_t>(warmup_cycles));
  json.Param("measure_cycles", static_cast<uint64_t>(measure_cycles));
  json.Param("host_cores", static_cast<uint64_t>(host_cores));
  json.Param("express", express ? 1 : 0);
  json.Param("smoke", smoke ? 1 : 0);

  Table table("B3: simulated Mcycles per wall-second vs worker threads");
  table.SetHeader({"threads", "Mcyc/s", "speedup", "msgs", "flits",
                   "boundary flits", "clones", "heap allocs"});

  std::vector<uint32_t> configs;
  for (uint32_t t : {1u, 2u, 4u}) {
    if (only_threads == 0 || only_threads == t || t == 1) {
      configs.push_back(t);
    }
  }

  int rc = 0;
  RunResult baseline;
  for (const uint32_t threads : configs) {
    const RunResult r = RunOne(threads, express, warmup_cycles, measure_cycles);
    if (threads == 1) {
      baseline = r;
    } else if (r.sent != baseline.sent || r.received != baseline.received ||
               r.flits != baseline.flits) {
      // Same partition, same schedule: any count divergence is an engine bug.
      std::fprintf(stderr,
                   "B3 FAIL: threads=%u diverged from threads=1 (sent %llu vs %llu, "
                   "recv %llu vs %llu, flits %llu vs %llu)\n",
                   threads, static_cast<unsigned long long>(r.sent),
                   static_cast<unsigned long long>(baseline.sent),
                   static_cast<unsigned long long>(r.received),
                   static_cast<unsigned long long>(baseline.received),
                   static_cast<unsigned long long>(r.flits),
                   static_cast<unsigned long long>(baseline.flits));
      rc = 1;
    }
    if (r.heap_allocs != 0 || r.arena_allocs != 0) {
      std::fprintf(stderr,
                   "B3 FAIL: steady-state allocations on the handoff path "
                   "(threads=%u: %llu pool misses, %llu arena chunks)\n",
                   threads, static_cast<unsigned long long>(r.heap_allocs),
                   static_cast<unsigned long long>(r.arena_allocs));
      rc = 1;
    }
    const double speedup =
        baseline.mcycles_per_sec > 0 ? r.mcycles_per_sec / baseline.mcycles_per_sec : 0;
    table.AddRow({Table::Int(threads), Table::Num(r.mcycles_per_sec, 2),
                  Table::Num(speedup, 2), Table::Int(r.received), Table::Int(r.flits),
                  Table::Int(r.handed_off), Table::Int(r.cloned),
                  Table::Int(r.heap_allocs + r.arena_allocs)});
    json.BeginRow();
    json.Metric("threads", static_cast<uint64_t>(threads));
    json.Metric("wall_seconds", r.wall_seconds);
    json.Metric("mcycles_per_sec", r.mcycles_per_sec);
    json.Metric("speedup_vs_1", speedup);
    json.Metric("messages", r.received);
    json.Metric("flits", r.flits);
    json.Metric("boundary_flits", r.handed_off);
    json.Metric("boundary_clones", r.cloned);
    json.Metric("heap_allocs", r.heap_allocs);
    json.Metric("arena_chunk_allocs", r.arena_allocs);
    json.Metric("ticked_blocks", r.ticked_blocks);
    json.Metric("executed_cycles", r.executed_cycles);
    json.Metric("active_fraction", r.ActiveFraction());
    json.Metric("wheel_wakes", r.wheel_wakes);
    json.Metric("wake_calls", r.wake_calls);
    json.Metric("express_hits", r.express.delivered);
    json.Metric("express_launches", r.express.launches);
    json.Metric("materializations", r.express.materializations);
    json.Metric("mean_corridor_hops", r.MeanCorridorHops());
  }
  table.Print();

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    return 1;
  }
  return rc;
}
