// Differential determinism for the sharded parallel engine: a full
// board+OS workload — kernel-mediated IPC spanning every shard cut, tenants
// with enforced quotas and billing, and a supervisor-healed chaos campaign —
// must produce BYTE-IDENTICAL traces, counters, fault records, and billing
// digests for threads=1, 2, and 4 under a fixed 4-shard partition.
//
// threads=1 runs the exact same sharded schedule with no worker pool, so
// any divergence at threads=2/4 is a synchronization bug, not a schedule
// difference. Run under TSan in the sanitize CI job, this is also the
// data-race proof for the whole engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/accel/echo.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/services/supervisor.h"
#include "src/sim/logging.h"
#include "src/sim/parallel/parallel_simulator.h"
#include "src/tenant/tenant.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

// Appends "<level> <line>\n" to the std::string passed as `user`. One
// instance per simulation domain: the root domain and each shard capture
// separate byte-exact traces, concatenated in a fixed order afterwards.
void StringSink(LogLevel level, const std::string& line, void* user) {
  auto* out = static_cast<std::string*>(user);
  *out += std::to_string(static_cast<int>(level));
  *out += ' ';
  *out += line;
  *out += '\n';
}

// Self-driving periodic echo client with a send budget. Every send
// originates inside a shard-phase Tick, so packets and payload chunks are
// born in the owning shard's pool/arena — nothing is seeded from the main
// thread before the run.
class PeriodicClient : public Accelerator {
 public:
  PeriodicClient(ServiceId svc, Cycle period, uint64_t limit)
      : svc_(svc), period_(period), limit_(limit) {}

  void Tick(TileApi& api) override {
    if (api.now() < next_ || sent >= limit_) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {1, 2, 3, 4};
    if (api.Send(std::move(msg), api.LookupService(svc_)).ok()) {
      ++sent;
    }
    next_ = api.now() + period_;
  }
  void OnMessage(const Message& msg, TileApi&) override {
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  [[nodiscard]] Cycle NextActivity(Cycle now) const override {
    if (sent >= limit_) {
      return kNoActivity;  // Budget spent; only replies wake the tile.
    }
    return next_ > now ? next_ : now;
  }
  std::string name() const override { return "periodic_client"; }
  uint32_t LogicCellCost() const override { return 1000; }

  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId svc_;
  Cycle period_;
  uint64_t limit_;
  Cycle next_ = 0;
};

struct DiffResult {
  Cycle end_cycle = 0;
  uint64_t skipped_cycles = 0;
  uint64_t flits = 0;
  uint64_t handed_off = 0;
  uint64_t cloned = 0;
  uint64_t client_sent = 0;
  uint64_t client_ok = 0;
  uint64_t client_errors = 0;
  std::string mesh_counters;
  std::string monitor_counters;
  std::string injector_counters;
  std::string fault_trace;
  std::string supervisor_counters;
  std::string tenant_counters;
  std::string billing_a;
  std::string billing_b;
  uint32_t digest_a = 0;
  uint32_t digest_b = 0;
  std::string trace;  // Root trace + shard traces, in shard order.

  bool operator==(const DiffResult& o) const {
    return end_cycle == o.end_cycle && skipped_cycles == o.skipped_cycles && flits == o.flits &&
           handed_off == o.handed_off && cloned == o.cloned && client_sent == o.client_sent &&
           client_ok == o.client_ok && client_errors == o.client_errors &&
           mesh_counters == o.mesh_counters && monitor_counters == o.monitor_counters &&
           injector_counters == o.injector_counters && fault_trace == o.fault_trace &&
           supervisor_counters == o.supervisor_counters && tenant_counters == o.tenant_counters &&
           billing_a == o.billing_a && billing_b == o.billing_b && digest_a == o.digest_a &&
           digest_b == o.digest_b && trace == o.trace;
  }
};

// 8x8 board, 4 column-band shards (x in {0,1} | {2,3} | {4,5} | {6,7}).
// Tile ids are row-major: tile = y*8 + x.
DiffResult RunWorkload(uint32_t threads) {
  constexpr uint32_t kShards = 4;
  constexpr Cycle kCycles = 60'000;

  TestBoardOptions options;
  options.width = 8;
  options.height = 8;
  options.reconfig_cycles = 2'000;
  options.tile_region_cells = 25'000;  // 64 tiles of 100k would not fit VU9P.
  TestBoard tb(options);

  std::string root_trace;
  std::vector<std::string> shard_traces(kShards);
  const LogLevel prev_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  // Setup-time logs (deploys, grants — main thread, no domain installed yet)
  // and root-phase logs both land in the root capture.
  SetLogSink(StringSink, &root_trace);
  tb.sim.context().SetLogSink(StringSink, &root_trace);

  // --- Tenants: shard-aligned tile sets, so each tenant's shared NoC token
  // bucket is only ever drawn by one shard's thread. ---
  TenantManager tenants(&tb.os, /*meter_period=*/10'000);
  TenantQuota quota;
  quota.max_tiles = 4;
  quota.noc_flits_per_1k = 4'000;
  quota.noc_burst_flits = 256;
  const TenantId tenant_a = tenants.CreateTenant("alpha", quota);
  const TenantId tenant_b = tenants.CreateTenant("beta", quota);
  const AppId app_a = tenants.CreateApp(tenant_a, "alpha_app");
  const AppId app_b = tenants.CreateApp(tenant_b, "beta_app");

  auto pin = [](TileId tile) {
    DeployOptions o;
    o.tile = tile;
    return o;
  };

  // Tenant A lives in shard 0 (x in {0,1}); tenant B in shard 3 (x in {6,7}).
  ServiceId svc_a = 0;
  EXPECT_NE(tenants.Deploy(tenant_a, app_a, std::make_unique<EchoAccelerator>(5), &svc_a,
                           pin(/*x=1,y=1*/ 9)),
            kInvalidTile);
  auto* client_a = new PeriodicClient(svc_a, /*period=*/120, /*limit=*/1'000'000);
  const TileId ct_a = tenants.Deploy(tenant_a, app_a, std::unique_ptr<Accelerator>(client_a),
                                     nullptr, pin(/*x=0,y=1*/ 8));
  EXPECT_NE(ct_a, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_a, ct_a, svc_a);

  ServiceId svc_b = 0;
  EXPECT_NE(tenants.Deploy(tenant_b, app_b, std::make_unique<EchoAccelerator>(5), &svc_b,
                           pin(/*x=6,y=6*/ 54)),
            kInvalidTile);
  auto* client_b = new PeriodicClient(svc_b, /*period=*/150, /*limit=*/1'000'000);
  const TileId ct_b = tenants.Deploy(tenant_b, app_b, std::unique_ptr<Accelerator>(client_b),
                                     nullptr, pin(/*x=7,y=6*/ 55));
  EXPECT_NE(ct_b, kInvalidTile);
  (void)tenants.GrantSendToService(tenant_b, ct_b, svc_b);

  // --- Cross-shard IPC (plain app, per-tile limits only): every request and
  // reply crosses one or three shard cuts. ---
  const AppId app_x = tb.os.CreateApp("crossers");

  ServiceId svc_far = 0;  // Client in shard 0 -> service in shard 3: three cuts.
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_far, pin(/*x=7,y=3*/ 31)),
      kInvalidTile);
  auto* client_far = new PeriodicClient(svc_far, /*period=*/40, /*limit=*/1'000'000);
  const TileId ct_far =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_far), nullptr, pin(/*x=0,y=3*/ 24));
  EXPECT_NE(ct_far, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_far, svc_far);

  ServiceId svc_near = 0;  // Client in shard 1 -> service in shard 2: one cut.
  const TileId crash_tile = /*x=4,y=5*/ 44;
  EXPECT_NE(tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(10), &svc_near, pin(crash_tile)),
            kInvalidTile);
  auto* client_near = new PeriodicClient(svc_near, /*period=*/25, /*limit=*/1'000'000);
  const TileId ct_near =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(client_near), nullptr, pin(/*x=3,y=5*/ 43));
  EXPECT_NE(ct_near, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_near, svc_near);

  // Saturator: floods the x=1|2 and x=3|4 cuts early on, then goes quiet so
  // the tail of the run exercises fast-forwarding under the sharded engine.
  ServiceId svc_burst = 0;
  EXPECT_NE(
      tb.os.Deploy(app_x, std::make_unique<EchoAccelerator>(2), &svc_burst, pin(/*x=5,y=0*/ 5)),
      kInvalidTile);
  auto* burst = new PeriodicClient(svc_burst, /*period=*/2, /*limit=*/4'000);
  const TileId ct_burst =
      tb.os.Deploy(app_x, std::unique_ptr<Accelerator>(burst), nullptr, pin(/*x=2,y=0*/ 2));
  EXPECT_NE(ct_burst, kInvalidTile);
  (void)tb.os.GrantSendToService(ct_burst, svc_burst);

  // --- Chaos: a supervisor-healed crash plus windows of link faults. ---
  Supervisor sup(&tb.os);
  sup.Manage(crash_tile, [] { return std::make_unique<EchoAccelerator>(10); });

  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDrop(8'000, 6'000, 0.2)
      .LinkCorrupt(16'000, 6'000, 0.2)
      .AccelCrash(25'000, crash_tile)
      .DramBitFlips(30'000, 4)
      .LinkDrop(35'000, 5'000, 0.25);
  FaultInjector injector(plan, FaultHooks{.os = &tb.os,
                                          .mesh = &tb.board.mesh(),
                                          .memory = &tb.board.memory()});
  // OnLinkTraverse runs inside shard phases, so the sharded engine needs one
  // fault stream per tile — and with it, thread-count determinism.
  injector.EnableShardedLinkFaults(tb.board.mesh().num_tiles());

  // --- The engine under test. ---
  ParallelSimulator psim(&tb.sim, &tb.board.mesh(), ParallelConfig{kShards, threads});
  EXPECT_EQ(psim.shards(), kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(StringSink, &shard_traces[s]);
  }

  psim.Run(kCycles);

  DiffResult r;
  r.end_cycle = tb.sim.now();
  r.skipped_cycles = tb.sim.skipped_cycles();
  r.flits = tb.board.mesh().TotalFlitsRouted();
  r.handed_off = tb.board.mesh().BoundaryFlitsHandedOff();
  r.cloned = tb.board.mesh().BoundaryPacketsCloned();
  r.client_sent =
      client_a->sent + client_b->sent + client_far->sent + client_near->sent + burst->sent;
  r.client_ok = client_a->ok + client_b->ok + client_far->ok + client_near->ok + burst->ok;
  r.client_errors = client_a->errors + client_b->errors + client_far->errors +
                    client_near->errors + burst->errors;
  r.mesh_counters = tb.board.mesh().AggregateCounters().ToString();
  r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
  r.injector_counters = injector.counters().ToString();
  r.fault_trace = injector.TraceString();
  r.supervisor_counters = sup.counters().ToString();
  r.tenant_counters = tenants.counters().ToString();
  r.billing_a = tenants.BillingRecords(tenant_a);
  r.billing_b = tenants.BillingRecords(tenant_b);
  r.digest_a = tenants.BillingDigest(tenant_a);
  r.digest_b = tenants.BillingDigest(tenant_b);
  r.trace = root_trace;
  for (const std::string& t : shard_traces) {
    r.trace += t;
  }

  // Detach every sink before teardown: the capture strings die before the
  // board (and before the mesh retires the shard contexts).
  for (uint32_t s = 0; s < kShards; ++s) {
    psim.shard_context(s)->SetLogSink(nullptr, nullptr);
  }
  tb.sim.context().SetLogSink(nullptr, nullptr);
  SetLogSink(nullptr, nullptr);
  SetLogLevel(prev_level);
  return r;
}

TEST(ParallelDifferentialTest, FullWorkloadIsByteIdenticalAcrossThreadCounts) {
  const DiffResult t1 = RunWorkload(1);

  // The workload is real: traffic flowed on every path, faults landed, the
  // supervisor healed the crash, billing was cut, and packets crossed cuts.
  EXPECT_EQ(t1.end_cycle, 60'000u);
  EXPECT_GT(t1.client_sent, 2'000u);
  EXPECT_GT(t1.client_ok, 2'000u);
  EXPECT_GT(t1.handed_off, 1'000u);
  EXPECT_GT(t1.cloned, 0u);
  EXPECT_NE(t1.injector_counters.find("fault.accel_crash=1"), std::string::npos);
  EXPECT_NE(t1.injector_counters.find("fault.link_drops_applied"), std::string::npos);
  EXPECT_NE(t1.supervisor_counters.find("supervisor"), std::string::npos);
  EXPECT_GT(t1.digest_a, 0u);
  EXPECT_GT(t1.digest_b, 0u);
  EXPECT_FALSE(t1.billing_a.empty());
  EXPECT_FALSE(t1.trace.empty());

  const DiffResult t2 = RunWorkload(2);
  const DiffResult t4 = RunWorkload(4);

  // Field-by-field first (readable diffs on failure), then the full struct.
  EXPECT_EQ(t2.end_cycle, t1.end_cycle);
  EXPECT_EQ(t2.fault_trace, t1.fault_trace);
  EXPECT_EQ(t2.mesh_counters, t1.mesh_counters);
  EXPECT_EQ(t2.monitor_counters, t1.monitor_counters);
  EXPECT_EQ(t2.billing_a, t1.billing_a);
  EXPECT_EQ(t2.billing_b, t1.billing_b);
  EXPECT_EQ(t2.trace, t1.trace);
  EXPECT_TRUE(t2 == t1) << "threads=2 diverged from threads=1";

  EXPECT_EQ(t4.end_cycle, t1.end_cycle);
  EXPECT_EQ(t4.fault_trace, t1.fault_trace);
  EXPECT_EQ(t4.mesh_counters, t1.mesh_counters);
  EXPECT_EQ(t4.monitor_counters, t1.monitor_counters);
  EXPECT_EQ(t4.billing_a, t1.billing_a);
  EXPECT_EQ(t4.billing_b, t1.billing_b);
  EXPECT_EQ(t4.trace, t1.trace);
  EXPECT_TRUE(t4 == t1) << "threads=4 diverged from threads=1";
}

}  // namespace
}  // namespace apiary
