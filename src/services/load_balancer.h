// Load balancer: fans requests out across replicated backend accelerators
// and routes responses back — the paper's scale-out story ("a replicated
// accelerator with internal load balancing for higher bandwidth", 4.1).
#ifndef SRC_SERVICES_LOAD_BALANCER_H_
#define SRC_SERVICES_LOAD_BALANCER_H_

#include <map>
#include <vector>

#include "src/core/accelerator.h"
#include "src/stats/summary.h"

namespace apiary {

class LoadBalancer : public Accelerator {
 public:
  // Adds a backend by the endpoint capability this tile holds for it
  // (minted by the kernel during wiring).
  void AddBackend(CapRef endpoint) { backends_.push_back(Backend{endpoint, 0}); }

  // Handles kOpLbConfig (payload: packed u32 CapRefs naming the new backend
  // set, replacing the old one) and forwards everything else to a backend.
  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "load_balancer"; }
  uint32_t LogicCellCost() const override { return 8000; }

  const CounterSet& counters() const { return counters_; }
  size_t num_backends() const { return backends_.size(); }

 private:
  struct Backend {
    CapRef endpoint;
    uint64_t outstanding;
  };

  size_t PickBackend();

  std::vector<Backend> backends_;
  size_t rr_next_ = 0;
  uint64_t next_forward_id_ = 1;
  // Forwarded request id -> (original request, backend index).
  std::map<uint64_t, std::pair<Message, size_t>> in_flight_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_LOAD_BALANCER_H_
