#include "src/orch/orch_service.h"

#include <utility>

#include "src/services/opcodes.h"

namespace apiary {

void OrchService::OnMessage(const Message& msg, TileApi& api) {
  Message reply;
  reply.opcode = msg.opcode;
  switch (msg.opcode) {
    case kOpOrchScale: {
      if (msg.payload.size() != 8) {
        reply.status = MsgStatus::kBadRequest;
        break;
      }
      const uint32_t min = GetU32(msg.payload, 0);
      const uint32_t max = GetU32(msg.payload, 4);
      if (min == 0 || min > max) {
        reply.status = MsgStatus::kBadRequest;
        break;
      }
      autoscaler_->SetBounds(min, max);
      PutU32(reply.payload, autoscaler_->live_replicas());
      break;
    }
    case kOpOrchStatus: {
      PutU32(reply.payload, autoscaler_->live_replicas());
      PutU32(reply.payload, autoscaler_->target_replicas());
      PutU64(reply.payload, autoscaler_->scale_ups());
      PutU64(reply.payload, autoscaler_->scale_downs());
      break;
    }
    default:
      reply.status = MsgStatus::kBadRequest;
      break;
  }
  api.Reply(msg, std::move(reply));
}

}  // namespace apiary
