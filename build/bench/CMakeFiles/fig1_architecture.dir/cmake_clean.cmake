file(REMOVE_RECURSE
  "CMakeFiles/fig1_architecture.dir/fig1_architecture.cc.o"
  "CMakeFiles/fig1_architecture.dir/fig1_architecture.cc.o.d"
  "fig1_architecture"
  "fig1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
