#include "src/noc/mesh.h"

#include <cstdlib>

namespace apiary {

Mesh::Mesh(MeshConfig config, SimContext* context) : config_(config) {
  if (context != nullptr) {
    pool_ = &PacketPool::ForContext(*context);
  } else {
    owned_pool_ = std::make_unique<PacketPool>();
    pool_ = owned_pool_.get();
  }
  const uint32_t n = num_tiles();
  routers_.reserve(n);
  nis_.reserve(n);
  for (uint32_t y = 0; y < config_.height; ++y) {
    for (uint32_t x = 0; x < config_.width; ++x) {
      routers_.push_back(std::make_unique<Router>(x, y, config_.width, config_.height,
                                                  config_.router_buffer_depth));
    }
  }
  for (uint32_t t = 0; t < n; ++t) {
    nis_.push_back(std::make_unique<NetworkInterface>(t, routers_[t].get(),
                                                      config_.ni_inject_queue_flits,
                                                      config_.force_single_vc, pool_));
    routers_[t]->SetLocalInterface(nis_[t].get());
  }
  // Wire up the grid.
  for (uint32_t y = 0; y < config_.height; ++y) {
    for (uint32_t x = 0; x < config_.width; ++x) {
      Router* r = routers_[y * config_.width + x].get();
      if (y > 0) {
        r->SetNeighbor(kPortNorth, routers_[(y - 1) * config_.width + x].get());
      }
      if (y + 1 < config_.height) {
        r->SetNeighbor(kPortSouth, routers_[(y + 1) * config_.width + x].get());
      }
      if (x + 1 < config_.width) {
        r->SetNeighbor(kPortEast, routers_[y * config_.width + x + 1].get());
      }
      if (x > 0) {
        r->SetNeighbor(kPortWest, routers_[y * config_.width + x - 1].get());
      }
    }
  }
}

void Mesh::Tick(Cycle now) {
  // Phase 1: flits staged last cycle become visible everywhere.
  for (auto& r : routers_) {
    r->CommitStaged();
  }
  // Phase 2: route one flit per output port per router.
  for (auto& r : routers_) {
    r->RouteCycle(now);
  }
  // Phase 3: NIs feed the local input ports (visible next cycle).
  for (auto& ni : nis_) {
    ni->InjectCycle(now);
  }
}

Cycle Mesh::NextActivity(Cycle now) const {
  for (const auto& r : routers_) {
    if (r->HasBufferedFlits()) {
      return now;
    }
  }
  for (const auto& ni : nis_) {
    if (ni->HasPendingInject()) {
      return now;
    }
  }
  // Empty fabric: only the fault model (stall windows charge a counter every
  // open cycle) can still need per-cycle routing work.
  return fault_model_ != nullptr ? fault_model_->NextMeshActivity(now) : kNoActivity;
}

void Mesh::SetFaultModel(NocFaultModel* model) {
  fault_model_ = model;
  for (auto& r : routers_) {
    r->SetFaultModel(model);
  }
}

void Mesh::SetArbClassWeight(uint8_t cls, uint32_t weight) {
  for (auto& r : routers_) {
    r->SetClassWeight(cls, weight);
  }
}

uint32_t Mesh::Hops(TileId a, TileId b) const {
  const int ax = static_cast<int>(a % config_.width);
  const int ay = static_cast<int>(a / config_.width);
  const int bx = static_cast<int>(b % config_.width);
  const int by = static_cast<int>(b / config_.width);
  return static_cast<uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

CounterSet Mesh::AggregateCounters() const {
  CounterSet total;
  for (const auto& r : routers_) {
    total.Merge(r->counters());
  }
  for (const auto& ni : nis_) {
    total.Merge(ni->counters());
  }
  return total;
}

Histogram Mesh::AggregateLatency() const {
  Histogram total;
  for (const auto& ni : nis_) {
    total.Merge(ni->latency_histogram());
  }
  return total;
}

uint64_t Mesh::TotalFlitsRouted() const {
  uint64_t total = 0;
  for (const auto& r : routers_) {
    total += r->flits_routed();
  }
  return total;
}

uint64_t Mesh::LogicCellCost() const {
  return static_cast<uint64_t>(num_tiles()) *
         (Router::LogicCellCost(config_.router_buffer_depth) +
          NetworkInterface::LogicCellCost());
}

}  // namespace apiary
