#include "src/services/gateway.h"

#include "src/core/service_ids.h"

namespace apiary {

void NetGateway::OnBoot(TileApi& api) {
  netsvc_ = api.LookupService(kNetworkService);
  if (netsvc_ != kInvalidCapRef && !registered_) {
    Message reg;
    reg.opcode = kOpNetRegister;
    if (api.Send(std::move(reg), netsvc_).ok()) {
      registered_ = true;
    }
  }
}

void NetGateway::SendToClient(uint32_t endpoint, uint64_t client_id, MsgStatus status,
                              const PayloadBuf& data, TileApi& api) {
  Message out;
  out.opcode = kOpNetSend;
  PutU32(out.payload, endpoint);
  PutU64(out.payload, client_id);
  out.payload.push_back(static_cast<uint8_t>(status));
  out.payload.insert(out.payload.end(), data.begin(), data.end());
  if (!api.Send(std::move(out), netsvc_).ok()) {
    counters_.Add("gateway.net_send_fail");
  }
}

void NetGateway::HandleInbound(const Message& msg, TileApi& api) {
  // Layout after kOpNetDeliver's u32 src_endpoint: u64 client_id, u16 op.
  if (msg.payload.size() < 14) {
    counters_.Add("gateway.malformed");
    return;
  }
  const uint32_t client_endpoint = GetU32(msg.payload, 0);
  const uint64_t client_id = GetU64(msg.payload, 4);
  const uint16_t opcode = static_cast<uint16_t>(msg.payload[12]) |
                          (static_cast<uint16_t>(msg.payload[13]) << 8);
  if (backend_ == kInvalidCapRef) {
    SendToClient(client_endpoint, client_id, MsgStatus::kNoSuchService, {}, api);
    return;
  }
  Message fwd;
  fwd.opcode = opcode;
  fwd.payload.assign(msg.payload.begin() + 14, msg.payload.end());
  fwd.request_id = next_forward_id_++;
  const uint64_t fwd_id = fwd.request_id;
  const SendResult r = api.Send(std::move(fwd), backend_);
  if (!r.ok()) {
    counters_.Add("gateway.backend_reject");
    SendToClient(client_endpoint, client_id, r.status, {}, api);
    return;
  }
  in_flight_[fwd_id] = InFlight{client_endpoint, client_id};
  counters_.Add("gateway.forwarded");
}

void NetGateway::HandleBackendResponse(const Message& msg, TileApi& api) {
  auto it = in_flight_.find(msg.request_id);
  if (it == in_flight_.end()) {
    counters_.Add("gateway.orphan_response");
    return;
  }
  SendToClient(it->second.client_endpoint, it->second.client_id, msg.status, msg.payload, api);
  in_flight_.erase(it);
  counters_.Add("gateway.completed");
}

void NetGateway::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind == MsgKind::kResponse) {
    if (msg.opcode == kOpNetRegister) {
      counters_.Add(msg.status == MsgStatus::kOk ? "gateway.registered"
                                                 : "gateway.register_failed");
      return;
    }
    HandleBackendResponse(msg, api);
    return;
  }
  if (msg.opcode == kOpNetDeliver) {
    HandleInbound(msg, api);
    return;
  }
  Message err;
  err.opcode = msg.opcode;
  err.status = MsgStatus::kBadRequest;
  api.Reply(msg, std::move(err));
}

}  // namespace apiary
