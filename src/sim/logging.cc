#include "src/sim/logging.h"

#include <cstdio>

namespace apiary {
namespace {

LogLevel g_level = LogLevel::kOff;
LogSink g_sink = nullptr;
void* g_sink_user = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void SetLogSink(LogSink sink, void* user) {
  g_sink = sink;
  g_sink_user = user;
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level || level == LogLevel::kOff) {
    return;
  }
  if (g_sink != nullptr) {
    g_sink(level, msg, g_sink_user);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace apiary
