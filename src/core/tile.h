// A tile: one NoC endpoint holding a trusted monitor and an untrusted,
// dynamically reconfigurable accelerator slot (Figure 1).
#ifndef SRC_CORE_TILE_H_
#define SRC_CORE_TILE_H_

#include <memory>
#include <string>

#include "src/core/accelerator.h"
#include "src/core/monitor.h"
#include "src/sim/clocked.h"

namespace apiary {

// Fault-handling policy applied when the accelerator raises (or the monitor
// detects) a fault (Section 4.4).
enum class FaultPolicy : uint8_t {
  kFailStop = 0,   // Concurrent-only accelerators: drain and stop the tile.
  kPreempt = 1,    // Preemptible accelerators: swap the faulty context out.
};

class Tile : public Clocked {
 public:
  Tile(TileId id, NetworkInterface* ni, MonitorConfig config, Cycle reconfig_cycles);

  // Loads `accel` into the slot. Takes `reconfig_cycles` of partial
  // reconfiguration — counted from `now`, the caller's current cycle (a
  // parked tile's own cached clock can be arbitrarily stale) — before the
  // accelerator boots; pass `immediate` for time-zero board bring-up.
  void Configure(std::unique_ptr<Accelerator> accel, bool immediate, Cycle now);

  // Swaps the current (preemptible) accelerator's context out and loads a
  // replacement, transferring saved state if the replacement wants it.
  // Returns false when the current accelerator is not preemptible.
  bool PreemptSwap(std::unique_ptr<Accelerator> replacement);

  void Tick(Cycle now) override;
  // Quiescent when the monitor has nothing to drain or flush, no
  // reconfiguration is counting down, and the (booted, healthy) accelerator
  // itself declares idleness. Wedged/stopped slots contribute nothing: their
  // accelerator is not ticked in a cycle-by-cycle run either.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  void OnFastForward(Cycle resume_cycle) override;
  // A tile is anchored to its NoC endpoint: the sharded engine ticks it (and
  // with it its monitor and accelerator) on the worker owning its shard.
  [[nodiscard]] TileId PartitionHome() const override { return id_; }
  // The tile's policy follows the loaded accelerator (a campaign-flag
  // attacker needs boundary polling; most logic honors the full wake
  // contract). Swap points call RequestPolicyRefresh().
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return accel_ != nullptr ? accel_->SchedulingPolicy() : SchedPolicy::kActiveSet;
  }
  std::string DebugName() const override;

  Monitor& monitor() { return monitor_; }
  const Monitor& monitor() const { return monitor_; }
  Accelerator* accelerator() { return accel_.get(); }
  TileId id() const { return id_; }
  bool reconfiguring() const { return reconfiguring_; }
  bool vacant() const { return accel_ == nullptr && !reconfiguring_; }

  void set_fault_policy(FaultPolicy policy) { fault_policy_ = policy; }
  FaultPolicy fault_policy() const { return fault_policy_; }

  // Fault injection (src/fault): an SEU silently wedges the accelerator
  // logic. The tile stops ticking the accelerator but does NOT mark itself
  // faulted — exactly like real radiation-induced upsets, the only external
  // symptom is silence (missed heartbeats, unanswered requests). Cleared by
  // partial reconfiguration.
  void InjectSeuWedge() {
    seu_wedged_ = true;
    // Wedging only gates work (never advances it), but the wake is free and
    // keeps the declaration change visible at the next boundary.
    RequestWake();
  }
  bool seu_wedged() const { return seu_wedged_; }

 private:
  void HandleAcceleratorFault();

  TileId id_;
  Monitor monitor_;
  std::unique_ptr<Accelerator> accel_;
  std::unique_ptr<Accelerator> pending_accel_;
  Cycle reconfig_cycles_;
  Cycle reconfig_done_at_ = 0;
  bool reconfiguring_ = false;
  bool booted_ = false;
  bool seu_wedged_ = false;
  FaultPolicy fault_policy_ = FaultPolicy::kFailStop;
};

}  // namespace apiary

#endif  // SRC_CORE_TILE_H_
