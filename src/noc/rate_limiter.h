// Token-bucket rate limiter. Instantiated per flow by the Apiary monitor to
// bound an accelerator's injection rate (Section 4.5: "having permissioned
// access and rate limiting are necessary to prevent malicious accelerators
// from ... causing resource exhaustion").
#ifndef SRC_NOC_RATE_LIMITER_H_
#define SRC_NOC_RATE_LIMITER_H_

#include <cstdint>

#include "src/sim/types.h"

namespace apiary {

class TokenBucket {
 public:
  // `tokens_per_1k_cycles` is the refill rate (tokens are flits);
  // `burst_tokens` caps the bucket. A default-constructed bucket is
  // unlimited.
  TokenBucket() = default;
  TokenBucket(uint64_t tokens_per_1k_cycles, uint64_t burst_tokens);

  // True if `cost` tokens are available at `now`; if so, consumes them.
  bool TryConsume(Cycle now, uint64_t cost);

  // Peek without consuming.
  bool WouldAllow(Cycle now, uint64_t cost);

  bool unlimited() const { return unlimited_; }
  uint64_t rate_per_1k() const { return rate_per_1k_; }

 private:
  void Refill(Cycle now);

  bool unlimited_ = true;
  uint64_t rate_per_1k_ = 0;
  uint64_t burst_ = 0;
  // Token count scaled by 1000 to avoid fractional refill loss.
  uint64_t milli_tokens_ = 0;
  Cycle last_refill_ = 0;
};

}  // namespace apiary

#endif  // SRC_NOC_RATE_LIMITER_H_
