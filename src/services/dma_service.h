// The Apiary DMA service: capability-checked segment-to-segment copies.
//
// Large data movement between accelerators' segments (e.g. handing a frame
// buffer from one pipeline stage to the next) shouldn't stream every byte
// through messages. The DMA service performs the copy at the memory
// controller, but only within the *two* segment grants the requester's
// monitor attached — source must be readable, destination writable, and both
// ranges in bounds. A single message thus moves megabytes with the same
// isolation guarantees as a 4-byte access (Sections 4.5/4.6).
#ifndef SRC_SERVICES_DMA_SERVICE_H_
#define SRC_SERVICES_DMA_SERVICE_H_

#include <deque>
#include <memory>

#include "src/core/accelerator.h"
#include "src/mem/memory_controller.h"
#include "src/services/opcodes.h"
#include "src/stats/summary.h"

namespace apiary {

// Request (kOpDmaCopy): u64 src_offset, u64 dst_offset, u32 len,
// grant  = source segment (read), grant2 = destination segment (write).
// Reply: u32 bytes_copied.
inline constexpr uint16_t kOpDmaCopy = 0x0601;

class DmaService : public Accelerator {
 public:
  // `chunk_bytes` is the engine's burst size: the copy is issued to DRAM in
  // chunks, so timing reflects both the read and write streams.
  explicit DmaService(MemoryBackend* memory, uint32_t chunk_bytes = 512)
      : memory_(memory), chunk_bytes_(chunk_bytes) {}

  void OnMessage(const Message& msg, TileApi& api) override;
  void Tick(TileApi& api) override;

  std::string name() const override { return "dma_service"; }
  uint32_t LogicCellCost() const override { return 9000; }

  const CounterSet& counters() const { return counters_; }

 private:
  struct Job {
    Message request;
    uint64_t src_addr = 0;
    uint64_t dst_addr = 0;
    uint32_t total = 0;
    uint32_t read_issued = 0;     // Bytes whose read has been submitted.
    uint32_t written_done = 0;    // Bytes whose write has completed.
    std::vector<uint8_t> staging;
    // (offset, chunk) writes that hit DRAM backpressure, to retry.
    std::deque<std::pair<uint32_t, uint32_t>> rewrites;
  };

  void ReplyError(const Message& msg, TileApi& api, MsgStatus status);

  MemoryBackend* memory_;
  uint32_t chunk_bytes_;
  std::deque<std::shared_ptr<Job>> jobs_;
  CounterSet counters_;
};

}  // namespace apiary

#endif  // SRC_SERVICES_DMA_SERVICE_H_
