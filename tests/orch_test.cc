// Tests for the elastic orchestration subsystem (src/orch): resource-aware
// placement, ICAP-serialized reconfiguration scheduling, the metrics-driven
// autoscaler (scale-up under load, scale-down when idle, concurrent faults),
// and the on-fabric control plane (kOpOrchScale / kOpOrchStatus /
// kOpOrchStats).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/accel/echo.h"
#include "src/noc/mesh.h"
#include "src/orch/autoscaler.h"
#include "src/orch/orch_service.h"
#include "src/orch/placer.h"
#include "src/orch/reconfig_scheduler.h"
#include "src/services/load_balancer.h"
#include "src/services/supervisor.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

TestBoardOptions OrchOptions(Cycle reconfig_cycles = 2'000) {
  TestBoardOptions opts;
  opts.reconfig_cycles = reconfig_cycles;
  return opts;
}

// Open-loop request generator: one kOpEcho request every `period` cycles.
class Flooder : public Accelerator {
 public:
  Flooder(ServiceId lb_svc, Cycle period) : lb_svc_(lb_svc), period_(period) {}
  void Tick(TileApi& api) override {
    if (!enabled || api.now() % period_ != 0) {
      return;
    }
    Message msg;
    msg.opcode = kOpEcho;
    msg.request_id = ++sent;
    msg.payload = {static_cast<uint8_t>(sent)};
    api.Send(std::move(msg), api.LookupService(lb_svc_));
  }
  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind != MsgKind::kResponse) {
      return;
    }
    (msg.status == MsgStatus::kOk ? ok : errors) += 1;
  }
  std::string name() const override { return "flooder"; }
  uint32_t LogicCellCost() const override { return 1000; }

  bool enabled = true;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;

 private:
  ServiceId lb_svc_;
  Cycle period_;
};

// Dies shortly after boot; used to drive a tile into quarantine.
class CrashLooper : public Accelerator {
 public:
  void OnBoot(TileApi& api) override { crash_at_ = api.now() + 200; }
  void OnMessage(const Message&, TileApi&) override {}
  void Tick(TileApi& api) override {
    if (api.now() >= crash_at_) {
      api.RaiseFault("reset loop");
    }
  }
  std::string name() const override { return "crash_looper"; }
  uint32_t LogicCellCost() const override { return 1000; }

 private:
  Cycle crash_at_ = ~0ull;
};

// ------------------------------------------------------------------
// Placer.
// ------------------------------------------------------------------

TEST(PlacerTest, CoPlacesNearThenSpreadsApart) {
  TestBoard tb(OrchOptions());
  AppId app = tb.os.CreateApp("a");
  const TileId anchor = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  ASSERT_NE(anchor, kInvalidTile);
  const Mesh& mesh = tb.board.mesh();

  Placer placer(&tb.os);
  PlacementRequest req;
  req.logic_cells = 1000;
  req.near = {anchor};
  const TileId first = placer.Pick(req);
  ASSERT_NE(first, kInvalidTile);
  // Locality: the pick is a direct mesh neighbor of the anchor.
  EXPECT_EQ(mesh.Hops(first, anchor), 1u);

  // With `first` reserved and nominated as apart, the next pick stays on the
  // anchor's neighbor ring but maximizes distance from the sibling replica.
  placer.Reserve(first);
  req.apart = {first};
  const TileId second = placer.Pick(req);
  ASSERT_NE(second, kInvalidTile);
  EXPECT_NE(second, first);
  EXPECT_EQ(mesh.Hops(second, anchor), 1u);
  EXPECT_GE(mesh.Hops(second, first), 2u);
  EXPECT_EQ(placer.counters().Get("placer.reservations"), 1u);
}

TEST(PlacerTest, RejectsOccupiedReservedOversizedAndFaultedRegions) {
  TestBoard tb(OrchOptions());
  AppId app = tb.os.CreateApp("a");
  const TileId occupied = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  const TileId victim = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  tb.sim.Run(5);

  Placer placer(&tb.os);
  EXPECT_FALSE(placer.Eligible(occupied, 1000));

  ASSERT_FALSE(tb.os.FreeTiles().empty());
  const TileId free_tile = tb.os.FreeTiles().front();
  EXPECT_TRUE(placer.Eligible(free_tile, 1000));
  // No image larger than one tile region ever fits.
  EXPECT_FALSE(placer.Eligible(
      free_tile, static_cast<uint32_t>(tb.os.TileRegionCells() + 1)));

  // Reservations exclude; release restores.
  placer.Reserve(free_tile);
  EXPECT_FALSE(placer.Eligible(free_tile, 1000));
  placer.Release(free_tile);
  EXPECT_TRUE(placer.Eligible(free_tile, 1000));

  // A fail-stopped region is never a candidate.
  tb.os.FailStop(victim, "dead");
  EXPECT_FALSE(placer.Eligible(victim, 1000));
}

TEST(PlacerTest, NeverTargetsATileTheSupervisorCondemned) {
  TestBoard tb(OrchOptions(500));
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::make_unique<CrashLooper>());

  SupervisorConfig scfg;
  scfg.poll_period = 64;
  scfg.backoff_base_cycles = 500;
  scfg.quarantine_after = 2;
  Supervisor sup(&tb.os, scfg);
  sup.Manage(t, [] { return std::make_unique<CrashLooper>(); });
  ASSERT_TRUE(tb.sim.RunUntil([&] { return sup.quarantined(t); }, 200'000));

  // Blank the crash-looping region: the tile is now vacant and its monitor
  // healthy, so only the supervisor knows it is condemned.
  ASSERT_TRUE(tb.os.Undeploy(t));
  tb.sim.Run(5);  // The blanking bitstream completes on the next tick.
  ASSERT_TRUE(tb.os.tile(t).vacant());

  Placer without_supervisor(&tb.os);
  EXPECT_TRUE(without_supervisor.Eligible(t, 1000));
  Placer with_supervisor(&tb.os, &sup);
  EXPECT_FALSE(with_supervisor.Eligible(t, 1000));
  PlacementRequest req;
  req.logic_cells = 1000;
  EXPECT_NE(with_supervisor.Pick(req), t);
}

// ------------------------------------------------------------------
// ReconfigScheduler.
// ------------------------------------------------------------------

TEST(ReconfigSchedulerTest, SerializesLoadsThroughTheSingleIcap) {
  constexpr Cycle kReconfig = 2'000;
  TestBoard tb(OrchOptions(kReconfig));
  AppId app = tb.os.CreateApp("a");
  ReconfigScheduler sched(&tb.os, app);

  const std::vector<TileId> free_tiles = tb.os.FreeTiles();
  ASSERT_GE(free_tiles.size(), 2u);
  std::vector<std::pair<TileId, Cycle>> done;
  std::vector<ServiceId> services;
  for (int i = 0; i < 2; ++i) {
    sched.ScheduleLoad(
        free_tiles[i], [] { return std::make_unique<EchoAccelerator>(0); },
        [&](TileId tile, ServiceId svc, bool ok) {
          ASSERT_TRUE(ok);
          done.push_back({tile, tb.sim.now()});
          services.push_back(svc);
        });
  }

  // The single configuration port must never serve two regions at once.
  bool overlap = false;
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] {
        uint32_t reconfiguring = 0;
        for (TileId t = 0; t < tb.os.num_tiles(); ++t) {
          reconfiguring += tb.os.tile(t).reconfiguring() ? 1 : 0;
        }
        overlap = overlap || reconfiguring > 1;
        return done.size() == 2;
      },
      100'000));
  EXPECT_FALSE(overlap);
  EXPECT_EQ(done[0].first, free_tiles[0]);
  EXPECT_EQ(done[1].first, free_tiles[1]);
  // Strict serialization: the second load finished a full bitstream later.
  EXPECT_GE(done[1].second - done[0].second, kReconfig);
  EXPECT_EQ(sched.counters().Get("orch.loads_live"), 2u);

  // Both replicas actually serve.
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  for (ServiceId svc : services) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, tb.os.GrantSendToService(pt, svc));
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 2; }, 20'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(probe->received[1].status, MsgStatus::kOk);
}

TEST(ReconfigSchedulerTest, TeardownWaitsForDrainBeforeBlanking) {
  TestBoard tb(OrchOptions(1'000));
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  ReconfigSchedulerConfig rcfg;
  rcfg.drain_cycles = 500;
  rcfg.drain_deadline_cycles = 50'000;
  ReconfigScheduler sched(&tb.os, app, rcfg);

  bool drained = false;
  bool torn_down = false;
  bool ok_result = false;
  sched.ScheduleTeardown(
      t, [&] { return drained; },
      [&](TileId, bool ok) {
        torn_down = true;
        ok_result = ok;
      });

  // Not drained: the region stays configured well past the drain window.
  tb.sim.Run(5'000);
  EXPECT_FALSE(torn_down);
  EXPECT_FALSE(tb.os.tile(t).vacant());

  drained = true;
  const Cycle released_at = tb.sim.now();
  ASSERT_TRUE(tb.sim.RunUntil([&] { return torn_down; }, 50'000));
  EXPECT_TRUE(ok_result);
  EXPECT_TRUE(tb.os.tile(t).vacant());
  // Drain hold + blanking bitstream both elapsed after the predicate held.
  EXPECT_GE(tb.sim.now() - released_at, rcfg.drain_cycles + 1'000);
  EXPECT_EQ(sched.counters().Get("orch.teardowns_done"), 1u);
  EXPECT_EQ(sched.counters().Get("orch.teardowns_forced"), 0u);
}

TEST(ReconfigSchedulerTest, DrainDeadlineForcesTheTeardown) {
  TestBoard tb(OrchOptions(1'000));
  AppId app = tb.os.CreateApp("a");
  const TileId t = tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0));
  ReconfigSchedulerConfig rcfg;
  rcfg.drain_cycles = 100;
  rcfg.drain_deadline_cycles = 3'000;
  ReconfigScheduler sched(&tb.os, app, rcfg);

  bool torn_down = false;
  sched.ScheduleTeardown(
      t, [] { return false; },  // A stuck requester must not pin the region.
      [&](TileId, bool ok) {
        torn_down = true;
        EXPECT_TRUE(ok);
      });
  ASSERT_TRUE(tb.sim.RunUntil([&] { return torn_down; }, 50'000));
  EXPECT_TRUE(tb.os.tile(t).vacant());
  EXPECT_EQ(sched.counters().Get("orch.teardowns_forced"), 1u);
}

TEST(ReconfigSchedulerTest, YieldsTheIcapToAReconfigurationInProgress) {
  constexpr Cycle kReconfig = 2'000;
  TestBoard tb(OrchOptions(kReconfig));
  AppId app = tb.os.CreateApp("a");
  ReconfigScheduler sched(&tb.os, app);

  const std::vector<TileId> free_tiles = tb.os.FreeTiles();
  ASSERT_GE(free_tiles.size(), 2u);
  // A non-scheduler reconfiguration (the supervisor's recovery path uses the
  // same board state) claims the port first.
  DeployOptions options;
  options.tile = free_tiles[0];
  options.immediate = false;
  ASSERT_NE(tb.os.Deploy(app, std::make_unique<EchoAccelerator>(0), nullptr, options),
            kInvalidTile);
  ASSERT_TRUE(tb.os.tile(free_tiles[0]).reconfiguring());

  Cycle load_done_at = 0;
  sched.ScheduleLoad(
      free_tiles[1], [] { return std::make_unique<EchoAccelerator>(0); },
      [&](TileId, ServiceId, bool ok) {
        ASSERT_TRUE(ok);
        load_done_at = tb.sim.now();
      });
  ASSERT_TRUE(tb.sim.RunUntil([&] { return load_done_at != 0; }, 100'000));
  // The scheduled load could only start after the first bitstream finished.
  EXPECT_GE(load_done_at, 2 * kReconfig);
  EXPECT_GT(sched.counters().Get("orch.icap_stall_cycles"), 0u);
}

// ------------------------------------------------------------------
// Autoscaler.
// ------------------------------------------------------------------

// LB + adopted replicas + orchestration stack, wired the way a deployment
// would: placer chooses, scheduler reconfigures, autoscaler decides.
struct ElasticFixture {
  ElasticFixture(TestBoard& tb, uint32_t initial_replicas, AutoscalerConfig acfg,
                 Cycle echo_cycles = 200, const Supervisor* supervisor = nullptr)
      : board(tb) {
    app = tb.os.CreateApp("elastic");
    lb = new LoadBalancer();
    lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
    placer = std::make_unique<Placer>(&tb.os, supervisor);
    ReconfigSchedulerConfig rcfg;
    rcfg.drain_cycles = 200;
    rcfg.drain_deadline_cycles = 20'000;
    scheduler = std::make_unique<ReconfigScheduler>(&tb.os, app, rcfg);
    auto factory = [echo_cycles] { return std::make_unique<EchoAccelerator>(echo_cycles); };
    autoscaler = std::make_unique<Autoscaler>(&tb.os, lb, lb_tile, app, factory,
                                              placer.get(), scheduler.get(), acfg);
    for (uint32_t i = 0; i < initial_replicas; ++i) {
      ServiceId svc = 0;
      const TileId t = tb.os.Deploy(app, factory(), &svc);
      const CapRef ep = tb.os.GrantSendToService(lb_tile, svc);
      lb->AddBackend(ep);
      autoscaler->AdoptReplica(svc, t, ep);
      replica_tiles.push_back(t);
    }
  }

  TestBoard& board;
  AppId app = kInvalidApp;
  LoadBalancer* lb = nullptr;
  ServiceId lb_svc = 0;
  TileId lb_tile = kInvalidTile;
  std::vector<TileId> replica_tiles;
  std::unique_ptr<Placer> placer;
  std::unique_ptr<ReconfigScheduler> scheduler;
  std::unique_ptr<Autoscaler> autoscaler;
};

AutoscalerConfig FastUtilizationConfig() {
  AutoscalerConfig acfg;
  acfg.policy = ScalePolicy::kTargetUtilization;
  acfg.min_replicas = 1;
  acfg.max_replicas = 2;
  acfg.poll_period = 1'000;
  acfg.up_queue_per_replica = 2.0;
  acfg.down_queue_per_replica = 0.2;
  acfg.down_stable_polls = 2;
  acfg.cooldown_cycles = 4'000;
  acfg.replica_logic_cells = 1'000;
  return acfg;
}

TEST(AutoscalerTest, ScalesUpUnderSustainedLoad) {
  TestBoard tb(OrchOptions());
  ElasticFixture fx(tb, /*initial_replicas=*/1, FastUtilizationConfig(),
                    /*echo_cycles=*/200);
  // One request per 100 cycles against a 200-cycle engine: a single replica
  // saturates (queue grows without bound), two run at comfortable load.
  auto* flooder = new Flooder(fx.lb_svc, /*period=*/100);
  const TileId ft = tb.os.Deploy(fx.app, std::unique_ptr<Accelerator>(flooder));
  (void)tb.os.GrantSendToService(ft, fx.lb_svc);

  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return fx.autoscaler->live_replicas() == 2; }, 200'000));
  EXPECT_EQ(fx.autoscaler->scale_ups(), 1u);
  EXPECT_EQ(fx.autoscaler->scale_downs(), 0u);
  // The grown set holds: well-provisioned load does not trigger a shrink.
  tb.sim.Run(30'000);
  EXPECT_EQ(fx.autoscaler->live_replicas(), 2u);
  EXPECT_GT(flooder->ok, 0u);
  EXPECT_EQ(flooder->errors, 0u);
  // The new replica was spread away from the survivor but granted to the
  // balancer through the kernel.
  EXPECT_EQ(fx.lb->num_backends(), 2u);
}

TEST(AutoscalerTest, ScalesDownWhenIdleWithoutLosingResponses) {
  TestBoard tb(OrchOptions());
  ElasticFixture fx(tb, /*initial_replicas=*/2, FastUtilizationConfig(),
                    /*echo_cycles=*/300);

  // A burst of slow requests, all in flight when the trace goes quiet.
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(fx.app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, fx.lb_svc);
  for (int i = 0; i < 6; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    msg.payload = {static_cast<uint8_t>(i)};
    probe->EnqueueSend(msg, cap);
  }

  // Idle traffic drains, then the autoscaler retires the surplus replica
  // through drain -> blank, and every response still reached its requester.
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return fx.autoscaler->scale_downs() >= 1 && probe->received.size() == 6; },
      300'000));
  EXPECT_EQ(fx.autoscaler->live_replicas(), 1u);
  for (const Message& r : probe->received) {
    EXPECT_EQ(r.status, MsgStatus::kOk);
  }
  EXPECT_EQ(fx.lb->counters().Get("lb.orphan_responses"), 0u);
  EXPECT_EQ(fx.lb->counters().Get("lb.reply_failures"), 0u);
  EXPECT_EQ(fx.scheduler->counters().Get("orch.teardowns_done"), 1u);
  // The retired region is blanked and reusable.
  uint32_t vacant = 0;
  for (TileId t : fx.replica_tiles) {
    vacant += tb.os.tile(t).vacant() ? 1 : 0;
  }
  EXPECT_EQ(vacant, 1u);
  // Floor respected: nothing shrinks below min_replicas.
  tb.sim.Run(30'000);
  EXPECT_EQ(fx.autoscaler->live_replicas(), 1u);
}

TEST(AutoscalerTest, ScaleUpRidesOutAConcurrentFaultRecovery) {
  TestBoard tb(OrchOptions());
  SupervisorConfig scfg;
  scfg.poll_period = 64;
  scfg.backoff_base_cycles = 500;
  Supervisor sup(&tb.os, scfg);

  AutoscalerConfig acfg = FastUtilizationConfig();
  ElasticFixture fx(tb, /*initial_replicas=*/1, acfg, /*echo_cycles=*/200, &sup);

  // An unrelated supervised service crashes right as load ramps: its
  // recovery reconfiguration contends for the ICAP and its tile must not be
  // chosen for the new replica.
  AppId other = tb.os.CreateApp("other");
  const TileId victim = tb.os.Deploy(other, std::make_unique<EchoAccelerator>(0));
  sup.Manage(victim, [] { return std::make_unique<EchoAccelerator>(0); });

  auto* flooder = new Flooder(fx.lb_svc, /*period=*/100);
  const TileId ft = tb.os.Deploy(fx.app, std::unique_ptr<Accelerator>(flooder));
  (void)tb.os.GrantSendToService(ft, fx.lb_svc);
  tb.sim.Run(500);
  tb.os.monitor(victim).RaiseFault("injected SEU");

  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return fx.autoscaler->live_replicas() == 2 && sup.AllHealthy(); },
      300'000));
  EXPECT_GE(fx.autoscaler->scale_ups(), 1u);
  // The recovered tile still hosts the supervised service's fresh logic —
  // the new replica landed somewhere else.
  EXPECT_FALSE(tb.os.tile(victim).vacant());
  EXPECT_EQ(sup.counters().Get("supervisor.faults_recovered"), 1u);
  EXPECT_GT(flooder->ok, 0u);
}

TEST(AutoscalerTest, IdenticalRunsAreDeterministic) {
  auto run_once = [] {
    TestBoard tb(OrchOptions());
    ElasticFixture fx(tb, 1, FastUtilizationConfig(), 200);
    auto* flooder = new Flooder(fx.lb_svc, /*period=*/100);
    const TileId ft = tb.os.Deploy(fx.app, std::unique_ptr<Accelerator>(flooder));
    (void)tb.os.GrantSendToService(ft, fx.lb_svc);
    tb.sim.Run(60'000);
    flooder->enabled = false;  // Trace goes quiet; the set shrinks back.
    tb.sim.Run(100'000);
    return std::make_tuple(fx.autoscaler->scale_ups(), fx.autoscaler->scale_downs(),
                           fx.autoscaler->replica_tile_cycles(), flooder->ok,
                           fx.lb->counters().Get("lb.forwards"),
                           fx.lb->latency().P99());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GE(std::get<0>(a), 1u);  // It actually scaled up...
  EXPECT_GE(std::get<1>(a), 1u);  // ...and back down.
}

// ------------------------------------------------------------------
// Control plane: OrchService and the balancer's stats export.
// ------------------------------------------------------------------

TEST(OrchServiceTest, ScaleAndStatusRoundTrip) {
  TestBoard tb(OrchOptions());
  AutoscalerConfig acfg = FastUtilizationConfig();
  acfg.max_replicas = 3;
  ElasticFixture fx(tb, /*initial_replicas=*/1, acfg, /*echo_cycles=*/100);

  ServiceId orch_svc = 0;
  tb.os.Deploy(fx.app, std::make_unique<OrchService>(fx.autoscaler.get()), &orch_svc);
  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(fx.app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, orch_svc);

  Message status;
  status.opcode = kOpOrchStatus;
  probe->EnqueueSend(status, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  {
    const Message& reply = probe->received[0];
    EXPECT_EQ(reply.status, MsgStatus::kOk);
    ASSERT_GE(reply.payload.size(), 24u);
    EXPECT_EQ(GetU32(reply.payload, 0), 1u);  // live
    EXPECT_EQ(GetU32(reply.payload, 4), 1u);  // target
    EXPECT_EQ(GetU64(reply.payload, 8), 0u);  // scale_ups
  }
  probe->received.clear();

  // Raising the floor over the wire forces growth, bypassing cooldown.
  Message scale;
  scale.opcode = kOpOrchScale;
  PutU32(scale.payload, 2);  // min
  PutU32(scale.payload, 3);  // max
  probe->EnqueueSend(scale, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  probe->received.clear();
  ASSERT_TRUE(tb.sim.RunUntil(
      [&] { return fx.autoscaler->live_replicas() == 2; }, 200'000));

  // Malformed bounds are refused without touching the loop.
  Message bad;
  bad.opcode = kOpOrchScale;
  PutU32(bad.payload, 3);
  PutU32(bad.payload, 1);  // min > max
  probe->EnqueueSend(bad, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kBadRequest);
  EXPECT_EQ(fx.autoscaler->config().min_replicas, 2u);
}

TEST(OrchStatsTest, BalancerExportsQueueAndLatencyOverTheWire) {
  TestBoard tb(OrchOptions());
  AppId app = tb.os.CreateApp("a");
  auto* lb = new LoadBalancer();
  ServiceId lb_svc = 0;
  const TileId lb_tile = tb.os.Deploy(app, std::unique_ptr<Accelerator>(lb), &lb_svc);
  ServiceId echo_svc = 0;
  tb.os.Deploy(app, std::make_unique<EchoAccelerator>(50), &echo_svc);
  lb->AddBackend(tb.os.GrantSendToService(lb_tile, echo_svc));

  auto* probe = new ProbeAccelerator();
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(pt, lb_svc);
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.opcode = kOpEcho;
    probe->EnqueueSend(msg, cap);
  }
  ASSERT_TRUE(tb.sim.RunUntil([&] { return probe->received.size() == 3; }, 50'000));
  probe->received.clear();

  Message stats;
  stats.opcode = kOpOrchStats;
  probe->EnqueueSend(stats, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000));
  const Message& reply = probe->received[0];
  EXPECT_EQ(reply.status, MsgStatus::kOk);
  ASSERT_GE(reply.payload.size(), 36u);
  EXPECT_EQ(GetU32(reply.payload, 0), 1u);   // backends
  EXPECT_EQ(GetU64(reply.payload, 4), 0u);   // in flight now
  EXPECT_EQ(GetU64(reply.payload, 12), 3u);  // responses so far
  EXPECT_GT(GetU64(reply.payload, 20), 0u);  // p50 rtt
  EXPECT_GE(GetU64(reply.payload, 28), GetU64(reply.payload, 20));  // p99
}

}  // namespace
}  // namespace apiary
