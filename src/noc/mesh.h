// 2-D mesh NoC: owns the routers and network interfaces for a board and
// orchestrates their per-cycle phases.
//
// Modern FPGAs offer hardened NoCs (Versal, Agilex — Section 4.3); this
// class models such a NoC at flit granularity so the monitor layer above it
// experiences realistic latency, bandwidth and contention.
#ifndef SRC_NOC_MESH_H_
#define SRC_NOC_MESH_H_

#include <memory>
#include <vector>

#include "src/noc/boundary_link.h"
#include "src/noc/express.h"
#include "src/noc/fault_hooks.h"
#include "src/noc/network_interface.h"
#include "src/noc/packet.h"
#include "src/noc/packet_pool.h"
#include "src/noc/router.h"
#include "src/sim/clocked.h"
#include "src/sim/parallel/domain_partition.h"
#include "src/sim/parallel/sharded_fabric.h"
#include "src/sim/sim_context.h"

namespace apiary {

struct MeshConfig {
  uint32_t width = 4;
  uint32_t height = 4;
  uint32_t router_buffer_depth = 8;    // Flits per input VC buffer.
  uint32_t ni_inject_queue_flits = 512;  // Must hold the largest message.
  // Ablation knob: force all traffic onto one VC (responses share the
  // request channel), reproducing the head-of-line blocking the two-VC
  // design exists to avoid (Section 4.5).
  bool force_single_vc = false;
};

class Mesh : public Clocked, public ShardedFabric {
 public:
  // `context` selects the packet pool: the domain-local pool of the owning
  // simulator's SimContext when given (the Board constructor path), or a
  // mesh-private pool when null (standalone meshes in tests/benches).
  // Either way there is no process-wide pool to contend on.
  explicit Mesh(MeshConfig config, SimContext* context = nullptr);

  void Tick(Cycle now) override;
  // Quiescent when no router buffers a flit, no NI has flits queued for
  // injection, and the installed fault model (if any) has no per-cycle mesh
  // work (open stall windows). Monitors re-arm the mesh by enqueuing into an
  // NI during an executed cycle; the next boundary poll sees the flits. With
  // the active sweep enabled (the default) the busy check is O(1) — the live
  // lists are exact after every tick — instead of an O(tiles) scan.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  // The busy sets are mutated by shard-phase worker code (AcceptFlit during
  // routing/boundary delivery, Inject from monitor ticks), which no
  // cross-thread wake may observe — the mesh is re-polled fresh at every
  // executed-cycle boundary instead.
  [[nodiscard]] SchedPolicy SchedulingPolicy() const override {
    return SchedPolicy::kBoundaryPoll;
  }
  std::string DebugName() const override { return "mesh"; }

  // Ablation hatch (`--no-active-sweep`): when disabled, Tick sweeps every
  // router and NI exactly as before live lists existed, and NextActivity
  // falls back to the O(tiles) scan. The lists stay maintained either way
  // (marks and compaction run in both paths), so re-enabling mid-run is
  // exact. Toggle only with the parallel engine's workers parked.
  void SetActiveSweepEnabled(bool enabled) { sweep_enabled_ = enabled; }
  bool active_sweep_enabled() const { return sweep_enabled_; }

  uint32_t width() const { return config_.width; }
  uint32_t height() const { return config_.height; }
  uint32_t num_tiles() const { return config_.width * config_.height; }

  NetworkInterface& ni(TileId tile) { return *nis_[tile]; }
  const NetworkInterface& ni(TileId tile) const { return *nis_[tile]; }
  Router& router(TileId tile) { return *routers_[tile]; }

  // The pool every packet injected into this mesh is drawn from (monitors
  // reach it through their NI). Bench/test ablations toggle it here.
  PacketPool& pool() { return *pool_; }
  const PacketPool& pool() const { return *pool_; }

  // Installs (or clears, with nullptr) the fault model on every router.
  void SetFaultModel(NocFaultModel* model);

  // Configures a weighted-arbitration class weight on every router (see
  // Router::SetClassWeight). Used by the kernel to give tenants
  // proportional NoC bandwidth shares.
  void SetArbClassWeight(uint8_t cls, uint32_t weight);

  // Express corridors (src/noc/express.h): timing-equivalent analytic
  // fast-forwarding of whole packets through verifiably idle routers. Off by
  // default; toggling off (or any interference hook — fault window, weight
  // reconfig, partition change) materializes in-flight corridors back into
  // ordinary buffered flits, so traces/counters/billing stay byte-identical
  // either way.
  void SetExpressEnabled(bool enabled);
  bool express_enabled() const { return express_enabled_; }
  // Converts every in-flight corridor back to buffered flits at the current
  // state boundary. Called by FaultInjector::Fire before a NoC window opens,
  // and by every reconfiguration entry point.
  void MaterializeExpress();
  // Lane statistics summed over the serial lane, live shard lanes, and lanes
  // folded at DisablePartition.
  ExpressStats AggregateExpressStats() const;

  // Minimal hop count between two tiles under XY routing.
  uint32_t Hops(TileId a, TileId b) const;

  // Aggregate statistics across all routers/NIs.
  CounterSet AggregateCounters() const;
  Histogram AggregateLatency() const;
  uint64_t TotalFlitsRouted() const;

  // Total logic-cell cost of the NoC fabric (routers + NIs).
  uint64_t LogicCellCost() const;

  // ------------------------------------------------------------------
  // ShardedFabric (the parallel engine's view of the mesh; see
  // src/sim/parallel/sharded_fabric.h for the phase/ordering contract).
  // ------------------------------------------------------------------
  uint32_t FabricWidth() const override { return config_.width; }
  uint32_t FabricHeight() const override { return config_.height; }
  void EnablePartition(const DomainPartition& partition,
                       std::vector<std::unique_ptr<SimContext>> shard_contexts) override;
  void DisablePartition() override;
  SimContext* shard_context(uint32_t shard) override { return shard_contexts_[shard].get(); }
  void ShardCommit(uint32_t shard, Cycle now) override;
  void ShardRoute(uint32_t shard, Cycle now) override;
  void ShardTransfer(uint32_t shard, Cycle now) override;
  Clocked* AsClocked() override { return this; }

  bool partitioned() const { return !shard_pools_.empty(); }
  // Cross-shard handoff observability (read with workers parked).
  uint64_t BoundaryFlitsHandedOff() const;
  uint64_t BoundaryPacketsCloned() const;
  // Pool stats summed over the serial pool and every shard pool — the
  // partition-aware replacement for pool().stats() in benches.
  PacketPoolStats AggregatePoolStats() const;
  // Zeroes the ledgers of the serial pool and every shard pool (bench
  // warmup boundary). Call with workers parked.
  void ResetPoolStats();

 private:
  // The busy subset of one sweep domain (the whole mesh when serial, one
  // shard when partitioned). `routers`/`nis` are sorted ascending and exact
  // after compaction: tile t is listed iff its router buffers a flit / its
  // NI has flits queued. `fresh_*` stage idle-to-busy transitions published
  // by AcceptFlit/Inject since the last merge; merging (append + sort) at
  // the top of the next sweep keeps the tick order identical to the full
  // ascending sweep. Newly staged flits are commit-invisible until that
  // sweep anyway, so deferring a fresh router one merge is byte-exact.
  struct LiveSet {
    std::vector<uint32_t> routers;
    std::vector<uint32_t> fresh_routers;
    std::vector<uint32_t> nis;
    std::vector<uint32_t> fresh_nis;
  };

  static bool LiveBusy(const LiveSet& set) {
    return !set.routers.empty() || !set.fresh_routers.empty() || !set.nis.empty() ||
           !set.fresh_nis.empty();
  }
  // Per-executed-cycle express work for one sweep domain, before the live
  // merge: complete corridors due this cycle, then materialize any corridor
  // whose zone a busy router (or whose path a busy NI) has entered.
  void ExpressTickTop(ExpressLane& lane, LiveSet& set, Cycle now);
  // Points each NI at its domain's lane (or detaches them when disabled).
  void BindExpressLanes();
  void MergeFresh(LiveSet& set);
  // Drops drained members and clears their marks, restoring the "listed iff
  // busy" invariant the O(1) NextActivity check relies on.
  void CompactDead(LiveSet& set);
  // Points every router/NI at the serial live set.
  void BindLiveLists();

  // One directed cut link: flits leave `src` shard through src_router's
  // `out_port` and arrive in `dst` shard on dst_router's `in_port`.
  struct BoundaryEdge {
    std::unique_ptr<BoundaryLink> link;
    Router* src_router = nullptr;
    Router* dst_router = nullptr;
    RouterPort out_port = kPortNorth;
    RouterPort in_port = kPortNorth;
    uint32_t src_shard = 0;
    uint32_t dst_shard = 0;
  };

  MeshConfig config_;
  // Shard contexts live until MESH destruction, not DisablePartition:
  // packets cloned from shard pools can sit in NI delivery queues (and
  // monitor inboxes, which die before the board's mesh) past the engine's
  // teardown, and must still find their pool when released. Declared first
  // so they are destroyed last, after every flit ref in routers_/nis_/edges_
  // has dropped.
  std::vector<std::unique_ptr<SimContext>> shard_contexts_;
  std::vector<std::unique_ptr<SimContext>> retired_contexts_;
  std::unique_ptr<PacketPool> owned_pool_;  // Set only for standalone meshes.
  PacketPool* pool_;                        // Context slot pool or owned_pool_.
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  NocFaultModel* fault_model_ = nullptr;
  bool sweep_enabled_ = true;
  // Express lanes: one per sweep domain, same confinement as the LiveSets.
  // The lanes read router/NI/fault state through the friendship in
  // express.h; `folded_express_` keeps stats of shard lanes retired at
  // DisablePartition.
  friend class ExpressLane;
  bool express_enabled_ = false;
  ExpressLane express_;
  std::vector<ExpressLane> shard_express_;
  ExpressStats folded_express_;
  LiveSet live_;  // Serial sweep domain (unused while partitioned).
  // Per-shard sweep domains, worker-confined during shard phases (every
  // mark source — routing, boundary delivery, monitor injection — stays
  // inside the owning shard). Empty while unpartitioned.
  std::vector<LiveSet> shard_live_;

  // Partition state (empty while unpartitioned).
  DomainPartition partition_;
  std::vector<PacketPool*> shard_pools_;
  std::vector<BoundaryEdge> edges_;
  // Per shard: indices into edges_ it sends on / receives from.
  std::vector<std::vector<uint32_t>> shard_out_edges_;
  std::vector<std::vector<uint32_t>> shard_in_edges_;
};

}  // namespace apiary

#endif  // SRC_NOC_MESH_H_
