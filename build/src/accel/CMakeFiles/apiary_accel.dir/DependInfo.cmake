
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/checksum.cc" "src/accel/CMakeFiles/apiary_accel.dir/checksum.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/checksum.cc.o.d"
  "/root/repo/src/accel/compressor.cc" "src/accel/CMakeFiles/apiary_accel.dir/compressor.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/compressor.cc.o.d"
  "/root/repo/src/accel/crypto.cc" "src/accel/CMakeFiles/apiary_accel.dir/crypto.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/crypto.cc.o.d"
  "/root/repo/src/accel/faulty.cc" "src/accel/CMakeFiles/apiary_accel.dir/faulty.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/faulty.cc.o.d"
  "/root/repo/src/accel/kv_store.cc" "src/accel/CMakeFiles/apiary_accel.dir/kv_store.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/kv_store.cc.o.d"
  "/root/repo/src/accel/multi_context.cc" "src/accel/CMakeFiles/apiary_accel.dir/multi_context.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/multi_context.cc.o.d"
  "/root/repo/src/accel/video_encoder.cc" "src/accel/CMakeFiles/apiary_accel.dir/video_encoder.cc.o" "gcc" "src/accel/CMakeFiles/apiary_accel.dir/video_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/apiary_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/apiary_services.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/apiary_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/apiary_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/apiary_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/apiary_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apiary_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
