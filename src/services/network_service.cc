#include "src/services/network_service.h"

namespace apiary {

void Mac10GAdapter::Bringup(Cycle now) {
  if (!reset_done_) {
    mac_->AssertCoreReset();
    mac_->ReleaseCoreReset(now);
    reset_done_ = true;
  }
}

std::optional<EthFrame> Mac10GAdapter::TryRecv() {
  if (!mac_->RxFrameValid()) {
    return std::nullopt;
  }
  return mac_->RxFrame();
}

void Mac100GAdapter::Bringup(Cycle now) {
  if (!init_started_) {
    mac_->InitCmac(now);
    init_started_ = true;
  }
  if (mac_->RxAligned(now) && !flow_control_on_) {
    mac_->EnableTxFlowControl();
    flow_control_on_ = true;
  }
}

std::optional<EthFrame> Mac100GAdapter::TryRecv() {
  if (!mac_->HasRxSegment()) {
    return std::nullopt;
  }
  return mac_->DequeueRxSegment();
}

void NetworkService::OnBoot(TileApi& api) { mac_->Bringup(api.now()); }

void NetworkService::HandleRegister(const Message& msg, TileApi& api) {
  // Mint an endpoint capability from this tile to the registering service so
  // inbound frames can be delivered as messages. The network service is
  // trusted OS logic and uses the kernel's management interface for this.
  const CapRef cap = os_->GrantSendToService(api.tile(), msg.src_service);
  Message reply;
  reply.opcode = kOpNetRegister;
  if (cap == kInvalidCapRef) {
    reply.status = MsgStatus::kNoSuchService;
    counters_.Add("netsvc.register_failures");
  } else {
    inbound_routes_[msg.src_service] = cap;
    counters_.Add("netsvc.registrations");
  }
  api.Reply(msg, std::move(reply));
}

void NetworkService::HandleNetSend(const Message& msg, TileApi& api) {
  if (msg.payload.size() < 4) {
    counters_.Add("netsvc.bad_tx");
    return;
  }
  const uint32_t dst = GetU32(msg.payload, 0);
  // Crossing into the external-fabric domain: the copy is inherent (the
  // 4-byte destination prefix is stripped off the NoC payload).
  // NOLINTNEXTLINE(apiary-hot-path): crossing into the external-fabric domain; the strip-copy is inherent
  std::vector<uint8_t> data(msg.payload.begin() + 4, msg.payload.end());
  counters_.Add("netsvc.tx_requests");
  if (reliable_) {
    transport_.SendData(dst, std::move(data), api.now());
    return;
  }
  EthFrame frame;
  frame.dst_endpoint = dst;
  frame.payload = std::move(data);
  tx_backlog_.push_back(std::move(frame));
}

void NetworkService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  switch (msg.opcode) {
    case kOpNetRegister:
      HandleRegister(msg, api);
      break;
    case kOpNetSend:
      HandleNetSend(msg, api);
      break;
    default: {
      Message err;
      err.opcode = msg.opcode;
      err.status = MsgStatus::kBadRequest;
      api.Reply(msg, std::move(err));
      break;
    }
  }
}

void NetworkService::DeliverAppPayload(uint32_t src_endpoint,
                                       const std::vector<uint8_t>& app, TileApi& api) {
  if (app.size() < 4) {
    counters_.Add("netsvc.rx_malformed");
    return;
  }
  const ServiceId dst = GetU32(app, 0);
  auto it = inbound_routes_.find(dst);
  if (it == inbound_routes_.end()) {
    counters_.Add("netsvc.rx_unroutable");
    return;
  }
  Message msg;
  msg.opcode = kOpNetDeliver;
  PutU32(msg.payload, src_endpoint);
  msg.payload.insert(msg.payload.end(), app.begin() + 4, app.end());
  counters_.Add("netsvc.rx_delivered");
  const SendResult r = api.Send(msg, it->second);
  if (r.status == MsgStatus::kBackpressure || r.status == MsgStatus::kRateLimited) {
    inbound_backlog_.emplace_back(dst, std::move(msg));
  }
}

void NetworkService::PumpInbound(TileApi& api) {
  // Retry messages that previously hit NoC backpressure, preserving order.
  while (!inbound_backlog_.empty()) {
    auto& [service, msg] = inbound_backlog_.front();
    auto it = inbound_routes_.find(service);
    if (it == inbound_routes_.end()) {
      inbound_backlog_.pop_front();
      continue;
    }
    const SendResult r = api.Send(msg, it->second);
    if (r.status == MsgStatus::kBackpressure || r.status == MsgStatus::kRateLimited) {
      return;
    }
    inbound_backlog_.pop_front();
  }
  while (auto frame = mac_->TryRecv()) {
    if (reliable_ && ReliableTransport::IsTransportFrame(frame->payload)) {
      // Reassemble in-order application payloads through the ARQ layer.
      for (const auto& app :
           transport_.OnFrame(frame->src_endpoint, frame->payload, api.now())) {
        DeliverAppPayload(frame->src_endpoint, app, api);
      }
      continue;
    }
    DeliverAppPayload(frame->src_endpoint, frame->payload, api);
  }
}

void NetworkService::PumpOutbound(TileApi& api) {
  if (reliable_) {
    for (auto& out : transport_.Poll(api.now())) {
      EthFrame frame;
      frame.dst_endpoint = out.peer;
      frame.payload = std::move(out.bytes);
      tx_backlog_.push_back(std::move(frame));
    }
  }
  while (!tx_backlog_.empty()) {
    if (!mac_->TrySend(tx_backlog_.front(), api.now())) {
      counters_.Add("netsvc.tx_stall");
      return;
    }
    tx_backlog_.pop_front();
    counters_.Add("netsvc.tx_frames");
  }
}

void NetworkService::Tick(TileApi& api) {
  if (!mac_->Ready(api.now())) {
    mac_->Bringup(api.now());
    return;
  }
  PumpInbound(api);
  PumpOutbound(api);
}

}  // namespace apiary
