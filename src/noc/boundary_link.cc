#include "src/noc/boundary_link.h"

#include <cassert>

#include "src/noc/packet_pool.h"
#include "src/noc/router.h"

namespace apiary {

BoundaryLink::BoundaryLink(uint32_t buffer_depth) {
  credits_.fill(buffer_depth);
}

void BoundaryLink::Send(const Flit& flit, Cycle now) {
  (void)now;
  const int vc = static_cast<int>(flit.vc());
  assert(credits_[vc] > 0 && "BoundaryLink::Send without credit");
  --credits_[vc];
  if (flit.is_head()) {
    // Pin the packet until the next commit phase: the receiver reads the
    // pointed-to packet during its transfer phase THIS cycle, and the
    // sender-side flit refs may all drop at the pop below this Send. Without
    // the anchor, a single-flit packet could return to the pool (and be
    // scrubbed for reuse) while the receiver is still copying it.
    assert(anchor_next_[vc] == nullptr && "two heads on one (link, vc) in one cycle");
    anchor_next_[vc] = flit.packet;
  }
  BoundaryFlitRecord record;
  record.packet = flit.packet.get();
  record.index = flit.index;
  record.vc = static_cast<uint8_t>(vc);
  const bool pushed = flits_.Push(record);
  assert(pushed && "boundary flit ring overflow");
  (void)pushed;
  ++flits_handed_off_;
}

void BoundaryLink::ReleaseAnchors() {
  for (int vc = 0; vc < kNumVcs; ++vc) {
    // Last cycle's anchor drops (the receiver's clone window for it closed
    // at the previous barrier); this cycle's Send()s refill anchor_next_.
    anchor_[vc] = std::move(anchor_next_[vc]);
  }
}

void BoundaryLink::HarvestCredits() {
  BoundaryCreditRecord record;
  while (credits_ring_.Pop(&record)) {
    credits_[record.vc] += record.pops;
  }
}

void BoundaryLink::FlushCredits() {
  for (int vc = 0; vc < kNumVcs; ++vc) {
    if (pending_pops_[vc] == 0) {
      continue;
    }
    BoundaryCreditRecord record;
    record.vc = static_cast<uint8_t>(vc);
    record.pops = static_cast<uint8_t>(pending_pops_[vc]);
    pending_pops_[vc] = 0;
    const bool pushed = credits_ring_.Push(record);
    assert(pushed && "boundary credit ring overflow");
    (void)pushed;
  }
}

void BoundaryLink::DeliverInto(Router& router, RouterPort in_port, Cycle now,
                               PacketPool& pool) {
  (void)now;
  BoundaryFlitRecord record;
  while (flits_.Pop(&record)) {
    const int vc = record.vc;
    if (record.index == 0) {
      // Head: clone the packet into this shard's pool + installed arena.
      // Every simulation-visible field crosses; the clone is what the local
      // routers and the ejecting NI see, so checksums, fault-drop marks and
      // flit counts behave exactly as if the original had kept flowing.
      assert(clone_[vc] == nullptr && "head while a clone is still in flight");
      const NocPacket& src = *record.packet;
      PacketRef clone = pool.Acquire();
      clone->src = src.src;
      clone->dst = src.dst;
      clone->vc = src.vc;
      clone->arb_class = src.arb_class;
      clone->packet_id = src.packet_id;
      clone->inject_cycle = src.inject_cycle;
      clone->head_len = src.head_len;
      clone->head = src.head;
      clone->payload.assign(src.payload.data(), src.payload.size());
      clone->checksum = src.checksum;
      clone->flit_count = src.flit_count;
      clone->dropped = src.dropped;
      clone_[vc] = std::move(clone);
      ++packets_cloned_;
    }
    assert(clone_[vc] != nullptr && "body flit with no in-flight clone");
    Flit flit;
    flit.packet = clone_[vc];
    flit.index = record.index;
    const bool tail = flit.is_tail();
    const bool accepted = router.AcceptFlit(in_port, flit);
    assert(accepted && "credit invariant violated: receiver buffer full");
    (void)accepted;
    if (tail) {
      clone_[vc].Reset();
    }
  }
}

}  // namespace apiary
