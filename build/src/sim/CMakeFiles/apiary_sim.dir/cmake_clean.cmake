file(REMOVE_RECURSE
  "CMakeFiles/apiary_sim.dir/event_queue.cc.o"
  "CMakeFiles/apiary_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/apiary_sim.dir/logging.cc.o"
  "CMakeFiles/apiary_sim.dir/logging.cc.o.d"
  "CMakeFiles/apiary_sim.dir/random.cc.o"
  "CMakeFiles/apiary_sim.dir/random.cc.o.d"
  "CMakeFiles/apiary_sim.dir/simulator.cc.o"
  "CMakeFiles/apiary_sim.dir/simulator.cc.o.d"
  "libapiary_sim.a"
  "libapiary_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
