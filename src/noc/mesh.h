// 2-D mesh NoC: owns the routers and network interfaces for a board and
// orchestrates their per-cycle phases.
//
// Modern FPGAs offer hardened NoCs (Versal, Agilex — Section 4.3); this
// class models such a NoC at flit granularity so the monitor layer above it
// experiences realistic latency, bandwidth and contention.
#ifndef SRC_NOC_MESH_H_
#define SRC_NOC_MESH_H_

#include <memory>
#include <vector>

#include "src/noc/boundary_link.h"
#include "src/noc/fault_hooks.h"
#include "src/noc/network_interface.h"
#include "src/noc/packet.h"
#include "src/noc/packet_pool.h"
#include "src/noc/router.h"
#include "src/sim/clocked.h"
#include "src/sim/parallel/domain_partition.h"
#include "src/sim/parallel/sharded_fabric.h"
#include "src/sim/sim_context.h"

namespace apiary {

struct MeshConfig {
  uint32_t width = 4;
  uint32_t height = 4;
  uint32_t router_buffer_depth = 8;    // Flits per input VC buffer.
  uint32_t ni_inject_queue_flits = 512;  // Must hold the largest message.
  // Ablation knob: force all traffic onto one VC (responses share the
  // request channel), reproducing the head-of-line blocking the two-VC
  // design exists to avoid (Section 4.5).
  bool force_single_vc = false;
};

class Mesh : public Clocked, public ShardedFabric {
 public:
  // `context` selects the packet pool: the domain-local pool of the owning
  // simulator's SimContext when given (the Board constructor path), or a
  // mesh-private pool when null (standalone meshes in tests/benches).
  // Either way there is no process-wide pool to contend on.
  explicit Mesh(MeshConfig config, SimContext* context = nullptr);

  void Tick(Cycle now) override;
  // Quiescent when no router buffers a flit, no NI has flits queued for
  // injection, and the installed fault model (if any) has no per-cycle mesh
  // work (open stall windows). Monitors re-arm the mesh by enqueuing into an
  // NI during an executed cycle; the next boundary poll sees the flits.
  [[nodiscard]] Cycle NextActivity(Cycle now) const override;
  std::string DebugName() const override { return "mesh"; }

  uint32_t width() const { return config_.width; }
  uint32_t height() const { return config_.height; }
  uint32_t num_tiles() const { return config_.width * config_.height; }

  NetworkInterface& ni(TileId tile) { return *nis_[tile]; }
  const NetworkInterface& ni(TileId tile) const { return *nis_[tile]; }
  Router& router(TileId tile) { return *routers_[tile]; }

  // The pool every packet injected into this mesh is drawn from (monitors
  // reach it through their NI). Bench/test ablations toggle it here.
  PacketPool& pool() { return *pool_; }
  const PacketPool& pool() const { return *pool_; }

  // Installs (or clears, with nullptr) the fault model on every router.
  void SetFaultModel(NocFaultModel* model);

  // Configures a weighted-arbitration class weight on every router (see
  // Router::SetClassWeight). Used by the kernel to give tenants
  // proportional NoC bandwidth shares.
  void SetArbClassWeight(uint8_t cls, uint32_t weight);

  // Minimal hop count between two tiles under XY routing.
  uint32_t Hops(TileId a, TileId b) const;

  // Aggregate statistics across all routers/NIs.
  CounterSet AggregateCounters() const;
  Histogram AggregateLatency() const;
  uint64_t TotalFlitsRouted() const;

  // Total logic-cell cost of the NoC fabric (routers + NIs).
  uint64_t LogicCellCost() const;

  // ------------------------------------------------------------------
  // ShardedFabric (the parallel engine's view of the mesh; see
  // src/sim/parallel/sharded_fabric.h for the phase/ordering contract).
  // ------------------------------------------------------------------
  uint32_t FabricWidth() const override { return config_.width; }
  uint32_t FabricHeight() const override { return config_.height; }
  void EnablePartition(const DomainPartition& partition,
                       std::vector<std::unique_ptr<SimContext>> shard_contexts) override;
  void DisablePartition() override;
  SimContext* shard_context(uint32_t shard) override { return shard_contexts_[shard].get(); }
  void ShardCommit(uint32_t shard) override;
  void ShardRoute(uint32_t shard, Cycle now) override;
  void ShardTransfer(uint32_t shard, Cycle now) override;
  Clocked* AsClocked() override { return this; }

  bool partitioned() const { return !shard_pools_.empty(); }
  // Cross-shard handoff observability (read with workers parked).
  uint64_t BoundaryFlitsHandedOff() const;
  uint64_t BoundaryPacketsCloned() const;
  // Pool stats summed over the serial pool and every shard pool — the
  // partition-aware replacement for pool().stats() in benches.
  PacketPoolStats AggregatePoolStats() const;
  // Zeroes the ledgers of the serial pool and every shard pool (bench
  // warmup boundary). Call with workers parked.
  void ResetPoolStats();

 private:
  // One directed cut link: flits leave `src` shard through src_router's
  // `out_port` and arrive in `dst` shard on dst_router's `in_port`.
  struct BoundaryEdge {
    std::unique_ptr<BoundaryLink> link;
    Router* src_router = nullptr;
    Router* dst_router = nullptr;
    RouterPort out_port = kPortNorth;
    RouterPort in_port = kPortNorth;
    uint32_t src_shard = 0;
    uint32_t dst_shard = 0;
  };

  MeshConfig config_;
  // Shard contexts live until MESH destruction, not DisablePartition:
  // packets cloned from shard pools can sit in NI delivery queues (and
  // monitor inboxes, which die before the board's mesh) past the engine's
  // teardown, and must still find their pool when released. Declared first
  // so they are destroyed last, after every flit ref in routers_/nis_/edges_
  // has dropped.
  std::vector<std::unique_ptr<SimContext>> shard_contexts_;
  std::vector<std::unique_ptr<SimContext>> retired_contexts_;
  std::unique_ptr<PacketPool> owned_pool_;  // Set only for standalone meshes.
  PacketPool* pool_;                        // Context slot pool or owned_pool_.
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  NocFaultModel* fault_model_ = nullptr;

  // Partition state (empty while unpartitioned).
  DomainPartition partition_;
  std::vector<PacketPool*> shard_pools_;
  std::vector<BoundaryEdge> edges_;
  // Per shard: indices into edges_ it sends on / receives from.
  std::vector<std::vector<uint32_t>> shard_out_edges_;
  std::vector<std::vector<uint32_t>> shard_in_edges_;
};

}  // namespace apiary

#endif  // SRC_NOC_MESH_H_
