file(REMOVE_RECURSE
  "CMakeFiles/table1_logic_cells.dir/table1_logic_cells.cc.o"
  "CMakeFiles/table1_logic_cells.dir/table1_logic_cells.cc.o.d"
  "table1_logic_cells"
  "table1_logic_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_logic_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
