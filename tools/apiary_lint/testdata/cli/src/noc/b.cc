// CLI golden fixture: two findings in this file, one in src/sim/a.cc.
namespace apiary {

int g_hits = 0;

int Jitter() {
  return rand();
}

}  // namespace apiary
