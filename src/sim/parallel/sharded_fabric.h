// ShardedFabric: what the parallel engine needs from a partitionable
// interconnect, expressed at the sim layer.
//
// Layering: sim is the root of the dependency DAG, so ParallelSimulator
// cannot name Mesh/Router/BoundaryLink (they live in src/noc, which depends
// on sim). This interface inverts the dependency — the Mesh implements it,
// and the engine drives the fabric through these hooks without knowing what
// a flit is.
//
// Per-executed-cycle protocol, mirroring Mesh::Tick's three phases but
// sliced by shard (see parallel_simulator.h for the sync that orders them):
//   ShardCommit(s)    — per-cycle shard-top work (express corridor
//                       completions/conflict scans), then flits staged last
//                       cycle become visible in shard s's routers; boundary
//                       anchor refs from last cycle drop.
//   ShardRoute(s)     — shard s's routers each forward up to one flit per
//                       output port; cut-crossing flits go into SPSC rings;
//                       consumed-credit records flush to the senders.
//   ShardTransfer(s)  — shard s drains its incoming boundary rings (cloning
//                       packets into its own pool/arena), harvests returned
//                       credits for its outgoing cut links, and runs its
//                       NIs' injection step.
// ShardRoute of a shard must complete before ShardTransfer of any NEIGHBOR
// shard runs for the same cycle; the engine enforces this with per-shard
// route_done grants. Commit/Route of a shard never read another shard's
// mutable state, so they need no cross-shard ordering at all.
#ifndef SRC_SIM_PARALLEL_SHARDED_FABRIC_H_
#define SRC_SIM_PARALLEL_SHARDED_FABRIC_H_

#include <memory>
#include <vector>

#include "src/sim/parallel/domain_partition.h"
#include "src/sim/sim_context.h"
#include "src/sim/types.h"

namespace apiary {

class Clocked;

class ShardedFabric {
 public:
  virtual ~ShardedFabric() = default;

  virtual uint32_t FabricWidth() const = 0;
  virtual uint32_t FabricHeight() const = 0;

  // Installs the partition: wires boundary shims across every cut link and
  // repoints each tile's allocation source at its shard's context. The
  // fabric takes ownership of the shard contexts and keeps them alive until
  // its own destruction (not just DisablePartition) — packets cloned from a
  // shard pool may outlive the partition in delivery queues, and must still
  // find their pool when the last reference drops. Requires an idle fabric:
  // packets acquired before the split would otherwise be released across
  // domains.
  virtual void EnablePartition(const DomainPartition& partition,
                               std::vector<std::unique_ptr<SimContext>> shard_contexts) = 0;
  // Unwires the shims and restores serial ticking. Single-threaded callers
  // only (the engine's destructor, after its workers joined).
  virtual void DisablePartition() = 0;

  virtual SimContext* shard_context(uint32_t shard) = 0;

  // The three per-cycle phases for one shard (see the file comment).
  virtual void ShardCommit(uint32_t shard, Cycle now) = 0;
  virtual void ShardRoute(uint32_t shard, Cycle now) = 0;
  virtual void ShardTransfer(uint32_t shard, Cycle now) = 0;

  // The fabric's identity in the simulator's block list, so the engine can
  // exclude it from per-block ticking (the phases above replace its Tick).
  virtual Clocked* AsClocked() = 0;
};

}  // namespace apiary

#endif  // SRC_SIM_PARALLEL_SHARDED_FABRIC_H_
