#include "src/orch/autoscaler.h"

#include <algorithm>
#include <utility>

#include "src/sim/logging.h"
#include "src/stats/histogram.h"

namespace apiary {

Autoscaler::Autoscaler(ApiaryOs* os, LoadBalancer* lb, TileId lb_tile, AppId app,
                       ReplicaFactory factory, Placer* placer,
                       ReconfigScheduler* scheduler, AutoscalerConfig config)
    : os_(os),
      lb_(lb),
      lb_tile_(lb_tile),
      app_(app),
      factory_(std::move(factory)),
      placer_(placer),
      scheduler_(scheduler),
      config_(config) {
  target_ = config_.min_replicas;
  // Anchor the integral clock at creation time so a fast-forward before the
  // first tick does not back-fill region-cycles for cycles that predate us.
  now_ = os_->sim().now();
  os_->sim().Register(this);
}

void Autoscaler::AdoptReplica(ServiceId service, TileId tile, CapRef endpoint) {
  Replica r;
  r.service = service;
  r.tile = tile;
  r.endpoint = endpoint;
  r.state = ReplicaState::kLive;
  replicas_.push_back(r);
  target_ = std::max(target_, live_replicas());
}

void Autoscaler::SetBounds(uint32_t min_replicas, uint32_t max_replicas) {
  config_.min_replicas = min_replicas;
  config_.max_replicas = std::max(min_replicas, max_replicas);
}

uint32_t Autoscaler::live_replicas() const {
  uint32_t n = 0;
  for (const Replica& r : replicas_) {
    n += (r.state == ReplicaState::kLive) ? 1 : 0;
  }
  return n;
}

void Autoscaler::PushMembership() {
  std::vector<CapRef> endpoints;
  for (const Replica& r : replicas_) {
    if (r.state == ReplicaState::kLive) {
      endpoints.push_back(r.endpoint);
    }
  }
  lb_->ReplaceBackends(endpoints);
}

void Autoscaler::Tick(Cycle now) {
  now_ = now;
  // Every replica-owned region costs a region-cycle whether it is serving,
  // loading, or draining — the honest provisioning cost.
  tile_cycles_ += replicas_.size();
  if (config_.poll_period != 0 && now % config_.poll_period == 0) {
    Poll();
  }
}

void Autoscaler::Poll() {
  // Always consume the window so each poll sees only its own interval.
  const Histogram window = lb_->TakeWindowLatency();
  const uint64_t queue_sum = lb_->outstanding_cycle_sum(now_);
  const uint64_t queue_delta = queue_sum - last_queue_sum_;
  last_queue_sum_ = queue_sum;

  if (op_pending_) {
    return;  // One reconfiguration at a time; re-decide once it lands.
  }
  const uint32_t live = live_replicas();

  // Bound enforcement (SetBounds / kOpOrchScale) bypasses the cooldown: the
  // operator's floor and ceiling are not advisory.
  if (live > config_.max_replicas) {
    ScaleDown();
    return;
  }
  if (live < config_.min_replicas) {
    ScaleUp();
    return;
  }

  const double avg_queue =
      static_cast<double>(queue_delta) / static_cast<double>(config_.poll_period);
  const double per_live = live == 0 ? avg_queue : avg_queue / live;
  bool want_up = false;
  bool want_down = false;
  switch (config_.policy) {
    case ScalePolicy::kTargetUtilization: {
      want_up = per_live > config_.up_queue_per_replica;
      want_down = per_live < config_.down_queue_per_replica;
      break;
    }
    case ScalePolicy::kSloLatency: {
      const double slo = static_cast<double>(config_.slo_p99_cycles);
      bool latency_high = false;
      bool latency_low = false;
      if (window.count() == 0) {
        // No completions this window: wedged if work is queued, surplus if
        // truly idle.
        latency_high = avg_queue > static_cast<double>(live);
        latency_low = queue_delta == 0;
      } else {
        const auto p99 = static_cast<double>(window.P99());
        latency_high = p99 > slo;
        latency_low = p99 < config_.slo_down_fraction * slo;
      }
      // Utilization headroom complements the latency signal: grow before
      // queues turn into tail latency, and shrink only when the survivors
      // would still run comfortably below down_utilization without the
      // retired replica.
      want_up = latency_high || per_live > config_.up_utilization;
      const double after = live > 1 ? avg_queue / (live - 1) : avg_queue;
      want_down = latency_low && after < config_.down_utilization;
      break;
    }
  }
  // Scale-up is uncooled: the serialized ICAP already paces it to one
  // reconfiguration at a time, and queue blow-ups cost far more than an
  // extra replica. Scale-down is deliberate: the shrink signal must hold
  // for down_stable_polls consecutive windows AND a cooldown since the
  // last scaling action, or the loop oscillates on the diurnal ramps.
  if (want_up && live < config_.max_replicas) {
    down_streak_ = 0;
    ScaleUp();
    return;
  }
  down_streak_ = want_down ? down_streak_ + 1 : 0;
  if (down_streak_ >= config_.down_stable_polls && live > config_.min_replicas &&
      now_ - last_scale_at_ >= config_.cooldown_cycles) {
    down_streak_ = 0;
    ScaleDown();
  }
}

void Autoscaler::ScaleUp() {
  if (admit_ && !admit_()) {
    // Tenant tile quota (or other policy) refuses the new region; stay at
    // the current size and retry on a later poll.
    counters_.Add("orch.scale_up_quota_denied");
    return;
  }
  PlacementRequest req;
  req.logic_cells = config_.replica_logic_cells;
  // Hug the balancer; spread away from the replicas already serving.
  req.near.push_back(lb_tile_);
  for (const Replica& r : replicas_) {
    req.apart.push_back(r.tile);
  }
  const TileId tile = placer_->Pick(req);
  if (tile == kInvalidTile) {
    counters_.Add("orch.scale_up_blocked");
    return;  // No eligible region; try again next poll.
  }
  placer_->Reserve(tile);
  op_pending_ = true;
  last_scale_at_ = now_;
  target_ = live_replicas() + 1;
  Replica r;
  r.tile = tile;
  r.state = ReplicaState::kLoading;
  replicas_.push_back(r);
  counters_.Add("orch.scale_up_started");
  APIARY_LOG(kInfo) << "autoscaler: scaling up onto tile " << tile;
  scheduler_->ScheduleLoad(tile, factory_, [this](TileId t, ServiceId svc, bool ok) {
    placer_->Release(t);
    op_pending_ = false;
    auto it = std::find_if(replicas_.begin(), replicas_.end(), [t](const Replica& x) {
      return x.tile == t && x.state == ReplicaState::kLoading;
    });
    if (it == replicas_.end()) {
      return;
    }
    if (!ok) {
      replicas_.erase(it);
      counters_.Add("orch.scale_up_failed");
      return;
    }
    it->service = svc;
    // Kernel-mediated rebind: the balancer's authority over the new replica
    // is a fresh capability, not an ambient route.
    it->endpoint = os_->GrantSendToService(lb_tile_, svc);
    it->state = ReplicaState::kLive;
    ++scale_ups_;
    counters_.Add("orch.scale_ups");
    PushMembership();
  });
}

void Autoscaler::ScaleDown() {
  // LIFO: retire the newest live replica; the oldest keep their warm state.
  auto it = std::find_if(replicas_.rbegin(), replicas_.rend(), [](const Replica& x) {
    return x.state == ReplicaState::kLive;
  });
  if (it == replicas_.rend()) {
    return;
  }
  Replica& victim = *it;
  victim.state = ReplicaState::kDraining;
  op_pending_ = true;
  last_scale_at_ = now_;
  target_ = live_replicas();
  // Out of the rotation immediately: no new work lands on a draining
  // replica, while its in-flight requests finish through the recorded
  // endpoint.
  PushMembership();
  counters_.Add("orch.scale_down_started");
  APIARY_LOG(kInfo) << "autoscaler: draining tile " << victim.tile;
  const CapRef ep = victim.endpoint;
  scheduler_->ScheduleTeardown(
      victim.tile, [this, ep]() { return lb_->InFlightOn(ep) == 0; },
      [this](TileId t, bool ok) {
        op_pending_ = false;
        auto rit = std::find_if(replicas_.begin(), replicas_.end(), [t](const Replica& x) {
          return x.tile == t && x.state == ReplicaState::kDraining;
        });
        if (rit == replicas_.end()) {
          return;
        }
        if (!ok) {
          // Region was already gone (recovery path owns it); drop the
          // replica record either way.
          counters_.Add("orch.scale_down_raced");
        }
        replicas_.erase(rit);
        ++scale_downs_;
        counters_.Add("orch.scale_downs");
        PushMembership();
      });
}

}  // namespace apiary
