// The FPGA board: one part, a NoC fabric, DRAM channels, MACs, PCIe, and a
// logic-resource budget with static/dynamic region accounting.
#ifndef SRC_FPGA_BOARD_H_
#define SRC_FPGA_BOARD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fpga/ethernet.h"
#include "src/fpga/part_catalog.h"
#include "src/fpga/pcie.h"
#include "src/fpga/resource_model.h"
#include "src/mem/interleaved_memory.h"
#include "src/mem/memory_controller.h"
#include "src/noc/mesh.h"
#include "src/sim/simulator.h"

namespace apiary {

enum class MacKind {
  kNone,
  k10G,
  k100G,
};

struct BoardConfig {
  std::string part_number = "VU9P";
  MeshConfig mesh;
  // Per-channel DRAM config; total capacity = memory_channels x capacity.
  DramConfig dram;
  // 1 = a plain DDR controller; >1 = HBM-style interleaved pseudo-channels.
  uint32_t memory_channels = 1;
  uint64_t memory_stripe_bytes = 4096;
  MacKind mac_kind = MacKind::k100G;
  bool with_pcie = false;
  PcieConfig pcie;
  // Partial reconfiguration time for one tile region. ICAP-limited bitstream
  // load for a ~100k-cell region is on the order of 10-30 ms; default 16 ms
  // at 250 MHz.
  Cycle partial_reconfig_cycles = 4'000'000;
  // Logic cells reserved per dynamically reconfigurable tile region.
  uint64_t tile_region_cells = 100'000;
};

// Owns all hardware substrate blocks and registers them with the simulator.
// The Apiary kernel (src/core) layers tiles/monitors on top.
class Board {
 public:
  // `external_network` may be null for boards without connectivity.
  Board(BoardConfig config, Simulator& sim, ExternalNetwork* external_network);

  // False if the part could not fit the requested configuration; the reason
  // is in build_error().
  bool ok() const { return ok_; }
  const std::string& build_error() const { return build_error_; }

  Mesh& mesh() { return *mesh_; }
  MemoryBackend& memory() { return *memory_backend_; }
  ResourceBudget& budget() { return *budget_; }
  const BoardConfig& config() const { return config_; }
  Simulator& sim() { return *sim_; }

  // Null unless the corresponding MacKind/with_pcie was configured.
  EthMac10G* mac10g() { return mac10g_.get(); }
  EthMac100G* mac100g() { return mac100g_.get(); }
  PcieEndpoint* pcie() { return pcie_.get(); }

  uint32_t num_tiles() const { return mesh_->num_tiles(); }

 private:
  BoardConfig config_;
  Simulator* sim_;
  bool ok_ = true;
  std::string build_error_;
  std::unique_ptr<ResourceBudget> budget_;
  std::unique_ptr<Mesh> mesh_;
  std::unique_ptr<MemoryController> single_memory_;
  std::unique_ptr<InterleavedMemory> multi_memory_;
  MemoryBackend* memory_backend_ = nullptr;
  std::unique_ptr<EthMac10G> mac10g_;
  std::unique_ptr<EthMac100G> mac100g_;
  std::unique_ptr<PcieEndpoint> pcie_;
};

}  // namespace apiary

#endif  // SRC_FPGA_BOARD_H_
