// Ablation A4: moving bulk data — DMA service vs streaming through
// memory-service messages.
//
// Both paths are capability-checked; the difference is where the bytes
// travel. Messages carry the data across the NoC twice (read reply + write
// request); the DMA engine copies at the controller and only the *grants*
// cross the NoC. This bench measures effective copy bandwidth for both.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/probe.h"
#include "src/services/dma_service.h"
#include "src/stats/table.h"

using namespace apiary;

namespace {

struct Result {
  double cycles;
  double bytes_per_cycle;
};

// Copy `total` bytes using kOpDmaCopy.
Result RunDma(uint32_t total) {
  BenchBoard bb;
  ApiaryOs& os = bb.os;
  auto* dma = new DmaService(&bb.board.memory());
  os.DeployService(kDmaService, std::unique_ptr<Accelerator>(dma));
  AppId app = os.CreateApp("u");
  auto* probe = new ProbeAccelerator();
  const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef to_dma = os.GrantSendToService(pt, kDmaService);
  const CapRef src = *os.GrantMemory(pt, total, kRightRead | kRightWrite);
  const CapRef dst = *os.GrantMemory(pt, total, kRightRead | kRightWrite);
  bb.sim.Run(3);
  const Cycle start = bb.sim.now();
  Message copy;
  copy.opcode = kOpDmaCopy;
  PutU64(copy.payload, 0);
  PutU64(copy.payload, 0);
  PutU32(copy.payload, total);
  probe->EnqueueSend(copy, to_dma, src, dst);
  bb.sim.RunUntil([&] { return !probe->received.empty(); }, 10'000'000);
  const double cycles = static_cast<double>(bb.sim.now() - start);
  return Result{cycles, total / cycles};
}

// Copy `total` bytes by reading chunks from the memory service and writing
// them back (what an accelerator without a DMA service must do).
Result RunMessages(uint32_t total) {
  BenchBoard bb;
  ApiaryOs& os = bb.os;
  AppId app = os.CreateApp("u");
  auto* probe = new ProbeAccelerator();
  const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef to_mem = os.GrantSendToService(pt, kMemoryService);
  const CapRef src = *os.GrantMemory(pt, total, kRightRead | kRightWrite);
  const CapRef dst = *os.GrantMemory(pt, total, kRightRead | kRightWrite);
  bb.sim.Run(3);
  const Cycle start = bb.sim.now();
  constexpr uint32_t kChunk = 1024;
  uint32_t moved = 0;
  while (moved < total) {
    const uint32_t chunk = std::min(kChunk, total - moved);
    // Read a chunk from src...
    Message read;
    read.opcode = kOpMemRead;
    PutU64(read.payload, moved);
    PutU32(read.payload, chunk);
    probe->EnqueueSend(read, to_mem, src);
    size_t want = probe->received.size() + 1;
    if (!bb.sim.RunUntil([&] { return probe->received.size() >= want; }, 1'000'000)) {
      break;
    }
    // ...then write it to dst.
    Message write;
    write.opcode = kOpMemWrite;
    PutU64(write.payload, moved);
    const auto& data = probe->received.back().payload;
    write.payload.insert(write.payload.end(), data.begin(), data.end());
    probe->EnqueueSend(write, to_mem, dst);
    want = probe->received.size() + 1;
    if (!bb.sim.RunUntil([&] { return probe->received.size() >= want; }, 1'000'000)) {
      break;
    }
    moved += chunk;
  }
  const double cycles = static_cast<double>(bb.sim.now() - start);
  return Result{cycles, moved / cycles};
}

}  // namespace

int main() {
  std::printf("A4: bulk copy — DMA service vs memory-service message streaming\n");

  Table table("A4: copy cost by size");
  table.SetHeader({"bytes", "dma cycles", "dma B/cyc", "messages cycles", "messages B/cyc",
                   "speedup"});
  for (uint32_t total : {4096u, 65536u, 1u << 20}) {
    const Result dma = RunDma(total);
    const Result msg = RunMessages(total);
    table.AddRow({Table::Int(total), Table::Num(dma.cycles, 0),
                  Table::Num(dma.bytes_per_cycle, 2), Table::Num(msg.cycles, 0),
                  Table::Num(msg.bytes_per_cycle, 2),
                  Table::Num(msg.cycles / dma.cycles, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\nexpected shape: the message path pays NoC serialization twice per chunk plus\n"
      "per-message monitor checks and round-trip latency, so DMA wins by an order of\n"
      "magnitude at MiB sizes — the reason Apiary keeps a DMA engine in its standard\n"
      "service set despite the simplicity goal.\n");
  return 0;
}
