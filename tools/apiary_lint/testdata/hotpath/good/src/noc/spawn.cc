// Good: packets come from the tile's pool handle; payloads stay in PayloadBuf.
#include "src/noc/network_interface.h"
#include "src/noc/packet_pool.h"

namespace apiary {

void Spawn(NetworkInterface* ni) {
  PacketRef packet = ni->pool()->Acquire();
  PayloadBuf staging;
  staging.append(packet->payload.data(), packet->payload.size());
}

}  // namespace apiary
