// Good: every wire opcode has a handler under src/ and a test reference.
#ifndef SRC_SERVICES_OPCODES_H_
#define SRC_SERVICES_OPCODES_H_

#include <cstdint>

namespace apiary {

inline constexpr uint16_t kOpPing = 0x0601;  // req: (empty); resp: (empty)

// Numbering-space marker, not a wire opcode: exempt from coverage.
inline constexpr uint16_t kOpAppBase = 0x1000;

}  // namespace apiary

#endif  // SRC_SERVICES_OPCODES_H_
