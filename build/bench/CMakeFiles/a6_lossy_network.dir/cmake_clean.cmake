file(REMOVE_RECURSE
  "CMakeFiles/a6_lossy_network.dir/a6_lossy_network.cc.o"
  "CMakeFiles/a6_lossy_network.dir/a6_lossy_network.cc.o.d"
  "a6_lossy_network"
  "a6_lossy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a6_lossy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
