// Bad: the no-OS baseline borrowing the orchestrator it is compared
// against.
#ifndef SRC_BASELINE_SCALING_H_
#define SRC_BASELINE_SCALING_H_

#include "src/orch/placer.h"

#endif  // SRC_BASELINE_SCALING_H_
