// Shared setup helpers for the benchmark harnesses.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>

#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/fpga/board.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"

namespace apiary {

struct BenchBoardOptions {
  uint32_t width = 4;
  uint32_t height = 4;
  std::string part = "VU9P";
  MacKind mac = MacKind::k100G;
  uint64_t dram_bytes = 256ull << 20;
  double clock_mhz = 250.0;
  Cycle fabric_latency_cycles = 25;  // ~100ns one-way datacenter hop.
};

// Simulator + external network + board + kernel, with the standard OS
// services (memory + network) deployed on the first tiles.
struct BenchBoard {
  explicit BenchBoard(BenchBoardOptions options = BenchBoardOptions{},
                      bool deploy_services = true)
      : sim(options.clock_mhz),
        net(options.fabric_latency_cycles),
        board(MakeConfig(options), sim, &net),
        os(board) {
    sim.Register(&net);
    if (deploy_services) {
      os.DeployService(kMemoryService, std::make_unique<MemoryService>(&os, &board.memory()));
      if (options.mac == MacKind::k100G) {
        os.DeployService(kNetworkService,
                         std::make_unique<NetworkService>(
                             &os, std::make_unique<Mac100GAdapter>(board.mac100g())));
      } else if (options.mac == MacKind::k10G) {
        os.DeployService(kNetworkService,
                         std::make_unique<NetworkService>(
                             &os, std::make_unique<Mac10GAdapter>(board.mac10g())));
      }
    }
  }

  static BoardConfig MakeConfig(const BenchBoardOptions& options) {
    BoardConfig cfg;
    cfg.part_number = options.part;
    cfg.mesh = MeshConfig{options.width, options.height, 8, 512};
    cfg.dram.capacity_bytes = options.dram_bytes;
    cfg.mac_kind = options.mac;
    return cfg;
  }

  Simulator sim;
  ExternalNetwork net;
  Board board;
  ApiaryOs os;
};

}  // namespace apiary

#endif  // BENCH_BENCH_UTIL_H_
