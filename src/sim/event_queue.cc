#include "src/sim/event_queue.h"

#include <utility>

namespace apiary {

void EventQueue::ScheduleAt(Cycle when, Callback cb) {
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

size_t EventQueue::RunUntil(Cycle now) {
  size_t ran = 0;
  while (!heap_.empty() && heap_.top().when <= now) {
    // Copy out before pop so the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    ev.cb(ev.when);
    ++ran;
  }
  return ran;
}

}  // namespace apiary
