// Google-benchmark microbenchmarks for Apiary's hot primitives: message
// serialization, capability lookups, segment allocation, translation, the
// codec kernels, and raw NoC stepping throughput. These measure *simulator*
// (host CPU) performance, complementing the cycle-accurate harnesses.
#include <benchmark/benchmark.h>

#include "src/accel/checksum.h"
#include "src/accel/compressor.h"
#include "src/accel/video_encoder.h"
#include "src/core/capability.h"
#include "src/core/message.h"
#include "src/mem/page_table.h"
#include "src/mem/segment_allocator.h"
#include "src/noc/mesh.h"
#include "src/noc/packet_pool.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/workload/frame_source.h"

namespace apiary {
namespace {

void BM_MessageSerialize(benchmark::State& state) {
  Message msg;
  msg.dst_service = 5;
  msg.opcode = 0x1234;
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeMessage(msg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * msg.WireBytes());
}
BENCHMARK(BM_MessageSerialize)->Arg(16)->Arg(256)->Arg(4096);

void BM_MessageRoundTrip(benchmark::State& state) {
  Message msg;
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    auto bytes = SerializeMessage(msg);
    benchmark::DoNotOptimize(DeserializeMessage(bytes));
  }
}
BENCHMARK(BM_MessageRoundTrip)->Arg(64)->Arg(1024);

// The actual executed-cycle path: acquire a pooled packet, serialize the
// message into it (header into the head region, payload moved), deserialize
// at the far end, release. Toggled between the pooled and the legacy
// allocate-and-copy shape — the per-message cost bench/b2 measures end to
// end, isolated from the router model.
void BM_MessagePacketPath(benchmark::State& state) {
  const bool pooled = state.range(1) != 0;
  // Bench-local pool: the process-wide default is gone (pools are per-
  // simulator domain state), so the ablation toggles a pool this loop owns.
  PacketPool packet_pool;
  packet_pool.SetEnabled(pooled);
  PayloadBuf::SetArenaEnabled(pooled);
  SetMessageLegacyAllocMode(!pooled);
  PayloadBuf payload(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    PacketRef packet = packet_pool.Acquire();
    Message msg;
    msg.dst_service = 5;
    msg.opcode = 0x1234;
    msg.payload = payload;
    SerializeMessageInto(std::move(msg), *packet);
    packet->flit_count = ComputeFlitCount(*packet);
    benchmark::DoNotOptimize(DeserializeMessage(*packet));
  }
  PayloadBuf::SetArenaEnabled(true);
  SetMessageLegacyAllocMode(false);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_MessagePacketPath)
    ->ArgPair(48, 0)
    ->ArgPair(48, 1)
    ->ArgPair(240, 0)
    ->ArgPair(240, 1)
    ->ArgPair(4096, 0)
    ->ArgPair(4096, 1);

void BM_CapabilityLookup(benchmark::State& state) {
  CapabilityTable table(256);
  std::vector<CapRef> refs;
  for (int i = 0; i < 256; ++i) {
    Capability cap;
    cap.kind = CapKind::kEndpoint;
    cap.dst_service = static_cast<ServiceId>(i);
    refs.push_back(table.Install(cap));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(refs[i++ % refs.size()]));
  }
}
BENCHMARK(BM_CapabilityLookup);

void BM_SegmentAllocateFree(benchmark::State& state) {
  SegmentAllocator alloc(0, 1ull << 30);
  Rng rng(1);
  for (auto _ : state) {
    auto seg = alloc.Allocate(rng.NextInRange(64, 65536), 64);
    if (seg.has_value()) {
      alloc.Free(*seg);
    }
  }
}
BENCHMARK(BM_SegmentAllocateFree);

void BM_PageTableTranslate(benchmark::State& state) {
  PageTable pt(PageTableConfig{});
  for (uint64_t p = 0; p < 4096; ++p) {
    pt.Map(p, p);
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Translate(rng.NextBelow(4096ull * 4096)));
  }
}
BENCHMARK(BM_PageTableTranslate);

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(65536);

void BM_LzCompress(benchmark::State& state) {
  const auto frame = GenerateFrame(128, 128, 3, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(frame));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_LzCompress);

void BM_DctEncodeFrame(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  const auto frame = GenerateFrame(dim, dim, 3, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeFrame(frame.data(), dim, dim, 50));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_DctEncodeFrame)->Arg(32)->Arg(64);

// Simulator throughput: cycles/second the host can step an idle vs busy
// 4x4 NoC (useful for sizing bigger experiments).
void BM_MeshStepIdle(benchmark::State& state) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 4, 8, 512});
  sim.Register(&mesh);
  for (auto _ : state) {
    sim.Run(1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MeshStepIdle);

void BM_MeshStepBusy(benchmark::State& state) {
  Simulator sim;
  Mesh mesh(MeshConfig{4, 4, 8, 512});
  sim.Register(&mesh);
  Rng rng(4);
  for (auto _ : state) {
    // Keep injecting small packets to keep the routers saturated.
    const TileId src = static_cast<TileId>(rng.NextBelow(16));
    PacketRef p(new NocPacket());
    p->src = src;
    p->dst = static_cast<TileId>(rng.NextBelow(16));
    p->payload.assign(64, 1);
    mesh.ni(src).Inject(p, sim.now());
    sim.Run(1);
    for (uint32_t t = 0; t < 16; ++t) {
      while (mesh.ni(t).Retrieve() != nullptr) {
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MeshStepBusy);

}  // namespace
}  // namespace apiary
