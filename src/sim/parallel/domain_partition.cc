#include "src/sim/parallel/domain_partition.h"

#include <algorithm>
#include <cassert>

namespace apiary {

DomainPartition DomainPartition::Build(uint32_t width, uint32_t height, uint32_t shards) {
  assert(width > 0 && height > 0 && shards > 0);
  DomainPartition p;
  p.width = width;
  p.height = height;
  p.num_shards = shards;
  p.split_columns = width >= height;

  // Band bounds along the split axis: shard s owns [s*L/S, (s+1)*L/S).
  // Integer division keeps bands within one slice of each other and makes
  // shards beyond the axis length empty rather than an error.
  const uint32_t axis = p.split_columns ? width : height;
  std::vector<uint32_t> coord_shard(axis, 0);
  for (uint32_t s = 0; s < shards; ++s) {
    const uint32_t begin = static_cast<uint32_t>(uint64_t{s} * axis / shards);
    const uint32_t end = static_cast<uint32_t>(uint64_t{s + 1} * axis / shards);
    for (uint32_t c = begin; c < end; ++c) {
      coord_shard[c] = s;
    }
  }

  const uint32_t tiles = width * height;
  p.shard_of_tile.resize(tiles);
  p.shard_tiles.assign(shards, {});
  for (uint32_t t = 0; t < tiles; ++t) {
    const uint32_t x = t % width;
    const uint32_t y = t / width;
    const uint32_t s = coord_shard[p.split_columns ? x : y];
    p.shard_of_tile[t] = s;
    p.shard_tiles[s].push_back(t);
  }

  // Neighbor shards: walk every east/south mesh link once and record the
  // pairs the cut separates.
  p.neighbors.assign(shards, {});
  auto link = [&p](uint32_t a, uint32_t b) {
    const uint32_t sa = p.shard_of_tile[a];
    const uint32_t sb = p.shard_of_tile[b];
    if (sa != sb) {
      p.neighbors[sa].push_back(sb);
      p.neighbors[sb].push_back(sa);
    }
  };
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      const uint32_t t = y * width + x;
      if (x + 1 < width) {
        link(t, t + 1);
      }
      if (y + 1 < height) {
        link(t, t + width);
      }
    }
  }
  for (std::vector<uint32_t>& n : p.neighbors) {
    std::sort(n.begin(), n.end());
    n.erase(std::unique(n.begin(), n.end()), n.end());
  }
  return p;
}

}  // namespace apiary
