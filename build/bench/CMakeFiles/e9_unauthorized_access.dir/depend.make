# Empty dependencies file for e9_unauthorized_access.
# This may be replaced when dependencies are built.
