// Bad: dropping the returned CapRef would orphan the installed grant.
#ifndef SRC_CORE_CAPABILITY_H_
#define SRC_CORE_CAPABILITY_H_

namespace apiary {

using CapRef = unsigned;

class CapabilityTable {
 public:
  CapRef Install(int cap);
};

}  // namespace apiary

#endif  // SRC_CORE_CAPABILITY_H_
