// Experiment E9: unauthorized access is refused at every layer, and
// revocation takes effect immediately.
//
// Paper basis (Section 2): "We do not want, for example, any accelerator of
// the KV-store application to be able to communicate with any accelerator in
// the encoding application. This could occur due to misbehavior from a bug
// or maliciously." And Section 4.6's partitioned capabilities with
// monitor-side enforcement.
//
// Part A: a snooper's full attack surface, with where each attempt died.
// Part B: capability revocation — messages in the same cycle window before
//         and after Revoke(), proving the generation check is immediate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/accel/echo.h"
#include "src/accel/faulty.h"
#include "src/accel/probe.h"
#include "src/stats/table.h"

using namespace apiary;

int main(int argc, char** argv) {
  std::printf("E9: unauthorized access and revocation (Sections 2, 4.6)\n");

  BenchJson json("e9_unauthorized_access");
  json.Param("snoop_cycles", static_cast<uint64_t>(200000));

  // ---- Part A: the snooper's haul. ----
  {
    BenchBoard bb;
    ApiaryOs& os = bb.os;
    AppId victim_app = os.CreateApp("victim");
    ServiceId vsvc = 0;
    os.Deploy(victim_app, std::make_unique<EchoAccelerator>(0), &vsvc);
    AppId evil_app = os.CreateApp("evil");
    auto* snoop = new SnooperAccelerator(os.num_tiles(), 25);
    const TileId st = os.Deploy(evil_app, std::unique_ptr<Accelerator>(snoop));
    (void)os.GrantSendToService(st, kMemoryService);  // Its one legitimate right.
    bb.sim.Run(200000);

    Table part_a("E9a: snooper outcome after 200k cycles");
    part_a.SetHeader({"metric", "count"});
    part_a.AddRow({"attempts (forged caps + forged grants)", Table::Int(snoop->attempts())});
    part_a.AddRow({"refused at the sender's monitor", Table::Int(snoop->denied_local())});
    part_a.AddRow({"refused at the service (scrubbed grant)",
                   Table::Int(snoop->denied_remote())});
    part_a.AddRow({"bytes of victim data obtained", Table::Int(snoop->leaked())});
    part_a.Print();

    json.BeginRow();
    json.Metric("part", "snooper");
    json.Metric("attempts", snoop->attempts());
    json.Metric("denied_local", snoop->denied_local());
    json.Metric("denied_remote", snoop->denied_remote());
    json.Metric("leaked_bytes", snoop->leaked());
  }

  // ---- Part B: revocation latency. ----
  {
    BenchBoard bb(BenchBoardOptions{}, /*deploy_services=*/false);
    ApiaryOs& os = bb.os;
    AppId app = os.CreateApp("a");
    ServiceId svc = 0;
    os.Deploy(app, std::make_unique<EchoAccelerator>(0), &svc);
    auto* probe = new ProbeAccelerator();
    const TileId pt = os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    const CapRef cap = os.GrantSendToService(pt, svc);
    bb.sim.Run(3);

    Table part_b("E9b: revocation is immediate (same-cycle send outcomes)");
    part_b.SetHeader({"action", "send status"});
    auto try_send = [&](const char* action, CapRef ref) {
      Message msg;
      msg.opcode = kOpEcho;
      const char* status = MsgStatusName(os.monitor(pt).Send(std::move(msg), ref).status);
      part_b.AddRow({action, status});
      json.BeginRow();
      json.Metric("part", "revocation");
      json.Metric("action", action);
      json.Metric("status", status);
    };
    try_send("send with live capability", cap);
    os.Revoke(pt, cap);
    try_send("send after Revoke() — same cycle", cap);
    // Slot reuse: a new grant occupies the same slot with a new generation;
    // the stale reference still fails.
    const CapRef fresh = os.GrantSendToService(pt, svc);
    try_send("send with STALE ref after slot reuse", cap);
    try_send("send with the fresh capability", fresh);
    part_b.Print();
  }

  const std::string json_path = JsonPathArg(argc, argv);
  if (!json_path.empty()) {
    json.WriteFile(json_path);
  }

  std::printf(
      "\nexpected shape: every snoop attempt dies at the first trusted component it\n"
      "meets (the local monitor for forged refs, the service for scrubbed grants);\n"
      "zero victim bytes leak. Revocation flips the capability generation, so the\n"
      "very next send — and any send with a stale ref after slot reuse — fails\n"
      "closed while a freshly granted capability works.\n");
  return 0;
}
