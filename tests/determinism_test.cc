// Determinism regression: two runs of an identical, nontrivial scenario must
// produce bit-identical results — the reproducibility guarantee every other
// experiment relies on — plus tests for hot-standby service rebinding.
#include <gtest/gtest.h>

#include "src/accel/echo.h"
#include "src/accel/kv_store.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/workload/client.h"
#include "src/workload/kv_workload.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

struct ScenarioResult {
  uint64_t received;
  uint64_t errors;
  uint64_t flits;
  std::string monitor_counters;
  uint64_t p50;
  uint64_t p999;
  std::vector<uint8_t> last_response;
};

ScenarioResult RunScenario(uint64_t seed) {
  TestBoard tb;
  tb.net.SetLossRate(0.02, 7);  // Loss + retries stress the determinism.
  tb.os.DeployService(kMemoryService,
                      std::make_unique<MemoryService>(&tb.os, &tb.board.memory()));
  tb.os.DeployService(
      kNetworkService,
      std::make_unique<NetworkService>(&tb.os,
                                       std::make_unique<Mac100GAdapter>(tb.board.mac100g()),
                                       /*reliable=*/true));
  AppId app = tb.os.CreateApp("kv");
  auto* kv = new KvStoreAccelerator(1 << 18, 4096);
  ServiceId kv_svc = 0;
  const TileId kt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  tb.os.GrantSendToService(kt, kMemoryService);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  tb.os.GrantSendToService(gt, kNetworkService);
  gw->SetBackend(tb.os.GrantSendToService(gt, kv_svc));

  KvWorkloadConfig wl;
  wl.keyspace = 50;
  wl.read_fraction = 0.7;
  ClientConfig ccfg;
  ccfg.server_endpoint = tb.board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 3;
  ccfg.max_requests = 60;
  ccfg.reliable = true;
  ccfg.seed = seed;
  ClientHost client(ccfg, &tb.net, MakeKvRequestFactory(wl));
  tb.sim.Register(&client);
  tb.sim.RunUntil([&] { return client.received() >= 60; }, 20'000'000);

  ScenarioResult r;
  r.received = client.received();
  r.errors = client.errors();
  r.flits = tb.board.mesh().TotalFlitsRouted();
  r.monitor_counters = tb.os.AggregateMonitorCounters().ToString();
  r.p50 = client.latency().P50();
  r.p999 = client.latency().P999();
  r.last_response = client.last_response();
  return r;
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  const ScenarioResult a = RunScenario(11);
  const ScenarioResult b = RunScenario(11);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.flits, b.flits);
  EXPECT_EQ(a.monitor_counters, b.monitor_counters);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p999, b.p999);
  EXPECT_EQ(a.last_response, b.last_response);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const ScenarioResult a = RunScenario(11);
  const ScenarioResult b = RunScenario(12);
  // Different client op mixes must leave different traffic footprints.
  EXPECT_NE(a.flits, b.flits);
}

TEST(RebindServiceTest, ClientFollowsLogicalNameToStandby) {
  TestBoard tb;
  AppId app = tb.os.CreateApp("svc");
  ServiceId svc = 0;
  auto* primary = new EchoAccelerator(5);
  const TileId pt = tb.os.Deploy(app, std::unique_ptr<Accelerator>(primary), &svc);
  ServiceId spare_svc = 0;
  auto* standby = new EchoAccelerator(5);
  const TileId st = tb.os.Deploy(app, std::unique_ptr<Accelerator>(standby), &spare_svc);

  auto* probe = new ProbeAccelerator();
  const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
  const CapRef cap = tb.os.GrantSendToService(ct, svc);
  Message msg;
  msg.opcode = kOpEcho;
  probe->EnqueueSend(msg, cap);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(primary->served(), 1u);
  probe->received.clear();

  // Fail the primary; rebind the logical name; regrant.
  tb.os.FailStop(pt, "gone");
  const CapRef old = tb.os.monitor(ct).cap_table().FindEndpointForService(svc);
  tb.os.Revoke(ct, old);
  tb.os.RebindService(svc, st);
  const CapRef fresh = tb.os.GrantSendToService(ct, svc);
  ASSERT_NE(fresh, kInvalidCapRef);

  Message msg2;
  msg2.opcode = kOpEcho;
  msg2.payload = {7};
  probe->EnqueueSend(msg2, fresh);
  ASSERT_TRUE(tb.sim.RunUntil([&] { return !probe->received.empty(); }, 10000));
  EXPECT_EQ(probe->received[0].status, MsgStatus::kOk);
  EXPECT_EQ(standby->served(), 1u);
  // The response carries the *logical* identity the client asked for.
  EXPECT_EQ(probe->received[0].src_service, svc);
}

}  // namespace
}  // namespace apiary
