// Lifecycle tests for the PacketPool that backs the executed-cycle message
// path: freelist recycling, field scrubbing on release, the exhaustion
// fallback to plain heap packets, and — the load-bearing property — that a
// full chaos campaign (link drops, corruption, router stalls) leaves the
// acquire/release ledger balanced. Dropped and corrupted packets are
// discarded mid-path by routers and NIs; if any of those paths forgot a
// PacketRef, the pool's live count would show the leak here.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/accel/echo.h"
#include "src/accel/probe.h"
#include "src/core/service_ids.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/noc/packet_pool.h"
#include "tests/test_util.h"

namespace apiary {
namespace {

Message EchoRequest(std::vector<uint8_t> payload = {0xAB}) {
  Message msg;
  msg.opcode = kOpEcho;
  msg.payload = std::move(payload);
  return msg;
}

// ------------------------------------------------------------------
// Pool unit behavior.
// ------------------------------------------------------------------

TEST(PacketPoolTest, RecyclesThroughFreelist) {
  PacketPool pool;
  NocPacket* first = nullptr;
  {
    PacketRef p = pool.Acquire();
    first = p.get();
    EXPECT_EQ(p->pool, &pool);
    EXPECT_EQ(pool.stats().heap_allocs, 1u);
    EXPECT_EQ(pool.stats().live, 1u);
    EXPECT_EQ(pool.stats().high_water, 1u);
  }
  // Last reference dropped: back on the freelist, not freed.
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().free_size, 1u);

  PacketRef again = pool.Acquire();
  EXPECT_EQ(again.get(), first);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);  // No second heap trip.
  EXPECT_EQ(pool.stats().acquires, pool.stats().pool_hits + pool.stats().heap_allocs);
}

TEST(PacketPoolTest, ReleaseScrubsSimulationVisibleState) {
  PacketPool pool;
  NocPacket* raw = nullptr;
  {
    PacketRef p = pool.Acquire();
    raw = p.get();
    p->src = 3;
    p->dst = 7;
    p->vc = Vc::kResponse;
    p->packet_id = 42;
    p->inject_cycle = 1000;
    p->head_len = 70;
    p->payload.assign(200, 0xEE);
    p->checksum = 0xDEADBEEF;
    p->flit_count = ComputeFlitCount(*p);
    p->dropped = true;
  }
  PacketRef again = pool.Acquire();
  ASSERT_EQ(again.get(), raw);
  EXPECT_EQ(again->src, kInvalidTile);
  EXPECT_EQ(again->dst, kInvalidTile);
  EXPECT_EQ(again->vc, Vc::kRequest);
  EXPECT_EQ(again->packet_id, 0u);
  EXPECT_EQ(again->inject_cycle, 0u);
  EXPECT_EQ(again->head_len, 0u);
  EXPECT_TRUE(again->payload.empty());
  EXPECT_EQ(again->checksum, 0u);
  EXPECT_EQ(again->flit_count, 1u);
  EXPECT_FALSE(again->dropped);
  // The payload's backing capacity survives the scrub — that reuse is the
  // whole point of pooling.
  EXPECT_GE(again->payload.capacity(), 200u);
}

TEST(PacketPoolTest, SharedRefsReleaseExactlyOnce) {
  PacketPool pool;
  {
    PacketRef a = pool.Acquire();
    EXPECT_EQ(a->refs, 1u);
    PacketRef b = a;               // Copy bumps the count.
    PacketRef c = std::move(a);    // Move transfers it.
    EXPECT_EQ(c->refs, 2u);
    EXPECT_FALSE(static_cast<bool>(a));
    b.Reset();
    EXPECT_EQ(c->refs, 1u);
    EXPECT_EQ(pool.stats().live, 1u);  // Still held by c.
  }
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().releases, 1u);
}

TEST(PacketPoolTest, ExhaustionFallsBackToUnpooledHeap) {
  PacketPool pool(/*max_packets=*/2);
  PacketRef a = pool.Acquire();
  PacketRef b = pool.Acquire();
  EXPECT_EQ(pool.stats().exhausted_fallbacks, 0u);

  {
    // Over the cap: still a usable packet, just not pool-owned.
    PacketRef c = pool.Acquire();
    ASSERT_TRUE(static_cast<bool>(c));
    EXPECT_EQ(c->pool, nullptr);
    EXPECT_EQ(pool.stats().exhausted_fallbacks, 1u);
    EXPECT_EQ(pool.stats().live, 2u);  // Fallbacks are not pool-live.
    c->payload.assign(64, 0x11);       // Writable like any other packet.
  }
  // The fallback deleted itself on last unref; pool ledger untouched.
  EXPECT_EQ(pool.stats().releases, 0u);
  EXPECT_EQ(pool.stats().live, 2u);

  a.Reset();
  b.Reset();
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().free_size, 2u);

  // Below the cap again the freelist serves as usual.
  PacketRef d = pool.Acquire();
  EXPECT_EQ(d->pool, &pool);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST(PacketPoolTest, DisabledPoolHandsOutPlainHeapPackets) {
  PacketPool pool;
  pool.SetEnabled(false);
  {
    PacketRef p = pool.Acquire();
    ASSERT_TRUE(static_cast<bool>(p));
    EXPECT_EQ(p->pool, nullptr);
    EXPECT_EQ(pool.stats().live, 0u);
  }
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  EXPECT_EQ(pool.stats().free_size, 0u);  // Nothing parked.

  pool.SetEnabled(true);
  PacketRef p = pool.Acquire();
  EXPECT_EQ(p->pool, &pool);
}

TEST(PacketPoolTest, ResetStatsPreservesOccupancy) {
  PacketPool pool;
  PacketRef held = pool.Acquire();
  { PacketRef parked = pool.Acquire(); }  // One on the freelist.
  pool.ResetStats();
  EXPECT_EQ(pool.stats().acquires, 0u);
  EXPECT_EQ(pool.stats().releases, 0u);
  EXPECT_EQ(pool.stats().live, 1u);
  EXPECT_EQ(pool.stats().high_water, 1u);
  EXPECT_EQ(pool.stats().free_size, 1u);
}

// ------------------------------------------------------------------
// End-to-end: acquire/release balance across a chaos campaign.
// ------------------------------------------------------------------

TEST(PacketPoolChaosTest, CampaignLeavesLedgerBalanced) {
  {
    TestBoard tb;
    // The pool is per-simulator domain state now: this board's mesh owns it
    // via the sim's context, and it dies with the TestBoard below.
    PacketPool& pool = tb.board.mesh().pool();
    pool.ResetStats();
    const uint32_t live_before = pool.stats().live;
    AppId app = tb.os.CreateApp("app");
    ServiceId svc = 0;
    auto* echo = new EchoAccelerator(0);
    tb.os.Deploy(app, std::unique_ptr<Accelerator>(echo), &svc);
    auto* probe = new ProbeAccelerator();
    const TileId ct = tb.os.Deploy(app, std::unique_ptr<Accelerator>(probe));
    const CapRef cap = tb.os.GrantSendToService(ct, svc);

    // Overlapping fault windows that exercise every mid-path discard:
    // link drops (router-side flit loss), corruption (ejecting-NI checksum
    // discard) and a router stall (packets parked in wormhole buffers).
    FaultPlan plan;
    plan.seed = 77;
    plan.LinkDrop(/*at=*/5'000, /*duration=*/15'000, /*rate=*/0.5);
    plan.LinkCorrupt(/*at=*/25'000, /*duration=*/15'000, /*rate=*/0.5);
    plan.RouterStall(/*at=*/45'000, /*duration=*/5'000, /*router=*/5);
    FaultInjector injector(plan, FaultHooks{.os = &tb.os, .mesh = &tb.board.mesh()});

    // Keep traffic flowing before, during and after every window.
    for (int burst = 0; burst < 40; ++burst) {
      for (int i = 0; i < 5; ++i) {
        probe->EnqueueSend(EchoRequest({static_cast<uint8_t>(burst), static_cast<uint8_t>(i)}),
                           cap);
      }
      tb.sim.Run(2'000);
    }
    // Drain: windows are over, let everything in flight land or be dropped.
    tb.sim.Run(100'000);
    ASSERT_TRUE(injector.Exhausted(tb.sim.now()));

    // The campaign actually bit: some requests died, some survived.
    EXPECT_GE(injector.counters().Get("fault.link_drops_applied"), 1u);
    EXPECT_GE(injector.counters().Get("fault.link_corruptions_applied"), 1u);
    EXPECT_FALSE(probe->received.empty());
    EXPECT_LT(probe->received.size(), 200u);

    // Every acquired packet came back — delivered, dropped, or discarded.
    const PacketPoolStats& s = pool.stats();
    EXPECT_EQ(s.acquires, s.pool_hits + s.heap_allocs);
    EXPECT_EQ(s.exhausted_fallbacks, 0u);  // Default pool is uncapped.
    EXPECT_EQ(s.live, live_before);
    EXPECT_EQ(s.releases, s.acquires);
    // Steady state reuses the freelist instead of the heap.
    EXPECT_GT(s.pool_hits, s.heap_allocs);
  }
  // TestBoard destruction tears down the pool with its owning context; a
  // leaked PacketRef would have shown up as live > live_before above.
}

}  // namespace
}  // namespace apiary
