// Deterministic pseudo-random number generation for the simulator.
//
// All randomness in the simulation flows through these generators so that a
// run is fully reproducible from its seed. SplitMix64 is used for seeding
// and Xoshiro256** for the main stream (both public-domain algorithms by
// Blackman & Vigna).
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <array>
#include <cstdint>

namespace apiary {

// SplitMix64: a tiny, fast 64-bit generator; primarily used to expand one
// 64-bit seed into the larger state Xoshiro needs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

// Xoshiro256**: the simulator's workhorse generator. Satisfies the
// UniformRandomBitGenerator concept so it can also drive <random>
// distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform integer in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (for Poisson
  // inter-arrival times in the workload generators).
  double NextExponential(double mean);

  // Geometric-like Zipf(theta) sample over [0, n) using the standard
  // rejection-free approximation (used by the YCSB-style KV workload).
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace apiary

#endif  // SRC_SIM_RANDOM_H_
