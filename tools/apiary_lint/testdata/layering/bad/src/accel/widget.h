// Bad: an accelerator reaching memory and the NoC directly, bypassing the
// Monitor interposition the isolation claim rests on.
#ifndef SRC_ACCEL_WIDGET_H_
#define SRC_ACCEL_WIDGET_H_

#include "src/mem/dram.h"
#include "src/noc/packet.h"

#endif  // SRC_ACCEL_WIDGET_H_
