// Suppressed: a deliberately unpooled packet (exhaustion-fallback shape)
// with the in-line marker the check honors.
#include <vector>

namespace apiary {

struct NocPacket {
  std::vector<unsigned char> payload;
};

void Spawn() {
  NocPacket* fallback = new NocPacket();  // NOLINT(apiary-hot-path): exhaustion fallback, off the steady-state path
  // NOLINTNEXTLINE(apiary-hot-path): one-time staging copy at tile bring-up
  std::vector<uint8_t> payload_copy(fallback->payload.begin(), fallback->payload.end());
  (void)payload_copy;
}

}  // namespace apiary
