// Orchestration control-plane service: the on-fabric front door to the
// autoscaler. Operators (or other accelerators holding a capability to it)
// adjust replica bounds and read scaling status over the same message
// interface as every other Apiary service.
#ifndef SRC_ORCH_ORCH_SERVICE_H_
#define SRC_ORCH_ORCH_SERVICE_H_

#include <string>

#include "src/core/accelerator.h"
#include "src/orch/autoscaler.h"

namespace apiary {

class OrchService : public Accelerator {
 public:
  explicit OrchService(Autoscaler* autoscaler) : autoscaler_(autoscaler) {}

  // Handles kOpOrchScale (req: u32 min, u32 max; resp: u32 live) and
  // kOpOrchStatus (resp: u32 live, u32 target, u64 ups, u64 downs).
  void OnMessage(const Message& msg, TileApi& api) override;

  std::string name() const override { return "orch_service"; }
  uint32_t LogicCellCost() const override { return 5000; }

 private:
  Autoscaler* autoscaler_;
};

}  // namespace apiary

#endif  // SRC_ORCH_ORCH_SERVICE_H_
