#include "src/services/name_service.h"

namespace apiary {

void NameService::OnMessage(const Message& msg, TileApi& api) {
  if (msg.kind != MsgKind::kRequest) {
    return;
  }
  Message reply;
  reply.opcode = msg.opcode;
  switch (msg.opcode) {
    case kOpNameRegister: {
      if (msg.payload.size() < 5) {
        reply.status = MsgStatus::kBadRequest;
        break;
      }
      const ServiceId id = GetU32(msg.payload, 0);
      const std::string svc_name(msg.payload.begin() + 4, msg.payload.end());
      registry_[svc_name] = id;
      counters_.Add("namesvc.registrations");
      break;
    }
    case kOpNameLookup: {
      const std::string svc_name(msg.payload.begin(), msg.payload.end());
      auto it = registry_.find(svc_name);
      if (it == registry_.end()) {
        counters_.Add("namesvc.misses");
        reply.status = MsgStatus::kNoSuchService;
      } else {
        counters_.Add("namesvc.hits");
        PutU32(reply.payload, it->second);
      }
      break;
    }
    default:
      reply.status = MsgStatus::kBadRequest;
      break;
  }
  api.Reply(msg, std::move(reply));
}

}  // namespace apiary
