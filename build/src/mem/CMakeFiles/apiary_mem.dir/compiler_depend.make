# Empty compiler generated dependencies file for apiary_mem.
# This may be replaced when dependencies are built.
