file(REMOVE_RECURSE
  "CMakeFiles/apiary_stats.dir/histogram.cc.o"
  "CMakeFiles/apiary_stats.dir/histogram.cc.o.d"
  "CMakeFiles/apiary_stats.dir/summary.cc.o"
  "CMakeFiles/apiary_stats.dir/summary.cc.o.d"
  "CMakeFiles/apiary_stats.dir/table.cc.o"
  "CMakeFiles/apiary_stats.dir/table.cc.o.d"
  "libapiary_stats.a"
  "libapiary_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apiary_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
