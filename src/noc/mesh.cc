#include "src/noc/mesh.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace apiary {

namespace {
// The port a flit leaving through `out` arrives on downstream.
constexpr RouterPort kOppositePort[4] = {kPortSouth, kPortNorth, kPortWest, kPortEast};
}  // namespace

Mesh::Mesh(MeshConfig config, SimContext* context) : config_(config) {
  if (context != nullptr) {
    pool_ = &PacketPool::ForContext(*context);
  } else {
    owned_pool_ = std::make_unique<PacketPool>();
    pool_ = owned_pool_.get();
  }
  const uint32_t n = num_tiles();
  routers_.reserve(n);
  nis_.reserve(n);
  for (uint32_t y = 0; y < config_.height; ++y) {
    for (uint32_t x = 0; x < config_.width; ++x) {
      routers_.push_back(std::make_unique<Router>(x, y, config_.width, config_.height,
                                                  config_.router_buffer_depth));
    }
  }
  for (uint32_t t = 0; t < n; ++t) {
    nis_.push_back(std::make_unique<NetworkInterface>(t, routers_[t].get(),
                                                      config_.ni_inject_queue_flits,
                                                      config_.force_single_vc, pool_));
    routers_[t]->SetLocalInterface(nis_[t].get());
  }
  // Wire up the grid.
  for (uint32_t y = 0; y < config_.height; ++y) {
    for (uint32_t x = 0; x < config_.width; ++x) {
      Router* r = routers_[y * config_.width + x].get();
      if (y > 0) {
        r->SetNeighbor(kPortNorth, routers_[(y - 1) * config_.width + x].get());
      }
      if (y + 1 < config_.height) {
        r->SetNeighbor(kPortSouth, routers_[(y + 1) * config_.width + x].get());
      }
      if (x + 1 < config_.width) {
        r->SetNeighbor(kPortEast, routers_[y * config_.width + x + 1].get());
      }
      if (x > 0) {
        r->SetNeighbor(kPortWest, routers_[y * config_.width + x - 1].get());
      }
    }
  }
  BindLiveLists();
  express_.Configure(this, n, nullptr, 0);
}

void Mesh::BindLiveLists() {
  for (uint32_t t = 0; t < num_tiles(); ++t) {
    routers_[t]->SetLiveList(&live_.fresh_routers);
    nis_[t]->SetLiveList(&live_.fresh_nis);
  }
}

void Mesh::MergeFresh(LiveSet& set) {
  // Entries are unique (the mark gates publication), so append + sort keeps
  // the list sorted ascending — the sweep order of the full loop.
  if (!set.fresh_routers.empty()) {
    set.routers.insert(set.routers.end(), set.fresh_routers.begin(), set.fresh_routers.end());
    std::sort(set.routers.begin(), set.routers.end());
    set.fresh_routers.clear();
  }
  if (!set.fresh_nis.empty()) {
    set.nis.insert(set.nis.end(), set.fresh_nis.begin(), set.fresh_nis.end());
    std::sort(set.nis.begin(), set.nis.end());
    set.fresh_nis.clear();
  }
}

void Mesh::CompactDead(LiveSet& set) {
  size_t kept = 0;
  for (const uint32_t t : set.routers) {
    if (routers_[t]->HasBufferedFlits()) {
      set.routers[kept++] = t;
    } else {
      routers_[t]->ClearLiveMark();
    }
  }
  set.routers.resize(kept);
  kept = 0;
  for (const uint32_t t : set.nis) {
    if (nis_[t]->HasPendingInject()) {
      set.nis[kept++] = t;
    } else {
      nis_[t]->ClearLiveMark();
    }
  }
  set.nis.resize(kept);
}

void Mesh::Tick(Cycle now) {
  // A partitioned mesh is driven through the ShardCommit/Route/Transfer
  // phases by the parallel engine; serial ticking would bypass the boundary
  // shims and double-run the phases.
  assert(!partitioned() && "partitioned mesh must be driven by ParallelSimulator");
  if (express_enabled_) {
    ExpressTickTop(express_, live_, now);
  }
  MergeFresh(live_);
  if (!sweep_enabled_) {
    // Phase 1: flits staged last cycle become visible everywhere.
    for (auto& r : routers_) {
      r->CommitStaged();
    }
    // Phase 2: route one flit per output port per router.
    for (auto& r : routers_) {
      r->RouteCycle(now);
    }
    // Phase 3: NIs feed the local input ports (visible next cycle).
    for (auto& ni : nis_) {
      ni->InjectCycle(now);
    }
  } else {
    // Active sweep: same three phases over the busy subset only. Staged
    // flits imply occupancy and occupancy implies list membership, so
    // committing live routers commits every staged flit; RouteCycle and
    // InjectCycle are no-ops on empty members, so skipping them is exact.
    for (const uint32_t t : live_.routers) {
      routers_[t]->CommitStaged();
    }
    if (fault_model_ != nullptr && fault_model_->NextMeshActivity(now) <= now) {
      // An open stall window charges router.fault_stalled_cycles on every
      // wedged router, busy or not — only the full sweep reproduces that.
      for (auto& r : routers_) {
        r->RouteCycle(now);
      }
    } else {
      for (const uint32_t t : live_.routers) {
        routers_[t]->RouteCycle(now);
      }
    }
    for (const uint32_t t : live_.nis) {
      nis_[t]->InjectCycle(now);
    }
  }
  CompactDead(live_);
}

Cycle Mesh::NextActivity(Cycle now) const {
  // An active corridor keeps the mesh ticking on every executed cycle — the
  // exact cycles the real run would execute with those flits in flight, so
  // skip/executed-cycle counts stay byte-identical. Each such tick costs
  // O(corridors), not O(busy routers), which is where the B5 win comes from.
  if (express_.AnyActive()) {
    return now;
  }
  for (const ExpressLane& lane : shard_express_) {
    if (lane.AnyActive()) {
      return now;
    }
  }
  if (sweep_enabled_) {
    // The live sets are exact between ticks (marks are published on every
    // idle-to-busy transition, compaction prunes on the drain side), so the
    // busy check is a handful of emptiness tests instead of an O(tiles)
    // scan — and agrees with that scan bit for bit.
    if (LiveBusy(live_)) {
      return now;
    }
    for (const LiveSet& set : shard_live_) {
      if (LiveBusy(set)) {
        return now;
      }
    }
  } else {
    for (const auto& r : routers_) {
      if (r->HasBufferedFlits()) {
        return now;
      }
    }
    for (const auto& ni : nis_) {
      if (ni->HasPendingInject()) {
        return now;
      }
    }
  }
  // Empty fabric: only the fault model (stall windows charge a counter every
  // open cycle) can still need per-cycle routing work.
  return fault_model_ != nullptr ? fault_model_->NextMeshActivity(now) : kNoActivity;
}

void Mesh::SetFaultModel(NocFaultModel* model) {
  // Corridors were planned against the old model's quiet declaration.
  MaterializeExpress();
  fault_model_ = model;
  for (auto& r : routers_) {
    r->SetFaultModel(model);
  }
}

void Mesh::SetArbClassWeight(uint8_t cls, uint32_t weight) {
  // SetClassWeight zeroes every router's deficits and may flip the weighted
  // arbitration path on or off — exactly the reconfiguration the corridor
  // replay must not paper over. Materialize first, then reconfigure.
  MaterializeExpress();
  for (auto& r : routers_) {
    r->SetClassWeight(cls, weight);
  }
}

void Mesh::SetExpressEnabled(bool enabled) {
  if (!enabled) {
    MaterializeExpress();
  }
  express_enabled_ = enabled;
  express_.SetEnabled(enabled && !partitioned());
  for (ExpressLane& lane : shard_express_) {
    lane.SetEnabled(enabled);
  }
  BindExpressLanes();
}

void Mesh::BindExpressLanes() {
  for (uint32_t t = 0; t < num_tiles(); ++t) {
    ExpressLane* lane = nullptr;
    if (express_enabled_) {
      lane = partitioned() ? &shard_express_[partition_.shard_of_tile[t]] : &express_;
    }
    nis_[t]->SetExpressLane(lane);
  }
}

void Mesh::MaterializeExpress() {
  express_.MaterializeAll();
  for (ExpressLane& lane : shard_express_) {
    lane.MaterializeAll();
  }
}

ExpressStats Mesh::AggregateExpressStats() const {
  ExpressStats total = folded_express_;
  total.Fold(express_.stats());
  for (const ExpressLane& lane : shard_express_) {
    total.Fold(lane.stats());
  }
  return total;
}

void Mesh::ExpressTickTop(ExpressLane& lane, LiveSet& set, Cycle now) {
  lane.RunCompletions(now);
  if (lane.AnyActive()) {
    // Conflict scan over the domain's busy sets. Index-based with snapshot
    // bounds: materializing a corridor appends its own router/NI marks to
    // the fresh lists, and those can never conflict with the survivors (the
    // path/zone disjointness invariant), so new entries are safely skipped.
    const size_t routers = set.routers.size();
    const size_t fresh_routers = set.fresh_routers.size();
    const size_t nis = set.nis.size();
    const size_t fresh_nis = set.fresh_nis.size();
    for (size_t i = 0; i < routers && lane.AnyActive(); ++i) {
      lane.MaterializeTouchingRouter(set.routers[i]);
    }
    for (size_t i = 0; i < fresh_routers && lane.AnyActive(); ++i) {
      lane.MaterializeTouchingRouter(set.fresh_routers[i]);
    }
    for (size_t i = 0; i < nis && lane.AnyActive(); ++i) {
      lane.MaterializeTouchingNi(set.nis[i]);
    }
    for (size_t i = 0; i < fresh_nis && lane.AnyActive(); ++i) {
      lane.MaterializeTouchingNi(set.fresh_nis[i]);
    }
  }
  // Every observer until the next tick sees end-of-`now` state, really or
  // analytically — the uniform materialization boundary.
  lane.SetStateTime(now);
}

uint32_t Mesh::Hops(TileId a, TileId b) const {
  const int ax = static_cast<int>(a % config_.width);
  const int ay = static_cast<int>(a / config_.width);
  const int bx = static_cast<int>(b % config_.width);
  const int by = static_cast<int>(b / config_.width);
  return static_cast<uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

CounterSet Mesh::AggregateCounters() const {
  CounterSet total;
  for (const auto& r : routers_) {
    total.Merge(r->counters());
  }
  for (const auto& ni : nis_) {
    total.Merge(ni->counters());
  }
  return total;
}

Histogram Mesh::AggregateLatency() const {
  Histogram total;
  for (const auto& ni : nis_) {
    total.Merge(ni->latency_histogram());
  }
  return total;
}

uint64_t Mesh::TotalFlitsRouted() const {
  uint64_t total = 0;
  for (const auto& r : routers_) {
    total += r->flits_routed();
  }
  return total;
}

uint64_t Mesh::LogicCellCost() const {
  return static_cast<uint64_t>(num_tiles()) *
         (Router::LogicCellCost(config_.router_buffer_depth) +
          NetworkInterface::LogicCellCost());
}

void Mesh::EnablePartition(const DomainPartition& partition,
                           std::vector<std::unique_ptr<SimContext>> shard_contexts) {
  assert(!partitioned());
  // Corridors hold drained injection queues; flush them back before the
  // idle asserts below (an active corridor IS in-flight traffic).
  MaterializeExpress();
  assert(partition.width == config_.width && partition.height == config_.height);
  assert(shard_contexts.size() == partition.num_shards);
  // The fabric must be idle: a packet acquired before the split would be
  // released into a shard pool it never came from.
  for (const auto& r : routers_) {
    assert(!r->HasBufferedFlits() && "EnablePartition on a non-idle mesh");
    (void)r;
  }
  for (const auto& ni : nis_) {
    assert(!ni->HasPendingInject() && "EnablePartition on a non-idle mesh");
    (void)ni;
  }

  partition_ = partition;
  shard_contexts_ = std::move(shard_contexts);
  shard_pools_.clear();
  shard_pools_.reserve(partition_.num_shards);
  for (const auto& context : shard_contexts_) {
    shard_pools_.push_back(&PacketPool::ForContext(*context));
  }
  // Each tile's senders draw from its shard's pool: packets are born,
  // routed (except across cuts, where they are cloned), and released inside
  // one domain — the confinement that lets PacketRef stay non-atomic.
  for (uint32_t t = 0; t < num_tiles(); ++t) {
    nis_[t]->SetPool(shard_pools_[partition_.shard_of_tile[t]]);
  }

  // Per-shard live sets: the idle precondition above guarantees every mark
  // is clear and the serial lists are empty, so repointing is all it takes.
  // Sized once here — element addresses stay stable while partitioned.
  shard_live_.assign(partition_.num_shards, LiveSet{});
  for (uint32_t t = 0; t < num_tiles(); ++t) {
    LiveSet& set = shard_live_[partition_.shard_of_tile[t]];
    routers_[t]->SetLiveList(&set.fresh_routers);
    nis_[t]->SetLiveList(&set.fresh_nis);
  }

  // Boundary shims on every directed cut link.
  shard_out_edges_.assign(partition_.num_shards, {});
  shard_in_edges_.assign(partition_.num_shards, {});
  const RouterPort kDirs[4] = {kPortNorth, kPortSouth, kPortEast, kPortWest};
  for (uint32_t y = 0; y < config_.height; ++y) {
    for (uint32_t x = 0; x < config_.width; ++x) {
      const uint32_t t = y * config_.width + x;
      for (const RouterPort out : kDirs) {
        const int nx = static_cast<int>(x) + (out == kPortEast ? 1 : out == kPortWest ? -1 : 0);
        const int ny = static_cast<int>(y) + (out == kPortSouth ? 1 : out == kPortNorth ? -1 : 0);
        if (nx < 0 || ny < 0 || nx >= static_cast<int>(config_.width) ||
            ny >= static_cast<int>(config_.height)) {
          continue;
        }
        const uint32_t n = static_cast<uint32_t>(ny) * config_.width + static_cast<uint32_t>(nx);
        if (partition_.shard_of_tile[t] == partition_.shard_of_tile[n]) {
          continue;
        }
        BoundaryEdge edge;
        edge.link = std::make_unique<BoundaryLink>(config_.router_buffer_depth);
        edge.src_router = routers_[t].get();
        edge.dst_router = routers_[n].get();
        edge.out_port = out;
        edge.in_port = kOppositePort[out];
        edge.src_shard = partition_.shard_of_tile[t];
        edge.dst_shard = partition_.shard_of_tile[n];
        edge.src_router->SetOutputBoundary(edge.out_port, edge.link.get());
        edge.dst_router->SetInputBoundary(edge.in_port, edge.link.get());
        const uint32_t index = static_cast<uint32_t>(edges_.size());
        shard_out_edges_[edge.src_shard].push_back(index);
        shard_in_edges_[edge.dst_shard].push_back(index);
        edges_.push_back(std::move(edge));
      }
    }
  }

  // One express lane per shard, worker-confined exactly like the LiveSets
  // (launch/scan/materialize all run inside shard phases; the coordinator
  // only touches them from the root phase, with workers at their barrier).
  shard_express_.assign(partition_.num_shards, ExpressLane{});
  for (uint32_t s = 0; s < partition_.num_shards; ++s) {
    shard_express_[s].Configure(this, num_tiles(), partition_.shard_of_tile.data(), s);
    shard_express_[s].SetEnabled(express_enabled_);
  }
  express_.SetEnabled(false);
  BindExpressLanes();
}

void Mesh::DisablePartition() {
  if (!partitioned()) {
    return;
  }
  // In-flight corridors are shard-confined state; convert them back to
  // ordinary buffered flits (whose routers self-mark into the shard live
  // sets folded below) before the shard lanes retire.
  MaterializeExpress();
  for (ExpressLane& lane : shard_express_) {
    folded_express_.Fold(lane.stats());
  }
  shard_express_.clear();
  for (BoundaryEdge& edge : edges_) {
    edge.src_router->SetOutputBoundary(edge.out_port, nullptr);
    edge.dst_router->SetInputBoundary(edge.in_port, nullptr);
  }
  // Destroying the edges drops anchor/clone refs into the shard pools —
  // single-threaded by contract (the engine's workers have joined).
  edges_.clear();
  shard_out_edges_.clear();
  shard_in_edges_.clear();
  for (auto& ni : nis_) {
    ni->SetPool(pool_);
  }
  // Fold the shard busy sets back into the serial one (a disabled partition
  // may still hold in-flight flits; their routers keep their marks) and
  // repoint the publication targets. Members are disjoint across shards, so
  // staging everything as fresh and letting the next tick merge is exact.
  for (LiveSet& set : shard_live_) {
    live_.fresh_routers.insert(live_.fresh_routers.end(), set.routers.begin(), set.routers.end());
    live_.fresh_routers.insert(live_.fresh_routers.end(), set.fresh_routers.begin(),
                               set.fresh_routers.end());
    live_.fresh_nis.insert(live_.fresh_nis.end(), set.nis.begin(), set.nis.end());
    live_.fresh_nis.insert(live_.fresh_nis.end(), set.fresh_nis.begin(), set.fresh_nis.end());
  }
  shard_live_.clear();
  BindLiveLists();
  // Retire (don't destroy) the shard contexts: live packets in delivery
  // queues still point at their pools. They die with the mesh.
  for (auto& context : shard_contexts_) {
    retired_contexts_.push_back(std::move(context));
  }
  shard_contexts_.clear();
  shard_pools_.clear();
  partition_ = DomainPartition{};
  express_.SetEnabled(express_enabled_);
  BindExpressLanes();
}

void Mesh::ShardCommit(uint32_t shard, Cycle now) {
  LiveSet& set = shard_live_[shard];
  if (express_enabled_) {
    ExpressTickTop(shard_express_[shard], set, now);
  }
  MergeFresh(set);
  if (sweep_enabled_) {
    for (const uint32_t t : set.routers) {
      routers_[t]->CommitStaged();
    }
  } else {
    for (const uint32_t t : partition_.shard_tiles[shard]) {
      routers_[t]->CommitStaged();
    }
  }
  for (const uint32_t e : shard_out_edges_[shard]) {
    edges_[e].link->ReleaseAnchors();
  }
}

void Mesh::ShardRoute(uint32_t shard, Cycle now) {
  // Same fallback as the serial tick: an open stall window must charge its
  // counter on every wedged router of this shard, busy or not. The fault
  // model is read-only during shard phases (the injector ticks in the root
  // phase), so concurrent polls from workers are safe.
  if (sweep_enabled_ &&
      !(fault_model_ != nullptr && fault_model_->NextMeshActivity(now) <= now)) {
    for (const uint32_t t : shard_live_[shard].routers) {
      routers_[t]->RouteCycle(now);
    }
  } else {
    for (const uint32_t t : partition_.shard_tiles[shard]) {
      routers_[t]->RouteCycle(now);
    }
  }
  // Publish this cycle's consumed credits before the engine's route_done
  // grant, so the upstream shard's harvest sees the complete cycle.
  for (const uint32_t e : shard_in_edges_[shard]) {
    edges_[e].link->FlushCredits();
  }
}

void Mesh::ShardTransfer(uint32_t shard, Cycle now) {
  for (const uint32_t e : shard_out_edges_[shard]) {
    edges_[e].link->HarvestCredits();
  }
  for (const uint32_t e : shard_in_edges_[shard]) {
    const BoundaryEdge& edge = edges_[e];
    edge.link->DeliverInto(*edge.dst_router, edge.in_port, now, *shard_pools_[shard]);
  }
  LiveSet& set = shard_live_[shard];
  if (sweep_enabled_) {
    for (const uint32_t t : set.nis) {
      nis_[t]->InjectCycle(now);
    }
  } else {
    for (const uint32_t t : partition_.shard_tiles[shard]) {
      nis_[t]->InjectCycle(now);
    }
  }
  CompactDead(set);
}

uint64_t Mesh::BoundaryFlitsHandedOff() const {
  uint64_t total = 0;
  for (const BoundaryEdge& edge : edges_) {
    total += edge.link->flits_handed_off();
  }
  return total;
}

uint64_t Mesh::BoundaryPacketsCloned() const {
  uint64_t total = 0;
  for (const BoundaryEdge& edge : edges_) {
    total += edge.link->packets_cloned();
  }
  return total;
}

PacketPoolStats Mesh::AggregatePoolStats() const {
  PacketPoolStats total = pool_->stats();
  for (const PacketPool* pool : shard_pools_) {
    const PacketPoolStats& s = pool->stats();
    total.acquires += s.acquires;
    total.pool_hits += s.pool_hits;
    total.heap_allocs += s.heap_allocs;
    total.releases += s.releases;
    total.exhausted_fallbacks += s.exhausted_fallbacks;
    total.live += s.live;
    total.high_water += s.high_water;
    total.free_size += s.free_size;
  }
  return total;
}

void Mesh::ResetPoolStats() {
  pool_->ResetStats();
  for (PacketPool* pool : shard_pools_) {
    pool->ResetStats();
  }
}

}  // namespace apiary
