# Empty compiler generated dependencies file for apiary_baseline.
# This may be replaced when dependencies are built.
