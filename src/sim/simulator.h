// The top-level simulation driver: a single global clock domain plus a
// discrete-event queue.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "src/sim/active_schedule.h"
#include "src/sim/clocked.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_context.h"
#include "src/sim/types.h"

namespace apiary {

class Simulator {
 public:
  // `frequency_mhz` maps cycles to wall time for reporting (default matches a
  // typical FPGA fabric clock).
  explicit Simulator(double frequency_mhz = 250.0) : frequency_mhz_(frequency_mhz) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a block. The simulator does not own the block; callers keep it
  // alive for the duration of the run. Under active-set scheduling (the
  // default) only blocks that are active — by declaration, timer-wheel
  // deadline, or wake — are ticked on an executed cycle; with
  // SetActiveSetEnabled(false) every block is ticked every executed cycle.
  // Seeded runs are byte-identical either way.
  void Register(Clocked* block);

  // Removes a previously registered block (e.g. a reconfigured-away
  // accelerator). Safe to call during a tick; removal takes effect before
  // the next cycle.
  void Unregister(Clocked* block);

  // Schedules a timed callback on the event queue.
  void ScheduleAt(Cycle when, EventQueue::Callback cb) {
    events_.ScheduleAt(when, std::move(cb));
  }
  void ScheduleAfter(Cycle delay, EventQueue::Callback cb) {
    events_.ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs `cycles` additional cycles. When skipping is enabled (the default),
  // stretches where every block is quiescent (see Clocked::NextActivity) and
  // no event is due are fast-forwarded instead of being ticked cycle by
  // cycle; executed cycles behave exactly as before.
  void Run(Cycle cycles);

  // Runs until `pred` returns true or `max_cycles` additional cycles have
  // elapsed. Returns true if `pred` fired.
  //
  // Contract (changed with quiescence skipping, still correct): `pred` is
  // evaluated before every *executed* cycle and once at the end, not once
  // per simulated cycle. Cycles inside a skipped window are never observed —
  // which is sound because nothing ticks there, so a pred over simulated
  // state cannot change mid-skip. A pred whose flip is time-driven (e.g.
  // "now() >= T") is only guaranteed to be seen at the next activity
  // boundary; blocks that gate such state (queues with ready times, fault
  // windows) declare those boundaries via NextActivity so the flip cycle is
  // identical with and without skipping. Use SetSkipEnabled(false) to force
  // the old every-cycle evaluation.
  bool RunUntil(const std::function<bool()>& pred, Cycle max_cycles);

  Cycle now() const { return now_; }
  double frequency_mhz() const { return frequency_mhz_; }

  // This simulator's domain context: the home of every pool/arena its
  // blocks allocate from. Installed as the current thread's domain for the
  // duration of Run()/RunUntil(); harnesses that build boards off the run
  // path install it explicitly (ThreadDomain::ScopedInstall) so
  // construction-time allocations land in the same domain.
  SimContext& context() { return context_; }

  // Converts a cycle count to nanoseconds at the configured frequency.
  double CyclesToNs(Cycle cycles) const {
    return static_cast<double>(cycles) * 1000.0 / frequency_mhz_;
  }

  // Escape hatch (`--no-skip`): when disabled, every cycle is executed and
  // every block is ticked, exactly as before quiescence awareness existed —
  // active-set scheduling is bypassed too, so this is the pure legacy
  // baseline. Seeded runs must be byte-identical either way; the
  // differential tests enforce it.
  void SetSkipEnabled(bool enabled);
  bool skip_enabled() const { return skip_enabled_; }

  // Ablation hatch (`--no-active-set`): when disabled, executed cycles tick
  // every registered block in registration order, exactly as before active
  // sets existed. Seeded runs must be byte-identical either way; the
  // active-set differential test enforces it. Re-enabling mid-run
  // conservatively re-activates every block (byte-safe: spurious ticks of
  // quiescent blocks are no-ops).
  void SetActiveSetEnabled(bool enabled);
  bool active_set_enabled() const { return active_set_enabled_; }

  // Fast-forward observability (for benchmarks and tests).
  uint64_t skipped_cycles() const { return skipped_cycles_; }
  uint64_t skips() const { return skips_; }

  // Executed-cycle breakdown (for benchmarks): how much tick work the
  // scheduler actually did. `ticked_blocks / (executed_cycles * block_count)`
  // is the observed active fraction.
  uint64_t executed_cycles() const { return executed_cycles_; }
  uint64_t ticked_blocks() const {
    return legacy_ticked_blocks_ + extra_ticked_blocks_ + sched_.ticked_blocks();
  }
  uint64_t wheel_wakes() const { return extra_wheel_wakes_ + sched_.wheel_wakes(); }
  uint64_t wake_calls() const { return extra_wake_calls_ + sched_.wake_calls(); }
  size_t block_count() const { return blocks_.size(); }

 private:
  // The sharded engine drives this simulator's clock, blocks, and event
  // queue directly (root phase + per-shard phases instead of Step()); it
  // moves shard-homed blocks between this simulator's root schedule and its
  // per-shard schedules, and reuses JumpTo/ApplyPendingRemovals so skip and
  // removal semantics stay byte-identical with the serial path.
  friend class ParallelSimulator;

  // Where a registered block currently lives: its schedule (the root
  // schedule, or a shard schedule under the parallel engine) and its stable
  // slot id there. Indexed in lockstep with blocks_.
  struct SlotRef {
    ActiveSchedule* sched = nullptr;
    uint32_t slot = 0;
  };

  // Active-set scheduling is live only when skipping is too: `--no-skip`
  // promises the complete legacy execution (every block, every cycle).
  bool ActiveSetLive() const { return active_set_enabled_ && skip_enabled_; }

  void Step();
  // Fast-forwards now_ to the earliest cycle in (now_, limit] that any block
  // or event needs, when every block is quiescent. No-op when some block is
  // active or skipping is disabled.
  void SkipAhead(Cycle limit);
  // Executes the fast-forward to `target`: counters, the OnFastForward
  // broadcast over every block in registration order, the clock, and the
  // post-jump boundary re-establishment.
  void JumpTo(Cycle target);
  void ApplyPendingRemovals();
  void ResetHotCache() {
    hot_ref_ = SlotRef{};
    hot_gen_ = 0;
  }

  SimContext context_;
  double frequency_mhz_;
  Cycle now_ = 0;
  bool skip_enabled_ = true;
  bool active_set_enabled_ = true;
  // Set while a parallel engine drives this simulator: new registrations
  // start ticking next cycle even when made from an event callback (the
  // engine classifies them at the top of the next cycle, unlike Step()'s
  // same-cycle pickup).
  bool defer_new_blocks_ = false;
  uint64_t skipped_cycles_ = 0;
  uint64_t skips_ = 0;
  uint64_t executed_cycles_ = 0;
  uint64_t legacy_ticked_blocks_ = 0;  // Ticks issued by the tick-everything path.
  // Contributions from schedules this simulator does not own (the parallel
  // engine folds its shard schedules in at the end of each run).
  uint64_t extra_ticked_blocks_ = 0;
  uint64_t extra_wheel_wakes_ = 0;
  uint64_t extra_wake_calls_ = 0;
  // The block that most recently kept a skip from happening, identified by
  // stable (schedule, slot, generation) — never remapped on removal; a stale
  // generation simply falls through to the full poll. Only the
  // tick-everything path uses it (the active-set path's busy check is O(1)).
  SlotRef hot_ref_;
  uint32_t hot_gen_ = 0;
  std::vector<Clocked*> blocks_;
  std::vector<SlotRef> slot_refs_;  // Lockstep with blocks_.
  std::vector<Clocked*> pending_removals_;
  ActiveSchedule sched_;
  EventQueue events_;
};

}  // namespace apiary

#endif  // SRC_SIM_SIMULATOR_H_
