// PayloadArena: the size-classed chunk allocator behind PayloadBuf's heap
// tier.
//
// Historically this was a process-wide Meyers static inside payload_buf.cc.
// That made every payload allocation a write to shared state — exactly the
// kind of hidden global the sharded engine (ROADMAP item 1) cannot tolerate.
// The arena is now an explicit object: each SimContext owns one, so every
// simulation domain recycles chunks privately, and a process fallback arena
// (annotated APIARY-SHARED) serves code running outside any domain.
//
// Lifetime protocol: a PayloadBuf records the arena its chunk came from and
// always releases back to it, so chunks never migrate between domains. A
// SimContext tearing down while chunks are still outstanding calls Retire():
// the arena flips to drain mode (releases go straight to the heap) and
// self-deletes when the last chunk lands. Single-threaded per domain — the
// protocol needs no locks, which is the whole point.
#ifndef SRC_SIM_PAYLOAD_ARENA_H_
#define SRC_SIM_PAYLOAD_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apiary {

// Observability for a chunk arena: the hot-path benchmark (bench/b2)
// derives "heap allocations per message" from these.
struct PayloadArenaStats {
  uint64_t chunk_acquires = 0;  // Requests for heap-tier backing.
  uint64_t chunk_reuses = 0;    // Served from a freelist (no heap call).
  uint64_t chunk_allocs = 0;    // Fell through to operator new.
  uint64_t chunk_releases = 0;  // Chunks returned (freelist or heap).
  uint64_t live_chunks = 0;     // Outstanding (acquired - released).
  uint64_t freelist_bytes = 0;  // Capacity parked in the freelists.
};

class PayloadArena {
 public:
  // Size classes: 128B, 256B, ... 1MB. Larger-than-1MB requests (none exist
  // today — the NI bounds packets well below that) fall through to plain
  // new/delete and are counted as allocs.
  static constexpr size_t kMinChunkBytes = 128;
  static constexpr int kNumClasses = 14;  // 128 << 13 == 1MB.

  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  // Parked chunks are a cache, not a leak: hand them back at destruction so
  // the sanitized CI job sees a clean shutdown.
  ~PayloadArena() { Trim(); }

  // Returns a chunk of at least `min_bytes`; actual capacity (the size
  // class, or min_bytes when oversized) lands in *capacity.
  uint8_t* Acquire(size_t min_bytes, size_t* capacity);

  // Returns a chunk previously handed out by *this* arena. In drain mode
  // the chunk goes straight to the heap, and the last release deletes the
  // arena itself.
  void Release(uint8_t* chunk, size_t capacity);

  // Frees every parked freelist chunk (leak-audit hook for tests).
  void Trim();

  // When disabled, heap-tier backing comes straight from operator new and
  // is deleted on release (the --no-pool ablation).
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const PayloadArenaStats& stats() const { return stats_; }
  void ResetStats();

  // Owning-SimContext teardown. Requires a heap-allocated arena: either
  // deletes it immediately (no chunks outstanding) or flips it to drain
  // mode so late releases from surviving PayloadBufs stay safe.
  void Retire();

 private:
  std::vector<uint8_t*> freelists_[kNumClasses];
  PayloadArenaStats stats_;
  bool enabled_ = true;
  bool retired_ = false;
};

// The process fallback arena, used by PayloadBufs created while no
// SimContext is installed on the current thread (test setup, CLI parsing).
// Deliberately process-shared; see the annotation at the definition.
PayloadArena& FallbackPayloadArena();

}  // namespace apiary

#endif  // SRC_SIM_PAYLOAD_ARENA_H_
