// Multi-tenant isolation demo — the paper's Section 2 scenario: "another
// user might want to use the FPGA to host an independent key-value store
// application... We do not want any accelerator of the KV-store application
// to be able to communicate with any accelerator in the encoding
// application."
//
// Two mutually distrusting tenants share the board:
//   tenant A: a video encoder serving its own client tile,
//   tenant B: a KV store serving external clients over the network — and a
//             malicious "snooper" tile that probes everything it can.
// The demo runs both and prints what the snooper managed to get: nothing.
#include <cstdio>
#include <memory>

#include "src/accel/faulty.h"
#include "src/accel/kv_store.h"
#include "src/accel/video_encoder.h"
#include "src/core/kernel.h"
#include "src/core/service_ids.h"
#include "src/services/gateway.h"
#include "src/services/memory_service.h"
#include "src/services/network_service.h"
#include "src/sim/simulator.h"
#include "src/stats/table.h"
#include "src/workload/client.h"
#include "src/workload/frame_source.h"
#include "src/workload/kv_workload.h"

using namespace apiary;

// Tenant A's client tile: keeps one frame in flight through the encoder.
class EncoderClient : public Accelerator {
 public:
  explicit EncoderClient(ServiceId encoder) : encoder_(encoder) {}

  void Tick(TileApi& api) override {
    if (in_flight_) {
      return;
    }
    const auto pixels = GenerateFrame(48, 48, 7, frames_done);
    Message msg;
    msg.opcode = kOpEncodeFrame;
    msg.payload = FrameToRequestPayload(48, 48, pixels);
    if (api.Send(std::move(msg), api.LookupService(encoder_)).ok()) {
      in_flight_ = true;
    }
  }

  void OnMessage(const Message& msg, TileApi&) override {
    if (msg.kind == MsgKind::kResponse) {
      in_flight_ = false;
      if (msg.status == MsgStatus::kOk && !msg.payload.empty()) {
        ++frames_done;
      } else {
        ++frames_failed;
      }
    }
  }

  std::string name() const override { return "encoder_client"; }
  uint32_t LogicCellCost() const override { return 3000; }

  uint64_t frames_done = 0;
  uint64_t frames_failed = 0;

 private:
  ServiceId encoder_;
  bool in_flight_ = false;
};

int main() {
  Simulator sim(250.0);
  ExternalNetwork net(25);
  sim.Register(&net);
  BoardConfig cfg;
  cfg.part_number = "VU9P";
  cfg.mesh = MeshConfig{4, 4, 8, 512};
  cfg.dram.capacity_bytes = 128ull << 20;
  Board board(cfg, sim, &net);
  ApiaryOs os(board);

  // OS services.
  os.DeployService(kMemoryService, std::make_unique<MemoryService>(&os, &board.memory()));
  os.DeployService(kNetworkService,
                   std::make_unique<NetworkService>(
                       &os, std::make_unique<Mac100GAdapter>(board.mac100g())));

  // ---- Tenant A: the video encoding service. ----
  AppId video_app = os.CreateApp("tenant-A-video");
  auto* encoder = new VideoEncoderAccelerator(20, 60);
  ServiceId enc_svc = 0;
  os.Deploy(video_app, std::unique_ptr<Accelerator>(encoder), &enc_svc);
  auto* enc_client = new EncoderClient(enc_svc);
  const TileId ec_tile = os.Deploy(video_app, std::unique_ptr<Accelerator>(enc_client));
  (void)os.GrantSendToService(ec_tile, enc_svc);

  // ---- Tenant B: the KV store, network-facing, plus a snooper tile. ----
  AppId kv_app = os.CreateApp("tenant-B-kv");
  auto* kv = new KvStoreAccelerator(1 << 20, 1 << 16);
  ServiceId kv_svc = 0;
  const TileId kv_tile = os.Deploy(kv_app, std::unique_ptr<Accelerator>(kv), &kv_svc);
  (void)os.GrantSendToService(kv_tile, kMemoryService);
  auto* gw = new NetGateway();
  ServiceId gw_svc = 0;
  const TileId gw_tile = os.Deploy(kv_app, std::unique_ptr<Accelerator>(gw), &gw_svc);
  (void)os.GrantSendToService(gw_tile, kNetworkService);
  gw->SetBackend(os.GrantSendToService(gw_tile, kv_svc));

  auto* snooper = new SnooperAccelerator(os.num_tiles(), 40);
  const TileId snoop_tile = os.Deploy(kv_app, std::unique_ptr<Accelerator>(snooper));
  (void)os.GrantSendToService(snoop_tile, kMemoryService);  // Legitimate tenant right.

  // External clients driving the KV store (YCSB-B-ish mix).
  KvWorkloadConfig wl;
  wl.keyspace = 200;
  wl.read_fraction = 0.9;
  ClientConfig ccfg;
  ccfg.server_endpoint = board.mac100g()->address();
  ccfg.dst_service = gw_svc;
  ccfg.open_loop = false;
  ccfg.concurrency = 4;
  ccfg.max_requests = 400;
  ClientHost client(ccfg, &net, MakeKvRequestFactory(wl));
  sim.Register(&client);

  std::printf("two mutually distrusting tenants on one board:\n");
  std::printf("  tenant A (video): encoder t%u + client t%u\n", os.AppTiles(video_app)[0],
              ec_tile);
  std::printf("  tenant B (kv)   : kv t%u + gateway t%u + SNOOPER t%u\n", kv_tile, gw_tile,
              snoop_tile);
  std::printf("running...\n");

  sim.RunUntil([&] { return client.received() >= 400; }, 10'000'000);

  Table table("Multi-tenant outcome");
  table.SetHeader({"metric", "value"});
  table.AddRow({"tenant A frames encoded", Table::Int(enc_client->frames_done)});
  table.AddRow({"tenant A frames failed", Table::Int(enc_client->frames_failed)});
  table.AddRow({"tenant B KV requests completed", Table::Int(client.received())});
  table.AddRow({"tenant B KV p99 latency (cycles)", Table::Int(client.latency().P99())});
  table.AddRow({"snooper attempts", Table::Int(snooper->attempts())});
  table.AddRow({"snooper denied (monitor)", Table::Int(snooper->denied_local())});
  table.AddRow({"snooper denied (service)", Table::Int(snooper->denied_remote())});
  table.AddRow({"snooper data leaked", Table::Int(snooper->leaked())});
  table.Print();

  if (snooper->leaked() != 0) {
    std::printf("\nISOLATION VIOLATED\n");
    return 1;
  }
  std::printf("\nisolation held: %llu snoop attempts, zero leaks, both tenants progressed.\n",
              static_cast<unsigned long long>(snooper->attempts()));
  return 0;
}
