#include "src/workload/kv_workload.h"

#include "src/accel/accel_opcodes.h"
#include "src/core/message.h"

namespace apiary {

PayloadBuf MakeKvGetPayload(const std::string& key) {
  PayloadBuf payload;
  PutU32(payload, static_cast<uint32_t>(key.size()));
  payload.insert(payload.end(), key.begin(), key.end());
  return payload;
}

PayloadBuf MakeKvPutPayload(const std::string& key,
                                      const std::vector<uint8_t>& value) {
  PayloadBuf payload = MakeKvGetPayload(key);
  payload.insert(payload.end(), value.begin(), value.end());
  return payload;
}

std::string KvKeyForIndex(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(index));
  return buf;
}

std::vector<uint8_t> KvValueForIndex(uint64_t index, uint32_t value_bytes) {
  std::vector<uint8_t> value(value_bytes);
  Rng rng(index * 2654435761u + 17);
  for (auto& b : value) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  return value;
}

ClientHost::RequestFactory MakeKvRequestFactory(KvWorkloadConfig config) {
  return [config](uint64_t index, Rng& rng) -> ClientRequest {
    (void)index;
    const uint64_t key_index = rng.NextZipf(config.keyspace, config.zipf_theta);
    const std::string key = KvKeyForIndex(key_index);
    ClientRequest req;
    if (rng.NextBool(config.read_fraction)) {
      req.opcode = kOpKvGet;
      req.payload = MakeKvGetPayload(key);
    } else {
      req.opcode = kOpKvPut;
      req.payload = MakeKvPutPayload(key, KvValueForIndex(key_index, config.value_bytes));
    }
    return req;
  };
}

}  // namespace apiary
